// Package dyncoll is a compressed, fully-dynamic document index and graph
// library: a Go implementation of
//
//	J. Ian Munro, Yakov Nekrich, Jeffrey Scott Vitter.
//	"Dynamic Data Structures for Document Collections and Graphs."
//	PODS 2015 (arXiv:1503.05977).
//
// The paper's contribution is a general framework that turns any static
// compressed text index into a dynamic one — supporting document
// insertions and deletions — without routing queries through dynamic
// rank/select, whose Ω(log n / log log n) lower bound (Fredman–Saks)
// bottlenecked all previous dynamic compressed indexes.
//
// # The top-level API
//
//   - Collection — a dynamic compressed document collection: Insert,
//     InsertBatch, Delete, DeleteBatch, Find/FindIter, Count, Extract.
//   - Relation — a dynamic compressed binary relation (Theorem 2).
//   - Graph — a dynamic compressed directed graph (Theorem 3).
//
// Quick start:
//
//	c, err := dyncoll.NewCollection()
//	if err != nil { ... }
//	if err := c.Insert(dyncoll.Document{ID: 1, Data: []byte("abracadabra")}); err != nil { ... }
//	for occ := range c.FindIter([]byte("bra")) {
//		fmt.Println(occ) // {1 1}, {1 8}
//	}
//
// # Options and transformations
//
// All three constructors take the same functional options. An option
// that does not apply to the structure being built (WithIndex on a
// Relation, say) fails the constructor with ErrInvalidOption rather than
// being silently ignored.
//
// WithTransformation selects the paper's static-to-dynamic
// transformation: WorstCase (Transformation 2, the Collection default —
// bounded foreground work per update, rebuilds in background
// goroutines), Amortized (Transformation 1 — cheapest overall, but an
// individual update may trigger a cascade), or AmortizedFastInsert
// (Transformation 3 — cheaper insertions at an O(log log n) query
// fan-out). Relations and graphs default to Amortized; selecting
// WorstCase gives them the same engine machinery collections use —
// true background builds behind locked copies, top-collection sweeps,
// and WaitIdle — because all three structures run on one generic
// transformation engine (see internal/engine).
//
// WithIndex picks the static index backing a Collection by registry name
// — built-ins IndexFM, IndexSA, IndexCSA, or anything added via
// RegisterIndex; this is the paper's index-agnosticism made concrete.
// WithSampleRate, WithTau, WithEpsilon, WithMinCapacity, and
// WithCounting tune the machinery; WithSyncRebuilds makes worst-case
// rebuilds deterministic for tests and benchmarks.
//
// # Sharding and concurrency
//
// By default a structure is a single partition and is NOT safe for
// concurrent use: callers must serialize all access externally (the
// WorstCase transformation's own background rebuild goroutines are
// internally synchronized, but two user goroutines must still not touch
// the structure at once).
//
// WithShards(p) changes the contract. The structure is partitioned
// across p independent shards — documents by ID hash, relation pairs by
// object hash, graph edges by source hash — each with its own rebuild
// pipeline and its own sync.RWMutex, and the facade becomes safe for
// concurrent readers and writers:
//
//	c, _ := dyncoll.NewCollection(dyncoll.WithShards(8))
//	// any number of goroutines may now call Insert, Find, Count, … concurrently
//
// Key-addressed operations (Insert, Delete, Extract, Has, LabelsOf,
// Successors, …) route to the owning shard and contend only with writers
// of that shard. Batch updates (InsertBatch, DeleteBatch) split per
// shard and ingest concurrently, with batch atomicity preserved: the
// whole batch is validated under every involved shard's write lock, so
// an invalid batch inserts nothing. Queries that cannot be routed —
// Find/FindIter/Count over all documents, ObjectsOf, Predecessors, full
// enumerations — fan out across all shards in parallel goroutines and
// merge into one stream; breaking out of an iterator stops every shard's
// enumeration. Result order is unspecified, exactly as in the unsharded
// structures.
//
// One rule survives sharding: an iterator loop body must not touch the
// structure it is iterating — reads included. The fan-out holds shard
// read locks while yielding; a loop-body write would deadlock outright,
// and a loop-body read can deadlock three ways with a concurrent writer
// queued on the same shard (Go's RWMutex blocks new readers behind a
// waiting writer). Access from other goroutines is fine: a queued
// writer delays them, but they cannot stop the iterator from draining.
// Collect what the loop needs and act after iteration completes.
//
// # Persistence
//
// Save writes a structure — any of the three, in any configuration —
// as a versioned binary snapshot; Load replaces a structure with a
// snapshot's contents, configuration included (shard count,
// transformation, index choice). SaveFile and LoadFile wrap them with
// atomic file handling: temp file in the target directory plus rename,
// so a crash mid-save never leaves a torn snapshot.
//
//	_ = c.SaveFile("corpus.snap")
//	restored, _ := dyncoll.NewCollection()
//	_ = restored.LoadFile("corpus.snap") // answers exactly like c
//
// Save quiesces background rebuilds first and, on sharded structures,
// holds every shard's read lock so the snapshot is one consistent cut.
// Load validates the header against the static-index registry before
// touching anything: an unregistered index name fails with
// ErrUnknownIndex, corrupt or truncated bytes fail with ErrBadSnapshot
// (never a panic), and on error the receiver is unchanged.
//
// Collections over the built-in indexes serialize the static indexes
// in their own binary form and skip the O(n·u(n)) rebuild at load;
// custom indexes registered with RegisterIndex round-trip as raw
// documents rebuilt through their builder, or can opt into the fast
// path with RegisterIndexDecoder.
//
// # Error semantics
//
// Update operations return typed errors matched with errors.Is —
// ErrDuplicateID, ErrReservedByte (payloads must not contain 0x00),
// ErrNotFound, ErrDuplicatePair, ErrDuplicateEdge, ErrUnknownIndex,
// ErrIndexExists, ErrInvalidOption, ErrBadSnapshot. Returned errors
// wrap the sentinels
// with contextual detail (the offending ID, index name, …); no exported
// entry point panics on user input. Batch operations are atomic with
// respect to validation: InsertBatch either inserts every document or —
// on the first invalid one — none.
//
// # Iterators
//
// FindIter, LabelsIter, ObjectsIter, PairsIter, Successors,
// Predecessors, and EdgesIter return single-use Go 1.23 iter.Seq values.
// Enumeration is lazy: breaking out of the range loop stops the
// underlying search (and, on sharded structures, every parallel shard
// stream), so huge result sets cost only what is consumed.
//
// See the examples directory for runnable programs, README.md for an
// overview, and DESIGN.md for how the implementation maps onto the
// paper's theorems.
package dyncoll
