package dyncoll

import (
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"syscall"

	"dyncoll/internal/core"
	"dyncoll/internal/fanout"
	"dyncoll/internal/mmap"
	"dyncoll/internal/snap"
)

// Snapshot persistence: Save writes a structure's complete state —
// configuration header plus every shard's sub-collection ladder — as a
// versioned binary snapshot, and Load replaces an existing structure
// with a snapshot's contents. The paper's structures are rebuilt from
// raw text in O(n·u(n)) time; snapshots exist so a restarted process
// (or a replica seeded from object storage) skips that cost entirely.
//
// Layout (version 1):
//
//	magic "dsnp" | version | kind
//	transformation, τ, ε, min-capacity, sync-rebuilds, shard count
//	index name, sample rate, counting     (collections only)
//	one length-prefixed ladder blob per shard
//
// Each ladder blob holds the engine's schedule anchors, C0's raw items,
// and every static store tagged with its ladder slot. Collection levels
// whose index implements the AppendBinary/UnmarshalBinary contract and
// has a registered decoder (the built-in fm, sa and csa indexes do) are
// embedded in binary form with their lazy-deletion state, so Load skips
// the O(n·u(n)) rebuild; all other stores travel as raw items and are
// rebuilt through the registered IndexBuilder — which is how custom
// registry indexes round-trip by name.
//
// Load validates the header against the index registry before touching
// anything: an unregistered index name fails with ErrUnknownIndex, and
// corrupt or truncated bytes fail with ErrBadSnapshot — never a panic.
// On error the receiver is left exactly as it was.
//
// Sharded structures encode and decode their shards in parallel. Save
// on a sharded structure holds every shard's read lock for the duration
// of the encode, so the snapshot is one consistent cut — concurrent
// readers proceed, writers wait. Unsharded structures follow their
// usual rule: callers must not write concurrently with Save.

// maxSnapshotShards bounds the shard count accepted from a snapshot
// header, so corrupt input cannot demand a billion shard structures.
const maxSnapshotShards = 4096

// collSnapImpl is implemented by the unsharded collection cores.
type collSnapImpl interface {
	EncodeSnapshot(e *snap.Encoder, fastPath bool)
	DecodeSnapshot(dec *snap.Decoder, decode core.IndexDecoder) error
}

// relSnapImpl is implemented by the unsharded relation and graph cores.
type relSnapImpl interface {
	EncodeSnapshot(e *snap.Encoder)
	DecodeSnapshot(dec *snap.Decoder) error
}

// encodeHeader writes the config header for kind.
func encodeHeader(e *snap.Encoder, cfg config) {
	e.Raw(snap.Magic[:])
	e.Byte(snap.Version)
	switch cfg.kind {
	case kindRelation:
		e.Byte(snap.KindRelation)
	case kindGraph:
		e.Byte(snap.KindGraph)
	default:
		e.Byte(snap.KindCollection)
	}
	e.Byte(byte(cfg.transformation))
	e.Uvarint(uint64(cfg.tau))
	e.Uvarint(math.Float64bits(cfg.epsilon))
	e.Uvarint(uint64(cfg.minCapacity))
	e.Bool(cfg.syncRebuilds)
	e.Uvarint(uint64(cfg.shards))
	if cfg.kind == kindCollection {
		e.String(cfg.index)
		e.Uvarint(uint64(cfg.sampleRate))
		e.Bool(cfg.counting)
	}
}

// decodeHeader reads and validates the config header, requiring the
// given kind.
func decodeHeader(dec *snap.Decoder, kind structKind) (config, error) {
	var zero config
	magic := dec.Raw(4)
	if err := dec.Err(); err != nil {
		return zero, err
	}
	if string(magic) != string(snap.Magic[:]) {
		return zero, snap.Corruptf("magic %q", magic)
	}
	if v := dec.Byte(); v != snap.Version {
		return zero, snap.Corruptf("unsupported snapshot version %d", v)
	}
	wantKind := map[structKind]byte{
		kindCollection: snap.KindCollection,
		kindRelation:   snap.KindRelation,
		kindGraph:      snap.KindGraph,
	}[kind]
	if k := dec.Byte(); k != wantKind {
		return zero, snap.Corruptf("snapshot kind %d, want %d (%v)", k, wantKind, kind)
	}
	cfg := config{kind: kind}
	cfg.transformation = Transformation(dec.Byte())
	cfg.tau = dec.Int()
	cfg.epsilon = math.Float64frombits(dec.Uvarint())
	cfg.minCapacity = dec.Int()
	cfg.syncRebuilds = dec.Bool()
	cfg.shards = dec.Int()
	if kind == kindCollection {
		cfg.index = dec.String()
		cfg.sampleRate = dec.Int()
		cfg.counting = dec.Bool()
	}
	if err := dec.Err(); err != nil {
		return zero, err
	}
	switch cfg.transformation {
	case WorstCase, Amortized:
	case AmortizedFastInsert:
		if kind != kindCollection {
			return zero, snap.Corruptf("transformation %d on a %v", cfg.transformation, kind)
		}
	default:
		return zero, snap.Corruptf("unknown transformation %d", cfg.transformation)
	}
	if !(cfg.epsilon == 0 || (cfg.epsilon > 0 && cfg.epsilon <= 1)) {
		return zero, snap.Corruptf("epsilon %v outside (0,1]", cfg.epsilon)
	}
	if cfg.shards < 0 || cfg.shards > maxSnapshotShards {
		return zero, snap.Corruptf("shard count %d", cfg.shards)
	}
	return cfg, nil
}

// shardBlobs reads the per-shard ladder sections, requiring exactly
// want of them and no trailing bytes.
func shardBlobs(dec *snap.Decoder, want int) ([][]byte, error) {
	n := dec.Count(1)
	if err := dec.Err(); err != nil {
		return nil, err
	}
	if n != want {
		return nil, snap.Corruptf("%d shard sections for %d shards", n, want)
	}
	blobs := make([][]byte, n)
	for i := range blobs {
		blobs[i] = dec.Blob()
	}
	if err := dec.Err(); err != nil {
		return nil, err
	}
	if dec.Remaining() != 0 {
		return nil, snap.Corruptf("%d trailing bytes", dec.Remaining())
	}
	return blobs, nil
}

// writeSnapshot assembles header + shard blobs and writes them in one
// call.
func writeSnapshot(w io.Writer, cfg config, blobs [][]byte) error {
	e := &snap.Encoder{}
	encodeHeader(e, cfg)
	e.Uvarint(uint64(len(blobs)))
	for _, b := range blobs {
		e.Blob(b)
	}
	_, err := w.Write(e.Bytes())
	return err
}

// guard converts a decode-path panic into ErrBadSnapshot. Load's
// decoders validate everything they read, but persistence is a trust
// boundary: a crafted input that slips past validation must surface as
// an error, not take the process down.
func guard(err *error) {
	if r := recover(); r != nil {
		*err = snap.Corruptf("decode panic: %v", r)
	}
}

// parallelShards runs fn for every shard index and returns the first
// error. It reuses the shard fan-out helper so a single shard runs
// inline.
func parallelShards(n int, fn func(i int) error) error {
	errs := make([]error, n)
	fanout.ForEach(n, func(i int) { errs[i] = fn(i) })
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// atomicWriteFile writes data via a temp file in the target directory
// plus rename, so the destination path always holds either the old
// bytes or the complete new bytes. After the rename the containing
// directory is fsynced: the rename updates a directory entry, and
// without the directory sync a crash right after a "successful" save
// could lose the entry even though the file's own blocks were synced —
// the snapshot would simply not exist on reboot.
func atomicWriteFile(path string, save func(w io.Writer) error) error {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	tmp, err := os.CreateTemp(dir, "."+base+".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op once renamed
	// CreateTemp makes the file 0600 and rename preserves that, which
	// would surprise consumers of the documented ship-a-prebuilt-index
	// flow (backup agents, other users); give snapshots the same mode a
	// plain write would.
	if err := tmp.Chmod(0o644); err != nil {
		tmp.Close()
		return err
	}
	if err := save(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-renamed entry inside it is
// durable. Filesystems that cannot fsync a directory handle (it is
// valid for open directories to reject Sync on some platforms) degrade
// to the pre-sync behaviour rather than failing the save.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil &&
		!errors.Is(err, syscall.EINVAL) && !errors.Is(err, syscall.ENOTSUP) && !errors.Is(err, syscall.EBADF) {
		return err
	}
	return nil
}

func loadFile(path string, load func(r io.Reader) error) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	// Loads consume the snapshot front to back in one pass; telling the
	// kernel so (POSIX_FADV_SEQUENTIAL, a no-op off Linux) doubles its
	// readahead window on the cold-cache path.
	mmap.ReadAhead(f)
	return load(f)
}

// --- Collection ---

// Save writes the collection as a versioned binary snapshot. Background
// rebuilds are quiesced first, so the snapshot is complete and
// self-contained. On a sharded collection every shard's read lock is
// held for the duration, making the snapshot one consistent cut; on an
// unsharded collection the caller must not write concurrently.
func (c *Collection) Save(w io.Writer) error {
	fast := lookupDecoder(c.cfg.index) != nil
	var blobs [][]byte
	if sh, ok := c.impl.(*shardedColl); ok {
		p := len(sh.shards)
		for _, s := range sh.shards {
			s.mu.RLock()
		}
		defer func() {
			for _, s := range sh.shards {
				s.mu.RUnlock()
			}
		}()
		blobs = make([][]byte, p)
		if err := parallelShards(p, func(i int) error {
			impl, ok := sh.shards[i].impl.(collSnapImpl)
			if !ok {
				return fmt.Errorf("dyncoll: collection shard does not support snapshots")
			}
			e := &snap.Encoder{}
			impl.EncodeSnapshot(e, fast)
			blobs[i] = e.Bytes()
			return nil
		}); err != nil {
			return err
		}
	} else {
		impl, ok := c.impl.(collSnapImpl)
		if !ok {
			return fmt.Errorf("dyncoll: collection does not support snapshots")
		}
		e := &snap.Encoder{}
		impl.EncodeSnapshot(e, fast)
		blobs = [][]byte{e.Bytes()}
	}
	return writeSnapshot(w, c.cfg, blobs)
}

// Load replaces the collection's configuration and contents with a
// snapshot written by Save. The header is validated against the index
// registry before anything is built: an unregistered index name fails
// with ErrUnknownIndex, corrupt bytes with ErrBadSnapshot, and on any
// error the receiver is unchanged. Load is not safe to call
// concurrently with other operations on the same receiver.
func (c *Collection) Load(r io.Reader) (err error) {
	defer guard(&err)
	data, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	dec := snap.NewDecoder(data)
	cfg, err := decodeHeader(dec, kindCollection)
	if err != nil {
		return err
	}
	// Resolve the index by name before touching the ladder; this is
	// also where a never-registered custom index fails.
	if _, err := lookupIndex(cfg.index); err != nil {
		return err
	}
	decode := lookupDecoder(cfg.index)
	blobs, err := shardBlobs(dec, max(cfg.shards, 1))
	if err != nil {
		return err
	}
	impl, err := newCollAnyImpl(cfg)
	if err != nil {
		return err
	}
	if sh, ok := impl.(*shardedColl); ok {
		if err := parallelShards(len(sh.shards), func(i int) (err error) {
			defer guard(&err)
			return sh.shards[i].impl.(collSnapImpl).DecodeSnapshot(snap.NewDecoder(blobs[i]), decode)
		}); err != nil {
			return err
		}
	} else {
		if err := impl.(collSnapImpl).DecodeSnapshot(snap.NewDecoder(blobs[0]), decode); err != nil {
			return err
		}
	}
	c.impl, c.cfg = impl, cfg
	return nil
}

// SaveFile writes the collection snapshot to path atomically: the bytes
// land in a temp file in the same directory which is then renamed over
// path, so a crash mid-write never leaves a truncated snapshot behind.
func (c *Collection) SaveFile(path string) error {
	return atomicWriteFile(path, c.Save)
}

// LoadFile replaces the collection with the snapshot stored at path.
func (c *Collection) LoadFile(path string) error {
	return loadFile(path, c.Load)
}

// --- Relation ---

// Save writes the relation as a versioned binary snapshot; see
// Collection.Save for quiescing and locking behaviour.
func (r *Relation) Save(w io.Writer) error {
	var blobs [][]byte
	if sh, ok := r.rel.(*shardedRelation); ok {
		p := len(sh.shards)
		for _, s := range sh.shards {
			s.mu.RLock()
		}
		defer func() {
			for _, s := range sh.shards {
				s.mu.RUnlock()
			}
		}()
		blobs = make([][]byte, p)
		if err := parallelShards(p, func(i int) error {
			impl, ok := sh.shards[i].rel.(relSnapImpl)
			if !ok {
				return fmt.Errorf("dyncoll: relation shard does not support snapshots")
			}
			e := &snap.Encoder{}
			impl.EncodeSnapshot(e)
			blobs[i] = e.Bytes()
			return nil
		}); err != nil {
			return err
		}
	} else {
		impl, ok := r.rel.(relSnapImpl)
		if !ok {
			return fmt.Errorf("dyncoll: relation does not support snapshots")
		}
		e := &snap.Encoder{}
		impl.EncodeSnapshot(e)
		blobs = [][]byte{e.Bytes()}
	}
	return writeSnapshot(w, r.cfg, blobs)
}

// Load replaces the relation's configuration and contents with a
// snapshot written by Save; see Collection.Load for the error contract.
func (r *Relation) Load(rd io.Reader) (err error) {
	defer guard(&err)
	data, err := io.ReadAll(rd)
	if err != nil {
		return err
	}
	dec := snap.NewDecoder(data)
	cfg, err := decodeHeader(dec, kindRelation)
	if err != nil {
		return err
	}
	blobs, err := shardBlobs(dec, max(cfg.shards, 1))
	if err != nil {
		return err
	}
	impl := newRelAnyImpl(cfg)
	if sh, ok := impl.(*shardedRelation); ok {
		if err := parallelShards(len(sh.shards), func(i int) (err error) {
			defer guard(&err)
			return sh.shards[i].rel.(relSnapImpl).DecodeSnapshot(snap.NewDecoder(blobs[i]))
		}); err != nil {
			return err
		}
	} else {
		if err := impl.(relSnapImpl).DecodeSnapshot(snap.NewDecoder(blobs[0])); err != nil {
			return err
		}
	}
	r.rel, r.cfg = impl, cfg
	return nil
}

// SaveFile writes the relation snapshot to path atomically (temp file +
// rename).
func (r *Relation) SaveFile(path string) error {
	return atomicWriteFile(path, r.Save)
}

// LoadFile replaces the relation with the snapshot stored at path.
func (r *Relation) LoadFile(path string) error {
	return loadFile(path, r.Load)
}

// --- Graph ---

// Save writes the graph as a versioned binary snapshot; see
// Collection.Save for quiescing and locking behaviour.
func (g *Graph) Save(w io.Writer) error {
	var blobs [][]byte
	if sh, ok := g.g.(*shardedGraph); ok {
		p := len(sh.shards)
		for _, s := range sh.shards {
			s.mu.RLock()
		}
		defer func() {
			for _, s := range sh.shards {
				s.mu.RUnlock()
			}
		}()
		blobs = make([][]byte, p)
		if err := parallelShards(p, func(i int) error {
			e := &snap.Encoder{}
			sh.shards[i].g.EncodeSnapshot(e)
			blobs[i] = e.Bytes()
			return nil
		}); err != nil {
			return err
		}
	} else {
		impl, ok := g.g.(relSnapImpl)
		if !ok {
			return fmt.Errorf("dyncoll: graph does not support snapshots")
		}
		e := &snap.Encoder{}
		impl.EncodeSnapshot(e)
		blobs = [][]byte{e.Bytes()}
	}
	return writeSnapshot(w, g.cfg, blobs)
}

// Load replaces the graph's configuration and contents with a snapshot
// written by Save; see Collection.Load for the error contract.
func (g *Graph) Load(r io.Reader) (err error) {
	defer guard(&err)
	data, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	dec := snap.NewDecoder(data)
	cfg, err := decodeHeader(dec, kindGraph)
	if err != nil {
		return err
	}
	blobs, err := shardBlobs(dec, max(cfg.shards, 1))
	if err != nil {
		return err
	}
	impl := newGraphAnyImpl(cfg)
	if sh, ok := impl.(*shardedGraph); ok {
		if err := parallelShards(len(sh.shards), func(i int) (err error) {
			defer guard(&err)
			return sh.shards[i].g.DecodeSnapshot(snap.NewDecoder(blobs[i]))
		}); err != nil {
			return err
		}
	} else {
		if err := impl.(relSnapImpl).DecodeSnapshot(snap.NewDecoder(blobs[0])); err != nil {
			return err
		}
	}
	g.g, g.cfg = impl, cfg
	return nil
}

// SaveFile writes the graph snapshot to path atomically (temp file +
// rename).
func (g *Graph) SaveFile(path string) error {
	return atomicWriteFile(path, g.Save)
}

// LoadFile replaces the graph with the snapshot stored at path.
func (g *Graph) LoadFile(path string) error {
	return loadFile(path, g.Load)
}
