package dyncoll

import (
	"fmt"
	"path/filepath"
	"testing"

	"dyncoll/internal/textgen"
)

// benchSnapshots builds a collection over total symbols and writes both
// snapshot formats, returning the two paths.
func benchSnapshots(b *testing.B, total int) (v1, v2 string) {
	b.Helper()
	c := shardedBench(b, 0, benchDocs(total, 16, 42))
	dir := b.TempDir()
	v1, v2 = filepath.Join(dir, "c.v1"), filepath.Join(dir, "c.v2")
	if err := c.SaveFile(v1); err != nil {
		b.Fatal(err)
	}
	if err := c.SaveMappedFile(v2); err != nil {
		b.Fatal(err)
	}
	return v1, v2
}

// BenchmarkColdOpen compares cold-start of the two snapshot formats
// across corpus sizes. Heap Load decodes the whole stream into fresh
// allocations, so time and allocated bytes grow with the corpus; the
// mapped open reads the section directory, the spines, and the O(σ +
// n/512) structural checks, so both stay near-flat — the corpus-sized
// arrays are left to the page cache to fault in on demand.
func BenchmarkColdOpen(b *testing.B) {
	for _, total := range []int{1 << 15, 1 << 17, 1 << 19} {
		v1, v2 := benchSnapshots(b, total)
		b.Run(fmt.Sprintf("heap/n=%d", total), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				fresh, err := NewCollection()
				if err != nil {
					b.Fatal(err)
				}
				if err := fresh.LoadFile(v1); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("mapped/n=%d", total), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				m, err := OpenMappedCollection(v2)
				if err != nil {
					b.Fatal(err)
				}
				if err := m.Close(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMappedQuery compares query latency between a heap-loaded and
// a mapped collection over the same corpus: the mapped structure
// answers from file-backed pages (here warm in the page cache), so the
// comparison isolates the in-place decoding overhead.
func BenchmarkMappedQuery(b *testing.B) {
	const total = 1 << 17
	docs := benchDocs(total, 16, 42)
	pats := textgen.NewPatternSampler(docs, 7).PlantedSet(64, 8)
	v1, v2 := benchSnapshots(b, total)
	heap, err := NewCollection()
	if err != nil {
		b.Fatal(err)
	}
	if err := heap.LoadFile(v1); err != nil {
		b.Fatal(err)
	}
	mapped, err := OpenMappedCollection(v2)
	if err != nil {
		b.Fatal(err)
	}
	defer mapped.Close()
	for name, c := range map[string]*Collection{"heap": heap, "mapped": mapped} {
		b.Run(name+"/count", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c.Count(pats[i%len(pats)])
			}
		})
		b.Run(name+"/find", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c.FindFunc(pats[i%len(pats)], func(Occurrence) bool { return true })
			}
		})
	}
}
