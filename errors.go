package dyncoll

import (
	"errors"

	"dyncoll/internal/core"
	"dyncoll/internal/query"
	"dyncoll/internal/snap"
)

// Typed errors returned by the v2 API. Match them with errors.Is; the
// returned errors may wrap these sentinels with contextual detail (the
// offending ID, index name, …).
var (
	// ErrDuplicateID reports a Collection insert whose document ID is
	// already live (or repeated within one batch).
	ErrDuplicateID = core.ErrDuplicateID

	// ErrReservedByte reports a document payload containing the reserved
	// separator byte 0x00.
	ErrReservedByte = core.ErrReservedByte

	// ErrNotFound reports a delete (or similar) naming a document, pair,
	// or edge that is not live.
	ErrNotFound = core.ErrNotFound

	// ErrDuplicatePair reports a Relation.Add of a pair that is already
	// related.
	ErrDuplicatePair = errors.New("pair already present")

	// ErrDuplicateEdge reports a Graph.AddEdge of an edge that already
	// exists.
	ErrDuplicateEdge = errors.New("edge already present")

	// ErrBadPattern reports a search plan that cannot be compiled: a
	// malformed regular expression or a negative k.
	ErrBadPattern = query.ErrBadPlan

	// ErrUnknownIndex reports a static-index name with no registered
	// builder.
	ErrUnknownIndex = errors.New("unknown static index")

	// ErrIndexExists reports RegisterIndex on a name that is already
	// taken.
	ErrIndexExists = errors.New("index name already registered")

	// ErrInvalidOption reports a constructor option with an out-of-range
	// value, or one that does not apply to the structure being built.
	ErrInvalidOption = errors.New("invalid option")

	// ErrBadSnapshot reports Load input that is not a well-formed
	// snapshot of the expected kind and version: wrong magic, unknown
	// version, truncation, or internal corruption. Load never panics on
	// bad input; it fails with an error wrapping this sentinel.
	ErrBadSnapshot = snap.ErrBadSnapshot
)
