package main

import (
	"fmt"
	"time"

	"dyncoll/internal/baseline"
	"dyncoll/internal/core"
	"dyncoll/internal/doc"
	"dyncoll/internal/fmindex"
	"dyncoll/internal/huffman"
	"dyncoll/internal/textgen"
)

// mkDocs builds a synthetic collection of roughly total symbols.
func mkDocs(total, sigma int, seed int64) []doc.Doc {
	gen := textgen.NewCollection(textgen.CollectionOptions{
		Sigma: sigma, Order: 1, Skew: 0.6,
		MinLen: 256, MaxLen: 2048, Seed: seed,
	})
	gen.GenerateTotal(total)
	return gen.Docs
}

func concat(docs []doc.Doc) []byte {
	var out []byte
	for _, d := range docs {
		out = append(out, d.Data...)
	}
	return out
}

// timeIt returns the average duration of fn over iters runs.
func timeIt(iters int, fn func()) time.Duration {
	if iters < 1 {
		iters = 1
	}
	start := time.Now()
	for i := 0; i < iters; i++ {
		fn()
	}
	return time.Since(start) / time.Duration(iters)
}

// ----------------------------------------------------------------------
// Table 1 — static compressed indexes: space ≈ nHk + O(n log n / s),
// trange ∝ |P|, tlocate ∝ s, textract ∝ s + ℓ.
// ----------------------------------------------------------------------

func table1(quick bool) {
	fmt.Println("=== Table 1: static compressed index trade-offs (FM-index & Ψ-CSA) ===")
	fmt.Println("paper: space ≈ nHk + O(n·log n/s); FM rows [14]: trange=O(|P|·f(σ));")
	fmt.Println("CSA row [39]: trange=O(|P|·log n); both: tlocate=O(s), textract=O(s+ℓ)")
	n := 1 << 18
	if quick {
		n = 1 << 15
	}
	for _, sigma := range []int{4, 64} {
		docs := mkDocs(n, sigma, 42)
		text := concat(docs)
		h0 := huffman.H0Bytes(text)
		hk := huffman.Hk(text, 2)
		fmt.Printf("\n-- σ=%d  n=%d  H0=%.2f  H2=%.2f bits/sym --\n", sigma, len(text), h0, hk)
		fmt.Printf("%3s %6s %9s %14s %14s %14s\n", "idx", "s", "bits/sym", "range(µs/qry)", "locate(ns/occ)", "extract(ns/ch)")
		ps := textgen.NewPatternSampler(docs, 7)
		pats := ps.PlantedSet(50, 8)
		type staticIdx interface {
			Range(p []byte) (int, int)
			Locate(row int) (int, int)
			Extract(doc, off, length int) []byte
			SizeBits() int64
		}
		builders := []struct {
			name string
			mk   func(s int) staticIdx
		}{
			{"FM ", func(s int) staticIdx { return fmindex.Build(docs, fmindex.Options{SampleRate: s}) }},
			{"CSA", func(s int) staticIdx { return fmindex.BuildCSA(docs, fmindex.Options{SampleRate: s}) }},
		}
		for _, bld := range builders {
			for _, s := range []int{4, 16, 64} {
				idx := bld.mk(s)
				bitsPerSym := float64(idx.SizeBits()) / float64(len(text))

				tRange := timeIt(20, func() {
					for _, p := range pats {
						idx.Range(p)
					}
				}) / time.Duration(len(pats))

				// Locate all occurrences of the pattern set once to count them.
				occs := 0
				tLocAll := timeIt(3, func() {
					occs = 0
					for _, p := range pats {
						lo, hi := idx.Range(p)
						for r := lo; r < hi; r++ {
							idx.Locate(r)
						}
						occs += hi - lo
					}
				})
				var tLoc time.Duration
				if occs > 0 {
					tLoc = tLocAll / time.Duration(occs)
				}

				const el = 64
				tExt := timeIt(200, func() {
					idx.Extract(0, 16, el)
				}) / el

				fmt.Printf("%3s %6d %9.2f %14.2f %14d %14d\n",
					bld.name, s, bitsPerSym, float64(tRange.Nanoseconds())/1e3, tLoc.Nanoseconds(), tExt.Nanoseconds())
			}
		}
	}
	fmt.Println("\nshape check: bits/sym falls toward Hk+const as s grows; locate grows ∝ s; range flat in s.")
}

// ----------------------------------------------------------------------
// Table 2 — dynamic indexing: our transformations vs the dynamic-rank
// baseline. The paper's claim: our query time grows like log log n while
// the baseline's carries a log n factor per pattern symbol; our locate is
// O(s) vs the baseline's O(s·log n).
// ----------------------------------------------------------------------

type dynIndex interface {
	Insert(doc.Doc) error
	Delete(id uint64) bool
	Count(pattern []byte) int
	Find(pattern []byte) []baseline.Occurrence
	Len() int
}

// coreAdapter adapts core collections to dynIndex.
type coreAdapter struct {
	ins  func(doc.Doc) error
	del  func(uint64) bool
	cnt  func([]byte) int
	find func([]byte, func(core.Occurrence) bool)
	ln   func() int
	size func() int64
}

func (a coreAdapter) Insert(d doc.Doc) error { return a.ins(d) }
func (a coreAdapter) Delete(id uint64) bool  { return a.del(id) }
func (a coreAdapter) Count(p []byte) int     { return a.cnt(p) }
func (a coreAdapter) Len() int               { return a.ln() }
func (a coreAdapter) Find(p []byte) []baseline.Occurrence {
	var out []baseline.Occurrence
	a.find(p, func(o core.Occurrence) bool {
		out = append(out, baseline.Occurrence{DocID: o.DocID, Off: o.Off})
		return true
	})
	return out
}

func fmBuilder(s int) core.Builder {
	return func(docs []doc.Doc) core.StaticIndex {
		return fmindex.Build(docs, fmindex.Options{SampleRate: s})
	}
}

func saBuilder() core.Builder {
	return func(docs []doc.Doc) core.StaticIndex { return fmindex.BuildSA(docs) }
}

func table2(quick bool) {
	fmt.Println("=== Table 2: dynamic indexing — ours vs dynamic-rank baseline ===")
	fmt.Println("paper: ours trange=O(|P|·loglog n), tlocate=O(s), update O(|T|·logᵋn);")
	fmt.Println("       baseline [30,35] trange=O(|P|·log n), tlocate=O(s·log n), update O(|T|·log n)")
	const s = 8
	sizes := []int{1 << 14, 1 << 16, 1 << 18}
	if quick {
		sizes = []int{1 << 13, 1 << 14}
	}
	kinds := []struct {
		name string
		mk   func() dynIndex
	}{
		{"T1+FM (ours, amortized)", func() dynIndex {
			a := core.NewAmortized(core.Options{Builder: fmBuilder(s)})
			return coreAdapter{a.Insert, a.Delete, a.Count, a.FindFunc, a.Len, a.SizeBits}
		}},
		{"T2+FM (ours, worst-case)", func() dynIndex {
			w := core.NewWorstCase(core.Options{Builder: fmBuilder(s), Inline: true})
			return coreAdapter{w.Insert, w.Delete, w.Count, w.FindFunc, w.Len, w.SizeBits}
		}},
		{"DynFM (baseline, dyn-rank)", func() dynIndex { return baseline.NewDynFM(s) }},
		{"SuffixTree (O(n log n) bits)", func() dynIndex {
			return baseline.NewSTIndex()
		}},
	}

	fmt.Printf("\n%-30s %10s %14s %14s %14s\n", "index", "n", "count(µs/qry)", "locate(ns/occ)", "update(ns/sym)")
	for _, k := range kinds {
		for _, n := range sizes {
			docs := mkDocs(n, 16, 91)
			idx := k.mk()

			insStart := time.Now()
			for _, d := range docs {
				idx.Insert(d)
			}
			symbols := idx.Len()
			// Delete and reinsert a slice of documents to include deletion
			// cost in the per-symbol update figure.
			delDocs := docs[:len(docs)/8]
			for _, d := range delDocs {
				idx.Delete(d.ID)
			}
			for _, d := range delDocs {
				idx.Insert(doc.Doc{ID: d.ID + 1<<40, Data: d.Data})
			}
			updNs := time.Since(insStart).Nanoseconds()
			updSyms := symbols
			for _, d := range delDocs {
				updSyms += 2 * len(d.Data)
			}

			ps := textgen.NewPatternSampler(docs, 3)
			pats := ps.PlantedSet(30, 8)
			tCount := timeIt(5, func() {
				for _, p := range pats {
					idx.Count(p)
				}
			}) / time.Duration(len(pats))

			occs := 0
			tFindAll := timeIt(2, func() {
				occs = 0
				for _, p := range pats[:10] {
					occs += len(idx.Find(p))
				}
			})
			var tLoc time.Duration
			if occs > 0 {
				tLoc = tFindAll / time.Duration(occs)
			}

			fmt.Printf("%-30s %10d %14.2f %14d %14d\n",
				k.name, symbols,
				float64(tCount.Nanoseconds())/1e3,
				tLoc.Nanoseconds(),
				updNs/int64(updSyms))
		}
	}
	fmt.Println("\nshape check: baseline count/locate grow with n (dynamic-rank log-factor);")
	fmt.Println("ours stay near-flat, matching the static index. Suffix tree is fastest but Θ(n log n) bits.")
}

// ----------------------------------------------------------------------
// Table 3 — O(n log σ)-bit indexes: plain-SA under Transformation 2 vs
// the dynamic baseline, σ = 4 so |P|/log_σ n matters.
// ----------------------------------------------------------------------

func table3(quick bool) {
	fmt.Println("=== Table 3: O(n log σ)-bit indexes (σ=4, long patterns) ===")
	fmt.Println("paper: ours trange=O(|P|/log_σ n + logᵋn), tlocate=O(logᵋn);")
	fmt.Println("       prior dynamic O(|P|·log n) / O(log n·log_σ n)")
	n := 1 << 17
	if quick {
		n = 1 << 14
	}
	docs := mkDocs(n, 4, 17)
	ps := textgen.NewPatternSampler(docs, 5)

	type row struct {
		name string
		mk   func() dynIndex
	}
	rows := []row{
		{"T2+SA (ours)", func() dynIndex {
			w := core.NewWorstCase(core.Options{Builder: saBuilder(), Inline: true})
			return coreAdapter{w.Insert, w.Delete, w.Count, w.FindFunc, w.Len, w.SizeBits}
		}},
		{"DynFM (baseline)", func() dynIndex { return baseline.NewDynFM(16) }},
	}
	fmt.Printf("\n%-20s %8s %16s %16s %14s\n", "index", "|P|", "count(µs/qry)", "locate(ns/occ)", "bits/sym")
	for _, r := range rows {
		idx := r.mk()
		for _, d := range docs {
			idx.Insert(d)
		}
		var bitsPerSym float64
		switch v := idx.(type) {
		case *baseline.DynFM:
			bitsPerSym = float64(v.SizeBits()) / float64(idx.Len())
		case coreAdapter:
			bitsPerSym = float64(v.size()) / float64(idx.Len())
		}
		for _, plen := range []int{8, 32, 128} {
			pats := ps.PlantedSet(20, plen)
			tCount := timeIt(5, func() {
				for _, p := range pats {
					idx.Count(p)
				}
			}) / time.Duration(len(pats))
			occs := 0
			tFind := timeIt(2, func() {
				occs = 0
				for _, p := range pats[:5] {
					occs += len(idx.Find(p))
				}
			})
			var tLoc time.Duration
			if occs > 0 {
				tLoc = tFind / time.Duration(occs)
			}
			fmt.Printf("%-20s %8d %16.2f %16d %14.1f\n", r.name, plen,
				float64(tCount.Nanoseconds())/1e3, tLoc.Nanoseconds(), bitsPerSym)
		}
	}
	fmt.Println("\nshape check: with σ=4 the plain-SA index's per-symbol query cost is far below")
	fmt.Println("the baseline's dynamic-rank cost, and locate carries no log n factor.")
}

// ----------------------------------------------------------------------
// Table 4 — counting queries: tcount ≈ trange + O(log n / log log n),
// updates +O(log n/log log n) per symbol when counting is on.
// ----------------------------------------------------------------------

func table4(quick bool) {
	fmt.Println("=== Table 4: counting queries (Theorem 1) ===")
	fmt.Println("paper: tcount = trange + O(log n/loglog n); update +O(log n/loglog n)/symbol")
	sizes := []int{1 << 14, 1 << 16, 1 << 18}
	if quick {
		sizes = []int{1 << 13, 1 << 14}
	}
	const s = 8
	fmt.Printf("\n%10s %16s %16s %18s %18s\n", "n", "count ON(µs)", "count OFF(µs)", "update ON(ns/sym)", "update OFF(ns/sym)")
	for _, n := range sizes {
		docs := mkDocs(n, 16, 23)
		ps := textgen.NewPatternSampler(docs, 9)
		pats := ps.PlantedSet(15, 2) // very short patterns → occ ≫ log n
		pats = append(pats, ps.PlantedSet(15, 1)...)

		var res [2]struct {
			count  time.Duration
			update int64
		}
		for i, counting := range []bool{true, false} {
			a := core.NewAmortized(core.Options{Builder: fmBuilder(s), Counting: counting})
			start := time.Now()
			for _, d := range docs {
				a.Insert(d)
			}
			for _, d := range docs[:len(docs)/8] {
				a.Delete(d.ID)
			}
			res[i].update = time.Since(start).Nanoseconds() / int64(a.Len()+n/8)
			res[i].count = timeIt(5, func() {
				for _, p := range pats {
					a.Count(p)
				}
			}) / time.Duration(len(pats))
		}
		fmt.Printf("%10d %16.2f %16.2f %18d %18d\n", n,
			float64(res[0].count.Nanoseconds())/1e3,
			float64(res[1].count.Nanoseconds())/1e3,
			res[0].update, res[1].update)
	}
	fmt.Println("\nshape check: counting-ON answers short-pattern counts far faster than")
	fmt.Println("enumeration (OFF) once occ is large, for a modest update overhead.")
}
