package main

import (
	"fmt"

	"dyncoll/internal/baseline"
	"dyncoll/internal/core"
	"dyncoll/internal/doc"
	"dyncoll/internal/huffman"
	"dyncoll/internal/textgen"
)

// space reproduces the space columns of Tables 1–3: the dynamic
// compressed index must track the text's entropy (nHk + lower-order
// terms) while the suffix-tree solution pays Θ(n log n) bits, across
// sources from incompressible to highly repetitive.
func space(quick bool) {
	fmt.Println("=== Space: compressed dynamic index vs entropy vs baselines ===")
	fmt.Println("paper: ours nHk + o(n log σ) + O(n log n/s); suffix tree Θ(n log n) bits")
	n := 1 << 17
	if quick {
		n = 1 << 14
	}
	fmt.Printf("\n%8s %8s | %12s %12s %12s\n",
		"skew", "H0", "T2+FM b/sym", "DynFM b/sym", "SufTree b/sym")
	// Order-0 sources built directly (bypassing collection defaults) so
	// the skew drives the zero-order entropy the Huffman-shaped wavelets
	// compress to — skew 0 really is the uniform, incompressible source.
	// (Entropy is not monotone in skew: the geometric rank distribution
	// truncates at σ, so very high skew re-approaches uniform. Rows are
	// printed in the sweep order; read the H0 column.)
	type row struct {
		skew, h0, ours, dfm, st float64
	}
	var rows []row
	for _, skew := range []float64{0.0, 0.8, 0.65, 0.5} {
		src := textgen.NewSource(64, 0, skew, 3030)
		var docs []doc.Doc
		total := 0
		for id := uint64(1); total < n; id++ {
			d := doc.Doc{ID: id, Data: src.Generate(1024)}
			docs = append(docs, d)
			total += len(d.Data)
		}
		text := concat(docs)
		h0 := huffman.H0Bytes(text)

		ours := core.NewWorstCase(core.Options{Builder: fmBuilder(16), Inline: true})
		dfm := baseline.NewDynFM(16)
		st := baseline.NewSTIndex()
		for _, d := range docs {
			ours.Insert(d)
			dfm.Insert(d)
			st.Insert(d)
		}
		bits := func(sz int64) float64 { return float64(sz) / float64(len(text)) }
		rows = append(rows, row{skew, h0, bits(ours.SizeBits()), bits(dfm.SizeBits()), bits(st.SizeBits())})
	}
	for _, r := range rows {
		fmt.Printf("%8.2f %8.2f | %12.1f %12.1f %12.1f\n", r.skew, r.h0, r.ours, r.dfm, r.st)
	}
	fmt.Println("\nshape check: our index's compressed payload tracks H0 (the Huffman-")
	fmt.Println("shaped wavelet), moving bits/sym with the source entropy on top of the")
	fmt.Println("fixed O(n log n/s) sampling overhead; this baseline DynFM realization")
	fmt.Println("uses a fixed-depth dynamic wavelet (entropy-blind, flat bits/sym); the")
	fmt.Println("suffix tree is 20-40x larger — Table 2's space story.")
}
