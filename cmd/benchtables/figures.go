package main

import (
	"fmt"
	"math"
	"sort"
	"time"

	"dyncoll/internal/binrel"
	"dyncoll/internal/core"
	"dyncoll/internal/doc"
	"dyncoll/internal/graph"
	"dyncoll/internal/textgen"
)

// updatable is the slice of the collection API the latency churn needs.
type updatable interface {
	Insert(d doc.Doc) error
	Delete(id uint64) bool
}

// ----------------------------------------------------------------------
// Figure 1 — Transformation 1's sub-collection machinery: geometric
// capacities, small uncompressed C0, cascaded rebuilds.
// ----------------------------------------------------------------------

func fig1(quick bool) {
	fmt.Println("=== Figure 1: Transformation 1 sub-collections (trace) ===")
	fmt.Println("paper: |C0| ≤ 2n/log²n uncompressed; max_i grow by factor logᵋn; texts cascade")
	docs := 3000
	if quick {
		docs = 600
	}
	a := core.NewAmortized(core.Options{Builder: fmBuilder(8)})
	gen := textgen.NewCollection(textgen.CollectionOptions{
		Sigma: 16, MinLen: 100, MaxLen: 500, Seed: 123,
	})
	checkpoints := map[int]bool{docs / 10: true, docs / 3: true, docs: true}
	maxC0Ratio := 0.0
	for i := 1; i <= docs; i++ {
		a.Insert(gen.NextDoc())
		st := a.Stats()
		n := a.Len()
		if n > 4096 {
			lg := math.Log2(float64(n))
			bound := 2 * float64(n) / (lg * lg)
			if r := float64(st.LevelSizes[0]) / bound; r > maxC0Ratio {
				maxC0Ratio = r
			}
		}
		if checkpoints[i] {
			fmt.Printf("\nafter %d inserts (n=%d): rebuilds=%d global=%d\n",
				i, n, st.LevelRebuilds, st.GlobalRebuilds)
			fmt.Printf("  %-6s %12s %12s\n", "level", "size", "cap")
			for j, sz := range st.LevelSizes {
				tag := ""
				if j == 0 {
					tag = " (C0, uncompressed)"
				}
				fmt.Printf("  %-6d %12d %12d%s\n", j, sz, st.LevelCaps[j], tag)
			}
		}
	}
	fmt.Printf("\nmax |C0| / (2n/log²n) observed: %.2f (paper bound: O(1))\n", maxC0Ratio)
}

// ----------------------------------------------------------------------
// Figures 2–3 — Transformation 2's worst-case machinery: update-latency
// distribution vs Transformation 1, plus the Dietz–Sleator dead-fraction
// invariant on top collections.
// ----------------------------------------------------------------------

func fig23(quick bool) {
	fmt.Println("=== Figures 2–3: worst-case update machinery (T2 vs T1) ===")
	fmt.Println("paper: T2 bounds foreground work per update (locked copies + background")
	fmt.Println("builds + Dietz–Sleator top sweeping); T1 pays for whole rebuilds inline")
	ops := 2500
	if quick {
		ops = 600
	}

	churn := func(mk func() updatable) (lat []time.Duration) {
		gen := textgen.NewCollection(textgen.CollectionOptions{
			Sigma: 16, MinLen: 100, MaxLen: 600, Seed: 321,
		})
		idx := mk()
		var live []uint64
		for i := 0; i < ops; i++ {
			d := gen.NextDoc()
			t0 := time.Now()
			idx.Insert(d)
			lat = append(lat, time.Since(t0))
			live = append(live, d.ID)
			if len(live) > 40 && i%2 == 0 {
				id := live[0]
				live = live[1:]
				t0 = time.Now()
				idx.Delete(id)
				lat = append(lat, time.Since(t0))
			}
		}
		sort.Slice(lat, func(a, b int) bool { return lat[a] < lat[b] })
		return lat
	}

	t1 := churn(func() updatable {
		return core.NewAmortized(core.Options{Builder: fmBuilder(8)})
	})
	w := core.NewWorstCase(core.Options{Builder: fmBuilder(8)})
	t2 := churn(func() updatable { return w })
	w.WaitIdle()

	pct := func(l []time.Duration, p float64) time.Duration {
		return l[int(float64(len(l)-1)*p)]
	}
	fmt.Printf("\n%-18s %12s %12s %12s %12s\n", "update latency", "p50", "p90", "p99", "max")
	fmt.Printf("%-18s %12v %12v %12v %12v\n", "T1 (amortized)",
		pct(t1, 0.5), pct(t1, 0.9), pct(t1, 0.99), t1[len(t1)-1])
	fmt.Printf("%-18s %12v %12v %12v %12v\n", "T2 (worst-case)",
		pct(t2, 0.5), pct(t2, 0.9), pct(t2, 0.99), t2[len(t2)-1])

	st := w.Stats()
	fmt.Printf("\nT2 machinery counters: background builds=%d sync builds=%d temp parks=%d\n",
		st.BackgroundBuilds, st.SyncBuilds, st.TempParks)
	fmt.Printf("top collections: %d (max %d), purge sweeps=%d, rebalances=%d\n",
		st.Tops, st.MaxTops, st.TopPurges, st.Rebalances)
	worstDead := 0.0
	for i, dead := range st.TopDead {
		if tot := st.TopSizes[i] + dead; tot > 0 {
			if f := float64(dead) / float64(tot); f > worstDead {
				worstDead = f
			}
		}
	}
	fmt.Printf("worst top dead-fraction: %.3f (Dietz–Sleator bound ≈ (1+h_2τ)/τ, τ=%d)\n",
		worstDead, w.Tau())
	fmt.Println("\nshape check: T2's sync builds ≪ ops and its p99 sits below T1's; on a")
	fmt.Println("single-core host the max column converges because background builds share the CPU.")
}

// ----------------------------------------------------------------------
// Theorem 2 — dynamic binary relations.
// ----------------------------------------------------------------------

func theorem2(quick bool) {
	fmt.Println("=== Theorem 2: dynamic compressed binary relations ===")
	fmt.Println("paper: report O((k+1)·loglog σ·loglog n)/item, count O(log n), update O(logᵋn)")
	sizes := []int{1 << 14, 1 << 16, 1 << 18}
	if quick {
		sizes = []int{1 << 12, 1 << 14}
	}
	fmt.Printf("\n%10s %14s %16s %16s %14s %12s\n",
		"pairs", "add(ns/op)", "related(ns/op)", "report(ns/item)", "count(ns/op)", "bits/pair")
	for _, n := range sizes {
		objects := n / 8
		labels := 256
		r := binrel.New(binrel.Options{})
		zipf := textgen.NewSource(255, 0, 0.7, 5)
		labStream := zipf.Generate(2 * n)

		start := time.Now()
		added := 0
		for i := 0; added < n && i < len(labStream); i++ {
			o := uint64(i % objects)
			l := uint64(labStream[i]) % uint64(labels)
			if r.Add(o, l) {
				added++
			}
		}
		addNs := time.Since(start).Nanoseconds() / int64(added)

		tRel := timeIt(2000, func() {
			r.Related(uint64(added)%uint64(objects), uint64(added)%uint64(labels))
		})

		items := 0
		tReport := timeIt(50, func() {
			items = 0
			for o := uint64(0); o < 64; o++ {
				r.LabelsOf(o, func(uint64) bool { items++; return true })
			}
		})
		var perItem time.Duration
		if items > 0 {
			perItem = tReport / time.Duration(items)
		}

		tCount := timeIt(2000, func() {
			r.CountObjects(uint64(added) % uint64(labels))
		})

		fmt.Printf("%10d %14d %16d %16d %14d %12.1f\n",
			r.Len(), addNs, tRel.Nanoseconds(), perItem.Nanoseconds(),
			tCount.Nanoseconds(), float64(r.SizeBits())/float64(r.Len()))
	}
	fmt.Println("\nshape check: per-item report cost stays near-flat as n grows 16×;")
	fmt.Println("space per pair tracks the label-distribution entropy, not log(σl·t).")
}

// ----------------------------------------------------------------------
// Theorem 3 — dynamic graphs.
// ----------------------------------------------------------------------

func theorem3(quick bool) {
	fmt.Println("=== Theorem 3: dynamic compressed directed graphs ===")
	fmt.Println("paper: same bounds as Theorem 2 with objects = labels = nodes")
	edges := 1 << 16
	if quick {
		edges = 1 << 13
	}
	nodes := edges / 8

	g := graph.New(graph.Options{})
	// Power-law-ish out-degrees via preferential attachment.
	src := textgen.NewSource(255, 0, 0.6, 11)
	stream := src.Generate(4 * edges)
	start := time.Now()
	added := 0
	var probes []uint64 // nodes known to have out-edges
	for i := 0; added < edges && i+1 < len(stream); i += 2 {
		// Skewed out-degrees without a single mega-hub: mix the symbol with
		// the position so popular symbols spread over a node neighborhood.
		u := (uint64(stream[i])*31 + uint64(i%97)) % uint64(nodes)
		v := (uint64(stream[i+1])*uint64(stream[i]) + uint64(i)) % uint64(nodes)
		if g.AddEdge(u, v) {
			added++
			if len(probes) < 64 && added%16 == 1 {
				probes = append(probes, u)
			}
		}
	}
	addNs := time.Since(start).Nanoseconds() / int64(added)

	tHas := timeIt(2000, func() { g.HasEdge(7, 9) })
	items := 0
	tNeigh := timeIt(50, func() {
		items = 0
		for _, u := range probes {
			g.NeighborsFunc(u, func(uint64) bool { items++; return true })
		}
	})
	perItem := 0.0
	if items > 0 {
		perItem = float64(tNeigh.Nanoseconds()) / float64(items)
	}
	tDeg := timeIt(2000, func() { g.InDegree(3) })

	// Churn: delete & re-add a block of edges.
	all := g.Edges()
	start = time.Now()
	for _, e := range all[:len(all)/8] {
		g.DeleteEdge(e.Object, e.Label)
	}
	for _, e := range all[:len(all)/8] {
		g.AddEdge(e.Object, e.Label)
	}
	churnNs := time.Since(start).Nanoseconds() / int64(2*(len(all)/8))

	fmt.Printf("\nedges=%d nodes=%d\n", g.EdgeCount(), nodes)
	fmt.Printf("%-26s %12d\n", "add (ns/edge)", addNs)
	fmt.Printf("%-26s %12d\n", "has-edge (ns/op)", tHas.Nanoseconds())
	fmt.Printf("%-26s %12.2f\n", "neighbors (ns/item)", perItem)
	fmt.Printf("%-26s %12d\n", "in-degree (ns/op)", tDeg.Nanoseconds())
	fmt.Printf("%-26s %12d\n", "churn delete+add (ns/op)", churnNs)
	fmt.Printf("%-26s %12.1f\n", "bits/edge", float64(g.SizeBits())/float64(g.EdgeCount()))
	fmt.Println("\nshape check: reporting stays O(1)-ish per delivered edge; updates polylog.")
}
