package main

import (
	"fmt"
	"math/rand"
	"time"

	"dyncoll/internal/core"
	"dyncoll/internal/textgen"
)

// Ablations for the design choices DESIGN.md calls out: the τ
// space/overhead knob, the ε level-growth exponent, and Transformation 3
// versus Transformation 1. The paper states these as parameters of the
// theorems; the ablation shows each trade-off empirically.

func ablation(quick bool) {
	ablationTau(quick)
	fmt.Println()
	ablationEpsilon(quick)
	fmt.Println()
	ablationT3(quick)
}

// ablationTau sweeps τ: larger τ ⇒ purge at a smaller dead fraction, so
// less space is wasted on dead symbols and bookkeeping (O(n·log τ/τ)
// bits) but deletions trigger rebuilds more often — the paper's
// O(u(n)·τ) term in the deletion cost.
func ablationTau(quick bool) {
	fmt.Println("=== Ablation: τ (space overhead vs deletion rebuild work) ===")
	fmt.Println("paper: space overhead O((log σ+log τ)/τ)/sym; deletion cost carries O(u·τ)")
	n := 1 << 16
	if quick {
		n = 1 << 14
	}
	fmt.Printf("\n%6s %12s %14s %10s %16s\n", "τ", "bits/sym", "count(µs/qry)", "purges", "delete(ns/sym)")
	for _, tau := range []int{2, 4, 8, 16, 64} {
		gen := textgen.NewCollection(textgen.CollectionOptions{
			Sigma: 16, MinLen: 200, MaxLen: 800, Seed: 77,
		})
		a := core.NewAmortized(core.Options{Builder: fmBuilder(8), Tau: tau})
		var ids []uint64
		for a.Len() < n {
			d := gen.NextDoc()
			a.Insert(d)
			ids = append(ids, d.ID)
		}
		// Delete 40% of documents in random order; each level purges once
		// its dead fraction crosses 1/τ.
		rng := rand.New(rand.NewSource(7))
		delSyms := 0
		delStart := time.Now()
		for _, i := range rng.Perm(len(ids))[:len(ids)*2/5] {
			if n, ok := a.DocLen(ids[i]); ok {
				delSyms += n
			}
			a.Delete(ids[i])
		}
		delNs := time.Since(delStart).Nanoseconds() / int64(delSyms)
		st := a.Stats()
		ps := textgen.NewPatternSampler(gen.Docs, 3)
		pats := ps.PlantedSet(30, 8)
		tCount := timeIt(5, func() {
			for _, p := range pats {
				a.Count(p)
			}
		}) / time.Duration(len(pats))
		bits := float64(a.SizeBits()) / float64(a.Len())
		fmt.Printf("%6d %12.2f %14.2f %10d %16d\n",
			tau, bits, float64(tCount.Nanoseconds())/1e3, st.Purges, delNs)
	}
	fmt.Println("\nshape check: purges (and so deletion rebuild work) rise with τ while the")
	fmt.Println("space overhead — dead weight plus V bookkeeping — falls, the paper's trade.")
}

// ablationEpsilon sweeps ε: smaller ε ⇒ more levels, cheaper per-level
// rebuilds (lower insert cost) but a wider query fan-out.
func ablationEpsilon(quick bool) {
	fmt.Println("=== Ablation: ε (insert amortization vs query fan-out) ===")
	fmt.Println("paper: insert O(u·logᵋn)·(1/ε) with ⌈2/ε⌉ level moves; query fans over all levels")
	n := 1 << 16
	if quick {
		n = 1 << 14
	}
	fmt.Printf("\n%8s %8s %16s %14s\n", "ε", "levels", "insert(ns/sym)", "count(µs/qry)")
	for _, eps := range []float64{0.25, 0.5, 0.75, 1.0} {
		gen := textgen.NewCollection(textgen.CollectionOptions{
			Sigma: 16, MinLen: 200, MaxLen: 800, Seed: 78,
		})
		a := core.NewAmortized(core.Options{Builder: fmBuilder(8), Epsilon: eps})
		start := time.Now()
		for a.Len() < n {
			a.Insert(gen.NextDoc())
		}
		insNs := time.Since(start).Nanoseconds() / int64(a.Len())
		ps := textgen.NewPatternSampler(gen.Docs, 3)
		pats := ps.PlantedSet(30, 8)
		tCount := timeIt(5, func() {
			for _, p := range pats {
				a.Count(p)
			}
		}) / time.Duration(len(pats))
		fmt.Printf("%8.2f %8d %16d %14.2f\n",
			eps, a.Stats().Levels, insNs, float64(tCount.Nanoseconds())/1e3)
	}
	fmt.Println("\nshape check: smaller ε buys more levels; insert cost and fan-out move")
	fmt.Println("in opposite directions as the paper's 1/ε trade-off predicts.")
}

// ablationT3 compares Transformation 1 (log^ε n capacity ratio) with
// Transformation 3 (ratio 2, O(log log n) levels): cheaper inserts,
// higher query fan-out.
func ablationT3(quick bool) {
	fmt.Println("=== Ablation: Transformation 1 vs Transformation 3 ===")
	fmt.Println("paper: T3 inserts O(u·loglog n) amortized; queries visit O(loglog n) levels")
	n := 1 << 16
	if quick {
		n = 1 << 14
	}
	for _, ratio2 := range []bool{false, true} {
		name := "T1 (ratio logᵋn)"
		if ratio2 {
			name = "T3 (ratio 2)"
		}
		gen := textgen.NewCollection(textgen.CollectionOptions{
			Sigma: 16, MinLen: 200, MaxLen: 800, Seed: 79,
		})
		a := core.NewAmortized(core.Options{Builder: fmBuilder(8), Ratio2: ratio2})
		start := time.Now()
		for a.Len() < n {
			a.Insert(gen.NextDoc())
		}
		insNs := time.Since(start).Nanoseconds() / int64(a.Len())
		ps := textgen.NewPatternSampler(gen.Docs, 3)
		pats := ps.PlantedSet(30, 8)
		tCount := timeIt(5, func() {
			for _, p := range pats {
				a.Count(p)
			}
		}) / time.Duration(len(pats))
		fmt.Printf("%-20s levels=%2d insert=%6d ns/sym  count=%7.2f µs/qry  rebuilds=%d\n",
			name, a.Stats().Levels, insNs,
			float64(tCount.Nanoseconds())/1e3, a.Stats().LevelRebuilds)
	}
	fmt.Println("\nshape check: T3 has more levels, fewer symbols moved per insert")
	fmt.Println("(cheaper updates), and a correspondingly wider query fan-out.")
}
