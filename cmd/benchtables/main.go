// Command benchtables regenerates every table and figure of the paper's
// results on synthetic workloads. The paper is a theory paper — its
// "evaluation" is the asymptotic trade-off tables (Tables 1–4) and the
// structural figures (Figs. 1–3) plus Theorems 2–3 — so each experiment
// here measures the corresponding quantity empirically and prints rows
// whose *shape* (who wins, how costs grow with n, σ, s, |P|) can be
// compared against the paper's bounds. DESIGN.md records how the
// implementation maps onto the paper.
//
// Usage:
//
//	benchtables -exp all          # everything (minutes)
//	benchtables -exp table2       # one experiment
//	benchtables -exp table2 -quick
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table1 table2 table3 table4 fig1 fig23 theorem2 theorem3 ablation space all")
	quick := flag.Bool("quick", false, "smaller sweeps (for smoke tests)")
	flag.Parse()

	runs := map[string]func(bool){
		"table1":   table1,
		"table2":   table2,
		"table3":   table3,
		"table4":   table4,
		"fig1":     fig1,
		"fig23":    fig23,
		"theorem2": theorem2,
		"theorem3": theorem3,
		"ablation": ablation,
		"space":    space,
	}
	if *exp == "all" {
		for _, name := range []string{"table1", "table2", "table3", "table4", "fig1", "fig23", "theorem2", "theorem3", "ablation", "space"} {
			runs[name](*quick)
			fmt.Println()
		}
		return
	}
	fn, ok := runs[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	fn(*quick)
}
