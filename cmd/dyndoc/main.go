// Command dyndoc is an interactive/scriptable front end for a dynamic
// compressed document collection. It reads simple commands from stdin
// (or a script via -f) and prints results to stdout:
//
//	add <id> <text…>      insert a document
//	addfile <id> <path>   insert a file's contents as a document
//	del <id>              delete a document
//	find <pattern>        list occurrences (doc id + offset)
//	count <pattern>       count occurrences
//	extract <id> <off> <len>
//	stats                 collection statistics
//	quit
//
// Flags select the transformation, static index, shard count, and
// tuning parameters, so the CLI doubles as a manual test bench for the
// paper's machinery.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"dyncoll"
)

func main() {
	var (
		transform = flag.String("transform", "worstcase", "transformation: amortized | worstcase | fastinsert")
		index     = flag.String("index", "fm", "static index by registry name: fm | sa | csa | any RegisterIndex name")
		sample    = flag.Int("s", 16, "suffix-array sample rate s (locate cost)")
		tau       = flag.Int("tau", 0, "lazy-deletion parameter τ (0 = automatic)")
		shards    = flag.Int("shards", 0, "shard count p (0 = unsharded; p ≥ 1 partitions by ID hash with parallel fan-out queries)")
		counting  = flag.Bool("counting", false, "enable Theorem 1 counting structures")
		script    = flag.String("f", "", "read commands from file instead of stdin")
	)
	flag.Parse()

	opts := []dyncoll.Option{
		dyncoll.WithIndex(*index),
		dyncoll.WithSampleRate(*sample),
		dyncoll.WithTau(*tau),
	}
	if *counting {
		opts = append(opts, dyncoll.WithCounting())
	}
	if *shards != 0 { // 0 keeps the unsharded default; negatives reach WithShards and fail
		opts = append(opts, dyncoll.WithShards(*shards))
	}
	switch *transform {
	case "amortized":
		opts = append(opts, dyncoll.WithTransformation(dyncoll.Amortized))
	case "fastinsert":
		opts = append(opts, dyncoll.WithTransformation(dyncoll.AmortizedFastInsert))
	case "worstcase":
		opts = append(opts, dyncoll.WithTransformation(dyncoll.WorstCase))
	default:
		fmt.Fprintf(os.Stderr, "unknown transformation %q\n", *transform)
		os.Exit(2)
	}

	c, err := dyncoll.NewCollection(opts...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	in := os.Stdin
	if *script != "" {
		f, err := os.Open(*script)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}

	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.SplitN(line, " ", 2)
		cmd := fields[0]
		rest := ""
		if len(fields) > 1 {
			rest = fields[1]
		}
		if err := run(c, cmd, rest); err != nil {
			if err == errQuit {
				return
			}
			fmt.Printf("error: %v\n", err)
		}
	}
}

var errQuit = fmt.Errorf("quit")

func run(c *dyncoll.Collection, cmd, rest string) error {
	switch cmd {
	case "quit", "exit":
		return errQuit

	case "add":
		parts := strings.SplitN(rest, " ", 2)
		if len(parts) != 2 {
			return fmt.Errorf("usage: add <id> <text>")
		}
		id, err := strconv.ParseUint(parts[0], 10, 64)
		if err != nil {
			return err
		}
		if err := c.Insert(dyncoll.Document{ID: id, Data: []byte(parts[1])}); err != nil {
			return err
		}
		fmt.Printf("added %d (%d bytes)\n", id, len(parts[1]))

	case "addfile":
		parts := strings.Fields(rest)
		if len(parts) != 2 {
			return fmt.Errorf("usage: addfile <id> <path>")
		}
		id, err := strconv.ParseUint(parts[0], 10, 64)
		if err != nil {
			return err
		}
		data, err := os.ReadFile(parts[1])
		if err != nil {
			return err
		}
		if err := c.Insert(dyncoll.Document{ID: id, Data: data}); err != nil {
			return err
		}
		fmt.Printf("added %d (%d bytes)\n", id, len(data))

	case "del":
		id, err := strconv.ParseUint(strings.TrimSpace(rest), 10, 64)
		if err != nil {
			return err
		}
		if err := c.Delete(id); err != nil {
			return err
		}
		fmt.Printf("deleted %d\n", id)

	case "find":
		if rest == "" {
			return fmt.Errorf("usage: find <pattern>")
		}
		n := 0
		c.FindFunc([]byte(rest), func(o dyncoll.Occurrence) bool {
			fmt.Printf("  doc %d @ %d\n", o.DocID, o.Off)
			n++
			return n < 1000
		})
		fmt.Printf("%d occurrence(s)\n", n)

	case "count":
		if rest == "" {
			return fmt.Errorf("usage: count <pattern>")
		}
		fmt.Println(c.Count([]byte(rest)))

	case "extract":
		parts := strings.Fields(rest)
		if len(parts) != 3 {
			return fmt.Errorf("usage: extract <id> <off> <len>")
		}
		id, err1 := strconv.ParseUint(parts[0], 10, 64)
		off, err2 := strconv.Atoi(parts[1])
		length, err3 := strconv.Atoi(parts[2])
		if err1 != nil || err2 != nil || err3 != nil {
			return fmt.Errorf("bad arguments")
		}
		data, ok := c.Extract(id, off, length)
		if !ok {
			return fmt.Errorf("no document %d or range out of bounds", id)
		}
		fmt.Printf("%q\n", data)

	case "stats":
		c.WaitIdle()
		st := c.Stats()
		fmt.Printf("documents: %d\n", c.DocCount())
		fmt.Printf("symbols:   %d\n", c.Len())
		fmt.Printf("index:     %d bits (%.2f bits/symbol)\n",
			c.SizeBits(), float64(c.SizeBits())/float64(max(1, c.Len())))
		if st.Shards > 0 {
			fmt.Printf("shards:    %d\n", st.Shards)
		}
		fmt.Printf("levels:    %d (rebuilds %d, global %d)\n", st.Levels, st.Rebuilds, st.GlobalRebuilds)

	default:
		return fmt.Errorf("unknown command %q (add addfile del find count extract stats quit)", cmd)
	}
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
