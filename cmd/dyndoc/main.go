// Command dyndoc is an interactive/scriptable front end for the
// dynamic compressed structures. It reads simple commands from stdin
// (or a script via -f) and prints results to stdout. -mode selects the
// structure; all modes share the engine-level `stats` report (ladder
// occupancy, pending background builds, top collections), because all
// three structures run on the same generic transformation engine.
//
// -mode collection (default):
//
//	add <id> <text…>      insert a document
//	addfile <id> <path>   insert a file's contents as a document
//	del <id>              delete a document
//	find <pattern>        list occurrences (doc id + offset)
//	findn <k> <pattern>   list at most k occurrences (early-break fast path)
//	grep <regex>          list regex matches (doc id + offset + length)
//	top <k> <pattern>     k best-ranked documents for an exact pattern
//	rtop <k> <regex>      k best-ranked documents for a regex
//	count <pattern>       count occurrences
//	extract <id> <off> <len>
//	save <path>           write a snapshot (atomic temp-file + rename)
//	load <path>           replace the structure with a snapshot
//	stats                 engine statistics
//	quit
//
// -mode relation:
//
//	rel <obj> <label>     add the pair
//	unrel <obj> <label>   delete the pair
//	related <obj> <label>
//	labels <obj>          sorted labels of an object
//	objects <label>       sorted objects of a label
//	save/load <path> | stats | quit
//
// -mode graph:
//
//	edge <u> <v>          add the edge u→v
//	deledge <u> <v>       delete the edge
//	has <u> <v>
//	succ <u>              sorted successors
//	pred <v>              sorted predecessors
//	save/load <path> | stats | quit
//
// Flags select the transformation, static index (collection mode),
// shard count, and tuning parameters, so the CLI doubles as a manual
// test bench for the paper's machinery.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"dyncoll"
	"dyncoll/internal/server"
)

func main() {
	var (
		mode      = flag.String("mode", "collection", "structure: collection | relation | graph")
		transform = flag.String("transform", "", "transformation: amortized | worstcase | fastinsert (default: worstcase for collections, amortized for relations/graphs)")
		index     = flag.String("index", "fm", "static index by registry name: fm | sa | csa | any RegisterIndex name (collection mode)")
		sample    = flag.Int("s", 16, "suffix-array sample rate s (collection mode)")
		tau       = flag.Int("tau", 0, "lazy-deletion parameter τ (0 = automatic)")
		shards    = flag.Int("shards", 0, "shard count p (0 = unsharded; p ≥ 1 partitions by key hash with parallel fan-out queries)")
		counting  = flag.Bool("counting", false, "enable Theorem 1 counting structures (collection mode)")
		script    = flag.String("f", "", "read commands from file instead of stdin")
	)
	flag.BoolVar(&useMmap, "mmap", false, "save/load use the v2 mapped snapshot format: O(1) open, queries served from the page cache")
	flag.Parse()

	var opts []dyncoll.Option
	if *mode == "collection" {
		opts = append(opts,
			dyncoll.WithIndex(*index),
			dyncoll.WithSampleRate(*sample),
		)
		if *counting {
			opts = append(opts, dyncoll.WithCounting())
		}
	}
	opts = append(opts, dyncoll.WithTau(*tau))
	if *shards != 0 { // 0 keeps the unsharded default; negatives reach WithShards and fail
		opts = append(opts, dyncoll.WithShards(*shards))
	}
	switch *transform {
	case "amortized":
		opts = append(opts, dyncoll.WithTransformation(dyncoll.Amortized))
	case "fastinsert":
		opts = append(opts, dyncoll.WithTransformation(dyncoll.AmortizedFastInsert))
	case "worstcase":
		opts = append(opts, dyncoll.WithTransformation(dyncoll.WorstCase))
	case "":
		// Each structure's default: worstcase for collections, amortized
		// for relations and graphs.
	default:
		fmt.Fprintf(os.Stderr, "unknown transformation %q\n", *transform)
		os.Exit(2)
	}

	var run func(cmd, rest string) error
	switch *mode {
	case "collection":
		c, err := dyncoll.NewCollection(opts...)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		run = func(cmd, rest string) error { return runCollection(c, cmd, rest) }
	case "relation":
		r, err := dyncoll.NewRelation(opts...)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		run = func(cmd, rest string) error { return runRelation(r, cmd, rest) }
	case "graph":
		g, err := dyncoll.NewGraph(opts...)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		run = func(cmd, rest string) error { return runGraph(g, cmd, rest) }
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(2)
	}

	in := os.Stdin
	if *script != "" {
		f, err := os.Open(*script)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}

	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.SplitN(line, " ", 2)
		cmd := fields[0]
		rest := ""
		if len(fields) > 1 {
			rest = fields[1]
		}
		if err := run(cmd, rest); err != nil {
			if err == errQuit {
				return
			}
			fmt.Printf("error: %v\n", err)
		}
	}
}

var errQuit = fmt.Errorf("quit")

// printStats renders the uniform engine-level report every mode shares:
// live size, space, shard count, ladder occupancy, in-flight background
// builds, and top collections. The report is built from the same
// server.LadderVarz type the dyndocd /varz endpoint serves, so the CLI
// and the service metrics cannot drift.
func printStats(st dyncoll.IndexStats, unit string, live int, sizeBits int64, shardSizes []int) {
	v := server.NewLadderVarz(st, unit, live, sizeBits)
	v.ShardSizes = shardSizes
	v.WriteText(os.Stdout)
}

func runCollection(c *dyncoll.Collection, cmd, rest string) error {
	if handled, err := runSaveLoad(c, cmd, rest, func() string {
		return fmt.Sprintf("%d document(s)", c.DocCount())
	}); handled {
		return err
	}
	switch cmd {
	case "quit", "exit":
		return errQuit

	case "add":
		parts := strings.SplitN(rest, " ", 2)
		if len(parts) != 2 {
			return fmt.Errorf("usage: add <id> <text>")
		}
		id, err := strconv.ParseUint(parts[0], 10, 64)
		if err != nil {
			return err
		}
		if err := c.Insert(dyncoll.Document{ID: id, Data: []byte(parts[1])}); err != nil {
			return err
		}
		fmt.Printf("added %d (%d bytes)\n", id, len(parts[1]))

	case "addfile":
		parts := strings.Fields(rest)
		if len(parts) != 2 {
			return fmt.Errorf("usage: addfile <id> <path>")
		}
		id, err := strconv.ParseUint(parts[0], 10, 64)
		if err != nil {
			return err
		}
		data, err := os.ReadFile(parts[1])
		if err != nil {
			return err
		}
		if err := c.Insert(dyncoll.Document{ID: id, Data: data}); err != nil {
			return err
		}
		fmt.Printf("added %d (%d bytes)\n", id, len(data))

	case "del":
		id, err := strconv.ParseUint(strings.TrimSpace(rest), 10, 64)
		if err != nil {
			return err
		}
		if err := c.Delete(id); err != nil {
			return err
		}
		fmt.Printf("deleted %d\n", id)

	case "find":
		if rest == "" {
			return fmt.Errorf("usage: find <pattern>")
		}
		n := 0
		c.FindFunc([]byte(rest), func(o dyncoll.Occurrence) bool {
			fmt.Printf("  doc %d @ %d\n", o.DocID, o.Off)
			n++
			return n < 1000
		})
		fmt.Printf("%d occurrence(s)\n", n)

	case "findn":
		parts := strings.SplitN(rest, " ", 2)
		if len(parts) != 2 {
			return fmt.Errorf("usage: findn <k> <pattern>")
		}
		k, err := strconv.Atoi(parts[0])
		if err != nil {
			return err
		}
		occs := c.FindLimit([]byte(parts[1]), k)
		for _, o := range occs {
			fmt.Printf("  doc %d @ %d\n", o.DocID, o.Off)
		}
		fmt.Printf("%d occurrence(s)\n", len(occs))

	case "grep":
		if rest == "" {
			return fmt.Errorf("usage: grep <regex>")
		}
		it, err := c.FindRegexp(rest)
		if err != nil {
			return err
		}
		n := 0
		for m := range it {
			fmt.Printf("  doc %d @ %d len %d\n", m.Doc, m.Off, m.Len)
			if n++; n >= 1000 {
				break
			}
		}
		fmt.Printf("%d match(es)\n", n)

	case "top", "rtop":
		parts := strings.SplitN(rest, " ", 2)
		if len(parts) != 2 {
			return fmt.Errorf("usage: %s <k> <pattern>", cmd)
		}
		k, err := strconv.Atoi(parts[0])
		if err != nil {
			return err
		}
		var it func(yield func(dyncoll.Match) bool)
		if cmd == "top" {
			it = c.FindTopK([]byte(parts[1]), k)
		} else if it, err = c.FindRegexpTopK(parts[1], k); err != nil {
			return err
		}
		n := 0
		for m := range it {
			fmt.Printf("  doc %d score %.4f (first @ %d)\n", m.Doc, m.Score, m.Off)
			n++
		}
		fmt.Printf("%d document(s)\n", n)

	case "count":
		if rest == "" {
			return fmt.Errorf("usage: count <pattern>")
		}
		fmt.Println(c.Count([]byte(rest)))

	case "extract":
		parts := strings.Fields(rest)
		if len(parts) != 3 {
			return fmt.Errorf("usage: extract <id> <off> <len>")
		}
		id, err1 := strconv.ParseUint(parts[0], 10, 64)
		off, err2 := strconv.Atoi(parts[1])
		length, err3 := strconv.Atoi(parts[2])
		if err1 != nil || err2 != nil || err3 != nil {
			return fmt.Errorf("bad arguments")
		}
		data, ok := c.Extract(id, off, length)
		if !ok {
			return fmt.Errorf("no document %d or range out of bounds", id)
		}
		fmt.Printf("%q\n", data)

	case "stats":
		c.WaitIdle()
		fmt.Printf("%-10s %d\n", "documents:", c.DocCount())
		printStats(c.Stats(), "symbol", c.Len(), c.SizeBits(), c.ShardSizes())

	default:
		return fmt.Errorf("unknown command %q (add addfile del find findn grep top rtop count extract save load stats quit)", cmd)
	}
	return nil
}

// savable lets the three modes share the save/load command handling.
type savable interface {
	SaveFile(path string) error
	LoadFile(path string) error
	SaveMappedFile(path string) error
	LoadMappedFile(path string, opts ...dyncoll.MappedOption) error
}

// useMmap routes save/load through the v2 mapped snapshot format
// (-mmap flag).
var useMmap bool

// runSaveLoad handles the shared save/load commands; handled reports
// whether cmd was one of them.
func runSaveLoad(s savable, cmd, rest string, describe func() string) (handled bool, err error) {
	path := strings.TrimSpace(rest)
	switch cmd {
	case "save":
		if path == "" {
			return true, fmt.Errorf("usage: save <path>")
		}
		save := s.SaveFile
		if useMmap {
			save = s.SaveMappedFile
		}
		if err := save(path); err != nil {
			return true, err
		}
		fmt.Printf("saved %s to %s\n", describe(), path)
		return true, nil
	case "load":
		if path == "" {
			return true, fmt.Errorf("usage: load <path>")
		}
		load := s.LoadFile
		if useMmap {
			load = func(p string) error { return s.LoadMappedFile(p) }
		}
		if err := load(path); err != nil {
			return true, err
		}
		fmt.Printf("loaded %s from %s\n", describe(), path)
		return true, nil
	}
	return false, nil
}

// parsePair reads two uint64 arguments.
func parsePair(rest string) (a, b uint64, err error) {
	parts := strings.Fields(rest)
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("need two numeric arguments")
	}
	a, err1 := strconv.ParseUint(parts[0], 10, 64)
	b, err2 := strconv.ParseUint(parts[1], 10, 64)
	if err1 != nil || err2 != nil {
		return 0, 0, fmt.Errorf("bad arguments")
	}
	return a, b, nil
}

func parseOne(rest string) (uint64, error) {
	return strconv.ParseUint(strings.TrimSpace(rest), 10, 64)
}

func runRelation(r *dyncoll.Relation, cmd, rest string) error {
	if handled, err := runSaveLoad(r, cmd, rest, func() string {
		return fmt.Sprintf("%d pair(s)", r.Len())
	}); handled {
		return err
	}
	switch cmd {
	case "quit", "exit":
		return errQuit

	case "rel":
		o, l, err := parsePair(rest)
		if err != nil {
			return err
		}
		if err := r.Add(o, l); err != nil {
			return err
		}
		fmt.Printf("related %d ↦ %d\n", o, l)

	case "unrel":
		o, l, err := parsePair(rest)
		if err != nil {
			return err
		}
		if err := r.Delete(o, l); err != nil {
			return err
		}
		fmt.Printf("unrelated %d ↦ %d\n", o, l)

	case "related":
		o, l, err := parsePair(rest)
		if err != nil {
			return err
		}
		fmt.Println(r.Related(o, l))

	case "labels":
		o, err := parseOne(rest)
		if err != nil {
			return err
		}
		fmt.Println(r.Labels(o))

	case "objects":
		l, err := parseOne(rest)
		if err != nil {
			return err
		}
		fmt.Println(r.Objects(l))

	case "stats":
		r.WaitIdle()
		printStats(r.Stats(), "pair", r.Len(), r.SizeBits(), nil)

	default:
		return fmt.Errorf("unknown command %q (rel unrel related labels objects save load stats quit)", cmd)
	}
	return nil
}

func runGraph(g *dyncoll.Graph, cmd, rest string) error {
	if handled, err := runSaveLoad(g, cmd, rest, func() string {
		return fmt.Sprintf("%d edge(s)", g.EdgeCount())
	}); handled {
		return err
	}
	switch cmd {
	case "quit", "exit":
		return errQuit

	case "edge":
		u, v, err := parsePair(rest)
		if err != nil {
			return err
		}
		if err := g.AddEdge(u, v); err != nil {
			return err
		}
		fmt.Printf("edge %d → %d\n", u, v)

	case "deledge":
		u, v, err := parsePair(rest)
		if err != nil {
			return err
		}
		if err := g.DeleteEdge(u, v); err != nil {
			return err
		}
		fmt.Printf("deleted edge %d → %d\n", u, v)

	case "has":
		u, v, err := parsePair(rest)
		if err != nil {
			return err
		}
		fmt.Println(g.HasEdge(u, v))

	case "succ":
		u, err := parseOne(rest)
		if err != nil {
			return err
		}
		fmt.Println(g.Neighbors(u))

	case "pred":
		v, err := parseOne(rest)
		if err != nil {
			return err
		}
		fmt.Println(g.ReverseNeighbors(v))

	case "stats":
		g.WaitIdle()
		printStats(g.Stats(), "edge", g.EdgeCount(), g.SizeBits(), nil)

	default:
		return fmt.Errorf("unknown command %q (edge deledge has succ pred save load stats quit)", cmd)
	}
	return nil
}
