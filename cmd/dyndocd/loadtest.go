package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"net/url"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dyncoll/internal/server"
)

// The load test drives a running dyndocd (backend or frontend — the
// API is identical) with a configurable writer/reader mix and reports
// throughput and latency percentiles per operation class, reusing the
// server's own latency histogram so the client-side numbers and /varz
// are computed identically.

type loadtestConfig struct {
	target           string
	writers, readers int
	duration         time.Duration
	batch, docBytes  int
	preload          int
	idBase           uint64
	fault            string
	minAvail         float64
}

// availability buckets every request outcome (all operation classes)
// by measurement second — the fault-injection report: each bucket shows
// what fraction of that second's requests succeeded, so a kill at +3s
// is visible as a dip (or not) exactly where it happened.
type availability struct {
	start   time.Time
	buckets []availBucket
}

type availBucket struct{ ok, total atomic.Int64 }

func newAvailability(start time.Time, d time.Duration) *availability {
	return &availability{start: start, buckets: make([]availBucket, int(d/time.Second)+2)}
}

func (a *availability) record(ok bool) {
	i := int(time.Since(a.start) / time.Second)
	if i < 0 || i >= len(a.buckets) {
		return
	}
	a.buckets[i].total.Add(1)
	if ok {
		a.buckets[i].ok.Add(1)
	}
}

// report prints the per-second timeline and returns the overall
// availability fraction (1.0 when no request was recorded).
func (a *availability) report() float64 {
	var parts []string
	var okSum, totSum int64
	for i := range a.buckets {
		tot := a.buckets[i].total.Load()
		if tot == 0 {
			continue
		}
		ok := a.buckets[i].ok.Load()
		okSum += ok
		totSum += tot
		parts = append(parts, fmt.Sprintf("%3.0f%%", 100*float64(ok)/float64(tot)))
	}
	fmt.Printf("\navailability by second (all ops): [%s]\n", strings.Join(parts, " "))
	overall := 1.0
	if totSum > 0 {
		overall = float64(okSum) / float64(totSum)
	}
	fmt.Printf("overall availability: %.2f%% (%d/%d requests)\n", 100*overall, okSum, totSum)
	return overall
}

// vocab is the word pool documents are generated from; read patterns
// draw from the same pool so queries hit real matches.
var vocab = []string{
	"alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "golf",
	"hotel", "india", "juliett", "kilo", "lima", "mike", "november",
	"oscar", "papa", "quebec", "romeo", "sierra", "tango", "uniform",
	"victor", "whiskey", "xray", "yankee", "zulu",
}

// opStats aggregates one operation class across all goroutines.
type opStats struct {
	requests atomic.Int64
	errors   atomic.Int64
	hist     server.Histogram
}

func (s *opStats) observe(d time.Duration, ok bool) {
	s.requests.Add(1)
	if !ok {
		s.errors.Add(1)
	}
	s.hist.Observe(d)
}

func runLoadtest(cfg loadtestConfig) {
	sched, err := parseFaultSchedule(cfg.fault)
	if err != nil {
		log.Fatalf("loadtest: %v", err)
	}
	base := strings.TrimRight(cfg.target, "/")
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: cfg.writers + cfg.readers + 4}}

	// Readiness, so a scripted "start server; loadtest" doesn't race.
	if err := waitHealthy(client, base, 10*time.Second); err != nil {
		log.Fatalf("loadtest: target %s not healthy: %v", base, err)
	}

	var nextID atomic.Uint64
	nextID.Store(cfg.idBase)
	genDoc := func(rng *rand.Rand) map[string]any {
		var sb strings.Builder
		for sb.Len() < cfg.docBytes {
			sb.WriteString(vocab[rng.Intn(len(vocab))])
			sb.WriteByte(' ')
		}
		return map[string]any{"id": nextID.Add(1) - 1, "text": sb.String()}
	}
	postInsert := func(rng *rand.Rand, n int) (time.Duration, bool) {
		docs := make([]map[string]any, n)
		for i := range docs {
			docs[i] = genDoc(rng)
		}
		body, _ := json.Marshal(map[string]any{"docs": docs})
		start := time.Now()
		resp, err := client.Post(base+"/v1/insert", "application/json", bytes.NewReader(body))
		if err != nil {
			return time.Since(start), false
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return time.Since(start), resp.StatusCode == http.StatusOK
	}

	log.Printf("preloading %d document(s) into %s …", cfg.preload, base)
	preRng := rand.New(rand.NewSource(1))
	for done := 0; done < cfg.preload; done += cfg.batch {
		n := min(cfg.batch, cfg.preload-done)
		if _, ok := postInsert(preRng, n); !ok {
			log.Fatalf("loadtest: preload insert failed (is %s a dyndocd?)", base)
		}
	}

	var insertStats, countStats, findStats opStats
	var docsInserted atomic.Int64
	stop := make(chan struct{})
	var wg sync.WaitGroup

	start := time.Now()
	avail := newAvailability(start, cfg.duration)
	if len(sched) > 0 {
		go runFaultSchedule(sched, start)
	}

	for w := 0; w < cfg.writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-stop:
					return
				default:
				}
				d, ok := postInsert(rng, cfg.batch)
				insertStats.observe(d, ok)
				avail.record(ok)
				if ok {
					docsInserted.Add(int64(cfg.batch))
				}
			}
		}(int64(100 + w))
	}

	for r := 0; r < cfg.readers; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				word := vocab[rng.Intn(len(vocab))]
				if i%2 == 0 {
					start := time.Now()
					resp, err := client.Get(base + "/v1/count?q=" + url.QueryEscape(word))
					ok := err == nil && resp.StatusCode == http.StatusOK
					if err == nil {
						io.Copy(io.Discard, resp.Body)
						resp.Body.Close()
					}
					countStats.observe(time.Since(start), ok)
					avail.record(ok)
				} else {
					// Streaming find with a limit: measure time-to-last-line
					// of a bounded result page, the interactive-search shape.
					start := time.Now()
					resp, err := client.Get(base + "/v1/find?q=" + url.QueryEscape(word) + "&limit=100")
					ok := err == nil && resp.StatusCode == http.StatusOK
					if err == nil {
						sc := bufio.NewScanner(resp.Body)
						for sc.Scan() {
						}
						resp.Body.Close()
						ok = ok && sc.Err() == nil
					}
					findStats.observe(time.Since(start), ok)
					avail.record(ok)
				}
			}
		}(int64(200 + r))
	}

	log.Printf("measuring: %d writer(s) × batch %d, %d reader(s), %v …",
		cfg.writers, cfg.batch, cfg.readers, cfg.duration)
	time.Sleep(cfg.duration)
	close(stop)
	wg.Wait()

	secs := cfg.duration.Seconds()
	fmt.Printf("\ntarget: %s   duration: %v   writers: %d (batch %d)   readers: %d\n",
		base, cfg.duration, cfg.writers, cfg.batch, cfg.readers)
	fmt.Printf("documents inserted during measurement: %d (%.0f docs/s)\n\n",
		docsInserted.Load(), float64(docsInserted.Load())/secs)
	fmt.Printf("%-22s %10s %7s %9s %9s %9s %9s\n", "op", "requests", "errors", "qps", "p50(ms)", "p95(ms)", "p99(ms)")
	printOp := func(name string, s *opStats) {
		q := server.QuantilesOf(&s.hist)
		fmt.Printf("%-22s %10d %7d %9.1f %9.2f %9.2f %9.2f\n",
			name, s.requests.Load(), s.errors.Load(), float64(s.requests.Load())/secs, q.P50, q.P95, q.P99)
	}
	printOp(fmt.Sprintf("insert (batch=%d)", cfg.batch), &insertStats)
	printOp("count", &countStats)
	printOp("find (limit=100)", &findStats)

	if len(sched) > 0 || cfg.minAvail > 0 {
		// Fault-injection runs expect errors; the gate is the measured
		// availability, not the raw error count.
		overall := avail.report()
		if cfg.minAvail > 0 && overall < cfg.minAvail {
			fmt.Printf("FAIL: availability %.4f below -min-availability %.4f\n", overall, cfg.minAvail)
			os.Exit(1)
		}
		return
	}
	if insertStats.errors.Load()+countStats.errors.Load()+findStats.errors.Load() > 0 {
		os.Exit(1)
	}
}

// waitHealthy polls /healthz until it answers 200 or the deadline
// passes.
func waitHealthy(client *http.Client, base string, d time.Duration) error {
	deadline := time.Now().Add(d)
	for {
		resp, err := client.Get(base + "/healthz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
			err = fmt.Errorf("status %d", resp.StatusCode)
		}
		if time.Now().After(deadline) {
			return err
		}
		time.Sleep(100 * time.Millisecond)
	}
}
