// Command dyndocd serves the dynamic document collection over
// HTTP/JSON (stdlib only — no dependencies). It runs in one of three
// modes:
//
//	-mode=backend   (default) owns a sharded Collection and serves the
//	                full API: POST /v1/insert, POST /v1/delete,
//	                GET /v1/find (streaming NDJSON), /v1/count,
//	                /v1/extract, plus /varz metrics and /healthz.
//	                -snapshot=PATH restores the collection before
//	                listening (when the file exists) and writes the
//	                drain snapshot on SIGTERM. -wal=DIR instead makes
//	                the backend durable: mutations are WAL-logged and
//	                fsynced before the HTTP reply, checkpoints are
//	                incremental, and recovery (checkpoint + WAL tail)
//	                runs before listening — kill -9 loses nothing
//	                acknowledged.
//	-mode=frontend  stateless query router over -backends=h1,h2,…:
//	                keyed ops proxy to the replica set owning the
//	                document (versioned assignment table, -replication R
//	                or an explicit -assignment file), un-routable queries
//	                fan out one request per assignment row and the NDJSON
//	                streams merge with propagated early break. Every
//	                backend call carries a deadline (-op-timeout), reads
//	                retry with backoff (-retries, -retry-base) and hedge
//	                against slow replicas (-hedge), and per-backend
//	                circuit breakers (-breaker-failures,
//	                -breaker-cooldown) gate routing; /readyz reports
//	                degraded fleets.
//	-mode=loadtest  drives a running server (-target=URL) with a
//	                configurable writer/reader mix and reports QPS and
//	                p50/p95/p99 latency per operation. -fault runs a
//	                fault-injection schedule during measurement and
//	                reports per-second availability (-min-availability
//	                sets the pass/fail gate).
//
// Graceful drain: on SIGTERM (or Ctrl-C) the server stops accepting,
// finishes in-flight requests, quiesces background rebuilds (WaitIdle),
// writes the snapshot if -snapshot is set, and exits 0. A second signal
// kills the process immediately.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"dyncoll"
	"dyncoll/internal/server"
	"dyncoll/internal/shardmap"
)

func main() {
	var (
		mode     = flag.String("mode", "backend", "backend | frontend | loadtest")
		listen   = flag.String("listen", "127.0.0.1:7080", "listen address (backend, frontend)")
		snapshot = flag.String("snapshot", "", "snapshot path: restored before listening if present, written on drain (backend)")
		mapped   = flag.Bool("mmap", false, "use the v2 mapped snapshot format for -snapshot: O(1) restore, queries served from the page cache (backend)")
		backends = flag.String("backends", "", "comma-separated backend addresses (frontend)")
		drainFor = flag.Duration("drain-timeout", 30*time.Second, "max time to wait for in-flight requests on shutdown")

		// Fault tolerance (frontend).
		replication = flag.Int("replication", 1, "replica count R per assignment row; writes reach all R, reads any live one (frontend)")
		assignFile  = flag.String("assignment", "", "explicit JSON assignment table file; overrides -replication (frontend)")
		opTimeout   = flag.Duration("op-timeout", 5*time.Second, "per-backend-call deadline, also the stream stall watchdog (frontend)")
		retries     = flag.Int("retries", 3, "max attempts per retryable backend call (frontend)")
		retryBase   = flag.Duration("retry-base", 50*time.Millisecond, "first retry backoff; doubles per attempt with jitter (frontend)")
		brkFailures = flag.Int("breaker-failures", 3, "consecutive transport failures that trip a backend's circuit breaker (frontend)")
		brkCooldown = flag.Duration("breaker-cooldown", 2*time.Second, "open-breaker cooldown before the half-open probe (frontend)")
		hedge       = flag.Duration("hedge", 0, "hedged-read delay for ranked/count: 0 = adaptive p99, negative disables (frontend)")

		// Durability (backend; mutually exclusive with -snapshot).
		walDir    = flag.String("wal", "", "durable directory: WAL + incremental checkpoints; every acknowledged write survives kill -9 (backend)")
		walCkpt   = flag.Int64("wal-checkpoint", 0, "WAL bytes between automatic checkpoints; 0 = 64 MiB default, negative disables (backend)")
		walWindow = flag.Duration("wal-sync-window", time.Millisecond, "group-commit fsync batching window (backend)")

		// Collection construction (backend).
		index     = flag.String("index", "fm", "static index by registry name (backend)")
		sample    = flag.Int("s", 16, "suffix-array sample rate s (backend)")
		tau       = flag.Int("tau", 0, "lazy-deletion parameter τ, 0 = automatic (backend)")
		shards    = flag.Int("shards", 1, "shard count p ≥ 1; the server requires the concurrency-safe sharded collection (backend)")
		counting  = flag.Bool("counting", false, "enable Theorem 1 counting structures (backend)")
		transform = flag.String("transform", "", "transformation: amortized | worstcase | fastinsert (backend; default worstcase)")

		// Load test (loadtest).
		target   = flag.String("target", "http://127.0.0.1:7080", "server URL to drive (loadtest)")
		writers  = flag.Int("writers", 2, "concurrent writer goroutines (loadtest)")
		readers  = flag.Int("readers", 8, "concurrent reader goroutines (loadtest)")
		duration = flag.Duration("duration", 10*time.Second, "measurement duration (loadtest)")
		batch    = flag.Int("batch", 16, "documents per insert batch (loadtest)")
		docBytes = flag.Int("doc-bytes", 256, "approximate payload bytes per document (loadtest)")
		preload  = flag.Int("preload", 500, "documents inserted before measurement starts (loadtest)")
		idBase   = flag.Uint64("id-base", 1_000_000_000, "first document ID the load test allocates (loadtest)")
		fault    = flag.String("fault", "", "fault schedule fired during measurement, e.g. '3s:kill:PID,6s:run:CMD' (loadtest)")
		minAvail = flag.Float64("min-availability", 0, "overall availability fraction required to exit 0 when -fault or this flag is set (loadtest)")
	)
	flag.Parse()

	switch *mode {
	case "backend":
		runBackend(backendConfig{
			listen: *listen, snapshot: *snapshot, mapped: *mapped, drainTimeout: *drainFor,
			wal: *walDir, walCheckpoint: *walCkpt, walSyncWindow: *walWindow,
			index: *index, sample: *sample, tau: *tau, shards: *shards,
			counting: *counting, transform: *transform,
		})
	case "frontend":
		runFrontend(frontendConfig{
			listen: *listen, backends: *backends, drainTimeout: *drainFor,
			replication: *replication, assignment: *assignFile,
			opTimeout: *opTimeout, retries: *retries, retryBase: *retryBase,
			breakerFailures: *brkFailures, breakerCooldown: *brkCooldown,
			hedge: *hedge,
		})
	case "loadtest":
		runLoadtest(loadtestConfig{
			target: *target, writers: *writers, readers: *readers,
			duration: *duration, batch: *batch, docBytes: *docBytes,
			preload: *preload, idBase: *idBase,
			fault: *fault, minAvail: *minAvail,
		})
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q (backend | frontend | loadtest)\n", *mode)
		os.Exit(2)
	}
}

type backendConfig struct {
	listen, snapshot    string
	mapped              bool
	drainTimeout        time.Duration
	wal                 string
	walCheckpoint       int64
	walSyncWindow       time.Duration
	index               string
	sample, tau, shards int
	counting            bool
	transform           string
}

// buildOptions assembles the collection options from flags. The shard
// floor is 1: WithShards(1) is the documented concurrency-safe
// minimum, and HTTP handlers run concurrently.
func buildOptions(cfg backendConfig) ([]dyncoll.Option, error) {
	if cfg.shards < 1 {
		return nil, fmt.Errorf("-shards must be ≥ 1: the server runs handlers concurrently and needs the sharded locking layer")
	}
	opts := []dyncoll.Option{
		dyncoll.WithIndex(cfg.index),
		dyncoll.WithSampleRate(cfg.sample),
		dyncoll.WithTau(cfg.tau),
		dyncoll.WithShards(cfg.shards),
	}
	if cfg.counting {
		opts = append(opts, dyncoll.WithCounting())
	}
	switch cfg.transform {
	case "amortized":
		opts = append(opts, dyncoll.WithTransformation(dyncoll.Amortized))
	case "fastinsert":
		opts = append(opts, dyncoll.WithTransformation(dyncoll.AmortizedFastInsert))
	case "worstcase", "":
		opts = append(opts, dyncoll.WithTransformation(dyncoll.WorstCase))
	default:
		return nil, fmt.Errorf("unknown transformation %q", cfg.transform)
	}
	return opts, nil
}

func runBackend(cfg backendConfig) {
	if cfg.wal != "" && cfg.snapshot != "" {
		log.Fatalf("dyndocd: -wal and -snapshot are mutually exclusive (the WAL directory subsumes drain snapshots)")
	}
	if cfg.mapped && cfg.snapshot == "" {
		log.Fatalf("dyndocd: -mmap needs -snapshot (it selects the snapshot format)")
	}
	if cfg.mapped && cfg.wal != "" {
		log.Fatalf("dyndocd: -mmap and -wal are mutually exclusive (checkpoints use the v1 sectioned codec)")
	}
	opts, err := buildOptions(cfg)
	if err != nil {
		log.Fatalf("dyndocd: %v", err)
	}
	if cfg.wal != "" {
		runDurableBackend(cfg, opts)
		return
	}
	c, err := dyncoll.NewCollection(opts...)
	if err != nil {
		log.Fatalf("dyndocd: %v", err)
	}
	restore := func(dst *dyncoll.Collection, path string) error {
		if cfg.mapped {
			return dst.LoadMappedFile(path)
		}
		return dst.LoadFile(path)
	}
	save := func(src *dyncoll.Collection, path string) error {
		if cfg.mapped {
			return src.SaveMappedFile(path)
		}
		return src.SaveFile(path)
	}
	if cfg.snapshot != "" {
		switch err := restore(c, cfg.snapshot); {
		case err == nil:
			log.Printf("restored snapshot %s: %d document(s), %d symbol(s)", cfg.snapshot, c.DocCount(), c.Len())
		case errors.Is(err, os.ErrNotExist):
			log.Printf("snapshot %s not present yet; starting empty (it will be written on drain)", cfg.snapshot)
		default:
			// A corrupt snapshot must not silently serve an empty corpus.
			log.Fatalf("dyndocd: restore %s: %v", cfg.snapshot, err)
		}
	}
	// Range hosting: a replicated frontend addresses writes/reads to
	// assignment rows (?range=N); each row lives in its own collection.
	b := server.NewBackend(server.PlainColl{Collection: c}).EnableRanges(func(rng int) (server.Coll, error) {
		rc, err := dyncoll.NewCollection(opts...)
		if err != nil {
			return nil, err
		}
		return server.PlainColl{Collection: rc}, nil
	})
	if cfg.snapshot != "" {
		// Row snapshots sit beside the default one as PATH.range<N>.
		matches, _ := filepath.Glob(cfg.snapshot + ".range*")
		for _, m := range matches {
			rng, err := strconv.Atoi(strings.TrimPrefix(m, cfg.snapshot+".range"))
			if err != nil {
				continue
			}
			rc, err := dyncoll.NewCollection(opts...)
			if err != nil {
				log.Fatalf("dyndocd: %v", err)
			}
			if err := restore(rc, m); err != nil {
				log.Fatalf("dyndocd: restore %s: %v", m, err)
			}
			b.SetRange(rng, server.PlainColl{Collection: rc})
			log.Printf("restored range %d snapshot %s: %d document(s)", rng, m, rc.DocCount())
		}
	}
	serveUntilSignal("backend", cfg.listen, b.Handler(), cfg.drainTimeout, func() {
		c.WaitIdle() // background rebuilds land before the state is captured
		if cfg.snapshot == "" {
			return
		}
		if err := save(c, cfg.snapshot); err != nil {
			log.Fatalf("dyndocd: drain snapshot %s: %v", cfg.snapshot, err)
		}
		log.Printf("drain snapshot: %d document(s), %d symbol(s) → %s", c.DocCount(), c.Len(), cfg.snapshot)
		for rng, rcoll := range b.Ranges() {
			rc := rcoll.(server.PlainColl).Collection
			rc.WaitIdle()
			path := fmt.Sprintf("%s.range%d", cfg.snapshot, rng)
			if err := save(rc, path); err != nil {
				log.Fatalf("dyndocd: drain range snapshot %s: %v", path, err)
			}
			log.Printf("drain range %d snapshot: %d document(s) → %s", rng, rc.DocCount(), path)
		}
	})
}

// runDurableBackend serves a WAL-backed collection: recovery happens
// before listening, every acknowledged mutation is fsynced before the
// HTTP reply, and the drain closes the log — though with a WAL a drain
// is a courtesy, not a requirement; kill -9 loses nothing acknowledged.
func runDurableBackend(cfg backendConfig, opts []dyncoll.Option) {
	wopts := dyncoll.WALOptions{
		SyncWindow:      cfg.walSyncWindow,
		CheckpointEvery: cfg.walCheckpoint,
	}
	dc, err := dyncoll.OpenDurableCollection(cfg.wal, wopts, opts...)
	if err != nil {
		log.Fatalf("dyndocd: open durable %s: %v", cfg.wal, err)
	}
	rec := dc.RecoveryStats()
	log.Printf("recovered %s in %v: checkpoint=%v, %d WAL record(s) in %d file(s), torn tail truncated=%v → %d document(s)",
		cfg.wal, rec.Duration.Round(time.Millisecond), rec.CheckpointLoaded,
		rec.WALRecords, rec.WALFiles, rec.TornTailTruncated, dc.DocCount())
	// Range hosting: each assignment row gets its own durable directory
	// (DIR/range-<N>) with a full WAL + checkpoint lifecycle, so a
	// replica's acknowledged writes for every hosted row survive kill -9.
	b := server.NewBackend(dc).EnableRanges(func(rng int) (server.Coll, error) {
		rdir := filepath.Join(cfg.wal, fmt.Sprintf("range-%d", rng))
		rc, err := dyncoll.OpenDurableCollection(rdir, wopts, opts...)
		if err != nil {
			return nil, err
		}
		log.Printf("range %d: opened durable sub-collection in %s", rng, rdir)
		return rc, nil
	})
	entries, _ := os.ReadDir(cfg.wal)
	for _, e := range entries {
		if !e.IsDir() || !strings.HasPrefix(e.Name(), "range-") {
			continue
		}
		rng, err := strconv.Atoi(strings.TrimPrefix(e.Name(), "range-"))
		if err != nil {
			continue
		}
		rc, err := dyncoll.OpenDurableCollection(filepath.Join(cfg.wal, e.Name()), wopts, opts...)
		if err != nil {
			log.Fatalf("dyndocd: open durable range %d: %v", rng, err)
		}
		b.SetRange(rng, rc)
		log.Printf("recovered range %d: %d document(s)", rng, rc.DocCount())
	}
	serveUntilSignal("backend", cfg.listen, b.Handler(), cfg.drainTimeout, func() {
		drainDurable := func(name string, d *dyncoll.DurableCollection, dir string) {
			d.WaitIdle()
			if err := d.Checkpoint(); err != nil {
				log.Printf("drain checkpoint %s: %v (WAL tail still replays on restart)", name, err)
			}
			if err := d.Close(); err != nil {
				log.Printf("drain close %s: %v", name, err)
			}
			log.Printf("drain: WAL closed, %d document(s) durable in %s", d.DocCount(), dir)
		}
		drainDurable("default", dc, cfg.wal)
		for rng, rcoll := range b.Ranges() {
			name := fmt.Sprintf("range-%d", rng)
			drainDurable(name, rcoll.(*dyncoll.DurableCollection), filepath.Join(cfg.wal, name))
		}
	})
}

type frontendConfig struct {
	listen, backends, assignment string
	replication                  int
	retries, breakerFailures     int
	opTimeout, retryBase         time.Duration
	breakerCooldown, hedge       time.Duration
	drainTimeout                 time.Duration
}

func runFrontend(cfg frontendConfig) {
	var addrs []string
	for _, a := range strings.Split(cfg.backends, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	fc := server.FrontendConfig{
		Backends:    addrs,
		Replication: cfg.replication,
		OpTimeout:   cfg.opTimeout,
		Retry:       server.RetryPolicy{Attempts: cfg.retries, Base: cfg.retryBase},
		Breaker:     server.BreakerConfig{Failures: cfg.breakerFailures, Cooldown: cfg.breakerCooldown},
		HedgeDelay:  cfg.hedge,
	}
	if cfg.assignment != "" {
		data, err := os.ReadFile(cfg.assignment)
		if err != nil {
			log.Fatalf("dyndocd: -assignment: %v", err)
		}
		a, err := shardmap.ParseAssignment(data)
		if err != nil {
			log.Fatalf("dyndocd: -assignment %s: %v", cfg.assignment, err)
		}
		fc.Assignment = &a
	}
	f, err := server.NewFrontendConfig(fc)
	if err != nil {
		log.Fatalf("dyndocd: %v (use -backends=host1:port,host2:port,…)", err)
	}
	asg := f.Assignment()
	log.Printf("routing %d row(s) across %d backend(s), replication %d (assignment v%d): %s",
		asg.Rows(), len(f.Backends()), asg.Replication, asg.Version, strings.Join(f.Backends(), ", "))
	serveUntilSignal("frontend", cfg.listen, f.Handler(), cfg.drainTimeout, nil)
}

// serveUntilSignal runs the HTTP server until SIGTERM/SIGINT, then
// drains: stop accepting, finish in-flight requests (bounded by
// drainTimeout), run the optional onDrained hook (snapshot), exit 0.
func serveUntilSignal(role, listen string, h http.Handler, drainTimeout time.Duration, onDrained func()) {
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		log.Fatalf("dyndocd: listen %s: %v", listen, err)
	}
	srv := &http.Server{Handler: h}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	log.Printf("dyndocd %s listening on http://%s", role, ln.Addr())
	select {
	case err := <-errc:
		log.Fatalf("dyndocd: serve: %v", err)
	case <-ctx.Done():
	}
	stop() // second signal: default handling (kill) instead of a stuck drain
	log.Printf("draining: stopped accepting, waiting for in-flight requests (max %v)", drainTimeout)
	sctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	if err := srv.Shutdown(sctx); err != nil {
		log.Printf("drain: %v (continuing to snapshot)", err)
	}
	if onDrained != nil {
		onDrained()
	}
	log.Printf("dyndocd %s: drained, exiting 0", role)
}
