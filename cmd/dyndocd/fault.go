package main

import (
	"fmt"
	"log"
	"os/exec"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"
)

// The -fault flag turns a load test into a fault-injection run: a
// schedule of process-level faults fires while the writer/reader mix is
// measuring, and the per-second availability timeline shows how the
// target rode through them. Offsets are relative to measurement start
// (after preload), so "3s:kill:PID" kills a backend three seconds into
// the measured window.

// faultAction is one scheduled fault: at offset `at`, apply `verb` to
// `arg`.
type faultAction struct {
	at   time.Duration
	verb string // kill | term | stop | cont | run
	arg  string // PID for signals, shell command for run
}

// parseFaultSchedule parses schedules of the form
// "3s:kill:12345,6s:run:./revive.sh". Verbs: kill (SIGKILL), term
// (SIGTERM), stop/cont (SIGSTOP/SIGCONT) — each taking a PID — and run,
// taking a shell command (which may itself contain colons).
func parseFaultSchedule(s string) ([]faultAction, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	var out []faultAction
	for _, e := range strings.Split(s, ",") {
		parts := strings.SplitN(strings.TrimSpace(e), ":", 3)
		if len(parts) != 3 {
			return nil, fmt.Errorf("fault entry %q: want OFFSET:VERB:ARG", e)
		}
		at, err := time.ParseDuration(parts[0])
		if err != nil {
			return nil, fmt.Errorf("fault entry %q: bad offset: %v", e, err)
		}
		switch parts[1] {
		case "kill", "term", "stop", "cont":
			if _, err := strconv.Atoi(parts[2]); err != nil {
				return nil, fmt.Errorf("fault entry %q: %s needs a PID, got %q", e, parts[1], parts[2])
			}
		case "run":
		default:
			return nil, fmt.Errorf("fault entry %q: unknown verb %q (kill|term|stop|cont|run)", e, parts[1])
		}
		out = append(out, faultAction{at: at, verb: parts[1], arg: parts[2]})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].at < out[j].at })
	return out, nil
}

// runFaultSchedule fires the schedule relative to start, logging each
// action so the availability timeline can be read against it.
func runFaultSchedule(sched []faultAction, start time.Time) {
	for _, a := range sched {
		if d := time.Until(start.Add(a.at)); d > 0 {
			time.Sleep(d)
		}
		log.Printf("fault +%v: %s %s", a.at, a.verb, a.arg)
		if err := a.apply(); err != nil {
			log.Printf("fault +%v: %s %s failed: %v", a.at, a.verb, a.arg, err)
		}
	}
}

func (a faultAction) apply() error {
	if a.verb == "run" {
		out, err := exec.Command("/bin/sh", "-c", a.arg).CombinedOutput()
		if len(out) > 0 {
			log.Printf("fault run output: %s", strings.TrimSpace(string(out)))
		}
		return err
	}
	pid, _ := strconv.Atoi(a.arg)
	sig := map[string]syscall.Signal{
		"kill": syscall.SIGKILL,
		"term": syscall.SIGTERM,
		"stop": syscall.SIGSTOP,
		"cont": syscall.SIGCONT,
	}[a.verb]
	return syscall.Kill(pid, sig)
}
