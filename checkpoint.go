package dyncoll

import (
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"

	"dyncoll/internal/snap"
	"dyncoll/internal/wal"
)

// Incremental checkpoints. A checkpoint is a spine file — the config
// header, each shard's schedule anchors and C0, and a directory of the
// shard's static-store sections — plus one segment file per section.
// The ladder makes "what changed since last time" explicit: a static
// level is immutable between rebuilds (only its dead weight grows), so
// a section whose (level, build generation, dead weight) matches the
// previous checkpoint is byte-identical and its existing segment file
// is referenced again instead of re-encoded and re-written. C0 and the
// dead-ID state of changed levels are the only per-checkpoint cost.
//
// The recovery point is committed by the manifest rename (see
// internal/wal): segments and spine are ordinary new files that mean
// nothing until a manifest names them, and the previous checkpoint's
// files are deleted only after the new manifest is durable.

// ckptMagic guards the checkpoint spine file format (the standard
// snapshot header, with its own magic, nests inside).
var ckptMagic = [4]byte{'d', 'c', 'k', 'p'}

const ckptVersion = 1

// ckptCRC is the CRC32C table shared by spine and segment checksums.
var ckptCRC = crc32.MakeTable(crc32.Castagnoli)

// segMeta identifies one persisted checkpoint segment.
type segMeta struct {
	name  string // file name within the durable directory
	level int
	gen   uint64
	dead  int
	size  int64
	crc   uint32
}

// ckptNames formats the spine and segment file names of checkpoint ck.
func ckptName(ck uint64) string { return fmt.Sprintf("ckpt-%08d", ck) }
func segName(ck uint64, shard int, gen uint64) string {
	return fmt.Sprintf("seg-%08d-%04d-%d", ck, shard, gen)
}

// encodeCkptSpine serializes the spine: checkpoint magic and sequence,
// the standard config header, then per shard the ladder spine bytes
// and the section directory.
func encodeCkptSpine(cfg config, ck uint64, spines [][]byte, metas [][]segMeta) []byte {
	e := &snap.Encoder{}
	e.Raw(ckptMagic[:])
	e.Byte(ckptVersion)
	e.Uvarint(ck)
	encodeHeader(e, cfg)
	e.Uvarint(uint64(len(spines)))
	for i, spine := range spines {
		e.Blob(spine)
		e.Uvarint(uint64(len(metas[i])))
		for _, m := range metas[i] {
			e.Varint(int64(m.level))
			e.Uvarint(m.gen)
			e.Uvarint(uint64(m.dead))
			e.String(m.name)
			e.Uvarint(uint64(m.size))
			e.Uvarint(uint64(m.crc))
		}
	}
	return e.Bytes()
}

// decodeCkptSpine parses and validates a spine for the given kind,
// returning the recorded config, checkpoint sequence, per-shard spine
// bytes and per-shard section directories.
func decodeCkptSpine(data []byte, kind structKind) (config, uint64, [][]byte, [][]segMeta, error) {
	var zero config
	dec := snap.NewDecoder(data)
	magic := dec.Raw(4)
	if err := dec.Err(); err != nil {
		return zero, 0, nil, nil, err
	}
	if string(magic) != string(ckptMagic[:]) {
		return zero, 0, nil, nil, snap.Corruptf("checkpoint magic %q", magic)
	}
	if v := dec.Byte(); v != ckptVersion {
		return zero, 0, nil, nil, snap.Corruptf("unsupported checkpoint version %d", v)
	}
	ck := dec.Uvarint()
	cfg, err := decodeHeader(dec, kind)
	if err != nil {
		return zero, 0, nil, nil, err
	}
	n := dec.Count(1)
	if err := dec.Err(); err != nil {
		return zero, 0, nil, nil, err
	}
	if want := max(cfg.shards, 1); n != want {
		return zero, 0, nil, nil, snap.Corruptf("%d checkpoint shards for %d shards", n, want)
	}
	spines := make([][]byte, n)
	metas := make([][]segMeta, n)
	for i := 0; i < n; i++ {
		spines[i] = dec.Blob()
		ns := dec.Count(1)
		if err := dec.Err(); err != nil {
			return zero, 0, nil, nil, err
		}
		for j := 0; j < ns; j++ {
			m := segMeta{
				level: int(dec.Varint()),
				gen:   dec.Uvarint(),
				dead:  dec.Int(),
				name:  dec.String(),
				size:  int64(dec.Uvarint()),
				crc:   uint32(dec.Uvarint()),
			}
			if err := dec.Err(); err != nil {
				return zero, 0, nil, nil, err
			}
			if m.gen == 0 || m.size < 0 {
				return zero, 0, nil, nil, snap.Corruptf("checkpoint section %d/%d metadata", i, j)
			}
			if !strings.HasPrefix(m.name, "seg-") || m.name != filepath.Base(m.name) {
				return zero, 0, nil, nil, snap.Corruptf("checkpoint segment name %q", m.name)
			}
			metas[i] = append(metas[i], m)
		}
	}
	if err := dec.Err(); err != nil {
		return zero, 0, nil, nil, err
	}
	if dec.Remaining() != 0 {
		return zero, 0, nil, nil, snap.Corruptf("%d trailing checkpoint bytes", dec.Remaining())
	}
	return cfg, ck, spines, metas, nil
}

// writeDurFile creates a brand-new file with the given contents and
// fsyncs it. Callers make it *mean* something — and become unable to
// crash halfway into meaning it — via the subsequent manifest rename.
func writeDurFile(fs wal.FS, path string, data []byte) error {
	f, err := fs.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// readSegment loads and verifies one segment file against its
// directory entry.
func readSegment(fs wal.FS, dir string, m segMeta) ([]byte, error) {
	data, err := fs.ReadFile(filepath.Join(dir, m.name))
	if err != nil {
		return nil, snap.Corruptf("checkpoint segment %s: %v", m.name, err)
	}
	if int64(len(data)) != m.size {
		return nil, snap.Corruptf("checkpoint segment %s: %d bytes, want %d", m.name, len(data), m.size)
	}
	if crc32.Checksum(data, ckptCRC) != m.crc {
		return nil, snap.Corruptf("checkpoint segment %s: checksum mismatch", m.name)
	}
	return data, nil
}

// checkpointLocked captures the current state as a new recovery point;
// the caller holds d.mu, so no mutation is in flight. Sequence: rotate
// the WAL (everything already applied is in files < newSeq), dump all
// shards with segment reuse, persist fresh segments and the spine,
// commit via manifest rename, then garbage-collect the files the old
// recovery point no longer pins.
func (d *durable) checkpointLocked() error {
	if d.closed {
		return ErrClosed
	}
	newSeq, err := d.log.Rotate()
	if err != nil {
		return err
	}
	spines, secs, err := d.dumpAll(d.segReuse)
	if err != nil {
		return err
	}
	ck := d.ckSeq
	d.ckSeq++
	metas := make([][]segMeta, len(secs))
	var segNames []string
	for i, ss := range secs {
		metas[i] = make([]segMeta, 0, len(ss))
		for _, s := range ss {
			var m segMeta
			if s.Bytes == nil {
				m = d.segs[i][s.Gen] // reused: the predicate above matched
			} else {
				m = segMeta{
					name:  segName(ck, i, s.Gen),
					level: s.Level,
					gen:   s.Gen,
					dead:  s.Dead,
					size:  int64(len(s.Bytes)),
					crc:   crc32.Checksum(s.Bytes, ckptCRC),
				}
				if err := writeDurFile(d.fs, filepath.Join(d.dir, m.name), s.Bytes); err != nil {
					return err
				}
			}
			metas[i] = append(metas[i], m)
			segNames = append(segNames, m.name)
		}
	}
	spineName := ckptName(ck)
	spineBytes := encodeCkptSpine(d.cfg(), ck, spines, metas)
	if err := writeDurFile(d.fs, filepath.Join(d.dir, spineName), spineBytes); err != nil {
		return err
	}
	// New files must be findable before the manifest that references
	// them is.
	if err := d.fs.SyncDir(d.dir); err != nil {
		return err
	}
	man := wal.Manifest{
		WALStart:      newSeq,
		Checkpoint:    spineName,
		CheckpointCRC: crc32.Checksum(spineBytes, ckptCRC),
		Segments:      segNames,
	}
	if err := wal.WriteManifest(d.fs, d.dir, man); err != nil {
		return err
	}
	d.segs = segMaps(metas)
	d.gcLocked(man)
	return nil
}

// segMaps indexes section directories by (shard, gen) for the reuse
// predicate.
func segMaps(metas [][]segMeta) []map[uint64]segMeta {
	out := make([]map[uint64]segMeta, len(metas))
	for i, ss := range metas {
		out[i] = make(map[uint64]segMeta, len(ss))
		for _, m := range ss {
			out[i][m.gen] = m
		}
	}
	return out
}

// gcLocked removes files the manifest no longer references: WAL files
// below the replay start, checkpoint spines and segments of older
// recovery points, and stranded temp files. Failures are ignored —
// garbage is harmless and the next checkpoint or open retries.
func (d *durable) gcLocked(man wal.Manifest) {
	_ = wal.RemoveBelow(d.fs, d.dir, man.WALStart)
	keep := make(map[string]bool, len(man.Segments)+2)
	keep[wal.ManifestName] = true
	if man.Checkpoint != "" {
		keep[man.Checkpoint] = true
	}
	for _, s := range man.Segments {
		keep[s] = true
	}
	ents, err := d.fs.ReadDir(d.dir)
	if err != nil {
		return
	}
	for _, e := range ents {
		name := e.Name()
		if keep[name] {
			continue
		}
		if strings.HasPrefix(name, "ckpt-") || strings.HasPrefix(name, "seg-") ||
			strings.HasSuffix(name, ".tmp") {
			_ = d.fs.Remove(filepath.Join(d.dir, name))
		}
	}
}
