package dyncoll

import (
	"bytes"
	"errors"
	"fmt"
	"regexp"
	"slices"
	"testing"

	"dyncoll/internal/query"
)

// newSearchPlanForTest exposes the compiled plan so the fuzzer can
// check the literal analysis directly.
func newSearchPlanForTest(expr string) (*query.Plan, error) {
	return query.Compile(query.Spec{Pattern: expr, Regex: true})
}

// FuzzRegexPlan is the planner's correctness property under fire:
// for a random regex and a random corpus, on every structure layout
// (all 3 transformations, sharded and unsharded),
//
//   - the verified results are exactly regexp.FindAllIndex over every
//     document — never a false negative, never a false positive;
//   - the required-literal analysis is sound: every matching document
//     contains at least one literal of every group (the candidate set
//     the index filters with is a superset of the true match set);
//   - compiling and executing never panics (malformed regexes reject
//     with ErrBadPattern).
//
// Run open-ended with `go test -fuzz=FuzzRegexPlan`.
func FuzzRegexPlan(f *testing.F) {
	f.Add("qu.ck", []byte("the quick brown fox quacks"), uint8(0))
	f.Add("a+b", []byte("aaab aab ab b caab"), uint8(3))
	f.Add("(foo|bar)x", []byte("foox barx bazx foox"), uint8(2))
	f.Add("^ab", []byte("abab\x01abab"), uint8(1))
	f.Add(".*", []byte("anything at all"), uint8(4))
	f.Add("[ab]{2}c", []byte("abc bac aac zzc"), uint8(5))
	f.Add("x{1,3}y", []byte("xy xxy xxxy xxxxy"), uint8(0))
	f.Fuzz(func(t *testing.T, expr string, corpus []byte, cfg uint8) {
		if len(expr) > 64 || len(corpus) > 4096 {
			return
		}
		re, err := regexp.Compile(expr)
		if err != nil {
			// Malformed regexes must reject cleanly, not panic.
			c := mustCollection(t)
			if _, ferr := c.FindRegexp(expr); !errors.Is(ferr, ErrBadPattern) {
				t.Fatalf("FindRegexp(%q) on invalid regex = %v, want ErrBadPattern", expr, ferr)
			}
			return
		}

		// Chunk the corpus into documents on a size derived from the
		// input; 0x00 is the reserved separator, so remap it.
		data := bytes.ReplaceAll(corpus, []byte{0}, []byte{1})
		chunk := int(cfg)%48 + 8
		docs := map[uint64][]byte{}
		for i, id := 0, uint64(1); i < len(data); i, id = i+chunk, id+1 {
			end := min(i+chunk, len(data))
			docs[id] = data[i:end]
		}
		if len(docs) == 0 {
			return
		}

		// Reference: the regexp engine over every document.
		var want []Match
		for _, id := range slices.Sorted(mapKeys(docs)) {
			for _, loc := range re.FindAllIndex(docs[id], -1) {
				want = append(want, Match{Doc: id, Off: loc[0], Len: loc[1] - loc[0]})
			}
		}

		layouts := [][]Option{
			{WithTransformation(Amortized)},
			{WithTransformation(WorstCase), WithSyncRebuilds()},
			{WithTransformation(AmortizedFastInsert)},
			{WithTransformation(Amortized), WithShards(2)},
			{WithTransformation(WorstCase), WithSyncRebuilds(), WithShards(3)},
			{WithTransformation(AmortizedFastInsert), WithShards(2)},
		}
		for li, opts := range layouts {
			c := mustCollection(t, opts...)
			var batch []Document
			for id, d := range docs {
				batch = append(batch, Document{ID: id, Data: d})
			}
			if err := c.InsertBatch(batch); err != nil {
				t.Fatal(err)
			}
			c.WaitIdle()

			it, err := c.FindRegexp(expr)
			if err != nil {
				t.Fatalf("layout %d: FindRegexp(%q): %v", li, expr, err)
			}
			var got []Match
			for m := range it {
				got = append(got, m)
			}
			sortMatches(got)
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("layout %d: FindRegexp(%q) = %v, want %v", li, expr, got, want)
			}

			// Ranked variant covers exactly the matching documents.
			matchDocs := map[uint64]bool{}
			for _, m := range want {
				matchDocs[m.Doc] = true
			}
			rit, err := c.FindRegexpTopK(expr, 0)
			if err != nil {
				t.Fatal(err)
			}
			ranked := 0
			for m := range rit {
				if !matchDocs[m.Doc] {
					t.Fatalf("layout %d: doc %d ranked but does not match %q", li, m.Doc, expr)
				}
				ranked++
			}
			if ranked != len(matchDocs) {
				t.Fatalf("layout %d: ranked %d docs, want %d", li, ranked, len(matchDocs))
			}
		}

		// Literal soundness: every matching document contains at least
		// one literal of every required group.
		plan, err := newSearchPlanForTest(expr)
		if err != nil {
			t.Fatal(err)
		}
		for id := range docs {
			if !re.Match(docs[id]) {
				continue
			}
			for _, g := range plan.LiteralGroups() {
				found := false
				for _, lit := range g {
					if bytes.Contains(docs[id], lit) {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("doc %d matches %q but contains no literal of group %q — candidate filter would drop a true match", id, expr, g)
				}
			}
		}
	})
}

// mapKeys adapts a map's keys to the iterator slices.Sorted consumes.
func mapKeys[K comparable, V any](m map[K]V) func(yield func(K) bool) {
	return func(yield func(K) bool) {
		for k := range m {
			if !yield(k) {
				return
			}
		}
	}
}
