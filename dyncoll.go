package dyncoll

import (
	"fmt"
	"iter"

	"dyncoll/internal/baseline"
	"dyncoll/internal/core"
	"dyncoll/internal/doc"
)

// Document is one document: an application-chosen ID and a byte payload.
// Payload bytes must be non-zero (0x00 is the reserved separator).
type Document = doc.Doc

// Occurrence is one pattern match: the matching document and the offset
// of the match within it. Offsets are relative to the document, so
// deleting other documents never shifts them (the paper's (doc, off)
// reporting convention).
type Occurrence = core.Occurrence

// Transformation selects which of the paper's static-to-dynamic
// transformations backs a structure.
type Transformation int

const (
	// WorstCase is Transformation 2 (the default): bounded foreground
	// work per update (rebuilds run in the background); range-finding
	// visits O(τ) more sub-collections.
	WorstCase Transformation = iota
	// Amortized is Transformation 1: updates cost O(u(n)·logᵋ n)
	// amortized per symbol; queries match the static index exactly.
	Amortized
	// AmortizedFastInsert is Transformation 3: O(log log n) levels make
	// insertions cheaper (O(u(n)·log log n) amortized) at an
	// O(log log n) query fan-out factor.
	AmortizedFastInsert
)

// collImpl is the slice of the core API the facade needs; the amortized
// and worst-case transformations satisfy it directly, and shardedColl
// satisfies it by fanning out over p of them.
type collImpl interface {
	Insert(doc.Doc) error
	InsertBatch([]doc.Doc) error
	Delete(id uint64) bool
	DeleteBatch(ids []uint64) int
	Has(id uint64) bool
	DocIDs() []uint64
	Find(pattern []byte) []core.Occurrence
	FindFunc(pattern []byte, fn func(core.Occurrence) bool)
	Count(pattern []byte) int
	Extract(id uint64, off, length int) ([]byte, bool)
	DocLen(id uint64) (int, bool)
	Len() int
	DocCount() int
	SizeBits() int64
	WaitIdle()
	Stats() core.Stats
}

var (
	_ collImpl = (*core.Amortized)(nil)
	_ collImpl = (*core.WorstCase)(nil)
	_ collImpl = (*shardedColl)(nil)
)

// Collection is a dynamic compressed document collection.
//
// An unsharded Collection (the default) is not safe for concurrent use;
// callers must serialize access externally. A Collection built with
// WithShards(p) is safe for concurrent readers and writers: every shard
// carries its own sync.RWMutex and fan-out queries take only read locks.
type Collection struct {
	impl   collImpl
	cfg    config      // resolved construction config, recorded in snapshots
	mapped *mappedFile // v2 snapshot mapping, nil unless LoadMappedFile
}

// NewCollection creates an empty dynamic document collection. The zero
// configuration gives the paper's defaults — Transformation 2 over the
// compressed FM-index with automatic τ — and options adjust it:
//
//	c, err := dyncoll.NewCollection(
//		dyncoll.WithIndex(dyncoll.IndexSA),
//		dyncoll.WithTau(8),
//		dyncoll.WithCounting(),
//	)
//
// It fails with ErrUnknownIndex when WithIndex names an unregistered
// index, and ErrInvalidOption on out-of-range option values.
func NewCollection(opts ...Option) (*Collection, error) {
	cfg, err := newConfig(kindCollection, opts)
	if err != nil {
		return nil, err
	}
	return newCollection(cfg)
}

func newCollection(cfg config) (*Collection, error) {
	impl, err := newCollAnyImpl(cfg)
	if err != nil {
		return nil, err
	}
	return &Collection{impl: impl, cfg: cfg}, nil
}

// newCollAnyImpl builds the sharded or unsharded implementation for cfg.
func newCollAnyImpl(cfg config) (collImpl, error) {
	if cfg.shards > 0 {
		return newShardedColl(cfg)
	}
	return newCollImpl(cfg)
}

// newCollImpl builds one unsharded core implementation for cfg.
func newCollImpl(cfg config) (collImpl, error) {
	builder, err := lookupIndex(cfg.index)
	if err != nil {
		return nil, err
	}
	icfg := IndexConfig{SampleRate: cfg.sampleRate}
	co := core.Options{
		Builder:     func(docs []doc.Doc) core.StaticIndex { return builder(docs, icfg) },
		Tau:         cfg.tau,
		Epsilon:     cfg.epsilon,
		MinCapacity: cfg.minCapacity,
		Counting:    cfg.counting,
		Inline:      cfg.syncRebuilds,
	}
	switch cfg.transformation {
	case Amortized:
		return core.NewAmortized(co), nil
	case AmortizedFastInsert:
		co.Ratio2 = true
		return core.NewAmortized(co), nil
	default:
		return core.NewWorstCase(co), nil
	}
}

// Insert adds a document. It fails with ErrDuplicateID if the ID is
// already live and ErrReservedByte if the payload contains 0x00.
func (c *Collection) Insert(d Document) error { return c.impl.Insert(d) }

// InsertBatch adds many documents in one ingest: the whole batch is
// validated up front (on error nothing is inserted) and placed with at
// most one rebuild cascade, instead of the cascade-per-document cost of
// looped Insert calls. It fails with ErrDuplicateID — also for IDs
// repeated within the batch — or ErrReservedByte.
func (c *Collection) InsertBatch(docs []Document) error { return c.impl.InsertBatch(docs) }

// Delete removes the document with the given ID. It fails with
// ErrNotFound if no such document is live.
func (c *Collection) Delete(id uint64) error {
	if c.impl.Delete(id) {
		return nil
	}
	return fmt.Errorf("dyncoll: delete id %d: %w", id, ErrNotFound)
}

// DeleteBatch removes every listed document that is live and returns the
// number actually removed; IDs that are absent (or repeated) are
// skipped. Purge checks and rebuild triggers run once for the whole
// batch.
func (c *Collection) DeleteBatch(ids []uint64) int { return c.impl.DeleteBatch(ids) }

// Has reports whether a live document with the given ID exists.
func (c *Collection) Has(id uint64) bool { return c.impl.Has(id) }

// Find returns every occurrence of pattern across all live documents.
// For large result sets prefer FindIter, which never materializes the
// slice.
func (c *Collection) Find(pattern []byte) []Occurrence { return c.impl.Find(pattern) }

// FindIter returns a single-use iterator over the occurrences of
// pattern. Enumeration is lazy — breaking out of the range loop stops
// the underlying search — so huge result sets cost only what is
// consumed:
//
//	for occ := range c.FindIter(pattern) {
//		if enough(occ) { break }
//	}
//
// On an unsharded collection, the collection must not be touched from
// the loop body or another goroutine until iteration completes: under
// the WorstCase transformation the iterator holds the collection's
// internal lock while yielding, so even a read re-entering the same
// collection would self-deadlock. On a sharded collection (WithShards)
// the iterator merges parallel per-shard streams; other goroutines may
// freely read and write during iteration, but the loop body itself must
// still not touch the collection — not even reads: the fan-out holds
// shard read locks while yielding, and with a writer queued on the same
// shard a loop-body read deadlocks (new readers queue behind waiting
// writers).
func (c *Collection) FindIter(pattern []byte) iter.Seq[Occurrence] {
	return func(yield func(Occurrence) bool) {
		c.impl.FindFunc(pattern, yield)
	}
}

// FindFunc streams occurrences of pattern; enumeration stops when fn
// returns false.
func (c *Collection) FindFunc(pattern []byte, fn func(Occurrence) bool) {
	c.impl.FindFunc(pattern, fn)
}

// Count returns the number of occurrences of pattern.
func (c *Collection) Count(pattern []byte) int { return c.impl.Count(pattern) }

// Extract returns length payload bytes of document id starting at off.
func (c *Collection) Extract(id uint64, off, length int) ([]byte, bool) {
	return c.impl.Extract(id, off, length)
}

// DocLen returns the payload length of document id.
func (c *Collection) DocLen(id uint64) (int, bool) { return c.impl.DocLen(id) }

// DocIDs returns the IDs of all live documents in unspecified order.
func (c *Collection) DocIDs() []uint64 { return c.impl.DocIDs() }

// Len reports the total number of live payload symbols.
func (c *Collection) Len() int { return c.impl.Len() }

// DocCount reports the number of live documents.
func (c *Collection) DocCount() int { return c.impl.DocCount() }

// SizeBits estimates the index footprint in bits (for space accounting).
func (c *Collection) SizeBits() int64 { return c.impl.SizeBits() }

// WaitIdle blocks until background rebuilds (WorstCase transformation
// only) have completed — across every shard when the collection is
// sharded; other transformations return immediately.
func (c *Collection) WaitIdle() { c.impl.WaitIdle() }

// IndexStats describes a structure's engine-level layout: the
// sub-collection ladder of the paper's transformations plus rebuild
// counters. The same shape serves Collection, Relation and Graph — all
// three run on the one generic engine — with sizes measured in the
// structure's own weight unit (payload symbols for collections, pairs
// for relations, edges for graphs). Fields that do not apply to the
// active transformation are zero.
type IndexStats struct {
	// Levels is the number of sub-collection slots (C0 plus compressed
	// levels).
	Levels int
	// LevelSizes and LevelCaps list live weight and capacity per level;
	// index 0 is the uncompressed C0.
	LevelSizes []int
	LevelCaps  []int
	// Rebuilds counts level rebuilds (amortized) or background + sync
	// builds (worst-case); GlobalRebuilds counts whole-structure
	// rebuilds/rebalances.
	Rebuilds       int
	GlobalRebuilds int
	// Tops is the number of top collections and TopSizes their live
	// weights (worst-case transformation). PendingBuilds is the number
	// of background builds currently in flight.
	Tops          int
	TopSizes      []int
	PendingBuilds int
	// Tau is the lazy-deletion parameter currently in effect.
	Tau int
	// Shards is the number of shards (0 for an unsharded structure).
	// Per-level numbers are element-wise sums across shards.
	Shards int
	// MappedBytes is the footprint served directly from a snapshot
	// mapping (LoadMappedFile) — file-backed pages the OS can reclaim
	// under pressure; zero for structures that were never mapped.
	// HeapBytes is the rest of the estimated footprint, so for a
	// never-mapped structure it is the whole estimate.
	MappedBytes int64
	HeapBytes   int64
}

// fillResidency splits the estimated footprint into mapped (snapshot
// pages served in place) and heap parts. Mapped payload bytes count
// inside SizeBits like any other store memory, so heap is the
// remainder, floored at zero since both sides are estimates.
func (st *IndexStats) fillResidency(mf *mappedFile, sizeBits int64) {
	st.MappedBytes = mf.mappedBytes()
	st.HeapBytes = max(sizeBits/8-st.MappedBytes, 0)
}

// indexStatsFrom maps the engine's unified stats onto the facade type.
// core.Stats, binrel.Stats and the graph's stats are all aliases of the
// same engine type, so every facade shares this one mapping.
func indexStatsFrom(st core.Stats) IndexStats {
	return IndexStats{
		Levels:         st.Levels,
		LevelSizes:     st.LevelSizes,
		LevelCaps:      st.LevelCaps,
		Rebuilds:       st.LevelRebuilds + st.BackgroundBuilds + st.SyncBuilds,
		GlobalRebuilds: st.GlobalRebuilds + st.Rebalances,
		Tops:           st.Tops,
		TopSizes:       st.TopSizes,
		PendingBuilds:  st.PendingBuilds,
		Tau:            st.Tau,
	}
}

// Stats reports the collection's internal layout and rebuild counters.
// On a sharded collection the counters are aggregated across shards.
func (c *Collection) Stats() IndexStats {
	st := indexStatsFrom(c.impl.Stats())
	if sh, ok := c.impl.(*shardedColl); ok {
		st.Shards = len(sh.shards)
	}
	st.fillResidency(c.mapped, c.SizeBits())
	return st
}

// ShardSizes reports live payload symbols per shard, in shard order —
// the occupancy view /varz serves so an operator can see whether the
// key hash is spreading the corpus. It returns nil for an unsharded
// collection.
func (c *Collection) ShardSizes() []int {
	sh, ok := c.impl.(*shardedColl)
	if !ok {
		return nil
	}
	out := make([]int, len(sh.shards))
	for i, s := range sh.shards {
		s.mu.RLock()
		out[i] = s.impl.Len()
		s.mu.RUnlock()
	}
	return out
}

// BaselineCollection is the pre-paper state of the art: a dynamic
// FM-index whose every query symbol costs a dynamic rank (Θ(log n)).
// It exists for comparison benchmarks; prefer Collection.
type BaselineCollection struct {
	fm *baseline.DynFM
}

// NewBaselineCollection creates the dynamic-rank baseline index with
// suffix-array sample rate s.
func NewBaselineCollection(s int) *BaselineCollection {
	return &BaselineCollection{fm: baseline.NewDynFM(s)}
}

// Insert adds a document. It fails with ErrDuplicateID or
// ErrReservedByte on invalid input.
func (b *BaselineCollection) Insert(d Document) error { return b.fm.Insert(d) }

// Delete removes document id; ErrNotFound if absent.
func (b *BaselineCollection) Delete(id uint64) error {
	if b.fm.Delete(id) {
		return nil
	}
	return fmt.Errorf("dyncoll: baseline delete id %d: %w", id, ErrNotFound)
}

// Has reports whether document id is live.
func (b *BaselineCollection) Has(id uint64) bool { return b.fm.Has(id) }

// Count returns the number of occurrences of pattern.
func (b *BaselineCollection) Count(pattern []byte) int { return b.fm.Count(pattern) }

// Find returns every occurrence of pattern.
func (b *BaselineCollection) Find(pattern []byte) []Occurrence {
	var out []Occurrence
	b.fm.FindFunc(pattern, func(o baseline.Occurrence) bool {
		out = append(out, Occurrence{DocID: o.DocID, Off: o.Off})
		return true
	})
	return out
}

// FindIter returns a lazy iterator over the occurrences of pattern.
func (b *BaselineCollection) FindIter(pattern []byte) iter.Seq[Occurrence] {
	return func(yield func(Occurrence) bool) {
		b.fm.FindFunc(pattern, func(o baseline.Occurrence) bool {
			return yield(Occurrence{DocID: o.DocID, Off: o.Off})
		})
	}
}

// Len reports live payload symbols.
func (b *BaselineCollection) Len() int { return b.fm.Len() }

// DocCount reports the number of live documents.
func (b *BaselineCollection) DocCount() int { return b.fm.DocCount() }

// SizeBits estimates the index footprint in bits.
func (b *BaselineCollection) SizeBits() int64 { return b.fm.SizeBits() }
