// Package dyncoll is a compressed, fully-dynamic document index and graph
// library: a Go implementation of
//
//	J. Ian Munro, Yakov Nekrich, Jeffrey Scott Vitter.
//	"Dynamic Data Structures for Document Collections and Graphs."
//	PODS 2015 (arXiv:1503.05977).
//
// The paper's contribution is a general framework that turns any static
// compressed text index into a dynamic one — supporting document
// insertions and deletions — without routing queries through dynamic
// rank/select, whose Ω(log n / log log n) lower bound (Fredman–Saks)
// bottlenecked all previous dynamic compressed indexes.
//
// The top-level API:
//
//   - Collection — a dynamic compressed document collection: Insert,
//     Delete, Find/FindFunc, Count, Extract.
//   - Relation — a dynamic compressed binary relation (Theorem 2).
//   - Graph — a dynamic compressed directed graph (Theorem 3).
//
// Quick start:
//
//	c := dyncoll.NewCollection(dyncoll.CollectionOptions{})
//	c.Insert(dyncoll.Document{ID: 1, Data: []byte("abracadabra")})
//	occs := c.Find([]byte("bra")) // → [{1 1} {1 8}]
//
// See the examples directory for runnable programs and DESIGN.md /
// EXPERIMENTS.md for how the implementation maps onto the paper.
package dyncoll

import (
	"dyncoll/internal/baseline"
	"dyncoll/internal/binrel"
	"dyncoll/internal/core"
	"dyncoll/internal/doc"
	"dyncoll/internal/fmindex"
	"dyncoll/internal/graph"
)

// Document is one document: an application-chosen ID and a byte payload.
// Payload bytes must be non-zero (0x00 is the reserved separator).
type Document = doc.Doc

// Occurrence is one pattern match: the matching document and the offset
// of the match within it. Offsets are relative to the document, so
// deleting other documents never shifts them (the paper's (doc, off)
// reporting convention).
type Occurrence = core.Occurrence

// Transformation selects which of the paper's static-to-dynamic
// transformations backs a Collection.
type Transformation int

const (
	// Amortized is Transformation 1: updates cost O(u(n)·logᵋ n)
	// amortized per symbol; queries match the static index exactly.
	Amortized Transformation = iota
	// WorstCase is Transformation 2: bounded foreground work per update
	// (rebuilds run in the background); range-finding visits O(τ) more
	// sub-collections.
	WorstCase
	// AmortizedFastInsert is Transformation 3: O(log log n) levels make
	// insertions cheaper (O(u(n)·log log n) amortized) at an
	// O(log log n) query fan-out factor.
	AmortizedFastInsert
)

// IndexKind selects the static index that compressed sub-collections are
// built from.
type IndexKind int

const (
	// CompressedFM is the nHk-space FM-index (wavelet tree over the BWT;
	// the stand-in for the Belazzougui–Navarro / Barbay et al. indexes of
	// Tables 1–2). Locate costs O(s) with sampling parameter SampleRate.
	CompressedFM IndexKind = iota
	// PlainSA is the O(n log σ)-bit suffix-array index (the Grossi–Vitter
	// stand-in of Table 3): faster queries, more space.
	PlainSA
	// CompressedCSA is the Ψ-based compressed suffix array (Sadakane
	// flavour, Table 1 row [39]): no rank/select machinery at all,
	// trange = O(|P| log n), tlocate = O(s). Exists to demonstrate the
	// framework's index-agnosticism with a second compressed family.
	CompressedCSA
)

// CollectionOptions configure NewCollection. The zero value gives the
// paper's defaults: Transformation 2 over the compressed FM-index with
// automatic τ.
type CollectionOptions struct {
	// Transformation picks the update-cost regime. Default WorstCase.
	Transformation Transformation
	// Index picks the underlying static index. Default CompressedFM.
	Index IndexKind
	// SampleRate is the suffix-array sampling rate s of the FM-index:
	// locate costs O(s), the samples cost O(n/s·log n) bits. Default 16.
	SampleRate int
	// Tau is the paper's τ: a sub-collection is purged once a 1/τ
	// fraction of it is dead, costing O(n·log τ/τ) bits of bookkeeping.
	// 0 = automatic (log n / log log n).
	Tau int
	// Counting attaches Theorem 1's structures so Count answers in
	// O(tcount) without enumerating matches, at +O(log n/log log n)
	// update cost per symbol.
	Counting bool
	// SyncRebuilds forces WorstCase background rebuilds to complete
	// synchronously (deterministic, single-threaded behaviour).
	SyncRebuilds bool
}

// Collection is a dynamic compressed document collection.
type Collection struct {
	impl interface {
		Insert(doc.Doc)
		Delete(id uint64) bool
		Has(id uint64) bool
		DocIDs() []uint64
		Find(pattern []byte) []core.Occurrence
		FindFunc(pattern []byte, fn func(core.Occurrence) bool)
		Count(pattern []byte) int
		Extract(id uint64, off, length int) ([]byte, bool)
		DocLen(id uint64) (int, bool)
		Len() int
		DocCount() int
		SizeBits() int64
	}
	wc *core.WorstCase // non-nil when Transformation == WorstCase
}

// NewCollection creates an empty dynamic document collection.
func NewCollection(opts CollectionOptions) *Collection {
	var b core.Builder
	switch opts.Index {
	case PlainSA:
		b = func(docs []doc.Doc) core.StaticIndex { return fmindex.BuildSA(docs) }
	case CompressedCSA:
		rate := opts.SampleRate
		b = func(docs []doc.Doc) core.StaticIndex {
			return fmindex.BuildCSA(docs, fmindex.Options{SampleRate: rate})
		}
	default:
		rate := opts.SampleRate
		b = func(docs []doc.Doc) core.StaticIndex {
			return fmindex.Build(docs, fmindex.Options{SampleRate: rate})
		}
	}
	co := core.Options{
		Builder:  b,
		Tau:      opts.Tau,
		Counting: opts.Counting,
		Inline:   opts.SyncRebuilds,
	}
	c := &Collection{}
	switch opts.Transformation {
	case Amortized:
		c.impl = core.NewAmortized(co)
	case AmortizedFastInsert:
		co.Ratio2 = true
		c.impl = core.NewAmortized(co)
	default:
		w := core.NewWorstCase(co)
		c.impl = w
		c.wc = w
	}
	return c
}

// Insert adds a document. It panics on a duplicate ID or a payload
// containing the reserved byte 0x00.
func (c *Collection) Insert(d Document) { c.impl.Insert(d) }

// Delete removes the document with the given ID, reporting whether it was
// present.
func (c *Collection) Delete(id uint64) bool { return c.impl.Delete(id) }

// Has reports whether a live document with the given ID exists.
func (c *Collection) Has(id uint64) bool { return c.impl.Has(id) }

// Find returns every occurrence of pattern across all live documents.
func (c *Collection) Find(pattern []byte) []Occurrence { return c.impl.Find(pattern) }

// FindFunc streams occurrences of pattern; enumeration stops when fn
// returns false.
func (c *Collection) FindFunc(pattern []byte, fn func(Occurrence) bool) {
	c.impl.FindFunc(pattern, fn)
}

// Count returns the number of occurrences of pattern.
func (c *Collection) Count(pattern []byte) int { return c.impl.Count(pattern) }

// Extract returns length payload bytes of document id starting at off.
func (c *Collection) Extract(id uint64, off, length int) ([]byte, bool) {
	return c.impl.Extract(id, off, length)
}

// DocLen returns the payload length of document id.
func (c *Collection) DocLen(id uint64) (int, bool) { return c.impl.DocLen(id) }

// DocIDs returns the IDs of all live documents in unspecified order.
func (c *Collection) DocIDs() []uint64 { return c.impl.DocIDs() }

// Len reports the total number of live payload symbols.
func (c *Collection) Len() int { return c.impl.Len() }

// DocCount reports the number of live documents.
func (c *Collection) DocCount() int { return c.impl.DocCount() }

// SizeBits estimates the index footprint in bits (for space accounting).
func (c *Collection) SizeBits() int64 { return c.impl.SizeBits() }

// WaitIdle blocks until background rebuilds (WorstCase transformation
// only) have completed; other transformations return immediately.
func (c *Collection) WaitIdle() {
	if c.wc != nil {
		c.wc.WaitIdle()
	}
}

// IndexStats describes the collection's internal layout: the
// sub-collection ladder of the paper's transformations plus rebuild
// counters. Fields that do not apply to the active transformation are
// zero.
type IndexStats struct {
	// Levels is the number of sub-collection slots (C0 plus compressed
	// levels).
	Levels int
	// LevelSizes and LevelCaps list live symbols and capacity per level;
	// index 0 is the uncompressed C0.
	LevelSizes []int
	LevelCaps  []int
	// Rebuilds counts level rebuilds (amortized) or background builds
	// (worst-case); GlobalRebuilds counts whole-collection rebuilds.
	Rebuilds       int
	GlobalRebuilds int
	// Tops is the number of top collections (worst-case transformation).
	Tops int
	// Tau is the lazy-deletion parameter currently in effect.
	Tau int
}

// Stats reports the collection's internal layout and rebuild counters.
func (c *Collection) Stats() IndexStats {
	switch impl := c.impl.(type) {
	case *core.Amortized:
		st := impl.Stats()
		return IndexStats{
			Levels:         st.Levels,
			LevelSizes:     st.LevelSizes,
			LevelCaps:      st.LevelCaps,
			Rebuilds:       st.LevelRebuilds,
			GlobalRebuilds: st.GlobalRebuilds,
			Tau:            impl.Tau(),
		}
	case *core.WorstCase:
		st := impl.Stats()
		return IndexStats{
			Levels:         len(st.LevelCaps),
			LevelSizes:     st.LevelSizes,
			LevelCaps:      st.LevelCaps,
			Rebuilds:       st.BackgroundBuilds + st.SyncBuilds,
			GlobalRebuilds: st.Rebalances,
			Tops:           st.Tops,
			Tau:            impl.Tau(),
		}
	}
	return IndexStats{}
}

// Relation is a dynamic compressed binary relation between uint64 objects
// and uint64 labels (Theorem 2).
type Relation = binrel.Relation

// RelationOptions configure NewRelation.
type RelationOptions = binrel.Options

// Pair is one (object, label) element of a Relation.
type Pair = binrel.Pair

// NewRelation creates an empty dynamic compressed binary relation.
func NewRelation(opts RelationOptions) *Relation { return binrel.New(opts) }

// WorstCaseRelation is a Relation with Transformation 2-style update
// scheduling: bounded foreground work per update, rebuilds in the
// background (the paper's Theorem 2 update bound).
type WorstCaseRelation = binrel.WorstCaseRelation

// WorstCaseRelationOptions configure NewWorstCaseRelation.
type WorstCaseRelationOptions = binrel.WCOptions

// NewWorstCaseRelation creates an empty worst-case dynamic relation.
func NewWorstCaseRelation(opts WorstCaseRelationOptions) *WorstCaseRelation {
	return binrel.NewWorstCase(opts)
}

// Graph is a dynamic compressed directed graph (Theorem 3).
type Graph = graph.Graph

// GraphOptions configure NewGraph.
type GraphOptions = graph.Options

// NewGraph creates an empty dynamic compressed directed graph.
func NewGraph(opts GraphOptions) *Graph { return graph.New(opts) }

// BaselineCollection is the pre-paper state of the art: a dynamic
// FM-index whose every query symbol costs a dynamic rank (Θ(log n)).
// It exists for comparison benchmarks; prefer Collection.
type BaselineCollection = baseline.DynFM

// NewBaselineCollection creates the dynamic-rank baseline index with
// suffix-array sample rate s.
func NewBaselineCollection(s int) *BaselineCollection { return baseline.NewDynFM(s) }
