package dyncoll

import (
	"errors"
	"fmt"
	"path/filepath"
	"slices"
	"testing"

	"dyncoll/internal/wal"
)

// durTestOpts is the structure configuration the durable tests use:
// deterministic rebuilds, small levels so a modest corpus spans
// several ladder slots.
func durTestOpts(tr Transformation, shards int) []Option {
	opts := []Option{WithTransformation(tr), WithSyncRebuilds(), WithMinCapacity(16)}
	if shards > 0 {
		opts = append(opts, WithShards(shards))
	}
	return opts
}

// mustOpenDurColl opens a durable collection and registers its Close.
func mustOpenDurColl(t *testing.T, fs wal.FS, dir string, wopts WALOptions, opts ...Option) *DurableCollection {
	t.Helper()
	wopts.FS = fs
	c, err := OpenDurableCollection(dir, wopts, opts...)
	if err != nil {
		t.Fatalf("OpenDurableCollection: %v", err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// durCorpus drives the same mutation stream into a durable collection
// and a plain in-memory model.
func durCorpus(t *testing.T, dc *DurableCollection, model *Collection) {
	t.Helper()
	words := []string{"abracadabra", "alakazam", "avada kedavra", "hocus pocus", "sim sala bim"}
	var docs []Document
	for i := uint64(1); i <= 60; i++ {
		docs = append(docs, Document{ID: i, Data: []byte(fmt.Sprintf("%s %d", words[i%uint64(len(words))], i))})
	}
	if err := dc.InsertBatch(docs[:40]); err != nil {
		t.Fatalf("durable InsertBatch: %v", err)
	}
	if err := model.InsertBatch(docs[:40]); err != nil {
		t.Fatalf("model InsertBatch: %v", err)
	}
	for _, d := range docs[40:] {
		if err := dc.Insert(d); err != nil {
			t.Fatalf("durable Insert(%d): %v", d.ID, err)
		}
		mustInsert(t, model, d)
	}
	ids := []uint64{3, 17, 41, 58}
	if n, err := dc.DeleteBatch(ids); err != nil || n != len(ids) {
		t.Fatalf("durable DeleteBatch = (%d, %v), want (%d, nil)", n, err, len(ids))
	}
	if n := model.DeleteBatch(ids); n != len(ids) {
		t.Fatalf("model DeleteBatch = %d", n)
	}
}

// TestDurableCollectionReopen: transformation × sharding, WAL-only
// (no checkpoint) — everything acknowledged must be there after
// close + reopen, answered identically to an in-memory model.
func TestDurableCollectionReopen(t *testing.T) {
	for _, tr := range []Transformation{Amortized, WorstCase} {
		for _, shards := range []int{0, 4} {
			t.Run(fmt.Sprintf("tr%d/shards%d", tr, shards), func(t *testing.T) {
				fs := wal.NewMemFS()
				opts := durTestOpts(tr, shards)
				dc := mustOpenDurColl(t, fs, "dur", WALOptions{CheckpointEvery: -1}, opts...)
				if dc.RecoveryStats().CheckpointLoaded || dc.RecoveryStats().WALRecords != 0 {
					t.Fatalf("fresh open stats = %+v", dc.RecoveryStats())
				}
				model := mustCollection(t, opts...)
				durCorpus(t, dc, model)
				if err := dc.Close(); err != nil {
					t.Fatalf("Close: %v", err)
				}

				// Reopen with contradictory options: the WAL-logged config
				// is not stored (no checkpoint), so options apply — but the
				// replay must still produce the same answers.
				re := mustOpenDurColl(t, fs, "dur", WALOptions{CheckpointEvery: -1}, opts...)
				rec := re.RecoveryStats()
				if rec.CheckpointLoaded || rec.WALRecords == 0 || rec.TornTailTruncated {
					t.Fatalf("reopen stats = %+v", rec)
				}
				collectionsEqual(t, "reopen", model, re.Collection)
			})
		}
	}
}

// TestDurableCheckpointRecovery: after a checkpoint, reopening loads
// the checkpoint and replays ONLY the WAL tail — and the stored
// configuration wins over the options passed to the reopen.
func TestDurableCheckpointRecovery(t *testing.T) {
	for _, shards := range []int{0, 4} {
		t.Run(fmt.Sprintf("shards%d", shards), func(t *testing.T) {
			fs := wal.NewMemFS()
			opts := durTestOpts(Amortized, shards)
			dc := mustOpenDurColl(t, fs, "dur", WALOptions{CheckpointEvery: -1}, opts...)
			model := mustCollection(t, opts...)
			durCorpus(t, dc, model)
			if err := dc.Checkpoint(); err != nil {
				t.Fatalf("Checkpoint: %v", err)
			}
			// Post-checkpoint tail: a few more mutations.
			tail := []Document{
				{ID: 200, Data: []byte("post checkpoint abra")},
				{ID: 201, Data: []byte("post checkpoint kazam")},
			}
			for _, d := range tail {
				if err := dc.Insert(d); err != nil {
					t.Fatal(err)
				}
				mustInsert(t, model, d)
			}
			if err := dc.Delete(5); err != nil {
				t.Fatal(err)
			}
			if n := model.DeleteBatch([]uint64{5}); n != 1 {
				t.Fatal("model delete")
			}
			if err := dc.Close(); err != nil {
				t.Fatal(err)
			}

			// Contradictory reopen options must lose to the checkpoint's
			// stored config.
			re := mustOpenDurColl(t, fs, "dur", WALOptions{CheckpointEvery: -1}, WithShards(7))
			rec := re.RecoveryStats()
			if !rec.CheckpointLoaded {
				t.Fatalf("checkpoint not loaded: %+v", rec)
			}
			if want := len(tail) + 1; rec.WALRecords != want {
				t.Fatalf("replayed %d WAL records, want only the %d-record tail", rec.WALRecords, want)
			}
			collectionsEqual(t, "ckpt reopen", model, re.Collection)
			if got := re.Stats().Shards; got != shards {
				t.Fatalf("reopened shards = %d, want stored %d", got, shards)
			}
		})
	}
}

// TestDurableCheckpointIncremental proves the incremental part: a
// second checkpoint after a few small mutations re-references segment
// files written by the first one instead of rewriting everything.
func TestDurableCheckpointIncremental(t *testing.T) {
	fs := wal.NewMemFS()
	dc := mustOpenDurColl(t, fs, "dur", WALOptions{CheckpointEvery: -1}, durTestOpts(Amortized, 0)...)
	var docs []Document
	for i := uint64(1); i <= 100; i++ {
		docs = append(docs, Document{ID: i, Data: []byte(fmt.Sprintf("stable document %d", i))})
	}
	if err := dc.InsertBatch(docs); err != nil {
		t.Fatal(err)
	}
	if err := dc.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	man1, ok, err := wal.ReadManifest(fs, "dur")
	if err != nil || !ok {
		t.Fatalf("manifest after first checkpoint: ok=%v err=%v", ok, err)
	}
	if len(man1.Segments) == 0 {
		t.Fatal("first checkpoint wrote no segments")
	}

	// A few small inserts only touch the low ladder levels; the deep
	// store holding the 100-document bulk is untouched.
	for i := uint64(500); i < 503; i++ {
		if err := dc.Insert(Document{ID: i, Data: []byte("small late insert")}); err != nil {
			t.Fatal(err)
		}
	}
	if err := dc.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	man2, ok, err := wal.ReadManifest(fs, "dur")
	if err != nil || !ok {
		t.Fatalf("manifest after second checkpoint: ok=%v err=%v", ok, err)
	}
	reused := 0
	for _, s := range man2.Segments {
		if slices.Contains(man1.Segments, s) {
			reused++
		}
	}
	if reused == 0 {
		t.Fatalf("second checkpoint reused no segments (first %v, second %v)", man1.Segments, man2.Segments)
	}

	// And a third checkpoint with NO intervening mutations must reuse
	// every segment.
	if err := dc.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	man3, _, err := wal.ReadManifest(fs, "dur")
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range man3.Segments {
		if !slices.Contains(man2.Segments, s) {
			t.Fatalf("idle checkpoint rewrote segment %s", s)
		}
	}

	// The reopened structure must checkpoint incrementally too: the
	// generations restored from the checkpoint let it reuse the very
	// files it was loaded from.
	if err := dc.Close(); err != nil {
		t.Fatal(err)
	}
	re := mustOpenDurColl(t, fs, "dur", WALOptions{CheckpointEvery: -1})
	if err := re.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	man4, _, err := wal.ReadManifest(fs, "dur")
	if err != nil {
		t.Fatal(err)
	}
	reused = 0
	for _, s := range man4.Segments {
		if slices.Contains(man3.Segments, s) {
			reused++
		}
	}
	if reused == 0 {
		t.Fatalf("post-reopen checkpoint reused no segments (%v vs %v)", man3.Segments, man4.Segments)
	}
}

// TestDurableTornTail: garbage appended to the newest WAL file (the
// torn write of a crash) is truncated away on reopen; the durable
// prefix survives.
func TestDurableTornTail(t *testing.T) {
	fs := wal.NewMemFS()
	dc := mustOpenDurColl(t, fs, "dur", WALOptions{CheckpointEvery: -1}, durTestOpts(Amortized, 0)...)
	if err := dc.InsertBatch([]Document{
		{ID: 1, Data: []byte("durable one")},
		{ID: 2, Data: []byte("durable two")},
	}); err != nil {
		t.Fatal(err)
	}
	if err := dc.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the tail: half a record of garbage.
	name := ""
	for p := range fs.Snapshot() {
		if filepath.Dir(p) == "dur" && len(filepath.Base(p)) == 20 && filepath.Base(p)[:4] == "wal-" {
			name = p
		}
	}
	if name == "" {
		t.Fatal("no WAL file found")
	}
	data, _ := fs.ReadFile(name)
	fs.SetFile(name, append(data, 0xde, 0xad, 0xbe, 0xef, 0x01))

	re := mustOpenDurColl(t, fs, "dur", WALOptions{CheckpointEvery: -1})
	rec := re.RecoveryStats()
	if !rec.TornTailTruncated {
		t.Fatalf("torn tail not reported: %+v", rec)
	}
	if !re.Has(1) || !re.Has(2) || re.DocCount() != 2 {
		t.Fatalf("durable prefix lost: DocCount=%d", re.DocCount())
	}
	// The truncated log accepts new appends and they survive.
	if err := re.Insert(Document{ID: 3, Data: []byte("after the tear")}); err != nil {
		t.Fatal(err)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	re2 := mustOpenDurColl(t, fs, "dur", WALOptions{CheckpointEvery: -1})
	if re2.DocCount() != 3 || !re2.Has(3) {
		t.Fatalf("post-tear insert lost: DocCount=%d", re2.DocCount())
	}
}

// TestDurableAutoCheckpoint: with a tiny threshold, mutations trigger
// checkpoints on their own.
func TestDurableAutoCheckpoint(t *testing.T) {
	fs := wal.NewMemFS()
	dc := mustOpenDurColl(t, fs, "dur", WALOptions{CheckpointEvery: 256}, durTestOpts(Amortized, 0)...)
	for i := uint64(1); i <= 30; i++ {
		if err := dc.Insert(Document{ID: i, Data: []byte(fmt.Sprintf("auto checkpoint fodder %d", i))}); err != nil {
			t.Fatal(err)
		}
	}
	man, ok, err := wal.ReadManifest(fs, "dur")
	if err != nil || !ok {
		t.Fatalf("no manifest after auto-checkpointing: ok=%v err=%v", ok, err)
	}
	if man.Checkpoint == "" {
		t.Fatal("manifest has no checkpoint")
	}
	if err := dc.Close(); err != nil {
		t.Fatal(err)
	}
	re := mustOpenDurColl(t, fs, "dur", WALOptions{})
	if !re.RecoveryStats().CheckpointLoaded {
		t.Fatalf("stats = %+v", re.RecoveryStats())
	}
	if re.DocCount() != 30 {
		t.Fatalf("DocCount = %d, want 30", re.DocCount())
	}
}

// TestDurableClosedErrors: mutations on a closed structure fail with
// ErrClosed; reads keep working.
func TestDurableClosedErrors(t *testing.T) {
	fs := wal.NewMemFS()
	dc := mustOpenDurColl(t, fs, "dur", WALOptions{}, durTestOpts(Amortized, 0)...)
	if err := dc.Insert(Document{ID: 1, Data: []byte("here to stay")}); err != nil {
		t.Fatal(err)
	}
	if err := dc.Close(); err != nil {
		t.Fatal(err)
	}
	if err := dc.Insert(Document{ID: 2, Data: []byte("x")}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Insert after Close = %v, want ErrClosed", err)
	}
	if _, err := dc.DeleteBatch([]uint64{1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("DeleteBatch after Close = %v, want ErrClosed", err)
	}
	if err := dc.Checkpoint(); !errors.Is(err, ErrClosed) {
		t.Fatalf("Checkpoint after Close = %v, want ErrClosed", err)
	}
	if !dc.Has(1) || dc.Count([]byte("stay")) != 1 {
		t.Error("reads broken after Close")
	}
}

// TestDurableFacadeErrors: the durable mutators keep the facade's
// error contract.
func TestDurableFacadeErrors(t *testing.T) {
	fs := wal.NewMemFS()
	dc := mustOpenDurColl(t, fs, "dur", WALOptions{}, durTestOpts(Amortized, 0)...)
	if err := dc.Insert(Document{ID: 1, Data: []byte("one")}); err != nil {
		t.Fatal(err)
	}
	if err := dc.Insert(Document{ID: 1, Data: []byte("dup")}); !errors.Is(err, ErrDuplicateID) {
		t.Fatalf("duplicate Insert = %v, want ErrDuplicateID", err)
	}
	if err := dc.Delete(99); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Delete(absent) = %v, want ErrNotFound", err)
	}
	if n, err := dc.DeleteBatch([]uint64{99}); n != 0 || err != nil {
		t.Fatalf("DeleteBatch(absent) = (%d, %v), want (0, nil)", n, err)
	}
	// Failed and empty mutations must not log anything: a reopen sees
	// exactly one document.
	if err := dc.InsertBatch(nil); err != nil {
		t.Fatal(err)
	}
	if err := dc.Close(); err != nil {
		t.Fatal(err)
	}
	re := mustOpenDurColl(t, fs, "dur", WALOptions{})
	if re.RecoveryStats().WALRecords != 1 {
		t.Fatalf("replayed %d records, want 1 (failed ops must not be logged)", re.RecoveryStats().WALRecords)
	}
}

// TestDurableRelationReopen covers the relation facade incl. a
// checkpoint in the middle of the stream.
func TestDurableRelationReopen(t *testing.T) {
	for _, tr := range []Transformation{Amortized, WorstCase} {
		for _, shards := range []int{0, 4} {
			t.Run(fmt.Sprintf("tr%d/shards%d", tr, shards), func(t *testing.T) {
				fs := wal.NewMemFS()
				opts := durTestOpts(tr, shards)
				dr, err := OpenDurableRelation("dur", WALOptions{FS: fs, CheckpointEvery: -1}, opts...)
				if err != nil {
					t.Fatalf("OpenDurableRelation: %v", err)
				}
				defer dr.Close()
				model, err := NewRelation(opts...)
				if err != nil {
					t.Fatal(err)
				}
				snapRelationCorpus(t, dr.Add, dr.Delete)
				snapRelationCorpus(t, model.Add, model.Delete)
				if err := dr.Checkpoint(); err != nil {
					t.Fatalf("Checkpoint: %v", err)
				}
				if err := dr.Add(1000, 1); err != nil {
					t.Fatal(err)
				}
				if err := model.Add(1000, 1); err != nil {
					t.Fatal(err)
				}
				if err := dr.Delete(1, 1); err != nil {
					t.Fatal(err)
				}
				if err := model.Delete(1, 1); err != nil {
					t.Fatal(err)
				}
				if err := dr.Close(); err != nil {
					t.Fatal(err)
				}

				re, err := OpenDurableRelation("dur", WALOptions{FS: fs, CheckpointEvery: -1})
				if err != nil {
					t.Fatalf("reopen: %v", err)
				}
				defer re.Close()
				rec := re.RecoveryStats()
				if !rec.CheckpointLoaded || rec.WALRecords != 2 {
					t.Fatalf("stats = %+v, want checkpoint + 2-record tail", rec)
				}
				re.WaitIdle()
				model.WaitIdle()
				if re.Len() != model.Len() {
					t.Fatalf("Len = %d, want %d", re.Len(), model.Len())
				}
				for o := uint64(1); o <= 41; o++ {
					if !slices.Equal(re.Labels(o), model.Labels(o)) {
						t.Fatalf("Labels(%d) diverge", o)
					}
				}
				for _, l := range []uint64{1, 2, 101, 1} {
					if !slices.Equal(re.Objects(l), model.Objects(l)) {
						t.Fatalf("Objects(%d) diverge", l)
					}
				}
				// Error contract survives the reopen.
				if err := re.Add(1000, 1); !errors.Is(err, ErrDuplicatePair) {
					t.Fatalf("duplicate Add = %v", err)
				}
				if err := re.Delete(1, 1); !errors.Is(err, ErrNotFound) {
					t.Fatalf("absent Delete = %v", err)
				}
			})
		}
	}
}

// TestDurableGraphReopen covers the graph facade.
func TestDurableGraphReopen(t *testing.T) {
	for _, shards := range []int{0, 4} {
		t.Run(fmt.Sprintf("shards%d", shards), func(t *testing.T) {
			fs := wal.NewMemFS()
			opts := durTestOpts(Amortized, shards)
			dg, err := OpenDurableGraph("dur", WALOptions{FS: fs, CheckpointEvery: -1}, opts...)
			if err != nil {
				t.Fatalf("OpenDurableGraph: %v", err)
			}
			defer dg.Close()
			for u := uint64(1); u <= 30; u++ {
				for v := u + 1; v <= u+3; v++ {
					if err := dg.AddEdge(u, v); err != nil {
						t.Fatalf("AddEdge(%d,%d): %v", u, v, err)
					}
				}
			}
			if err := dg.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			if err := dg.DeleteEdge(1, 2); err != nil {
				t.Fatal(err)
			}
			if err := dg.AddEdge(100, 1); err != nil {
				t.Fatal(err)
			}
			if err := dg.Close(); err != nil {
				t.Fatal(err)
			}

			re, err := OpenDurableGraph("dur", WALOptions{FS: fs, CheckpointEvery: -1})
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			defer re.Close()
			rec := re.RecoveryStats()
			if !rec.CheckpointLoaded || rec.WALRecords != 2 {
				t.Fatalf("stats = %+v", rec)
			}
			re.WaitIdle()
			if got, want := re.EdgeCount(), 30*3-1+1; got != want {
				t.Fatalf("EdgeCount = %d, want %d", got, want)
			}
			if re.HasEdge(1, 2) {
				t.Error("deleted edge survived")
			}
			if !re.HasEdge(100, 1) || !re.HasEdge(1, 3) {
				t.Error("edges lost")
			}
			if !slices.Equal(re.Neighbors(2), []uint64{3, 4, 5}) {
				t.Fatalf("Neighbors(2) = %v", re.Neighbors(2))
			}
			if err := re.AddEdge(100, 1); !errors.Is(err, ErrDuplicateEdge) {
				t.Fatalf("duplicate AddEdge = %v", err)
			}
			if err := re.DeleteEdge(1, 2); !errors.Is(err, ErrNotFound) {
				t.Fatalf("absent DeleteEdge = %v", err)
			}
		})
	}
}

// TestDurableOnDisk exercises the real-filesystem path end to end once.
func TestDurableOnDisk(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "dur")
	dc, err := OpenDurableCollection(dir, WALOptions{}, durTestOpts(Amortized, 2)...)
	if err != nil {
		t.Fatalf("OpenDurableCollection: %v", err)
	}
	if err := dc.InsertBatch([]Document{
		{ID: 1, Data: []byte("on real disk")},
		{ID: 2, Data: []byte("also on disk")},
	}); err != nil {
		t.Fatal(err)
	}
	if err := dc.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := dc.Insert(Document{ID: 3, Data: []byte("in the tail")}); err != nil {
		t.Fatal(err)
	}
	if err := dc.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := OpenDurableCollection(dir, WALOptions{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	if re.DocCount() != 3 || !re.RecoveryStats().CheckpointLoaded {
		t.Fatalf("DocCount=%d stats=%+v", re.DocCount(), re.RecoveryStats())
	}
	if re.Count([]byte("disk")) != 2 {
		t.Fatalf("Count(disk) = %d", re.Count([]byte("disk")))
	}
}

// BenchmarkRecovery measures OpenDurableCollection against a corpus
// persisted as checkpoint + short WAL tail vs. as a pure WAL.
func BenchmarkRecovery(b *testing.B) {
	build := func(b *testing.B, checkpoint bool) (*wal.MemFS, int64) {
		fs := wal.NewMemFS()
		dc, err := OpenDurableCollection("dur", WALOptions{FS: fs, CheckpointEvery: -1}, WithMinCapacity(64))
		if err != nil {
			b.Fatal(err)
		}
		var docs []Document
		for i := uint64(1); i <= 500; i++ {
			docs = append(docs, Document{ID: i, Data: []byte(fmt.Sprintf("benchmark corpus document number %d with some text", i))})
		}
		for off := 0; off < len(docs); off += 50 {
			if err := dc.InsertBatch(docs[off : off+50]); err != nil {
				b.Fatal(err)
			}
		}
		if checkpoint {
			if err := dc.Checkpoint(); err != nil {
				b.Fatal(err)
			}
			if err := dc.Insert(Document{ID: 1000, Data: []byte("tail entry")}); err != nil {
				b.Fatal(err)
			}
		}
		if err := dc.Close(); err != nil {
			b.Fatal(err)
		}
		var bytes int64
		for _, data := range fs.Snapshot() {
			bytes += int64(len(data))
		}
		return fs, bytes
	}
	for _, mode := range []string{"wal-only", "checkpoint+tail"} {
		b.Run(mode, func(b *testing.B) {
			fs, size := build(b, mode == "checkpoint+tail")
			b.SetBytes(size)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dc, err := OpenDurableCollection("dur", WALOptions{FS: fs, CheckpointEvery: -1})
				if err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				dc.Close()
				b.StartTimer()
			}
		})
	}
}
