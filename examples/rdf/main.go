// RDF: Section 5's motivating workload — subject-predicate-object triples
// stored as compressed dynamic binary relations, answering the paper's
// example queries:
//
//	"given x, enumerate all triples in which x occurs as a subject"
//	"given x and p, enumerate all triples where x is the subject and
//	 p the predicate"
//
// The triple store keeps one Relation per predicate (subject → object),
// plus a Relation mapping subjects to the predicates they use, all of it
// compressed and updatable in place.
package main

import (
	"errors"
	"fmt"
	"log"

	"dyncoll"
)

// TripleStore is a toy RDF store on top of dyncoll.Relation.
type TripleStore struct {
	// byPredicate[p] relates subjects (objects in relation terms) to
	// object values (labels).
	byPredicate map[uint64]*dyncoll.Relation
	// subjectPreds relates each subject to the predicates it uses, so
	// subject-only queries know which per-predicate relations to visit.
	subjectPreds *dyncoll.Relation
	names        map[uint64]string
}

func NewTripleStore() *TripleStore {
	subjectPreds, err := dyncoll.NewRelation()
	if err != nil {
		log.Fatal(err)
	}
	return &TripleStore{
		byPredicate:  make(map[uint64]*dyncoll.Relation),
		subjectPreds: subjectPreds,
		names:        make(map[uint64]string),
	}
}

// intern gives stable numeric IDs to IRI-ish strings for the demo.
var interned = map[string]uint64{}

func (ts *TripleStore) id(name string) uint64 {
	if v, ok := interned[name]; ok {
		return v
	}
	v := uint64(len(interned) + 1)
	interned[name] = v
	ts.names[v] = name
	return v
}

func (ts *TripleStore) Add(subj, pred, obj string) {
	s, p, o := ts.id(subj), ts.id(pred), ts.id(obj)
	rel, ok := ts.byPredicate[p]
	if !ok {
		var err error
		rel, err = dyncoll.NewRelation()
		if err != nil {
			log.Fatal(err)
		}
		ts.byPredicate[p] = rel
	}
	// Re-adding a triple is a no-op, so a duplicate-pair error is fine.
	if err := rel.Add(s, o); err != nil && !errors.Is(err, dyncoll.ErrDuplicatePair) {
		log.Fatal(err)
	}
	if err := ts.subjectPreds.Add(s, p); err != nil && !errors.Is(err, dyncoll.ErrDuplicatePair) {
		log.Fatal(err)
	}
}

func (ts *TripleStore) Delete(subj, pred, obj string) {
	s, p, o := ts.id(subj), ts.id(pred), ts.id(obj)
	if rel, ok := ts.byPredicate[p]; ok {
		if err := rel.Delete(s, o); err != nil {
			return // triple was not in the store
		}
		if rel.CountLabels(s) == 0 {
			if err := ts.subjectPreds.Delete(s, p); err != nil && !errors.Is(err, dyncoll.ErrNotFound) {
				log.Fatal(err)
			}
		}
	}
}

// TriplesOfSubject enumerates every (p, o) with (subj, p, o) in the store.
func (ts *TripleStore) TriplesOfSubject(subj string) [][2]string {
	s := ts.id(subj)
	var out [][2]string
	// Nested range-over-func iterators: both loops pull lazily from the
	// compressed relations.
	for p := range ts.subjectPreds.LabelsIter(s) {
		for o := range ts.byPredicate[p].LabelsIter(s) {
			out = append(out, [2]string{ts.names[p], ts.names[o]})
		}
	}
	return out
}

// ObjectsOf answers the (subject, predicate) query.
func (ts *TripleStore) ObjectsOf(subj, pred string) []string {
	s, p := ts.id(subj), ts.id(pred)
	rel, ok := ts.byPredicate[p]
	if !ok {
		return nil
	}
	var out []string
	for o := range rel.LabelsIter(s) {
		out = append(out, ts.names[o])
	}
	return out
}

// SubjectsWith answers the reverse query: who has (pred, obj)?
func (ts *TripleStore) SubjectsWith(pred, obj string) []string {
	p, o := ts.id(pred), ts.id(obj)
	rel, ok := ts.byPredicate[p]
	if !ok {
		return nil
	}
	var out []string
	for s := range rel.ObjectsIter(o) {
		out = append(out, ts.names[s])
	}
	return out
}

func main() {
	ts := NewTripleStore()

	ts.Add("alice", "knows", "bob")
	ts.Add("alice", "knows", "carol")
	ts.Add("alice", "worksAt", "acme")
	ts.Add("bob", "knows", "carol")
	ts.Add("bob", "worksAt", "acme")
	ts.Add("carol", "worksAt", "initech")
	ts.Add("dave", "knows", "alice")

	fmt.Println("triples with subject alice:")
	for _, po := range ts.TriplesOfSubject("alice") {
		fmt.Printf("  alice --%s--> %s\n", po[0], po[1])
	}

	fmt.Println("who works at acme?")
	for _, s := range ts.SubjectsWith("worksAt", "acme") {
		fmt.Printf("  %s\n", s)
	}

	fmt.Println("alice knows:", ts.ObjectsOf("alice", "knows"))

	// Dynamic updates: alice changes jobs.
	ts.Delete("alice", "worksAt", "acme")
	ts.Add("alice", "worksAt", "initech")
	fmt.Println("after the move, who works at acme?")
	for _, s := range ts.SubjectsWith("worksAt", "acme") {
		fmt.Printf("  %s\n", s)
	}

	// The same machinery as a directed graph (Theorem 3): the "knows"
	// relation viewed as edges.
	g, err := dyncoll.NewGraph()
	if err != nil {
		log.Fatal(err)
	}
	edges := [][2]string{{"alice", "bob"}, {"alice", "carol"}, {"bob", "carol"}, {"dave", "alice"}}
	for _, e := range edges {
		if err := g.AddEdge(ts.id(e[0]), ts.id(e[1])); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("carol's in-degree in the knows-graph: %d\n", g.InDegree(ts.id("carol")))
	fmt.Print("who does dave reach in one hop? ")
	for v := range g.Successors(ts.id("dave")) {
		fmt.Printf("%s ", ts.names[v])
	}
	fmt.Println()
}
