// RDF: Section 5's motivating workload — subject-predicate-object triples
// stored as compressed dynamic binary relations, answering the paper's
// example queries:
//
//	"given x, enumerate all triples in which x occurs as a subject"
//	"given x and p, enumerate all triples where x is the subject and
//	 p the predicate"
//
// The triple store keeps one Relation per predicate (subject → object),
// plus a Relation mapping subjects to the predicates they use, all of it
// compressed and updatable in place.
package main

import (
	"fmt"

	"dyncoll"
)

// TripleStore is a toy RDF store on top of dyncoll.Relation.
type TripleStore struct {
	// byPredicate[p] relates subjects (objects in relation terms) to
	// object values (labels).
	byPredicate map[uint64]*dyncoll.Relation
	// subjectPreds relates each subject to the predicates it uses, so
	// subject-only queries know which per-predicate relations to visit.
	subjectPreds *dyncoll.Relation
	names        map[uint64]string
}

func NewTripleStore() *TripleStore {
	return &TripleStore{
		byPredicate:  make(map[uint64]*dyncoll.Relation),
		subjectPreds: dyncoll.NewRelation(dyncoll.RelationOptions{}),
		names:        make(map[uint64]string),
	}
}

// intern gives stable numeric IDs to IRI-ish strings for the demo.
var interned = map[string]uint64{}

func (ts *TripleStore) id(name string) uint64 {
	if v, ok := interned[name]; ok {
		return v
	}
	v := uint64(len(interned) + 1)
	interned[name] = v
	ts.names[v] = name
	return v
}

func (ts *TripleStore) Add(subj, pred, obj string) {
	s, p, o := ts.id(subj), ts.id(pred), ts.id(obj)
	rel, ok := ts.byPredicate[p]
	if !ok {
		rel = dyncoll.NewRelation(dyncoll.RelationOptions{})
		ts.byPredicate[p] = rel
	}
	rel.Add(s, o)
	ts.subjectPreds.Add(s, p)
}

func (ts *TripleStore) Delete(subj, pred, obj string) {
	s, p, o := ts.id(subj), ts.id(pred), ts.id(obj)
	if rel, ok := ts.byPredicate[p]; ok {
		rel.Delete(s, o)
		if rel.CountLabels(s) == 0 {
			ts.subjectPreds.Delete(s, p)
		}
	}
}

// TriplesOfSubject enumerates every (p, o) with (subj, p, o) in the store.
func (ts *TripleStore) TriplesOfSubject(subj string) [][2]string {
	s := ts.id(subj)
	var out [][2]string
	ts.subjectPreds.LabelsOf(s, func(p uint64) bool {
		ts.byPredicate[p].LabelsOf(s, func(o uint64) bool {
			out = append(out, [2]string{ts.names[p], ts.names[o]})
			return true
		})
		return true
	})
	return out
}

// ObjectsOf answers the (subject, predicate) query.
func (ts *TripleStore) ObjectsOf(subj, pred string) []string {
	s, p := ts.id(subj), ts.id(pred)
	rel, ok := ts.byPredicate[p]
	if !ok {
		return nil
	}
	var out []string
	rel.LabelsOf(s, func(o uint64) bool {
		out = append(out, ts.names[o])
		return true
	})
	return out
}

// SubjectsWith answers the reverse query: who has (pred, obj)?
func (ts *TripleStore) SubjectsWith(pred, obj string) []string {
	p, o := ts.id(pred), ts.id(obj)
	rel, ok := ts.byPredicate[p]
	if !ok {
		return nil
	}
	var out []string
	rel.ObjectsOf(o, func(s uint64) bool {
		out = append(out, ts.names[s])
		return true
	})
	return out
}

func main() {
	ts := NewTripleStore()

	ts.Add("alice", "knows", "bob")
	ts.Add("alice", "knows", "carol")
	ts.Add("alice", "worksAt", "acme")
	ts.Add("bob", "knows", "carol")
	ts.Add("bob", "worksAt", "acme")
	ts.Add("carol", "worksAt", "initech")
	ts.Add("dave", "knows", "alice")

	fmt.Println("triples with subject alice:")
	for _, po := range ts.TriplesOfSubject("alice") {
		fmt.Printf("  alice --%s--> %s\n", po[0], po[1])
	}

	fmt.Println("who works at acme?")
	for _, s := range ts.SubjectsWith("worksAt", "acme") {
		fmt.Printf("  %s\n", s)
	}

	fmt.Println("alice knows:", ts.ObjectsOf("alice", "knows"))

	// Dynamic updates: alice changes jobs.
	ts.Delete("alice", "worksAt", "acme")
	ts.Add("alice", "worksAt", "initech")
	fmt.Println("after the move, who works at acme?")
	for _, s := range ts.SubjectsWith("worksAt", "acme") {
		fmt.Printf("  %s\n", s)
	}

	// The same machinery as a directed graph (Theorem 3): the "knows"
	// relation viewed as edges.
	g := dyncoll.NewGraph(dyncoll.GraphOptions{})
	edges := [][2]string{{"alice", "bob"}, {"alice", "carol"}, {"bob", "carol"}, {"dave", "alice"}}
	for _, e := range edges {
		g.AddEdge(ts.id(e[0]), ts.id(e[1]))
	}
	fmt.Printf("carol's in-degree in the knows-graph: %d\n", g.InDegree(ts.id("carol")))
	fmt.Print("who does dave reach in one hop? ")
	for _, v := range g.Neighbors(ts.id("dave")) {
		fmt.Printf("%s ", ts.names[v])
	}
	fmt.Println()
}
