// Versioned: a document store under heavy insert/delete churn, comparing
// the update-latency profile of Transformation 1 (amortized — occasional
// large rebuild spikes) against Transformation 2 (worst-case — bounded
// foreground work, rebuilds in the background).
//
// This is the behavioural difference Figures 1–3 of the paper illustrate:
// both transformations do the same total work, but T2 schedules it so no
// single update stalls.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"
	"time"

	"dyncoll"
	"dyncoll/internal/textgen"
)

func churn(c *dyncoll.Collection, docs int) (p50, p99, max time.Duration) {
	gen := textgen.NewCollection(textgen.CollectionOptions{
		Sigma: 32, MinLen: 200, MaxLen: 800, Seed: 99,
	})
	rng := rand.New(rand.NewSource(7))
	var live []uint64
	lat := make([]time.Duration, 0, docs*2)

	for i := 0; i < docs; i++ {
		d := gen.NextDoc()
		start := time.Now()
		if err := c.Insert(d); err != nil {
			log.Fatal(err)
		}
		lat = append(lat, time.Since(start))
		live = append(live, d.ID)

		if len(live) > 50 && rng.Float64() < 0.45 {
			j := rng.Intn(len(live))
			id := live[j]
			live = append(live[:j], live[j+1:]...)
			start = time.Now()
			if err := c.Delete(id); err != nil {
				log.Fatal(err)
			}
			lat = append(lat, time.Since(start))
		}
	}
	c.WaitIdle()
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	return lat[len(lat)/2], lat[len(lat)*99/100], lat[len(lat)-1]
}

func main() {
	const docs = 1500

	amortized, err := dyncoll.NewCollection(dyncoll.WithTransformation(dyncoll.Amortized))
	if err != nil {
		log.Fatal(err)
	}
	worstCase, err := dyncoll.NewCollection(dyncoll.WithTransformation(dyncoll.WorstCase))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("churning %d documents through each index...\n\n", docs)

	p50a, p99a, maxA := churn(amortized, docs)
	p50w, p99w, maxW := churn(worstCase, docs)

	fmt.Printf("%-28s %12s %12s %12s\n", "update latency", "p50", "p99", "max")
	fmt.Printf("%-28s %12v %12v %12v\n", "Transformation 1 (amortized)", p50a, p99a, maxA)
	fmt.Printf("%-28s %12v %12v %12v\n", "Transformation 2 (worst-case)", p50w, p99w, maxW)

	fmt.Printf("\nthe tail (p99) is where T2's background rebuilds pay off;\n")
	fmt.Printf("medians are similar because most updates touch only C0.\n")
	fmt.Printf("(on a single-core machine background builds share the CPU with\n")
	fmt.Printf("foreground updates, so the max column converges; with spare\n")
	fmt.Printf("cores T2's whole tail drops, which is the paper's point.)\n")

	// Both answer identical queries.
	q := []byte{5, 9}
	fmt.Printf("\nsanity: Count agreement on a random pattern: %d vs %d\n",
		amortized.Count(q), worstCase.Count(q))
}
