// Quickstart: the smallest useful dyncoll program — build a dynamic
// compressed collection, search it, mutate it, search again.
package main

import (
	"fmt"
	"log"

	"dyncoll"
)

func main() {
	c, err := dyncoll.NewCollection()
	if err != nil {
		log.Fatal(err)
	}

	// Insert a few documents. IDs are yours to choose; payloads are raw
	// bytes (anything except 0x00). A batch ingest validates everything
	// up front and triggers at most one rebuild cascade.
	err = c.InsertBatch([]dyncoll.Document{
		{ID: 1, Data: []byte("the quick brown fox jumps over the lazy dog")},
		{ID: 2, Data: []byte("pack my box with five dozen liquor jugs")},
		{ID: 3, Data: []byte("the five boxing wizards jump quickly")},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Substring search across every live document, streamed: the range
	// loop pulls occurrences lazily, so huge result sets never
	// materialize. Occurrences carry the document ID and the offset
	// within that document.
	for occ := range c.FindIter([]byte("five")) {
		fmt.Printf("'five' occurs in doc %d at offset %d\n", occ.DocID, occ.Off)
	}

	// Counting without enumerating.
	fmt.Printf("'the' occurs %d times\n", c.Count([]byte("the")))

	// Deleting a document removes its matches; offsets in the other
	// documents are unaffected (they are document-relative).
	if err := c.Delete(3); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after deleting doc 3: 'five' occurs %d times\n", c.Count([]byte("five")))

	// Extract a substring of a stored document without decompressing the
	// whole collection.
	data, _ := c.Extract(2, 5, 6)
	fmt.Printf("doc 2 bytes [5,11) = %q\n", data)

	// The index stays compressed as it grows; SizeBits tracks the
	// footprint.
	fmt.Printf("collection: %d docs, %d symbols, ~%d KiB index\n",
		c.DocCount(), c.Len(), c.SizeBits()/8/1024)
}
