// Quickstart: the smallest useful dyncoll program — build a dynamic
// compressed collection, search it, mutate it, search again.
package main

import (
	"fmt"

	"dyncoll"
)

func main() {
	c := dyncoll.NewCollection(dyncoll.CollectionOptions{})

	// Insert a few documents. IDs are yours to choose; payloads are raw
	// bytes (anything except 0x00).
	c.Insert(dyncoll.Document{ID: 1, Data: []byte("the quick brown fox jumps over the lazy dog")})
	c.Insert(dyncoll.Document{ID: 2, Data: []byte("pack my box with five dozen liquor jugs")})
	c.Insert(dyncoll.Document{ID: 3, Data: []byte("the five boxing wizards jump quickly")})

	// Substring search across every live document. Occurrences carry the
	// document ID and the offset within that document.
	for _, occ := range c.Find([]byte("five")) {
		fmt.Printf("'five' occurs in doc %d at offset %d\n", occ.DocID, occ.Off)
	}

	// Counting without enumerating.
	fmt.Printf("'the' occurs %d times\n", c.Count([]byte("the")))

	// Deleting a document removes its matches; offsets in the other
	// documents are unaffected (they are document-relative).
	c.Delete(3)
	fmt.Printf("after deleting doc 3: 'five' occurs %d times\n", c.Count([]byte("five")))

	// Extract a substring of a stored document without decompressing the
	// whole collection.
	data, _ := c.Extract(2, 5, 6)
	fmt.Printf("doc 2 bytes [5,11) = %q\n", data)

	// The index stays compressed as it grows; SizeBits tracks the
	// footprint.
	fmt.Printf("collection: %d docs, %d symbols, ~%d KiB index\n",
		c.DocCount(), c.Len(), c.SizeBits()/8/1024)
}
