// DNA: Table 3's regime — a tiny alphabet (σ=4) where the O(n log σ)-bit
// plain-suffix-array index answers long-pattern queries in
// O(|P|/log_σ n + log^ε n) time, far below the per-symbol cost of
// compressed backward search. A sequence archive ingests and retires
// chromosomes (documents) while serving exact-match probe lookups.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"dyncoll"
)

var bases = []byte{'A', 'C', 'G', 'T'}

func synthChromosome(rng *rand.Rand, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		// Mild local correlation, GC-skewed — enough structure that probes
		// have realistic hit counts.
		if i > 0 && rng.Float64() < 0.30 {
			out[i] = out[i-1]
		} else {
			out[i] = bases[rng.Intn(4)]
		}
	}
	return out
}

func main() {
	rng := rand.New(rand.NewSource(4))

	// IndexSA is the Grossi–Vitter-style O(n log σ)-bit configuration:
	// more space than the FM-index, queries nearly independent of |P|.
	archive, err := dyncoll.NewCollection(dyncoll.WithIndex(dyncoll.IndexSA))
	if err != nil {
		log.Fatal(err)
	}

	// Bulk-load the genome in one batch: validated up front, built with
	// one ingest pass instead of a rebuild cascade per chromosome.
	const chromosomes = 24
	const chromLen = 40_000
	var genome [][]byte
	var load []dyncoll.Document
	for id := uint64(1); id <= chromosomes; id++ {
		c := synthChromosome(rng, chromLen)
		genome = append(genome, c)
		load = append(load, dyncoll.Document{ID: id, Data: c})
	}
	if err := archive.InsertBatch(load); err != nil {
		log.Fatal(err)
	}
	archive.WaitIdle()
	fmt.Printf("archive: %d chromosomes, %.1f Mbp, index ~%d KiB\n",
		archive.DocCount(), float64(archive.Len())/1e6, archive.SizeBits()/8/1024)

	// Probe lookups: 60-mers sampled from the genome (hits) and random
	// 60-mers (almost certainly absent).
	probe := func(p []byte) {
		start := time.Now()
		occs := archive.Find(p)
		el := time.Since(start)
		fmt.Printf("  probe %s… %d hit(s) in %v\n", p[:12], len(occs), el)
		for i, o := range occs {
			if i == 3 {
				fmt.Printf("    …\n")
				break
			}
			fmt.Printf("    chr%d:%d\n", o.DocID, o.Off)
		}
	}

	fmt.Println("planted 60-mers:")
	for i := 0; i < 3; i++ {
		chr := rng.Intn(len(genome))
		off := rng.Intn(chromLen - 60)
		probe(genome[chr][off : off+60])
	}
	fmt.Println("random 60-mers:")
	probe(synthChromosome(rng, 60))

	// Assembly update: retire a chromosome, load a patched version.
	patched := synthChromosome(rng, chromLen+500)
	if err := archive.Delete(7); err != nil {
		log.Fatal(err)
	}
	if err := archive.Insert(dyncoll.Document{ID: 100, Data: patched}); err != nil {
		log.Fatal(err)
	}
	archive.WaitIdle()
	fmt.Printf("after patching chr7: %d chromosomes, %.1f Mbp\n",
		archive.DocCount(), float64(archive.Len())/1e6)
	probe(patched[1000:1060])
}
