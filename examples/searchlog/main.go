// Searchlog: the paper's introductory data-analytics workload — keep a
// rolling window of URL access-log entries and answer "how many times
// were URLs containing this substring accessed?" while old entries
// continuously expire and new ones arrive.
//
// Each log line is a document; counting queries run against the live
// window only. This is exactly the dynamic-collection-with-counting
// setting of Theorem 1.
package main

import (
	"fmt"
	"log"
	"math/rand"
)

import "dyncoll"

// synthURL builds a plausible URL from a small vocabulary so substring
// queries have interesting selectivity.
func synthURL(rng *rand.Rand) []byte {
	hosts := []string{"api.shop.example", "www.example.com", "cdn.example.net", "auth.example.org"}
	paths := []string{"/products/", "/users/", "/checkout/", "/search?q=", "/static/img/", "/admin/panel/"}
	items := []string{"widget", "gadget", "gizmo", "doohickey", "thingamajig"}
	return []byte(fmt.Sprintf("https://%s%s%s-%d",
		hosts[rng.Intn(len(hosts))],
		paths[rng.Intn(len(paths))],
		items[rng.Intn(len(items))],
		rng.Intn(1000)))
}

func main() {
	rng := rand.New(rand.NewSource(2015))
	// Theorem 1: counting without enumeration.
	c, err := dyncoll.NewCollection(dyncoll.WithCounting())
	if err != nil {
		log.Fatal(err)
	}

	const window = 4000
	var nextID uint64 = 1

	// Fill the initial window with one batch ingest.
	batch := make([]dyncoll.Document, 0, window)
	for ; nextID <= window; nextID++ {
		batch = append(batch, dyncoll.Document{ID: nextID, Data: synthURL(rng)})
	}
	if err := c.InsertBatch(batch); err != nil {
		log.Fatal(err)
	}

	queries := [][]byte{
		[]byte("checkout"),
		[]byte("example.com"),
		[]byte("widget"),
		[]byte("/admin/"),
		[]byte("search?q=gizmo"),
	}

	fmt.Println("=== initial window ===")
	for _, q := range queries {
		fmt.Printf("%-24q %6d hits\n", q, c.Count(q))
	}

	// Stream: every new entry evicts the oldest one. The index absorbs
	// the churn with bounded per-update work (Transformation 2).
	for i := 0; i < 3*window; i++ {
		if err := c.Insert(dyncoll.Document{ID: nextID, Data: synthURL(rng)}); err != nil {
			log.Fatal(err)
		}
		if err := c.Delete(nextID - window); err != nil {
			log.Fatal(err)
		}
		nextID++
	}
	c.WaitIdle()

	fmt.Println("=== after 3 full window turnovers ===")
	for _, q := range queries {
		fmt.Printf("%-24q %6d hits\n", q, c.Count(q))
	}
	fmt.Printf("live entries: %d (window %d), index ~%d KiB\n",
		c.DocCount(), window, c.SizeBits()/8/1024)
}
