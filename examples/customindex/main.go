// Customindex: the paper's framework dynamizes *any* static index, and
// the v2 registry makes that concrete — this program plugs a third-party
// static index into Collection without touching library internals.
//
// The index here is deliberately naive: an explicit sorted suffix table,
// Θ(n log n) bits, binary-search range queries. It is the kind of
// structure an application might already have lying around; registering
// a ~100-line adapter is all it takes to give it the paper's dynamic
// machinery (insertions, lazy deletions, background rebuilds) for free.
package main

import (
	"bytes"
	"fmt"
	"log"
	"sort"

	"dyncoll"
)

// suffixTable is a StaticIndex backed by a plain sorted table of all
// suffixes of all documents. Each document is terminated by the reserved
// separator 0x00, which sorts before every payload byte, matching the
// generalized-suffix-array convention of the built-in indexes.
type suffixTable struct {
	docs []dyncoll.Document
	// rows lists every (doc, off) suffix, off ∈ [0, len(doc)] where
	// off == len(doc) addresses the separator, sorted lexicographically.
	rows []suffixRow
	// rank[d][off] is the inverse permutation: the table position of the
	// suffix starting at (d, off).
	rank    [][]int
	symbols int
}

type suffixRow struct{ doc, off int }

// suffix returns the byte string the row represents, separator included.
func (t *suffixTable) suffix(r suffixRow) []byte {
	return append(append([]byte(nil), t.docs[r.doc].Data[r.off:]...), 0)
}

func buildSuffixTable(docs []dyncoll.Document, _ dyncoll.IndexConfig) dyncoll.StaticIndex {
	t := &suffixTable{docs: docs}
	for d, dd := range docs {
		t.symbols += len(dd.Data)
		for off := 0; off <= len(dd.Data); off++ {
			t.rows = append(t.rows, suffixRow{doc: d, off: off})
		}
	}
	sort.Slice(t.rows, func(i, j int) bool {
		return bytes.Compare(t.suffix(t.rows[i]), t.suffix(t.rows[j])) < 0
	})
	t.rank = make([][]int, len(docs))
	for d, dd := range docs {
		t.rank[d] = make([]int, len(dd.Data)+1)
	}
	for pos, r := range t.rows {
		t.rank[r.doc][r.off] = pos
	}
	return t
}

func (t *suffixTable) SALen() int                { return len(t.rows) }
func (t *suffixTable) SymbolCount() int          { return t.symbols }
func (t *suffixTable) DocCount() int             { return len(t.docs) }
func (t *suffixTable) DocID(i int) uint64        { return t.docs[i].ID }
func (t *suffixTable) DocLen(i int) int          { return len(t.docs[i].Data) }
func (t *suffixTable) SuffixRank(d, off int) int { return t.rank[d][off] }

func (t *suffixTable) Range(pattern []byte) (lo, hi int) {
	lo = sort.Search(len(t.rows), func(i int) bool {
		return bytes.Compare(t.suffix(t.rows[i]), pattern) >= 0
	})
	hi = sort.Search(len(t.rows), func(i int) bool {
		s := t.suffix(t.rows[i])
		if len(s) > len(pattern) {
			s = s[:len(pattern)]
		}
		return bytes.Compare(s, pattern) > 0
	})
	return lo, hi
}

func (t *suffixTable) Locate(row int) (docIdx, off int) {
	r := t.rows[row]
	return r.doc, r.off
}

func (t *suffixTable) Extract(d, off, length int) []byte {
	data := t.docs[d].Data
	if off < 0 || off >= len(data) || length <= 0 {
		return nil
	}
	if off+length > len(data) {
		length = len(data) - off
	}
	return append([]byte(nil), data[off:off+length]...)
}

func (t *suffixTable) SizeBits() int64 {
	// Payload bytes + one machine word per table row and rank entry.
	return int64(t.symbols)*8 + int64(len(t.rows))*2*64
}

func main() {
	// One registration call plugs the index into the framework.
	if err := dyncoll.RegisterIndex("suffix-table", buildSuffixTable); err != nil {
		log.Fatal(err)
	}
	fmt.Println("registered static indexes:", dyncoll.RegisteredIndexes())

	c, err := dyncoll.NewCollection(
		dyncoll.WithIndex("suffix-table"),
		dyncoll.WithSyncRebuilds(),
	)
	if err != nil {
		log.Fatal(err)
	}

	// The custom index now gets the full dynamic treatment.
	err = c.InsertBatch([]dyncoll.Document{
		{ID: 1, Data: []byte("she sells sea shells")},
		{ID: 2, Data: []byte("by the sea shore")},
		{ID: 3, Data: []byte("the shells she sells are sea shells")},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("'sea' occurs %d times\n", c.Count([]byte("sea")))
	for occ := range c.FindIter([]byte("shells")) {
		fmt.Printf("'shells' in doc %d at offset %d\n", occ.DocID, occ.Off)
	}

	// Dynamic updates run through the same custom index.
	if err := c.Delete(3); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after deleting doc 3: 'shells' occurs %d times\n", c.Count([]byte("shells")))
	if data, ok := c.Extract(2, 7, 9); ok {
		fmt.Printf("doc 2 bytes [7,16) = %q\n", data)
	}
}
