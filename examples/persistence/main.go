// Command persistence demonstrates the snapshot subsystem as a process
// restart: phase one ingests a corpus, serves a few queries, and saves
// an atomic snapshot; phase two plays the restarted process — it
// rebuilds the collection from the snapshot instead of re-ingesting,
// and shows the answers (including lazy-deletion state and the sharded
// layout) are identical. It prints the ingest-vs-load timings, which is
// the whole point: restart cost becomes I/O + decode instead of
// O(n·u(n)) index construction.
//
// Run with:
//
//	go run ./examples/persistence
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"dyncoll"
	"dyncoll/internal/textgen"
)

const (
	nDocs  = 2000
	shards = 4
)

func corpus() []dyncoll.Document {
	gen := textgen.NewCollection(textgen.CollectionOptions{
		Sigma: 8, MinLen: 128, MaxLen: 512, Seed: 42,
	})
	docs := make([]dyncoll.Document, nDocs)
	for i := range docs {
		docs[i] = gen.NextDoc()
	}
	return docs
}

func report(label string, c *dyncoll.Collection, pattern []byte) {
	fmt.Printf("  %-12s %5d docs, %7d symbols, Count(%q) = %d\n",
		label, c.DocCount(), c.Len(), pattern, c.Count(pattern))
}

func main() {
	dir, err := os.MkdirTemp("", "dyncoll-persistence-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "service.snap")
	pattern := []byte{1, 2, 1}

	// --- Phase 1: the service's first life ---------------------------
	fmt.Println("phase 1: ingest, serve, snapshot")
	c, err := dyncoll.NewCollection(dyncoll.WithShards(shards))
	if err != nil {
		log.Fatal(err)
	}
	docs := corpus()
	t0 := time.Now()
	if err := c.InsertBatch(docs); err != nil {
		log.Fatal(err)
	}
	c.WaitIdle()
	ingest := time.Since(t0)
	// Some churn so the snapshot carries lazy-deletion state, not just
	// a pristine build.
	for id := uint64(0); id < 100; id++ {
		if err := c.Delete(docs[id*7%nDocs].ID); err != nil {
			log.Fatal(err)
		}
	}
	c.WaitIdle()
	report("before save:", c, pattern)
	wantCount := c.Count(pattern)
	wantDocs, wantLen := c.DocCount(), c.Len()

	t0 = time.Now()
	if err := c.SaveFile(path); err != nil {
		log.Fatal(err)
	}
	save := time.Since(t0)
	st, err := os.Stat(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  snapshot: %d bytes (ingest %v, save %v)\n", st.Size(), ingest.Round(time.Millisecond), save.Round(time.Millisecond))

	// --- Phase 2: the restarted process ------------------------------
	fmt.Println("phase 2: restart from the snapshot")
	restarted, err := dyncoll.NewCollection() // default config; Load restores the saved one
	if err != nil {
		log.Fatal(err)
	}
	t0 = time.Now()
	if err := restarted.LoadFile(path); err != nil {
		log.Fatal(err)
	}
	load := time.Since(t0)
	report("after load:", restarted, pattern)
	fmt.Printf("  load %v (vs %v re-ingest, %.1fx faster), %d shards restored\n",
		load.Round(time.Millisecond), ingest.Round(time.Millisecond),
		float64(ingest)/float64(load), restarted.Stats().Shards)

	if restarted.Count(pattern) != wantCount || restarted.DocCount() != wantDocs || restarted.Len() != wantLen {
		log.Fatal("restarted service diverges from the original")
	}

	// The restarted structure is fully live: keep writing.
	if err := restarted.Insert(dyncoll.Document{ID: 1 << 40, Data: []byte{1, 2, 1}}); err != nil {
		log.Fatal(err)
	}
	restarted.WaitIdle()
	fmt.Printf("  post-restart write ok: Count = %d\n", restarted.Count(pattern))
}
