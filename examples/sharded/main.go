// Sharded: a concurrent search service in miniature. A collection built
// with WithShards(p) is safe for concurrent readers and writers — this
// program runs writer goroutines streaming fresh documents in, reader
// goroutines issuing substring queries the whole time, and a deleter
// retiring old documents, all against one collection with no external
// locking. At the end it reports sustained throughput and the aggregated
// per-shard index stats.
//
// Compare with examples/searchlog, which must interleave updates and
// queries on a single goroutine because an unsharded collection demands
// external serialization.
package main

import (
	"fmt"
	"log"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"dyncoll"
	"dyncoll/internal/textgen"
)

func main() {
	shards := runtime.GOMAXPROCS(0)
	if shards < 2 {
		shards = 2
	}
	c, err := dyncoll.NewCollection(dyncoll.WithShards(shards))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("collection sharded %d ways across %d CPU(s)\n", shards, runtime.GOMAXPROCS(0))

	// Seed corpus so the first queries have something to chew on.
	gen := textgen.NewCollection(textgen.CollectionOptions{
		Sigma: 26, Order: 1, Skew: 0.7, MinLen: 200, MaxLen: 800, Seed: 42,
	})
	var seed []dyncoll.Document
	for i := 0; i < 500; i++ {
		seed = append(seed, gen.NextDoc())
	}
	if err := c.InsertBatch(seed); err != nil {
		log.Fatal(err)
	}
	pats := textgen.NewPatternSampler(seed, 7).PlantedSet(32, 4)

	const (
		writers  = 2
		readers  = 4
		duration = 2 * time.Second
	)
	var (
		inserted, deleted, queries, hits atomic.Int64
		nextID                           atomic.Uint64
		stop                             = make(chan struct{})
		wg                               sync.WaitGroup
	)
	nextID.Store(uint64(len(seed)))

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			g := textgen.NewCollection(textgen.CollectionOptions{
				Sigma: 26, Order: 1, Skew: 0.7, MinLen: 200, MaxLen: 800, Seed: int64(100 + w),
			})
			for {
				select {
				case <-stop:
					return
				default:
				}
				d := g.NextDoc()
				d.ID = nextID.Add(1)
				if err := c.Insert(d); err != nil {
					log.Fatalf("writer %d: %v", w, err)
				}
				inserted.Add(1)
				// Retire an old document now and then; the ID may already
				// be gone — that's fine, Delete reports ErrNotFound.
				if d.ID%8 == 0 {
					if err := c.Delete(d.ID - 64); err == nil {
						deleted.Add(1)
					}
				}
			}
		}(w)
	}

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := r; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				// Stream matches across all shards in parallel; stop after
				// a page of results, as a service returning top-k would.
				n := 0
				for range c.FindIter(pats[i%len(pats)]) {
					if n++; n == 20 {
						break
					}
				}
				queries.Add(1)
				hits.Add(int64(n))
			}
		}(r)
	}

	time.Sleep(duration)
	close(stop)
	wg.Wait()
	c.WaitIdle()

	secs := duration.Seconds()
	fmt.Printf("sustained for %v with %d writers + %d readers:\n", duration, writers, readers)
	fmt.Printf("  %6.0f inserts/s, %6.0f deletes/s\n",
		float64(inserted.Load())/secs, float64(deleted.Load())/secs)
	fmt.Printf("  %6.0f queries/s (%.1f matches streamed per query)\n",
		float64(queries.Load())/secs, float64(hits.Load())/float64(max(1, queries.Load())))

	st := c.Stats()
	fmt.Printf("final state: %d docs, %d symbols, %.2f bits/symbol, %d shards, %d ladder rebuilds\n",
		c.DocCount(), c.Len(), float64(c.SizeBits())/float64(max(1, c.Len())), st.Shards, st.Rebuilds)
}
