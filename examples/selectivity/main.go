// Selectivity: the paper's introduction ties dynamic indexing to
// substring selectivity estimation for query optimizers (Orlandi &
// Venturini, PODS 2011; Chaudhuri et al., ICDE 2004): given a LIKE
// '%pattern%' predicate, estimate what fraction of a *changing* table
// column matches, using exact substring counts from the compressed index
// (Theorem 1 counting) instead of stale samples.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strings"

	"dyncoll"
)

// column simulates a VARCHAR column of product descriptions.
type column struct {
	idx    *dyncoll.Collection
	nextID uint64
	rows   int
}

func newColumn() *column {
	// O(log n) exact counts per sub-collection.
	idx, err := dyncoll.NewCollection(dyncoll.WithCounting())
	if err != nil {
		log.Fatal(err)
	}
	return &column{idx: idx, nextID: 1}
}

func (c *column) insert(value string) uint64 {
	id := c.nextID
	c.nextID++
	if err := c.idx.Insert(dyncoll.Document{ID: id, Data: []byte(value)}); err != nil {
		log.Fatal(err)
	}
	c.rows++
	return id
}

func (c *column) delete(id uint64) {
	if c.idx.Delete(id) == nil {
		c.rows--
	}
}

// selectivity returns the estimated fraction of rows matching
// LIKE '%'+pattern+'%'. Occurrence count over rows is an upper bound on
// matching rows (a row can match twice); it is the estimator [38]-style
// optimizers use, exact on the current data rather than sampled.
func (c *column) selectivity(pattern string) float64 {
	if c.rows == 0 {
		return 0
	}
	occ := c.idx.Count([]byte(pattern))
	frac := float64(occ) / float64(c.rows)
	if frac > 1 {
		frac = 1
	}
	return frac
}

func main() {
	rng := rand.New(rand.NewSource(8))
	adjectives := []string{"red", "blue", "small", "large", "wireless", "ergonomic", "vintage", "solar"}
	nouns := []string{"keyboard", "mouse", "lamp", "chair", "desk", "monitor", "cable", "stand"}
	materials := []string{"steel", "oak", "plastic", "aluminium", "bamboo", "glass"}

	col := newColumn()
	makeRow := func() string {
		return fmt.Sprintf("%s %s %s %s",
			adjectives[rng.Intn(len(adjectives))],
			materials[rng.Intn(len(materials))],
			nouns[rng.Intn(len(nouns))],
			strings.Repeat("x", rng.Intn(4)), // filler variance
		)
	}
	var ids []uint64
	for i := 0; i < 20_000; i++ {
		ids = append(ids, col.insert(makeRow()))
	}
	col.idx.WaitIdle()

	preds := []string{"wireless", "oak", "key", "solar glass", "zzz"}
	fmt.Printf("%-16s %12s    plan choice\n", "predicate", "selectivity")
	report := func() {
		for _, p := range preds {
			s := col.selectivity(p)
			plan := "index scan"
			if s > 0.10 {
				plan = "full scan"
			}
			fmt.Printf("LIKE %%%-10s %11.4f    %s\n", p+"%", s, plan)
		}
	}
	fmt.Println("=== initial table (20k rows) ===")
	report()

	// The workload shifts: wireless products are discontinued in bulk and
	// a solar-glass line launches. A sampled estimator would be stale;
	// the index tracks the change exactly.
	for _, id := range ids {
		if rng.Float64() < 0.5 {
			col.delete(id)
		}
	}
	for i := 0; i < 15_000; i++ {
		col.insert("solar glass " + nouns[rng.Intn(len(nouns))])
	}
	col.idx.WaitIdle()

	fmt.Printf("=== after churn (%d rows) ===\n", col.rows)
	report()
}
