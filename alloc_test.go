package dyncoll

// Allocation-regression tests for the flattened query hot paths: a
// steady-state Count must not allocate at all (fused RankPair backward
// search + cached engine store lists + closure-free Query plumbing),
// and Find must allocate proportionally to its result set only. These
// pin the tentpole's zero-allocation claim so later refactors cannot
// quietly reintroduce per-query garbage.

import (
	"testing"

	"dyncoll/internal/textgen"
)

// allocCollection builds a quiesced collection with ~64k symbols over
// the given options.
func allocCollection(t *testing.T, opts ...Option) (*Collection, [][]byte) {
	t.Helper()
	gen := textgen.NewCollection(textgen.CollectionOptions{
		Sigma: 16, Order: 1, Skew: 0.6, MinLen: 256, MaxLen: 1024, Seed: 77,
	})
	gen.GenerateTotal(1 << 16)
	c, err := NewCollection(append([]Option{WithSyncRebuilds()}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.InsertBatch(gen.Docs); err != nil {
		t.Fatal(err)
	}
	c.WaitIdle()
	ps := textgen.NewPatternSampler(gen.Docs, 78)
	return c, ps.PlantedSet(16, 6)
}

func TestCountZeroAllocs(t *testing.T) {
	for _, tc := range []struct {
		name string
		opts []Option
	}{
		{"worstcase", nil},
		{"worstcase+counting", []Option{WithCounting()}},
		{"amortized", []Option{WithTransformation(Amortized)}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			c, pats := allocCollection(t, tc.opts...)
			want := make([]int, len(pats))
			for i, p := range pats {
				want[i] = c.Count(p)
			}
			i := 0
			avg := testing.AllocsPerRun(200, func() {
				p := pats[i%len(pats)]
				if got := c.Count(p); got != want[i%len(pats)] {
					t.Fatalf("Count(%q) drifted: %d != %d", p, got, want[i%len(pats)])
				}
				i++
			})
			if avg != 0 {
				t.Fatalf("steady-state Count allocates %.1f objects/op, want 0", avg)
			}
		})
	}
}

func TestFindAllocsBoundedByResult(t *testing.T) {
	c, pats := allocCollection(t)
	// FindFunc with a pre-allocated sink must stay O(1) allocations per
	// query (the iterator/closure plumbing), independent of the number
	// of occurrences reported.
	i := 0
	var sink Occurrence
	avg := testing.AllocsPerRun(100, func() {
		c.FindFunc(pats[i%len(pats)], func(o Occurrence) bool {
			sink = o
			return true
		})
		i++
	})
	_ = sink
	// The per-call constant covers the closure wiring, not per-result
	// work; 8 is a generous ceiling that still catches any per-match
	// allocation (queries here report hundreds of matches).
	if avg > 8 {
		t.Fatalf("FindFunc allocates %.1f objects/op — per-result allocation suspected", avg)
	}

	// Find materializes its result slice: allocations must scale with
	// result size, not corpus size. Compare a heavy pattern against the
	// same pattern on an equal corpus — the bound here is simply that
	// the amortized growth stays within a small multiple of the slice
	// doublings needed for the result.
	occ := len(c.Find(pats[0]))
	if occ == 0 {
		t.Skip("pattern not present")
	}
	avgFind := testing.AllocsPerRun(50, func() {
		c.Find(pats[0])
	})
	// log2(occ) slice doublings plus the constant plumbing.
	bound := float64(2*bitsLen(occ) + 8)
	if avgFind > bound {
		t.Fatalf("Find of %d occurrences allocates %.1f objects/op, want ≤ %.0f", occ, avgFind, bound)
	}
}

func bitsLen(v int) int {
	n := 0
	for v > 0 {
		v >>= 1
		n++
	}
	return n
}
