package dyncoll

import (
	"fmt"
	"sort"
	"sync"

	"dyncoll/internal/core"
	"dyncoll/internal/fmindex"
	"dyncoll/internal/snap"
)

// StaticIndex is the contract a static compressed index must satisfy to
// be dynamized by the paper's framework — a "(u(n), w(n))-constructible"
// index answering range-finding, locating, extraction and suffix-rank
// queries (Section 2). Implement it and register a builder with
// RegisterIndex to plug any index family into Collection; the dynamic
// machinery (sub-collection ladder, lazy deletions, background rebuilds)
// is index-agnostic.
type StaticIndex = core.StaticIndex

// IndexConfig carries the per-collection tuning knobs a builder may
// honor.
type IndexConfig struct {
	// SampleRate is the suffix-array sampling rate s: locate costs O(s),
	// the samples cost O(n/s·log n) bits. Builders without a
	// locate/space trade-off may ignore it. 0 means the builder's
	// default.
	SampleRate int
}

// IndexBuilder constructs a StaticIndex over a document set. It
// corresponds to the paper's construction algorithm with cost O(n·u(n))
// time and O(n·w(n)) workspace.
type IndexBuilder func(docs []Document, cfg IndexConfig) StaticIndex

// IndexDecoder reconstructs a StaticIndex from the binary form the
// index wrote through its AppendBinary method. Registering one (see
// RegisterIndexDecoder) enables the snapshot fast path for that index:
// Save embeds the index bytes instead of raw documents and Load skips
// the O(n·u(n)) rebuild. Indexes without a decoder still round-trip
// through snapshots — their levels are stored as raw documents and
// rebuilt by the registered IndexBuilder at load.
type IndexDecoder = core.IndexDecoder

// Built-in static-index names, registered at package init.
const (
	// IndexFM is the nHk-space FM-index (wavelet tree over the BWT; the
	// stand-in for the Belazzougui–Navarro / Barbay et al. indexes of the
	// paper's Tables 1–2).
	IndexFM = "fm"
	// IndexSA is the O(n log σ)-bit plain suffix-array index (the
	// Grossi–Vitter stand-in of Table 3): faster queries, more space.
	IndexSA = "sa"
	// IndexCSA is the Ψ-based compressed suffix array (Sadakane flavour):
	// no rank/select machinery at all, a second compressed family
	// demonstrating the framework's index-agnosticism.
	IndexCSA = "csa"
)

// indexEntry is one registered index family: the mandatory builder,
// the optional snapshot fast-path decoder, and the optional v2 mapped
// opener (built-ins only for now — custom indexes round-trip through
// v2 snapshots as raw documents rebuilt at open).
type indexEntry struct {
	build      IndexBuilder
	decode     IndexDecoder
	openMapped core.IndexOpener
}

var indexRegistry = struct {
	mu sync.RWMutex
	m  map[string]*indexEntry
}{m: make(map[string]*indexEntry)}

// RegisterIndex makes a static-index builder available to NewCollection
// under the given name (case-sensitive). It fails with ErrIndexExists if
// the name is taken and ErrInvalidOption on an empty name or nil
// builder. Registration is typically done from an init function.
func RegisterIndex(name string, builder IndexBuilder) error {
	if name == "" {
		return fmt.Errorf("dyncoll: %w: empty index name", ErrInvalidOption)
	}
	if builder == nil {
		return fmt.Errorf("dyncoll: %w: nil builder for index %q", ErrInvalidOption, name)
	}
	indexRegistry.mu.Lock()
	defer indexRegistry.mu.Unlock()
	if _, taken := indexRegistry.m[name]; taken {
		return fmt.Errorf("dyncoll: %w: %q", ErrIndexExists, name)
	}
	indexRegistry.m[name] = &indexEntry{build: builder}
	return nil
}

// RegisterIndexDecoder attaches a snapshot fast-path decoder to an
// already-registered index. It fails with ErrUnknownIndex if no builder
// is registered under name, ErrInvalidOption on a nil decoder, and
// ErrIndexExists if the index already has a decoder.
func RegisterIndexDecoder(name string, dec IndexDecoder) error {
	if dec == nil {
		return fmt.Errorf("dyncoll: %w: nil decoder for index %q", ErrInvalidOption, name)
	}
	indexRegistry.mu.Lock()
	defer indexRegistry.mu.Unlock()
	ent, ok := indexRegistry.m[name]
	if !ok {
		return fmt.Errorf("dyncoll: %w: %q (register the builder first)", ErrUnknownIndex, name)
	}
	if ent.decode != nil {
		return fmt.Errorf("dyncoll: %w: %q already has a decoder", ErrIndexExists, name)
	}
	ent.decode = dec
	return nil
}

// RegisteredIndexes returns the names of all registered static indexes,
// sorted.
func RegisteredIndexes() []string {
	indexRegistry.mu.RLock()
	defer indexRegistry.mu.RUnlock()
	return registeredLocked()
}

// lookupIndex resolves a registered builder by name.
func lookupIndex(name string) (IndexBuilder, error) {
	indexRegistry.mu.RLock()
	defer indexRegistry.mu.RUnlock()
	ent, ok := indexRegistry.m[name]
	if !ok {
		return nil, fmt.Errorf("dyncoll: %w: %q (registered: %v)", ErrUnknownIndex, name, registeredLocked())
	}
	return ent.build, nil
}

// lookupDecoder resolves an index's snapshot decoder; nil when the
// index has none (snapshots then use the raw-document fallback).
func lookupDecoder(name string) IndexDecoder {
	indexRegistry.mu.RLock()
	defer indexRegistry.mu.RUnlock()
	if ent, ok := indexRegistry.m[name]; ok {
		return ent.decode
	}
	return nil
}

// lookupMappedOpener resolves an index's v2 mapped opener; nil when the
// index has none (its v2 stores then travel as raw documents).
func lookupMappedOpener(name string) core.IndexOpener {
	indexRegistry.mu.RLock()
	defer indexRegistry.mu.RUnlock()
	if ent, ok := indexRegistry.m[name]; ok {
		return ent.openMapped
	}
	return nil
}

// setMappedOpener attaches a v2 opener to a registered entry (init-time
// wiring for the built-ins).
func setMappedOpener(name string, open core.IndexOpener) {
	indexRegistry.mu.Lock()
	defer indexRegistry.mu.Unlock()
	indexRegistry.m[name].openMapped = open
}

// registeredLocked lists names under a held read lock (for error detail).
func registeredLocked() []string {
	out := make([]string, 0, len(indexRegistry.m))
	for name := range indexRegistry.m {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func mustRegister(name string, b IndexBuilder, dec IndexDecoder) {
	if err := RegisterIndex(name, b); err != nil {
		panic(err) // unreachable: built-ins register once on fresh names
	}
	if err := RegisterIndexDecoder(name, dec); err != nil {
		panic(err)
	}
}

func init() {
	mustRegister(IndexFM, func(docs []Document, cfg IndexConfig) StaticIndex {
		return fmindex.Build(docs, fmindex.Options{SampleRate: cfg.SampleRate})
	}, func(data []byte) (StaticIndex, error) {
		x := &fmindex.Index{}
		if err := x.UnmarshalBinary(data); err != nil {
			return nil, err
		}
		return x, nil
	})
	mustRegister(IndexSA, func(docs []Document, cfg IndexConfig) StaticIndex {
		return fmindex.BuildSA(docs)
	}, func(data []byte) (StaticIndex, error) {
		x := &fmindex.SAIndex{}
		if err := x.UnmarshalBinary(data); err != nil {
			return nil, err
		}
		return x, nil
	})
	mustRegister(IndexCSA, func(docs []Document, cfg IndexConfig) StaticIndex {
		return fmindex.BuildCSA(docs, fmindex.Options{SampleRate: cfg.SampleRate})
	}, func(data []byte) (StaticIndex, error) {
		x := &fmindex.CSA{}
		if err := x.UnmarshalBinary(data); err != nil {
			return nil, err
		}
		return x, nil
	})
	setMappedOpener(IndexFM, func(mv *snap.MapView) (StaticIndex, error) {
		return fmindex.OpenMappedIndex(mv)
	})
	setMappedOpener(IndexSA, func(mv *snap.MapView) (StaticIndex, error) {
		return fmindex.OpenMappedSA(mv)
	})
	setMappedOpener(IndexCSA, func(mv *snap.MapView) (StaticIndex, error) {
		return fmindex.OpenMappedCSA(mv)
	})
}
