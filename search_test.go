package dyncoll

import (
	"bytes"
	"errors"
	"fmt"
	"regexp"
	"slices"
	"testing"
)

// searchConfigs spans the 3 transformations × sharded/unsharded — the
// six executor layouts every search variant must agree across.
func searchConfigs() map[string][]Option {
	return map[string][]Option{
		"T1":          {WithTransformation(Amortized)},
		"T2":          {WithTransformation(WorstCase), WithSyncRebuilds()},
		"T3":          {WithTransformation(AmortizedFastInsert)},
		"T1-shards=3": {WithTransformation(Amortized), WithShards(3)},
		"T2-shards=4": {WithTransformation(WorstCase), WithSyncRebuilds(), WithShards(4)},
		"T3-shards=2": {WithTransformation(AmortizedFastInsert), WithShards(2)},
	}
}

var searchDocs = map[uint64][]byte{
	1:  []byte("the quick brown fox jumps over the lazy dog"),
	2:  []byte("pack my box with five dozen liquor jugs"),
	3:  []byte("quick quack quock quick"),
	4:  []byte("aaaa bbbb aaaa bbbb aaaa"),
	5:  []byte("the rain in spain stays mainly in the plain"),
	6:  []byte("zzzz"),
	7:  []byte("a quick brown dog outpaces a quick fox"),
	8:  []byte("mainframe maintenance remains domain knowledge"),
	9:  []byte("xyxyxyxyxyxyxyxyxyxyxyxyxyxyxyxy"),
	10: []byte("short"),
}

func searchCollection(t *testing.T, opts []Option) *Collection {
	t.Helper()
	c := mustCollection(t, opts...)
	var batch []Document
	for id, data := range searchDocs {
		batch = append(batch, Document{ID: id, Data: data})
	}
	if err := c.InsertBatch(batch); err != nil {
		t.Fatal(err)
	}
	// Delete and keep one document out, so lazy-deletion bitmaps are in
	// play on every path.
	mustInsert(t, c, Document{ID: 99, Data: []byte("the quick interloper")})
	if err := c.Delete(99); err != nil {
		t.Fatal(err)
	}
	c.WaitIdle()
	return c
}

// referenceRegex evaluates expr with the regexp package over every doc.
func referenceRegex(expr string) []Match {
	re := regexp.MustCompile(expr)
	var out []Match
	for _, id := range slices.Sorted(func(yield func(uint64) bool) {
		for id := range searchDocs {
			if !yield(id) {
				return
			}
		}
	}) {
		for _, loc := range re.FindAllIndex(searchDocs[id], -1) {
			out = append(out, Match{Doc: id, Off: loc[0], Len: loc[1] - loc[0]})
		}
	}
	return out
}

func sortMatches(ms []Match) {
	slices.SortFunc(ms, func(a, b Match) int {
		if a.Doc != b.Doc {
			if a.Doc < b.Doc {
				return -1
			}
			return 1
		}
		if a.Off != b.Off {
			return a.Off - b.Off
		}
		return a.Len - b.Len
	})
}

// TestFindRegexpEquivalence: the planner's verified results equal the
// regexp package run over every document, on all six layouts, for
// literal-filtered and scan-fallback expressions alike.
func TestFindRegexpEquivalence(t *testing.T) {
	exprs := []string{
		`quick`, `qu.ck`, `the|dog`, `ma?in`, `a{4}`, `(xy)+`,
		`^the`, `dog$`, `[0-9]+`, `q[a-z]*k`, `\bfox\b`, `z{2,3}`,
	}
	for name, opts := range searchConfigs() {
		t.Run(name, func(t *testing.T) {
			c := searchCollection(t, opts)
			for _, expr := range exprs {
				want := referenceRegex(expr)
				it, err := c.FindRegexp(expr)
				if err != nil {
					t.Fatalf("FindRegexp(%q): %v", expr, err)
				}
				var got []Match
				for m := range it {
					got = append(got, m)
				}
				sortMatches(got)
				sortMatches(want)
				if fmt.Sprint(got) != fmt.Sprint(want) {
					t.Errorf("FindRegexp(%q) = %v, want %v", expr, got, want)
				}
			}
		})
	}
}

// TestFindTopKDeterministic: ranked output is identical across layouts
// (score desc, doc asc) and is the prefix-of-k of the full ranking.
func TestFindTopKDeterministic(t *testing.T) {
	var full []Match
	for name, opts := range searchConfigs() {
		t.Run(name, func(t *testing.T) {
			c := searchCollection(t, opts)
			var all []Match
			for m := range c.FindTopK([]byte("quick"), 0) {
				all = append(all, m)
			}
			if len(all) == 0 {
				t.Fatal("no ranked results")
			}
			// Docs unique, order deterministic.
			seen := map[uint64]bool{}
			for i, m := range all {
				if seen[m.Doc] {
					t.Fatalf("doc %d ranked twice", m.Doc)
				}
				seen[m.Doc] = true
				if i > 0 && (all[i-1].Score < m.Score ||
					(all[i-1].Score == m.Score && all[i-1].Doc > m.Doc)) {
					t.Fatalf("ranking out of order at %d: %v after %v", i, m, all[i-1])
				}
			}
			if full == nil {
				full = all
			} else if fmt.Sprint(all) != fmt.Sprint(full) {
				t.Fatalf("layout %s ranks differently: %v vs %v", name, all, full)
			}
			// Top-2 is the prefix of the full ranking.
			var top2 []Match
			for m := range c.FindTopK([]byte("quick"), 2) {
				top2 = append(top2, m)
			}
			if fmt.Sprint(top2) != fmt.Sprint(all[:min(2, len(all))]) {
				t.Fatalf("top-2 %v is not the prefix of %v", top2, all)
			}
		})
	}
}

// TestFindRegexpTopK: ranked regex agrees across layouts and covers
// exactly the documents the reference says match.
func TestFindRegexpTopK(t *testing.T) {
	const expr = `ma?in`
	re := regexp.MustCompile(expr)
	wantDocs := map[uint64]bool{}
	for id, data := range searchDocs {
		if re.Match(data) {
			wantDocs[id] = true
		}
	}
	var full []Match
	for name, opts := range searchConfigs() {
		t.Run(name, func(t *testing.T) {
			c := searchCollection(t, opts)
			it, err := c.FindRegexpTopK(expr, 0)
			if err != nil {
				t.Fatal(err)
			}
			var all []Match
			for m := range it {
				all = append(all, m)
			}
			if len(all) != len(wantDocs) {
				t.Fatalf("ranked %d docs, want %d", len(all), len(wantDocs))
			}
			for _, m := range all {
				if !wantDocs[m.Doc] {
					t.Fatalf("doc %d ranked but does not match", m.Doc)
				}
			}
			if full == nil {
				full = all
			} else if fmt.Sprint(all) != fmt.Sprint(full) {
				t.Fatalf("layout %s ranks differently", name)
			}
		})
	}
}

func TestSearchBadPlan(t *testing.T) {
	c := mustCollection(t)
	if _, err := c.FindRegexp(`a(`); !errors.Is(err, ErrBadPattern) {
		t.Errorf("FindRegexp(a() = %v, want ErrBadPattern", err)
	}
	if _, err := c.FindRegexpTopK(`[`, 5); !errors.Is(err, ErrBadPattern) {
		t.Errorf("FindRegexpTopK([) = %v, want ErrBadPattern", err)
	}
	if err := c.Search(SearchPlan{Pattern: "x", K: -2}, func(Match) bool { return true }); !errors.Is(err, ErrBadPattern) {
		t.Errorf("Search(k=-2) = %v, want ErrBadPattern", err)
	}
}

// TestFindLimit: the prefix fast path returns exactly min(k, total)
// occurrences, each a real occurrence, on sharded and unsharded
// collections.
func TestFindLimit(t *testing.T) {
	for name, opts := range searchConfigs() {
		t.Run(name, func(t *testing.T) {
			c := searchCollection(t, opts)
			total := c.Count([]byte("quick"))
			if total < 4 {
				t.Fatalf("corpus broken: %d quick", total)
			}
			for _, k := range []int{-1, 0, 1, 3, total, total + 10} {
				got := c.FindLimit([]byte("quick"), k)
				want := k
				if k <= 0 {
					want = 0
				} else if k > total {
					want = total
				}
				if len(got) != want {
					t.Fatalf("FindLimit(k=%d) returned %d, want %d", k, len(got), want)
				}
				for _, o := range got {
					data, ok := c.Extract(o.DocID, o.Off, len("quick"))
					if !ok || !bytes.Equal(data, []byte("quick")) {
						t.Fatalf("FindLimit returned bogus occurrence %+v", o)
					}
				}
			}
		})
	}
}

// TestRelationGraphLimit covers the matching fan-out prefix fast paths.
func TestRelationGraphLimit(t *testing.T) {
	for _, shards := range []int{0, 3} {
		var opts []Option
		if shards > 0 {
			opts = append(opts, WithShards(shards))
		}
		r, err := NewRelation(opts...)
		if err != nil {
			t.Fatal(err)
		}
		for obj := uint64(1); obj <= 20; obj++ {
			if err := r.Add(obj, 7); err != nil {
				t.Fatal(err)
			}
		}
		if got := r.ObjectsLimit(7, 5); len(got) != 5 {
			t.Fatalf("shards=%d: ObjectsLimit = %d objects, want 5", shards, len(got))
		}
		if got := r.ObjectsLimit(7, 100); len(got) != 20 {
			t.Fatalf("shards=%d: ObjectsLimit(100) = %d, want 20", shards, len(got))
		}
		if r.ObjectsLimit(7, 0) != nil {
			t.Fatalf("shards=%d: ObjectsLimit(0) should be nil", shards)
		}

		g, err := NewGraph(opts...)
		if err != nil {
			t.Fatal(err)
		}
		for u := uint64(1); u <= 20; u++ {
			if err := g.AddEdge(u, 42); err != nil {
				t.Fatal(err)
			}
		}
		if got := g.ReverseNeighborsLimit(42, 5); len(got) != 5 {
			t.Fatalf("shards=%d: ReverseNeighborsLimit = %d, want 5", shards, len(got))
		}
		if got := g.ReverseNeighborsLimit(42, 100); len(got) != 20 {
			t.Fatalf("shards=%d: ReverseNeighborsLimit(100) = %d, want 20", shards, len(got))
		}
	}
}

// TestSearchExactStreamMatchesFind: the plan/execute exact path reports
// the same occurrence set as the legacy Find, with Len filled in.
func TestSearchExactStreamMatchesFind(t *testing.T) {
	for name, opts := range searchConfigs() {
		t.Run(name, func(t *testing.T) {
			c := searchCollection(t, opts)
			want := c.Find([]byte("ain"))
			var got []Match
			if err := c.Search(SearchPlan{Pattern: "ain"}, func(m Match) bool {
				got = append(got, m)
				return true
			}); err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("Search found %d, Find found %d", len(got), len(want))
			}
			wantSet := map[Occurrence]bool{}
			for _, o := range want {
				wantSet[o] = true
			}
			for _, m := range got {
				if m.Len != 3 {
					t.Fatalf("match %+v: Len != 3", m)
				}
				if !wantSet[Occurrence{DocID: m.Doc, Off: m.Off}] {
					t.Fatalf("Search reported %+v not in Find results", m)
				}
			}
		})
	}
}
