package dyncoll

import "fmt"

// structKind tags which structure a config is being assembled for, so
// options can reject targets they do not apply to.
type structKind int

const (
	kindCollection structKind = iota
	kindRelation
	kindGraph
)

func (k structKind) String() string {
	switch k {
	case kindRelation:
		return "Relation"
	case kindGraph:
		return "Graph"
	default:
		return "Collection"
	}
}

// config is the resolved option set shared by all three structures.
type config struct {
	kind structKind

	transformation Transformation
	index          string
	sampleRate     int
	tau            int
	epsilon        float64
	minCapacity    int
	counting       bool
	syncRebuilds   bool
	shards         int
}

// Option configures NewCollection, NewRelation, or NewGraph. Options are
// applied in order; an option that does not apply to the structure being
// built (e.g. WithIndex on a Relation) fails the constructor with
// ErrInvalidOption rather than being silently ignored.
type Option func(*config) error

// WithTransformation picks the update-cost regime: WorstCase (the
// default — Transformation 2, bounded foreground work per update),
// Amortized (Transformation 1), or AmortizedFastInsert (Transformation
// 3, Collection only).
func WithTransformation(t Transformation) Option {
	return func(c *config) error {
		switch t {
		case WorstCase, Amortized:
		case AmortizedFastInsert:
			if c.kind != kindCollection {
				return fmt.Errorf("dyncoll: %w: AmortizedFastInsert applies only to Collection, not %v", ErrInvalidOption, c.kind)
			}
		default:
			return fmt.Errorf("dyncoll: %w: unknown Transformation %d", ErrInvalidOption, int(t))
		}
		c.transformation = t
		return nil
	}
}

// WithIndex selects the static index backing a Collection by registry
// name — a built-in (IndexFM, IndexSA, IndexCSA) or anything added via
// RegisterIndex. The name is resolved when the collection is created.
func WithIndex(name string) Option {
	return func(c *config) error {
		if c.kind != kindCollection {
			return fmt.Errorf("dyncoll: %w: WithIndex applies only to Collection, not %v", ErrInvalidOption, c.kind)
		}
		c.index = name
		return nil
	}
}

// WithSampleRate sets the suffix-array sampling rate s handed to the
// index builder: locate costs O(s), the samples cost O(n/s·log n) bits.
// Collection only.
func WithSampleRate(s int) Option {
	return func(c *config) error {
		if c.kind != kindCollection {
			return fmt.Errorf("dyncoll: %w: WithSampleRate applies only to Collection, not %v", ErrInvalidOption, c.kind)
		}
		if s < 0 {
			return fmt.Errorf("dyncoll: %w: negative sample rate %d", ErrInvalidOption, s)
		}
		c.sampleRate = s
		return nil
	}
}

// WithTau sets the paper's lazy-deletion parameter τ: a sub-collection
// is purged once a 1/τ fraction of it is dead, costing O(n·log τ/τ) bits
// of bookkeeping. 0 (the default) derives τ = log n / log log n
// automatically at global rebuilds.
func WithTau(tau int) Option {
	return func(c *config) error {
		if tau < 0 {
			return fmt.Errorf("dyncoll: %w: negative tau %d", ErrInvalidOption, tau)
		}
		c.tau = tau
		return nil
	}
}

// WithEpsilon sets the geometric growth exponent ε of sub-collection
// capacities, trading insertion cost O(u·logᵋ n) against the number of
// ladder levels ⌈2/ε⌉. Must be in (0, 1]. Default 0.5.
func WithEpsilon(e float64) Option {
	return func(c *config) error {
		if e <= 0 || e > 1 {
			return fmt.Errorf("dyncoll: %w: epsilon %v outside (0, 1]", ErrInvalidOption, e)
		}
		c.epsilon = e
		return nil
	}
}

// WithMinCapacity bounds the uncompressed C0 capacity from below so
// small structures behave sensibly. Default 64.
func WithMinCapacity(n int) Option {
	return func(c *config) error {
		if n < 0 {
			return fmt.Errorf("dyncoll: %w: negative min capacity %d", ErrInvalidOption, n)
		}
		c.minCapacity = n
		return nil
	}
}

// WithCounting attaches Theorem 1's structures so Collection.Count
// answers in O(tcount) without enumerating matches, at
// +O(log n/log log n) update cost per symbol. Collection only.
func WithCounting() Option {
	return func(c *config) error {
		if c.kind != kindCollection {
			return fmt.Errorf("dyncoll: %w: WithCounting applies only to Collection, not %v", ErrInvalidOption, c.kind)
		}
		c.counting = true
		return nil
	}
}

// WithShards partitions the structure across p independent sub-structures
// ("shards") keyed by a hash of the document ID (Collection), the object
// (Relation), or the edge source (Graph). Each shard has its own
// rebuild pipeline and its own sync.RWMutex, which makes the structure
// safe for concurrent readers and writers; queries that cannot be routed
// to a single shard (Find, Count, ObjectsOf, Predecessors, …) fan out
// across all shards in parallel goroutines and merge into the usual
// streaming iterators.
//
// p must be ≥ 1. WithShards(1) keeps a single partition but still wraps
// it in the concurrency-safe locking layer; omitting the option entirely
// gives the unsharded v1-compatible structure, which callers must
// serialize externally.
func WithShards(p int) Option {
	return func(c *config) error {
		if p < 1 {
			return fmt.Errorf("dyncoll: %w: shard count %d (need ≥ 1)", ErrInvalidOption, p)
		}
		c.shards = p
		return nil
	}
}

// WithSyncRebuilds forces WorstCase background rebuilds to complete
// synchronously — deterministic behaviour for tests and reproducible
// benchmarks. Under WithShards each shard applies the setting to its own
// rebuild pipeline, so a sharded collection remains deterministic
// per-shard while queries still fan out concurrently. A no-op under the
// amortized transformations.
func WithSyncRebuilds() Option {
	return func(c *config) error {
		c.syncRebuilds = true
		return nil
	}
}

// newConfig applies opts over the defaults for the given structure.
func newConfig(kind structKind, opts []Option) (config, error) {
	c := config{kind: kind, transformation: WorstCase, index: IndexFM}
	if kind != kindCollection {
		// Relations and graphs default to the amortized cascades; their
		// worst-case machinery is opt-in via WithTransformation.
		c.transformation = Amortized
	}
	for _, o := range opts {
		if err := o(&c); err != nil {
			return config{}, err
		}
	}
	return c, nil
}
