package dyncoll

import (
	"bytes"
	"fmt"
	"testing"
)

func TestCollectionConfigurations(t *testing.T) {
	cases := []CollectionOptions{
		{},
		{Transformation: Amortized},
		{Transformation: AmortizedFastInsert},
		{Transformation: WorstCase, SyncRebuilds: true},
		{Index: PlainSA},
		{Index: CompressedCSA},
		{Index: CompressedCSA, Transformation: Amortized, SampleRate: 4},
		{Counting: true, SyncRebuilds: true},
		{SampleRate: 4, Tau: 8},
	}
	for i, opts := range cases {
		t.Run(fmt.Sprintf("cfg%d", i), func(t *testing.T) {
			c := NewCollection(opts)
			c.Insert(Document{ID: 1, Data: []byte("abracadabra")})
			c.Insert(Document{ID: 2, Data: []byte("alakazam")})
			c.Insert(Document{ID: 3, Data: []byte("abrakadabra")})
			c.WaitIdle()
			if got := c.Count([]byte("abra")); got != 4 {
				t.Fatalf("Count(abra) = %d, want 4", got)
			}
			occs := c.Find([]byte("ka"))
			if len(occs) != 2 {
				t.Fatalf("Find(ka) = %v", occs)
			}
			if !c.Delete(3) {
				t.Fatal("Delete(3) failed")
			}
			c.WaitIdle()
			if got := c.Count([]byte("abra")); got != 2 {
				t.Fatalf("Count(abra) after delete = %d, want 2", got)
			}
			data, ok := c.Extract(1, 1, 4)
			if !ok || !bytes.Equal(data, []byte("brac")) {
				t.Fatalf("Extract = %q, %v", data, ok)
			}
			if n, ok := c.DocLen(2); !ok || n != 8 {
				t.Fatalf("DocLen(2) = %d, %v", n, ok)
			}
			if c.DocCount() != 2 || c.Len() != 11+8 {
				t.Fatalf("DocCount=%d Len=%d", c.DocCount(), c.Len())
			}
			if !c.Has(1) || c.Has(3) {
				t.Fatal("Has wrong")
			}
			if c.SizeBits() <= 0 {
				t.Fatal("SizeBits not positive")
			}
		})
	}
}

func TestCollectionFindFuncStream(t *testing.T) {
	c := NewCollection(CollectionOptions{SyncRebuilds: true})
	for i := 1; i <= 30; i++ {
		c.Insert(Document{ID: uint64(i), Data: []byte("xyxyxy")})
	}
	n := 0
	c.FindFunc([]byte("xy"), func(Occurrence) bool {
		n++
		return n < 10
	})
	if n != 10 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestRelationFacade(t *testing.T) {
	r := NewRelation(RelationOptions{})
	r.Add(1, 100)
	r.Add(1, 200)
	r.Add(2, 100)
	if !r.Related(1, 100) || r.Related(2, 200) {
		t.Fatal("Related wrong")
	}
	if r.CountObjects(100) != 2 || r.CountLabels(1) != 2 {
		t.Fatal("counts wrong")
	}
	r.Delete(1, 100)
	if r.Related(1, 100) || r.Len() != 2 {
		t.Fatal("delete wrong")
	}
}

func TestGraphFacade(t *testing.T) {
	g := NewGraph(GraphOptions{})
	g.AddEdge(1, 2)
	g.AddEdge(1, 3)
	g.AddEdge(2, 3)
	if g.OutDegree(1) != 2 || g.InDegree(3) != 2 {
		t.Fatal("degrees wrong")
	}
	ns := g.Neighbors(1)
	if len(ns) != 2 || ns[0] != 2 || ns[1] != 3 {
		t.Fatalf("Neighbors = %v", ns)
	}
}

func TestBaselineFacade(t *testing.T) {
	b := NewBaselineCollection(8)
	b.Insert(Document{ID: 1, Data: []byte("banana")})
	if got := b.Count([]byte("an")); got != 2 {
		t.Fatalf("baseline Count = %d", got)
	}
}

func ExampleCollection() {
	c := NewCollection(CollectionOptions{SyncRebuilds: true})
	c.Insert(Document{ID: 1, Data: []byte("the quick brown fox")})
	c.Insert(Document{ID: 2, Data: []byte("the lazy dog")})
	fmt.Println(c.Count([]byte("the")))
	c.Delete(2)
	fmt.Println(c.Count([]byte("the")))
	// Output:
	// 2
	// 1
}

func TestCollectionDocIDs(t *testing.T) {
	for _, tr := range []Transformation{Amortized, WorstCase, AmortizedFastInsert} {
		c := NewCollection(CollectionOptions{Transformation: tr, SyncRebuilds: true})
		want := map[uint64]bool{}
		for i := uint64(1); i <= 40; i++ {
			c.Insert(Document{ID: i, Data: []byte{byte(i%5 + 1), 2, 3}})
			want[i] = true
		}
		for i := uint64(1); i <= 40; i += 3 {
			c.Delete(i)
			delete(want, i)
		}
		got := c.DocIDs()
		if len(got) != len(want) {
			t.Fatalf("transform %d: DocIDs len = %d, want %d", tr, len(got), len(want))
		}
		for _, id := range got {
			if !want[id] {
				t.Fatalf("transform %d: unexpected ID %d", tr, id)
			}
		}
	}
}

func TestCollectionStats(t *testing.T) {
	a := NewCollection(CollectionOptions{Transformation: Amortized})
	w := NewCollection(CollectionOptions{Transformation: WorstCase, SyncRebuilds: true})
	for i := uint64(1); i <= 120; i++ {
		d := Document{ID: i, Data: []byte("some document payload for stats testing")}
		a.Insert(d)
		d2 := d
		d2.ID = i
		w.Insert(d2)
	}
	for _, c := range []*Collection{a, w} {
		st := c.Stats()
		if st.Levels < 1 || len(st.LevelSizes) != len(st.LevelCaps) {
			t.Fatalf("malformed stats: %+v", st)
		}
		if st.Tau < 2 {
			t.Fatalf("Tau = %d", st.Tau)
		}
		if st.Rebuilds == 0 {
			t.Fatalf("no rebuilds recorded: %+v", st)
		}
	}
	if w.Stats().Tops == 0 && a.Stats().Tops != 0 {
		t.Fatal("Tops should only apply to worst-case") // sanity of zero-field contract
	}
}
