package dyncoll

import (
	"bytes"
	"fmt"
	"testing"
)

func mustCollection(t *testing.T, opts ...Option) *Collection {
	t.Helper()
	c, err := NewCollection(opts...)
	if err != nil {
		t.Fatalf("NewCollection: %v", err)
	}
	return c
}

func mustInsert(t *testing.T, c *Collection, d Document) {
	t.Helper()
	if err := c.Insert(d); err != nil {
		t.Fatalf("Insert(%d): %v", d.ID, err)
	}
}

func TestCollectionConfigurations(t *testing.T) {
	cases := [][]Option{
		nil,
		{WithTransformation(Amortized)},
		{WithTransformation(AmortizedFastInsert)},
		{WithTransformation(WorstCase), WithSyncRebuilds()},
		{WithIndex(IndexSA)},
		{WithIndex(IndexCSA)},
		{WithIndex(IndexCSA), WithTransformation(Amortized), WithSampleRate(4)},
		{WithCounting(), WithSyncRebuilds()},
		{WithSampleRate(4), WithTau(8)},
		{WithEpsilon(0.25), WithMinCapacity(32)},
		{WithShards(1)},
		{WithShards(4), WithSyncRebuilds()},
		{WithShards(3), WithTransformation(Amortized)},
		{WithShards(2), WithIndex(IndexSA), WithCounting()},
	}
	for i, opts := range cases {
		t.Run(fmt.Sprintf("cfg%d", i), func(t *testing.T) {
			c := mustCollection(t, opts...)
			mustInsert(t, c, Document{ID: 1, Data: []byte("abracadabra")})
			mustInsert(t, c, Document{ID: 2, Data: []byte("alakazam")})
			mustInsert(t, c, Document{ID: 3, Data: []byte("abrakadabra")})
			c.WaitIdle()
			if got := c.Count([]byte("abra")); got != 4 {
				t.Fatalf("Count(abra) = %d, want 4", got)
			}
			occs := c.Find([]byte("ka"))
			if len(occs) != 2 {
				t.Fatalf("Find(ka) = %v", occs)
			}
			if err := c.Delete(3); err != nil {
				t.Fatalf("Delete(3): %v", err)
			}
			c.WaitIdle()
			if got := c.Count([]byte("abra")); got != 2 {
				t.Fatalf("Count(abra) after delete = %d, want 2", got)
			}
			data, ok := c.Extract(1, 1, 4)
			if !ok || !bytes.Equal(data, []byte("brac")) {
				t.Fatalf("Extract = %q, %v", data, ok)
			}
			if n, ok := c.DocLen(2); !ok || n != 8 {
				t.Fatalf("DocLen(2) = %d, %v", n, ok)
			}
			if c.DocCount() != 2 || c.Len() != 11+8 {
				t.Fatalf("DocCount=%d Len=%d", c.DocCount(), c.Len())
			}
			if !c.Has(1) || c.Has(3) {
				t.Fatal("Has wrong")
			}
			if c.SizeBits() <= 0 {
				t.Fatal("SizeBits not positive")
			}
		})
	}
}

func TestCollectionBatchFacade(t *testing.T) {
	for _, tr := range []Transformation{Amortized, WorstCase, AmortizedFastInsert} {
		for _, shards := range []int{0, 4} {
			opts := []Option{WithTransformation(tr), WithSyncRebuilds()}
			if shards > 0 {
				opts = append(opts, WithShards(shards))
			}
			c := mustCollection(t, opts...)
			var batch []Document
			for i := uint64(1); i <= 50; i++ {
				batch = append(batch, Document{ID: i, Data: []byte("payload number x")})
			}
			if err := c.InsertBatch(batch); err != nil {
				t.Fatalf("transform %d: InsertBatch: %v", tr, err)
			}
			c.WaitIdle()
			if c.DocCount() != 50 {
				t.Fatalf("transform %d: DocCount = %d, want 50", tr, c.DocCount())
			}
			if got := c.Count([]byte("number")); got != 50 {
				t.Fatalf("transform %d: Count = %d, want 50", tr, got)
			}
			if n := c.DeleteBatch([]uint64{1, 2, 3, 777}); n != 3 {
				t.Fatalf("transform %d: DeleteBatch removed %d, want 3", tr, n)
			}
			c.WaitIdle()
			if got := c.Count([]byte("number")); got != 47 {
				t.Fatalf("transform %d: Count after DeleteBatch = %d, want 47", tr, got)
			}
		}
	}
}

func TestCollectionFindIter(t *testing.T) {
	c := mustCollection(t, WithSyncRebuilds())
	for i := 1; i <= 30; i++ {
		mustInsert(t, c, Document{ID: uint64(i), Data: []byte("xyxyxy")})
	}
	// Full enumeration agrees with Find.
	n := 0
	for range c.FindIter([]byte("xy")) {
		n++
	}
	if want := len(c.Find([]byte("xy"))); n != want {
		t.Fatalf("FindIter visited %d, Find returned %d", n, want)
	}
	// Breaking out stops the underlying search early.
	n = 0
	for range c.FindIter([]byte("xy")) {
		n++
		if n == 10 {
			break
		}
	}
	if n != 10 {
		t.Fatalf("early break visited %d", n)
	}
}

func TestCollectionFindFuncStream(t *testing.T) {
	c := mustCollection(t, WithSyncRebuilds())
	for i := 1; i <= 30; i++ {
		mustInsert(t, c, Document{ID: uint64(i), Data: []byte("xyxyxy")})
	}
	n := 0
	c.FindFunc([]byte("xy"), func(Occurrence) bool {
		n++
		return n < 10
	})
	if n != 10 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestRelationFacade(t *testing.T) {
	for _, wc := range []bool{false, true} {
		opts := []Option{WithTransformation(Amortized)}
		if wc {
			opts = []Option{WithTransformation(WorstCase), WithSyncRebuilds()}
		}
		r, err := NewRelation(opts...)
		if err != nil {
			t.Fatalf("NewRelation: %v", err)
		}
		for _, p := range []Pair{{Object: 1, Label: 100}, {Object: 1, Label: 200}, {Object: 2, Label: 100}} {
			if err := r.Add(p.Object, p.Label); err != nil {
				t.Fatalf("Add(%v): %v", p, err)
			}
		}
		if !r.Related(1, 100) || r.Related(2, 200) {
			t.Fatal("Related wrong")
		}
		if r.CountObjects(100) != 2 || r.CountLabels(1) != 2 {
			t.Fatal("counts wrong")
		}
		// Iterator forms agree with the slice forms.
		var labels []uint64
		for l := range r.LabelsIter(1) {
			labels = append(labels, l)
		}
		if len(labels) != 2 {
			t.Fatalf("LabelsIter(1) = %v", labels)
		}
		var objects []uint64
		for o := range r.ObjectsIter(100) {
			objects = append(objects, o)
			break // early break must not hang or panic
		}
		if len(objects) != 1 {
			t.Fatalf("ObjectsIter early break = %v", objects)
		}
		np := 0
		for range r.PairsIter() {
			np++
		}
		if np != 3 {
			t.Fatalf("PairsIter visited %d, want 3", np)
		}
		if err := r.Delete(1, 100); err != nil {
			t.Fatalf("Delete: %v", err)
		}
		if r.Related(1, 100) || r.Len() != 2 {
			t.Fatal("delete wrong")
		}
		r.WaitIdle()
	}
}

func TestGraphFacade(t *testing.T) {
	g, err := NewGraph()
	if err != nil {
		t.Fatalf("NewGraph: %v", err)
	}
	for _, e := range [][2]uint64{{1, 2}, {1, 3}, {2, 3}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatalf("AddEdge(%v): %v", e, err)
		}
	}
	if g.OutDegree(1) != 2 || g.InDegree(3) != 2 {
		t.Fatal("degrees wrong")
	}
	ns := g.Neighbors(1)
	if len(ns) != 2 || ns[0] != 2 || ns[1] != 3 {
		t.Fatalf("Neighbors = %v", ns)
	}
	// Successor/predecessor iterators.
	succ := map[uint64]bool{}
	for v := range g.Successors(1) {
		succ[v] = true
	}
	if !succ[2] || !succ[3] || len(succ) != 2 {
		t.Fatalf("Successors(1) = %v", succ)
	}
	pred := map[uint64]bool{}
	for u := range g.Predecessors(3) {
		pred[u] = true
	}
	if !pred[1] || !pred[2] || len(pred) != 2 {
		t.Fatalf("Predecessors(3) = %v", pred)
	}
	ne := 0
	for range g.EdgesIter() {
		ne++
	}
	if ne != g.EdgeCount() {
		t.Fatalf("EdgesIter visited %d, EdgeCount %d", ne, g.EdgeCount())
	}
	if err := g.DeleteEdge(1, 2); err != nil {
		t.Fatalf("DeleteEdge: %v", err)
	}
	if g.HasEdge(1, 2) || g.EdgeCount() != 2 {
		t.Fatal("DeleteEdge wrong")
	}
}

func TestBaselineFacade(t *testing.T) {
	b := NewBaselineCollection(8)
	if err := b.Insert(Document{ID: 1, Data: []byte("banana")}); err != nil {
		t.Fatal(err)
	}
	if got := b.Count([]byte("an")); got != 2 {
		t.Fatalf("baseline Count = %d", got)
	}
	n := 0
	for range b.FindIter([]byte("an")) {
		n++
	}
	if n != 2 {
		t.Fatalf("baseline FindIter visited %d", n)
	}
	if err := b.Delete(1); err != nil {
		t.Fatal(err)
	}
	if b.Has(1) {
		t.Fatal("baseline delete wrong")
	}
}

func TestDeprecatedShims(t *testing.T) {
	c, err := NewCollectionFromOptions(CollectionOptions{Index: PlainSA, SyncRebuilds: true})
	if err != nil {
		t.Fatalf("NewCollectionFromOptions: %v", err)
	}
	mustInsert(t, c, Document{ID: 1, Data: []byte("shimmed")})
	if c.Count([]byte("him")) != 1 {
		t.Fatal("v1 collection shim broken")
	}
	r := NewRelationFromOptions(RelationOptions{})
	if err := r.Add(1, 2); err != nil || !r.Related(1, 2) {
		t.Fatal("v1 relation shim broken")
	}
	w := NewWorstCaseRelation(WorstCaseRelationOptions{Inline: true})
	if err := w.Add(3, 4); err != nil || !w.Related(3, 4) {
		t.Fatal("v1 worst-case relation shim broken")
	}
	w.WaitIdle()
	g := NewGraphFromOptions(GraphOptions{})
	if err := g.AddEdge(1, 2); err != nil || !g.HasEdge(1, 2) {
		t.Fatal("v1 graph shim broken")
	}
}

func ExampleCollection() {
	c, _ := NewCollection(WithSyncRebuilds())
	_ = c.Insert(Document{ID: 1, Data: []byte("the quick brown fox")})
	_ = c.Insert(Document{ID: 2, Data: []byte("the lazy dog")})
	fmt.Println(c.Count([]byte("the")))
	_ = c.Delete(2)
	fmt.Println(c.Count([]byte("the")))
	// Output:
	// 2
	// 1
}

func TestCollectionDocIDs(t *testing.T) {
	for _, tr := range []Transformation{Amortized, WorstCase, AmortizedFastInsert} {
		c := mustCollection(t, WithTransformation(tr), WithSyncRebuilds())
		want := map[uint64]bool{}
		for i := uint64(1); i <= 40; i++ {
			mustInsert(t, c, Document{ID: i, Data: []byte{byte(i%5 + 1), 2, 3}})
			want[i] = true
		}
		for i := uint64(1); i <= 40; i += 3 {
			if err := c.Delete(i); err != nil {
				t.Fatalf("Delete(%d): %v", i, err)
			}
			delete(want, i)
		}
		got := c.DocIDs()
		if len(got) != len(want) {
			t.Fatalf("transform %d: DocIDs len = %d, want %d", tr, len(got), len(want))
		}
		for _, id := range got {
			if !want[id] {
				t.Fatalf("transform %d: unexpected ID %d", tr, id)
			}
		}
	}
}

func TestCollectionStats(t *testing.T) {
	a := mustCollection(t, WithTransformation(Amortized))
	w := mustCollection(t, WithTransformation(WorstCase), WithSyncRebuilds())
	for i := uint64(1); i <= 120; i++ {
		d := Document{ID: i, Data: []byte("some document payload for stats testing")}
		mustInsert(t, a, d)
		mustInsert(t, w, d)
	}
	for _, c := range []*Collection{a, w} {
		st := c.Stats()
		if st.Levels < 1 || len(st.LevelSizes) != len(st.LevelCaps) {
			t.Fatalf("malformed stats: %+v", st)
		}
		if st.Tau < 2 {
			t.Fatalf("Tau = %d", st.Tau)
		}
		if st.Rebuilds == 0 {
			t.Fatalf("no rebuilds recorded: %+v", st)
		}
	}
	if w.Stats().Tops == 0 && a.Stats().Tops != 0 {
		t.Fatal("Tops should only apply to worst-case") // sanity of zero-field contract
	}
}
