module dyncoll

go 1.23
