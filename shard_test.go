package dyncoll

// Tests for the sharded structures: equivalence with the unsharded
// facade, batch atomicity across shards, fan-out iterator early break,
// and the concurrency guarantees — all meaningful under `go test -race`.

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"
)

func TestWithShardsValidation(t *testing.T) {
	for _, p := range []int{0, -1} {
		if _, err := NewCollection(WithShards(p)); !errors.Is(err, ErrInvalidOption) {
			t.Fatalf("WithShards(%d) = %v, want ErrInvalidOption", p, err)
		}
	}
	for _, p := range []int{1, 7} {
		if _, err := NewCollection(WithShards(p)); err != nil {
			t.Fatalf("WithShards(%d): %v", p, err)
		}
	}
}

func TestShardOfDistribution(t *testing.T) {
	// Dense sequential IDs — the common case — must spread across
	// shards, not stripe into one.
	const p, n = 8, 8000
	counts := make([]int, p)
	for id := uint64(0); id < n; id++ {
		s := shardOf(id, p)
		if s < 0 || s >= p {
			t.Fatalf("shardOf(%d, %d) = %d out of range", id, p, s)
		}
		counts[s]++
	}
	for i, c := range counts {
		if c < n/p/2 || c > n/p*2 {
			t.Fatalf("shard %d holds %d of %d keys: %v", i, c, n, counts)
		}
	}
	if shardOf(42, 1) != 0 {
		t.Fatal("single shard must receive every key")
	}
}

// TestShardedCollectionEquivalence drives the same operation sequence
// through an unsharded and a sharded collection and requires identical
// observable state.
func TestShardedCollectionEquivalence(t *testing.T) {
	for _, p := range []int{1, 3, 8} {
		t.Run(fmt.Sprintf("p=%d", p), func(t *testing.T) {
			plain := mustCollection(t, WithSyncRebuilds())
			shrd := mustCollection(t, WithSyncRebuilds(), WithShards(p))
			for i := uint64(1); i <= 60; i++ {
				d := Document{ID: i, Data: []byte(fmt.Sprintf("payload %d abracadabra", i))}
				mustInsert(t, plain, d)
				mustInsert(t, shrd, d)
			}
			for i := uint64(3); i <= 60; i += 7 {
				if err := plain.Delete(i); err != nil {
					t.Fatal(err)
				}
				if err := shrd.Delete(i); err != nil {
					t.Fatal(err)
				}
			}
			plain.WaitIdle()
			shrd.WaitIdle()

			if plain.DocCount() != shrd.DocCount() || plain.Len() != shrd.Len() {
				t.Fatalf("DocCount/Len diverge: %d/%d vs %d/%d",
					plain.DocCount(), plain.Len(), shrd.DocCount(), shrd.Len())
			}
			for _, pat := range []string{"abra", "payload 1", "zzz"} {
				if a, b := plain.Count([]byte(pat)), shrd.Count([]byte(pat)); a != b {
					t.Fatalf("Count(%q) diverges: %d vs %d", pat, a, b)
				}
				a, b := plain.Find([]byte(pat)), shrd.Find([]byte(pat))
				if len(a) != len(b) {
					t.Fatalf("Find(%q) diverges: %d vs %d occurrences", pat, len(a), len(b))
				}
				seen := map[Occurrence]int{}
				for _, o := range a {
					seen[o]++
				}
				for _, o := range b {
					if seen[o] == 0 {
						t.Fatalf("Find(%q): sharded reported %v not in unsharded result", pat, o)
					}
					seen[o]--
				}
			}
			ids := shrd.DocIDs()
			sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
			want := plain.DocIDs()
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			if len(ids) != len(want) {
				t.Fatalf("DocIDs diverge: %v vs %v", ids, want)
			}
			for i := range ids {
				if ids[i] != want[i] {
					t.Fatalf("DocIDs diverge at %d: %v vs %v", i, ids, want)
				}
			}
			for _, id := range ids {
				pa, oka := plain.Extract(id, 0, 7)
				pb, okb := shrd.Extract(id, 0, 7)
				if oka != okb || !bytes.Equal(pa, pb) {
					t.Fatalf("Extract(%d) diverges: %q/%v vs %q/%v", id, pa, oka, pb, okb)
				}
				la, _ := plain.DocLen(id)
				lb, _ := shrd.DocLen(id)
				if la != lb {
					t.Fatalf("DocLen(%d) diverges: %d vs %d", id, la, lb)
				}
			}
		})
	}
}

// TestShardedBatchAtomicity checks that an invalid batch inserts nothing
// on any shard, even when the offending document lands on the last shard
// validated.
func TestShardedBatchAtomicity(t *testing.T) {
	c := mustCollection(t, WithSyncRebuilds(), WithShards(4))
	mustInsert(t, c, Document{ID: 7, Data: []byte("already here")})

	batch := []Document{
		{ID: 1, Data: []byte("one")},
		{ID: 2, Data: []byte("two")},
		{ID: 7, Data: []byte("collides with a live ID")},
	}
	if err := c.InsertBatch(batch); !errors.Is(err, ErrDuplicateID) {
		t.Fatalf("InsertBatch = %v, want ErrDuplicateID", err)
	}
	if c.Has(1) || c.Has(2) || c.DocCount() != 1 {
		t.Fatalf("failed batch left partial state: DocCount=%d", c.DocCount())
	}

	bad := []Document{
		{ID: 10, Data: []byte("fine")},
		{ID: 11, Data: []byte{'x', 0x00, 'y'}},
	}
	if err := c.InsertBatch(bad); !errors.Is(err, ErrReservedByte) {
		t.Fatalf("InsertBatch = %v, want ErrReservedByte", err)
	}
	if c.Has(10) || c.DocCount() != 1 {
		t.Fatal("reserved-byte batch left partial state")
	}

	dup := []Document{{ID: 20, Data: []byte("a")}, {ID: 20, Data: []byte("b")}}
	if err := c.InsertBatch(dup); !errors.Is(err, ErrDuplicateID) {
		t.Fatalf("in-batch duplicate = %v, want ErrDuplicateID", err)
	}
	if c.Has(20) {
		t.Fatal("in-batch duplicate partially inserted")
	}

	// A valid batch after the failures lands whole.
	if err := c.InsertBatch([]Document{{ID: 30, Data: []byte("ok")}, {ID: 31, Data: []byte("ok too")}}); err != nil {
		t.Fatal(err)
	}
	if !c.Has(30) || !c.Has(31) || c.DocCount() != 3 {
		t.Fatal("valid batch after failures did not land")
	}
}

// TestShardedFindIterBreak breaks out of the merged fan-out stream and
// checks that iteration terminates and the collection stays usable —
// i.e. every per-shard producer goroutine is told to stop.
func TestShardedFindIterBreak(t *testing.T) {
	c := mustCollection(t, WithSyncRebuilds(), WithShards(4))
	var batch []Document
	for i := uint64(1); i <= 64; i++ {
		batch = append(batch, Document{ID: i, Data: []byte("xyxyxyxyxy")})
	}
	if err := c.InsertBatch(batch); err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		n := 0
		for range c.FindIter([]byte("xy")) {
			n++
			if n == 3 {
				break
			}
		}
		if n != 3 {
			t.Fatalf("trial %d: early break visited %d", trial, n)
		}
	}
	// FindIter must not return while shard goroutines still read the
	// pattern: reusing the buffer right after a break is race-free.
	buf := []byte("xy")
	for range c.FindIter(buf) {
		break
	}
	buf[0], buf[1] = 'z', 'z'

	// After the breaks, writers must not be blocked on abandoned locks.
	if err := c.Insert(Document{ID: 1000, Data: []byte("post-break insert")}); err != nil {
		t.Fatal(err)
	}
	full := 0
	for range c.FindIter([]byte("xy")) {
		full++
	}
	if want := len(c.Find([]byte("xy"))); full != want {
		t.Fatalf("full iteration visited %d, Find returned %d", full, want)
	}
}

// TestShardedFindIterConsumerPanic panics out of a fan-out iteration
// with far more pending matches than the merge channel buffers; the
// producer goroutines must still be released (they hold shard read
// locks), or every later writer on those shards would block forever.
func TestShardedFindIterConsumerPanic(t *testing.T) {
	c := mustCollection(t, WithSyncRebuilds(), WithShards(4))
	var batch []Document
	for i := uint64(1); i <= 64; i++ {
		batch = append(batch, Document{ID: i, Data: bytes.Repeat([]byte("ab"), 50)})
	}
	if err := c.InsertBatch(batch); err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected the consumer panic to propagate")
			}
		}()
		for range c.FindIter([]byte("ab")) {
			panic("consumer dies mid-stream")
		}
	}()
	done := make(chan error, 1)
	go func() { done <- c.Insert(Document{ID: 999, Data: []byte("post-panic write")}) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Insert blocked after consumer panic — leaked producer holds a shard lock")
	}
}

// TestShardedCollectionConcurrentReadersWriters exercises the headline
// contract under -race: any number of goroutines may read while others
// insert and delete.
func TestShardedCollectionConcurrentReadersWriters(t *testing.T) {
	c := mustCollection(t, WithShards(4))
	var seed []Document
	for i := uint64(1); i <= 40; i++ {
		seed = append(seed, Document{ID: i, Data: []byte("steady state corpus abra")})
	}
	if err := c.InsertBatch(seed); err != nil {
		t.Fatal(err)
	}

	const writers, readers, perG = 4, 4, 50
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(1000 * (w + 1))
			for i := uint64(0); i < perG; i++ {
				id := base + i
				if err := c.Insert(Document{ID: id, Data: []byte("churning doc abra")}); err != nil {
					t.Errorf("writer %d: Insert(%d): %v", w, id, err)
					return
				}
				if i%2 == 0 {
					if err := c.Delete(id); err != nil {
						t.Errorf("writer %d: Delete(%d): %v", w, id, err)
						return
					}
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				if got := c.Count([]byte("abra")); got < 40 {
					t.Errorf("reader %d: Count = %d, below steady-state floor 40", r, got)
					return
				}
				n := 0
				for range c.FindIter([]byte("abra")) {
					if n++; n == 5 {
						break // break mid-fan-out while writers churn
					}
				}
				if _, ok := c.Extract(uint64(i%40)+1, 0, 6); !ok {
					t.Errorf("reader %d: Extract of steady doc failed", r)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	c.WaitIdle()

	// Steady-state docs survived; half the churned docs remain.
	want := 40 + writers*perG/2
	if got := c.DocCount(); got != want {
		t.Fatalf("DocCount = %d, want %d", got, want)
	}
}

// TestShardedParallelBatchIngest fires concurrent InsertBatch and
// DeleteBatch calls whose shard sets overlap; per-shard write locks must
// serialize them without deadlock or lost updates.
func TestShardedParallelBatchIngest(t *testing.T) {
	c := mustCollection(t, WithShards(3))
	const batches, perBatch = 8, 25
	var wg sync.WaitGroup
	for b := 0; b < batches; b++ {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			var docs []Document
			base := uint64(b * perBatch)
			for i := uint64(0); i < perBatch; i++ {
				docs = append(docs, Document{ID: base + i + 1, Data: []byte("bulk load payload")})
			}
			if err := c.InsertBatch(docs); err != nil {
				t.Errorf("batch %d: %v", b, err)
			}
		}(b)
	}
	wg.Wait()
	c.WaitIdle()
	if got := c.DocCount(); got != batches*perBatch {
		t.Fatalf("DocCount = %d, want %d", got, batches*perBatch)
	}

	// Concurrent deletions, overlapping queries.
	var wg2 sync.WaitGroup
	for b := 0; b < batches; b++ {
		wg2.Add(1)
		go func(b int) {
			defer wg2.Done()
			var ids []uint64
			base := uint64(b * perBatch)
			for i := uint64(0); i < perBatch; i += 2 {
				ids = append(ids, base+i+1)
			}
			if n := c.DeleteBatch(ids); n != len(ids) {
				t.Errorf("batch %d: DeleteBatch removed %d, want %d", b, n, len(ids))
			}
			_ = c.Count([]byte("bulk"))
		}(b)
	}
	wg2.Wait()
	c.WaitIdle()
	deletedPerBatch := (perBatch + 1) / 2 // even offsets 0,2,…,perBatch-1
	want := batches * (perBatch - deletedPerBatch)
	if got := c.DocCount(); got != want {
		t.Fatalf("after parallel DeleteBatch: DocCount = %d, want %d", got, want)
	}
}

// TestShardedRelationConcurrent exercises a sharded relation under
// concurrent mutation and fan-out queries.
func TestShardedRelationConcurrent(t *testing.T) {
	r, err := NewRelation(WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	for o := uint64(0); o < 32; o++ {
		if err := r.Add(o, o%5); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			base := uint64(100 * (g + 1))
			for i := uint64(0); i < 40; i++ {
				if err := r.Add(base+i, i%5); err != nil {
					t.Errorf("Add: %v", err)
					return
				}
				_ = r.Related(base+i, i%5)
				_ = r.CountObjects(i % 5) // fan-out under churn
				_ = r.Tau()               // shard-0 read racing its writers
				n := 0
				for range r.ObjectsIter(i % 5) {
					if n++; n == 3 {
						break
					}
				}
				if i%3 == 0 {
					if err := r.Delete(base+i, i%5); err != nil {
						t.Errorf("Delete: %v", err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	r.WaitIdle()

	// Objects keeps its sorted contract after the merge.
	objs := r.Objects(0)
	if !sort.SliceIsSorted(objs, func(i, j int) bool { return objs[i] < objs[j] }) {
		t.Fatalf("Objects(0) not sorted: %v", objs)
	}
	total := 0
	for range r.PairsIter() {
		total++
	}
	if total != r.Len() {
		t.Fatalf("PairsIter visited %d, Len = %d", total, r.Len())
	}
}

// TestShardedGraphConcurrent exercises a sharded graph: out-edge routed
// updates racing with fan-out in-edge queries.
func TestShardedGraphConcurrent(t *testing.T) {
	g, err := NewGraph(WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	for u := uint64(0); u < 16; u++ {
		if err := g.AddEdge(u, 999); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := uint64(100 * (w + 1))
			for i := uint64(0); i < 40; i++ {
				u := base + i
				if err := g.AddEdge(u, u+1); err != nil {
					t.Errorf("AddEdge: %v", err)
					return
				}
				_ = g.HasEdge(u, u+1)
				if got := g.InDegree(999); got < 16 {
					t.Errorf("InDegree(999) = %d under churn, want ≥ 16", got)
					return
				}
				n := 0
				for range g.Predecessors(999) {
					if n++; n == 4 {
						break
					}
				}
				if i%2 == 0 {
					if err := g.DeleteEdge(u, u+1); err != nil {
						t.Errorf("DeleteEdge: %v", err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	g.WaitIdle()

	pred := g.ReverseNeighbors(999)
	if len(pred) != 16 {
		t.Fatalf("ReverseNeighbors(999) = %d nodes, want 16", len(pred))
	}
	if !sort.SliceIsSorted(pred, func(i, j int) bool { return pred[i] < pred[j] }) {
		t.Fatalf("ReverseNeighbors not sorted: %v", pred)
	}
	want := 16 + 4*40/2
	if got := g.EdgeCount(); got != want {
		t.Fatalf("EdgeCount = %d, want %d", got, want)
	}
}

// TestShardedStats checks the aggregated Stats view.
func TestShardedStats(t *testing.T) {
	c := mustCollection(t, WithSyncRebuilds(), WithShards(4))
	var batch []Document
	totalSyms := 0
	for i := uint64(1); i <= 120; i++ {
		d := Document{ID: i, Data: []byte("stats corpus payload for sharded run")}
		totalSyms += len(d.Data)
		batch = append(batch, d)
	}
	if err := c.InsertBatch(batch); err != nil {
		t.Fatal(err)
	}
	c.WaitIdle()
	st := c.Stats()
	if st.Shards != 4 {
		t.Fatalf("Stats.Shards = %d, want 4", st.Shards)
	}
	if st.Levels < 1 || len(st.LevelSizes) != len(st.LevelCaps) {
		t.Fatalf("malformed aggregated stats: %+v", st)
	}
	// LevelSizes counts live symbols; docs may also sit in C0 or top
	// collections, so the ladder holds at most the inserted total.
	var live int
	for _, n := range st.LevelSizes {
		live += n
	}
	if live > totalSyms {
		t.Fatalf("aggregated level sizes sum to %d symbols, above the %d inserted", live, totalSyms)
	}
	if un := mustCollection(t, WithSyncRebuilds()); un.Stats().Shards != 0 {
		t.Fatal("unsharded Stats.Shards must be 0")
	}
}

// TestShardedWorstCaseBackground runs sharded collections with real
// background rebuilds (no WithSyncRebuilds) to cover the rebuild
// pipeline + facade locking interaction, then quiesces with WaitIdle.
func TestShardedWorstCaseBackground(t *testing.T) {
	c := mustCollection(t, WithShards(2))
	for i := uint64(1); i <= 80; i++ {
		mustInsert(t, c, Document{ID: i, Data: []byte("background rebuild fodder")})
	}
	c.WaitIdle()
	if got := c.Count([]byte("fodder")); got != 80 {
		t.Fatalf("Count = %d, want 80", got)
	}
}
