package dyncoll

// Native fuzz targets. `go test` exercises the seed corpus; run
// `go test -fuzz=FuzzCollectionOps` (etc.) for open-ended fuzzing.

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzCollectionOps interprets the input as a little op program over a
// collection and cross-checks Count against a naive scan after replay.
func FuzzCollectionOps(f *testing.F) {
	f.Add([]byte{1, 5, 2, 3, 1, 4, 9, 9, 0, 2, 7})
	f.Add([]byte{0, 0, 0, 0})
	f.Add(bytes.Repeat([]byte{3, 1, 2}, 40))
	f.Fuzz(func(t *testing.T, program []byte) {
		c, err := NewCollection(WithSyncRebuilds(), WithSampleRate(3))
		if err != nil {
			t.Fatal(err)
		}
		docs := map[uint64][]byte{}
		var nextID uint64 = 1
		i := 0
		next := func() byte {
			if i >= len(program) {
				return 0
			}
			b := program[i]
			i++
			return b
		}
		for i < len(program) && nextID < 40 {
			op := next()
			switch op % 3 {
			case 0, 1: // insert a doc whose length and content derive from the program
				n := int(next())%24 + 1
				data := make([]byte, n)
				for j := range data {
					data[j] = next()%4 + 1
				}
				if err := c.Insert(Document{ID: nextID, Data: data}); err != nil {
					t.Fatalf("Insert(%d): %v", nextID, err)
				}
				docs[nextID] = data
				nextID++
			case 2: // delete some id (may be absent)
				id := uint64(next()) % (nextID + 1)
				_, present := docs[id]
				err := c.Delete(id)
				if present && err != nil {
					t.Fatalf("Delete(%d) of live doc: %v", id, err)
				}
				if !present && !errors.Is(err, ErrNotFound) {
					t.Fatalf("Delete(%d) of missing doc: got %v, want ErrNotFound", id, err)
				}
				delete(docs, id)
			}
		}
		// Verify with a derived pattern.
		p := []byte{next()%4 + 1, next()%4 + 1}
		want := 0
		for _, d := range docs {
			for off := 0; off+len(p) <= len(d); off++ {
				if bytes.Equal(d[off:off+len(p)], p) {
					want++
				}
			}
		}
		if got := c.Count(p); got != want {
			t.Fatalf("Count(%v) = %d, want %d", p, got, want)
		}
	})
}

// FuzzRelationOps replays (object, label, op) triples against a map
// model.
func FuzzRelationOps(f *testing.F) {
	f.Add([]byte{1, 2, 0, 1, 2, 1, 3, 4, 0})
	f.Add(bytes.Repeat([]byte{5, 6, 0}, 30))
	f.Fuzz(func(t *testing.T, program []byte) {
		r, err := NewRelation(WithMinCapacity(8))
		if err != nil {
			t.Fatal(err)
		}
		model := map[[2]uint64]bool{}
		for i := 0; i+2 < len(program); i += 3 {
			o := uint64(program[i]) % 16
			l := uint64(program[i+1]) % 16
			k := [2]uint64{o, l}
			if program[i+2]%2 == 0 {
				err := r.Add(o, l)
				if model[k] && !errors.Is(err, ErrDuplicatePair) {
					t.Fatalf("Add(%d,%d) of present pair: got %v", o, l, err)
				}
				if !model[k] && err != nil {
					t.Fatalf("Add(%d,%d) of fresh pair: %v", o, l, err)
				}
				model[k] = true
			} else {
				err := r.Delete(o, l)
				if model[k] && err != nil {
					t.Fatalf("Delete(%d,%d) of present pair: %v", o, l, err)
				}
				if !model[k] && !errors.Is(err, ErrNotFound) {
					t.Fatalf("Delete(%d,%d) of missing pair: got %v", o, l, err)
				}
				delete(model, k)
			}
		}
		if r.Len() != len(model) {
			t.Fatalf("Len = %d, want %d", r.Len(), len(model))
		}
		for k := range model {
			if !r.Related(k[0], k[1]) {
				t.Fatalf("pair %v lost", k)
			}
		}
	})
}

// FuzzSnapshotRoundTrip interprets the input as an op program over a
// collection and a relation, snapshots both, reloads them, and checks
// the loaded structures answer identical queries. It then flips one
// input-derived byte of each snapshot and checks Load never panics on
// the mutation (it may error with ErrBadSnapshot or decode an
// equivalent structure when the byte was don't-care).
func FuzzSnapshotRoundTrip(f *testing.F) {
	f.Add([]byte{1, 5, 2, 3, 1, 4, 9, 9, 0, 2, 7}, uint8(3))
	f.Add(bytes.Repeat([]byte{3, 1, 2, 9}, 30), uint8(200))
	f.Add([]byte{0}, uint8(0))
	f.Fuzz(func(t *testing.T, program []byte, mutByte uint8) {
		c, err := NewCollection(WithSyncRebuilds(), WithMinCapacity(16), WithSampleRate(3))
		if err != nil {
			t.Fatal(err)
		}
		r, err := NewRelation(WithMinCapacity(8))
		if err != nil {
			t.Fatal(err)
		}
		var nextID uint64 = 1
		i := 0
		next := func() byte {
			if i >= len(program) {
				return 0
			}
			b := program[i]
			i++
			return b
		}
		for i < len(program) && nextID < 60 {
			switch op := next(); op % 4 {
			case 0, 1:
				n := int(next())%24 + 1
				data := make([]byte, n)
				for j := range data {
					data[j] = next()%4 + 1
				}
				if err := c.Insert(Document{ID: nextID, Data: data}); err != nil {
					t.Fatalf("Insert(%d): %v", nextID, err)
				}
				nextID++
			case 2:
				_ = c.Delete(uint64(next()) % (nextID + 1))
			case 3:
				o, l := uint64(next())%16, uint64(next())%16
				if next()%2 == 0 {
					_ = r.Add(o, l)
				} else {
					_ = r.Delete(o, l)
				}
			}
		}
		c.WaitIdle()

		var cbuf, rbuf bytes.Buffer
		if err := c.Save(&cbuf); err != nil {
			t.Fatalf("collection Save: %v", err)
		}
		if err := r.Save(&rbuf); err != nil {
			t.Fatalf("relation Save: %v", err)
		}

		lc, _ := NewCollection()
		if err := lc.Load(bytes.NewReader(cbuf.Bytes())); err != nil {
			t.Fatalf("collection Load: %v", err)
		}
		p := []byte{next()%4 + 1, next()%4 + 1}
		if got, want := lc.Count(p), c.Count(p); got != want {
			t.Fatalf("loaded Count(%v) = %d, want %d", p, got, want)
		}
		if got, want := len(lc.Find(p[:1])), len(c.Find(p[:1])); got != want {
			t.Fatalf("loaded Find = %d occs, want %d", got, want)
		}
		if lc.DocCount() != c.DocCount() || lc.Len() != c.Len() {
			t.Fatalf("loaded shape %d/%d, want %d/%d", lc.DocCount(), lc.Len(), c.DocCount(), c.Len())
		}
		lr, _ := NewRelation()
		if err := lr.Load(bytes.NewReader(rbuf.Bytes())); err != nil {
			t.Fatalf("relation Load: %v", err)
		}
		if lr.Len() != r.Len() {
			t.Fatalf("loaded relation Len = %d, want %d", lr.Len(), r.Len())
		}
		for o := uint64(0); o < 16; o++ {
			if lr.CountLabels(o) != r.CountLabels(o) {
				t.Fatalf("loaded CountLabels(%d) diverges", o)
			}
		}

		// Mutations must never panic.
		for _, data := range [][]byte{cbuf.Bytes(), rbuf.Bytes()} {
			if len(data) == 0 {
				continue
			}
			mut := append([]byte(nil), data...)
			pos := (int(mutByte)*131 + len(program)) % len(mut)
			mut[pos] ^= 1 << (mutByte % 8)
			mc, _ := NewCollection()
			_ = mc.Load(bytes.NewReader(mut))
			mr, _ := NewRelation()
			_ = mr.Load(bytes.NewReader(mut))
		}
	})
}

// FuzzPatternSearch builds one document from the input and checks every
// substring of it is found at the right offsets.
func FuzzPatternSearch(f *testing.F) {
	f.Add([]byte("abracadabra"), uint8(2), uint8(3))
	f.Add([]byte{1, 1, 1, 1, 1, 1}, uint8(0), uint8(4))
	f.Fuzz(func(t *testing.T, raw []byte, offRaw, lenRaw uint8) {
		if len(raw) == 0 || len(raw) > 500 {
			return
		}
		data := make([]byte, len(raw))
		for i, b := range raw {
			data[i] = b%7 + 1
		}
		c, err := NewCollection(WithSyncRebuilds())
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Insert(Document{ID: 1, Data: data}); err != nil {
			t.Fatal(err)
		}
		off := int(offRaw) % len(data)
		l := int(lenRaw)%8 + 1
		if off+l > len(data) {
			l = len(data) - off
		}
		if l == 0 {
			return
		}
		p := data[off : off+l]
		occs := c.Find(p)
		found := false
		for _, o := range occs {
			if o.DocID != 1 || o.Off < 0 || o.Off+l > len(data) {
				t.Fatalf("bad occurrence %+v", o)
			}
			if !bytes.Equal(data[o.Off:o.Off+l], p) {
				t.Fatalf("occurrence at %d does not match", o.Off)
			}
			if o.Off == off {
				found = true
			}
		}
		if !found {
			t.Fatalf("planted occurrence at %d missing", off)
		}
	})
}
