package dyncoll

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"slices"
	"testing"

	"dyncoll/internal/snap"
)

// saveMapped writes c's v2 snapshot into a fresh temp dir and returns
// the path.
func saveMapped(t *testing.T, save func(path string) error) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "v2.snap")
	if err := save(path); err != nil {
		t.Fatalf("SaveMappedFile: %v", err)
	}
	return path
}

// TestMappedCollectionMatrix is the mapped acceptance matrix: every
// transformation × sharding × index must answer byte-identically
// between the heap-built original and a mapped open of its v2
// snapshot — including after further mutations, since a mapped
// structure stays fully dynamic. The custom registry index exercises
// the raw-items fallback (no mapped layout → rebuild at open).
func TestMappedCollectionMatrix(t *testing.T) {
	registerSnapTestIndex()
	for _, tr := range []Transformation{Amortized, WorstCase} {
		for _, shards := range []int{0, 4} {
			for _, index := range []string{IndexFM, IndexSA, IndexCSA, "snap-suffix-table"} {
				name := fmt.Sprintf("tr%d/shards%d/%s", tr, shards, index)
				t.Run(name, func(t *testing.T) {
					opts := []Option{
						WithTransformation(tr),
						WithIndex(index),
						WithSyncRebuilds(),
						WithMinCapacity(16),
					}
					if shards > 0 {
						opts = append(opts, WithShards(shards))
					}
					c := mustCollection(t, opts...)
					snapCollectionCorpus(t, c)
					c.WaitIdle()

					path := saveMapped(t, c.SaveMappedFile)
					m, err := OpenMappedCollection(path, MappedVerify())
					if err != nil {
						t.Fatalf("OpenMappedCollection: %v", err)
					}
					defer m.Close()
					collectionsEqual(t, name, c, m)
					if got := m.Stats().Shards; got != shards {
						t.Fatalf("mapped shards = %d, want %d", got, shards)
					}

					// Identical mutations on both sides must keep the answers
					// identical: C0 and rebuilds run in heap either way.
					for _, cc := range []*Collection{c, m} {
						if err := cc.Insert(Document{ID: 1000, Data: []byte("post-open abracadabra")}); err != nil {
							t.Fatalf("post-open Insert: %v", err)
						}
						if err := cc.Delete(21); err != nil {
							t.Fatalf("post-open Delete: %v", err)
						}
					}
					collectionsEqual(t, name+"/mutated", c, m)
				})
			}
		}
	}
}

// relationsEqual compares query answers between two relations over the
// snapRelationCorpus key space.
func relationsEqual(t *testing.T, label string, a, b *Relation) {
	t.Helper()
	a.WaitIdle()
	b.WaitIdle()
	if a.Len() != b.Len() {
		t.Fatalf("%s: Len = %d, want %d", label, b.Len(), a.Len())
	}
	for o := uint64(1); o <= 41; o++ {
		if !slices.Equal(a.Labels(o), b.Labels(o)) {
			t.Fatalf("%s: Labels(%d) diverge", label, o)
		}
		if a.CountLabels(o) != b.CountLabels(o) {
			t.Fatalf("%s: CountLabels(%d) diverges", label, o)
		}
	}
	for l := uint64(1); l <= 8; l++ {
		if !slices.Equal(a.Objects(l), b.Objects(l)) {
			t.Fatalf("%s: Objects(%d) diverge", label, l)
		}
		if a.CountObjects(l) != b.CountObjects(l) {
			t.Fatalf("%s: CountObjects(%d) diverges", label, l)
		}
	}
	for o := uint64(1); o <= 40; o++ {
		if a.Related(o, 1) != b.Related(o, 1) {
			t.Fatalf("%s: Related(%d,1) diverges", label, o)
		}
	}
}

// TestMappedRelationMatrix covers Relation × transformation × sharding
// through the mapped path, with post-open mutations.
func TestMappedRelationMatrix(t *testing.T) {
	for _, tr := range []Transformation{Amortized, WorstCase} {
		for _, shards := range []int{0, 4} {
			t.Run(fmt.Sprintf("tr%d/shards%d", tr, shards), func(t *testing.T) {
				opts := []Option{WithTransformation(tr), WithSyncRebuilds(), WithMinCapacity(16)}
				if shards > 0 {
					opts = append(opts, WithShards(shards))
				}
				r, err := NewRelation(opts...)
				if err != nil {
					t.Fatal(err)
				}
				snapRelationCorpus(t, r.Add, r.Delete)
				r.WaitIdle()

				path := saveMapped(t, r.SaveMappedFile)
				m, err := OpenMappedRelation(path, MappedVerify())
				if err != nil {
					t.Fatalf("OpenMappedRelation: %v", err)
				}
				defer m.Close()
				relationsEqual(t, "mapped", r, m)

				for _, rr := range []*Relation{r, m} {
					if err := rr.Add(999, 7); err != nil {
						t.Fatalf("post-open Add: %v", err)
					}
					if err := rr.Delete(1, 101); err != nil {
						t.Fatalf("post-open Delete: %v", err)
					}
				}
				relationsEqual(t, "mapped/mutated", r, m)
			})
		}
	}
}

// graphsEqual compares query answers between two graphs over the
// snapRelationCorpus key space.
func graphsEqual(t *testing.T, label string, a, b *Graph) {
	t.Helper()
	a.WaitIdle()
	b.WaitIdle()
	if a.EdgeCount() != b.EdgeCount() {
		t.Fatalf("%s: EdgeCount = %d, want %d", label, b.EdgeCount(), a.EdgeCount())
	}
	for u := uint64(1); u <= 41; u++ {
		if !slices.Equal(a.Neighbors(u), b.Neighbors(u)) {
			t.Fatalf("%s: Neighbors(%d) diverge", label, u)
		}
		if a.OutDegree(u) != b.OutDegree(u) {
			t.Fatalf("%s: OutDegree(%d) diverges", label, u)
		}
	}
	for v := uint64(1); v <= 8; v++ {
		if !slices.Equal(a.ReverseNeighbors(v), b.ReverseNeighbors(v)) {
			t.Fatalf("%s: ReverseNeighbors(%d) diverge", label, v)
		}
		if a.InDegree(v) != b.InDegree(v) {
			t.Fatalf("%s: InDegree(%d) diverges", label, v)
		}
	}
}

// TestMappedGraphMatrix covers Graph × transformation × sharding
// through the mapped path, with post-open mutations.
func TestMappedGraphMatrix(t *testing.T) {
	for _, tr := range []Transformation{Amortized, WorstCase} {
		for _, shards := range []int{0, 4} {
			t.Run(fmt.Sprintf("tr%d/shards%d", tr, shards), func(t *testing.T) {
				opts := []Option{WithTransformation(tr), WithSyncRebuilds(), WithMinCapacity(16)}
				if shards > 0 {
					opts = append(opts, WithShards(shards))
				}
				g, err := NewGraph(opts...)
				if err != nil {
					t.Fatal(err)
				}
				snapRelationCorpus(t, g.AddEdge, g.DeleteEdge)
				g.WaitIdle()

				path := saveMapped(t, g.SaveMappedFile)
				m, err := OpenMappedGraph(path, MappedVerify())
				if err != nil {
					t.Fatalf("OpenMappedGraph: %v", err)
				}
				defer m.Close()
				graphsEqual(t, "mapped", g, m)

				for _, gg := range []*Graph{g, m} {
					if err := gg.AddEdge(999, 998); err != nil {
						t.Fatalf("post-open AddEdge: %v", err)
					}
					if err := gg.DeleteEdge(1, 101); err != nil {
						t.Fatalf("post-open DeleteEdge: %v", err)
					}
				}
				graphsEqual(t, "mapped/mutated", g, m)
			})
		}
	}
}

// TestMappedStatsResidency pins the Stats residency split: zero for
// never-mapped structures, positive MappedBytes after a mapped open,
// and back to zero (with the structure empty but usable) after Close.
func TestMappedStatsResidency(t *testing.T) {
	c := mustCollection(t, WithSyncRebuilds(), WithMinCapacity(16))
	snapCollectionCorpus(t, c)
	c.WaitIdle()
	if st := c.Stats(); st.MappedBytes != 0 {
		t.Fatalf("heap-built MappedBytes = %d, want 0", st.MappedBytes)
	}

	path := saveMapped(t, c.SaveMappedFile)
	m, err := OpenMappedCollection(path)
	if err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.MappedBytes <= 0 {
		t.Fatalf("mapped open MappedBytes = %d, want > 0", st.MappedBytes)
	}
	if st.HeapBytes < 0 {
		t.Fatalf("HeapBytes = %d, want ≥ 0", st.HeapBytes)
	}

	// Heap Load of the same structure reports no mapped residency.
	heap := mustCollection(t)
	v1 := filepath.Join(t.TempDir(), "v1.snap")
	if err := c.SaveFile(v1); err != nil {
		t.Fatal(err)
	}
	if err := heap.LoadFile(v1); err != nil {
		t.Fatal(err)
	}
	if st := heap.Stats(); st.MappedBytes != 0 {
		t.Fatalf("heap-loaded MappedBytes = %d, want 0", st.MappedBytes)
	}

	if err := m.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if st := m.Stats(); st.MappedBytes != 0 {
		t.Fatalf("post-Close MappedBytes = %d, want 0", st.MappedBytes)
	}
	if m.DocCount() != 0 {
		t.Fatalf("post-Close DocCount = %d, want 0 (fresh empty impl)", m.DocCount())
	}
	if err := m.Insert(Document{ID: 1, Data: []byte("post close")}); err != nil {
		t.Fatalf("post-Close Insert: %v", err)
	}
	if err := m.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestMappedFormatsDistinct checks the two snapshot formats reject each
// other: v1 Load must not accept a v2 container and vice versa.
func TestMappedFormatsDistinct(t *testing.T) {
	c := mustCollection(t, WithSyncRebuilds(), WithMinCapacity(16))
	snapCollectionCorpus(t, c)
	c.WaitIdle()
	dir := t.TempDir()
	v1, v2 := filepath.Join(dir, "v1.snap"), filepath.Join(dir, "v2.snap")
	if err := c.SaveFile(v1); err != nil {
		t.Fatal(err)
	}
	if err := c.SaveMappedFile(v2); err != nil {
		t.Fatal(err)
	}
	if err := mustCollection(t).LoadFile(v2); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("v1 Load of a v2 file: got %v, want ErrBadSnapshot", err)
	}
	if err := mustCollection(t).LoadMappedFile(v1); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("mapped open of a v1 file: got %v, want ErrBadSnapshot", err)
	}
}

// TestMappedUnknownIndex builds a v2 container whose header names an
// unregistered index: the open must fail with ErrUnknownIndex and leave
// the receiver untouched.
func TestMappedUnknownIndex(t *testing.T) {
	cfg := mustCollection(t).cfg
	cfg.index = "no-such-index!"
	he := &snap.Encoder{}
	encodeHeader(he, cfg)
	w := snap.NewV2Writer()
	w.Add(snap.SecHeader, 0, 0, he.Bytes())
	w.Add(snap.SecSpine, 0, 0, nil)
	path := filepath.Join(t.TempDir(), "unknown.v2")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.WriteTo(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	loaded := mustCollection(t, WithSyncRebuilds())
	mustInsert(t, loaded, Document{ID: 7, Data: []byte("untouched")})
	if err := loaded.LoadMappedFile(path); !errors.Is(err, ErrUnknownIndex) {
		t.Fatalf("mapped open with unregistered index: got %v, want ErrUnknownIndex", err)
	}
	if loaded.Count([]byte("untouched")) != 1 {
		t.Fatal("failed mapped open modified the receiver")
	}
}

// TestMappedCorruptInput truncates and bit-flips v2 containers for all
// three structures: the open must fail typed (never panic) on
// truncation, and with MappedVerify a flipped byte must either be
// caught or land in don't-care padding.
func TestMappedCorruptInput(t *testing.T) {
	c := mustCollection(t, WithSyncRebuilds(), WithMinCapacity(16))
	snapCollectionCorpus(t, c)
	c.WaitIdle()
	r, _ := NewRelation(WithMinCapacity(16))
	snapRelationCorpus(t, r.Add, r.Delete)
	g, _ := NewGraph(WithMinCapacity(16))
	snapRelationCorpus(t, g.AddEdge, g.DeleteEdge)

	read := func(save func(string) error) []byte {
		path := saveMapped(t, save)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	bytesFor := map[string][]byte{
		"collection": read(c.SaveMappedFile),
		"relation":   read(r.SaveMappedFile),
		"graph":      read(g.SaveMappedFile),
	}
	load := map[string]func(data []byte, opts ...MappedOption) error{
		"collection": func(data []byte, opts ...MappedOption) error {
			fresh := mustCollection(t)
			return fresh.loadMapped(data, &mappedFile{}, opts...)
		},
		"relation": func(data []byte, opts ...MappedOption) error {
			fresh, _ := NewRelation()
			return fresh.loadMapped(data, &mappedFile{}, opts...)
		},
		"graph": func(data []byte, opts ...MappedOption) error {
			fresh, _ := NewGraph()
			return fresh.loadMapped(data, &mappedFile{}, opts...)
		},
	}
	for name, data := range bytesFor {
		// Truncations must always error, never panic.
		step := len(data)/61 + 1
		for cut := 0; cut < len(data); cut += step {
			if err := load[name](data[:cut]); !errors.Is(err, ErrBadSnapshot) {
				t.Fatalf("%s truncated at %d: got %v, want ErrBadSnapshot", name, cut, err)
			}
		}
		// Byte flips under MappedVerify: caught by a section CRC, a
		// structural check, or flipped in alignment padding no section
		// references (a successful open of such a flip is correct).
		step = len(data)/197 + 1
		for pos := 0; pos < len(data); pos += step {
			mut := append([]byte(nil), data...)
			mut[pos] ^= 0xa5
			err := load[name](mut, MappedVerify())
			if err != nil && !errors.Is(err, ErrBadSnapshot) && !errors.Is(err, ErrUnknownIndex) {
				t.Fatalf("%s flip at %d: untyped error %v", name, pos, err)
			}
		}
		// Wrong kind must fail typed.
		other := map[string]string{"collection": "relation", "relation": "graph", "graph": "collection"}[name]
		if err := load[name](bytesFor[other]); !errors.Is(err, ErrBadSnapshot) {
			t.Fatalf("%s loading a %s container: got %v, want ErrBadSnapshot", name, other, err)
		}
	}

	// The file-based path reports truncation the same way.
	trunc := filepath.Join(t.TempDir(), "trunc.v2")
	if err := os.WriteFile(trunc, bytesFor["collection"][:len(bytesFor["collection"])/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if err := mustCollection(t).LoadMappedFile(trunc); !errors.Is(err, ErrBadSnapshot) {
		t.Fatalf("file truncation: got %v, want ErrBadSnapshot", err)
	}
}

// FuzzMappedOpen feeds arbitrary bytes to the v2 open path of all three
// structures: open must never panic and must fail with ErrBadSnapshot
// or ErrUnknownIndex when it fails.
func FuzzMappedOpen(f *testing.F) {
	c, err := NewCollection(WithSyncRebuilds(), WithMinCapacity(16))
	if err != nil {
		f.Fatal(err)
	}
	for i := uint64(1); i <= 20; i++ {
		if err := c.Insert(Document{ID: i, Data: []byte(fmt.Sprintf("fuzz seed doc %d abra", i))}); err != nil {
			f.Fatal(err)
		}
	}
	_ = c.Delete(3)
	c.WaitIdle()
	r, _ := NewRelation(WithMinCapacity(8))
	for o := uint64(1); o <= 12; o++ {
		_ = r.Add(o, o%5)
	}
	dir := f.TempDir()
	for name, save := range map[string]func(string) error{
		"coll.v2": c.SaveMappedFile,
		"rel.v2":  r.SaveMappedFile,
	} {
		path := filepath.Join(dir, name)
		if err := save(path); err != nil {
			f.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data, 0)
		f.Add(data, 101)
		f.Add(data[:len(data)/2], 0)
	}
	f.Add([]byte("dsn2 but far too short"), 7)

	f.Fuzz(func(t *testing.T, data []byte, flip int) {
		if flip != 0 && len(data) > 0 {
			mut := append([]byte(nil), data...)
			mut[(flip%len(mut)+len(mut))%len(mut)] ^= byte(flip)
			data = mut
		}
		check := func(what string, err error) {
			if err != nil && !errors.Is(err, ErrBadSnapshot) && !errors.Is(err, ErrUnknownIndex) {
				t.Fatalf("%s: untyped error %v", what, err)
			}
		}
		fc, _ := NewCollection()
		check("collection", fc.loadMapped(data, &mappedFile{}))
		fr, _ := NewRelation()
		check("relation", fr.loadMapped(data, &mappedFile{}))
		fg, _ := NewGraph()
		check("graph", fg.loadMapped(data, &mappedFile{}))
	})
}
