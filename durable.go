package dyncoll

import (
	"errors"
	"fmt"
	"hash/crc32"
	"path/filepath"
	"sync"
	"time"

	"dyncoll/internal/core"
	"dyncoll/internal/snap"
	"dyncoll/internal/wal"
)

// Durable structures: the same Collection/Relation/Graph facades with
// a write-ahead log and incremental checkpoints underneath, so a
// process killed at any instant — kill -9, power loss — reopens to
// exactly the operations it acknowledged. Every mutation is applied
// in memory, appended to the WAL, and acknowledged only after an fsync
// covers its record; group commit batches the fsyncs of concurrent
// writers. Checkpoints bound recovery time: reopening replays the
// newest checkpoint plus only the WAL tail written after it.
//
// The concurrency contract matches the underlying structure: durable
// wrappers built WithShards(p) are safe for concurrent readers and
// writers (mutations additionally serialize on the WAL, which is what
// makes "log order = apply order" hold); unsharded wrappers allow
// concurrent mutators but reads must not race them, exactly as for the
// plain facades.

// ErrClosed reports an operation on a closed durable structure.
var ErrClosed = errors.New("dyncoll: durable structure closed")

// defaultCheckpointEvery is the WAL-tail size that triggers an
// automatic incremental checkpoint when WALOptions.CheckpointEvery is
// zero.
const defaultCheckpointEvery = 64 << 20

// WALOptions configures durability for the OpenDurable constructors.
// The zero value is ready to use: per-commit fsync, automatic
// checkpoints every 64 MiB of WAL, the real filesystem.
type WALOptions struct {
	// SyncWindow is the group-commit batching window: an acknowledgment
	// may be delayed up to this long so concurrent writers share one
	// fsync. Zero syncs as soon as possible — still batching whatever
	// accumulated while the previous fsync was in flight.
	SyncWindow time.Duration
	// CheckpointEvery is the WAL-tail byte size that triggers an
	// automatic incremental checkpoint after a mutation. Zero means the
	// 64 MiB default; a negative value disables automatic checkpoints
	// (call Checkpoint explicitly).
	CheckpointEvery int64
	// FS overrides the filesystem — the fault-injection and fuzzing
	// seam. Nil means the real filesystem.
	FS wal.FS
}

// RecoveryStats describes what the last OpenDurable call did.
type RecoveryStats struct {
	// CheckpointLoaded reports that a checkpoint was restored (false
	// means the structure was rebuilt from the WAL alone).
	CheckpointLoaded bool
	// WALFiles and WALRecords count the WAL tail replayed on top.
	WALFiles   int
	WALRecords int
	// WALBytes is the replayed tail's size.
	WALBytes int64
	// TornTailTruncated reports that the newest WAL file ended in a
	// partially-written record (the signature of a crash mid-append)
	// that was truncated away.
	TornTailTruncated bool
	// Duration is the total open time: checkpoint restore plus replay.
	Duration time.Duration
}

// durable is the kind-independent durability core shared by the three
// facades: the WAL, the current checkpoint's segment directory, and
// the mutation mutex that makes log order equal apply order.
type durable struct {
	fs      wal.FS
	dir     string
	log     *wal.Log
	ckEvery int64

	// mu serializes mutations (apply + append) and checkpoints. It is
	// NOT held while waiting for the fsync — that is what lets
	// concurrent writers group-commit.
	mu     sync.Mutex
	closed bool
	ckSeq  uint64
	segs   []map[uint64]segMeta // per shard: gen → current checkpoint segment
	rec    RecoveryStats

	cfg     func() config
	dumpAll func(reuse func(shard, level int, gen uint64, dead int) bool) ([][]byte, [][]snap.Section, error)
}

// collSectImpl is implemented by the unsharded collection cores.
type collSectImpl interface {
	DumpSections(fastPath bool, reuse func(level int, gen uint64, dead int) bool) ([]byte, []snap.Section)
	RestoreSections(spine []byte, secs []snap.Section, decode core.IndexDecoder) error
}

// relSectImpl is implemented by the unsharded relation and graph cores.
type relSectImpl interface {
	DumpSections(reuse func(level int, gen uint64, dead int) bool) ([]byte, []snap.Section)
	RestoreSections(spine []byte, secs []snap.Section) error
}

// recoveredCkpt is a checkpoint loaded and verified from disk.
type recoveredCkpt struct {
	cfg    config
	seq    uint64
	spines [][]byte
	secs   [][]snap.Section
	metas  [][]segMeta
}

// openRecoveryPoint reads the manifest and, if it names a checkpoint,
// loads and CRC-verifies the spine and every segment. A nil
// recoveredCkpt with nil error means "no checkpoint" (fresh directory
// or WAL-only); corruption anywhere fails with ErrBadSnapshot.
func openRecoveryPoint(fs wal.FS, dir string, kind structKind) (wal.Manifest, *recoveredCkpt, error) {
	if err := fs.MkdirAll(dir, 0o755); err != nil {
		return wal.Manifest{}, nil, err
	}
	man, ok, err := wal.ReadManifest(fs, dir)
	if err != nil || !ok || man.Checkpoint == "" {
		return man, nil, err
	}
	data, err := fs.ReadFile(filepath.Join(dir, man.Checkpoint))
	if err != nil {
		return man, nil, snap.Corruptf("checkpoint spine %s: %v", man.Checkpoint, err)
	}
	if crc32.Checksum(data, ckptCRC) != man.CheckpointCRC {
		return man, nil, snap.Corruptf("checkpoint spine %s: checksum mismatch", man.Checkpoint)
	}
	cfg, seq, spines, metas, err := decodeCkptSpine(data, kind)
	if err != nil {
		return man, nil, err
	}
	ck := &recoveredCkpt{cfg: cfg, seq: seq, spines: spines, metas: metas}
	ck.secs = make([][]snap.Section, len(metas))
	for i, ss := range metas {
		for _, m := range ss {
			b, err := readSegment(fs, dir, m)
			if err != nil {
				return man, nil, err
			}
			ck.secs[i] = append(ck.secs[i], snap.Section{Level: m.level, Gen: m.gen, Dead: m.dead, Bytes: b})
		}
	}
	return man, ck, nil
}

// newDurable opens the WAL for appending and assembles the durability
// core; the caller has already restored the checkpoint and replayed
// the tail.
func newDurable(fsi wal.FS, dir string, wopts WALOptions, man wal.Manifest, ck *recoveredCkpt, st wal.ReplayStats, dur time.Duration) (*durable, error) {
	log, err := wal.Open(dir, man.WALStart, wal.Options{SyncWindow: wopts.SyncWindow, FS: fsi})
	if err != nil {
		return nil, err
	}
	ckEvery := wopts.CheckpointEvery
	switch {
	case ckEvery == 0:
		ckEvery = defaultCheckpointEvery
	case ckEvery < 0:
		ckEvery = 0
	}
	d := &durable{fs: fsi, dir: dir, log: log, ckEvery: ckEvery, ckSeq: 1}
	if ck != nil {
		d.ckSeq = ck.seq + 1
		d.segs = segMaps(ck.metas)
	}
	d.rec = RecoveryStats{
		CheckpointLoaded:  ck != nil,
		WALFiles:          st.Files,
		WALRecords:        st.Records,
		WALBytes:          st.Bytes,
		TornTailTruncated: st.TornTail,
		Duration:          dur,
	}
	return d, nil
}

// commitUnlock appends the already-applied mutation's record, releases
// the mutation mutex, waits for durability and runs the
// auto-checkpoint check. The caller holds d.mu; only after this
// returns nil may the mutation be acknowledged.
func (d *durable) commitUnlock(payload []byte) error {
	lsn, err := d.log.Append(payload)
	d.mu.Unlock()
	if err != nil {
		return err
	}
	if err := d.log.Commit(lsn); err != nil {
		return err
	}
	return d.maybeCheckpoint()
}

// maybeCheckpoint runs an incremental checkpoint when the WAL tail has
// outgrown the configured threshold.
func (d *durable) maybeCheckpoint() error {
	if d.ckEvery <= 0 {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed || d.log.Size() < d.ckEvery {
		return nil
	}
	return d.checkpointLocked()
}

func (d *durable) checkpoint() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.checkpointLocked()
}

func (d *durable) close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	d.closed = true
	return d.log.Close()
}

// segReuse is the predicate checkpointLocked hands to dumpAll: a
// section is reusable when the current checkpoint already holds a
// segment for the same store (generation) at the same slot with the
// same dead weight.
func (d *durable) segReuse(shard, level int, gen uint64, dead int) bool {
	if gen == 0 || shard >= len(d.segs) || d.segs[shard] == nil {
		return false
	}
	m, ok := d.segs[shard][gen]
	return ok && m.level == level && m.dead == dead
}

// --- DurableCollection ---

// DurableCollection is a Collection whose mutations survive kill -9.
// Reads and stats come from the embedded Collection; mutations go
// through the WAL. See the package section above for the concurrency
// contract.
type DurableCollection struct {
	*Collection
	d *durable
}

// OpenDurableCollection opens (or creates) the durable collection
// stored in dir: the newest checkpoint is restored, the WAL tail
// replayed — truncating a torn final record — and the WAL reopened for
// appending. On first open the options configure the new collection;
// on reopen the stored configuration wins, exactly like LoadFile.
// Corrupt files fail with ErrBadSnapshot and never panic.
func OpenDurableCollection(dir string, wopts WALOptions, opts ...Option) (dc *DurableCollection, err error) {
	defer guard(&err)
	start := time.Now()
	fsi := wopts.FS
	if fsi == nil {
		fsi = wal.OS
	}
	man, ck, err := openRecoveryPoint(fsi, dir, kindCollection)
	if err != nil {
		return nil, err
	}
	var coll *Collection
	if ck != nil {
		if _, err := lookupIndex(ck.cfg.index); err != nil {
			return nil, err
		}
		decode := lookupDecoder(ck.cfg.index)
		impl, err := newCollAnyImpl(ck.cfg)
		if err != nil {
			return nil, err
		}
		if sh, ok := impl.(*shardedColl); ok {
			if err := parallelShards(len(sh.shards), func(i int) (err error) {
				defer guard(&err)
				si, ok := sh.shards[i].impl.(collSectImpl)
				if !ok {
					return fmt.Errorf("dyncoll: collection shard does not support checkpoints")
				}
				return si.RestoreSections(ck.spines[i], ck.secs[i], decode)
			}); err != nil {
				return nil, err
			}
		} else {
			si, ok := impl.(collSectImpl)
			if !ok {
				return nil, fmt.Errorf("dyncoll: collection does not support checkpoints")
			}
			if err := si.RestoreSections(ck.spines[0], ck.secs[0], decode); err != nil {
				return nil, err
			}
		}
		coll = &Collection{impl: impl, cfg: ck.cfg}
	} else {
		cfg, cerr := newConfig(kindCollection, opts)
		if cerr != nil {
			return nil, cerr
		}
		coll, err = newCollection(cfg)
		if err != nil {
			return nil, err
		}
	}
	st, err := wal.Replay(fsi, dir, man.WALStart, func(p []byte) error {
		return applyCollRecord(coll, p)
	})
	if err != nil {
		return nil, err
	}
	d, err := newDurable(fsi, dir, wopts, man, ck, st, time.Since(start))
	if err != nil {
		return nil, err
	}
	dc = &DurableCollection{Collection: coll, d: d}
	d.cfg = func() config { return dc.cfg }
	d.dumpAll = dc.dumpSections
	d.gcLocked(man)
	return dc, nil
}

// dumpSections captures every shard in sectioned form, holding shard
// read locks for a consistent cut (mutations are already excluded by
// d.mu; the locks shut out misuse that bypasses the durable facade).
func (c *DurableCollection) dumpSections(reuse func(shard, level int, gen uint64, dead int) bool) ([][]byte, [][]snap.Section, error) {
	fast := lookupDecoder(c.cfg.index) != nil
	if sh, ok := c.impl.(*shardedColl); ok {
		p := len(sh.shards)
		for _, s := range sh.shards {
			s.mu.RLock()
		}
		defer func() {
			for _, s := range sh.shards {
				s.mu.RUnlock()
			}
		}()
		spines := make([][]byte, p)
		secs := make([][]snap.Section, p)
		if err := parallelShards(p, func(i int) error {
			si, ok := sh.shards[i].impl.(collSectImpl)
			if !ok {
				return fmt.Errorf("dyncoll: collection shard does not support checkpoints")
			}
			spines[i], secs[i] = si.DumpSections(fast, func(level int, gen uint64, dead int) bool {
				return reuse(i, level, gen, dead)
			})
			return nil
		}); err != nil {
			return nil, nil, err
		}
		return spines, secs, nil
	}
	si, ok := c.impl.(collSectImpl)
	if !ok {
		return nil, nil, fmt.Errorf("dyncoll: collection does not support checkpoints")
	}
	spine, ss := si.DumpSections(fast, func(level int, gen uint64, dead int) bool {
		return reuse(0, level, gen, dead)
	})
	return [][]byte{spine}, [][]snap.Section{ss}, nil
}

// Insert adds a document durably; it is acknowledged only after its
// WAL record is fsynced.
func (c *DurableCollection) Insert(d Document) error {
	return c.InsertBatch([]Document{d})
}

// InsertBatch adds many documents in one atomic, durable ingest: the
// batch travels as one WAL record, so after any crash it is either
// fully present or fully absent.
func (c *DurableCollection) InsertBatch(docs []Document) error {
	c.d.mu.Lock()
	if c.d.closed {
		c.d.mu.Unlock()
		return ErrClosed
	}
	if err := c.Collection.InsertBatch(docs); err != nil {
		c.d.mu.Unlock()
		return err
	}
	if len(docs) == 0 {
		c.d.mu.Unlock()
		return nil
	}
	return c.d.commitUnlock(encodeInsertBatch(docs))
}

// Delete removes a document durably. It fails with ErrNotFound if no
// such document is live.
func (c *DurableCollection) Delete(id uint64) error {
	n, err := c.DeleteBatch([]uint64{id})
	if err != nil {
		return err
	}
	if n == 0 {
		return fmt.Errorf("dyncoll: delete id %d: %w", id, ErrNotFound)
	}
	return nil
}

// DeleteBatch removes every listed live document durably and returns
// the number removed. Unlike the plain facade it can also fail: a
// non-nil error means durability was not established (though the
// in-memory deletion did happen and will be re-lost on reopen).
func (c *DurableCollection) DeleteBatch(ids []uint64) (int, error) {
	c.d.mu.Lock()
	if c.d.closed {
		c.d.mu.Unlock()
		return 0, ErrClosed
	}
	n := c.Collection.DeleteBatch(ids)
	if n == 0 {
		c.d.mu.Unlock()
		return 0, nil
	}
	if err := c.d.commitUnlock(encodeDeleteBatch(ids)); err != nil {
		return n, err
	}
	return n, nil
}

// Checkpoint forces an incremental checkpoint: only levels rebuilt (or
// further deleted-from) since the previous checkpoint are written; the
// WAL is rotated so recovery replays just the tail from here on.
func (c *DurableCollection) Checkpoint() error { return c.d.checkpoint() }

// RecoveryStats reports what the OpenDurableCollection call that
// produced this collection did.
func (c *DurableCollection) RecoveryStats() RecoveryStats { return c.d.rec }

// Close flushes and closes the WAL. The collection remains readable;
// further mutations fail with ErrClosed.
func (c *DurableCollection) Close() error { return c.d.close() }

// --- DurableRelation ---

// DurableRelation is a Relation whose mutations survive kill -9; see
// DurableCollection.
type DurableRelation struct {
	*Relation
	d *durable
}

// OpenDurableRelation opens (or creates) the durable relation stored
// in dir; see OpenDurableCollection for semantics.
func OpenDurableRelation(dir string, wopts WALOptions, opts ...Option) (dr *DurableRelation, err error) {
	defer guard(&err)
	start := time.Now()
	fsi := wopts.FS
	if fsi == nil {
		fsi = wal.OS
	}
	man, ck, err := openRecoveryPoint(fsi, dir, kindRelation)
	if err != nil {
		return nil, err
	}
	var rel *Relation
	if ck != nil {
		impl := newRelAnyImpl(ck.cfg)
		if err := restoreRelShards(impl, ck); err != nil {
			return nil, err
		}
		rel = &Relation{rel: impl, cfg: ck.cfg}
	} else {
		cfg, cerr := newConfig(kindRelation, opts)
		if cerr != nil {
			return nil, cerr
		}
		rel = &Relation{rel: newRelAnyImpl(cfg), cfg: cfg}
	}
	st, err := wal.Replay(fsi, dir, man.WALStart, func(p []byte) error {
		return applyRelRecord(rel, p)
	})
	if err != nil {
		return nil, err
	}
	d, err := newDurable(fsi, dir, wopts, man, ck, st, time.Since(start))
	if err != nil {
		return nil, err
	}
	dr = &DurableRelation{Relation: rel, d: d}
	d.cfg = func() config { return dr.cfg }
	d.dumpAll = dr.dumpSections
	d.gcLocked(man)
	return dr, nil
}

// restoreRelShards installs a recovered checkpoint into a fresh
// relation implementation.
func restoreRelShards(impl relationImpl, ck *recoveredCkpt) error {
	if sh, ok := impl.(*shardedRelation); ok {
		return parallelShards(len(sh.shards), func(i int) (err error) {
			defer guard(&err)
			si, ok := sh.shards[i].rel.(relSectImpl)
			if !ok {
				return fmt.Errorf("dyncoll: relation shard does not support checkpoints")
			}
			return si.RestoreSections(ck.spines[i], ck.secs[i])
		})
	}
	si, ok := impl.(relSectImpl)
	if !ok {
		return fmt.Errorf("dyncoll: relation does not support checkpoints")
	}
	return si.RestoreSections(ck.spines[0], ck.secs[0])
}

// dumpSections captures every shard in sectioned form; see the
// collection counterpart.
func (r *DurableRelation) dumpSections(reuse func(shard, level int, gen uint64, dead int) bool) ([][]byte, [][]snap.Section, error) {
	if sh, ok := r.rel.(*shardedRelation); ok {
		p := len(sh.shards)
		for _, s := range sh.shards {
			s.mu.RLock()
		}
		defer func() {
			for _, s := range sh.shards {
				s.mu.RUnlock()
			}
		}()
		spines := make([][]byte, p)
		secs := make([][]snap.Section, p)
		if err := parallelShards(p, func(i int) error {
			si, ok := sh.shards[i].rel.(relSectImpl)
			if !ok {
				return fmt.Errorf("dyncoll: relation shard does not support checkpoints")
			}
			spines[i], secs[i] = si.DumpSections(func(level int, gen uint64, dead int) bool {
				return reuse(i, level, gen, dead)
			})
			return nil
		}); err != nil {
			return nil, nil, err
		}
		return spines, secs, nil
	}
	si, ok := r.rel.(relSectImpl)
	if !ok {
		return nil, nil, fmt.Errorf("dyncoll: relation does not support checkpoints")
	}
	spine, ss := si.DumpSections(func(level int, gen uint64, dead int) bool {
		return reuse(0, level, gen, dead)
	})
	return [][]byte{spine}, [][]snap.Section{ss}, nil
}

// Add inserts the pair (object, label) durably. It fails with
// ErrDuplicatePair if the pair is already related.
func (r *DurableRelation) Add(object, label uint64) error {
	r.d.mu.Lock()
	if r.d.closed {
		r.d.mu.Unlock()
		return ErrClosed
	}
	if !r.rel.Add(object, label) {
		r.d.mu.Unlock()
		return fmt.Errorf("dyncoll: add (%d, %d): %w", object, label, ErrDuplicatePair)
	}
	return r.d.commitUnlock(encodePairOp(opRelAdd, object, label))
}

// Delete removes the pair (object, label) durably. It fails with
// ErrNotFound if the pair is not related.
func (r *DurableRelation) Delete(object, label uint64) error {
	r.d.mu.Lock()
	if r.d.closed {
		r.d.mu.Unlock()
		return ErrClosed
	}
	if !r.rel.Delete(object, label) {
		r.d.mu.Unlock()
		return fmt.Errorf("dyncoll: delete (%d, %d): %w", object, label, ErrNotFound)
	}
	return r.d.commitUnlock(encodePairOp(opRelDelete, object, label))
}

// Checkpoint forces an incremental checkpoint; see
// DurableCollection.Checkpoint.
func (r *DurableRelation) Checkpoint() error { return r.d.checkpoint() }

// RecoveryStats reports what the open that produced this relation did.
func (r *DurableRelation) RecoveryStats() RecoveryStats { return r.d.rec }

// Close flushes and closes the WAL; further mutations fail ErrClosed.
func (r *DurableRelation) Close() error { return r.d.close() }

// --- DurableGraph ---

// DurableGraph is a Graph whose mutations survive kill -9; see
// DurableCollection.
type DurableGraph struct {
	*Graph
	d *durable
}

// OpenDurableGraph opens (or creates) the durable graph stored in dir;
// see OpenDurableCollection for semantics.
func OpenDurableGraph(dir string, wopts WALOptions, opts ...Option) (dg *DurableGraph, err error) {
	defer guard(&err)
	start := time.Now()
	fsi := wopts.FS
	if fsi == nil {
		fsi = wal.OS
	}
	man, ck, err := openRecoveryPoint(fsi, dir, kindGraph)
	if err != nil {
		return nil, err
	}
	var g *Graph
	if ck != nil {
		impl := newGraphAnyImpl(ck.cfg)
		if err := restoreGraphShards(impl, ck); err != nil {
			return nil, err
		}
		g = &Graph{g: impl, cfg: ck.cfg}
	} else {
		cfg, cerr := newConfig(kindGraph, opts)
		if cerr != nil {
			return nil, cerr
		}
		g = &Graph{g: newGraphAnyImpl(cfg), cfg: cfg}
	}
	st, err := wal.Replay(fsi, dir, man.WALStart, func(p []byte) error {
		return applyGraphRecord(g, p)
	})
	if err != nil {
		return nil, err
	}
	d, err := newDurable(fsi, dir, wopts, man, ck, st, time.Since(start))
	if err != nil {
		return nil, err
	}
	dg = &DurableGraph{Graph: g, d: d}
	d.cfg = func() config { return dg.cfg }
	d.dumpAll = dg.dumpSections
	d.gcLocked(man)
	return dg, nil
}

// restoreGraphShards installs a recovered checkpoint into a fresh
// graph implementation.
func restoreGraphShards(impl graphImpl, ck *recoveredCkpt) error {
	if sh, ok := impl.(*shardedGraph); ok {
		return parallelShards(len(sh.shards), func(i int) (err error) {
			defer guard(&err)
			return sh.shards[i].g.RestoreSections(ck.spines[i], ck.secs[i])
		})
	}
	si, ok := impl.(relSectImpl)
	if !ok {
		return fmt.Errorf("dyncoll: graph does not support checkpoints")
	}
	return si.RestoreSections(ck.spines[0], ck.secs[0])
}

// dumpSections captures every shard in sectioned form; see the
// collection counterpart.
func (g *DurableGraph) dumpSections(reuse func(shard, level int, gen uint64, dead int) bool) ([][]byte, [][]snap.Section, error) {
	if sh, ok := g.g.(*shardedGraph); ok {
		p := len(sh.shards)
		for _, s := range sh.shards {
			s.mu.RLock()
		}
		defer func() {
			for _, s := range sh.shards {
				s.mu.RUnlock()
			}
		}()
		spines := make([][]byte, p)
		secs := make([][]snap.Section, p)
		if err := parallelShards(p, func(i int) error {
			spines[i], secs[i] = sh.shards[i].g.DumpSections(func(level int, gen uint64, dead int) bool {
				return reuse(i, level, gen, dead)
			})
			return nil
		}); err != nil {
			return nil, nil, err
		}
		return spines, secs, nil
	}
	si, ok := g.g.(relSectImpl)
	if !ok {
		return nil, nil, fmt.Errorf("dyncoll: graph does not support checkpoints")
	}
	spine, ss := si.DumpSections(func(level int, gen uint64, dead int) bool {
		return reuse(0, level, gen, dead)
	})
	return [][]byte{spine}, [][]snap.Section{ss}, nil
}

// AddEdge inserts the edge u→v durably. It fails with ErrDuplicateEdge
// if the edge already exists.
func (g *DurableGraph) AddEdge(u, v uint64) error {
	g.d.mu.Lock()
	if g.d.closed {
		g.d.mu.Unlock()
		return ErrClosed
	}
	if !g.g.AddEdge(u, v) {
		g.d.mu.Unlock()
		return fmt.Errorf("dyncoll: add edge %d→%d: %w", u, v, ErrDuplicateEdge)
	}
	return g.d.commitUnlock(encodePairOp(opGraphAdd, u, v))
}

// DeleteEdge removes the edge u→v durably. It fails with ErrNotFound
// if the edge does not exist.
func (g *DurableGraph) DeleteEdge(u, v uint64) error {
	g.d.mu.Lock()
	if g.d.closed {
		g.d.mu.Unlock()
		return ErrClosed
	}
	if !g.g.DeleteEdge(u, v) {
		g.d.mu.Unlock()
		return fmt.Errorf("dyncoll: delete edge %d→%d: %w", u, v, ErrNotFound)
	}
	return g.d.commitUnlock(encodePairOp(opGraphDelete, u, v))
}

// Checkpoint forces an incremental checkpoint; see
// DurableCollection.Checkpoint.
func (g *DurableGraph) Checkpoint() error { return g.d.checkpoint() }

// RecoveryStats reports what the open that produced this graph did.
func (g *DurableGraph) RecoveryStats() RecoveryStats { return g.d.rec }

// Close flushes and closes the WAL; further mutations fail ErrClosed.
func (g *DurableGraph) Close() error { return g.d.close() }
