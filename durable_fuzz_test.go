package dyncoll

import (
	"errors"
	"sort"
	"sync"
	"testing"

	"dyncoll/internal/snap"
	"dyncoll/internal/wal"
)

// fuzzBaseState builds — once — a realistic durable directory: a
// checkpoint (spine + segments + manifest) plus a WAL tail with a few
// records. The fuzzer corrupts copies of these files and proves that
// recovery never panics and never accepts garbage silently: every
// outcome is either a successful open of some consistent state or a
// typed error.
var fuzzBaseState = sync.OnceValues(func() (map[string][]byte, error) {
	fs := wal.NewMemFS()
	dc, err := OpenDurableCollection("dur", WALOptions{FS: fs, CheckpointEvery: -1},
		WithMinCapacity(16), WithSyncRebuilds())
	if err != nil {
		return nil, err
	}
	var docs []Document
	for i := uint64(1); i <= 40; i++ {
		docs = append(docs, Document{ID: i, Data: []byte("fuzz corpus doc with shared text")})
	}
	if err := dc.InsertBatch(docs); err != nil {
		return nil, err
	}
	if err := dc.Checkpoint(); err != nil {
		return nil, err
	}
	for i := uint64(100); i < 104; i++ {
		if err := dc.Insert(Document{ID: i, Data: []byte("wal tail doc")}); err != nil {
			return nil, err
		}
	}
	if _, err := dc.DeleteBatch([]uint64{2, 101}); err != nil {
		return nil, err
	}
	if err := dc.Close(); err != nil {
		return nil, err
	}
	return fs.Snapshot(), nil
})

// FuzzWALReplay corrupts one file of a valid durable directory —
// byte flips, truncations, extensions — and reopens. The recovery path
// must never panic; it must either succeed (torn WAL tails are legal
// crash states) or fail with an error in the snapshot-corruption
// family.
func FuzzWALReplay(f *testing.F) {
	base, err := fuzzBaseState()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(uint16(0), uint32(4), byte(0xff), false)
	f.Add(uint16(1), uint32(0), byte(0x01), true)
	f.Add(uint16(2), uint32(30), byte(0x80), false)
	f.Add(uint16(3), uint32(9), byte(0x00), true)
	f.Add(uint16(4), uint32(1000), byte(0x40), false)
	f.Fuzz(func(t *testing.T, fileIdx uint16, offset uint32, flip byte, truncate bool) {
		names := make([]string, 0, len(base))
		for p := range base {
			names = append(names, p)
		}
		sort.Strings(names)
		victim := names[int(fileIdx)%len(names)]

		fs := wal.NewMemFS()
		fs.Restore(base)
		data := append([]byte(nil), base[victim]...)
		switch {
		case truncate:
			data = data[:int(offset)%(len(data)+1)]
		case len(data) == 0 || flip == 0:
			// Extend: append garbage instead of flipping nothing.
			data = append(data, flip|1, 0xde, 0xad)
		default:
			data[int(offset)%len(data)] ^= flip
		}
		fs.SetFile(victim, data)

		dc, err := OpenDurableCollection("dur", WALOptions{FS: fs, CheckpointEvery: -1})
		if err != nil {
			// Must be the typed corruption family, not an untyped mess
			// (and never a panic — guard() would have converted one into
			// ErrBadSnapshot, which this accepts).
			if !errors.Is(err, snap.ErrBadSnapshot) {
				t.Fatalf("corrupting %s: untyped error %v", victim, err)
			}
			return
		}
		// Opened: whatever survived must be internally consistent — a
		// prefix of the original history. Spot-check that queries work
		// and deletions were not resurrected.
		defer dc.Close()
		n := dc.DocCount()
		if n < 0 || n > 44 {
			t.Fatalf("corrupting %s: DocCount = %d", victim, n)
		}
		if dc.Has(2) && dc.Has(101) {
			// Both deletions lost but their inserts present means the
			// replayed history ended before the final record — legal
			// (torn tail) — but then doc 103's fate must be consistent
			// with a prefix: if the deletes are missing, nothing after
			// them may be present.
			_ = n
		}
		dc.Count([]byte("doc"))
		dc.Find([]byte("tail"))
	})
}

// FuzzWALFrames feeds raw bytes to the WAL replayer directly: framing
// corruption must yield a clean prefix stop, never a panic or a
// misparsed record.
func FuzzWALFrames(f *testing.F) {
	valid := wal.AppendFrame(nil, []byte("hello"))
	valid = wal.AppendFrame(valid, []byte("world"))
	f.Add(valid)
	f.Add(valid[:len(valid)-2])
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		fs := wal.NewMemFS()
		fs.SetFile("d/wal-0000000000000001", data)
		var applied int
		st, err := wal.Replay(fs, "d", 1, func(p []byte) error {
			applied++
			return nil
		})
		if err != nil {
			t.Fatalf("replay of a single (newest) file must not fail: %v", err)
		}
		if st.Records != applied {
			t.Fatalf("stats count %d, applied %d", st.Records, applied)
		}
		// After truncation a second replay is clean and identical.
		st2, err := wal.Replay(fs, "d", 1, func([]byte) error { return nil })
		if err != nil || st2.TornTail || st2.Records != applied {
			t.Fatalf("second replay: %+v, %v (want %d records, no torn tail)", st2, err, applied)
		}
	})
}
