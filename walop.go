package dyncoll

import (
	"dyncoll/internal/snap"
)

// WAL record payloads: one record per acknowledged facade mutation,
// self-describing via a leading op byte so replay needs no external
// framing beyond the WAL's own. Batches travel as one record — replay
// applies them through the same atomic batch entry points, so a batch
// is either fully present after recovery or fully absent, never split.

const (
	opInsertBatch byte = 1 // collection: uvarint count, then (uvarint id, blob data) each
	opDeleteBatch byte = 2 // collection: length-prefixed id list
	opRelAdd      byte = 3 // relation: uvarint object, uvarint label
	opRelDelete   byte = 4
	opGraphAdd    byte = 5 // graph: uvarint u, uvarint v
	opGraphDelete byte = 6
)

func encodeInsertBatch(docs []Document) []byte {
	e := &snap.Encoder{}
	e.Byte(opInsertBatch)
	e.Uvarint(uint64(len(docs)))
	for _, d := range docs {
		e.Uvarint(d.ID)
		e.Blob(d.Data)
	}
	return e.Bytes()
}

func encodeDeleteBatch(ids []uint64) []byte {
	e := &snap.Encoder{}
	e.Byte(opDeleteBatch)
	e.Uint64s(ids)
	return e.Bytes()
}

func encodePairOp(op byte, a, b uint64) []byte {
	e := &snap.Encoder{}
	e.Byte(op)
	e.Uvarint(a)
	e.Uvarint(b)
	return e.Bytes()
}

// applyCollRecord replays one WAL record into a collection. Replay is
// tolerant of operations that are already reflected in the state —
// inserts of live IDs are skipped and deletes of absent IDs are no-ops
// — so a record straddling a recovery point can never fail the open.
func applyCollRecord(c *Collection, payload []byte) error {
	dec := snap.NewDecoder(payload)
	op := dec.Byte()
	if err := dec.Err(); err != nil {
		return err
	}
	switch op {
	case opInsertBatch:
		n := dec.Count(2)
		if err := dec.Err(); err != nil {
			return err
		}
		docs := make([]Document, 0, n)
		for i := 0; i < n; i++ {
			id := dec.Uvarint()
			data := append([]byte(nil), dec.Blob()...)
			if err := dec.Err(); err != nil {
				return err
			}
			if c.Has(id) {
				continue
			}
			docs = append(docs, Document{ID: id, Data: data})
		}
		if dec.Remaining() != 0 {
			return snap.Corruptf("wal record: %d trailing bytes", dec.Remaining())
		}
		if len(docs) == 0 {
			return nil
		}
		if err := c.InsertBatch(docs); err != nil {
			return snap.Corruptf("wal replay insert: %v", err)
		}
		return nil
	case opDeleteBatch:
		ids := dec.Uint64s()
		if err := dec.Err(); err != nil {
			return err
		}
		if dec.Remaining() != 0 {
			return snap.Corruptf("wal record: %d trailing bytes", dec.Remaining())
		}
		c.DeleteBatch(ids)
		return nil
	default:
		return snap.Corruptf("wal record: op %d on a collection", op)
	}
}

// decodePair reads the two operands of a pair-shaped record and
// rejects trailing bytes.
func decodePair(dec *snap.Decoder) (a, b uint64, err error) {
	a = dec.Uvarint()
	b = dec.Uvarint()
	if err := dec.Err(); err != nil {
		return 0, 0, err
	}
	if dec.Remaining() != 0 {
		return 0, 0, snap.Corruptf("wal record: %d trailing bytes", dec.Remaining())
	}
	return a, b, nil
}

// applyRelRecord replays one WAL record into a relation; duplicate
// adds and absent deletes are no-ops, as for collections.
func applyRelRecord(r *Relation, payload []byte) error {
	dec := snap.NewDecoder(payload)
	op := dec.Byte()
	if err := dec.Err(); err != nil {
		return err
	}
	switch op {
	case opRelAdd:
		obj, lab, err := decodePair(dec)
		if err != nil {
			return err
		}
		r.rel.Add(obj, lab)
		return nil
	case opRelDelete:
		obj, lab, err := decodePair(dec)
		if err != nil {
			return err
		}
		r.rel.Delete(obj, lab)
		return nil
	default:
		return snap.Corruptf("wal record: op %d on a relation", op)
	}
}

// applyGraphRecord replays one WAL record into a graph.
func applyGraphRecord(g *Graph, payload []byte) error {
	dec := snap.NewDecoder(payload)
	op := dec.Byte()
	if err := dec.Err(); err != nil {
		return err
	}
	switch op {
	case opGraphAdd:
		u, v, err := decodePair(dec)
		if err != nil {
			return err
		}
		g.g.AddEdge(u, v)
		return nil
	case opGraphDelete:
		u, v, err := decodePair(dec)
		if err != nil {
			return err
		}
		g.g.DeleteEdge(u, v)
		return nil
	default:
		return snap.Corruptf("wal record: op %d on a graph", op)
	}
}
