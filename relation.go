package dyncoll

import (
	"fmt"
	"iter"

	"dyncoll/internal/binrel"
)

// Pair is one (object, label) element of a Relation.
type Pair = binrel.Pair

// relationImpl is the slice of the binrel API the facade needs;
// binrel.Relation (either engine scheduling) satisfies it directly and
// shardedRelation satisfies it by fanning out over p of them.
type relationImpl interface {
	Add(object, label uint64) bool
	Delete(object, label uint64) bool
	Related(object, label uint64) bool
	LabelsOf(object uint64, fn func(label uint64) bool)
	ObjectsOf(label uint64, fn func(object uint64) bool)
	Labels(object uint64) []uint64
	Objects(label uint64) []uint64
	CountLabels(object uint64) int
	CountObjects(label uint64) int
	Pairs() []binrel.Pair
	PairsFunc(fn func(binrel.Pair) bool)
	Len() int
	Tau() int
	SizeBits() int64
	WaitIdle()
	Stats() binrel.Stats
}

var (
	_ relationImpl = (*binrel.Relation)(nil)
	_ relationImpl = (*shardedRelation)(nil)
)

// Relation is a dynamic compressed binary relation between uint64
// objects and uint64 labels (Theorem 2): membership, label-of-object and
// object-of-label reporting and counting, plus pair insertion and
// deletion. The bulk of the pairs lives in deletion-only compressed
// sub-collections; only an O(n/log²n)-pair C0 is kept uncompressed.
//
// An unsharded Relation (the default) is not safe for concurrent use. A
// Relation built with WithShards(p) partitions pairs by object hash and
// is safe for concurrent readers and writers; label-keyed queries
// (ObjectsOf, CountObjects, Objects) fan out across shards in parallel.
type Relation struct {
	rel    relationImpl
	cfg    config      // resolved construction config, recorded in snapshots
	mapped *mappedFile // v2 snapshot mapping, nil unless LoadMappedFile
}

// newRelationImpl builds one unsharded relation for cfg. Both update
// regimes come from the same generic engine, so the transformation is
// just an option on the one constructor.
func newRelationImpl(cfg config) relationImpl {
	return binrel.New(binrel.Options{
		Tau:         cfg.tau,
		Epsilon:     cfg.epsilon,
		MinCapacity: cfg.minCapacity,
		WorstCase:   cfg.transformation == WorstCase,
		Inline:      cfg.syncRebuilds,
	})
}

// NewRelation creates an empty dynamic compressed binary relation. The
// default uses Transformation 1's amortized cascades;
// WithTransformation(WorstCase) selects bounded foreground work per
// update with background rebuilds, and WithShards(p) partitions the
// relation for concurrent access.
func NewRelation(opts ...Option) (*Relation, error) {
	cfg, err := newConfig(kindRelation, opts)
	if err != nil {
		return nil, err
	}
	return &Relation{rel: newRelAnyImpl(cfg), cfg: cfg}, nil
}

// newRelAnyImpl builds the sharded or unsharded implementation for cfg.
func newRelAnyImpl(cfg config) relationImpl {
	if cfg.shards > 0 {
		return newShardedRelation(cfg)
	}
	return newRelationImpl(cfg)
}

// Add inserts the pair (object, label). It fails with ErrDuplicatePair
// if the pair is already related.
func (r *Relation) Add(object, label uint64) error {
	if r.rel.Add(object, label) {
		return nil
	}
	return fmt.Errorf("dyncoll: add (%d, %d): %w", object, label, ErrDuplicatePair)
}

// Delete removes the pair (object, label). It fails with ErrNotFound if
// the pair is not related.
func (r *Relation) Delete(object, label uint64) error {
	if r.rel.Delete(object, label) {
		return nil
	}
	return fmt.Errorf("dyncoll: delete (%d, %d): %w", object, label, ErrNotFound)
}

// Related reports whether object and label are related.
func (r *Relation) Related(object, label uint64) bool { return r.rel.Related(object, label) }

// LabelsIter returns a lazy iterator over the labels related to object;
// breaking out of the range loop stops the underlying enumeration.
// On an unsharded relation, the relation must not be touched from the
// loop body or another goroutine until iteration completes: under
// WorstCase scheduling the iterator holds the relation's internal lock
// while yielding, so even a read re-entering the same relation would
// self-deadlock. On a sharded relation other goroutines may freely read
// and write during iteration, but the loop body itself must not touch
// the relation at all — a loop-body read can deadlock with a writer
// queued on a shard whose read lock the iterator holds.
func (r *Relation) LabelsIter(object uint64) iter.Seq[uint64] {
	return func(yield func(uint64) bool) {
		r.rel.LabelsOf(object, yield)
	}
}

// ObjectsIter returns a lazy iterator over the objects related to
// label. The same re-entrancy rule as LabelsIter applies.
func (r *Relation) ObjectsIter(label uint64) iter.Seq[uint64] {
	return func(yield func(uint64) bool) {
		r.rel.ObjectsOf(label, yield)
	}
}

// PairsIter returns a lazy iterator over every live pair (unspecified
// order); breaking out of the range loop stops the underlying
// enumeration without materializing the pair set. The same re-entrancy
// rule as LabelsIter applies.
func (r *Relation) PairsIter() iter.Seq[Pair] {
	return func(yield func(Pair) bool) {
		r.rel.PairsFunc(yield)
	}
}

// LabelsOf streams the labels related to object; enumeration stops when
// fn returns false.
func (r *Relation) LabelsOf(object uint64, fn func(label uint64) bool) {
	r.rel.LabelsOf(object, fn)
}

// ObjectsOf streams the objects related to label; enumeration stops when
// fn returns false.
func (r *Relation) ObjectsOf(label uint64, fn func(object uint64) bool) {
	r.rel.ObjectsOf(label, fn)
}

// Labels returns the labels related to object, sorted.
func (r *Relation) Labels(object uint64) []uint64 { return r.rel.Labels(object) }

// Objects returns the objects related to label, sorted.
func (r *Relation) Objects(label uint64) []uint64 { return r.rel.Objects(label) }

// CountLabels counts the labels related to object.
func (r *Relation) CountLabels(object uint64) int { return r.rel.CountLabels(object) }

// CountObjects counts the objects related to label.
func (r *Relation) CountObjects(label uint64) int { return r.rel.CountObjects(label) }

// Pairs returns every live pair (unspecified order).
func (r *Relation) Pairs() []Pair { return r.rel.Pairs() }

// Len reports the number of live pairs.
func (r *Relation) Len() int { return r.rel.Len() }

// Tau reports the lazy-deletion parameter τ currently in effect.
func (r *Relation) Tau() int { return r.rel.Tau() }

// SizeBits estimates the total footprint.
func (r *Relation) SizeBits() int64 { return r.rel.SizeBits() }

// WaitIdle blocks until background rebuilds (WorstCase scheduling only)
// have completed — across every shard when the relation is sharded;
// otherwise it returns immediately.
func (r *Relation) WaitIdle() { r.rel.WaitIdle() }

// Stats reports the relation's engine-level ladder state and rebuild
// counters, in the same shape Collection.Stats uses (sizes are pair
// counts). On a sharded relation the counters are aggregated across
// shards.
func (r *Relation) Stats() IndexStats {
	st := indexStatsFrom(r.rel.Stats())
	if sh, ok := r.rel.(*shardedRelation); ok {
		st.Shards = len(sh.shards)
	}
	st.fillResidency(r.mapped, r.SizeBits())
	return st
}
