#!/bin/sh
# End-to-end smoke test for dyndocd: build the binary, bring up two
# backends and a frontend, drive the full API surface through the
# frontend, then SIGTERM a backend and prove the graceful drain wrote a
# snapshot that restores to an identical collection.
#
# Exits non-zero on the first failed assertion. Needs only sh + curl +
# the go toolchain; runs in a few seconds.
set -eu

workdir=$(mktemp -d)
B1=127.0.0.1:7181
B2=127.0.0.1:7182
FE=127.0.0.1:7180
pids=""
cleanup() {
    for p in $pids; do kill "$p" 2>/dev/null || true; done
    # The WAL backend writes a drain checkpoint on TERM; let every child
    # exit before deleting the directory they write into.
    wait 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

fail() { echo "SMOKE FAIL: $*" >&2; exit 1; }

wait_healthy() { # $1 = host:port
    i=0
    while ! curl -fsS "http://$1/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        [ "$i" -lt 100 ] || fail "$1 did not become healthy"
        sleep 0.1
    done
}

echo "== build"
go build -o "$workdir/dyndocd" ./cmd/dyndocd

echo "== start two backends (one with a drain snapshot) and a frontend"
"$workdir/dyndocd" -listen "$B1" -shards 2 -snapshot "$workdir/b1.snap" >"$workdir/b1.log" 2>&1 &
pids="$pids $!"
b1_pid=$!
"$workdir/dyndocd" -listen "$B2" -shards 2 >"$workdir/b2.log" 2>&1 &
pids="$pids $!"
wait_healthy "$B1"
wait_healthy "$B2"
"$workdir/dyndocd" -mode frontend -listen "$FE" -backends "$B1,$B2" >"$workdir/fe.log" 2>&1 &
pids="$pids $!"
wait_healthy "$FE"

echo "== insert through the frontend"
body='{"docs":['
for id in 1 2 3 4 5 6 7 8 9 10 11 12 13 14 15 16 17 18 19 20; do
    body="$body{\"id\":$id,\"text\":\"smoke document $id with a needle inside\"},"
done
body="${body%,}]}"
out=$(curl -fsS -X POST -d "$body" "http://$FE/v1/insert")
echo "$out" | grep -q '"inserted":20' || fail "insert reply: $out"

echo "== query through the frontend"
out=$(curl -fsS "http://$FE/v1/count?q=needle")
echo "$out" | grep -q '"count":20' || fail "count reply: $out"
lines=$(curl -fsS "http://$FE/v1/find?q=needle" | wc -l)
[ "$lines" -eq 20 ] || fail "find streamed $lines lines, want 20"
lines=$(curl -fsS "http://$FE/v1/find?q=needle&limit=3" | wc -l)
[ "$lines" -eq 3 ] || fail "find limit=3 streamed $lines lines"
echo "== /v1/search: streaming, regex, and ranked top-k through the frontend"
lines=$(curl -fsS "http://$FE/v1/search?q=needle" | wc -l)
[ "$lines" -eq 20 ] || fail "search streamed $lines lines, want 20"
lines=$(curl -fsS "http://$FE/v1/search?q=needle&k=4" | wc -l)
[ "$lines" -eq 4 ] || fail "search k=4 streamed $lines lines"
# "ne.dle" must plan through the literal filter and still find all 20.
lines=$(curl -fsS "http://$FE/v1/search?q=ne.dle&regex=1" | wc -l)
[ "$lines" -eq 20 ] || fail "regex search streamed $lines lines, want 20"
out=$(curl -fsS "http://$FE/v1/search?q=needle&ranked=1&k=3")
[ "$(echo "$out" | wc -l)" -eq 3 ] || fail "ranked search returned $(echo "$out" | wc -l) docs, want 3"
echo "$out" | head -n 1 | grep -q '"score":' || fail "ranked search results carry no score: $out"
status=$(curl -s -o /dev/null -w '%{http_code}' "http://$FE/v1/search?q=a(&regex=1")
[ "$status" = 400 ] || fail "malformed regex returned status $status, want 400"

# extract returns the bytes base64-encoded; "c21va2UgZG9jdW1lbnQ=" is "smoke document"
out=$(curl -fsS "http://$FE/v1/extract?id=5&off=0&len=14")
echo "$out" | grep -q '"data":"c21va2UgZG9jdW1lbnQ="' || fail "extract reply: $out"

echo "== a batch with an in-batch duplicate is rejected atomically"
status=$(curl -s -o "$workdir/dup.json" -w '%{http_code}' -X POST \
    -d '{"docs":[{"id":100,"text":"a"},{"id":100,"text":"b"}]}' "http://$FE/v1/insert")
[ "$status" = 409 ] || fail "duplicate batch returned status $status"
grep -q '"error":"duplicate_id"' "$workdir/dup.json" || fail "duplicate batch error body: $(cat "$workdir/dup.json")"
out=$(curl -fsS "http://$FE/v1/count?q=needle")
echo "$out" | grep -q '"count":20' || fail "count changed after rejected batch: $out"

echo "== varz reports both backends healthy"
out=$(curl -fsS "http://$FE/varz")
echo "$out" | grep -q '"role":"frontend"' || fail "frontend varz: $out"
oks=$(echo "$out" | grep -o '"ok":true' | wc -l)
[ "$oks" -eq 2 ] || fail "varz reports $oks healthy backends, want 2"

echo "== count backend 1's docs, then SIGTERM it and assert a clean drain"
b1_count=$(curl -fsS "http://$B1/v1/count?q=needle" | sed 's/.*"count"://;s/[^0-9].*//')
kill -TERM "$b1_pid"
# A clean drain exits 0 after writing the snapshot.
if ! wait "$b1_pid"; then fail "backend 1 exited non-zero on SIGTERM (log: $(cat "$workdir/b1.log"))"; fi
[ -s "$workdir/b1.snap" ] || fail "drain did not write the snapshot"
grep -q 'drain snapshot:' "$workdir/b1.log" || fail "drain log missing snapshot line: $(cat "$workdir/b1.log")"

echo "== restart backend 1 from the drain snapshot; counts must match"
"$workdir/dyndocd" -listen "$B1" -shards 2 -snapshot "$workdir/b1.snap" >"$workdir/b1b.log" 2>&1 &
pids="$pids $!"
wait_healthy "$B1"
b1_count2=$(curl -fsS "http://$B1/v1/count?q=needle" | sed 's/.*"count"://;s/[^0-9].*//')
[ "$b1_count" = "$b1_count2" ] || fail "count after restore: $b1_count2, want $b1_count"
out=$(curl -fsS "http://$FE/v1/count?q=needle")
echo "$out" | grep -q '"count":20' || fail "fleet count after restore: $out"

echo "SMOKE OK: fleet count intact across a backend drain/restore (backend 1 held $b1_count docs)"

echo "== durability: start a WAL backend, insert, kill -9, restart, nothing lost"
B3=127.0.0.1:7183
"$workdir/dyndocd" -listen "$B3" -shards 2 -wal "$workdir/b3wal" -wal-checkpoint 4096 >"$workdir/b3.log" 2>&1 &
pids="$pids $!"
b3_pid=$!
wait_healthy "$B3"
body='{"docs":['
for id in 201 202 203 204 205 206 207 208 209 210; do
    body="$body{\"id\":$id,\"text\":\"durable document $id with a needle inside\"},"
done
body="${body%,}]}"
out=$(curl -fsS -X POST -d "$body" "http://$B3/v1/insert")
echo "$out" | grep -q '"inserted":10' || fail "wal insert reply: $out"
out=$(curl -fsS -X POST -d '{"ids":[205]}' "http://$B3/v1/delete")
echo "$out" | grep -q '"deleted":1' || fail "wal delete reply: $out"

# The replies above were sent only after the WAL records were fsynced,
# so SIGKILL — no drain, no snapshot — must lose nothing.
kill -9 "$b3_pid"
wait "$b3_pid" 2>/dev/null || true

"$workdir/dyndocd" -listen "$B3" -shards 2 -wal "$workdir/b3wal" -wal-checkpoint 4096 >"$workdir/b3b.log" 2>&1 &
pids="$pids $!"
wait_healthy "$B3"
grep -q 'recovered ' "$workdir/b3b.log" || fail "restart log missing recovery line: $(cat "$workdir/b3b.log")"
out=$(curl -fsS "http://$B3/v1/count?q=needle")
echo "$out" | grep -q '"count":9' || fail "count after kill -9 restart: $out (want 9: 10 inserted, 1 deleted)"
out=$(curl -fsS "http://$B3/v1/extract?id=203&off=0&len=16")
echo "$out" | grep -q '"data":"ZHVyYWJsZSBkb2N1bWVudA=="' || fail "extract after kill -9: $out"
status=$(curl -s -o /dev/null -w '%{http_code}' "http://$B3/v1/extract?id=205&off=0&len=4")
[ "$status" = 404 ] || fail "deleted doc 205 resurrected after kill -9 (status $status)"

echo "SMOKE OK: WAL backend survived kill -9 with all acknowledged writes intact"

echo "== replication: R=2 fleet serves every read with one backend killed -9"
B4=127.0.0.1:7184
B5=127.0.0.1:7185
FE2=127.0.0.1:7186
"$workdir/dyndocd" -listen "$B4" -shards 2 >"$workdir/b4.log" 2>&1 &
pids="$pids $!"
b4_pid=$!
"$workdir/dyndocd" -listen "$B5" -shards 2 >"$workdir/b5.log" 2>&1 &
pids="$pids $!"
wait_healthy "$B4"
wait_healthy "$B5"
"$workdir/dyndocd" -mode frontend -listen "$FE2" -backends "$B4,$B5" \
    -replication 2 -op-timeout 2s -retries 4 -retry-base 20ms \
    -breaker-failures 3 -breaker-cooldown 500ms >"$workdir/fe2.log" 2>&1 &
pids="$pids $!"
wait_healthy "$FE2"

out=$(curl -fsS "http://$FE2/v1/assignment")
echo "$out" | grep -q '"replication":2' || fail "assignment table not replicated: $out"
body='{"docs":['
for id in $(seq 301 330); do
    body="$body{\"id\":$id,\"text\":\"replicated document $id with a needle inside\"},"
done
body="${body%,}]}"
out=$(curl -fsS -X POST -d "$body" "http://$FE2/v1/insert")
echo "$out" | grep -q '"inserted":30' || fail "replicated insert reply: $out"
status=$(curl -s -o /dev/null -w '%{http_code}' "http://$FE2/readyz")
[ "$status" = 200 ] || fail "healthy fleet readyz returned $status"

kill -9 "$b4_pid"
wait "$b4_pid" 2>/dev/null || true

# Reads must answer — correctly and repeatedly — with a replica dead.
for i in 1 2 3 4 5; do
    out=$(curl -fsS "http://$FE2/v1/count?q=needle") || fail "count #$i failed with one replica dead"
    echo "$out" | grep -q '"count":30' || fail "count #$i with one replica dead: $out"
    echo "$out" | grep -q '"partial":true' && fail "count #$i silently partial: $out"
done
lines=$(curl -fsS "http://$FE2/v1/find?q=needle" | grep -c '"doc"')
[ "$lines" -eq 30 ] || fail "find with one replica dead streamed $lines lines, want 30"

# Writes need the full replica set: they must fail loudly, not half-apply
# in silence.
status=$(curl -s -o "$workdir/deadwrite.json" -w '%{http_code}' -X POST \
    -d '{"docs":[{"id":400,"text":"doomed"}]}' "http://$FE2/v1/insert")
[ "$status" = 502 ] || fail "insert with a dead replica returned status $status, want 502"
grep -q '"error"' "$workdir/deadwrite.json" || fail "dead-replica insert error body: $(cat "$workdir/deadwrite.json")"

# The tripped breaker surfaces in /readyz: degraded, naming the backend.
ready=200
for i in $(seq 1 50); do
    ready=$(curl -s -o "$workdir/readyz.json" -w '%{http_code}' "http://$FE2/readyz")
    [ "$ready" = 503 ] && break
    sleep 0.1
done
[ "$ready" = 503 ] || fail "readyz stayed $ready with a dead replica, want 503"
grep -q "$B4" "$workdir/readyz.json" || fail "readyz does not name the dead backend: $(cat "$workdir/readyz.json")"

echo "SMOKE OK: replicated fleet served every read through a kill -9, refused unsafe writes, reported degraded"
