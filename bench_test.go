package dyncoll

// Benchmarks regenerating the paper's tables as Go testing.B targets.
// Each BenchmarkTableN / BenchmarkFigN group corresponds to one table or
// figure of the paper; cmd/benchtables prints the same measurements as
// formatted rows, and DESIGN.md records how the implementation maps onto
// the paper. Run with:
//
//	go test -bench=. -benchmem
//
// Sub-benchmark names encode the parameters, e.g.
// BenchmarkTable2Count/T2+FM/n=65536-8.

import (
	"fmt"
	"regexp"
	"slices"
	"sync/atomic"
	"testing"

	"dyncoll/internal/baseline"
	"dyncoll/internal/core"
	"dyncoll/internal/doc"
	"dyncoll/internal/fanout"
	"dyncoll/internal/fmindex"
	"dyncoll/internal/query"
	"dyncoll/internal/textgen"
)

func benchDocs(total, sigma int, seed int64) []doc.Doc {
	gen := textgen.NewCollection(textgen.CollectionOptions{
		Sigma: sigma, Order: 1, Skew: 0.6, MinLen: 256, MaxLen: 2048, Seed: seed,
	})
	gen.GenerateTotal(total)
	return gen.Docs
}

func benchFM(s int) core.Builder {
	return func(docs []doc.Doc) core.StaticIndex {
		return fmindex.Build(docs, fmindex.Options{SampleRate: s})
	}
}

// --- Table 1: static index operations across the sampling parameter ---

func BenchmarkTable1Range(b *testing.B) {
	docs := benchDocs(1<<17, 16, 1)
	ps := textgen.NewPatternSampler(docs, 2)
	pats := ps.PlantedSet(64, 8)
	for _, s := range []int{4, 16, 64} {
		idx := fmindex.Build(docs, fmindex.Options{SampleRate: s})
		b.Run(fmt.Sprintf("s=%d", s), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				idx.Range(pats[i%len(pats)])
			}
		})
	}
}

func BenchmarkTable1Locate(b *testing.B) {
	docs := benchDocs(1<<17, 16, 1)
	for _, s := range []int{4, 16, 64} {
		idx := fmindex.Build(docs, fmindex.Options{SampleRate: s})
		b.Run(fmt.Sprintf("s=%d", s), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				idx.Locate(i % idx.SALen())
			}
		})
	}
}

func BenchmarkTable1Extract(b *testing.B) {
	docs := benchDocs(1<<17, 16, 1)
	for _, s := range []int{4, 16, 64} {
		idx := fmindex.Build(docs, fmindex.Options{SampleRate: s})
		b.Run(fmt.Sprintf("s=%d", s), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				idx.Extract(i%idx.DocCount(), 8, 64)
			}
		})
	}
}

// --- Build path: static index construction and engine rebuild cost ---

// BenchmarkIndexBuild measures one full static-index construction
// (concat → suffix array → BWT → wavelet/Ψ encoding → samples) over a
// fixed corpus — the unit of work every engine rebuild pays.
func BenchmarkIndexBuild(b *testing.B) {
	docs := benchDocs(1<<17, 16, 1)
	b.Run("FM", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			fmindex.Build(docs, fmindex.Options{SampleRate: 16})
		}
	})
	b.Run("CSA", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			fmindex.BuildCSA(docs, fmindex.Options{SampleRate: 16})
		}
	})
}

// BenchmarkRebuildLatency measures the engine-level merge cost: inserts
// into a preloaded worst-case ladder with synchronous (inline) builds,
// so every cascade's concat/SA-IS/BWT/wavelet rebuild lands inside the
// measured loop. Reported ns/symbol is total time over inserted payload
// symbols.
func BenchmarkRebuildLatency(b *testing.B) {
	gen := textgen.NewCollection(textgen.CollectionOptions{
		Sigma: 16, MinLen: 256, MaxLen: 1024, Seed: 23,
	})
	idx := core.NewWorstCase(core.Options{Builder: benchFM(8), Inline: true})
	for syms := 0; syms < 1<<16; {
		d := gen.NextDoc()
		if err := idx.Insert(d); err != nil {
			b.Fatal(err)
		}
		syms += len(d.Data)
	}
	b.ReportAllocs()
	b.ResetTimer()
	syms := 0
	for i := 0; i < b.N; i++ {
		d := gen.NextDoc()
		if err := idx.Insert(d); err != nil {
			b.Fatal(err)
		}
		syms += len(d.Data)
	}
	b.StopTimer()
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(syms), "ns/symbol")
}

// --- Table 2: dynamic count/locate/update, ours vs baseline ---

type bench2Index interface {
	Insert(doc.Doc) error
	Count([]byte) int
}

func table2Indexes(s int) map[string]func() bench2Index {
	return map[string]func() bench2Index{
		"T1+FM": func() bench2Index {
			return core.NewAmortized(core.Options{Builder: benchFM(s)})
		},
		"T2+FM": func() bench2Index {
			return core.NewWorstCase(core.Options{Builder: benchFM(s), Inline: true})
		},
		"DynFM-baseline": func() bench2Index { return baseline.NewDynFM(s) },
		"SuffixTree":     func() bench2Index { return baseline.NewSTIndex() },
	}
}

func BenchmarkTable2Count(b *testing.B) {
	const s = 8
	for name, mk := range table2Indexes(s) {
		for _, n := range []int{1 << 14, 1 << 17} {
			docs := benchDocs(n, 16, 2)
			idx := mk()
			for _, d := range docs {
				idx.Insert(d)
			}
			ps := textgen.NewPatternSampler(docs, 3)
			pats := ps.PlantedSet(64, 8)
			b.Run(fmt.Sprintf("%s/n=%d", name, n), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					idx.Count(pats[i%len(pats)])
				}
			})
		}
	}
}

func BenchmarkTable2Update(b *testing.B) {
	const s = 8
	for name, mk := range table2Indexes(s) {
		b.Run(name, func(b *testing.B) {
			gen := textgen.NewCollection(textgen.CollectionOptions{
				Sigma: 16, MinLen: 256, MaxLen: 1024, Seed: 4,
			})
			idx := mk()
			syms := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d := gen.NextDoc()
				idx.Insert(d)
				syms += len(d.Data)
			}
			b.StopTimer()
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(syms), "ns/symbol")
		})
	}
}

func BenchmarkTable2Locate(b *testing.B) {
	const s = 8
	docs := benchDocs(1<<16, 16, 5)
	ps := textgen.NewPatternSampler(docs, 6)
	pats := ps.PlantedSet(32, 6)

	ours := core.NewWorstCase(core.Options{Builder: benchFM(s), Inline: true})
	for _, d := range docs {
		ours.Insert(d)
	}
	b.Run("T2+FM", func(b *testing.B) {
		occ := 0
		for i := 0; i < b.N; i++ {
			ours.FindFunc(pats[i%len(pats)], func(core.Occurrence) bool {
				occ++
				return occ%64 != 0 // sample a bounded prefix per query
			})
		}
	})

	base := baseline.NewDynFM(s)
	for _, d := range docs {
		base.Insert(d)
	}
	b.Run("DynFM-baseline", func(b *testing.B) {
		occ := 0
		for i := 0; i < b.N; i++ {
			base.FindFunc(pats[i%len(pats)], func(baseline.Occurrence) bool {
				occ++
				return occ%64 != 0
			})
		}
	})
}

// --- Table 3: O(n log σ)-bit indexes, σ=4, long patterns ---

func BenchmarkTable3LongPatterns(b *testing.B) {
	docs := benchDocs(1<<16, 4, 7)
	ps := textgen.NewPatternSampler(docs, 8)

	ours := core.NewWorstCase(core.Options{
		Builder: func(ds []doc.Doc) core.StaticIndex { return fmindex.BuildSA(ds) },
		Inline:  true,
	})
	base := baseline.NewDynFM(16)
	for _, d := range docs {
		ours.Insert(d)
		base.Insert(d)
	}
	for _, plen := range []int{8, 128} {
		pats := ps.PlantedSet(32, plen)
		b.Run(fmt.Sprintf("T2+SA/P=%d", plen), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ours.Count(pats[i%len(pats)])
			}
		})
		b.Run(fmt.Sprintf("DynFM/P=%d", plen), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				base.Count(pats[i%len(pats)])
			}
		})
	}
}

// --- Table 4: counting with and without the Theorem 1 structures ---

func BenchmarkTable4Counting(b *testing.B) {
	docs := benchDocs(1<<17, 16, 9)
	ps := textgen.NewPatternSampler(docs, 10)
	pats := ps.PlantedSet(32, 2) // short → occ ≫ log n
	for _, counting := range []bool{true, false} {
		a := core.NewAmortized(core.Options{Builder: benchFM(8), Counting: counting})
		for _, d := range docs {
			a.Insert(d)
		}
		b.Run(fmt.Sprintf("counting=%v", counting), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				a.Count(pats[i%len(pats)])
			}
		})
	}
}

// --- Figures 2–3: per-update foreground work, T1 vs T2 ---

func BenchmarkFig23UpdateLatency(b *testing.B) {
	mks := map[string]func() bench2Index{
		"T1": func() bench2Index {
			return core.NewAmortized(core.Options{Builder: benchFM(8)})
		},
		"T2": func() bench2Index {
			return core.NewWorstCase(core.Options{Builder: benchFM(8)})
		},
	}
	for name, mk := range mks {
		b.Run(name, func(b *testing.B) {
			gen := textgen.NewCollection(textgen.CollectionOptions{
				Sigma: 16, MinLen: 128, MaxLen: 512, Seed: 11,
			})
			idx := mk()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				idx.Insert(gen.NextDoc())
			}
			b.StopTimer()
			if w, ok := idx.(*core.WorstCase); ok {
				w.WaitIdle()
			}
		})
	}
}

// --- Theorem 2: binary relation operations ---

func BenchmarkTheorem2Relation(b *testing.B) {
	r, err := NewRelation()
	if err != nil {
		b.Fatal(err)
	}
	src := textgen.NewSource(255, 0, 0.7, 12)
	stream := src.Generate(1 << 18)
	added := 0
	for i := 0; added < 1<<16 && i < len(stream); i++ {
		if r.Add(uint64(i%(1<<13)), uint64(stream[i])) == nil {
			added++
		}
	}
	b.Run("related", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r.Related(uint64(i%(1<<13)), uint64(i%256))
		}
	})
	b.Run("count-objects", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r.CountObjects(uint64(i % 256))
		}
	})
	b.Run("report-labels", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			r.LabelsOf(uint64(i%(1<<13)), func(uint64) bool { return true })
		}
	})
	b.Run("add-delete", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			o, l := uint64(1<<20+i), uint64(i%256)
			r.Add(o, l)
			r.Delete(o, l)
		}
	})
}

// --- Theorem 3: graph operations ---

func BenchmarkTheorem3Graph(b *testing.B) {
	g, err := NewGraph()
	if err != nil {
		b.Fatal(err)
	}
	src := textgen.NewSource(255, 0, 0.6, 13)
	stream := src.Generate(1 << 18)
	added := 0
	for i := 0; added < 1<<15 && i+1 < len(stream); i += 2 {
		u := uint64(stream[i]) << 4
		v := uint64(stream[i+1]) + uint64(i%16)<<8
		if g.AddEdge(u, v) == nil {
			added++
		}
	}
	b.Run("has-edge", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g.HasEdge(uint64(i%4096), uint64(i%4096))
		}
	})
	b.Run("neighbors", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g.NeighborsFunc(uint64(i%4096), func(uint64) bool { return true })
		}
	})
	b.Run("in-degree", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			g.InDegree(uint64(i % 4096))
		}
	})
}

// --- Engine unification: relation/graph benches on the shared ladder ---

// BenchmarkRelationIngest measures pair-insertion throughput under both
// engine schedulings — the amortized cascades and the worst-case
// background pipeline Relation gained from the generic engine.
func BenchmarkRelationIngest(b *testing.B) {
	for _, tf := range []struct {
		name string
		t    Transformation
	}{{"amortized", Amortized}, {"worstcase", WorstCase}} {
		b.Run(tf.name, func(b *testing.B) {
			r, err := NewRelation(WithTransformation(tf.t), WithSyncRebuilds())
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				r.Add(uint64(i), uint64(i%509))
			}
			b.StopTimer()
			r.WaitIdle()
		})
	}
}

// BenchmarkGraphSuccessors measures out-neighbor enumeration on a
// preloaded graph: the hot read path BFS/PageRank-style workloads sit
// in, fanning out over the engine's live sub-collections.
func BenchmarkGraphSuccessors(b *testing.B) {
	const nodes = 1 << 12
	g, err := NewGraph(WithSyncRebuilds())
	if err != nil {
		b.Fatal(err)
	}
	src := textgen.NewSource(255, 0, 0.6, 21)
	stream := src.Generate(1 << 17)
	for i := 0; i+1 < len(stream); i += 2 {
		u := uint64(stream[i])<<4 | uint64(i%16)
		v := uint64(stream[i+1]) | uint64(i%64)<<8
		g.AddEdge(u%nodes, v)
	}
	g.WaitIdle()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for range g.Successors(uint64(i % nodes)) {
		}
	}
}

// BenchmarkRelationFanOut measures the label-keyed queries that cannot
// be routed to one shard (ObjectsOf/CountObjects) against the shard
// count: each query fans out across all shards in parallel goroutines,
// and per-shard read locks let concurrent clients overlap.
func BenchmarkRelationFanOut(b *testing.B) {
	const pairs = 1 << 16
	for _, shards := range []int{1, 2, 4, 8} {
		r, err := NewRelation(WithShards(shards), WithSyncRebuilds())
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < pairs; i++ {
			r.Add(uint64(i), uint64(i%251))
		}
		r.WaitIdle()
		b.Run(fmt.Sprintf("serial/shards=%d", shards), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r.ObjectsOf(uint64(i%251), func(uint64) bool { return true })
			}
		})
		b.Run(fmt.Sprintf("clients/shards=%d", shards), func(b *testing.B) {
			var next atomic.Int64
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					i := next.Add(1)
					r.ObjectsOf(uint64(i%251), func(uint64) bool { return true })
				}
			})
		})
	}
}

// --- Table 1 addendum: the Ψ-CSA family ([39]) vs the FM-index ---

func BenchmarkTable1CSARange(b *testing.B) {
	docs := benchDocs(1<<17, 16, 1)
	ps := textgen.NewPatternSampler(docs, 2)
	pats := ps.PlantedSet(64, 8)
	csa := fmindex.BuildCSA(docs, fmindex.Options{SampleRate: 16})
	b.Run("CSA", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			csa.Range(pats[i%len(pats)])
		}
	})
	fm := fmindex.Build(docs, fmindex.Options{SampleRate: 16})
	b.Run("FM", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			fm.Range(pats[i%len(pats)])
		}
	})
}

func BenchmarkTable1CSAExtract(b *testing.B) {
	docs := benchDocs(1<<17, 16, 1)
	csa := fmindex.BuildCSA(docs, fmindex.Options{SampleRate: 16})
	b.Run("CSA", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			csa.Extract(i%csa.DocCount(), 8, 64)
		}
	})
}

// --- v2.1 sharding: parallel fan-out queries and concurrent ingest ---

// shardedBench builds a collection with the given shard count (0 =
// unsharded) pre-loaded with the corpus.
func shardedBench(b *testing.B, shards int, docs []Document) *Collection {
	b.Helper()
	opts := []Option{WithSyncRebuilds()}
	if shards > 0 {
		opts = append(opts, WithShards(shards))
	}
	c, err := NewCollection(opts...)
	if err != nil {
		b.Fatal(err)
	}
	if err := c.InsertBatch(docs); err != nil {
		b.Fatal(err)
	}
	c.WaitIdle()
	return c
}

// BenchmarkFindParallel measures query throughput against the shard
// count. "serial" is one client issuing queries back to back: each
// query fans out across all shards in parallel goroutines, so latency
// drops as shards divide the corpus (needs ≥ shard-count cores to show
// fully). "clients" is GOMAXPROCS concurrent clients via b.RunParallel:
// per-shard read locks let all of them query simultaneously, which the
// unsharded structure cannot do at all — shards=1 is the concurrency-
// safe floor.
func BenchmarkFindParallel(b *testing.B) {
	docs := benchDocs(1<<17, 16, 17)
	ps := textgen.NewPatternSampler(docs, 18)
	pats := ps.PlantedSet(64, 8)
	heavyPats := ps.PlantedSet(8, 2)
	for _, shards := range []int{0, 1, 2, 4, 8} {
		c := shardedBench(b, shards, docs)
		name := "unsharded"
		if shards > 0 {
			name = fmt.Sprintf("shards=%d", shards)
		}
		b.Run("serial/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c.FindFunc(pats[i%len(pats)], func(Occurrence) bool { return true })
			}
		})
		// Heavy patterns (length 2 over σ=16 ⇒ ~512 occurrences each)
		// stress the fan-out's per-value merge cost rather than the
		// backward search; this is the case the chunked emission of
		// fanOut exists for.
		b.Run("serial-heavy/"+name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				c.FindFunc(heavyPats[i%len(heavyPats)], func(Occurrence) bool { return true })
			}
		})
		if shards > 0 { // the unsharded collection is not concurrency-safe
			b.Run("clients/"+name, func(b *testing.B) {
				var next atomic.Int64
				b.RunParallel(func(pb *testing.PB) {
					for pb.Next() {
						i := int(next.Add(1))
						c.FindFunc(pats[i%len(pats)], func(Occurrence) bool { return true })
					}
				})
			})
		}
	}
}

// BenchmarkFanOut isolates the fan-out merge machinery from any index
// work: p synthetic producers each stream 8192 values into one
// consumer. This is the per-value overhead every sharded enumeration
// (FindFunc, ObjectsOf, PairsFunc, …) pays on top of its actual query
// cost.
func BenchmarkFanOut(b *testing.B) {
	const perShard = 1 << 13
	for _, p := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("p=%d", p), func(b *testing.B) {
			total := 0
			for i := 0; i < b.N; i++ {
				fanout.FanOut(p, func(i int, emit func(int) bool) {
					for v := 0; v < perShard; v++ {
						if !emit(v) {
							return
						}
					}
				}, func(int) bool { total++; return true })
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(p*perShard), "ns/value")
		})
	}
}

// BenchmarkIngestSharded measures bulk InsertBatch against the shard
// count: the batch splits per shard and the per-shard ingests (C0
// insertion + rebuild cascades) run concurrently.
func BenchmarkIngestSharded(b *testing.B) {
	const nDocs = 1024
	gen := textgen.NewCollection(textgen.CollectionOptions{
		Sigma: 16, MinLen: 64, MaxLen: 256, Seed: 37,
	})
	docs := make([]Document, nDocs)
	syms := 0
	for i := range docs {
		docs[i] = gen.NextDoc()
		syms += len(docs[i].Data)
	}
	for _, shards := range []int{0, 2, 4, 8} {
		name := "unsharded"
		if shards > 0 {
			name = fmt.Sprintf("shards=%d", shards)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opts := []Option{WithSyncRebuilds()}
				if shards > 0 {
					opts = append(opts, WithShards(shards))
				}
				c, err := NewCollection(opts...)
				if err != nil {
					b.Fatal(err)
				}
				if err := c.InsertBatch(docs); err != nil {
					b.Fatal(err)
				}
				c.WaitIdle()
			}
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(syms), "ns/symbol")
		})
	}
}

// --- v2.4 query layer: regex search and ranked top-k ---

// BenchmarkRegexSearch measures regex execution against the planner's
// two regimes over the same preloaded sharded corpus. "planned" is a
// selective expression built around a planted literal, so the required-
// literal analysis filters candidates through the index and only a few
// documents are verified. "scan" is an expression the analysis cannot
// extract literals from (case-folded letters are rejected), so every
// document is verified with the regexp engine — the fallback's full
// price.
func BenchmarkRegexSearch(b *testing.B) {
	docs := benchDocs(1<<17, 16, 41)
	ps := textgen.NewPatternSampler(docs, 42)
	pats := ps.PlantedSet(16, 8)
	c := shardedBench(b, 4, docs)
	exprs := []struct{ name, expr string }{}
	for i, p := range pats[:4] {
		// p[4] generalizes to a wildcard: still selective, still planned.
		expr := "(?s)" + regexp.QuoteMeta(string(p[:4])) + "." + regexp.QuoteMeta(string(p[5:]))
		exprs = append(exprs, struct{ name, expr string }{fmt.Sprintf("planned/%d", i), expr})
	}
	for _, e := range exprs {
		it, err := c.FindRegexp(e.expr)
		if err != nil {
			b.Fatal(err)
		}
		n := 0
		for range it {
			n++
		}
		if n == 0 {
			b.Fatalf("%s: planted pattern found no matches", e.name)
		}
	}
	b.Run("planned", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			it, err := c.FindRegexp(exprs[i%len(exprs)].expr)
			if err != nil {
				b.Fatal(err)
			}
			for range it {
			}
		}
	})
	b.Run("scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			// (?i) folds the literal, which the analysis must reject; the
			// alphabet is 1..16 so the expression matches nothing and the
			// measured cost is pure per-document verification.
			it, err := c.FindRegexp(`(?i)zzzq`)
			if err != nil {
				b.Fatal(err)
			}
			for range it {
			}
		}
	})
}

// BenchmarkTopK measures the ranked pipeline's k-bound win: FindTopK
// with small k keeps a bounded heap per shard and transfers at most k
// entries per level, where the exhaustive baseline finds every
// occurrence, aggregates per document, scores, and fully sorts — the
// work any caller without the ranked path would do.
func BenchmarkTopK(b *testing.B) {
	// Many small documents and a dense sample rate: the per-occurrence
	// Locate cost (paid identically by both sides) stays low, so the
	// aggregation the two sides actually differ in — bounded heap vs
	// materialize-map-sort — is visible in the totals.
	gen := textgen.NewCollection(textgen.CollectionOptions{
		Sigma: 16, Order: 1, Skew: 0.6, MinLen: 64, MaxLen: 192, Seed: 43,
	})
	gen.GenerateTotal(1 << 18)
	docs := gen.Docs
	ps := textgen.NewPatternSampler(docs, 44)
	pats := ps.PlantedSet(8, 2) // heavy: most documents match
	c, err := NewCollection(WithSyncRebuilds(), WithShards(4), WithSampleRate(4))
	if err != nil {
		b.Fatal(err)
	}
	if err := c.InsertBatch(docs); err != nil {
		b.Fatal(err)
	}
	c.WaitIdle()
	for _, k := range []int{10, 100} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for range c.FindTopK(pats[i%len(pats)], k) {
				}
			}
		})
	}
	b.Run("exhaustive", func(b *testing.B) {
		type agg struct {
			count    int
			firstOff int
		}
		for i := 0; i < b.N; i++ {
			pat := pats[i%len(pats)]
			aggs := make(map[uint64]*agg)
			for _, o := range c.Find(pat) {
				a := aggs[o.DocID]
				if a == nil {
					aggs[o.DocID] = &agg{count: 1, firstOff: o.Off}
					continue
				}
				a.count++
				if o.Off < a.firstOff {
					a.firstOff = o.Off
				}
			}
			ranked := make([]Match, 0, len(aggs))
			for id, a := range aggs {
				n, _ := c.DocLen(id)
				ranked = append(ranked, Match{
					Doc: id, Off: a.firstOff, Len: len(pat),
					Score: query.Score(n, a.count, a.firstOff),
				})
			}
			slices.SortFunc(ranked, func(x, y Match) int {
				switch {
				case x.Score > y.Score:
					return -1
				case x.Score < y.Score:
					return 1
				case x.Doc < y.Doc:
					return -1
				case x.Doc > y.Doc:
					return 1
				}
				return 0
			})
		}
	})
}

// --- v2 API: batch ingest vs looped single inserts ---

// BenchmarkInsertBatch measures the headline batch win: one InsertBatch
// call validates up front and triggers at most one rebuild cascade,
// where the equivalent Insert loop pays a cascade per document.
func BenchmarkInsertBatch(b *testing.B) {
	for _, nDocs := range []int{256, 1024} {
		gen := textgen.NewCollection(textgen.CollectionOptions{
			Sigma: 16, MinLen: 64, MaxLen: 256, Seed: 31,
		})
		docs := make([]Document, nDocs)
		syms := 0
		for i := range docs {
			docs[i] = gen.NextDoc()
			syms += len(docs[i].Data)
		}
		for _, mode := range []string{"looped", "batch"} {
			b.Run(fmt.Sprintf("%s/docs=%d", mode, nDocs), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					c, err := NewCollection(WithSyncRebuilds())
					if err != nil {
						b.Fatal(err)
					}
					if mode == "batch" {
						if err := c.InsertBatch(docs); err != nil {
							b.Fatal(err)
						}
					} else {
						for _, d := range docs {
							if err := c.Insert(d); err != nil {
								b.Fatal(err)
							}
						}
					}
					c.WaitIdle()
				}
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(syms), "ns/symbol")
			})
		}
	}
}
