// Package sa provides suffix-array construction, the Burrows–Wheeler
// transform, and LCP arrays — the construction substrate behind every
// static index in this repository.
//
// Two construction algorithms are included:
//
//   - SA-IS (Nong, Zhang, Chan 2009): linear-time induced sorting, the
//     production path;
//   - prefix doubling (Manber–Myers flavour, O(n log n) with radix-free
//     sort.Slice comparisons): a compact reference used to cross-check
//     SA-IS in property tests.
//
// The paper's Transformations require a "(u(n), w(n))-constructible"
// static index; SA-IS gives u(n)=O(1) for the suffix-sorting step, which
// dominates index construction together with the O(n log σ) wavelet-tree
// build.
package sa

// Workspace holds reusable construction buffers for repeated suffix-
// array builds. The engine's rebuild pipeline constructs thousands of
// static indexes over its lifetime; routing them through a workspace
// replaces the O(n) (and recursive o(n)) allocations of every build
// with buffer reuse. The zero value is ready to use. A Workspace is
// not safe for concurrent use; pool one per build goroutine.
type Workspace struct {
	t, sa []int32   // top-level text and suffix buffers
	ints  [][]int32 // free list for recursion scratch
	bools [][]bool
}

func (w *Workspace) getInts(n int) []int32 {
	for i := len(w.ints) - 1; i >= 0; i-- {
		if cap(w.ints[i]) >= n {
			b := w.ints[i][:n]
			w.ints = append(w.ints[:i], w.ints[i+1:]...)
			return b
		}
	}
	return make([]int32, n)
}

func (w *Workspace) putInts(b []int32) {
	if cap(b) > 0 && len(w.ints) < 16 {
		w.ints = append(w.ints, b[:0])
	}
}

func (w *Workspace) getBools(n int) []bool {
	for i := len(w.bools) - 1; i >= 0; i-- {
		if cap(w.bools[i]) >= n {
			b := w.bools[i][:n]
			w.bools = append(w.bools[:i], w.bools[i+1:]...)
			return b
		}
	}
	return make([]bool, n)
}

func (w *Workspace) putBools(b []bool) {
	if cap(b) > 0 && len(w.bools) < 16 {
		w.bools = append(w.bools, b[:0])
	}
}

// Grow returns buf resized to n, reallocating only when capacity is
// insufficient; the returned contents are unspecified. Shared by every
// scratch-buffer consumer of the build pipeline (this package's
// workspace, fmindex's pooled build scratch).
func Grow[T any](buf []T, n int) []T {
	if cap(buf) < n {
		return make([]T, n)
	}
	return buf[:n]
}

// SuffixArray returns the suffix array of text: a permutation sa of
// [0,len(text)) such that the suffixes text[sa[0]:] < text[sa[1]:] < …
// in lexicographic order. Bytes compare unsigned. The implicit suffix
// ordering treats the end of the text as smaller than any byte (the usual
// sentinel convention).
func SuffixArray(text []byte) []int32 {
	n := len(text)
	if n == 0 {
		return nil
	}
	out := make([]int32, n)
	copy(out, SuffixArrayWS(text, &Workspace{}))
	return out
}

// SuffixArrayWS is SuffixArray computed through a reusable workspace.
// The returned slice is owned by ws: it stays valid only until the next
// build through the same workspace, and callers must copy anything they
// keep.
func SuffixArrayWS(text []byte, ws *Workspace) []int32 {
	n := len(text)
	if n == 0 {
		return nil
	}
	// Shift the alphabet by one so 0 is free for the sentinel.
	ws.t = Grow(ws.t, n+1)
	t := ws.t
	for i, b := range text {
		t[i] = int32(b) + 1
	}
	t[n] = 0
	ws.sa = Grow(ws.sa, n+1)
	saIS(t, ws.sa, 257, ws)
	// sa[0] is the sentinel suffix; drop it.
	return ws.sa[1:]
}

// SuffixArrayInts is SuffixArray over an integer text with symbols in
// [0, sigma). The end of the text is treated as a sentinel smaller than
// any symbol.
func SuffixArrayInts(text []int32, sigma int) []int32 {
	n := len(text)
	if n == 0 {
		return nil
	}
	t := make([]int32, n+1)
	for i, v := range text {
		if v < 0 || int(v) >= sigma {
			panic("sa: symbol out of alphabet range")
		}
		t[i] = v + 1
	}
	t[n] = 0
	sa := make([]int32, n+1)
	saIS(t, sa, sigma+1, &Workspace{})
	out := make([]int32, n)
	copy(out, sa[1:])
	return out
}

// saIS computes the suffix array of t into sa. t must end with a unique
// smallest sentinel (value 0 occurring exactly once, at the end), and
// symbols lie in [0, sigma). Scratch buffers come from ws and return to
// it, across recursion levels too.
func saIS(t []int32, sa []int32, sigma int, ws *Workspace) {
	n := len(t)
	if n == 1 {
		sa[0] = 0
		return
	}
	// Classify suffixes: S-type (true) or L-type (false).
	isS := ws.getBools(n)
	isS[n-1] = true
	for i := n - 2; i >= 0; i-- {
		isS[i] = t[i] < t[i+1] || (t[i] == t[i+1] && isS[i+1])
	}
	isLMS := func(i int) bool { return i > 0 && isS[i] && !isS[i-1] }

	// Count symbol frequencies once; bucket heads/tails are O(sigma)
	// prefix sums over the counts, so re-deriving them for every induce
	// pass no longer costs an O(n) recount each time.
	cnt := ws.getInts(sigma)
	for i := range cnt {
		cnt[i] = 0
	}
	for _, c := range t {
		cnt[c]++
	}
	bkt := ws.getInts(sigma)
	bucketHeads := func() {
		var s int32
		for c := 0; c < sigma; c++ {
			bkt[c] = s
			s += cnt[c]
		}
	}
	bucketTails := func() {
		var s int32
		for c := 0; c < sigma; c++ {
			s += cnt[c]
			bkt[c] = s
		}
	}

	induce := func() {
		// Induce L-type suffixes left to right.
		bucketHeads()
		for i := 0; i < n; i++ {
			j := sa[i] - 1
			if sa[i] > 0 && !isS[j] {
				sa[bkt[t[j]]] = j
				bkt[t[j]]++
			}
		}
		// Induce S-type suffixes right to left.
		bucketTails()
		for i := n - 1; i >= 0; i-- {
			j := sa[i] - 1
			if sa[i] > 0 && isS[j] {
				bkt[t[j]]--
				sa[bkt[t[j]]] = j
			}
		}
	}

	// Step 1: place LMS suffixes at bucket tails in text order, induce.
	for i := range sa {
		sa[i] = -1
	}
	bucketTails()
	for i := 1; i < n; i++ {
		if isLMS(i) {
			bkt[t[i]]--
			sa[bkt[t[i]]] = int32(i)
		}
	}
	induce()

	// Step 2: compact the sorted LMS substrings and name them.
	nLMS := 0
	for i := 0; i < n; i++ {
		if isLMS(int(sa[i])) {
			sa[nLMS] = sa[i]
			nLMS++
		}
	}
	// Name buffer in the upper half of sa.
	names := sa[nLMS:]
	for i := range names {
		names[i] = -1
	}
	lmsEqual := func(a, b int) bool {
		// Compare LMS substrings starting at a and b.
		if t[a] != t[b] {
			return false
		}
		for i := 1; ; i++ {
			aEnd, bEnd := isLMS(a+i), isLMS(b+i)
			if aEnd && bEnd {
				return true
			}
			if aEnd != bEnd || t[a+i] != t[b+i] {
				return false
			}
		}
	}
	var name int32 = -1
	prev := -1
	for i := 0; i < nLMS; i++ {
		pos := int(sa[i])
		if prev < 0 || !lmsEqual(prev, pos) {
			name++
		}
		prev = pos
		names[pos/2] = name
	}
	// Collect names in text order.
	lmsPos := ws.getInts(nLMS)[:0]
	reduced := ws.getInts(nLMS)[:0]
	for i := 1; i < n; i++ {
		if isLMS(i) {
			lmsPos = append(lmsPos, int32(i))
			reduced = append(reduced, names[i/2])
		}
	}

	// Step 3: sort the reduced problem.
	sortedLMS := ws.getInts(nLMS)
	if int(name)+1 == nLMS {
		// All names unique: order directly.
		for i, nm := range reduced {
			sortedLMS[nm] = int32(i)
		}
	} else {
		sub := ws.getInts(nLMS)
		saIS(reduced, sub, int(name)+1, ws)
		copy(sortedLMS, sub)
		ws.putInts(sub)
	}

	// Step 4: place LMS suffixes in their final relative order, induce.
	for i := range sa {
		sa[i] = -1
	}
	bucketTails()
	for i := nLMS - 1; i >= 0; i-- {
		j := lmsPos[sortedLMS[i]]
		bkt[t[j]]--
		sa[bkt[t[j]]] = j
	}
	induce()
	ws.putInts(lmsPos)
	ws.putInts(reduced)
	ws.putInts(sortedLMS)
	ws.putInts(bkt)
	ws.putInts(cnt)
	ws.putBools(isS)
}
