package sa

import "sort"

// SuffixArrayDoubling computes the suffix array by prefix doubling in
// O(n log² n) time. It is retained as an independent reference
// implementation for property-testing SA-IS; production callers should
// use SuffixArray.
func SuffixArrayDoubling(text []byte) []int32 {
	n := len(text)
	if n == 0 {
		return nil
	}
	sa := make([]int32, n)
	rank := make([]int32, n)
	tmp := make([]int32, n)
	for i := 0; i < n; i++ {
		sa[i] = int32(i)
		rank[i] = int32(text[i])
	}
	for k := 1; ; k *= 2 {
		key := func(i int32) (int32, int32) {
			second := int32(-1)
			if int(i)+k < n {
				second = rank[int(i)+k]
			}
			return rank[i], second
		}
		sort.Slice(sa, func(a, b int) bool {
			f1, s1 := key(sa[a])
			f2, s2 := key(sa[b])
			if f1 != f2 {
				return f1 < f2
			}
			return s1 < s2
		})
		tmp[sa[0]] = 0
		for i := 1; i < n; i++ {
			f1, s1 := key(sa[i-1])
			f2, s2 := key(sa[i])
			tmp[sa[i]] = tmp[sa[i-1]]
			if f1 != f2 || s1 != s2 {
				tmp[sa[i]]++
			}
		}
		copy(rank, tmp)
		if int(rank[sa[n-1]]) == n-1 {
			break
		}
	}
	return sa
}

// Inverse returns the inverse permutation of sa: inv[sa[i]] = i.
func Inverse(sa []int32) []int32 {
	inv := make([]int32, len(sa))
	for i, p := range sa {
		inv[p] = int32(i)
	}
	return inv
}

// LCP computes the longest-common-prefix array by Kasai's algorithm:
// lcp[i] is the length of the longest common prefix of the suffixes at
// sa[i-1] and sa[i]; lcp[0] = 0.
func LCP(text []byte, sa []int32) []int32 {
	n := len(text)
	lcp := make([]int32, n)
	if n == 0 {
		return lcp
	}
	inv := Inverse(sa)
	h := 0
	for i := 0; i < n; i++ {
		if inv[i] > 0 {
			j := int(sa[inv[i]-1])
			for i+h < n && j+h < n && text[i+h] == text[j+h] {
				h++
			}
			lcp[inv[i]] = int32(h)
			if h > 0 {
				h--
			}
		} else {
			h = 0
		}
	}
	return lcp
}

// BWT computes the Burrows–Wheeler transform of text with an implicit
// sentinel: the returned slice has length len(text)+1, the sentinel is
// represented by the byte 0 at the row whose suffix starts at position 0,
// and the first returned value is the index of that sentinel row.
//
// Concretely, row 0 of the conceptual sorted rotation matrix is the
// sentinel suffix; bwt[i] = text[sa'[i]-1] where sa' is the suffix array
// of text+sentinel, and bwt[i] = 0 when sa'[i] == 0.
func BWT(text []byte) (sentinelRow int, bwt []byte) {
	n := len(text)
	bwt = make([]byte, n+1)
	if n == 0 {
		return 0, bwt
	}
	sa := SuffixArray(text)
	// Row 0 is the sentinel suffix (empty): preceded by the last byte.
	bwt[0] = text[n-1]
	for i, p := range sa {
		if p == 0 {
			sentinelRow = i + 1
			bwt[i+1] = 0
		} else {
			bwt[i+1] = text[p-1]
		}
	}
	return sentinelRow, bwt
}

// InverseBWT reconstructs the original text from a BWT produced by BWT.
func InverseBWT(sentinelRow int, bwt []byte) []byte {
	n := len(bwt)
	if n <= 1 {
		return nil
	}
	// LF mapping via counting sort of (symbol, occurrence).
	var counts [256]int
	for _, b := range bwt {
		counts[b]++
	}
	var c [256]int
	sum := 0
	for s := 0; s < 256; s++ {
		c[s] = sum
		sum += counts[s]
	}
	occ := make([]int, n)
	var seen [256]int
	for i, b := range bwt {
		occ[i] = seen[b]
		seen[b]++
	}
	// Row 0 is the sentinel suffix; its BWT char is the last text byte.
	// Walking LF emits the text right to left and must end at the row of
	// the suffix starting at position 0, i.e. sentinelRow.
	out := make([]byte, n-1)
	row := 0
	for i := n - 2; i >= 0; i-- {
		b := bwt[row]
		out[i] = b
		row = c[b] + occ[row]
	}
	if row != sentinelRow {
		panic("sa: InverseBWT: inconsistent sentinel row")
	}
	return out
}
