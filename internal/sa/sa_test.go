package sa

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// naiveSA sorts suffixes directly.
func naiveSA(text []byte) []int32 {
	n := len(text)
	sa := make([]int32, n)
	for i := range sa {
		sa[i] = int32(i)
	}
	sort.Slice(sa, func(a, b int) bool {
		return bytes.Compare(text[sa[a]:], text[sa[b]:]) < 0
	})
	return sa
}

func equal32(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func randomText(rng *rand.Rand, n, sigma int) []byte {
	t := make([]byte, n)
	for i := range t {
		t[i] = byte(1 + rng.Intn(sigma))
	}
	return t
}

func TestSuffixArrayKnown(t *testing.T) {
	cases := []struct {
		text string
		want []int32
	}{
		{"", nil},
		{"a", []int32{0}},
		{"aa", []int32{1, 0}},
		{"ab", []int32{0, 1}},
		{"ba", []int32{1, 0}},
		{"banana", []int32{5, 3, 1, 0, 4, 2}},
		{"mississippi", []int32{10, 7, 4, 1, 0, 9, 8, 6, 3, 5, 2}},
		{"abracadabra", []int32{10, 7, 0, 3, 5, 8, 1, 4, 6, 9, 2}},
	}
	for _, c := range cases {
		got := SuffixArray([]byte(c.text))
		if !equal32(got, c.want) {
			t.Errorf("SuffixArray(%q) = %v, want %v", c.text, got, c.want)
		}
	}
}

func TestSuffixArrayAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 3, 10, 100, 1000, 5000} {
		for _, sigma := range []int{1, 2, 4, 26, 255} {
			text := randomText(rng, n, sigma)
			got := SuffixArray(text)
			want := naiveSA(text)
			if !equal32(got, want) {
				t.Fatalf("n=%d sigma=%d: SA-IS disagrees with naive\ntext=%q", n, sigma, text)
			}
		}
	}
}

func TestDoublingAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{1, 10, 500, 2000} {
		for _, sigma := range []int{1, 2, 26} {
			text := randomText(rng, n, sigma)
			if !equal32(SuffixArrayDoubling(text), naiveSA(text)) {
				t.Fatalf("n=%d sigma=%d: doubling disagrees with naive", n, sigma)
			}
		}
	}
}

func TestQuickSAISvsDoubling(t *testing.T) {
	f := func(seed int64, nRaw uint16, sigmaRaw uint8) bool {
		n := int(nRaw)%3000 + 1
		sigma := int(sigmaRaw)%255 + 1
		text := randomText(rand.New(rand.NewSource(seed)), n, sigma)
		return equal32(SuffixArray(text), SuffixArrayDoubling(text))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPathologicalTexts(t *testing.T) {
	texts := [][]byte{
		bytes.Repeat([]byte{7}, 4096),                       // unary
		bytes.Repeat([]byte{1, 2}, 2048),                    // period 2
		bytes.Repeat([]byte{1, 1, 2}, 1365),                 // period 3
		append(bytes.Repeat([]byte{9}, 2000), 1),            // run then drop
		append([]byte{1}, bytes.Repeat([]byte{9}, 2000)...), // rise then run
	}
	// Fibonacci string (highly repetitive, stresses LMS recursion).
	fa, fb := []byte("a"), []byte("ab")
	for len(fb) < 4000 {
		fa, fb = fb, append(append([]byte{}, fb...), fa...)
	}
	texts = append(texts, fb)
	for i, text := range texts {
		if !equal32(SuffixArray(text), naiveSA(text)) {
			t.Fatalf("pathological text %d: SA-IS wrong", i)
		}
	}
}

func TestSuffixArrayInts(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, sigma := range []int{2, 300, 100000} {
		n := 2000
		text := make([]int32, n)
		bytesRep := make([]int, n)
		for i := range text {
			v := rng.Intn(sigma)
			text[i] = int32(v)
			bytesRep[i] = v
		}
		got := SuffixArrayInts(text, sigma)
		// Naive check via slice comparison.
		want := make([]int32, n)
		for i := range want {
			want[i] = int32(i)
		}
		less := func(a, b int32) bool {
			for x, y := int(a), int(b); ; x, y = x+1, y+1 {
				if x == n {
					return true
				}
				if y == n {
					return false
				}
				if text[x] != text[y] {
					return text[x] < text[y]
				}
			}
		}
		sort.Slice(want, func(i, j int) bool { return less(want[i], want[j]) })
		if !equal32(got, want) {
			t.Fatalf("sigma=%d: SuffixArrayInts wrong", sigma)
		}
	}
}

func TestInverse(t *testing.T) {
	text := []byte("the quick brown fox jumps over the lazy dog")
	sa := SuffixArray(text)
	inv := Inverse(sa)
	for i, p := range sa {
		if inv[p] != int32(i) {
			t.Fatalf("inverse broken at %d", i)
		}
	}
}

func TestLCPAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, sigma := range []int{1, 2, 4, 26} {
		text := randomText(rng, 1500, sigma)
		saArr := SuffixArray(text)
		lcp := LCP(text, saArr)
		for i := 1; i < len(saArr); i++ {
			a, b := text[saArr[i-1]:], text[saArr[i]:]
			want := 0
			for want < len(a) && want < len(b) && a[want] == b[want] {
				want++
			}
			if int(lcp[i]) != want {
				t.Fatalf("sigma=%d: lcp[%d]=%d, want %d", sigma, i, lcp[i], want)
			}
		}
		if lcp[0] != 0 {
			t.Fatal("lcp[0] must be 0")
		}
	}
}

func TestBWTRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	texts := [][]byte{
		nil,
		[]byte("a"),
		[]byte("banana"),
		[]byte("mississippi"),
		randomText(rng, 1000, 4),
		randomText(rng, 1000, 255),
		bytes.Repeat([]byte{42}, 500),
	}
	for i, text := range texts {
		row, bwt := BWT(text)
		back := InverseBWT(row, bwt)
		if !bytes.Equal(back, text) {
			t.Fatalf("text %d: BWT round trip failed: got %q want %q", i, back, text)
		}
	}
}

func TestBWTKnown(t *testing.T) {
	// BWT of "banana" with sentinel: annb$aa where $ is byte 0.
	row, bwt := BWT([]byte("banana"))
	want := []byte{'a', 'n', 'n', 'b', 0, 'a', 'a'}
	if !bytes.Equal(bwt, want) {
		t.Fatalf("BWT(banana) = %q, want %q", bwt, want)
	}
	if bwt[row] != 0 {
		t.Fatalf("sentinel row %d does not hold sentinel", row)
	}
}

func TestQuickBWTRoundTrip(t *testing.T) {
	f := func(seed int64, nRaw uint16, sigmaRaw uint8) bool {
		n := int(nRaw) % 3000
		sigma := int(sigmaRaw)%255 + 1
		text := randomText(rand.New(rand.NewSource(seed)), n, sigma)
		row, bwt := BWT(text)
		return bytes.Equal(InverseBWT(row, bwt), text)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSAIS(b *testing.B) {
	text := randomText(rand.New(rand.NewSource(6)), 1<<20, 64)
	b.SetBytes(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SuffixArray(text)
	}
}

func BenchmarkDoubling(b *testing.B) {
	text := randomText(rand.New(rand.NewSource(7)), 1<<16, 64)
	b.SetBytes(1 << 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SuffixArrayDoubling(text)
	}
}
