package huffman

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCodeLengthsBasic(t *testing.T) {
	// Classic example: weights 1,1,2,4 → lengths 3,3,2,1.
	lens := CodeLengths([]int64{1, 1, 2, 4})
	want := []int{3, 3, 2, 1}
	for i := range want {
		if lens[i] != want[i] {
			t.Fatalf("lens=%v, want %v", lens, want)
		}
	}
}

func TestCodeLengthsDegenerate(t *testing.T) {
	if lens := CodeLengths(nil); len(lens) != 0 {
		t.Fatal("nil freq should give empty lengths")
	}
	lens := CodeLengths([]int64{0, 7, 0})
	if lens[0] != 0 || lens[1] != 1 || lens[2] != 0 {
		t.Fatalf("single-symbol lens=%v", lens)
	}
	lens = CodeLengths([]int64{0, 0})
	if lens[0] != 0 || lens[1] != 0 {
		t.Fatalf("all-zero lens=%v", lens)
	}
}

func TestKraftEquality(t *testing.T) {
	// Huffman codes are complete: Σ 2^-len == 1 (when ≥2 symbols occur).
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		sigma := 2 + rng.Intn(60)
		freq := make([]int64, sigma)
		occur := 0
		for i := range freq {
			if rng.Intn(3) > 0 {
				freq[i] = int64(rng.Intn(1000) + 1)
				occur++
			}
		}
		if occur < 2 {
			continue
		}
		lens := CodeLengths(freq)
		var kraft float64
		for _, l := range lens {
			if l > 0 {
				kraft += math.Pow(2, -float64(l))
			}
		}
		if math.Abs(kraft-1) > 1e-9 {
			t.Fatalf("kraft sum = %v for freq %v", kraft, freq)
		}
	}
}

func TestCanonicalPrefixFree(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 50; trial++ {
		sigma := 2 + rng.Intn(40)
		freq := make([]int64, sigma)
		for i := range freq {
			freq[i] = int64(rng.Intn(100) + 1)
		}
		codes := Build(freq)
		// No code is a prefix of another.
		for i := range codes {
			for j := range codes {
				if i == j || codes[i].Len == 0 || codes[j].Len == 0 {
					continue
				}
				if codes[i].Len <= codes[j].Len {
					shift := uint(codes[j].Len - codes[i].Len)
					if codes[j].Bits>>shift == codes[i].Bits {
						t.Fatalf("code %d (%b/%d) is a prefix of %d (%b/%d)",
							i, codes[i].Bits, codes[i].Len, j, codes[j].Bits, codes[j].Len)
					}
				}
			}
		}
	}
}

func TestHuffmanNearEntropy(t *testing.T) {
	// Average code length is within [H0, H0+1).
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		sigma := 2 + rng.Intn(100)
		freq := make([]int64, sigma)
		for i := range freq {
			freq[i] = int64(rng.Intn(10000) + 1)
		}
		codes := Build(freq)
		h0 := H0(freq)
		avg := AverageLen(codes, freq)
		if avg < h0-1e-9 || avg >= h0+1 {
			t.Fatalf("avg len %v outside [H0=%v, H0+1)", avg, h0)
		}
	}
}

func TestH0KnownValues(t *testing.T) {
	// Uniform over 4 symbols → 2 bits.
	if h := H0([]int64{5, 5, 5, 5}); math.Abs(h-2) > 1e-12 {
		t.Fatalf("H0 uniform-4 = %v, want 2", h)
	}
	// Single symbol → 0 bits.
	if h := H0([]int64{42}); h != 0 {
		t.Fatalf("H0 single = %v, want 0", h)
	}
	if h := H0(nil); h != 0 {
		t.Fatalf("H0 empty = %v, want 0", h)
	}
}

func TestHkDecreasesWithOrder(t *testing.T) {
	// For text with strong context dependence, Hk < H0.
	// "abababab..." has H0 = 1 but H1 = 0.
	s := make([]byte, 1000)
	for i := range s {
		s[i] = byte('a' + i%2)
	}
	h0, h1 := Hk(s, 0), Hk(s, 1)
	if math.Abs(h0-1) > 1e-9 {
		t.Fatalf("H0 = %v, want 1", h0)
	}
	if h1 > 1e-9 {
		t.Fatalf("H1 = %v, want 0", h1)
	}
}

func TestHkDegenerate(t *testing.T) {
	if Hk([]byte("ab"), 5) != 0 {
		t.Fatal("Hk of text shorter than k should be 0")
	}
	if Hk(nil, 0) != 0 {
		t.Fatal("Hk of empty text should be 0")
	}
}

func TestFreqPanicsOutsideAlphabet(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Freq([]byte{200}, 100)
}

func TestQuickHkMonotoneUnderRepetition(t *testing.T) {
	// Property: average Huffman length over a random string stays within
	// one bit of its H0 regardless of distribution skew.
	f := func(seed int64, sigmaRaw uint8) bool {
		sigma := int(sigmaRaw)%30 + 2
		rng := rand.New(rand.NewSource(seed))
		s := make([]byte, 2000)
		for i := range s {
			// Skewed: symbol 0 with probability 1/2.
			if rng.Intn(2) == 0 {
				s[i] = 0
			} else {
				s[i] = byte(rng.Intn(sigma))
			}
		}
		freq := Freq(s, sigma)
		avg := AverageLen(Build(freq), freq)
		h := H0(freq)
		return avg >= h-1e-9 && avg < h+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
