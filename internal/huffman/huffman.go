// Package huffman provides canonical Huffman codes and empirical-entropy
// estimators.
//
// The paper's space bounds are stated in terms of the k-th order empirical
// entropy Hk of the stored text (Manzini, J.ACM 2001). This package
// supplies:
//
//   - code-length computation and canonical code assignment used by the
//     Huffman-shaped wavelet tree in package wavelet, which compresses a
//     sequence to |S|·(H0(S)+1) + o(·) bits;
//   - H0 and Hk estimators used by the space-accounting experiments
//     (cmd/benchtables) to report bits-per-symbol against the entropy
//     baseline.
package huffman

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
)

// Code describes the canonical Huffman code of one symbol.
type Code struct {
	Symbol int
	Len    int    // code length in bits; 0 if the symbol does not occur
	Bits   uint64 // code value, MSB-first in the low Len bits
}

// item is a Huffman heap node.
type item struct {
	weight int64
	index  int // tree node index
}

type itemHeap []item

func (h itemHeap) Len() int { return len(h) }
func (h itemHeap) Less(i, j int) bool {
	if h[i].weight != h[j].weight {
		return h[i].weight < h[j].weight
	}
	return h[i].index < h[j].index
}
func (h itemHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *itemHeap) Push(x interface{}) { *h = append(*h, x.(item)) }
func (h *itemHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// CodeLengths returns the Huffman code length for each symbol given its
// frequency. Symbols with zero frequency get length 0. If exactly one
// symbol occurs it is assigned length 1.
func CodeLengths(freq []int64) []int {
	lens := make([]int, len(freq))
	var h itemHeap
	parent := make([]int, 0, 2*len(freq))
	for s, f := range freq {
		if f < 0 {
			panic(fmt.Sprintf("huffman: negative frequency for symbol %d", s))
		}
		if f > 0 {
			parent = append(parent, -1)
			heap.Push(&h, item{weight: f, index: len(parent) - 1})
		}
	}
	nLeaves := len(parent)
	if nLeaves == 0 {
		return lens
	}
	if nLeaves == 1 {
		for s, f := range freq {
			if f > 0 {
				lens[s] = 1
			}
		}
		return lens
	}
	for h.Len() > 1 {
		a := heap.Pop(&h).(item)
		b := heap.Pop(&h).(item)
		parent = append(parent, -1)
		ni := len(parent) - 1
		parent[a.index] = ni
		parent[b.index] = ni
		heap.Push(&h, item{weight: a.weight + b.weight, index: ni})
	}
	// Depth of each leaf = code length.
	depth := make([]int, len(parent))
	for i := len(parent) - 2; i >= 0; i-- {
		depth[i] = depth[parent[i]] + 1
	}
	li := 0
	for s, f := range freq {
		if f > 0 {
			lens[s] = depth[li]
			li++
		}
	}
	return lens
}

// Canonical assigns canonical code values to the given code lengths.
// The returned slice is indexed by symbol and contains only symbols with
// non-zero length (others have Len 0).
func Canonical(lens []int) []Code {
	codes := make([]Code, len(lens))
	type sl struct{ sym, l int }
	var order []sl
	for s, l := range lens {
		codes[s].Symbol = s
		if l > 0 {
			order = append(order, sl{s, l})
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].l != order[j].l {
			return order[i].l < order[j].l
		}
		return order[i].sym < order[j].sym
	})
	var code uint64
	prevLen := 0
	for _, e := range order {
		code <<= uint(e.l - prevLen)
		prevLen = e.l
		codes[e.sym] = Code{Symbol: e.sym, Len: e.l, Bits: code}
		code++
	}
	return codes
}

// Build computes canonical Huffman codes for the given frequencies.
func Build(freq []int64) []Code {
	return Canonical(CodeLengths(freq))
}

// Freq counts byte frequencies of s over an alphabet of size sigma.
// Bytes ≥ sigma panic.
func Freq(s []byte, sigma int) []int64 {
	f := make([]int64, sigma)
	for _, b := range s {
		if int(b) >= sigma {
			panic(fmt.Sprintf("huffman: symbol %d outside alphabet of size %d", b, sigma))
		}
		f[b]++
	}
	return f
}

// H0 returns the zero-order empirical entropy of the frequency vector in
// bits per symbol.
func H0(freq []int64) float64 {
	var n int64
	for _, f := range freq {
		n += f
	}
	if n == 0 {
		return 0
	}
	var h float64
	for _, f := range freq {
		if f > 0 {
			p := float64(f) / float64(n)
			h -= p * math.Log2(p)
		}
	}
	return h
}

// H0Bytes returns the zero-order empirical entropy of s in bits/symbol.
func H0Bytes(s []byte) float64 {
	return H0(Freq(s, 256))
}

// Hk returns the k-th order empirical entropy of s in bits per symbol:
// the weighted average of the zero-order entropies of the symbol
// distributions following each length-k context.
func Hk(s []byte, k int) float64 {
	if k <= 0 {
		return H0Bytes(s)
	}
	if len(s) <= k {
		return 0
	}
	ctx := make(map[string]map[byte]int64)
	for i := k; i < len(s); i++ {
		c := string(s[i-k : i])
		m := ctx[c]
		if m == nil {
			m = make(map[byte]int64)
			ctx[c] = m
		}
		m[s[i]]++
	}
	var total float64
	for _, m := range ctx {
		var n int64
		for _, f := range m {
			n += f
		}
		var h float64
		for _, f := range m {
			p := float64(f) / float64(n)
			h -= p * math.Log2(p)
		}
		total += h * float64(n)
	}
	return total / float64(len(s))
}

// AverageLen returns the expected code length in bits per symbol of the
// given codes under the given frequencies — the compressed size the
// Huffman-shaped wavelet tree will achieve, up to redundancy.
func AverageLen(codes []Code, freq []int64) float64 {
	var n, bits int64
	for s, f := range freq {
		n += f
		bits += f * int64(codes[s].Len)
	}
	if n == 0 {
		return 0
	}
	return float64(bits) / float64(n)
}
