// Package binrel implements Section 5 of the paper: compressed
// representations of dynamic binary relations, obtained by applying the
// static-to-dynamic framework to the static relation encoding of
// Barbay et al.
//
// A relation R ⊆ O × L between objects and labels is encoded as
//
//   - S — the sequence of labels ordered by object (a wavelet tree),
//   - N — the bit sequence 1^{n_1} 0 1^{n_2} 0 … recording how many
//     labels each object has,
//
// so that listing/counting labels of an object, objects of a label, and
// membership all reduce to rank/select/access on S and N. Deletions are
// lazy, recorded in bitmaps D (over S) and D_a (one per label), with the
// Lemma 3 structure making live entries reportable in O(1) each.
//
// The package is the paper's "Theorem 2 is a corollary" argument made
// literal: it contains no transformation ladder of its own. The static
// encoding above (semiRel) and an uncompressed adjacency-map C0 are
// plugged into internal/engine as a payload — pairs are the items,
// every pair weighs 1 — and the generic engine supplies both the
// amortized cascades (Transformation 1) and the full worst-case
// machinery (Transformation 2: background builds behind locked copies,
// top collections with Dietz–Sleator sweeps, Section A.3 rebalance).
// Options.WorstCase selects between them; under WorstCase the relation
// serializes on the engine mutex and is safe for concurrent use, and
// WaitIdle quiesces in-flight background builds.
package binrel

import (
	"sort"

	"dyncoll/internal/engine"
)

// Options configure a dynamic Relation.
type Options struct {
	// Tau is the lazy-deletion trade-off parameter τ; a sub-collection is
	// purged once more than a 1/τ fraction of its pairs is dead. 0 means
	// automatic (τ = log n / log log n, the paper's choice, recomputed at
	// global rebuilds).
	Tau int

	// Epsilon is the geometric growth exponent of sub-collection
	// capacities. Default 0.5.
	Epsilon float64

	// MinCapacity bounds the uncompressed C0's capacity from below.
	// Default 64 pairs.
	MinCapacity int

	// WorstCase selects Transformation 2's scheduling: bounded
	// foreground work per update, rebuilds on background goroutines,
	// top-collection sweeps. The default is Transformation 1's
	// amortized cascades.
	WorstCase bool

	// Inline forces worst-case background builds to complete
	// synchronously; used by deterministic tests.
	Inline bool
}

// WCOptions is a legacy alias of Options from when the worst-case
// relation was a separate implementation with its own option struct.
type WCOptions = Options

// Stats reports the engine's ladder state and rebuild counters; WCStats
// is a legacy alias from the pre-engine split.
type (
	Stats   = engine.Stats
	WCStats = engine.Stats
)

// c0rel is the uncompressed fully-dynamic store (the relation's C0):
// forward and reverse adjacency in hash maps, O(log n) bits per pair.
type c0rel struct {
	fwd  map[uint64][]uint64 // object → labels
	rev  map[uint64][]uint64 // label → objects
	size int
}

func newC0rel() *c0rel {
	return &c0rel{fwd: make(map[uint64][]uint64), rev: make(map[uint64][]uint64)}
}

// Insert adds a pair (engine.Mutable). The engine has already checked
// for duplicates through its owner map.
func (c *c0rel) Insert(p Pair) {
	c.fwd[p.Object] = append(c.fwd[p.Object], p.Label)
	c.rev[p.Label] = append(c.rev[p.Label], p.Object)
	c.size++
}

// Delete removes a pair, reporting whether it was present
// (engine.Store; every pair weighs 1).
func (c *c0rel) Delete(p Pair) (int, bool) {
	ls := c.fwd[p.Object]
	found := false
	for i, x := range ls {
		if x == p.Label {
			c.fwd[p.Object] = append(ls[:i], ls[i+1:]...)
			if len(c.fwd[p.Object]) == 0 {
				delete(c.fwd, p.Object)
			}
			found = true
			break
		}
	}
	if !found {
		return 0, false
	}
	os := c.rev[p.Label]
	for i, x := range os {
		if x == p.Object {
			c.rev[p.Label] = append(os[:i], os[i+1:]...)
			if len(c.rev[p.Label]) == 0 {
				delete(c.rev, p.Label)
			}
			break
		}
	}
	c.size--
	return 1, true
}

// LiveItems lists the live pairs (engine.Store).
func (c *c0rel) LiveItems() []Pair {
	out := make([]Pair, 0, c.size)
	for o, ls := range c.fwd {
		for _, l := range ls {
			out = append(out, Pair{Object: o, Label: l})
		}
	}
	return out
}

// LiveKeys lists the live pair keys — identical to LiveItems
// (engine.Store).
func (c *c0rel) LiveKeys() []Pair { return c.LiveItems() }

// LiveWeight and DeadWeight report pair counts; C0 deletes eagerly, so
// it never holds dead pairs (engine.Store).
func (c *c0rel) LiveWeight() int { return c.size }
func (c *c0rel) DeadWeight() int { return 0 }

// SizeBits estimates the footprint: two map headers plus per-pair and
// per-key footprints (engine.Store).
func (c *c0rel) SizeBits() int64 {
	return 4*64 + int64(c.size)*3*64 + int64(len(c.fwd)+len(c.rev))*2*64
}

func (c *c0rel) related(object, label uint64) bool {
	for _, x := range c.fwd[object] {
		if x == label {
			return true
		}
	}
	return false
}

func (c *c0rel) labelsOf(object uint64, fn func(label uint64) bool) bool {
	for _, l := range c.fwd[object] {
		if !fn(l) {
			return false
		}
	}
	return true
}

func (c *c0rel) objectsOf(label uint64, fn func(object uint64) bool) bool {
	for _, o := range c.rev[label] {
		if !fn(o) {
			return false
		}
	}
	return true
}

func (c *c0rel) countLabels(object uint64) int { return len(c.fwd[object]) }
func (c *c0rel) countObjects(label uint64) int { return len(c.rev[label]) }

func (c *c0rel) pairsFunc(fn func(Pair) bool) bool {
	for o, ls := range c.fwd {
		for _, l := range ls {
			if !fn(Pair{Object: o, Label: l}) {
				return false
			}
		}
	}
	return true
}

// relStore is the query surface shared by the C0 adjacency maps and the
// compressed semiRel payload; the engine hands sub-collections back as
// opaque stores and the adapter narrows them here.
type relStore interface {
	related(object, label uint64) bool
	labelsOf(object uint64, fn func(label uint64) bool) bool
	objectsOf(label uint64, fn func(object uint64) bool) bool
	countLabels(object uint64) int
	countObjects(label uint64) int
	pairsFunc(fn func(Pair) bool) bool
}

var (
	_ relStore = (*c0rel)(nil)
	_ relStore = (*semiRel)(nil)
)

// ladderConfig assembles the engine's payload contract for relations:
// pairs are their own keys, every pair weighs 1, C0 is the adjacency
// maps, and static sub-collections are semiRel encodings.
func ladderConfig(opts Options) engine.Config[Pair, Pair] {
	return engine.Config[Pair, Pair]{
		Key:    func(p Pair) Pair { return p },
		Weight: func(Pair) int { return 1 },
		NewC0:  func() engine.Mutable[Pair, Pair] { return newC0rel() },
		Build: func(pairs []Pair, tau int) engine.Store[Pair, Pair] {
			return buildSemi(pairs, tau)
		},
		Tau:         opts.Tau,
		Epsilon:     opts.Epsilon,
		MinCapacity: opts.MinCapacity,
		Inline:      opts.Inline,
	}
}

// NewLadder builds a bare generic engine over the relation payload; the
// Relation wrapper below adds the relation query API, and the
// engine-level conformance suite drives the ladder directly.
func NewLadder(opts Options) engine.Ladder[Pair, Pair] {
	if opts.WorstCase {
		return engine.NewWorstCase(ladderConfig(opts))
	}
	return engine.NewAmortized(ladderConfig(opts))
}

// Relation is a fully-dynamic compressed binary relation (Theorem 2):
// membership, label-of-object and object-of-label reporting and
// counting, plus pair insertion and deletion. The bulk of the pairs
// lives in deletion-only compressed sub-collections; only an
// O(n/log²n)-pair C0 is kept uncompressed.
//
// With Options.WorstCase the generic engine's Transformation 2
// machinery schedules all rebuilds in the background, every operation
// serializes on the engine mutex (safe for concurrent use), and
// WaitIdle quiesces in-flight builds. The amortized default is not safe
// for concurrent use.
type Relation struct {
	eng engine.Ladder[Pair, Pair]
}

// WorstCaseRelation is a legacy alias from when the worst-case relation
// was a separate implementation.
type WorstCaseRelation = Relation

// New creates an empty dynamic relation.
func New(opts Options) *Relation {
	return &Relation{eng: NewLadder(opts)}
}

// NewWorstCase creates an empty worst-case dynamic relation (legacy
// constructor; equivalent to New with Options.WorstCase set).
func NewWorstCase(opts WCOptions) *Relation {
	opts.WorstCase = true
	return New(opts)
}

// Len reports the number of live pairs.
func (r *Relation) Len() int { return r.eng.Count() }

// Tau reports the τ currently in effect.
func (r *Relation) Tau() int { return r.eng.Tau() }

// Add inserts the pair (object, label). It reports false if the pair is
// already present.
func (r *Relation) Add(object, label uint64) bool {
	return r.eng.Insert(Pair{Object: object, Label: label}) == nil
}

// Delete removes the pair (object, label), reporting whether it was
// present. Deletions in compressed levels are lazy; the engine purges
// or merges structures that cross their dead-fraction thresholds.
func (r *Relation) Delete(object, label uint64) bool {
	return r.eng.Delete(Pair{Object: object, Label: label})
}

// Related reports whether object and label are related — one owner-map
// lookup, O(1).
func (r *Relation) Related(object, label uint64) bool {
	return r.eng.Has(Pair{Object: object, Label: label})
}

// LabelsOf streams the labels related to object; enumeration stops when
// fn returns false.
func (r *Relation) LabelsOf(object uint64, fn func(label uint64) bool) {
	r.eng.View(func(stores []engine.Store[Pair, Pair]) {
		for _, s := range stores {
			if !s.(relStore).labelsOf(object, fn) {
				return
			}
		}
	})
}

// ObjectsOf streams the objects related to label; enumeration stops when
// fn returns false.
func (r *Relation) ObjectsOf(label uint64, fn func(object uint64) bool) {
	r.eng.View(func(stores []engine.Store[Pair, Pair]) {
		for _, s := range stores {
			if !s.(relStore).objectsOf(label, fn) {
				return
			}
		}
	})
}

// Labels returns the labels related to object, sorted.
func (r *Relation) Labels(object uint64) []uint64 {
	var out []uint64
	r.LabelsOf(object, func(l uint64) bool {
		out = append(out, l)
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Objects returns the objects related to label, sorted.
func (r *Relation) Objects(label uint64) []uint64 {
	var out []uint64
	r.ObjectsOf(label, func(o uint64) bool {
		out = append(out, o)
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// CountLabels counts the labels related to object.
func (r *Relation) CountLabels(object uint64) int {
	n := 0
	r.eng.View(func(stores []engine.Store[Pair, Pair]) {
		for _, s := range stores {
			n += s.(relStore).countLabels(object)
		}
	})
	return n
}

// CountObjects counts the objects related to label.
func (r *Relation) CountObjects(label uint64) int {
	n := 0
	r.eng.View(func(stores []engine.Store[Pair, Pair]) {
		for _, s := range stores {
			n += s.(relStore).countObjects(label)
		}
	})
	return n
}

// PairsFunc streams every live pair (unspecified order); enumeration
// stops when fn returns false. Nothing is materialized.
func (r *Relation) PairsFunc(fn func(Pair) bool) {
	r.eng.View(func(stores []engine.Store[Pair, Pair]) {
		for _, s := range stores {
			if !s.(relStore).pairsFunc(fn) {
				return
			}
		}
	})
}

// Pairs returns every live pair (unspecified order).
func (r *Relation) Pairs() []Pair {
	out := make([]Pair, 0, r.Len())
	r.PairsFunc(func(p Pair) bool {
		out = append(out, p)
		return true
	})
	return out
}

// WaitIdle blocks until background rebuilds (WorstCase scheduling only)
// have completed; the amortized engine returns immediately.
func (r *Relation) WaitIdle() { r.eng.WaitIdle() }

// Stats returns the engine's rebuild counters and current layout.
func (r *Relation) Stats() Stats { return r.eng.Stats() }

// SizeBits estimates the total footprint of the sub-collection stores.
// (The engine additionally keeps a per-pair owner map for O(1)
// membership and delete routing — an O(n log n)-bit engineering trade
// outside the paper's space accounting, as C0's hash maps already are.)
func (r *Relation) SizeBits() int64 { return r.eng.SizeBits() }
