package binrel

import (
	"math"
	"sort"
)

// Options configure a dynamic Relation.
type Options struct {
	// Tau is the lazy-deletion trade-off parameter τ; a sub-collection is
	// purged once more than a 1/τ fraction of its pairs is dead. 0 means
	// automatic (τ = log n / log log n, the paper's choice, recomputed at
	// global rebuilds).
	Tau int

	// Epsilon is the geometric growth exponent of sub-collection
	// capacities. Default 0.5.
	Epsilon float64

	// MinCapacity bounds the uncompressed C0's capacity from below.
	// Default 64 pairs.
	MinCapacity int
}

func (o Options) withDefaults() Options {
	if o.Epsilon <= 0 || o.Epsilon > 1 {
		o.Epsilon = 0.5
	}
	if o.MinCapacity <= 0 {
		o.MinCapacity = 64
	}
	return o
}

// Relation is a fully-dynamic compressed binary relation (Theorem 2):
// membership, label-of-object and object-of-label reporting and counting,
// plus pair insertion and deletion. The bulk of the pairs lives in
// deletion-only compressed sub-collections; only an O(n/log²n)-pair C0 is
// kept uncompressed.
type Relation struct {
	opts Options

	c0     *c0rel
	levels []*semiRel
	maxes  []int

	nf  int
	tau int

	live int

	rebuilds       int
	globalRebuilds int
	purges         int
}

// c0rel is the uncompressed fully-dynamic store: forward and reverse
// adjacency in hash maps, O(log n) bits per pair.
type c0rel struct {
	fwd  map[uint64][]uint64 // object → labels
	rev  map[uint64][]uint64 // label → objects
	size int
}

func newC0rel() *c0rel {
	return &c0rel{fwd: make(map[uint64][]uint64), rev: make(map[uint64][]uint64)}
}

func (c *c0rel) add(o, l uint64) {
	c.fwd[o] = append(c.fwd[o], l)
	c.rev[l] = append(c.rev[l], o)
	c.size++
}

func (c *c0rel) related(o, l uint64) bool {
	for _, x := range c.fwd[o] {
		if x == l {
			return true
		}
	}
	return false
}

func (c *c0rel) delete(o, l uint64) bool {
	ls := c.fwd[o]
	found := false
	for i, x := range ls {
		if x == l {
			c.fwd[o] = append(ls[:i], ls[i+1:]...)
			if len(c.fwd[o]) == 0 {
				delete(c.fwd, o)
			}
			found = true
			break
		}
	}
	if !found {
		return false
	}
	os := c.rev[l]
	for i, x := range os {
		if x == o {
			c.rev[l] = append(os[:i], os[i+1:]...)
			if len(c.rev[l]) == 0 {
				delete(c.rev, l)
			}
			break
		}
	}
	c.size--
	return true
}

func (c *c0rel) pairs() []Pair {
	out := make([]Pair, 0, c.size)
	for o, ls := range c.fwd {
		for _, l := range ls {
			out = append(out, Pair{Object: o, Label: l})
		}
	}
	return out
}

func (c *c0rel) sizeBits() int64 {
	// Two map headers plus per-pair and per-key footprints.
	return 4*64 + int64(c.size)*3*64 + int64(len(c.fwd)+len(c.rev))*2*64
}

// New creates an empty dynamic relation.
func New(opts Options) *Relation {
	opts = opts.withDefaults()
	r := &Relation{opts: opts, c0: newC0rel()}
	r.reschedule(0)
	return r
}

// reschedule re-derives τ and the capacity ladder from the current pair
// count (max_0 = 2n/log²n, ratio log^ε n), as in Transformation 1.
func (r *Relation) reschedule(n int) {
	r.nf = n
	r.tau = r.opts.Tau
	if r.tau == 0 {
		r.tau = autoTau(n)
	}
	lg := math.Log2(float64(n) + 4)
	if lg < 2 {
		lg = 2
	}
	max0 := 2 * float64(n) / (lg * lg)
	if max0 < float64(r.opts.MinCapacity) {
		max0 = float64(r.opts.MinCapacity)
	}
	ratio := math.Pow(lg, r.opts.Epsilon)
	if ratio < 1.5 {
		ratio = 1.5
	}
	r.maxes = r.maxes[:0]
	r.maxes = append(r.maxes, int(max0))
	cap := max0
	for cap < 2*float64(n)+1 && len(r.maxes) < 64 {
		cap *= ratio
		r.maxes = append(r.maxes, int(cap))
	}
	if len(r.maxes) < 2 {
		r.maxes = append(r.maxes, int(cap*ratio))
	}
	for len(r.levels) < len(r.maxes) {
		r.levels = append(r.levels, nil)
	}
}

// autoTau mirrors the paper's τ = log n / log log n default.
func autoTau(n int) int {
	if n < 16 {
		return 2
	}
	lg := math.Log2(float64(n))
	lglg := math.Log2(lg)
	if lglg < 1 {
		lglg = 1
	}
	t := int(lg / lglg)
	if t < 2 {
		t = 2
	}
	if t > 4096 {
		t = 4096
	}
	return t
}

// Len reports the number of live pairs.
func (r *Relation) Len() int { return r.live }

// Tau reports the τ currently in effect.
func (r *Relation) Tau() int { return r.tau }

// Add inserts the pair (object, label). It reports false if the pair is
// already present.
func (r *Relation) Add(object, label uint64) bool {
	if r.Related(object, label) {
		return false
	}
	r.live++
	if r.c0.size+1 <= r.maxes[0] {
		r.c0.add(object, label)
		r.maybeGlobalRebuild()
		return true
	}
	// Cascade: find the first level that can absorb C0, the levels below
	// it, and the new pair.
	prefix := r.c0.size + 1
	for j := 1; j < len(r.maxes); j++ {
		if r.levels[j] != nil {
			prefix += r.levels[j].live
		}
		if prefix <= r.maxes[j] {
			r.mergeInto(j, Pair{Object: object, Label: label})
			r.maybeGlobalRebuild()
			return true
		}
	}
	r.globalRebuild(&Pair{Object: object, Label: label})
	return true
}

func (r *Relation) mergeInto(j int, extra Pair) {
	pairs := r.c0.pairs()
	r.c0 = newC0rel()
	for i := 1; i <= j; i++ {
		if r.levels[i] != nil {
			pairs = append(pairs, r.levels[i].livePairs()...)
			r.levels[i] = nil
		}
	}
	pairs = append(pairs, extra)
	r.levels[j] = buildSemi(pairs, r.tau)
	r.rebuilds++
}

func (r *Relation) maybeGlobalRebuild() {
	if r.live >= 2*r.nf && r.live > r.opts.MinCapacity {
		r.globalRebuild(nil)
	} else if r.nf > 2*r.opts.MinCapacity && r.live <= r.nf/2 {
		r.globalRebuild(nil)
	}
}

func (r *Relation) globalRebuild(extra *Pair) {
	pairs := r.c0.pairs()
	for i, l := range r.levels {
		if l != nil {
			pairs = append(pairs, l.livePairs()...)
			r.levels[i] = nil
		}
	}
	if extra != nil {
		pairs = append(pairs, *extra)
	}
	r.c0 = newC0rel()
	r.reschedule(len(pairs))
	r.globalRebuilds++
	if len(pairs) == 0 {
		return
	}
	r.levels[len(r.maxes)-1] = buildSemi(pairs, r.tau)
}

// Delete removes the pair (object, label), reporting whether it was
// present. Deletions in compressed levels are lazy; a level holding too
// many dead pairs is purged.
func (r *Relation) Delete(object, label uint64) bool {
	if r.c0.delete(object, label) {
		r.live--
		r.maybeGlobalRebuild()
		return true
	}
	for j, l := range r.levels {
		if l == nil {
			continue
		}
		if l.delete(object, label) {
			r.live--
			total := l.live + l.dead
			if total > 0 && l.dead*r.tau > total {
				r.purgeLevel(j)
			}
			r.maybeGlobalRebuild()
			return true
		}
	}
	return false
}

func (r *Relation) purgeLevel(j int) {
	pairs := r.levels[j].livePairs()
	if len(pairs) == 0 {
		r.levels[j] = nil
	} else {
		r.levels[j] = buildSemi(pairs, r.tau)
	}
	r.purges++
}

// Related reports whether object and label are related.
func (r *Relation) Related(object, label uint64) bool {
	if r.c0.related(object, label) {
		return true
	}
	for _, l := range r.levels {
		if l != nil && l.related(object, label) {
			return true
		}
	}
	return false
}

// LabelsOf streams the labels related to object; enumeration stops when
// fn returns false.
func (r *Relation) LabelsOf(object uint64, fn func(label uint64) bool) {
	for _, l := range r.c0.fwd[object] {
		if !fn(l) {
			return
		}
	}
	for _, lvl := range r.levels {
		if lvl == nil {
			continue
		}
		if !lvl.labelsOf(object, fn) {
			return
		}
	}
}

// ObjectsOf streams the objects related to label; enumeration stops when
// fn returns false.
func (r *Relation) ObjectsOf(label uint64, fn func(object uint64) bool) {
	for _, o := range r.c0.rev[label] {
		if !fn(o) {
			return
		}
	}
	for _, lvl := range r.levels {
		if lvl == nil {
			continue
		}
		if !lvl.objectsOf(label, fn) {
			return
		}
	}
}

// Labels returns the labels related to object, sorted.
func (r *Relation) Labels(object uint64) []uint64 {
	var out []uint64
	r.LabelsOf(object, func(l uint64) bool {
		out = append(out, l)
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Objects returns the objects related to label, sorted.
func (r *Relation) Objects(label uint64) []uint64 {
	var out []uint64
	r.ObjectsOf(label, func(o uint64) bool {
		out = append(out, o)
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// CountLabels counts the labels related to object.
func (r *Relation) CountLabels(object uint64) int {
	n := len(r.c0.fwd[object])
	for _, lvl := range r.levels {
		if lvl != nil {
			n += lvl.countLabels(object)
		}
	}
	return n
}

// CountObjects counts the objects related to label.
func (r *Relation) CountObjects(label uint64) int {
	n := len(r.c0.rev[label])
	for _, lvl := range r.levels {
		if lvl != nil {
			n += lvl.countObjects(label)
		}
	}
	return n
}

// PairsFunc streams every live pair (unspecified order); enumeration
// stops when fn returns false. Nothing is materialized.
func (r *Relation) PairsFunc(fn func(Pair) bool) {
	for o, ls := range r.c0.fwd {
		for _, l := range ls {
			if !fn(Pair{Object: o, Label: l}) {
				return
			}
		}
	}
	for _, lvl := range r.levels {
		if lvl != nil && !lvl.pairsFunc(fn) {
			return
		}
	}
}

// Pairs returns every live pair (unspecified order).
func (r *Relation) Pairs() []Pair {
	out := make([]Pair, 0, r.live)
	r.PairsFunc(func(p Pair) bool {
		out = append(out, p)
		return true
	})
	return out
}

// Stats reports rebuild counters.
type Stats struct {
	LevelRebuilds  int
	GlobalRebuilds int
	Purges         int
	Levels         int
}

// Stats returns rebuild counters.
func (r *Relation) Stats() Stats {
	return Stats{
		LevelRebuilds:  r.rebuilds,
		GlobalRebuilds: r.globalRebuilds,
		Purges:         r.purges,
		Levels:         len(r.maxes),
	}
}

// WaitIdle is a no-op: the amortized relation does all its work in the
// foreground. It exists so both relation flavours satisfy the same
// facade contract.
func (r *Relation) WaitIdle() {}

// SizeBits estimates the total footprint.
func (r *Relation) SizeBits() int64 {
	total := r.c0.sizeBits()
	for _, lvl := range r.levels {
		if lvl != nil {
			total += lvl.sizeBits()
		}
	}
	return total
}
