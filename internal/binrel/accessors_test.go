package binrel

import (
	"math/rand"
	"testing"
)

func TestRelationAccessors(t *testing.T) {
	r := New(Options{Tau: 6})
	if r.Tau() != 6 {
		t.Fatalf("Tau = %d", r.Tau())
	}
	auto := New(Options{})
	if auto.Tau() < 2 {
		t.Fatalf("auto Tau = %d", auto.Tau())
	}
	for i := 0; i < 300; i++ {
		r.Add(uint64(i), uint64(i%9))
	}
	if r.SizeBits() <= 0 {
		t.Fatal("SizeBits not positive")
	}
}

func TestWorstCaseRelationAccessors(t *testing.T) {
	w := NewWorstCase(WCOptions{Tau: 5, Inline: true})
	if w.Tau() != 5 {
		t.Fatalf("Tau = %d", w.Tau())
	}
	m := newRelModel()
	for i := 0; i < 400; i++ {
		o, l := uint64(i%37), uint64(i%11)
		if w.Add(o, l) {
			m.add(o, l)
		}
	}
	got := w.Pairs()
	if len(got) != len(m.pairs) {
		t.Fatalf("Pairs = %d, want %d", len(got), len(m.pairs))
	}
	for _, p := range got {
		if !m.pairs[p] {
			t.Fatalf("Pairs returned absent pair %v", p)
		}
	}
}

// TestWorstCaseRelationDeferredMerge drives deletions against a level
// whose merge slot is busy, exercising pendingMerge + reconcile.
func TestWorstCaseRelationDeferredMerge(t *testing.T) {
	// Background (non-inline) mode so builds stay in flight while more
	// deletions arrive.
	w := NewWorstCase(WCOptions{Tau: 2, MinCapacity: 16})
	m := newRelModel()
	rng := rand.New(rand.NewSource(888))
	for i := 0; i < 3000; i++ {
		o, l := uint64(rng.Intn(150)), uint64(rng.Intn(40))
		if rng.Float64() < 0.55 {
			if w.Add(o, l) != m.add(o, l) {
				t.Fatalf("i=%d Add disagreement", i)
			}
		} else {
			if w.Delete(o, l) != m.del(o, l) {
				t.Fatalf("i=%d Delete disagreement", i)
			}
		}
	}
	w.WaitIdle()
	if w.Len() != len(m.pairs) {
		t.Fatalf("Len = %d, want %d", w.Len(), len(m.pairs))
	}
	for o := uint64(0); o < 150; o++ {
		if !sameU64(w.Labels(o), m.labels(o)) {
			t.Fatalf("Labels(%d) mismatch", o)
		}
	}
}
