package binrel

import (
	"sync"
	"testing"
)

// TestWorstCaseRelationParallelClients hammers one worst-case relation
// from several goroutines — writers churning pairs, readers issuing
// membership/degree/report queries — while real background builds run,
// then quiesces with WaitIdle. Run under -race in CI; the engine mutex
// must serialize every operation. Exact query results are checked by
// the single-threaded suites; here the assertions check
// self-consistency after the churn.
func TestWorstCaseRelationParallelClients(t *testing.T) {
	r := New(Options{WorstCase: true})

	const writers = 3
	const pairsPerWriter = 600

	var writerWG sync.WaitGroup
	for wr := 0; wr < writers; wr++ {
		writerWG.Add(1)
		go func(wr int) {
			defer writerWG.Done()
			// Disjoint object spaces so writers never collide on a pair.
			base := uint64(wr+1) << 32
			var mine []Pair
			for i := 0; i < pairsPerWriter; i++ {
				p := Pair{Object: base + uint64(i%97), Label: uint64(i)}
				if !r.Add(p.Object, p.Label) {
					t.Error("Add of fresh pair failed")
					return
				}
				mine = append(mine, p)
				if i%3 == 2 {
					if !r.Delete(mine[0].Object, mine[0].Label) {
						t.Error("Delete of own live pair failed")
						return
					}
					mine = mine[1:]
				}
			}
		}(wr)
	}

	stop := make(chan struct{})
	var readerWG sync.WaitGroup
	for rd := 0; rd < 2; rd++ {
		readerWG.Add(1)
		go func(rd int) {
			defer readerWG.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				r.Related(uint64(rd+1)<<32, uint64(rd))
				if r.CountObjects(uint64(rd)) < 0 {
					t.Error("negative count")
					return
				}
				seen := 0
				r.ObjectsOf(uint64(rd), func(uint64) bool {
					seen++
					return seen < 50
				})
			}
		}(rd)
	}

	writerWG.Wait()
	close(stop)
	readerWG.Wait()
	r.WaitIdle()

	deletesPerWriter := pairsPerWriter / 3
	want := writers * (pairsPerWriter - deletesPerWriter)
	if got := r.Len(); got != want {
		t.Fatalf("Len = %d, want %d", got, want)
	}
	st := r.Stats()
	if st.PendingBuilds != 0 {
		t.Fatalf("PendingBuilds = %d after WaitIdle", st.PendingBuilds)
	}
	if st.BackgroundBuilds == 0 {
		t.Fatal("expected background builds during parallel churn")
	}
	// The ladder must still answer exact queries after quiescing.
	for wr := 0; wr < writers; wr++ {
		base := uint64(wr+1) << 32
		total := 0
		for o := uint64(0); o < 97; o++ {
			total += r.CountLabels(base + o)
		}
		if total != pairsPerWriter-deletesPerWriter {
			t.Fatalf("writer %d: %d live pairs, want %d",
				wr, total, pairsPerWriter-deletesPerWriter)
		}
	}
}
