package binrel

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// relModel is the brute-force reference: a set of pairs.
type relModel struct{ pairs map[Pair]bool }

func newRelModel() *relModel { return &relModel{pairs: map[Pair]bool{}} }

func (m *relModel) add(o, l uint64) bool {
	p := Pair{o, l}
	if m.pairs[p] {
		return false
	}
	m.pairs[p] = true
	return true
}

func (m *relModel) del(o, l uint64) bool {
	p := Pair{o, l}
	if !m.pairs[p] {
		return false
	}
	delete(m.pairs, p)
	return true
}

func (m *relModel) related(o, l uint64) bool { return m.pairs[Pair{o, l}] }

func (m *relModel) labels(o uint64) []uint64 {
	var out []uint64
	for p := range m.pairs {
		if p.Object == o {
			out = append(out, p.Label)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (m *relModel) objects(l uint64) []uint64 {
	var out []uint64
	for p := range m.pairs {
		if p.Label == l {
			out = append(out, p.Object)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sameU64(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestRelationRandomOps(t *testing.T) {
	rng := rand.New(rand.NewSource(500))
	r := New(Options{})
	m := newRelModel()
	const objects, labels = 40, 25
	for step := 0; step < 4000; step++ {
		o := uint64(rng.Intn(objects) + 1)
		l := uint64(rng.Intn(labels) + 1)
		if rng.Float64() < 0.6 {
			if r.Add(o, l) != m.add(o, l) {
				t.Fatalf("step %d: Add(%d,%d) disagreement", step, o, l)
			}
		} else {
			if r.Delete(o, l) != m.del(o, l) {
				t.Fatalf("step %d: Delete(%d,%d) disagreement", step, o, l)
			}
		}
		if r.Len() != len(m.pairs) {
			t.Fatalf("step %d: Len = %d, want %d", step, r.Len(), len(m.pairs))
		}
		if step%97 == 0 {
			o := uint64(rng.Intn(objects) + 1)
			l := uint64(rng.Intn(labels) + 1)
			if r.Related(o, l) != m.related(o, l) {
				t.Fatalf("step %d: Related(%d,%d) disagreement", step, o, l)
			}
			if !sameU64(r.Labels(o), m.labels(o)) {
				t.Fatalf("step %d: Labels(%d) = %v, want %v", step, o, r.Labels(o), m.labels(o))
			}
			if !sameU64(r.Objects(l), m.objects(l)) {
				t.Fatalf("step %d: Objects(%d) = %v, want %v", step, l, r.Objects(l), m.objects(l))
			}
			if r.CountLabels(o) != len(m.labels(o)) {
				t.Fatalf("step %d: CountLabels(%d) = %d, want %d", step, o, r.CountLabels(o), len(m.labels(o)))
			}
			if r.CountObjects(l) != len(m.objects(l)) {
				t.Fatalf("step %d: CountObjects(%d) = %d, want %d", step, l, r.CountObjects(l), len(m.objects(l)))
			}
		}
	}
	// Exhaustive final check.
	for o := uint64(1); o <= objects; o++ {
		if !sameU64(r.Labels(o), m.labels(o)) {
			t.Fatalf("final Labels(%d) mismatch", o)
		}
		if r.CountLabels(o) != len(m.labels(o)) {
			t.Fatalf("final CountLabels(%d) mismatch", o)
		}
	}
	for l := uint64(1); l <= labels; l++ {
		if !sameU64(r.Objects(l), m.objects(l)) {
			t.Fatalf("final Objects(%d) mismatch", l)
		}
	}
	if r.Stats().LevelRebuilds == 0 {
		t.Fatal("expected level rebuilds during 4000 ops")
	}
}

func TestRelationDuplicateAdd(t *testing.T) {
	r := New(Options{})
	if !r.Add(1, 2) {
		t.Fatal("first Add failed")
	}
	if r.Add(1, 2) {
		t.Fatal("duplicate Add succeeded")
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d", r.Len())
	}
	// Duplicate of a pair that has been pushed into a compressed level.
	for i := 0; i < 500; i++ {
		r.Add(uint64(i+10), uint64(i%7))
	}
	if r.Add(1, 2) {
		t.Fatal("duplicate Add of compressed pair succeeded")
	}
}

func TestRelationDeleteAbsent(t *testing.T) {
	r := New(Options{})
	if r.Delete(1, 1) {
		t.Fatal("Delete on empty relation succeeded")
	}
	r.Add(1, 1)
	if r.Delete(1, 2) || r.Delete(2, 1) {
		t.Fatal("Delete of absent pair succeeded")
	}
	if !r.Delete(1, 1) || r.Delete(1, 1) {
		t.Fatal("Delete of present pair misbehaved")
	}
}

func TestRelationReAddAfterDelete(t *testing.T) {
	r := New(Options{})
	// Push a pair into a compressed level, delete it lazily, re-add it.
	r.Add(1, 1)
	for i := 0; i < 300; i++ {
		r.Add(uint64(i+10), 5)
	}
	if !r.Delete(1, 1) {
		t.Fatal("delete failed")
	}
	if r.Related(1, 1) {
		t.Fatal("pair still related after delete")
	}
	if !r.Add(1, 1) {
		t.Fatal("re-add failed")
	}
	if !r.Related(1, 1) {
		t.Fatal("pair not related after re-add")
	}
	if got := r.CountObjects(5); got != 300 {
		t.Fatalf("CountObjects(5) = %d", got)
	}
}

func TestRelationEarlyStop(t *testing.T) {
	r := New(Options{})
	for i := 0; i < 100; i++ {
		r.Add(7, uint64(i))
		r.Add(uint64(i+1000), 9)
	}
	n := 0
	r.LabelsOf(7, func(uint64) bool { n++; return n < 5 })
	if n != 5 {
		t.Fatalf("LabelsOf early stop visited %d", n)
	}
	n = 0
	r.ObjectsOf(9, func(uint64) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("ObjectsOf early stop visited %d", n)
	}
}

func TestRelationSkewedDegrees(t *testing.T) {
	// One hub label related to everything, plus a long tail — the shape of
	// the paper's motivating RDF workloads.
	r := New(Options{})
	m := newRelModel()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		o := uint64(i + 1)
		r.Add(o, 1)
		m.add(o, 1)
		l := uint64(rng.Intn(100) + 2)
		r.Add(o, l)
		m.add(o, l)
	}
	if r.CountObjects(1) != 2000 {
		t.Fatalf("hub count = %d", r.CountObjects(1))
	}
	// Spot-check tail labels.
	for l := uint64(2); l <= 20; l++ {
		if !sameU64(r.Objects(l), m.objects(l)) {
			t.Fatalf("Objects(%d) mismatch", l)
		}
	}
	// Delete the hub's pairs and confirm counts collapse.
	for i := 0; i < 2000; i += 2 {
		r.Delete(uint64(i+1), 1)
	}
	if r.CountObjects(1) != 1000 {
		t.Fatalf("hub count after deletes = %d", r.CountObjects(1))
	}
}

func TestRelationPairsRoundTrip(t *testing.T) {
	r := New(Options{})
	m := newRelModel()
	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 700; i++ {
		o, l := uint64(rng.Intn(50)), uint64(rng.Intn(50))
		r.Add(o, l)
		m.add(o, l)
	}
	got := r.Pairs()
	if len(got) != len(m.pairs) {
		t.Fatalf("Pairs returned %d, want %d", len(got), len(m.pairs))
	}
	for _, p := range got {
		if !m.pairs[p] {
			t.Fatalf("Pairs returned absent pair %v", p)
		}
	}
}

func TestRelationQuick(t *testing.T) {
	f := func(ops []uint16) bool {
		r := New(Options{MinCapacity: 8})
		m := newRelModel()
		for _, op := range ops {
			o := uint64(op>>8) % 16
			l := uint64(op) % 16
			if op%3 == 0 {
				if r.Delete(o, l) != m.del(o, l) {
					return false
				}
			} else {
				if r.Add(o, l) != m.add(o, l) {
					return false
				}
			}
		}
		if r.Len() != len(m.pairs) {
			return false
		}
		for o := uint64(0); o < 16; o++ {
			if !sameU64(r.Labels(o), m.labels(o)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestSemiRelDirect(t *testing.T) {
	pairs := []Pair{
		{1, 10}, {1, 20}, {2, 10}, {3, 30}, {3, 10}, {3, 20},
	}
	r := buildSemi(pairs, 4)
	if r.live != 6 {
		t.Fatalf("live = %d", r.live)
	}
	if !r.related(1, 10) || r.related(1, 30) || r.related(9, 10) {
		t.Fatal("related wrong")
	}
	if got := r.countLabels(3); got != 3 {
		t.Fatalf("countLabels(3) = %d", got)
	}
	if got := r.countObjects(10); got != 3 {
		t.Fatalf("countObjects(10) = %d", got)
	}
	if _, ok := r.Delete(Pair{3, 10}); !ok {
		t.Fatal("delete failed")
	}
	if _, ok := r.Delete(Pair{3, 10}); ok {
		t.Fatal("double delete succeeded")
	}
	if got := r.countObjects(10); got != 2 {
		t.Fatalf("countObjects(10) after delete = %d", got)
	}
	if got := r.countLabels(3); got != 2 {
		t.Fatalf("countLabels(3) after delete = %d", got)
	}
	var ls []uint64
	r.labelsOf(3, func(l uint64) bool { ls = append(ls, l); return true })
	sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
	if !sameU64(ls, []uint64{20, 30}) {
		t.Fatalf("labelsOf(3) = %v", ls)
	}
	var os []uint64
	r.objectsOf(10, func(o uint64) bool { os = append(os, o); return true })
	sort.Slice(os, func(i, j int) bool { return os[i] < os[j] })
	if !sameU64(os, []uint64{1, 2}) {
		t.Fatalf("objectsOf(10) = %v", os)
	}
	live := r.LiveItems()
	if len(live) != 5 {
		t.Fatalf("LiveItems = %d", len(live))
	}
	if r.SizeBits() <= 0 {
		t.Fatal("SizeBits not positive")
	}
}

func TestRelationGlobalRebuildShrink(t *testing.T) {
	r := New(Options{})
	for i := 0; i < 1000; i++ {
		r.Add(uint64(i), uint64(i%13))
	}
	for i := 0; i < 1000; i++ {
		r.Delete(uint64(i), uint64(i%13))
	}
	if r.Len() != 0 {
		t.Fatalf("Len = %d after full drain", r.Len())
	}
	if r.Stats().GlobalRebuilds == 0 {
		t.Fatal("expected global rebuilds during drain")
	}
	// Usable after drain.
	r.Add(5, 5)
	if !r.Related(5, 5) {
		t.Fatal("relation unusable after drain")
	}
}

func TestRelationTauBoundsDeadFraction(t *testing.T) {
	const tau = 4
	r := New(Options{Tau: tau})
	for i := 0; i < 2000; i++ {
		r.Add(uint64(i), uint64(i%31))
	}
	rng := rand.New(rand.NewSource(9))
	for _, i := range rng.Perm(2000)[:1500] {
		r.Delete(uint64(i), uint64(i%31))
		st := r.Stats()
		for j := 1; j < len(st.LevelSizes); j++ {
			total := st.LevelSizes[j] + st.LevelDead[j]
			if total > 0 && st.LevelDead[j]*tau > total {
				t.Fatalf("level %d dead fraction %d/%d exceeds 1/%d",
					j, st.LevelDead[j], total, tau)
			}
		}
	}
	if r.Stats().Purges == 0 {
		t.Fatal("expected purges")
	}
}

func BenchmarkRelationAdd(b *testing.B) {
	r := New(Options{})
	rng := rand.New(rand.NewSource(10))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Add(uint64(rng.Intn(1<<20)), uint64(rng.Intn(1<<10)))
	}
}

func BenchmarkRelationRelated(b *testing.B) {
	r := New(Options{})
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 100_000; i++ {
		r.Add(uint64(rng.Intn(1<<16)), uint64(rng.Intn(1<<8)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Related(uint64(rng.Intn(1<<16)), uint64(rng.Intn(1<<8)))
	}
}
