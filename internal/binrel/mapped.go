package binrel

import (
	"dyncoll/internal/engine"
	"dyncoll/internal/snap"
	"dyncoll/internal/wavelet"
)

// The v2 (mapped) snapshot adapter for relations. v1 always serializes
// a compressed level as its raw pairs and pays an O(n log n) buildSemi
// at load; the mapped form writes the already-built structure — object
// and label tables, the N boundaries, and the Huffman-shaped wavelet
// tree of S — so a mapped open is an aliasing pass plus O(σ) table
// validation, with deletion bitmaps deferred until the first Delete.

// MappedStore is one static store of a v2 relation snapshot.
type MappedStore struct {
	Meta    []byte // slot, gen, mode, dead pairs / raw pairs
	Payload []byte // mapped in place; empty for item-mode stores
}

// RetainFunc matches the collection contract (internal/core): it is
// told the mapped byte range backing each store opened in place.
type RetainFunc func(payload []byte, store any)

// encodeMapped writes the static relation structure in mapped form.
func (r *semiRel) encodeMapped(e *snap.MapEncoder) {
	e.Words(r.objects)
	e.Words(r.labels)
	e.Int32s(r.starts)
	r.s.EncodeMapped(e)
}

// deadPairs lists the lazily-deleted pairs so their deletions can be
// replayed at open — the relation analog of SemiDynamic.deadIDs. Nil
// bitmaps mean no deletions.
func (r *semiRel) deadPairs() []Pair {
	if r.alive == nil || r.dead == 0 {
		return nil
	}
	out := make([]Pair, 0, r.dead)
	for pos := 0; pos < r.s.Len(); pos++ {
		if !r.alive.Get(pos) {
			out = append(out, Pair{Object: r.objectAt(pos), Label: r.labels[r.s.Access(pos)]})
		}
	}
	return out
}

// openMappedSemi reconstructs a semiRel over a mapped payload. The
// tables are validated structurally (sorted, consistent boundaries,
// alphabet size matching the wavelet tree) in O(σ + objects).
func openMappedSemi(mv *snap.MapView, tau int) *semiRel {
	if tau < 2 {
		tau = 2
	}
	if tau > 4096 {
		tau = 4096
	}
	objects := mv.Words()
	labels := mv.Words()
	starts := mv.Int32s()
	s := wavelet.ViewMapped(mv)
	if mv.Err() != nil {
		return nil
	}
	if mv.Remaining() != 0 {
		mv.Fail("relation: %d trailing bytes in mapped payload", mv.Remaining())
		return nil
	}
	n := s.Len()
	if n == 0 || len(objects) == 0 {
		mv.Fail("relation: mapped store is empty")
		return nil
	}
	if s.Sigma() != len(labels) {
		mv.Fail("relation: %d labels for alphabet of %d", len(labels), s.Sigma())
		return nil
	}
	if len(starts) != len(objects)+1 || starts[0] != 0 || int(starts[len(objects)]) != n {
		mv.Fail("relation: boundary table of %d for %d objects over %d pairs", len(starts), len(objects), n)
		return nil
	}
	for i := 0; i < len(objects); i++ {
		if starts[i] >= starts[i+1] {
			mv.Fail("relation: empty or unordered range for object %d", i)
			return nil
		}
		if i > 0 && objects[i] <= objects[i-1] {
			mv.Fail("relation: object table not sorted at %d", i)
			return nil
		}
	}
	for i := 1; i < len(labels); i++ {
		if labels[i] <= labels[i-1] {
			mv.Fail("relation: label table not sorted at %d", i)
			return nil
		}
	}
	return &semiRel{
		objects: objects, labels: labels, starts: starts,
		s: s, tau: tau, live: n,
	}
}

// DumpMapped captures the quiesced ladder in v2 form: spine bytes plus
// one MappedStore per static store.
func (r *Relation) DumpMapped() ([]byte, []MappedStore) {
	d := r.eng.Dump()
	var se snap.Encoder
	encodeSpine(&se, &d)
	stores := make([]MappedStore, 0, len(d.Stores))
	for _, ds := range d.Stores {
		var meta snap.Encoder
		meta.Varint(int64(ds.Level))
		meta.Uvarint(ds.Gen)
		var payload []byte
		if sr, ok := ds.Store.(*semiRel); ok && sr.s.Len() > 0 {
			meta.Byte(snap.ModeMapped)
			encodePairs(&meta, sr.deadPairs())
			var me snap.MapEncoder
			sr.encodeMapped(&me)
			payload = me.Bytes()
		}
		if payload == nil {
			meta.Byte(snap.ModeItems)
			encodePairs(&meta, ds.Store.LiveItems())
		}
		stores = append(stores, MappedStore{Meta: meta.Bytes(), Payload: payload})
	}
	return se.Bytes(), stores
}

// RestoreMapped installs a v2 dump into the relation's (empty) engine;
// retain, when non-nil, is invoked for every store served in place.
// The error contract matches DecodeSnapshot.
func (r *Relation) RestoreMapped(spine []byte, stores []MappedStore, retain RetainFunc) error {
	dec := snap.NewDecoder(spine)
	var d engine.Dump[Pair, Pair]
	if err := decodeSpine(dec, &d); err != nil {
		return err
	}
	if n := dec.Remaining(); n != 0 {
		return snap.Corruptf("%d trailing spine bytes", n)
	}
	for _, ms := range stores {
		mdec := snap.NewDecoder(ms.Meta)
		level := int(mdec.Varint())
		gen := mdec.Uvarint()
		mode := mdec.Byte()
		if err := mdec.Err(); err != nil {
			return err
		}
		var st engine.Store[Pair, Pair]
		switch mode {
		case snap.ModeMapped:
			dead := decodePairs(mdec)
			if err := mdec.Err(); err != nil {
				return err
			}
			if n := mdec.Remaining(); n != 0 {
				return snap.Corruptf("%d trailing meta bytes at level %d", n, level)
			}
			mv := snap.NewMapView(ms.Payload)
			sr := openMappedSemi(mv, d.Tau)
			if sr == nil {
				return snap.Corruptf("level %d mapped relation: %v", level, mv.Err())
			}
			for _, p := range dead {
				if _, ok := sr.Delete(p); !ok {
					return snap.Corruptf("level %d deletes unknown pair (%d,%d)", level, p.Object, p.Label)
				}
			}
			if retain != nil {
				retain(ms.Payload, sr)
			}
			st = sr
		case snap.ModeItems:
			pairs := decodePairs(mdec)
			if err := mdec.Err(); err != nil {
				return err
			}
			if n := mdec.Remaining(); n != 0 {
				return snap.Corruptf("%d trailing meta bytes at level %d", n, level)
			}
			if len(pairs) == 0 {
				continue // empty stores contribute nothing
			}
			st = buildSemi(pairs, d.Tau)
		default:
			return snap.Corruptf("unknown mapped store mode %d", mode)
		}
		d.Stores = append(d.Stores, engine.StoreDump[Pair, Pair]{Level: level, Gen: gen, Store: st})
	}
	return r.eng.Restore(d)
}
