package binrel

import (
	"sort"

	"dyncoll/internal/dynbits"
	"dyncoll/internal/sparsebits"
	"dyncoll/internal/wavelet"
)

// Pair is one (object, label) element of a relation. It is both the
// engine item and its own key: pairs are comparable, so the generic
// ladder routes deletions and membership through its owner map in O(1).
type Pair struct {
	Object uint64
	Label  uint64
}

// semiRel is the deletion-only compressed relation — the static payload
// the generic engine dynamizes — built from the static relation
// encoding of Barbay et al.: static S and N plus lazy-deletion bitmaps.
type semiRel struct {
	objects []uint64 // sorted distinct objects (the paper's GN bitmap role)
	labels  []uint64 // sorted distinct labels (the paper's GC bitmap role)
	starts  []int32  // starts[i]..starts[i+1] is object i's range in S (the N sequence)

	s *wavelet.Tree // labels of S in the local alphabet

	tau int // Lemma 3 word width, kept for deferred materialization

	// Deletion state. All four are nil on a freshly mapped store —
	// nil means "every pair is live" — and materialize together on the
	// first Delete (see materialize).
	alive *sparsebits.Compressed // D: 1 = pair live (reporting)
	// aliveCnt answers counting queries on D in O(log n); it is a
	// Fenwick-backed copy of D (the paper cites [20] for this role).
	aliveCnt *dynbits.Vector

	// perLabel[a] marks which occurrences of local label a are live
	// (the D_a bitmaps) plus a live counter for O(1) counting.
	perLabel  []*sparsebits.Compressed
	liveCount []int32

	live int // live pairs
	dead int // deleted pairs
}

// buildSemi constructs the deletion-only structure over pairs. The pair
// slice is sorted in place by (object, label). tau is clamped to the
// range the lazy-deletion bitmaps accept (as NewSemiDynamic does for
// the document payload), so deserialized values cannot panic downstream.
func buildSemi(pairs []Pair, tau int) *semiRel {
	if tau < 2 {
		tau = 2
	}
	if tau > 4096 {
		tau = 4096
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].Object != pairs[j].Object {
			return pairs[i].Object < pairs[j].Object
		}
		return pairs[i].Label < pairs[j].Label
	})
	r := &semiRel{live: len(pairs)}

	// Local object table and the N boundaries.
	for i, p := range pairs {
		if i == 0 || p.Object != pairs[i-1].Object {
			r.objects = append(r.objects, p.Object)
			r.starts = append(r.starts, int32(i))
		}
	}
	r.starts = append(r.starts, int32(len(pairs)))

	// Local label alphabet.
	seen := make(map[uint64]struct{})
	for _, p := range pairs {
		if _, ok := seen[p.Label]; !ok {
			seen[p.Label] = struct{}{}
			r.labels = append(r.labels, p.Label)
		}
	}
	sort.Slice(r.labels, func(i, j int) bool { return r.labels[i] < r.labels[j] })

	// S in the local alphabet, Huffman-shaped so the space tracks the
	// zero-order entropy H of the label sequence (Theorem 2's nH term).
	syms := make([]uint32, len(pairs))
	counts := make([]int, len(r.labels))
	for i, p := range pairs {
		a := r.labelSym(p.Label)
		syms[i] = uint32(a)
		counts[a]++
	}
	r.s = wavelet.NewHuffman(syms, len(r.labels))
	r.tau = tau
	r.materialize()
	return r
}

// materialize allocates the all-live deletion bitmaps of a deferred
// (mapped) structure; no-op once they exist. O(n) in the pair count,
// paid on the first deletion rather than at open.
func (r *semiRel) materialize() {
	if r.alive != nil {
		return
	}
	n := r.s.Len()
	r.alive = sparsebits.NewCompressed(n, r.tau)
	r.aliveCnt = dynbits.New(n, true)
	r.perLabel = make([]*sparsebits.Compressed, len(r.labels))
	r.liveCount = make([]int32, len(r.labels))
	for a := range r.labels {
		c := r.s.Count(uint32(a))
		r.perLabel[a] = sparsebits.NewCompressed(c, r.tau)
		r.liveCount[a] = int32(c)
	}
}

// labelSym maps a client label to its local symbol, or -1.
func (r *semiRel) labelSym(label uint64) int {
	i := sort.Search(len(r.labels), func(i int) bool { return r.labels[i] >= label })
	if i < len(r.labels) && r.labels[i] == label {
		return i
	}
	return -1
}

// objectIdx maps a client object to its local index, or -1.
func (r *semiRel) objectIdx(object uint64) int {
	i := sort.Search(len(r.objects), func(i int) bool { return r.objects[i] >= object })
	if i < len(r.objects) && r.objects[i] == object {
		return i
	}
	return -1
}

// objectAt maps a position of S back to the client object owning it.
func (r *semiRel) objectAt(pos int) uint64 {
	i := sort.Search(len(r.starts)-1, func(i int) bool { return r.starts[i+1] > int32(pos) })
	return r.objects[i]
}

// findPos returns the position in S of the pair (object, label), or -1.
func (r *semiRel) findPos(object, label uint64) int {
	oi := r.objectIdx(object)
	if oi < 0 {
		return -1
	}
	a := r.labelSym(label)
	if a < 0 {
		return -1
	}
	lo, hi := int(r.starts[oi]), int(r.starts[oi+1])
	before, upto := r.s.RankPair(uint32(a), lo, hi)
	if upto == before {
		return -1
	}
	return r.s.Select(uint32(a), before+1)
}

// related reports whether the pair is present and live.
func (r *semiRel) related(object, label uint64) bool {
	pos := r.findPos(object, label)
	return pos >= 0 && (r.alive == nil || r.alive.Get(pos))
}

// Delete marks the pair dead, reporting whether it was live here
// (engine.Store; every pair weighs 1).
func (r *semiRel) Delete(p Pair) (int, bool) {
	pos := r.findPos(p.Object, p.Label)
	if pos < 0 {
		return 0, false
	}
	r.materialize()
	if !r.alive.Get(pos) {
		return 0, false
	}
	r.alive.Zero(pos)
	r.aliveCnt.Set(pos, false)
	sym, j := r.s.AccessRank(pos) // symbol and its occurrences before pos
	a := int(sym)
	r.perLabel[a].Zero(j)
	r.liveCount[a]--
	r.live--
	r.dead++
	return 1, true
}

// labelsOf streams the live labels of object; stops when fn returns
// false. Reports each label in O(1) + one wavelet access.
func (r *semiRel) labelsOf(object uint64, fn func(label uint64) bool) bool {
	oi := r.objectIdx(object)
	if oi < 0 {
		return true
	}
	lo, hi := int(r.starts[oi]), int(r.starts[oi+1])
	ok := true
	if r.alive == nil { // no deletions: the whole range is live
		for pos := lo; pos < hi; pos++ {
			if !fn(r.labels[r.s.Access(pos)]) {
				return false
			}
		}
		return true
	}
	r.alive.Report(lo, hi-1, func(pos int) bool {
		if !fn(r.labels[r.s.Access(pos)]) {
			ok = false
			return false
		}
		return true
	})
	return ok
}

// objectsOf streams the live objects related to label.
func (r *semiRel) objectsOf(label uint64, fn func(object uint64) bool) bool {
	a := r.labelSym(label)
	if a < 0 {
		return true
	}
	if r.perLabel == nil { // no deletions: every occurrence is live
		c := r.s.Count(uint32(a))
		for j := 0; j < c; j++ {
			pos := r.s.Select(uint32(a), j+1)
			if !fn(r.objectAt(pos)) {
				return false
			}
		}
		return true
	}
	da := r.perLabel[a]
	ok := true
	da.Report(0, da.Len()-1, func(j int) bool {
		pos := r.s.Select(uint32(a), j+1)
		if !fn(r.objectAt(pos)) {
			ok = false
			return false
		}
		return true
	})
	return ok
}

// countLabels counts live labels of object in O(log n).
func (r *semiRel) countLabels(object uint64) int {
	oi := r.objectIdx(object)
	if oi < 0 {
		return 0
	}
	lo, hi := int(r.starts[oi]), int(r.starts[oi+1])
	if r.aliveCnt == nil { // no deletions
		return hi - lo
	}
	return r.aliveCnt.Count1(lo, hi-1)
}

// countObjects counts live objects related to label in O(1).
func (r *semiRel) countObjects(label uint64) int {
	a := r.labelSym(label)
	if a < 0 {
		return 0
	}
	if r.liveCount == nil { // no deletions
		return r.s.Count(uint32(a))
	}
	return int(r.liveCount[a])
}

// pairsFunc streams the live pairs; stops when fn returns false,
// reporting whether enumeration ran to completion.
func (r *semiRel) pairsFunc(fn func(Pair) bool) bool {
	if r.s.Len() == 0 {
		return true
	}
	if r.alive == nil { // no deletions: every position is live
		for pos := 0; pos < r.s.Len(); pos++ {
			if !fn(Pair{Object: r.objectAt(pos), Label: r.labels[r.s.Access(pos)]}) {
				return false
			}
		}
		return true
	}
	ok := true
	r.alive.Report(0, r.alive.Len()-1, func(pos int) bool {
		if !fn(Pair{Object: r.objectAt(pos), Label: r.labels[r.s.Access(pos)]}) {
			ok = false
			return false
		}
		return true
	})
	return ok
}

// LiveItems lists all live pairs (engine.Store; used by rebuilds).
func (r *semiRel) LiveItems() []Pair {
	out := make([]Pair, 0, r.live)
	r.pairsFunc(func(p Pair) bool {
		out = append(out, p)
		return true
	})
	return out
}

// LiveKeys lists all live pair keys — for relations a pair is its own
// key, so this is LiveItems (engine.Store).
func (r *semiRel) LiveKeys() []Pair { return r.LiveItems() }

// LiveWeight and DeadWeight report live/deleted pair counts
// (engine.Store).
func (r *semiRel) LiveWeight() int { return r.live }
func (r *semiRel) DeadWeight() int { return r.dead }

// SizeBits estimates the footprint (engine.Store).
func (r *semiRel) SizeBits() int64 {
	total := r.s.SizeBits()
	total += int64(len(r.objects))*64 + int64(len(r.labels))*64 + int64(len(r.starts))*32
	total += int64(len(r.liveCount)) * 32
	if r.alive != nil {
		total += r.alive.SizeBits()
	}
	if r.aliveCnt != nil {
		total += r.aliveCnt.SizeBits()
	}
	for _, d := range r.perLabel {
		total += d.SizeBits()
	}
	return total
}
