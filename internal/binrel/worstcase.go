package binrel

import (
	"math"
	"sort"
	"sync"
)

// WorstCaseRelation is the Theorem 2 construction with Transformation 2's
// worst-case update machinery: the pair set lives in an uncompressed C0
// plus deletion-only compressed levels, and a level being merged is
// locked — still answering queries — while its replacement is built on a
// background goroutine. Foreground work per update stays proportional to
// the update (O(log^ε n) amortized bookkeeping, never a full rebuild),
// which is the paper's headline for dynamic relations.
//
// The query API matches Relation; construction differs only in
// scheduling. Options.Inline forces synchronous builds for deterministic
// tests.
type WorstCaseRelation struct {
	mu   sync.Mutex
	opts WCOptions

	c0     *c0rel
	levels []*semiRel
	locked []*semiRel
	maxes  []int

	pendingMerge []bool

	builds []*relBuild

	nf, tau int
	live    int

	stats WCStats
}

// WCOptions configure a WorstCaseRelation.
type WCOptions struct {
	// Tau, Epsilon, MinCapacity as in Options.
	Tau         int
	Epsilon     float64
	MinCapacity int
	// Inline forces background builds to complete synchronously.
	Inline bool
}

// WCStats reports machinery counters.
type WCStats struct {
	BackgroundBuilds int
	Parks            int
	Levels           int
	Rebalances       int
}

type relBuild struct {
	target int
	pairs  []Pair
	// sources stay queryable until the replacement lands.
	sources []*semiRel
	done    chan *semiRel

	tmu        sync.Mutex
	tombstones []Pair
	applied    int
}

func (b *relBuild) addTombstone(p Pair) {
	b.tmu.Lock()
	b.tombstones = append(b.tombstones, p)
	b.tmu.Unlock()
}

// NewWorstCase creates an empty worst-case dynamic relation.
func NewWorstCase(opts WCOptions) *WorstCaseRelation {
	if opts.Epsilon <= 0 || opts.Epsilon > 1 {
		opts.Epsilon = 0.5
	}
	if opts.MinCapacity <= 0 {
		opts.MinCapacity = 64
	}
	w := &WorstCaseRelation{opts: opts, c0: newC0rel()}
	w.reschedule(0)
	return w
}

func (w *WorstCaseRelation) reschedule(n int) {
	w.nf = n
	w.tau = w.opts.Tau
	if w.tau == 0 {
		w.tau = autoTau(n)
	}
	lg := math.Log2(float64(n) + 4)
	if lg < 2 {
		lg = 2
	}
	max0 := 2 * float64(n) / (lg * lg)
	if max0 < float64(w.opts.MinCapacity) {
		max0 = float64(w.opts.MinCapacity)
	}
	ratio := math.Pow(lg, w.opts.Epsilon)
	if ratio < 1.5 {
		ratio = 1.5
	}
	w.maxes = w.maxes[:0]
	w.maxes = append(w.maxes, int(max0))
	cap := max0
	for cap < 2*float64(n)+1 && len(w.maxes) < 64 {
		cap *= ratio
		w.maxes = append(w.maxes, int(cap))
	}
	if len(w.maxes) < 2 {
		w.maxes = append(w.maxes, int(cap*ratio))
	}
	for len(w.levels) < len(w.maxes) {
		w.levels = append(w.levels, nil)
		w.locked = append(w.locked, nil)
		w.pendingMerge = append(w.pendingMerge, false)
	}
}

func (w *WorstCaseRelation) targetBusy(t int) bool {
	for _, b := range w.builds {
		if b.target == t {
			return true
		}
	}
	return false
}

// slotBusy reports whether merging level j into j+1 must be deferred:
// either slot carries a locked structure or a build already targets j+1.
func (w *WorstCaseRelation) slotBusy(j int) bool {
	if j < len(w.locked) && w.locked[j] != nil {
		return true
	}
	if j+1 < len(w.locked) && w.locked[j+1] != nil {
		return true
	}
	return w.targetBusy(j + 1)
}

// cascadeBusy reports whether a cascade of C0 and levels 1..j into level
// j would collide with in-flight work.
func (w *WorstCaseRelation) cascadeBusy(j int) bool {
	for i := 0; i <= j && i < len(w.locked); i++ {
		if w.locked[i] != nil {
			return true
		}
	}
	for _, b := range w.builds {
		if b.target <= j {
			return true
		}
	}
	return false
}

func (w *WorstCaseRelation) launch(b *relBuild) {
	b.done = make(chan *semiRel, 1)
	w.builds = append(w.builds, b)
	w.stats.BackgroundBuilds++
	tau := w.tau
	run := func() {
		res := buildSemi(b.pairs, tau)
		b.tmu.Lock()
		for _, p := range b.tombstones {
			res.delete(p.Object, p.Label)
		}
		b.applied = len(b.tombstones)
		b.tmu.Unlock()
		b.done <- res
	}
	if w.opts.Inline {
		run()
		w.drain(true)
		return
	}
	go run()
}

// drain absorbs finished builds; wait blocks until all complete.
func (w *WorstCaseRelation) drain(wait bool) {
	for i := 0; i < len(w.builds); {
		b := w.builds[i]
		var res *semiRel
		if wait {
			res = <-b.done
		} else {
			select {
			case res = <-b.done:
			default:
				i++
				continue
			}
		}
		w.finish(b, res)
		w.builds = append(w.builds[:i], w.builds[i+1:]...)
	}
	w.reconcile()
}

func (w *WorstCaseRelation) finish(b *relBuild, res *semiRel) {
	b.tmu.Lock()
	for _, p := range b.tombstones[b.applied:] {
		res.delete(p.Object, p.Label)
	}
	b.applied = len(b.tombstones)
	b.tmu.Unlock()
	// Retire sources.
	for j := range w.locked {
		for _, src := range b.sources {
			if w.locked[j] == src {
				w.locked[j] = nil
			}
			if w.levels[j] == src {
				w.levels[j] = nil
			}
		}
	}
	if w.levels[b.target] != nil {
		panic("binrel: build target occupied")
	}
	if res.live > 0 {
		w.levels[b.target] = res
	}
}

// reconcile retries deferred deletion-triggered merges.
func (w *WorstCaseRelation) reconcile() {
	for j := 1; j < len(w.maxes)-1; j++ {
		if !w.pendingMerge[j] {
			continue
		}
		lvl := w.levels[j]
		if lvl == nil || lvl.dead*w.tau <= lvl.live+lvl.dead {
			w.pendingMerge[j] = false
			continue
		}
		if w.slotBusy(j) {
			continue
		}
		w.pendingMerge[j] = false
		w.mergeUp(j, nil)
	}
}

// mergeUp locks level j and rebuilds it into level j+1 in the
// background. Callers must have checked slotBusy(j).
func (w *WorstCaseRelation) mergeUp(j int, extra *Pair) {
	b := &relBuild{target: j + 1}
	if w.levels[j] != nil {
		w.locked[j] = w.levels[j]
		w.levels[j] = nil
		b.pairs = append(b.pairs, w.locked[j].livePairs()...)
		b.sources = append(b.sources, w.locked[j])
	}
	if w.levels[j+1] != nil {
		// The occupant keeps answering queries as a locked structure until
		// the replacement lands.
		w.locked[j+1] = w.levels[j+1]
		w.levels[j+1] = nil
		b.pairs = append(b.pairs, w.locked[j+1].livePairs()...)
		b.sources = append(b.sources, w.locked[j+1])
	}
	if extra != nil {
		b.pairs = append(b.pairs, *extra)
	}
	if len(b.pairs) == 0 {
		w.locked[j] = nil
		return
	}
	w.launch(b)
}

// stores lists every queryable structure.
func (w *WorstCaseRelation) stores() []*semiRel {
	var out []*semiRel
	for j := range w.levels {
		if w.levels[j] != nil {
			out = append(out, w.levels[j])
		}
		if w.locked[j] != nil {
			out = append(out, w.locked[j])
		}
	}
	return out
}

// Len reports the number of live pairs.
func (w *WorstCaseRelation) Len() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.live
}

// Tau reports the τ in effect.
func (w *WorstCaseRelation) Tau() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.tau
}

// Add inserts the pair; false if already present.
func (w *WorstCaseRelation) Add(object, label uint64) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.drain(false)
	if w.relatedLocked(object, label) {
		return false
	}
	w.live++
	if w.c0.size+1 <= w.maxes[0] {
		w.c0.add(object, label)
		w.checkRebalance()
		return true
	}
	// Find the first level that can absorb C0 and the new pair.
	prefix := w.c0.size + 1
	for j := 1; j < len(w.maxes); j++ {
		if w.levels[j] != nil {
			prefix += w.levels[j].live
		}
		if prefix > w.maxes[j] {
			continue
		}
		if w.cascadeBusy(j) {
			// Don't wait for the in-flight build: overflow C0 softly
			// (2·max_0 keeps the uncompressed share at O(n/log²n)). Only
			// when even the soft cap is hit do we block on the build.
			if w.c0.size+1 <= 2*w.maxes[0] {
				w.c0.add(object, label)
				w.stats.Parks++
				w.checkRebalance()
				return true
			}
			w.drain(true)
		}
		w.cascadeInto(j, Pair{Object: object, Label: label})
		w.checkRebalance()
		return true
	}
	// Nothing fits: rebalance with the new pair included.
	w.globalRebuild(&Pair{Object: object, Label: label})
	return true
}

// cascadeInto merges C0 and levels 1..j into level j via a background
// build. The old C0 content is parked as a locked level-0 structure
// (built inline — O(|C0|) with |C0| = O(n/log²n)) so it stays queryable;
// the new pair goes into the fresh C0 and is visible immediately.
func (w *WorstCaseRelation) cascadeInto(j int, extra Pair) {
	b := &relBuild{target: j}
	b.pairs = append(b.pairs, w.c0.pairs()...)
	if len(b.pairs) > 0 {
		old := buildSemi(append([]Pair(nil), b.pairs...), w.tau)
		w.locked[0] = old
		b.sources = append(b.sources, old)
	}
	w.c0 = newC0rel()
	w.c0.add(extra.Object, extra.Label)
	for i := 1; i <= j; i++ {
		if w.levels[i] != nil {
			b.pairs = append(b.pairs, w.levels[i].livePairs()...)
			b.sources = append(b.sources, w.levels[i])
			w.locked[i] = w.levels[i]
			w.levels[i] = nil
		}
	}
	w.launch(b)
}

// globalRebuild rebuilds everything into the top level. Old structures
// stay queryable as locked occupants of their own slots while the
// rebuild runs in the background; the extra pair (if any) goes into the
// fresh C0.
func (w *WorstCaseRelation) globalRebuild(extra *Pair) {
	w.drain(true) // rebalances are rare; quiescing first keeps slots simple
	var pairs []Pair
	pairs = append(pairs, w.c0.pairs()...)
	b := &relBuild{}
	if len(pairs) > 0 {
		old := buildSemi(append([]Pair(nil), pairs...), w.tau)
		w.locked[0] = old
		b.sources = append(b.sources, old)
	}
	for i, l := range w.levels {
		if l != nil {
			pairs = append(pairs, l.livePairs()...)
			b.sources = append(b.sources, l)
			w.locked[i] = l
			w.levels[i] = nil
		}
	}
	w.c0 = newC0rel()
	if extra != nil {
		w.c0.add(extra.Object, extra.Label)
	}
	w.reschedule(len(pairs) + w.c0.size)
	w.stats.Rebalances++
	if len(pairs) == 0 {
		return
	}
	b.target = len(w.maxes) - 1
	b.pairs = pairs
	w.launch(b)
}

func (w *WorstCaseRelation) checkRebalance() {
	if w.live < w.opts.MinCapacity {
		return
	}
	if w.live >= 2*w.nf || (w.nf > 2*w.opts.MinCapacity && w.live <= w.nf/2) {
		w.globalRebuild(nil)
	}
}

// Delete removes the pair; reports whether it was present.
func (w *WorstCaseRelation) Delete(object, label uint64) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.drain(false)
	if w.c0.delete(object, label) {
		w.live--
		w.checkRebalance()
		return true
	}
	for _, l := range w.stores() {
		if l.delete(object, label) {
			w.live--
			w.tombstone(l, Pair{Object: object, Label: label})
			w.afterDelete(l)
			w.checkRebalance()
			return true
		}
	}
	return false
}

// tombstone records the deletion with any in-flight build sourcing l.
func (w *WorstCaseRelation) tombstone(l *semiRel, p Pair) {
	for _, b := range w.builds {
		for _, src := range b.sources {
			if src == l {
				b.addTombstone(p)
			}
		}
	}
}

// afterDelete purges a level that crossed the dead-fraction threshold.
func (w *WorstCaseRelation) afterDelete(l *semiRel) {
	for j := 1; j < len(w.maxes)-1; j++ {
		if w.levels[j] != l {
			continue
		}
		total := l.live + l.dead
		if total == 0 || l.dead*w.tau <= total {
			return
		}
		if w.slotBusy(j) {
			w.pendingMerge[j] = true
			return
		}
		w.mergeUp(j, nil)
		return
	}
}

func (w *WorstCaseRelation) relatedLocked(object, label uint64) bool {
	if w.c0.related(object, label) {
		return true
	}
	for _, l := range w.stores() {
		if l.related(object, label) {
			return true
		}
	}
	return false
}

// Related reports whether object and label are related.
func (w *WorstCaseRelation) Related(object, label uint64) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.drain(false)
	return w.relatedLocked(object, label)
}

// LabelsOf streams the labels of object; stops when fn returns false.
func (w *WorstCaseRelation) LabelsOf(object uint64, fn func(label uint64) bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, l := range w.c0.fwd[object] {
		if !fn(l) {
			return
		}
	}
	for _, lvl := range w.stores() {
		if !lvl.labelsOf(object, fn) {
			return
		}
	}
}

// ObjectsOf streams the objects of label; stops when fn returns false.
func (w *WorstCaseRelation) ObjectsOf(label uint64, fn func(object uint64) bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, o := range w.c0.rev[label] {
		if !fn(o) {
			return
		}
	}
	for _, lvl := range w.stores() {
		if !lvl.objectsOf(label, fn) {
			return
		}
	}
}

// Labels returns the sorted labels of object.
func (w *WorstCaseRelation) Labels(object uint64) []uint64 {
	var out []uint64
	w.LabelsOf(object, func(l uint64) bool {
		out = append(out, l)
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Objects returns the sorted objects of label.
func (w *WorstCaseRelation) Objects(label uint64) []uint64 {
	var out []uint64
	w.ObjectsOf(label, func(o uint64) bool {
		out = append(out, o)
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// CountLabels counts the labels of object.
func (w *WorstCaseRelation) CountLabels(object uint64) int {
	w.mu.Lock()
	defer w.mu.Unlock()
	n := len(w.c0.fwd[object])
	for _, lvl := range w.stores() {
		n += lvl.countLabels(object)
	}
	return n
}

// CountObjects counts the objects of label.
func (w *WorstCaseRelation) CountObjects(label uint64) int {
	w.mu.Lock()
	defer w.mu.Unlock()
	n := len(w.c0.rev[label])
	for _, lvl := range w.stores() {
		n += lvl.countObjects(label)
	}
	return n
}

// PairsFunc streams every live pair (unspecified order); enumeration
// stops when fn returns false. Nothing is materialized.
func (w *WorstCaseRelation) PairsFunc(fn func(Pair) bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for o, ls := range w.c0.fwd {
		for _, l := range ls {
			if !fn(Pair{Object: o, Label: l}) {
				return
			}
		}
	}
	for _, lvl := range w.stores() {
		if !lvl.pairsFunc(fn) {
			return
		}
	}
}

// Pairs returns every live pair (unspecified order).
func (w *WorstCaseRelation) Pairs() []Pair {
	out := make([]Pair, 0, w.Len())
	w.PairsFunc(func(p Pair) bool {
		out = append(out, p)
		return true
	})
	return out
}

// WaitIdle blocks until all background builds have landed.
func (w *WorstCaseRelation) WaitIdle() {
	w.mu.Lock()
	defer w.mu.Unlock()
	for len(w.builds) > 0 {
		w.drain(true)
	}
}

// Stats returns machinery counters.
func (w *WorstCaseRelation) Stats() WCStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	st := w.stats
	st.Levels = len(w.maxes)
	return st
}

// SizeBits estimates the footprint.
func (w *WorstCaseRelation) SizeBits() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	total := w.c0.sizeBits()
	for _, lvl := range w.stores() {
		total += lvl.sizeBits()
	}
	return total
}
