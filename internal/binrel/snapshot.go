package binrel

import (
	"dyncoll/internal/engine"
	"dyncoll/internal/snap"
)

// Snapshot adapter for the pair payload. Every pair weighs 1 and the
// compressed encoding (semiRel) is rebuilt from its live pairs in
// O(n log n), so pair levels always use the raw-items form: the ladder
// section is just the schedule anchors plus one pair list per store.
// (The binary fast path exists for document collections, whose static
// indexes cost O(n·u(n)) to rebuild; see internal/core.)

// encodePairs appends a length-prefixed pair list.
func encodePairs(e *snap.Encoder, pairs []Pair) {
	e.Uvarint(uint64(len(pairs)))
	for _, p := range pairs {
		e.Uvarint(p.Object)
		e.Uvarint(p.Label)
	}
}

// decodePairs reads a pair list.
func decodePairs(dec *snap.Decoder) []Pair {
	n := dec.Count(2)
	if dec.Err() != nil {
		return nil
	}
	pairs := make([]Pair, n)
	for i := range pairs {
		pairs[i] = Pair{Object: dec.Uvarint(), Label: dec.Uvarint()}
	}
	if dec.Err() != nil {
		return nil
	}
	return pairs
}

// EncodeSnapshot writes the relation's quiesced ladder into e.
func (r *Relation) EncodeSnapshot(e *snap.Encoder) {
	d := r.eng.Dump()
	e.Uvarint(uint64(d.NF))
	e.Uvarint(uint64(d.Tau))
	encodePairs(e, d.C0)
	e.Uvarint(uint64(len(d.Stores)))
	for _, ds := range d.Stores {
		e.Varint(int64(ds.Level))
		encodePairs(e, ds.Store.LiveItems())
	}
}

// DecodeSnapshot reads a ladder section from dec and installs it into
// the relation's (empty) engine, rebuilding each compressed level from
// its pairs. Corrupt input fails with an error wrapping
// snap.ErrBadSnapshot and never panics; the relation must be discarded
// on error.
func (r *Relation) DecodeSnapshot(dec *snap.Decoder) error {
	var d engine.Dump[Pair, Pair]
	d.NF = dec.Int()
	d.Tau = dec.Int()
	d.C0 = decodePairs(dec)
	nStores := dec.Count(2)
	if err := dec.Err(); err != nil {
		return err
	}
	tau := d.Tau // buildSemi clamps out-of-range values itself
	for i := 0; i < nStores; i++ {
		level := int(dec.Varint())
		pairs := decodePairs(dec)
		if err := dec.Err(); err != nil {
			return err
		}
		if len(pairs) == 0 {
			// An empty store contributes nothing (and the compressed
			// encoding requires a non-empty alphabet).
			continue
		}
		d.Stores = append(d.Stores, engine.StoreDump[Pair, Pair]{
			Level: level,
			Store: buildSemi(pairs, tau),
		})
	}
	return r.eng.Restore(d)
}
