package binrel

import (
	"dyncoll/internal/engine"
	"dyncoll/internal/snap"
)

// Snapshot adapter for the pair payload. Every pair weighs 1 and the
// compressed encoding (semiRel) is rebuilt from its live pairs in
// O(n log n), so pair levels always use the raw-items form: the ladder
// section is just the schedule anchors plus one pair list per store.
// (The binary fast path exists for document collections, whose static
// indexes cost O(n·u(n)) to rebuild; see internal/core.)

// encodePairs appends a length-prefixed pair list.
func encodePairs(e *snap.Encoder, pairs []Pair) {
	e.Uvarint(uint64(len(pairs)))
	for _, p := range pairs {
		e.Uvarint(p.Object)
		e.Uvarint(p.Label)
	}
}

// decodePairs reads a pair list.
func decodePairs(dec *snap.Decoder) []Pair {
	n := dec.Count(2)
	if dec.Err() != nil {
		return nil
	}
	pairs := make([]Pair, n)
	for i := range pairs {
		pairs[i] = Pair{Object: dec.Uvarint(), Label: dec.Uvarint()}
	}
	if dec.Err() != nil {
		return nil
	}
	return pairs
}

// encodeSpine writes the ladder's schedule anchors and raw C0 pairs.
func encodeSpine(e *snap.Encoder, d *engine.Dump[Pair, Pair]) {
	e.Uvarint(uint64(d.NF))
	e.Uvarint(uint64(d.Tau))
	encodePairs(e, d.C0)
}

// encodeStore writes one static store's section: slot plus live pairs.
func encodeStore(e *snap.Encoder, ds engine.StoreDump[Pair, Pair]) {
	e.Varint(int64(ds.Level))
	encodePairs(e, ds.Store.LiveItems())
}

// EncodeSnapshot writes the relation's quiesced ladder into e.
func (r *Relation) EncodeSnapshot(e *snap.Encoder) {
	d := r.eng.Dump()
	encodeSpine(e, &d)
	e.Uvarint(uint64(len(d.Stores)))
	for _, ds := range d.Stores {
		encodeStore(e, ds)
	}
}

// DumpSections captures the quiesced ladder as a spine (schedule
// anchors + C0 pairs) plus one Section per static store, encoded
// exactly as EncodeSnapshot would; see the collection counterpart in
// internal/core for the reuse contract.
func (r *Relation) DumpSections(reuse func(level int, gen uint64, dead int) bool) ([]byte, []snap.Section) {
	d := r.eng.Dump()
	var se snap.Encoder
	encodeSpine(&se, &d)
	secs := make([]snap.Section, 0, len(d.Stores))
	for _, ds := range d.Stores {
		dead := ds.Store.DeadWeight()
		sec := snap.Section{Level: ds.Level, Gen: ds.Gen, Dead: dead}
		if reuse == nil || !reuse(ds.Level, ds.Gen, dead) {
			var e snap.Encoder
			encodeStore(&e, ds)
			sec.Bytes = e.Bytes()
		}
		secs = append(secs, sec)
	}
	return se.Bytes(), secs
}

// DecodeSnapshot reads a ladder section from dec and installs it into
// the relation's (empty) engine, rebuilding each compressed level from
// its pairs. Corrupt input fails with an error wrapping
// snap.ErrBadSnapshot and never panics; the relation must be discarded
// on error.
func (r *Relation) DecodeSnapshot(dec *snap.Decoder) error {
	var d engine.Dump[Pair, Pair]
	if err := decodeSpine(dec, &d); err != nil {
		return err
	}
	nStores := dec.Count(2)
	if err := dec.Err(); err != nil {
		return err
	}
	for i := 0; i < nStores; i++ {
		ds, err := decodeStore(dec, d.Tau)
		if err != nil {
			return err
		}
		if ds.Store == nil {
			// An empty store contributes nothing (and the compressed
			// encoding requires a non-empty alphabet).
			continue
		}
		d.Stores = append(d.Stores, ds)
	}
	return r.eng.Restore(d)
}

// decodeSpine reads the schedule anchors and C0 pairs.
func decodeSpine(dec *snap.Decoder, d *engine.Dump[Pair, Pair]) error {
	d.NF = dec.Int()
	d.Tau = dec.Int()
	d.C0 = decodePairs(dec)
	return dec.Err()
}

// decodeStore reads one static store's section, rebuilding the
// compressed level from its pairs. An empty pair list yields a zero
// StoreDump (nil Store) the caller must skip. tau is the ladder's
// lazy-deletion parameter (buildSemi clamps out-of-range values
// itself).
func decodeStore(dec *snap.Decoder, tau int) (engine.StoreDump[Pair, Pair], error) {
	var zero engine.StoreDump[Pair, Pair]
	level := int(dec.Varint())
	pairs := decodePairs(dec)
	if err := dec.Err(); err != nil {
		return zero, err
	}
	if len(pairs) == 0 {
		return zero, nil
	}
	return engine.StoreDump[Pair, Pair]{
		Level: level,
		Store: buildSemi(pairs, tau),
	}, nil
}

// RestoreSections is DecodeSnapshot for the sectioned form: spine bytes
// plus one Section per store, as produced by DumpSections (possibly
// reassembled from checkpoint segment files). Each section's Gen is
// installed into the engine so the next incremental checkpoint can
// reuse the very segments this relation was loaded from.
func (r *Relation) RestoreSections(spine []byte, secs []snap.Section) error {
	dec := snap.NewDecoder(spine)
	var d engine.Dump[Pair, Pair]
	if err := decodeSpine(dec, &d); err != nil {
		return err
	}
	if n := dec.Remaining(); n != 0 {
		return snap.Corruptf("%d trailing spine bytes", n)
	}
	for _, s := range secs {
		sdec := snap.NewDecoder(s.Bytes)
		ds, err := decodeStore(sdec, d.Tau)
		if err != nil {
			return err
		}
		if n := sdec.Remaining(); n != 0 {
			return snap.Corruptf("%d trailing section bytes at level %d", n, ds.Level)
		}
		if ds.Store == nil {
			continue
		}
		ds.Gen = s.Gen
		d.Stores = append(d.Stores, ds)
	}
	return r.eng.Restore(d)
}
