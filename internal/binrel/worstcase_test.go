package binrel

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func wcVariants() []struct {
	name string
	mk   func() *WorstCaseRelation
} {
	return []struct {
		name string
		mk   func() *WorstCaseRelation
	}{
		{"inline", func() *WorstCaseRelation { return NewWorstCase(WCOptions{Inline: true}) }},
		{"background", func() *WorstCaseRelation { return NewWorstCase(WCOptions{}) }},
		{"tau8", func() *WorstCaseRelation { return NewWorstCase(WCOptions{Tau: 8, Inline: true}) }},
	}
}

func TestWorstCaseRelationRandomOps(t *testing.T) {
	for _, v := range wcVariants() {
		t.Run(v.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(600))
			w := v.mk()
			m := newRelModel()
			const objects, labels = 40, 25
			for step := 0; step < 3000; step++ {
				o := uint64(rng.Intn(objects) + 1)
				l := uint64(rng.Intn(labels) + 1)
				if rng.Float64() < 0.6 {
					if w.Add(o, l) != m.add(o, l) {
						t.Fatalf("step %d: Add(%d,%d) disagreement", step, o, l)
					}
				} else {
					if w.Delete(o, l) != m.del(o, l) {
						t.Fatalf("step %d: Delete(%d,%d) disagreement", step, o, l)
					}
				}
				if w.Len() != len(m.pairs) {
					t.Fatalf("step %d: Len = %d, want %d", step, w.Len(), len(m.pairs))
				}
				if step%151 == 0 {
					o := uint64(rng.Intn(objects) + 1)
					l := uint64(rng.Intn(labels) + 1)
					if w.Related(o, l) != m.related(o, l) {
						t.Fatalf("step %d: Related disagreement", step)
					}
					if !sameU64(w.Labels(o), m.labels(o)) {
						t.Fatalf("step %d: Labels(%d) = %v, want %v", step, o, w.Labels(o), m.labels(o))
					}
					if !sameU64(w.Objects(l), m.objects(l)) {
						t.Fatalf("step %d: Objects(%d) mismatch", step, l)
					}
					if w.CountLabels(o) != len(m.labels(o)) || w.CountObjects(l) != len(m.objects(l)) {
						t.Fatalf("step %d: counts mismatch", step)
					}
				}
			}
			w.WaitIdle()
			for o := uint64(1); o <= objects; o++ {
				if !sameU64(w.Labels(o), m.labels(o)) {
					t.Fatalf("final Labels(%d) mismatch: %v vs %v", o, w.Labels(o), m.labels(o))
				}
			}
			for l := uint64(1); l <= labels; l++ {
				if !sameU64(w.Objects(l), m.objects(l)) {
					t.Fatalf("final Objects(%d) mismatch", l)
				}
			}
		})
	}
}

func TestWorstCaseRelationBasics(t *testing.T) {
	w := NewWorstCase(WCOptions{Inline: true})
	if w.Delete(1, 1) {
		t.Fatal("Delete on empty succeeded")
	}
	if !w.Add(1, 1) || w.Add(1, 1) {
		t.Fatal("Add semantics wrong")
	}
	if !w.Related(1, 1) || w.Related(1, 2) {
		t.Fatal("Related wrong")
	}
	if !w.Delete(1, 1) || w.Delete(1, 1) {
		t.Fatal("Delete semantics wrong")
	}
	if w.Len() != 0 {
		t.Fatalf("Len = %d", w.Len())
	}
	if w.SizeBits() <= 0 {
		t.Fatal("SizeBits not positive for allocated structure")
	}
}

func TestWorstCaseRelationChurnBackground(t *testing.T) {
	// Heavy churn with real background builds; queries must stay exact
	// while builds are in flight.
	w := NewWorstCase(WCOptions{})
	m := newRelModel()
	rng := rand.New(rand.NewSource(601))
	for i := 0; i < 5000; i++ {
		o := uint64(rng.Intn(300))
		l := uint64(rng.Intn(64))
		if rng.Float64() < 0.65 {
			if w.Add(o, l) != m.add(o, l) {
				t.Fatalf("i=%d Add disagreement", i)
			}
		} else {
			if w.Delete(o, l) != m.del(o, l) {
				t.Fatalf("i=%d Delete disagreement", i)
			}
		}
		if i%500 == 0 {
			o := uint64(rng.Intn(300))
			if w.CountLabels(o) != len(m.labels(o)) {
				t.Fatalf("i=%d CountLabels(%d) = %d want %d", i, o, w.CountLabels(o), len(m.labels(o)))
			}
		}
	}
	w.WaitIdle()
	if w.Len() != len(m.pairs) {
		t.Fatalf("final Len = %d, want %d", w.Len(), len(m.pairs))
	}
	st := w.Stats()
	if st.BackgroundBuilds == 0 {
		t.Fatal("expected background builds")
	}
}

func TestWorstCaseRelationDrainAll(t *testing.T) {
	w := NewWorstCase(WCOptions{Inline: true})
	for i := 0; i < 800; i++ {
		w.Add(uint64(i), uint64(i%17))
	}
	for i := 0; i < 800; i++ {
		if !w.Delete(uint64(i), uint64(i%17)) {
			t.Fatalf("Delete(%d) failed", i)
		}
	}
	if w.Len() != 0 {
		t.Fatalf("Len = %d after drain", w.Len())
	}
	// Reusable after full drain.
	if !w.Add(5, 5) || !w.Related(5, 5) {
		t.Fatal("unusable after drain")
	}
}

func TestWorstCaseRelationQuick(t *testing.T) {
	f := func(ops []uint16) bool {
		w := NewWorstCase(WCOptions{MinCapacity: 8, Inline: true})
		m := newRelModel()
		for _, op := range ops {
			o := uint64(op>>8) % 12
			l := uint64(op) % 12
			if op%3 == 0 {
				if w.Delete(o, l) != m.del(o, l) {
					return false
				}
			} else {
				if w.Add(o, l) != m.add(o, l) {
					return false
				}
			}
		}
		if w.Len() != len(m.pairs) {
			return false
		}
		for o := uint64(0); o < 12; o++ {
			if !sameU64(w.Labels(o), m.labels(o)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestWorstCaseRelationEarlyStop(t *testing.T) {
	w := NewWorstCase(WCOptions{Inline: true})
	for i := 0; i < 200; i++ {
		w.Add(3, uint64(i))
		w.Add(uint64(i+500), 7)
	}
	n := 0
	w.LabelsOf(3, func(uint64) bool { n++; return n < 9 })
	if n != 9 {
		t.Fatalf("LabelsOf early stop visited %d", n)
	}
	n = 0
	w.ObjectsOf(7, func(uint64) bool { n++; return n < 4 })
	if n != 4 {
		t.Fatalf("ObjectsOf early stop visited %d", n)
	}
}
