package baseline

import (
	"testing"

	"dyncoll/internal/doc"
)

func TestDynFMDefaults(t *testing.T) {
	x := NewDynFM(0) // invalid → default
	if x.SampleRate() != 16 {
		t.Fatalf("default sample rate = %d", x.SampleRate())
	}
	x2 := NewDynFM(-3)
	if x2.SampleRate() != 16 {
		t.Fatalf("negative sample rate not defaulted: %d", x2.SampleRate())
	}
	x3 := NewDynFM(7)
	if x3.SampleRate() != 7 {
		t.Fatalf("SampleRate = %d", x3.SampleRate())
	}
}

func TestBaselineEmptyPatternSemantics(t *testing.T) {
	for _, v := range blVariants() {
		t.Run(v.name, func(t *testing.T) {
			x := v.mk()
			x.Insert(doc.Doc{ID: 1, Data: []byte{1, 2, 3}})
			x.Insert(doc.Doc{ID: 2, Data: []byte{4}})
			if got := x.Count(nil); got != 4 {
				t.Fatalf("Count(nil) = %d, want 4", got)
			}
			seen := 0
			x.FindFunc(nil, func(Occurrence) bool {
				seen++
				return true
			})
			if seen != 4 {
				t.Fatalf("FindFunc(nil) visited %d", seen)
			}
			// Early stop on the empty-pattern path.
			seen = 0
			x.FindFunc(nil, func(Occurrence) bool {
				seen++
				return seen < 2
			})
			if seen != 2 {
				t.Fatalf("early stop visited %d", seen)
			}
		})
	}
}

func TestBaselineDocLenPaths(t *testing.T) {
	for _, v := range blVariants() {
		t.Run(v.name, func(t *testing.T) {
			x := v.mk()
			x.Insert(doc.Doc{ID: 5, Data: []byte{1, 1}})
			if n, ok := x.DocLen(5); !ok || n != 2 {
				t.Fatalf("DocLen = %d, %v", n, ok)
			}
			if _, ok := x.DocLen(6); ok {
				t.Fatal("DocLen of absent doc succeeded")
			}
		})
	}
}

func TestDynFMAbsentPattern(t *testing.T) {
	x := NewDynFM(4)
	x.Insert(doc.Doc{ID: 1, Data: []byte{1, 2, 3}})
	if got := x.Count([]byte{4}); got != 0 {
		t.Fatalf("Count(absent) = %d", got)
	}
	if occs := x.Find([]byte{3, 2, 1}); len(occs) != 0 {
		t.Fatalf("Find(absent) = %v", occs)
	}
	// Pattern longer than the whole collection.
	long := make([]byte, 50)
	for i := range long {
		long[i] = 1
	}
	if got := x.Count(long); got != 0 {
		t.Fatalf("Count(long) = %d", got)
	}
}

func TestDynFMInterleavedGrowShrink(t *testing.T) {
	x := NewDynFM(2)
	m := newModel()
	id := uint64(1)
	payloads := [][]byte{
		{1}, {2, 2}, {1, 2, 1}, {3, 1, 3, 1}, {2, 2, 2, 2, 2},
	}
	for round := 0; round < 20; round++ {
		for _, p := range payloads {
			d := doc.Doc{ID: id, Data: p}
			x.Insert(d)
			m.insert(d)
			id++
		}
		// Delete the two oldest surviving docs.
		removed := 0
		for did := uint64(1); did < id && removed < 2; did++ {
			if _, ok := m.docs[did]; ok {
				x.Delete(did)
				m.delete(did)
				removed++
			}
		}
		for _, p := range [][]byte{{1}, {2, 2}, {3, 1}} {
			if got, want := x.Count(p), len(m.find(p)); got != want {
				t.Fatalf("round %d: Count(%v) = %d, want %d", round, p, got, want)
			}
		}
		if x.Len() != m.symbols() || x.DocCount() != len(m.docs) {
			t.Fatalf("round %d: Len/DocCount drift", round)
		}
	}
}

func TestSTIndexEarlyStopNonEmpty(t *testing.T) {
	x := NewSTIndex()
	for i := 1; i <= 5; i++ {
		x.Insert(doc.Doc{ID: uint64(i), Data: []byte{9, 9, 9, 9}})
	}
	n := 0
	x.FindFunc([]byte{9, 9}, func(Occurrence) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Fatalf("early stop visited %d", n)
	}
	if got := x.Count(nil); got != 20 {
		t.Fatalf("Count(nil) = %d", got)
	}
}
