// Package baseline implements the prior-art dynamic indexes the paper
// compares against (Table 2):
//
//   - DynFM — a dynamic compressed index in the style of Chan–Hon–Lam [9],
//     Mäkinen–Navarro [30, 31] and Navarro–Nekrich [35]: the collection's
//     BWT is maintained in a dynamic wavelet tree, so every query symbol
//     costs one dynamic rank, i.e. Θ(log n) per symbol — the
//     Fredman–Saks-bounded behaviour the paper circumvents;
//   - STIndex — the uncompressed O(n log n)-bit generalized-suffix-tree
//     solution (the paper's Section A.2 strawman), fastest but fat.
//
// Both expose the same operations as the paper's transformations so the
// benchmark harness can run identical workloads over all three.
package baseline

import (
	"fmt"
	"sort"

	"dyncoll/internal/core"
	"dyncoll/internal/doc"
	"dyncoll/internal/dynseq"
)

// DynFM is a dynamic FM-index over a document collection. The BWT of the
// collection (each document treated as its own cycle, terminated by the
// reserved separator 0x00) lives in a dynamic wavelet tree; inserting or
// deleting a document runs the standard per-symbol BWT update loop, and
// queries run backward search — every step a dynamic rank.
type DynFM struct {
	bwt    *dynseq.Wavelet   // the BWT sequence, separators included
	marked *dynseq.BitVector // rows carrying a suffix-array sample
	// samples[k] packs (docSlot << 32 | offset) for the k-th marked row.
	samples *dynseq.Uint64Array

	// counts[c] is the number of occurrences of symbol c in the BWT;
	// prefix sums give the C array. σ ≤ 256, so plain recomputation of
	// C[c] costs O(σ) — cheaper in practice than a Fenwick at this size.
	counts [256]int

	// sepDocs[i] is the document whose separator row is row i of the
	// $-block (rows [0, ρ)). Kept as a slice: ρ documents cost O(ρ)
	// per update, matching the O(ρ log n) bits the paper budgets for
	// navigation between documents.
	sepDocs []uint64

	meta   map[uint64]*docMeta
	slots  []uint64 // docSlot → document ID
	s      int      // sample rate
	length int      // total payload symbols
}

type docMeta struct {
	slot int
	len  int
}

// NewDynFM creates an empty baseline index with suffix-array sample rate
// s (locate walks at most s-1 LF steps, each a dynamic rank).
func NewDynFM(s int) *DynFM {
	if s <= 0 {
		s = 16
	}
	return &DynFM{
		bwt:     dynseq.NewWavelet(),
		marked:  dynseq.NewBitVector(),
		samples: dynseq.NewUint64Array(),
		meta:    make(map[uint64]*docMeta),
		s:       s,
	}
}

// Len reports the number of live payload symbols.
func (f *DynFM) Len() int { return f.length }

// DocCount reports the number of live documents.
func (f *DynFM) DocCount() int { return len(f.meta) }

// Has reports whether document id is present.
func (f *DynFM) Has(id uint64) bool {
	_, ok := f.meta[id]
	return ok
}

// cOf returns C[c]: the number of BWT symbols strictly smaller than c.
func (f *DynFM) cOf(c byte) int {
	n := 0
	for x := 0; x < int(c); x++ {
		n += f.counts[x]
	}
	return n
}

// lf maps row p with symbol c at it to the row of the suffix starting one
// position earlier: LF(p) = C[c] + rank_c(bwt, p).
func (f *DynFM) lf(p int, c byte) int {
	return f.cOf(c) + f.bwt.Rank(c, p)
}

// Insert adds a document by the textbook dynamic-BWT construction: the
// separator row first, then one LF-guided insertion per symbol, right to
// left. Each symbol costs O(log n · log σ) — the baseline's bottleneck.
func (f *DynFM) Insert(d doc.Doc) error {
	if _, dup := f.meta[d.ID]; dup {
		return fmt.Errorf("baseline: insert id %d: %w", d.ID, core.ErrDuplicateID)
	}
	if !d.Valid() {
		return fmt.Errorf("baseline: insert id %d: %w", d.ID, core.ErrReservedByte)
	}
	m := len(d.Data)
	slot := len(f.slots)
	f.slots = append(f.slots, d.ID)
	f.meta[d.ID] = &docMeta{slot: slot, len: m}

	if m == 0 {
		// An empty document is just a separator row at the end of the
		// $-block; it matches no pattern and needs no samples.
		p := len(f.sepDocs)
		f.insertRow(p, 0, true, packSample(slot, 0))
		f.sepDocs = append(f.sepDocs, d.ID)
		return nil
	}

	// Row of the new separator suffix: append to the end of the $-block.
	// Its BWT symbol is the document's last payload symbol.
	p := len(f.sepDocs)
	f.sepDocs = append(f.sepDocs, d.ID)
	f.insertRow(p, d.Data[m-1], (m%f.s) == 0, packSample(slot, m))

	// Insert suffixes T[k..] for k = m down to 1 (1-based); the suffix
	// T[k..] has BWT symbol T[k-1], or the separator for k = 1. Offsets
	// are 0-based: suffix T[k..] starts at offset k-1.
	//
	// Until the document's own separator symbol lands in the BWT (at
	// k = 1), the first column of the conceptual rotation matrix holds one
	// more separator than the BWT column — the new "$" row exists but its
	// BWT 0-symbol does not yet. cOf counts the BWT column, so every LF
	// during construction is adjusted by +1 for that pending separator.
	for k := m; k >= 1; k-- {
		c := f.bwtSymbolFor(d.Data, k)
		// LF from the row we just inserted (suffix T[k+1..] at row p with
		// symbol T[k]) gives the row of suffix T[k..].
		p = f.lf(p, d.Data[k-1]) + 1
		off := k - 1
		f.insertRow(p, c, off%f.s == 0, packSample(slot, off))
	}
	f.length += m
	return nil
}

// bwtSymbolFor returns the BWT symbol of the suffix starting at 1-based
// position k: the preceding symbol, or the separator for the first one.
func (f *DynFM) bwtSymbolFor(data []byte, k int) byte {
	if k == 1 {
		return 0
	}
	return data[k-2]
}

// insertRow inserts one BWT row at position p with symbol c; sampled rows
// carry a locate sample.
func (f *DynFM) insertRow(p int, c byte, sampled bool, sample uint64) {
	f.bwt.Insert(p, c)
	f.counts[c]++
	f.marked.Insert(p, sampled)
	if sampled {
		f.samples.Insert(f.marked.Rank1(p), sample)
	}
}

// deleteRow removes the BWT row at position p, returning its symbol.
func (f *DynFM) deleteRow(p int) byte {
	if f.marked.Get(p) {
		f.samples.Delete(f.marked.Rank1(p))
	}
	f.marked.Delete(p)
	c := f.bwt.Delete(p)
	f.counts[c]--
	return c
}

func packSample(slot, off int) uint64 {
	return uint64(slot)<<32 | uint64(uint32(off))
}

func unpackSample(v uint64) (slot, off int) {
	return int(v >> 32), int(uint32(v))
}

// Delete removes document id by the reverse walk: starting from the
// document's separator row, repeatedly delete the row and follow LF until
// the document's first suffix (whose BWT symbol is the separator) is
// gone. Each step is a dynamic rank + delete, Θ(log n) apiece.
func (f *DynFM) Delete(id uint64) bool {
	md, ok := f.meta[id]
	if !ok {
		return false
	}
	// Locate the separator row within the $-block.
	var p int = -1
	for i, d := range f.sepDocs {
		if d == id {
			p = i
			break
		}
	}
	if p < 0 {
		panic("baseline: separator row missing")
	}
	f.sepDocs = append(f.sepDocs[:p], f.sepDocs[p+1:]...)

	// Collect every row of the document by LF-walking the still-intact
	// BWT (where first-column and BWT-column counts agree, so plain LF is
	// exact), then remove the rows in descending order so earlier
	// deletions never shift the positions of later ones.
	rows := make([]int, 0, md.len+1)
	for {
		rows = append(rows, p)
		c := f.bwt.Access(p)
		if c == 0 {
			break
		}
		p = f.lf(p, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(rows)))
	for _, row := range rows {
		f.deleteRow(row)
	}
	delete(f.meta, id)
	f.length -= md.len
	return true
}

// Range runs backward search for pattern, returning the half-open BWT row
// interval of suffixes starting with it. Each pattern symbol costs two
// dynamic ranks.
func (f *DynFM) Range(pattern []byte) (lo, hi int) {
	lo, hi = 0, f.bwt.Len()
	for i := len(pattern) - 1; i >= 0 && lo < hi; i-- {
		c := pattern[i]
		base := f.cOf(c)
		lo = base + f.bwt.Rank(c, lo)
		hi = base + f.bwt.Rank(c, hi)
	}
	return lo, hi
}

// Count returns the number of occurrences of pattern.
func (f *DynFM) Count(pattern []byte) int {
	if len(pattern) == 0 {
		return f.length
	}
	lo, hi := f.Range(pattern)
	return hi - lo
}

// Occurrence is one pattern match.
type Occurrence struct {
	DocID uint64
	Off   int
}

// Locate maps a BWT row to its (document, offset) by LF-walking to the
// nearest sampled row — at most s-1 dynamic ranks.
func (f *DynFM) Locate(row int) Occurrence {
	steps := 0
	p := row
	for !f.marked.Get(p) {
		c := f.bwt.Access(p)
		p = f.lf(p, c)
		steps++
	}
	slot, off := unpackSample(f.samples.Get(f.marked.Rank1(p)))
	return Occurrence{DocID: f.slots[slot], Off: off + steps}
}

// Find returns every occurrence of pattern. Matches that land on a
// separator offset (pattern absent) cannot arise because patterns never
// contain the separator byte.
func (f *DynFM) Find(pattern []byte) []Occurrence {
	var out []Occurrence
	f.FindFunc(pattern, func(o Occurrence) bool {
		out = append(out, o)
		return true
	})
	return out
}

// FindFunc streams occurrences of pattern; stops early when fn returns
// false. Empty patterns match every live position.
func (f *DynFM) FindFunc(pattern []byte, fn func(Occurrence) bool) {
	if len(pattern) == 0 {
		for id, md := range f.meta {
			for off := 0; off < md.len; off++ {
				if !fn(Occurrence{DocID: id, Off: off}) {
					return
				}
			}
		}
		return
	}
	lo, hi := f.Range(pattern)
	for row := lo; row < hi; row++ {
		if !fn(f.Locate(row)) {
			return
		}
	}
}

// Extract reconstructs length payload symbols of document id starting at
// off by LF-walking backward from the document's separator row. The cost
// is O((docLen - off) · log n · log σ): the baseline has no forward
// extraction shortcut, mirroring the textract × log n factor of Table 2's
// prior rows.
func (f *DynFM) Extract(id uint64, off, length int) ([]byte, bool) {
	md, ok := f.meta[id]
	if !ok {
		return nil, false
	}
	if off < 0 || length < 0 || off+length > md.len {
		return nil, false
	}
	// Find the separator row.
	p := -1
	for i, d := range f.sepDocs {
		if d == id {
			p = i
			break
		}
	}
	if p < 0 {
		return nil, false
	}
	// Walking LF from the separator yields T[m], T[m-1], …; collect the
	// window [off, off+length).
	out := make([]byte, length)
	pos := md.len // offset of the symbol the next LF step reveals, 1-based
	for pos > off {
		c := f.bwt.Access(p)
		if c == 0 {
			break
		}
		if pos <= off+length {
			out[pos-off-1] = c
		}
		p = f.lf(p, c)
		pos--
	}
	return out, true
}

// DocLen reports the payload length of document id.
func (f *DynFM) DocLen(id uint64) (int, bool) {
	md, ok := f.meta[id]
	if !ok {
		return 0, false
	}
	return md.len, true
}

// SampleRate reports the locate sampling rate s.
func (f *DynFM) SampleRate() int { return f.s }

// SizeBits estimates the index footprint.
func (f *DynFM) SizeBits() int64 {
	return f.bwt.SizeBits() + f.marked.SizeBits() + f.samples.SizeBits() +
		int64(len(f.sepDocs))*64 + int64(len(f.slots))*64 + int64(len(f.meta))*3*64
}
