package baseline

import (
	"fmt"

	"dyncoll/internal/core"
	"dyncoll/internal/doc"
	"dyncoll/internal/suffixtree"
)

// STIndex is the paper's Section A.2 strawman: the whole collection in an
// uncompressed generalized suffix tree. Queries are optimal
// (O(|P| + occ)), updates are O(|T|), but the space is Θ(n log n) bits —
// an order of magnitude above the compressed solutions. The benchmark
// harness uses it as the speed ceiling and the space anti-goal.
type STIndex struct {
	t *suffixtree.Tree
}

// NewSTIndex returns an empty suffix-tree index.
func NewSTIndex() *STIndex { return &STIndex{t: suffixtree.New()} }

// Len reports live payload symbols.
func (x *STIndex) Len() int { return x.t.Len() }

// DocCount reports the number of live documents.
func (x *STIndex) DocCount() int { return x.t.DocCount() }

// Has reports whether document id is present.
func (x *STIndex) Has(id uint64) bool { return x.t.Has(id) }

// Insert adds a document in O(|T|) time.
func (x *STIndex) Insert(d doc.Doc) error {
	if x.t.Has(d.ID) {
		return fmt.Errorf("baseline: insert id %d: %w", d.ID, core.ErrDuplicateID)
	}
	if !d.Valid() {
		return fmt.Errorf("baseline: insert id %d: %w", d.ID, core.ErrReservedByte)
	}
	x.t.Insert(d)
	return nil
}

// Delete removes document id.
func (x *STIndex) Delete(id uint64) bool { return x.t.Delete(id) }

// Count returns the number of occurrences of pattern.
func (x *STIndex) Count(pattern []byte) int {
	if len(pattern) == 0 {
		return x.t.Len()
	}
	return x.t.Count(pattern)
}

// Find returns every occurrence of pattern.
func (x *STIndex) Find(pattern []byte) []Occurrence {
	var out []Occurrence
	x.FindFunc(pattern, func(o Occurrence) bool {
		out = append(out, o)
		return true
	})
	return out
}

// FindFunc streams occurrences; stops when fn returns false.
func (x *STIndex) FindFunc(pattern []byte, fn func(Occurrence) bool) {
	if len(pattern) == 0 {
		for _, d := range x.t.LiveDocs() {
			for off := 0; off < len(d.Data); off++ {
				if !fn(Occurrence{DocID: d.ID, Off: off}) {
					return
				}
			}
		}
		return
	}
	x.t.FindFunc(pattern, func(o suffixtree.Occurrence) bool {
		return fn(Occurrence{DocID: o.DocID, Off: o.Off})
	})
}

// Extract returns length payload bytes of document id starting at off.
func (x *STIndex) Extract(id uint64, off, length int) ([]byte, bool) {
	return x.t.Extract(id, off, length)
}

// DocLen reports the payload length of document id.
func (x *STIndex) DocLen(id uint64) (int, bool) { return x.t.DocLen(id) }

// SizeBits estimates the index footprint.
func (x *STIndex) SizeBits() int64 { return x.t.SizeBits() }
