package baseline

import (
	"bytes"
	"errors"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"dyncoll/internal/core"
	"dyncoll/internal/doc"
	"dyncoll/internal/textgen"
)

// index is the interface both baselines satisfy, so the conformance suite
// runs over each.
type index interface {
	Insert(doc.Doc) error
	Delete(id uint64) bool
	Has(id uint64) bool
	Count(pattern []byte) int
	Find(pattern []byte) []Occurrence
	FindFunc(pattern []byte, fn func(Occurrence) bool)
	Extract(id uint64, off, length int) ([]byte, bool)
	DocLen(id uint64) (int, bool)
	Len() int
	DocCount() int
	SizeBits() int64
}

var (
	_ index = (*DynFM)(nil)
	_ index = (*STIndex)(nil)
)

type blVariant struct {
	name string
	mk   func() index
}

func blVariants() []blVariant {
	return []blVariant{
		{"dynfm/s4", func() index { return NewDynFM(4) }},
		{"dynfm/s16", func() index { return NewDynFM(16) }},
		{"dynfm/s1", func() index { return NewDynFM(1) }},
		{"stindex", func() index { return NewSTIndex() }},
	}
}

// model: brute force reference.
type model struct{ docs map[uint64][]byte }

func newModel() *model { return &model{docs: map[uint64][]byte{}} }

func (m *model) insert(d doc.Doc) {
	b := make([]byte, len(d.Data))
	copy(b, d.Data)
	m.docs[d.ID] = b
}
func (m *model) delete(id uint64) { delete(m.docs, id) }

func (m *model) find(p []byte) []Occurrence {
	var out []Occurrence
	for id, data := range m.docs {
		if len(p) == 0 {
			for off := range data {
				out = append(out, Occurrence{id, off})
			}
			continue
		}
		for off := 0; off+len(p) <= len(data); off++ {
			if bytes.Equal(data[off:off+len(p)], p) {
				out = append(out, Occurrence{id, off})
			}
		}
	}
	return out
}

func (m *model) symbols() int {
	n := 0
	for _, d := range m.docs {
		n += len(d)
	}
	return n
}

func sameOccs(a, b []Occurrence) bool {
	if len(a) != len(b) {
		return false
	}
	key := func(o Occurrence) uint64 { return o.DocID<<20 | uint64(o.Off) }
	sort.Slice(a, func(i, j int) bool { return key(a[i]) < key(a[j]) })
	sort.Slice(b, func(i, j int) bool { return key(b[i]) < key(b[j]) })
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestBaselineConformance(t *testing.T) {
	for _, v := range blVariants() {
		t.Run(v.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(100))
			gen := textgen.NewCollection(textgen.CollectionOptions{
				Sigma: 6, MinLen: 3, MaxLen: 150, Seed: 200,
			})
			x := v.mk()
			m := newModel()
			var live []uint64
			for step := 0; step < 250; step++ {
				if len(live) == 0 || rng.Float64() < 0.6 {
					d := gen.NextDoc()
					x.Insert(d)
					m.insert(d)
					live = append(live, d.ID)
				} else {
					i := rng.Intn(len(live))
					id := live[i]
					live = append(live[:i], live[i+1:]...)
					if !x.Delete(id) {
						t.Fatalf("Delete(%d) failed", id)
					}
					m.delete(id)
				}
				if x.Len() != m.symbols() {
					t.Fatalf("step %d: Len = %d, want %d", step, x.Len(), m.symbols())
				}
				if step%20 == 0 {
					for _, p := range [][]byte{{1}, {2, 3}, {1, 1, 4}} {
						if got, want := x.Count(p), len(m.find(p)); got != want {
							t.Fatalf("step %d: Count(%v) = %d, want %d", step, p, got, want)
						}
						if !sameOccs(x.Find(p), m.find(p)) {
							t.Fatalf("step %d: Find(%v) mismatch", step, p)
						}
					}
				}
			}
			// Final exhaustive pass.
			for id, data := range m.docs {
				if !x.Has(id) {
					t.Fatalf("Has(%d) = false", id)
				}
				got, ok := x.Extract(id, 0, len(data))
				if !ok || !bytes.Equal(got, data) {
					t.Fatalf("Extract(%d) mismatch: %v vs %v", id, got, data)
				}
				if n, ok := x.DocLen(id); !ok || n != len(data) {
					t.Fatalf("DocLen(%d) wrong", id)
				}
			}
			if x.DocCount() != len(m.docs) {
				t.Fatalf("DocCount = %d, want %d", x.DocCount(), len(m.docs))
			}
		})
	}
}

func TestBaselineDeleteUnknown(t *testing.T) {
	for _, v := range blVariants() {
		t.Run(v.name, func(t *testing.T) {
			x := v.mk()
			if x.Delete(7) {
				t.Fatal("Delete on empty index returned true")
			}
			x.Insert(doc.Doc{ID: 1, Data: []byte{1, 2}})
			if x.Delete(7) {
				t.Fatal("Delete of absent ID returned true")
			}
			if !x.Delete(1) || x.Len() != 0 {
				t.Fatal("Delete of present ID failed")
			}
		})
	}
}

func TestBaselineEmptyDoc(t *testing.T) {
	for _, v := range blVariants() {
		t.Run(v.name, func(t *testing.T) {
			x := v.mk()
			x.Insert(doc.Doc{ID: 5})
			if x.Len() != 0 || x.DocCount() != 1 {
				t.Fatalf("empty doc: Len=%d DocCount=%d", x.Len(), x.DocCount())
			}
			if got := x.Count([]byte{1}); got != 0 {
				t.Fatalf("Count over empty doc = %d", got)
			}
			if !x.Delete(5) || x.DocCount() != 0 {
				t.Fatal("deleting empty doc failed")
			}
		})
	}
}

func TestBaselineRepeatedPayloads(t *testing.T) {
	for _, v := range blVariants() {
		t.Run(v.name, func(t *testing.T) {
			x := v.mk()
			payload := []byte{2, 1, 2, 1, 2}
			for i := 1; i <= 8; i++ {
				x.Insert(doc.Doc{ID: uint64(i), Data: payload})
			}
			if got := x.Count([]byte{2, 1, 2}); got != 16 {
				t.Fatalf("Count = %d, want 16", got)
			}
			for i := 1; i <= 4; i++ {
				x.Delete(uint64(i))
			}
			if got := x.Count([]byte{2, 1, 2}); got != 8 {
				t.Fatalf("Count after deletes = %d, want 8", got)
			}
			occs := x.Find([]byte{1, 2, 1})
			if len(occs) != 4 {
				t.Fatalf("Find returned %d occurrences, want 4", len(occs))
			}
		})
	}
}

func TestBaselineFindFuncEarlyStop(t *testing.T) {
	for _, v := range blVariants() {
		t.Run(v.name, func(t *testing.T) {
			x := v.mk()
			for i := 1; i <= 10; i++ {
				x.Insert(doc.Doc{ID: uint64(i), Data: []byte{3, 3, 3}})
			}
			n := 0
			x.FindFunc([]byte{3, 3}, func(Occurrence) bool {
				n++
				return n < 4
			})
			if n != 4 {
				t.Fatalf("early stop visited %d", n)
			}
		})
	}
}

func TestDynFMExtractWindows(t *testing.T) {
	x := NewDynFM(4)
	data := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	x.Insert(doc.Doc{ID: 1, Data: data})
	x.Insert(doc.Doc{ID: 2, Data: []byte{9, 9}})
	cases := []struct{ off, n int }{
		{0, 8}, {0, 1}, {7, 1}, {2, 4}, {4, 0},
	}
	for _, c := range cases {
		got, ok := x.Extract(1, c.off, c.n)
		if !ok || !bytes.Equal(got, data[c.off:c.off+c.n]) {
			t.Fatalf("Extract(1,%d,%d) = %v,%v", c.off, c.n, got, ok)
		}
	}
	if _, ok := x.Extract(1, 5, 10); ok {
		t.Fatal("out-of-bounds extract succeeded")
	}
	if _, ok := x.Extract(3, 0, 1); ok {
		t.Fatal("extract of unknown doc succeeded")
	}
}

func TestDynFMDuplicateErrors(t *testing.T) {
	x := NewDynFM(4)
	if err := x.Insert(doc.Doc{ID: 1, Data: []byte{1}}); err != nil {
		t.Fatal(err)
	}
	if err := x.Insert(doc.Doc{ID: 1, Data: []byte{2}}); !errors.Is(err, core.ErrDuplicateID) {
		t.Fatalf("duplicate insert: got %v, want ErrDuplicateID", err)
	}
}

func TestDynFMZeroByteErrors(t *testing.T) {
	x := NewDynFM(4)
	if err := x.Insert(doc.Doc{ID: 1, Data: []byte{1, 0}}); !errors.Is(err, core.ErrReservedByte) {
		t.Fatalf("zero byte: got %v, want ErrReservedByte", err)
	}
}

func TestDynFMQuick(t *testing.T) {
	f := func(payloads [][]byte, pattern []byte, delMask uint8) bool {
		if len(payloads) > 8 {
			payloads = payloads[:8]
		}
		clean := func(b []byte) []byte {
			if len(b) > 40 {
				b = b[:40]
			}
			out := make([]byte, len(b))
			for i, x := range b {
				out[i] = x%3 + 1
			}
			return out
		}
		x := NewDynFM(3)
		m := newModel()
		for i, p := range payloads {
			d := doc.Doc{ID: uint64(i + 1), Data: clean(p)}
			x.Insert(d)
			m.insert(d)
		}
		for i := range payloads {
			if delMask&(1<<i) != 0 {
				x.Delete(uint64(i + 1))
				m.delete(uint64(i + 1))
			}
		}
		p := clean(pattern)
		if len(p) == 0 {
			p = []byte{2}
		}
		return sameOccs(x.Find(p), m.find(p)) && x.Count(p) == len(m.find(p))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestDynFMSingleSymbolDocs(t *testing.T) {
	x := NewDynFM(2)
	for i := 1; i <= 5; i++ {
		x.Insert(doc.Doc{ID: uint64(i), Data: []byte{1}})
	}
	if got := x.Count([]byte{1}); got != 5 {
		t.Fatalf("Count = %d, want 5", got)
	}
	occs := x.Find([]byte{1})
	if len(occs) != 5 {
		t.Fatalf("Find = %v", occs)
	}
	for i := 1; i <= 5; i++ {
		if !x.Delete(uint64(i)) {
			t.Fatalf("Delete(%d) failed", i)
		}
	}
	if x.Len() != 0 {
		t.Fatalf("Len = %d after draining", x.Len())
	}
}

func TestDynFMLongRepetitive(t *testing.T) {
	// Highly repetitive text stresses deep LF chains and rank ties.
	x := NewDynFM(8)
	m := newModel()
	data := bytes.Repeat([]byte{1, 2}, 500)
	d := doc.Doc{ID: 1, Data: data}
	x.Insert(d)
	m.insert(d)
	d2 := doc.Doc{ID: 2, Data: bytes.Repeat([]byte{2, 1}, 300)}
	x.Insert(d2)
	m.insert(d2)
	for _, p := range [][]byte{{1, 2, 1}, {2, 1, 2}, {1, 1}, {2, 2}} {
		if got, want := x.Count(p), len(m.find(p)); got != want {
			t.Fatalf("Count(%v) = %d, want %d", p, got, want)
		}
	}
	if !sameOccs(x.Find([]byte{1, 2, 1, 2}), m.find([]byte{1, 2, 1, 2})) {
		t.Fatal("Find mismatch on repetitive text")
	}
}

func TestSTIndexSizeLarger(t *testing.T) {
	// The suffix tree must cost more space than the compressed baseline on
	// the same content — that's its role in the space benchmarks.
	gen := textgen.NewCollection(textgen.CollectionOptions{
		Sigma: 8, Skew: 0.7, MinLen: 100, MaxLen: 400, Seed: 300,
	})
	docs := gen.GenerateTotal(40_000)
	st := NewSTIndex()
	fm := NewDynFM(16)
	for _, d := range docs {
		st.Insert(d)
		fm.Insert(d)
	}
	if st.SizeBits() <= fm.SizeBits() {
		t.Fatalf("suffix tree (%d bits) should exceed DynFM (%d bits)",
			st.SizeBits(), fm.SizeBits())
	}
}
