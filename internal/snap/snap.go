// Package snap is the versioned binary codec shared by every snapshot
// producer and consumer in the module: the magic/version/kind header,
// varint primitives, and the hardened decoder used to read untrusted
// bytes back.
//
// The format is deliberately primitive — unsigned varints, zigzag
// varints, length-prefixed byte strings — so that every structure layer
// (facade header, engine ladder, payload stores, static indexes) can
// compose its own section without a schema compiler. Robustness rules:
//
//   - the Decoder never panics on truncated or corrupt input; the first
//     violation latches an error (wrapping ErrBadSnapshot) and every
//     subsequent read returns zero values, so decode paths can be
//     written straight-line and check Err once;
//   - every count that drives an allocation must be claimed via Count
//     with the minimum encoded size of one element, which bounds the
//     allocation by the remaining input length — corrupt headers cannot
//     request multi-gigabyte slices out of a 40-byte file.
package snap

import (
	"errors"
	"fmt"
)

// Magic is the 4-byte file magic ("dynamic collection snapshot").
var Magic = [4]byte{'d', 's', 'n', 'p'}

// Version is the current snapshot format version. Decoders accept only
// versions they know; the header is written before anything else so old
// readers fail fast on new files.
const Version = 1

// Structure kinds recorded in the header.
const (
	KindCollection byte = 1
	KindRelation   byte = 2
	KindGraph      byte = 3
)

// Store encoding modes (one byte ahead of every static-store section).
const (
	// ModeItems is the rebuild fallback: the store's live items follow
	// raw and the loader reconstructs through the registered builder.
	ModeItems byte = 0
	// ModeBinary is the fast path: a marshaled static index follows,
	// plus the lazy-deletion state needed to rewrap it.
	ModeBinary byte = 1
)

// Section is one static store's encoded section — the exact bytes the
// full-snapshot encoding would emit for that store — plus the identity
// metadata incremental checkpoints key on. A store's static content is
// immutable after its build and its dead weight only grows, so a
// section with the same (Gen, Dead) as a previously persisted one is
// byte-identical and the old segment file can be reused verbatim.
type Section struct {
	// Level is the ladder slot (engine.TopLevel for top collections).
	Level int
	// Gen is the store's build generation (see engine.StoreDump.Gen).
	Gen uint64
	// Dead is the store's dead weight when the section was encoded.
	Dead int
	// Bytes is the encoded store section.
	Bytes []byte
}

// ErrBadSnapshot reports snapshot bytes that are not a well-formed
// snapshot of the expected kind and version: wrong magic, unknown
// version, truncation, or any internal inconsistency. Match with
// errors.Is.
var ErrBadSnapshot = errors.New("bad snapshot")

// Corruptf wraps ErrBadSnapshot with detail.
func Corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: "+format, append([]any{ErrBadSnapshot}, args...)...)
}

// Encoder accumulates one snapshot section in memory. Sections are
// buffered rather than streamed so sharded structures can encode their
// shards concurrently and so every section can be length-prefixed for
// the decoder's allocation bounds.
type Encoder struct {
	b []byte
}

// Bytes returns the encoded buffer.
func (e *Encoder) Bytes() []byte { return e.b }

// Len reports the number of bytes encoded so far.
func (e *Encoder) Len() int { return len(e.b) }

// Byte appends one raw byte.
func (e *Encoder) Byte(b byte) { e.b = append(e.b, b) }

// Raw appends raw bytes with no length prefix (magic, nested sections).
func (e *Encoder) Raw(p []byte) { e.b = append(e.b, p...) }

// Uvarint appends an unsigned varint.
func (e *Encoder) Uvarint(v uint64) {
	for v >= 0x80 {
		e.b = append(e.b, byte(v)|0x80)
		v >>= 7
	}
	e.b = append(e.b, byte(v))
}

// Varint appends a signed varint (zigzag).
func (e *Encoder) Varint(v int64) {
	e.Uvarint(uint64(v<<1) ^ uint64(v>>63))
}

// Bool appends a boolean as one byte.
func (e *Encoder) Bool(b bool) {
	if b {
		e.Byte(1)
	} else {
		e.Byte(0)
	}
}

// Blob appends a length-prefixed byte string.
func (e *Encoder) Blob(p []byte) {
	e.Uvarint(uint64(len(p)))
	e.Raw(p)
}

// String appends a length-prefixed string.
func (e *Encoder) String(s string) {
	e.Uvarint(uint64(len(s)))
	e.b = append(e.b, s...)
}

// Int32s appends a length-prefixed []int32 (zigzag varints).
func (e *Encoder) Int32s(vs []int32) {
	e.Uvarint(uint64(len(vs)))
	for _, v := range vs {
		e.Varint(int64(v))
	}
}

// Uint64s appends a length-prefixed []uint64 (varints).
func (e *Encoder) Uint64s(vs []uint64) {
	e.Uvarint(uint64(len(vs)))
	for _, v := range vs {
		e.Uvarint(v)
	}
}

// Words appends a length-prefixed []uint64 (little-endian words).
func (e *Encoder) Words(ws []uint64) {
	e.Uvarint(uint64(len(ws)))
	for _, w := range ws {
		e.b = append(e.b, byte(w), byte(w>>8), byte(w>>16), byte(w>>24),
			byte(w>>32), byte(w>>40), byte(w>>48), byte(w>>56))
	}
}

// Decoder reads one snapshot section. The first malformed read latches
// an error; all later reads return zero values. Decoder methods never
// panic on any input.
type Decoder struct {
	b   []byte
	off int
	err error
}

// NewDecoder wraps a byte slice for decoding.
func NewDecoder(b []byte) *Decoder { return &Decoder{b: b} }

// Err returns the first error encountered, wrapping ErrBadSnapshot.
func (d *Decoder) Err() error { return d.err }

// Remaining reports the number of unread bytes.
func (d *Decoder) Remaining() int { return len(d.b) - d.off }

// fail latches the first decode error.
func (d *Decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = Corruptf(format, args...)
	}
}

// Fail lets callers latch a semantic validation error (beyond framing)
// on the decoder, so the "first error wins, later reads are inert"
// discipline extends to structure-level checks.
func (d *Decoder) Fail(format string, args ...any) { d.fail(format, args...) }

// Byte reads one raw byte.
func (d *Decoder) Byte() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.b) {
		d.fail("truncated at byte %d", d.off)
		return 0
	}
	b := d.b[d.off]
	d.off++
	return b
}

// Raw reads n raw bytes as a view into the input (not a copy).
func (d *Decoder) Raw(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || n > d.Remaining() {
		d.fail("raw read of %d bytes with %d remaining", n, d.Remaining())
		return nil
	}
	p := d.b[d.off : d.off+n]
	d.off += n
	return p
}

// Uvarint reads an unsigned varint.
func (d *Decoder) Uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	var v uint64
	var shift uint
	for {
		if d.off >= len(d.b) {
			d.fail("truncated varint at byte %d", d.off)
			return 0
		}
		c := d.b[d.off]
		d.off++
		if shift == 63 && c > 1 {
			d.fail("varint overflow at byte %d", d.off)
			return 0
		}
		v |= uint64(c&0x7f) << shift
		if c < 0x80 {
			return v
		}
		shift += 7
		if shift > 63 {
			d.fail("varint overflow at byte %d", d.off)
			return 0
		}
	}
}

// Varint reads a signed (zigzag) varint.
func (d *Decoder) Varint() int64 {
	u := d.Uvarint()
	return int64(u>>1) ^ -int64(u&1)
}

// Bool reads a boolean byte (anything non-zero is true).
func (d *Decoder) Bool() bool { return d.Byte() != 0 }

// Int reads an unsigned varint and checks it fits a non-negative int.
func (d *Decoder) Int() int {
	v := d.Uvarint()
	if v > uint64(int(^uint(0)>>1)) {
		d.fail("value %d overflows int", v)
		return 0
	}
	return int(v)
}

// Count reads an element count and validates it against the remaining
// input, assuming every element occupies at least minBytes encoded
// bytes (minBytes ≥ 1). This bounds any allocation driven by the count
// to the size of the input itself.
func (d *Decoder) Count(minBytes int) int {
	n := d.Int()
	if d.err != nil {
		return 0
	}
	if minBytes < 1 {
		minBytes = 1
	}
	if n > d.Remaining()/minBytes {
		d.fail("count %d exceeds remaining input (%d bytes)", n, d.Remaining())
		return 0
	}
	return n
}

// Blob reads a length-prefixed byte string as a view into the input.
func (d *Decoder) Blob() []byte {
	n := d.Count(1)
	return d.Raw(n)
}

// String reads a length-prefixed string.
func (d *Decoder) String() string { return string(d.Blob()) }

// Int32s reads a length-prefixed []int32.
func (d *Decoder) Int32s() []int32 {
	n := d.Count(1)
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		v := d.Varint()
		if v < -1<<31 || v > 1<<31-1 {
			d.fail("value %d overflows int32", v)
			return nil
		}
		out[i] = int32(v)
	}
	return out
}

// Uint64s reads a length-prefixed []uint64.
func (d *Decoder) Uint64s() []uint64 {
	n := d.Count(1)
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = d.Uvarint()
	}
	return out
}

// Words reads a length-prefixed []uint64.
func (d *Decoder) Words() []uint64 {
	n := d.Count(8)
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]uint64, n)
	for i := range out {
		p := d.Raw(8)
		if d.err != nil {
			return nil
		}
		out[i] = uint64(p[0]) | uint64(p[1])<<8 | uint64(p[2])<<16 | uint64(p[3])<<24 |
			uint64(p[4])<<32 | uint64(p[5])<<40 | uint64(p[6])<<48 | uint64(p[7])<<56
	}
	return out
}
