package snap

import (
	"encoding/binary"
	"hash/crc32"
	"io"
)

// The v2 snapshot container: a segmented single file with a section
// directory, after the DCS index format. Layout:
//
//	superblock (64 bytes)
//	section 0  (page-aligned)
//	section 1  (page-aligned)
//	…
//	directory  (40 bytes per section, CRC-protected)
//
// The superblock pins magic/version and points at the directory; each
// directory entry names a section by (kind, shard, ordinal) and its
// byte extent. Heavy store payloads start on 4096-byte boundaries so
// an mmap of the file yields naturally page- and 8-aligned views that
// the MapView codec can alias without copying, and so the pages of one
// store can be madvise'd away independently when a rebuild supersedes
// it. Small metadata sections (header, spine, store meta) are CRC
// checked at open; bulk payload CRCs are verified only on demand
// (MappedVerify) to keep open O(1).

// MagicV2 identifies a v2 section-directory snapshot. Distinct from
// the v1 magic so each opener fails fast on the other's files.
var MagicV2 = [4]byte{'d', 's', 'n', '2'}

// VersionV2 is the current v2 layout version.
const VersionV2 = 1

// SectionAlign is the alignment of every section payload.
const SectionAlign = 4096

// Section kinds. Per shard there is one SecSpine plus a
// (SecStoreMeta, SecStorePayload) pair per static store, matched by
// ordinal; SecHeader (shard 0, ordinal 0) holds the v1-style config
// header bytes for the whole file.
const (
	SecHeader       uint16 = 1
	SecSpine        uint16 = 2
	SecStoreMeta    uint16 = 3
	SecStorePayload uint16 = 4
)

// ModeMapped marks a store whose meta section carries only the dead
// list, with the static index in a companion payload section laid out
// by MapEncoder. It extends the v1 store modes (ModeItems, ModeBinary)
// but appears only inside v2 files.
const ModeMapped byte = 2

const (
	superblockSize = 64
	dirEntrySize   = 40
)

// castagnoli matches the checkpoint codec's CRC choice (CRC32C has
// hardware support on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// SectionEntry is one directory row.
type SectionEntry struct {
	Kind    uint16
	Shard   uint32
	Ordinal uint32
	Offset  uint64
	Length  uint64
	CRC     uint32
}

// V2Writer accumulates sections and streams the final layout.
type V2Writer struct {
	entries  []SectionEntry
	payloads [][]byte
	off      uint64
}

// NewV2Writer returns an empty writer; the first section lands at the
// first page boundary after the superblock.
func NewV2Writer() *V2Writer {
	return &V2Writer{off: SectionAlign}
}

// Add appends a section. Payloads are retained (not copied) until
// WriteTo runs.
func (w *V2Writer) Add(kind uint16, shard, ordinal uint32, payload []byte) {
	w.entries = append(w.entries, SectionEntry{
		Kind:    kind,
		Shard:   shard,
		Ordinal: ordinal,
		Offset:  w.off,
		Length:  uint64(len(payload)),
		CRC:     crc32.Checksum(payload, castagnoli),
	})
	w.payloads = append(w.payloads, payload)
	w.off += uint64(len(payload))
	if rem := w.off % SectionAlign; rem != 0 {
		w.off += SectionAlign - rem
	}
}

func appendEntry(buf []byte, e SectionEntry) []byte {
	buf = binary.LittleEndian.AppendUint16(buf, e.Kind)
	buf = binary.LittleEndian.AppendUint16(buf, 0) // flags, reserved
	buf = binary.LittleEndian.AppendUint32(buf, e.Shard)
	buf = binary.LittleEndian.AppendUint32(buf, e.Ordinal)
	buf = binary.LittleEndian.AppendUint32(buf, 0) // reserved
	buf = binary.LittleEndian.AppendUint64(buf, e.Offset)
	buf = binary.LittleEndian.AppendUint64(buf, e.Length)
	buf = binary.LittleEndian.AppendUint32(buf, e.CRC)
	buf = binary.LittleEndian.AppendUint32(buf, 0) // pad
	return buf
}

// WriteTo streams superblock, padded sections, and directory.
func (w *V2Writer) WriteTo(out io.Writer) (int64, error) {
	dir := make([]byte, 0, dirEntrySize*len(w.entries))
	for _, e := range w.entries {
		dir = appendEntry(dir, e)
	}
	super := make([]byte, superblockSize)
	copy(super, MagicV2[:])
	binary.LittleEndian.PutUint32(super[4:], VersionV2)
	binary.LittleEndian.PutUint64(super[8:], w.off) // directory offset
	binary.LittleEndian.PutUint64(super[16:], uint64(len(w.entries)))
	binary.LittleEndian.PutUint32(super[24:], crc32.Checksum(dir, castagnoli))

	var n int64
	write := func(p []byte) error {
		m, err := out.Write(p)
		n += int64(m)
		return err
	}
	if err := write(super); err != nil {
		return n, err
	}
	pos := uint64(superblockSize)
	var zeros [SectionAlign]byte
	pad := func(to uint64) error {
		for pos < to {
			chunk := to - pos
			if chunk > SectionAlign {
				chunk = SectionAlign
			}
			if err := write(zeros[:chunk]); err != nil {
				return err
			}
			pos += chunk
		}
		return nil
	}
	for i, e := range w.entries {
		if err := pad(e.Offset); err != nil {
			return n, err
		}
		if err := write(w.payloads[i]); err != nil {
			return n, err
		}
		pos += e.Length
	}
	if err := pad(w.off); err != nil {
		return n, err
	}
	return n, write(dir)
}

// V2File is a decoded section directory over an in-memory (usually
// mapped) file image.
type V2File struct {
	data    []byte
	Entries []SectionEntry
}

// OpenV2 validates the superblock and directory of data and returns
// the section table. Metadata sections (everything except store
// payloads) are CRC-verified here; payload CRCs are left to
// VerifyPayloads. All failures wrap ErrBadSnapshot.
func OpenV2(data []byte) (*V2File, error) {
	if len(data) < superblockSize {
		return nil, Corruptf("v2 snapshot shorter than superblock (%d bytes)", len(data))
	}
	if [4]byte(data[:4]) != MagicV2 {
		return nil, Corruptf("bad v2 magic %q", data[:4])
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != VersionV2 {
		return nil, Corruptf("unsupported v2 snapshot version %d", v)
	}
	dirOff := binary.LittleEndian.Uint64(data[8:])
	dirCount := binary.LittleEndian.Uint64(data[16:])
	dirCRC := binary.LittleEndian.Uint32(data[24:])
	if dirCount > uint64(len(data))/dirEntrySize {
		return nil, Corruptf("v2 directory count %d impossible for %d-byte file", dirCount, len(data))
	}
	dirLen := dirCount * dirEntrySize
	if dirOff < superblockSize || dirOff > uint64(len(data)) || dirLen > uint64(len(data))-dirOff {
		return nil, Corruptf("v2 directory extent [%d,+%d) outside file", dirOff, dirLen)
	}
	dir := data[dirOff : dirOff+dirLen]
	if crc32.Checksum(dir, castagnoli) != dirCRC {
		return nil, Corruptf("v2 directory checksum mismatch")
	}
	f := &V2File{data: data, Entries: make([]SectionEntry, dirCount)}
	for i := range f.Entries {
		row := dir[i*dirEntrySize:]
		e := SectionEntry{
			Kind:    binary.LittleEndian.Uint16(row),
			Shard:   binary.LittleEndian.Uint32(row[4:]),
			Ordinal: binary.LittleEndian.Uint32(row[8:]),
			Offset:  binary.LittleEndian.Uint64(row[16:]),
			Length:  binary.LittleEndian.Uint64(row[24:]),
			CRC:     binary.LittleEndian.Uint32(row[32:]),
		}
		if e.Offset > uint64(len(data)) || e.Length > uint64(len(data))-e.Offset {
			return nil, Corruptf("v2 section %d extent [%d,+%d) outside file", i, e.Offset, e.Length)
		}
		if e.Offset%8 != 0 {
			return nil, Corruptf("v2 section %d misaligned at offset %d", i, e.Offset)
		}
		if e.Kind != SecStorePayload {
			if crc32.Checksum(f.Section(e), castagnoli) != e.CRC {
				return nil, Corruptf("v2 section %d (kind %d) checksum mismatch", i, e.Kind)
			}
		}
		f.Entries[i] = e
	}
	return f, nil
}

// Section returns the payload bytes of a directory entry as a view.
func (f *V2File) Section(e SectionEntry) []byte {
	return f.data[e.Offset : e.Offset+e.Length : e.Offset+e.Length]
}

// VerifyPayloads CRC-checks every store-payload section — the opt-in
// full integrity pass that the default O(1) open skips.
func (f *V2File) VerifyPayloads() error {
	for i, e := range f.Entries {
		if e.Kind != SecStorePayload {
			continue
		}
		if crc32.Checksum(f.Section(e), castagnoli) != e.CRC {
			return Corruptf("v2 payload section %d checksum mismatch", i)
		}
	}
	return nil
}
