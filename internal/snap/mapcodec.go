package snap

import (
	"encoding/binary"
	"math"
	"unsafe"
)

// The mapped codec: fixed-width little-endian arrays, every field
// 8-byte aligned, no varints. A v1 Encoder blob must be decoded
// element by element into freshly allocated heap slices; a MapEncoder
// blob is laid out so a MapView can hand back []uint64/[]int32 slices
// that alias the input buffer directly (zero-copy on little-endian
// machines with 8-aligned input, which an mmap of a page-aligned
// section always is). That is what makes O(1) mapped open possible:
// "decoding" a 100 MB wavelet level is a bounds check, not a copy.

// hostLittle reports whether the running machine stores multi-byte
// integers little-endian — the precondition for aliasing the on-disk
// layout in place. Big-endian hosts transparently fall back to the
// copying path and stay correct.
var hostLittle = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// MapEncoder appends fixed-width little-endian values. Every method
// leaves the buffer 8-byte aligned, so a section built from one
// MapEncoder can be sliced apart with no padding bookkeeping.
type MapEncoder struct {
	buf []byte
}

// Bytes returns the encoded section payload.
func (e *MapEncoder) Bytes() []byte { return e.buf }

// Len returns the number of bytes encoded so far.
func (e *MapEncoder) Len() int { return len(e.buf) }

// U64 appends one 64-bit value.
func (e *MapEncoder) U64(v uint64) {
	e.buf = binary.LittleEndian.AppendUint64(e.buf, v)
}

func (e *MapEncoder) pad8() {
	for len(e.buf)%8 != 0 {
		e.buf = append(e.buf, 0)
	}
}

// Blob appends a length-prefixed byte string, padded to 8 bytes.
func (e *MapEncoder) Blob(p []byte) {
	e.U64(uint64(len(p)))
	e.buf = append(e.buf, p...)
	e.pad8()
}

// Words appends a length-prefixed []uint64.
func (e *MapEncoder) Words(ws []uint64) {
	e.U64(uint64(len(ws)))
	for _, w := range ws {
		e.buf = binary.LittleEndian.AppendUint64(e.buf, w)
	}
}

// Int64s appends a length-prefixed []int64.
func (e *MapEncoder) Int64s(vs []int64) {
	e.U64(uint64(len(vs)))
	for _, v := range vs {
		e.buf = binary.LittleEndian.AppendUint64(e.buf, uint64(v))
	}
}

// Int32s appends a length-prefixed []int32, padded to 8 bytes.
func (e *MapEncoder) Int32s(vs []int32) {
	e.U64(uint64(len(vs)))
	for _, v := range vs {
		e.buf = binary.LittleEndian.AppendUint32(e.buf, uint32(v))
	}
	e.pad8()
}

// MapView reads a MapEncoder layout back. Like Decoder it latches the
// first error and never panics; unlike Decoder its slice accessors
// return views over the input buffer whenever the host allows it, and
// well-aligned copies otherwise. Callers must treat returned slices as
// immutable — they may alias read-only mapped memory.
type MapView struct {
	buf []byte
	off int
	err error
}

// NewMapView wraps a mapped section payload.
func NewMapView(p []byte) *MapView { return &MapView{buf: p} }

// Err returns the first error encountered.
func (v *MapView) Err() error { return v.err }

// Remaining returns the number of unread bytes.
func (v *MapView) Remaining() int { return len(v.buf) - v.off }

// Data returns the full underlying section payload (not just the
// unread tail) — the facade uses it to account and later release the
// exact mapped range a store was opened from.
func (v *MapView) Data() []byte { return v.buf }

// Fail latches a corruption error (no-op if one is already set).
func (v *MapView) Fail(format string, args ...any) {
	if v.err == nil {
		v.err = Corruptf(format, args...)
	}
}

func (v *MapView) take(n int) []byte {
	if v.err != nil {
		return nil
	}
	if n < 0 || n > v.Remaining() {
		v.Fail("mapped section truncated: need %d bytes, have %d", n, v.Remaining())
		return nil
	}
	p := v.buf[v.off : v.off+n : v.off+n]
	v.off += n
	return p
}

// U64 reads one 64-bit value.
func (v *MapView) U64() uint64 {
	p := v.take(8)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(p)
}

// Int reads a U64 that must fit a non-negative int.
func (v *MapView) Int() int {
	u := v.U64()
	if u > math.MaxInt64 || int64(u) > int64(math.MaxInt) {
		v.Fail("mapped value %d overflows int", u)
		return 0
	}
	return int(u)
}

// count reads a length prefix for elements of elemSize bytes, bounded
// by the remaining buffer so corrupt lengths fail fast instead of
// driving a huge allocation.
func (v *MapView) count(elemSize int) int {
	n := v.Int()
	if v.err != nil {
		return 0
	}
	if n > v.Remaining()/elemSize {
		v.Fail("mapped array length %d exceeds remaining %d bytes", n, v.Remaining())
		return 0
	}
	return n
}

// Blob reads a length-prefixed byte string as a view (no copy).
func (v *MapView) Blob() []byte {
	n := v.count(1)
	p := v.take(n)
	v.take((8 - n%8) % 8) // skip pad
	return p
}

// aligned8 reports whether p starts on an 8-byte boundary.
func aligned8(p []byte) bool {
	return len(p) == 0 || uintptr(unsafe.Pointer(&p[0]))%8 == 0
}

// Words reads a length-prefixed []uint64, aliasing the buffer when the
// host is little-endian and the data is aligned.
func (v *MapView) Words() []uint64 {
	n := v.count(8)
	p := v.take(8 * n)
	if v.err != nil || n == 0 {
		return nil
	}
	if hostLittle && aligned8(p) {
		return unsafe.Slice((*uint64)(unsafe.Pointer(&p[0])), n)
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(p[8*i:])
	}
	return out
}

// Int64s reads a length-prefixed []int64 (zero-copy when possible).
func (v *MapView) Int64s() []int64 {
	n := v.count(8)
	p := v.take(8 * n)
	if v.err != nil || n == 0 {
		return nil
	}
	if hostLittle && aligned8(p) {
		return unsafe.Slice((*int64)(unsafe.Pointer(&p[0])), n)
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(p[8*i:]))
	}
	return out
}

// Int32s reads a length-prefixed []int32 (zero-copy when possible; the
// on-disk data is 8-aligned, which implies the 4-alignment int32
// needs).
func (v *MapView) Int32s() []int32 {
	n := v.count(4)
	p := v.take(4 * n)
	v.take((8 - (4*n)%8) % 8) // skip pad
	if v.err != nil || n == 0 {
		return nil
	}
	if hostLittle && aligned8(p) {
		return unsafe.Slice((*int32)(unsafe.Pointer(&p[0])), n)
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(p[4*i:]))
	}
	return out
}
