// Package dynseq provides dynamic sequences with rank/select support:
// a bit vector, a byte wavelet tree, and a uint64 array, all supporting
// insertion and deletion at arbitrary positions in O(log n) time.
//
// These are the substrate of the PRIOR-ART baseline (package baseline):
// every dynamic compressed index before the paper — Chan–Hon–Lam [9],
// Mäkinen–Navarro [30, 31], Navarro–Nekrich [35] — routes all queries
// through rank on a dynamic sequence, which by Fredman–Saks costs
// Ω(log n / log log n) per call. The paper's framework exists to avoid
// exactly this structure on the query path; implementing it faithfully is
// what lets the benchmarks show the gap.
//
// The implementation is a B+tree whose leaves hold small bit blocks and
// whose internal nodes cache subtree bit and one counts, giving
// O(log n) insert, delete, get, rank, and select with word-parallel
// leaf operations.
package dynseq

import "math/bits"

const (
	leafMaxWords = 64 // 4096 bits per full leaf
	leafMinWords = 16 // merge threshold
	maxKids      = 16
	minKids      = 6
)

// BitVector is a dynamic bit sequence supporting insertion and deletion
// of bits at arbitrary positions plus rank and select, all in O(log n).
type BitVector struct {
	root *bnode
}

type bnode struct {
	// Internal nodes use kids; leaves use words. size and ones cover the
	// whole subtree.
	kids  []*bnode
	words []uint64
	size  int
	ones  int
}

func (n *bnode) leaf() bool { return n.kids == nil }

// NewBitVector returns an empty dynamic bit vector.
func NewBitVector() *BitVector {
	return &BitVector{root: &bnode{words: make([]uint64, 0, 4)}}
}

// Len reports the number of bits.
func (v *BitVector) Len() int { return v.root.size }

// Ones reports the number of 1-bits.
func (v *BitVector) Ones() int { return v.root.ones }

// Get returns the bit at position i.
func (v *BitVector) Get(i int) bool {
	if i < 0 || i >= v.root.size {
		panic("dynseq: Get out of range")
	}
	n := v.root
	for !n.leaf() {
		for _, k := range n.kids {
			if i < k.size {
				n = k
				break
			}
			i -= k.size
		}
	}
	return n.words[i>>6]>>(uint(i)&63)&1 == 1
}

// Rank1 returns the number of 1-bits in positions [0, i).
func (v *BitVector) Rank1(i int) int {
	if i <= 0 {
		return 0
	}
	if i > v.root.size {
		i = v.root.size
	}
	n := v.root
	r := 0
	for !n.leaf() {
		for _, k := range n.kids {
			if i <= k.size {
				n = k
				break
			}
			i -= k.size
			r += k.ones
		}
	}
	w := 0
	for ; (w+1)<<6 <= i; w++ {
		r += bits.OnesCount64(n.words[w])
	}
	if rem := i - w<<6; rem > 0 {
		r += bits.OnesCount64(n.words[w] << (64 - uint(rem)) >> (64 - uint(rem)))
	}
	return r
}

// Rank0 returns the number of 0-bits in positions [0, i).
func (v *BitVector) Rank0(i int) int {
	if i < 0 {
		i = 0
	}
	if i > v.root.size {
		i = v.root.size
	}
	return i - v.Rank1(i)
}

// Select1 returns the position of the k-th 1-bit (0-based), or -1.
func (v *BitVector) Select1(k int) int {
	if k < 0 || k >= v.root.ones {
		return -1
	}
	n := v.root
	pos := 0
	for !n.leaf() {
		for _, kid := range n.kids {
			if k < kid.ones {
				n = kid
				break
			}
			k -= kid.ones
			pos += kid.size
		}
	}
	for w := 0; ; w++ {
		c := bits.OnesCount64(n.words[w])
		if k < c {
			return pos + w<<6 + selectInWord(n.words[w], k)
		}
		k -= c
	}
}

// Select0 returns the position of the k-th 0-bit (0-based), or -1.
func (v *BitVector) Select0(k int) int {
	if k < 0 || k >= v.root.size-v.root.ones {
		return -1
	}
	n := v.root
	pos := 0
	for !n.leaf() {
		for _, kid := range n.kids {
			z := kid.size - kid.ones
			if k < z {
				n = kid
				break
			}
			k -= z
			pos += kid.size
		}
	}
	for w := 0; ; w++ {
		nbits := n.size - w<<6
		if nbits > 64 {
			nbits = 64
		}
		c := nbits - bits.OnesCount64(n.words[w]<<(64-uint(nbits))>>(64-uint(nbits)))
		if k < c {
			return pos + w<<6 + selectInWord(^n.words[w], k)
		}
		k -= c
	}
}

// selectInWord returns the position of the k-th set bit in w (0-based).
func selectInWord(w uint64, k int) int {
	for i := 0; i < 64; i++ {
		if w>>uint(i)&1 == 1 {
			if k == 0 {
				return i
			}
			k--
		}
	}
	return -1
}

// Insert inserts bit b at position i (0 ≤ i ≤ Len).
func (v *BitVector) Insert(i int, b bool) {
	if i < 0 || i > v.root.size {
		panic("dynseq: Insert out of range")
	}
	if sib := v.root.insert(i, b); sib != nil {
		old := v.root
		v.root = &bnode{
			kids: []*bnode{old, sib},
			size: old.size + sib.size,
			ones: old.ones + sib.ones,
		}
	}
}

// insert adds the bit and returns a new right sibling if the node split.
func (n *bnode) insert(i int, b bool) *bnode {
	n.size++
	if b {
		n.ones++
	}
	if n.leaf() {
		leafInsert(n, i, b)
		if n.size >= leafMaxWords<<6 {
			return n.splitLeaf()
		}
		return nil
	}
	var c int
	for c = 0; c < len(n.kids)-1; c++ {
		if i <= n.kids[c].size {
			break
		}
		i -= n.kids[c].size
	}
	if sib := n.kids[c].insert(i, b); sib != nil {
		n.kids = append(n.kids, nil)
		copy(n.kids[c+2:], n.kids[c+1:])
		n.kids[c+1] = sib
		if len(n.kids) > maxKids {
			return n.splitInternal()
		}
	}
	return nil
}

// leafInsert shifts the tail of the leaf right by one bit and writes b.
func leafInsert(n *bnode, i int, b bool) {
	if n.size > len(n.words)<<6 {
		n.words = append(n.words, 0)
	}
	w := i >> 6
	off := uint(i) & 63
	carry := n.words[w] >> 63
	low := n.words[w] & (1<<off - 1)
	high := n.words[w] &^ (1<<off - 1)
	n.words[w] = low | high<<1
	if b {
		n.words[w] |= 1 << off
	}
	for j := w + 1; j < len(n.words); j++ {
		next := n.words[j] >> 63
		n.words[j] = n.words[j]<<1 | carry
		carry = next
	}
}

// splitLeaf moves the upper half of the leaf's bits to a new sibling.
func (n *bnode) splitLeaf() *bnode {
	half := len(n.words) / 2
	rightWords := make([]uint64, len(n.words)-half)
	copy(rightWords, n.words[half:])
	rightSize := n.size - half<<6
	n.words = n.words[:half]
	n.size = half << 6
	sib := &bnode{words: rightWords, size: rightSize}
	sib.ones = countOnes(rightWords, rightSize)
	n.ones = countOnes(n.words, n.size)
	return sib
}

func (n *bnode) splitInternal() *bnode {
	half := len(n.kids) / 2
	rightKids := make([]*bnode, len(n.kids)-half)
	copy(rightKids, n.kids[half:])
	n.kids = n.kids[:half]
	sib := &bnode{kids: rightKids}
	recount(n)
	recount(sib)
	return sib
}

func recount(n *bnode) {
	n.size, n.ones = 0, 0
	for _, k := range n.kids {
		n.size += k.size
		n.ones += k.ones
	}
}

func countOnes(words []uint64, nbits int) int {
	c := 0
	for w := 0; w<<6 < nbits; w++ {
		rem := nbits - w<<6
		if rem >= 64 {
			c += bits.OnesCount64(words[w])
		} else {
			c += bits.OnesCount64(words[w] << (64 - uint(rem)) >> (64 - uint(rem)))
		}
	}
	return c
}

// Delete removes the bit at position i and returns its value.
func (v *BitVector) Delete(i int) bool {
	if i < 0 || i >= v.root.size {
		panic("dynseq: Delete out of range")
	}
	b := v.root.remove(i)
	if !v.root.leaf() && len(v.root.kids) == 1 {
		v.root = v.root.kids[0]
	}
	return b
}

func (n *bnode) remove(i int) bool {
	if n.leaf() {
		b := leafDelete(n, i)
		n.size--
		if b {
			n.ones--
		}
		return b
	}
	var c int
	for c = 0; c < len(n.kids)-1; c++ {
		if i < n.kids[c].size {
			break
		}
		i -= n.kids[c].size
	}
	b := n.kids[c].remove(i)
	n.size--
	if b {
		n.ones--
	}
	n.fixUnderflow(c)
	return b
}

// fixUnderflow merges or rebalances child c with a neighbour when it gets
// too small.
func (n *bnode) fixUnderflow(c int) {
	k := n.kids[c]
	under := false
	if k.leaf() {
		under = k.size <= leafMinWords<<6 && len(n.kids) > 1
	} else {
		under = len(k.kids) < minKids && len(n.kids) > 1
	}
	if !under {
		return
	}
	// Merge with the right neighbour if any, else the left one.
	j := c + 1
	if j >= len(n.kids) {
		j = c - 1
		c, j = j, c
	}
	left, right := n.kids[c], n.kids[j]
	if left.leaf() {
		mergeLeaves(left, right)
		if len(left.words) > leafMaxWords {
			sib := left.splitLeaf()
			n.kids[j] = sib
			return
		}
	} else {
		left.kids = append(left.kids, right.kids...)
		recount(left)
		if len(left.kids) > maxKids {
			sib := left.splitInternal()
			n.kids[j] = sib
			return
		}
	}
	n.kids = append(n.kids[:j], n.kids[j+1:]...)
}

// mergeLeaves appends right's bits to left.
func mergeLeaves(left, right *bnode) {
	for i := 0; i < right.size; i++ {
		b := right.words[i>>6]>>(uint(i)&63)&1 == 1
		if left.size >= len(left.words)<<6 {
			left.words = append(left.words, 0)
		}
		if b {
			left.words[left.size>>6] |= 1 << (uint(left.size) & 63)
		}
		left.size++
		if b {
			left.ones++
		}
	}
}

// leafDelete removes bit i from the leaf, shifting the tail left.
func leafDelete(n *bnode, i int) bool {
	w := i >> 6
	off := uint(i) & 63
	b := n.words[w]>>off&1 == 1
	low := n.words[w] & (1<<off - 1)
	high := n.words[w] >> (off + 1) << off
	if off == 63 {
		high = 0
	}
	n.words[w] = low | high
	for j := w + 1; j < len(n.words); j++ {
		n.words[j-1] |= n.words[j] << 63
		n.words[j] >>= 1
	}
	if (n.size-1)>>6 < len(n.words)-1 {
		n.words = n.words[:len(n.words)-1]
	}
	return b
}

// SizeBits estimates the memory footprint in bits.
func (v *BitVector) SizeBits() int64 {
	var total int64
	var walk func(n *bnode)
	walk = func(n *bnode) {
		total += 3 * 64 // struct overhead
		total += int64(len(n.words)) * 64
		total += int64(len(n.kids)) * 64
		for _, k := range n.kids {
			walk(k)
		}
	}
	walk(v.root)
	return total
}
