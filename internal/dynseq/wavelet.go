package dynseq

// Wavelet is a dynamic wavelet tree over byte symbols: a fixed-depth
// (8-level) binary trie whose nodes carry dynamic bit vectors. Every
// operation — Insert, Delete, Access, Rank, Select — costs O(log n) per
// level, i.e. O(log n · log σ) with log σ ≤ 8.
//
// This is the query-path bottleneck structure of all pre-paper dynamic
// compressed indexes (see the package comment); the benchmarks run the
// baseline through it to reproduce the Fredman–Saks-bound behaviour the
// paper circumvents.
type Wavelet struct {
	root *wnode
	n    int
}

type wnode struct {
	bv   *BitVector
	kids [2]*wnode
}

// NewWavelet returns an empty dynamic byte sequence.
func NewWavelet() *Wavelet { return &Wavelet{} }

// Len reports the number of symbols.
func (w *Wavelet) Len() int { return w.n }

// Insert places symbol c at position i (0 ≤ i ≤ Len).
func (w *Wavelet) Insert(i int, c byte) {
	if i < 0 || i > w.n {
		panic("dynseq: Wavelet.Insert out of range")
	}
	if w.root == nil {
		w.root = &wnode{bv: NewBitVector()}
	}
	nd := w.root
	for level := 7; level >= 0; level-- {
		bit := c>>uint(level)&1 == 1
		r1 := nd.bv.Rank1(i)
		nd.bv.Insert(i, bit)
		var next int
		if bit {
			next = r1
		} else {
			next = i - r1
		}
		if level == 0 {
			break
		}
		b := 0
		if bit {
			b = 1
		}
		if nd.kids[b] == nil {
			nd.kids[b] = &wnode{bv: NewBitVector()}
		}
		nd = nd.kids[b]
		i = next
	}
	w.n++
}

// Delete removes the symbol at position i and returns it.
func (w *Wavelet) Delete(i int) byte {
	if i < 0 || i >= w.n {
		panic("dynseq: Wavelet.Delete out of range")
	}
	var c byte
	nd := w.root
	for level := 7; level >= 0; level-- {
		r1 := nd.bv.Rank1(i)
		bit := nd.bv.Delete(i)
		if bit {
			c |= 1 << uint(level)
			i = r1
			nd = nd.kids[1]
		} else {
			i -= r1
			nd = nd.kids[0]
		}
		if level == 0 {
			break
		}
	}
	w.n--
	return c
}

// Access returns the symbol at position i.
func (w *Wavelet) Access(i int) byte {
	if i < 0 || i >= w.n {
		panic("dynseq: Wavelet.Access out of range")
	}
	var c byte
	nd := w.root
	for level := 7; level >= 0; level-- {
		bit := nd.bv.Get(i)
		if bit {
			c |= 1 << uint(level)
			i = nd.bv.Rank1(i)
			nd = nd.kids[1]
		} else {
			i -= nd.bv.Rank1(i)
			nd = nd.kids[0]
		}
		if level == 0 {
			break
		}
	}
	return c
}

// Rank returns the number of occurrences of c in positions [0, i).
func (w *Wavelet) Rank(c byte, i int) int {
	if i <= 0 || w.root == nil {
		return 0
	}
	if i > w.n {
		i = w.n
	}
	nd := w.root
	for level := 7; level >= 0; level-- {
		if nd == nil {
			return 0
		}
		if c>>uint(level)&1 == 1 {
			i = nd.bv.Rank1(i)
			nd = nd.kids[1]
		} else {
			i -= nd.bv.Rank1(i)
			nd = nd.kids[0]
		}
		if i == 0 {
			return 0
		}
		if level == 0 {
			break
		}
	}
	return i
}

// Select returns the position of the k-th occurrence of c (0-based), or
// -1 if there are at most k occurrences.
func (w *Wavelet) Select(c byte, k int) int {
	if w.root == nil || k < 0 {
		return -1
	}
	return wsel(w.root, c, k, 7)
}

func wsel(nd *wnode, c byte, k, level int) int {
	if nd == nil {
		return -1
	}
	bit := c>>uint(level)&1 == 1
	if level > 0 {
		b := 0
		if bit {
			b = 1
		}
		k = wsel(nd.kids[b], c, k, level-1)
		if k < 0 {
			return -1
		}
	}
	if bit {
		return nd.bv.Select1(k)
	}
	return nd.bv.Select0(k)
}

// SizeBits estimates the memory footprint in bits.
func (w *Wavelet) SizeBits() int64 {
	var total int64
	var walk func(nd *wnode)
	walk = func(nd *wnode) {
		if nd == nil {
			return
		}
		total += nd.bv.SizeBits() + 3*64
		walk(nd.kids[0])
		walk(nd.kids[1])
	}
	walk(w.root)
	return total
}
