package dynseq

const (
	arrLeafMax = 128
	arrLeafMin = 32
)

// Uint64Array is a dynamic array of uint64 values supporting O(log n)
// insertion, deletion, and access by index. The baseline index uses it to
// keep suffix-array samples aligned with the rows of a changing BWT.
type Uint64Array struct {
	root *anode
}

type anode struct {
	kids []*anode
	vals []uint64
	size int
}

func (n *anode) leaf() bool { return n.kids == nil }

// NewUint64Array returns an empty dynamic array.
func NewUint64Array() *Uint64Array {
	return &Uint64Array{root: &anode{vals: make([]uint64, 0, 8)}}
}

// Len reports the number of elements.
func (a *Uint64Array) Len() int { return a.root.size }

// Get returns the element at index i.
func (a *Uint64Array) Get(i int) uint64 {
	if i < 0 || i >= a.root.size {
		panic("dynseq: Uint64Array.Get out of range")
	}
	n := a.root
	for !n.leaf() {
		for _, k := range n.kids {
			if i < k.size {
				n = k
				break
			}
			i -= k.size
		}
	}
	return n.vals[i]
}

// Set overwrites the element at index i.
func (a *Uint64Array) Set(i int, v uint64) {
	if i < 0 || i >= a.root.size {
		panic("dynseq: Uint64Array.Set out of range")
	}
	n := a.root
	for !n.leaf() {
		for _, k := range n.kids {
			if i < k.size {
				n = k
				break
			}
			i -= k.size
		}
	}
	n.vals[i] = v
}

// Insert places v at index i (0 ≤ i ≤ Len).
func (a *Uint64Array) Insert(i int, v uint64) {
	if i < 0 || i > a.root.size {
		panic("dynseq: Uint64Array.Insert out of range")
	}
	if sib := a.root.insert(i, v); sib != nil {
		old := a.root
		a.root = &anode{kids: []*anode{old, sib}, size: old.size + sib.size}
	}
}

func (n *anode) insert(i int, v uint64) *anode {
	n.size++
	if n.leaf() {
		n.vals = append(n.vals, 0)
		copy(n.vals[i+1:], n.vals[i:])
		n.vals[i] = v
		if len(n.vals) >= arrLeafMax {
			half := len(n.vals) / 2
			rv := make([]uint64, len(n.vals)-half)
			copy(rv, n.vals[half:])
			sib := &anode{vals: rv, size: len(rv)}
			n.vals = n.vals[:half]
			n.size = half
			return sib
		}
		return nil
	}
	var c int
	for c = 0; c < len(n.kids)-1; c++ {
		if i <= n.kids[c].size {
			break
		}
		i -= n.kids[c].size
	}
	if sib := n.kids[c].insert(i, v); sib != nil {
		n.kids = append(n.kids, nil)
		copy(n.kids[c+2:], n.kids[c+1:])
		n.kids[c+1] = sib
		if len(n.kids) > maxKids {
			half := len(n.kids) / 2
			rk := make([]*anode, len(n.kids)-half)
			copy(rk, n.kids[half:])
			n.kids = n.kids[:half]
			sib2 := &anode{kids: rk}
			arecount(n)
			arecount(sib2)
			return sib2
		}
	}
	return nil
}

func arecount(n *anode) {
	n.size = 0
	for _, k := range n.kids {
		n.size += k.size
	}
}

// Delete removes and returns the element at index i.
func (a *Uint64Array) Delete(i int) uint64 {
	if i < 0 || i >= a.root.size {
		panic("dynseq: Uint64Array.Delete out of range")
	}
	v := a.root.remove(i)
	if !a.root.leaf() && len(a.root.kids) == 1 {
		a.root = a.root.kids[0]
	}
	return v
}

func (n *anode) remove(i int) uint64 {
	n.size--
	if n.leaf() {
		v := n.vals[i]
		n.vals = append(n.vals[:i], n.vals[i+1:]...)
		return v
	}
	var c int
	for c = 0; c < len(n.kids)-1; c++ {
		if i < n.kids[c].size {
			break
		}
		i -= n.kids[c].size
	}
	v := n.kids[c].remove(i)
	n.fixUnderflow(c)
	return v
}

func (n *anode) fixUnderflow(c int) {
	k := n.kids[c]
	var under bool
	if k.leaf() {
		under = len(k.vals) <= arrLeafMin && len(n.kids) > 1
	} else {
		under = len(k.kids) < minKids && len(n.kids) > 1
	}
	if !under {
		return
	}
	j := c + 1
	if j >= len(n.kids) {
		j = c - 1
		c, j = j, c
	}
	left, right := n.kids[c], n.kids[j]
	if left.leaf() {
		left.vals = append(left.vals, right.vals...)
		left.size = len(left.vals)
		if len(left.vals) >= arrLeafMax {
			half := len(left.vals) / 2
			rv := make([]uint64, len(left.vals)-half)
			copy(rv, left.vals[half:])
			left.vals = left.vals[:half]
			left.size = half
			n.kids[j] = &anode{vals: rv, size: len(rv)}
			return
		}
	} else {
		left.kids = append(left.kids, right.kids...)
		arecount(left)
		if len(left.kids) > maxKids {
			half := len(left.kids) / 2
			rk := make([]*anode, len(left.kids)-half)
			copy(rk, left.kids[half:])
			left.kids = left.kids[:half]
			sib := &anode{kids: rk}
			arecount(left)
			arecount(sib)
			n.kids[j] = sib
			return
		}
	}
	n.kids = append(n.kids[:j], n.kids[j+1:]...)
}

// SizeBits estimates the memory footprint in bits.
func (a *Uint64Array) SizeBits() int64 {
	var total int64
	var walk func(n *anode)
	walk = func(n *anode) {
		total += 3 * 64
		total += int64(len(n.vals)) * 64
		total += int64(len(n.kids)) * 64
		for _, k := range n.kids {
			walk(k)
		}
	}
	walk(a.root)
	return total
}
