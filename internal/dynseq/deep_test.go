package dynseq

import (
	"math/rand"
	"testing"
)

// TestBitVectorDeepTree grows the vector far past one internal node's
// fanout so root and internal splits (and, on the way down, merges) all
// run, with rank/select cross-checked at checkpoints.
func TestBitVectorDeepTree(t *testing.T) {
	const n = 600_000
	v := NewBitVector()
	for i := 0; i < n; i++ {
		v.Insert(i, i%5 == 0)
	}
	if v.Len() != n {
		t.Fatalf("Len = %d", v.Len())
	}
	wantOnes := (n + 4) / 5
	if v.Ones() != wantOnes {
		t.Fatalf("Ones = %d, want %d", v.Ones(), wantOnes)
	}
	for _, i := range []int{0, 1, 4096, 65536, 299_999, n - 1} {
		if v.Get(i) != (i%5 == 0) {
			t.Fatalf("Get(%d) wrong", i)
		}
	}
	for _, i := range []int{0, 63, 4096, 123_457, n} {
		want := (i + 4) / 5
		if got := v.Rank1(i); got != want {
			t.Fatalf("Rank1(%d) = %d, want %d", i, got, want)
		}
		if got := v.Rank0(i); got != i-want {
			t.Fatalf("Rank0(%d) = %d, want %d", i, got, i-want)
		}
	}
	for _, k := range []int{0, 1, 999, wantOnes - 1} {
		if got := v.Select1(k); got != 5*k {
			t.Fatalf("Select1(%d) = %d, want %d", k, got, 5*k)
		}
	}
	// Select0: the k-th zero. Zeros are positions not divisible by 5:
	// within each block of 5 there are 4 zeros at offsets 1..4.
	for _, k := range []int{0, 1, 2, 3, 4, 5, 1000} {
		want := (k/4)*5 + k%4 + 1
		if got := v.Select0(k); got != want {
			t.Fatalf("Select0(%d) = %d, want %d", k, got, want)
		}
	}

	// Drain interior positions so underflow merges and re-splits run at
	// every level; verify counters stay exact.
	rng := rand.New(rand.NewSource(5))
	ones := wantOnes
	for v.Len() > 1000 {
		i := rng.Intn(v.Len())
		if v.Delete(i) {
			ones--
		}
	}
	if v.Ones() != ones {
		t.Fatalf("Ones after drain = %d, want %d", v.Ones(), ones)
	}
	// Structure must still answer queries consistently.
	got := 0
	for i := 0; i < v.Len(); i++ {
		if v.Get(i) {
			got++
		}
	}
	if got != ones {
		t.Fatalf("bit scan = %d, want %d", got, ones)
	}
	if v.Rank1(v.Len()) != ones {
		t.Fatalf("Rank1(end) = %d, want %d", v.Rank1(v.Len()), ones)
	}
}

// TestUint64ArrayDeepTree mirrors the deep-tree test for the value array.
func TestUint64ArrayDeepTree(t *testing.T) {
	const n = 300_000
	a := NewUint64Array()
	for i := 0; i < n; i++ {
		a.Insert(i, uint64(i)*3)
	}
	for _, i := range []int{0, 127, 65_536, n - 1} {
		if a.Get(i) != uint64(i)*3 {
			t.Fatalf("Get(%d) wrong", i)
		}
	}
	// Delete every other element from the front; survivors must stay in
	// order with exact indexing.
	for i := 0; i < n/2; i++ {
		if got := a.Delete(i); got != uint64(2*i)*3 {
			t.Fatalf("Delete(%d) = %d, want %d", i, got, uint64(2*i)*3)
		}
	}
	if a.Len() != n/2 {
		t.Fatalf("Len = %d", a.Len())
	}
	for _, i := range []int{0, 1, 1000, n/2 - 1} {
		if got := a.Get(i); got != uint64(2*i+1)*3 {
			t.Fatalf("post-drain Get(%d) = %d, want %d", i, got, uint64(2*i+1)*3)
		}
	}
	// Full drain exercises root collapse.
	for a.Len() > 0 {
		a.Delete(a.Len() - 1)
	}
	a.Insert(0, 42)
	if a.Get(0) != 42 {
		t.Fatal("array unusable after full drain")
	}
}

// TestWaveletDeepTree checks the dynamic wavelet at a size where its
// per-level bit vectors are multi-level B+trees themselves.
func TestWaveletDeepTree(t *testing.T) {
	const n = 200_000
	w := NewWavelet()
	for i := 0; i < n; i++ {
		w.Insert(i, byte(i%251))
	}
	if w.Len() != n {
		t.Fatalf("Len = %d", w.Len())
	}
	for _, c := range []byte{0, 1, 100, 250} {
		want := 0
		for i := 0; i < n; i++ {
			if byte(i%251) == c {
				want++
			}
		}
		if got := w.Rank(c, n); got != want {
			t.Fatalf("Rank(%d) = %d, want %d", c, got, want)
		}
		if want > 0 {
			if got := w.Select(c, 0); got != int(c) {
				t.Fatalf("Select(%d, 0) = %d, want %d", c, got, int(c))
			}
		}
	}
	for _, i := range []int{0, 250, 251, 99_999, n - 1} {
		if got := w.Access(i); got != byte(i%251) {
			t.Fatalf("Access(%d) = %d", i, got)
		}
	}
	// Delete a band in the middle and re-check alignment.
	for i := 0; i < 50_000; i++ {
		w.Delete(75_000)
	}
	if w.Len() != n-50_000 {
		t.Fatalf("Len after band delete = %d", w.Len())
	}
	if got := w.Access(75_000); got != byte((75_000+50_000)%251) {
		t.Fatalf("Access after band delete = %d", got)
	}
}
