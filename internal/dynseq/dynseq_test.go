package dynseq

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// refBits is the naive reference for BitVector.
type refBits struct{ bits []bool }

func (r *refBits) insert(i int, b bool) {
	r.bits = append(r.bits, false)
	copy(r.bits[i+1:], r.bits[i:])
	r.bits[i] = b
}

func (r *refBits) delete(i int) bool {
	b := r.bits[i]
	r.bits = append(r.bits[:i], r.bits[i+1:]...)
	return b
}

func (r *refBits) rank1(i int) int {
	n := 0
	for _, b := range r.bits[:i] {
		if b {
			n++
		}
	}
	return n
}

func (r *refBits) select1(k int) int {
	for i, b := range r.bits {
		if b {
			if k == 0 {
				return i
			}
			k--
		}
	}
	return -1
}

func (r *refBits) select0(k int) int {
	for i, b := range r.bits {
		if !b {
			if k == 0 {
				return i
			}
			k--
		}
	}
	return -1
}

func TestBitVectorRandomOps(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	v := NewBitVector()
	ref := &refBits{}
	for step := 0; step < 30_000; step++ {
		n := v.Len()
		switch {
		case n == 0 || rng.Float64() < 0.6:
			i := rng.Intn(n + 1)
			b := rng.Intn(2) == 1
			v.Insert(i, b)
			ref.insert(i, b)
		default:
			i := rng.Intn(n)
			got := v.Delete(i)
			want := ref.delete(i)
			if got != want {
				t.Fatalf("step %d: Delete(%d) = %v, want %v", step, i, got, want)
			}
		}
		if v.Len() != len(ref.bits) {
			t.Fatalf("step %d: Len %d != %d", step, v.Len(), len(ref.bits))
		}
		if step%101 == 0 {
			checkBitsAgree(t, v, ref)
		}
	}
	checkBitsAgree(t, v, ref)
}

func checkBitsAgree(t *testing.T, v *BitVector, ref *refBits) {
	t.Helper()
	n := len(ref.bits)
	ones := 0
	for i, b := range ref.bits {
		if v.Get(i) != b {
			t.Fatalf("Get(%d) mismatch", i)
		}
		if b {
			ones++
		}
	}
	if v.Ones() != ones {
		t.Fatalf("Ones = %d, want %d", v.Ones(), ones)
	}
	for _, i := range []int{0, 1, n / 3, n / 2, n} {
		if i > n {
			continue
		}
		if got, want := v.Rank1(i), ref.rank1(i); got != want {
			t.Fatalf("Rank1(%d) = %d, want %d", i, got, want)
		}
		if got, want := v.Rank0(i), i-ref.rank1(i); got != want {
			t.Fatalf("Rank0(%d) = %d, want %d", i, got, want)
		}
	}
	for _, k := range []int{0, 1, ones / 2, ones - 1, ones} {
		if got, want := v.Select1(k), ref.select1(k); got != want {
			t.Fatalf("Select1(%d) = %d, want %d", k, got, want)
		}
	}
	zeros := n - ones
	for _, k := range []int{0, zeros / 2, zeros - 1, zeros} {
		if got, want := v.Select0(k), ref.select0(k); got != want {
			t.Fatalf("Select0(%d) = %d, want %d", k, got, want)
		}
	}
}

func TestBitVectorAppendHeavy(t *testing.T) {
	// Pure append builds deep right spines; rank/select must stay exact.
	v := NewBitVector()
	for i := 0; i < 20_000; i++ {
		v.Insert(i, i%3 == 0)
	}
	if v.Len() != 20_000 {
		t.Fatalf("Len = %d", v.Len())
	}
	want := (20_000 + 2) / 3
	if v.Ones() != want {
		t.Fatalf("Ones = %d, want %d", v.Ones(), want)
	}
	for _, i := range []int{0, 1, 2, 3, 63, 64, 65, 4095, 4096, 4097, 19_999} {
		if got := v.Get(i); got != (i%3 == 0) {
			t.Fatalf("Get(%d) = %v", i, got)
		}
	}
	if got := v.Rank1(20_000); got != want {
		t.Fatalf("Rank1(end) = %d, want %d", got, want)
	}
	for k := 0; k < want; k += 997 {
		if got := v.Select1(k); got != 3*k {
			t.Fatalf("Select1(%d) = %d, want %d", k, got, 3*k)
		}
	}
}

func TestBitVectorPrependHeavy(t *testing.T) {
	v := NewBitVector()
	for i := 0; i < 10_000; i++ {
		v.Insert(0, i%2 == 0)
	}
	if v.Len() != 10_000 || v.Ones() != 5000 {
		t.Fatalf("Len=%d Ones=%d", v.Len(), v.Ones())
	}
	// Prepending reverses order: positions 0.. alternate starting with the
	// last inserted bit (i=9999, odd → false).
	if v.Get(0) != false || v.Get(1) != true {
		t.Fatal("prepend order wrong")
	}
}

func TestBitVectorDeleteAll(t *testing.T) {
	v := NewBitVector()
	for i := 0; i < 9000; i++ {
		v.Insert(i, i%5 == 0)
	}
	for v.Len() > 0 {
		v.Delete(v.Len() / 2)
	}
	if v.Len() != 0 || v.Ones() != 0 {
		t.Fatalf("Len=%d Ones=%d after deleting all", v.Len(), v.Ones())
	}
	// The vector must be reusable afterwards.
	v.Insert(0, true)
	if v.Len() != 1 || !v.Get(0) {
		t.Fatal("vector unusable after full drain")
	}
}

func TestBitVectorEdgePanics(t *testing.T) {
	v := NewBitVector()
	for _, f := range []func(){
		func() { v.Get(0) },
		func() { v.Delete(0) },
		func() { v.Insert(1, true) },
		func() { v.Insert(-1, true) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestBitVectorSelectOutOfRange(t *testing.T) {
	v := NewBitVector()
	v.Insert(0, true)
	v.Insert(1, false)
	if v.Select1(1) != -1 || v.Select1(-1) != -1 {
		t.Fatal("Select1 out of range should return -1")
	}
	if v.Select0(1) != -1 {
		t.Fatal("Select0 out of range should return -1")
	}
}

// refSeq is the naive reference for Wavelet.
type refSeq struct{ s []byte }

func (r *refSeq) insert(i int, c byte) {
	r.s = append(r.s, 0)
	copy(r.s[i+1:], r.s[i:])
	r.s[i] = c
}

func (r *refSeq) delete(i int) byte {
	c := r.s[i]
	r.s = append(r.s[:i], r.s[i+1:]...)
	return c
}

func (r *refSeq) rank(c byte, i int) int {
	n := 0
	for _, x := range r.s[:i] {
		if x == c {
			n++
		}
	}
	return n
}

func (r *refSeq) sel(c byte, k int) int {
	for i, x := range r.s {
		if x == c {
			if k == 0 {
				return i
			}
			k--
		}
	}
	return -1
}

func TestWaveletRandomOps(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	w := NewWavelet()
	ref := &refSeq{}
	alphabet := []byte{0, 1, 2, 3, 7, 64, 128, 255}
	for step := 0; step < 20_000; step++ {
		n := w.Len()
		switch {
		case n == 0 || rng.Float64() < 0.6:
			i := rng.Intn(n + 1)
			c := alphabet[rng.Intn(len(alphabet))]
			w.Insert(i, c)
			ref.insert(i, c)
		default:
			i := rng.Intn(n)
			got := w.Delete(i)
			want := ref.delete(i)
			if got != want {
				t.Fatalf("step %d: Delete(%d) = %d, want %d", step, i, got, want)
			}
		}
		if step%127 == 0 {
			checkSeqAgree(t, w, ref, alphabet)
		}
	}
	checkSeqAgree(t, w, ref, alphabet)
}

func checkSeqAgree(t *testing.T, w *Wavelet, ref *refSeq, alphabet []byte) {
	t.Helper()
	if w.Len() != len(ref.s) {
		t.Fatalf("Len %d != %d", w.Len(), len(ref.s))
	}
	n := len(ref.s)
	for _, i := range []int{0, n / 2, n - 1} {
		if i < 0 || i >= n {
			continue
		}
		if got := w.Access(i); got != ref.s[i] {
			t.Fatalf("Access(%d) = %d, want %d", i, got, ref.s[i])
		}
	}
	for _, c := range alphabet {
		for _, i := range []int{0, n / 3, n} {
			if got, want := w.Rank(c, i), ref.rank(c, i); got != want {
				t.Fatalf("Rank(%d, %d) = %d, want %d", c, i, got, want)
			}
		}
		total := ref.rank(c, n)
		for _, k := range []int{0, total / 2, total - 1, total} {
			if k < 0 {
				continue
			}
			if got, want := w.Select(c, k), ref.sel(c, k); got != want {
				t.Fatalf("Select(%d, %d) = %d, want %d", c, k, got, want)
			}
		}
	}
}

func TestWaveletAbsentSymbol(t *testing.T) {
	w := NewWavelet()
	for i := 0; i < 100; i++ {
		w.Insert(i, 5)
	}
	if w.Rank(6, 100) != 0 {
		t.Fatal("Rank of absent symbol should be 0")
	}
	if w.Select(6, 0) != -1 {
		t.Fatal("Select of absent symbol should be -1")
	}
	if w.Rank(5, 100) != 100 {
		t.Fatal("Rank of present symbol wrong")
	}
}

func TestWaveletEmpty(t *testing.T) {
	w := NewWavelet()
	if w.Rank(0, 10) != 0 || w.Select(0, 0) != -1 || w.Len() != 0 {
		t.Fatal("empty wavelet misbehaves")
	}
}

func TestWaveletQuick(t *testing.T) {
	f := func(ops []byte) bool {
		w := NewWavelet()
		ref := &refSeq{}
		for _, op := range ops {
			n := w.Len()
			if op < 170 || n == 0 {
				i := int(op) % (n + 1)
				c := op * 31
				w.Insert(i, c)
				ref.insert(i, c)
			} else {
				i := int(op) % n
				if w.Delete(i) != ref.delete(i) {
					return false
				}
			}
		}
		if w.Len() != len(ref.s) {
			return false
		}
		for i, c := range ref.s {
			if w.Access(i) != c {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestUint64ArrayRandomOps(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := NewUint64Array()
	var ref []uint64
	for step := 0; step < 30_000; step++ {
		n := a.Len()
		switch {
		case n == 0 || rng.Float64() < 0.55:
			i := rng.Intn(n + 1)
			v := rng.Uint64()
			a.Insert(i, v)
			ref = append(ref, 0)
			copy(ref[i+1:], ref[i:])
			ref[i] = v
		case rng.Float64() < 0.5:
			i := rng.Intn(n)
			got := a.Delete(i)
			want := ref[i]
			ref = append(ref[:i], ref[i+1:]...)
			if got != want {
				t.Fatalf("step %d: Delete(%d) = %d, want %d", step, i, got, want)
			}
		default:
			i := rng.Intn(n)
			v := rng.Uint64()
			a.Set(i, v)
			ref[i] = v
		}
		if a.Len() != len(ref) {
			t.Fatalf("Len %d != %d", a.Len(), len(ref))
		}
		if step%211 == 0 && len(ref) > 0 {
			for _, i := range []int{0, len(ref) / 2, len(ref) - 1} {
				if a.Get(i) != ref[i] {
					t.Fatalf("Get(%d) mismatch", i)
				}
			}
		}
	}
	for i, v := range ref {
		if a.Get(i) != v {
			t.Fatalf("final Get(%d) mismatch", i)
		}
	}
}

func TestUint64ArrayPanics(t *testing.T) {
	a := NewUint64Array()
	for _, f := range []func(){
		func() { a.Get(0) },
		func() { a.Delete(0) },
		func() { a.Set(0, 1) },
		func() { a.Insert(1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestSizeBitsGrow(t *testing.T) {
	v := NewBitVector()
	small := v.SizeBits()
	for i := 0; i < 10_000; i++ {
		v.Insert(i, true)
	}
	if v.SizeBits() <= small {
		t.Fatal("SizeBits did not grow")
	}
	w := NewWavelet()
	for i := 0; i < 1000; i++ {
		w.Insert(i, byte(i))
	}
	if w.SizeBits() <= 0 {
		t.Fatal("wavelet SizeBits not positive")
	}
	a := NewUint64Array()
	for i := 0; i < 1000; i++ {
		a.Insert(i, uint64(i))
	}
	if a.SizeBits() <= 0 {
		t.Fatal("array SizeBits not positive")
	}
}

func BenchmarkBitVectorInsert(b *testing.B) {
	v := NewBitVector()
	rng := rand.New(rand.NewSource(7))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Insert(rng.Intn(v.Len()+1), i&1 == 0)
	}
}

func BenchmarkBitVectorRank(b *testing.B) {
	v := NewBitVector()
	for i := 0; i < 1<<20; i++ {
		v.Insert(i, i%7 == 0)
	}
	rng := rand.New(rand.NewSource(8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Rank1(rng.Intn(v.Len()))
	}
}

func BenchmarkWaveletRank(b *testing.B) {
	w := NewWavelet()
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 1<<18; i++ {
		w.Insert(i, byte(rng.Intn(64)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w.Rank(byte(i&63), rng.Intn(w.Len()))
	}
}
