// Package shardmap is the single source of truth for deterministic
// key→shard and key→backend placement. Both the in-process sharding
// layer (dyncoll.WithShards) and the networked frontend (cmd/dyndocd
// -mode=frontend) route through it, so a document's owner is a pure
// function of its ID and the partition count — any frontend replica,
// any backend, and any offline tool computes the same answer with no
// coordination, exactly the Debian Code Search shard-mapping contract.
//
// The mapping is part of the persistence story: a fleet of backends can
// be restarted from per-backend snapshots and keys keep routing to the
// data that owns them, as long as the backend count is unchanged. The
// assignments are pinned by golden tests; changing them is a
// data-placement migration, not a refactor.
package shardmap

// Mix finalizes a key with the splitmix64 mixer so dense sequential IDs
// (the common case) spread evenly across partitions instead of striping.
func Mix(key uint64) uint64 {
	key ^= key >> 30
	key *= 0xbf58476d1ce4e5b9
	key ^= key >> 27
	key *= 0x94d049bb133111eb
	key ^= key >> 31
	return key
}

// ShardOf maps a key to one of p in-process shards. p ≤ 1 always maps
// to shard 0.
func ShardOf(key uint64, p int) int {
	if p <= 1 {
		return 0
	}
	return int(Mix(key) % uint64(p))
}

// backendSalt decorrelates the backend stream from the shard stream:
// BackendFor must not reuse ShardOf's mixed value directly, because a
// backend that itself runs WithShards(p) re-applies Mix to the same
// keys — every key on backend b would satisfy Mix(key) % n == b, and
// whenever n and p share a factor the backend's internal shards would
// stripe (at n == p, one shard per backend gets every document).
const backendSalt = 0x9e3779b97f4a7c15 // golden-ratio increment, splitmix64's own stream constant

// BackendFor maps a key to one of n backend processes. n ≤ 1 always
// maps to backend 0. The assignment is pinned by golden tests
// (shardmap_test.go): changing it silently re-homes every document in a
// deployed fleet.
func BackendFor(key uint64, n int) int {
	if n <= 1 {
		return 0
	}
	return int(Mix(key+backendSalt) % uint64(n))
}
