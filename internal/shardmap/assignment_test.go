package shardmap

import (
	"encoding/json"
	"reflect"
	"testing"
)

// TestAssignmentGoldenTables pins the default replica-set tables. Like
// the BackendFor goldens, these are a deployed-fleet contract: a
// frontend restarted with the same (n, R) must compute the identical
// table or every key re-homes silently.
func TestAssignmentGoldenTables(t *testing.T) {
	cases := []struct {
		n, r  int
		table [][]int
	}{
		{2, 1, [][]int{{0}, {1}}},
		{2, 2, [][]int{{0, 1}, {1, 0}}},
		{3, 2, [][]int{{0, 1}, {1, 2}, {2, 0}}},
		{4, 2, [][]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}}},
		{4, 3, [][]int{{0, 1, 2}, {1, 2, 3}, {2, 3, 0}, {3, 0, 1}}},
	}
	for _, c := range cases {
		a := NewAssignment(c.n, c.r)
		if a.Version != 1 {
			t.Errorf("NewAssignment(%d,%d).Version = %d, want 1", c.n, c.r, a.Version)
		}
		if !reflect.DeepEqual(a.Table, c.table) {
			t.Errorf("NewAssignment(%d,%d).Table = %v, want %v (golden table changed!)", c.n, c.r, a.Table, c.table)
		}
		if err := a.Validate(); err != nil {
			t.Errorf("default table (%d,%d) invalid: %v", c.n, c.r, err)
		}
	}
}

// TestAssignmentRowCompat: with a default one-row-per-backend table,
// RowOf must agree with the pinned BackendFor contract for every fleet
// size the BackendFor goldens cover — the replicated table is a strict
// extension of the fixed placement, not a re-homing.
func TestAssignmentRowCompat(t *testing.T) {
	keys := []uint64{0, 1, 2, 3, 7, 42, 1000, 65536, 1 << 32, 0xffffffffffffffff, 0xdeadbeef, 123456789}
	for _, n := range []int{2, 3, 4, 8, 16} {
		for _, r := range []int{1, 2, 3} {
			a := NewAssignment(n, r)
			for _, k := range keys {
				row := a.RowOf(k)
				if row != BackendFor(k, n) {
					t.Fatalf("RowOf(%d) = %d under n=%d, want BackendFor's %d", k, row, n, BackendFor(k, n))
				}
				if a.Replicas(row)[0] != row {
					t.Fatalf("row %d primary = %d, want the row index (n=%d, r=%d)", row, a.Replicas(row)[0], n, r)
				}
				if a.Primary(k) != BackendFor(k, n) {
					t.Fatalf("Primary(%d) = %d, want %d", k, a.Primary(k), BackendFor(k, n))
				}
			}
		}
	}
}

// TestAssignmentClamps: degenerate n and r clamp instead of panicking.
func TestAssignmentClamps(t *testing.T) {
	a := NewAssignment(0, 0)
	if a.Backends != 1 || a.Replication != 1 || len(a.Table) != 1 || len(a.Table[0]) != 1 {
		t.Fatalf("NewAssignment(0,0) = %+v, want the 1-backend singleton", a)
	}
	if a := NewAssignment(2, 9); a.Replication != 2 || len(a.Table[0]) != 2 {
		t.Fatalf("r > n must clamp to n: %+v", a)
	}
}

// TestAssignmentRoundTrip: a table survives the JSON wire form the
// /v1/assignment endpoint and the -assignment flag use.
func TestAssignmentRoundTrip(t *testing.T) {
	a := NewAssignment(4, 2)
	a.Version = 7
	raw, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ParseAssignment(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("round trip changed the table: %+v vs %+v", a, b)
	}
}

// TestAssignmentValidate rejects the malformed tables an operator could
// hand the -assignment flag.
func TestAssignmentValidate(t *testing.T) {
	bad := []Assignment{
		{Version: 1, Backends: 0, Table: [][]int{{0}}},            // no backends
		{Version: 1, Backends: 2, Table: nil},                     // no rows
		{Version: 1, Backends: 2, Table: [][]int{{}}},             // empty row
		{Version: 1, Backends: 2, Table: [][]int{{0, 2}}},         // out of range
		{Version: 1, Backends: 2, Table: [][]int{{-1}}},           // negative
		{Version: 1, Backends: 2, Table: [][]int{{1, 1}}},         // duplicate replica
		{Version: 1, Backends: 4, Table: [][]int{{0, 1}, {2, 2}}}, // dup in later row
	}
	for i, a := range bad {
		if err := a.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted malformed table %+v", i, a)
		}
	}
	if _, err := ParseAssignment([]byte(`{"version":1,`)); err == nil {
		t.Error("ParseAssignment accepted truncated JSON")
	}
	if _, err := ParseAssignment([]byte(`{"version":1,"backends":2,"replication":2,"table":[[0,1],[1,0]]}`)); err != nil {
		t.Errorf("ParseAssignment rejected a valid table: %v", err)
	}
}
