package shardmap

import "testing"

// goldenKeys are the probe keys every golden table below is indexed by.
var goldenKeys = []uint64{0, 1, 2, 3, 7, 42, 1000, 65536, 1 << 32, 0xffffffffffffffff, 0xdeadbeef, 123456789}

// TestBackendForGolden pins key→backend assignments. These values are a
// deployed-fleet contract: a frontend restarted with the same backend
// list must route every key to the backend that already owns its data,
// so any change here is a data-placement migration, not a refactor.
func TestBackendForGolden(t *testing.T) {
	golden := map[int][]int{
		2:  {1, 1, 0, 1, 1, 1, 0, 1, 0, 0, 1, 1},
		3:  {1, 2, 1, 0, 0, 1, 1, 0, 1, 2, 1, 2},
		4:  {3, 1, 2, 1, 3, 1, 0, 3, 0, 0, 3, 1},
		8:  {7, 1, 6, 5, 7, 5, 0, 3, 0, 0, 3, 1},
		16: {15, 1, 14, 13, 7, 5, 8, 3, 8, 0, 11, 9},
	}
	for n, want := range golden {
		for i, k := range goldenKeys {
			if got := BackendFor(k, n); got != want[i] {
				t.Errorf("BackendFor(%d, %d) = %d, want %d (golden assignment changed!)", k, n, got, want[i])
			}
		}
	}
}

// TestShardOfGolden pins key→shard assignments: snapshots of a sharded
// structure record per-shard ladders, so the in-process mapping is as
// much a persistence contract as the backend one.
func TestShardOfGolden(t *testing.T) {
	golden := map[int][]int{
		2: {0, 1, 0, 0, 0, 0, 1, 1, 1, 1, 0, 0},
		4: {0, 1, 2, 0, 0, 2, 3, 1, 3, 3, 2, 0},
		8: {0, 5, 2, 0, 4, 2, 7, 5, 7, 3, 2, 0},
	}
	for p, want := range golden {
		for i, k := range goldenKeys {
			if got := ShardOf(k, p); got != want[i] {
				t.Errorf("ShardOf(%d, %d) = %d, want %d (golden assignment changed!)", k, p, got, want[i])
			}
		}
	}
}

// TestSingletonPartitions checks the p ≤ 1 fast paths.
func TestSingletonPartitions(t *testing.T) {
	for _, k := range goldenKeys {
		for _, n := range []int{-1, 0, 1} {
			if ShardOf(k, n) != 0 || BackendFor(k, n) != 0 {
				t.Fatalf("partition count %d must map every key to 0", n)
			}
		}
	}
}

// TestBackendShardDecorrelated is the reason BackendFor salts the key:
// keys owned by one backend, re-sharded inside that backend with the
// same partition count, must still spread across all internal shards.
// Without the salt, Mix(key) % n == b striping would put every document
// of backend b into internal shard b.
func TestBackendShardDecorrelated(t *testing.T) {
	const n = 4                         // backends, and shards inside each backend
	counts := make(map[int]map[int]int) // backend → shard → keys
	for k := uint64(0); k < 4096; k++ {
		b := BackendFor(k, n)
		s := ShardOf(k, n)
		if counts[b] == nil {
			counts[b] = make(map[int]int)
		}
		counts[b][s]++
	}
	for b := 0; b < n; b++ {
		for s := 0; s < n; s++ {
			if counts[b][s] == 0 {
				t.Fatalf("backend %d internal shard %d received zero of 4096 keys: backend and shard streams are correlated", b, s)
			}
		}
	}
}

// TestBackendBalance sanity-checks that dense sequential IDs spread
// evenly (each of 8 backends within ±25%% of the mean over 64k keys).
func TestBackendBalance(t *testing.T) {
	const n, keys = 8, 65536
	var counts [n]int
	for k := uint64(0); k < keys; k++ {
		counts[BackendFor(k, n)]++
	}
	mean := keys / n
	for b, c := range counts {
		if c < mean*3/4 || c > mean*5/4 {
			t.Errorf("backend %d holds %d of %d keys (mean %d): unbalanced", b, c, keys, mean)
		}
	}
}
