package shardmap

import (
	"encoding/json"
	"fmt"
)

// Assignment is the explicit, versioned key-range → replica-set table
// the replicated fleet routes through. The key space is partitioned
// into len(Table) ranges ("rows") by the same pinned BackendFor mixing
// that places keys on backends, so a default table with one row per
// backend is placement-compatible with the fixed pre-assignment
// contract: row b's primary is backend b. Each row lists the ordered
// replica set holding that range — primary first, then R−1 replicas —
// and writes must reach every member (quorum = all) while reads may be
// served by any live member.
//
// The table is a data-placement contract exactly like BackendFor:
// default tables are pinned by golden tests, and an operator-supplied
// table (the -assignment flag) must carry a bumped Version so frontends
// can detect that they disagree about placement.
type Assignment struct {
	// Version identifies the placement epoch. NewAssignment tables are
	// version 1; explicit tables bump it on every change.
	Version uint64 `json:"version"`
	// Backends is the fleet size n; every table entry is in [0, n).
	Backends int `json:"backends"`
	// Replication is the declared replication factor R (row length for
	// default tables; informational for explicit ones).
	Replication int `json:"replication"`
	// Table maps each key range (row) to its ordered replica set,
	// primary first. Keys map to rows via RowOf.
	Table [][]int `json:"table"`
}

// NewAssignment builds the default version-1 table for n backends with
// replication factor r: one row per backend, row b = [b, (b+1)%n, …]
// with min(r, n) ring successors. r ≤ 1 yields the unreplicated table
// whose placement is identical to the fixed BackendFor contract.
func NewAssignment(n, r int) Assignment {
	if n < 1 {
		n = 1
	}
	if r < 1 {
		r = 1
	}
	if r > n {
		r = n
	}
	table := make([][]int, n)
	for b := 0; b < n; b++ {
		row := make([]int, r)
		for i := 0; i < r; i++ {
			row[i] = (b + i) % n
		}
		table[b] = row
	}
	return Assignment{Version: 1, Backends: n, Replication: r, Table: table}
}

// ParseAssignment decodes and validates an explicit JSON table.
func ParseAssignment(data []byte) (Assignment, error) {
	var a Assignment
	if err := json.Unmarshal(data, &a); err != nil {
		return a, fmt.Errorf("shardmap: parsing assignment: %w", err)
	}
	if err := a.Validate(); err != nil {
		return a, err
	}
	return a, nil
}

// Validate checks the structural invariants every router relies on:
// at least one row, every entry a distinct backend in [0, Backends).
func (a Assignment) Validate() error {
	if a.Backends < 1 {
		return fmt.Errorf("shardmap: assignment needs backends ≥ 1, got %d", a.Backends)
	}
	if len(a.Table) == 0 {
		return fmt.Errorf("shardmap: assignment table has no rows")
	}
	for row, set := range a.Table {
		if len(set) == 0 {
			return fmt.Errorf("shardmap: assignment row %d has no replicas", row)
		}
		seen := make(map[int]bool, len(set))
		for _, b := range set {
			if b < 0 || b >= a.Backends {
				return fmt.Errorf("shardmap: assignment row %d names backend %d outside [0,%d)", row, b, a.Backends)
			}
			if seen[b] {
				return fmt.Errorf("shardmap: assignment row %d lists backend %d twice", row, b)
			}
			seen[b] = true
		}
	}
	return nil
}

// Rows returns the number of key ranges the table partitions into.
func (a Assignment) Rows() int { return len(a.Table) }

// RowOf maps a key to its range. It reuses the pinned BackendFor mixing
// with n = Rows(), so a default one-row-per-backend table places every
// key exactly where the fixed contract already did.
func (a Assignment) RowOf(key uint64) int { return BackendFor(key, len(a.Table)) }

// Replicas returns row's ordered replica set (primary first). The
// returned slice aliases the table; callers must not mutate it.
func (a Assignment) Replicas(row int) []int { return a.Table[row] }

// Primary returns the first replica of the row owning key.
func (a Assignment) Primary(key uint64) int { return a.Table[a.RowOf(key)][0] }
