// Package server is the networked serving layer over the dynamic
// document collection: a backend exposes one (sharded) Collection over
// HTTP/JSON with streaming NDJSON query results, and a frontend routes
// keyed operations to the backend owning each document while fanning
// un-routable queries out across the whole fleet — the same union-over-
// sub-collections contract the in-process sharding layer implements,
// lifted to processes (a backend is one more shard level; see
// DESIGN.md). Only the standard library is used.
//
// Endpoints (both roles serve the same API):
//
//	POST /v1/insert   {"docs":[{"id":1,"text":"…"} | {"id":2,"data":"<base64>"}]}
//	POST /v1/delete   {"ids":[1,2,3]}
//	GET  /v1/find?q=pat[&limit=n]   NDJSON stream of {"doc":id,"off":o}
//	POST /v1/search   {"q":"pat","regex":true,"ranked":true,"k":10}
//	                  NDJSON stream of {"doc":id,"off":o,"len":l,"score":s}
//	                  (also GET /v1/search?q=pat&regex=1&ranked=1&k=10)
//	GET  /v1/count?q=pat            {"count":n}
//	GET  /v1/extract?id=1&off=0&len=8
//	GET  /varz                      JSON metrics (see Varz)
//	GET  /healthz                   "ok"
//
// Errors are JSON objects {"error":"<code>","message":"…"} with the
// code drawn from the fixed set bad_request, duplicate_id,
// reserved_byte, not_found, backend_unreachable, internal.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"

	"dyncoll"
	"dyncoll/internal/fanout"
	"dyncoll/internal/query"
)

// maxBodyBytes bounds request bodies (batch inserts included) so one
// request cannot balloon resident memory; 64 MiB comfortably holds the
// batch sizes the engine is tuned for.
const maxBodyBytes = 64 << 20

// DocJSON is a document on the wire. Exactly one of Text (convenience
// for UTF-8 payloads) or Data (base64 in JSON, arbitrary bytes) should
// be set; Text wins when both are present.
type DocJSON struct {
	ID   uint64 `json:"id"`
	Text string `json:"text,omitempty"`
	Data []byte `json:"data,omitempty"`
}

// Payload returns the document body the wire form denotes.
func (d DocJSON) Payload() []byte {
	if d.Text != "" {
		return []byte(d.Text)
	}
	return d.Data
}

// InsertRequest is the POST /v1/insert body. The batch is atomic: on
// any error no document is inserted.
type InsertRequest struct {
	Docs []DocJSON `json:"docs"`
}

// InsertResponse reports a successful batch insert.
type InsertResponse struct {
	Inserted int `json:"inserted"`
}

// DeleteRequest is the POST /v1/delete body. Absent IDs are skipped,
// matching Collection.DeleteBatch.
type DeleteRequest struct {
	IDs []uint64 `json:"ids"`
}

// DeleteResponse reports how many documents were actually removed.
type DeleteResponse struct {
	Deleted int `json:"deleted"`
}

// CountResponse is the GET /v1/count reply. Partial is set only by a
// frontend answering in degraded mode (?partial=true with some
// assignment rows unreachable): Count then covers the reachable rows
// and Failed names what was left out — a degraded answer is always
// explicitly labeled, never silent.
type CountResponse struct {
	Count   int      `json:"count"`
	Partial bool     `json:"partial,omitempty"`
	Failed  []string `json:"failed,omitempty"`
}

// ExtractResponse is the GET /v1/extract reply; Data carries the raw
// bytes (base64 in JSON).
type ExtractResponse struct {
	ID   uint64 `json:"id"`
	Off  int    `json:"off"`
	Data []byte `json:"data"`
}

// FindResult is one NDJSON line of a GET /v1/find stream. A line with
// Err set reports a mid-stream failure (frontend fan-out only): by the
// time a backend dies the stream status is already 200, so the error
// travels in-band as the final line.
type FindResult struct {
	Doc uint64 `json:"doc"`
	Off int    `json:"off"`
	Err string `json:"error,omitempty"`
	// Partial marks an error trailer that ends an incomplete stream:
	// every line before it is valid, but at least one assignment row
	// contributed nothing.
	Partial bool `json:"partial,omitempty"`
}

// SearchResult is one NDJSON line of a /v1/search stream: a
// dyncoll.Match on the wire, plus the same in-band error trailer
// convention as FindResult. Streaming plans emit one line per
// occurrence; ranked plans one line per document, best score first.
type SearchResult struct {
	Doc   uint64  `json:"doc"`
	Off   int     `json:"off"`
	Len   int     `json:"len,omitempty"`
	Score float64 `json:"score,omitempty"`
	Err   string  `json:"error,omitempty"`
	// Partial marks an error trailer ending an incomplete stream (see
	// FindResult.Partial).
	Partial bool `json:"partial,omitempty"`
}

// ErrorResponse is the JSON error envelope.
type ErrorResponse struct {
	Error   string `json:"error"`
	Message string `json:"message"`
}

// ReadyzResponse is the GET /readyz reply. A backend is ready when it
// can serve; a frontend is ready when every assignment row has at least
// one live replica and no breaker is open — otherwise it answers 503
// with the unhealthy backends and uncovered rows named, so an operator
// (or a rolling deploy) sees exactly what degraded.
type ReadyzResponse struct {
	Ready     bool     `json:"ready"`
	Unhealthy []string `json:"unhealthy,omitempty"`
	Uncovered []int    `json:"uncovered_rows,omitempty"`
}

// Error codes: stable strings clients can switch on.
const (
	CodeBadRequest   = "bad_request"
	CodeDuplicateID  = "duplicate_id"
	CodeReservedByte = "reserved_byte"
	CodeNotFound     = "not_found"
	CodeUnreachable  = "backend_unreachable"
	CodeInternal     = "internal"
)

// writeJSON writes v as a JSON response with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// writeError writes the JSON error envelope.
func writeError(w http.ResponseWriter, status int, code, message string) {
	writeJSON(w, status, ErrorResponse{Error: code, Message: message})
}

// writeCollErr maps a collection error onto the wire: the sentinel
// picks the stable code and status, the wrapped detail rides in the
// message.
func writeCollErr(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, dyncoll.ErrDuplicateID):
		writeError(w, http.StatusConflict, CodeDuplicateID, err.Error())
	case errors.Is(err, dyncoll.ErrReservedByte):
		writeError(w, http.StatusBadRequest, CodeReservedByte, err.Error())
	case errors.Is(err, dyncoll.ErrNotFound):
		writeError(w, http.StatusNotFound, CodeNotFound, err.Error())
	default:
		writeError(w, http.StatusInternalServerError, CodeInternal, err.Error())
	}
}

// decodeBody decodes a JSON request body into v, enforcing the size cap
// and rejecting trailing garbage.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "malformed JSON body: "+err.Error())
		return false
	}
	if dec.More() {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "trailing data after JSON body")
		return false
	}
	return true
}

// queryPattern extracts the required q parameter.
func queryPattern(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	q := r.URL.Query().Get("q")
	if q == "" {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "missing query parameter q")
		return nil, false
	}
	return []byte(q), true
}

// queryLimit extracts the optional limit parameter (0 = unlimited).
func queryLimit(w http.ResponseWriter, r *http.Request) (int, bool) {
	s := r.URL.Query().Get("limit")
	if s == "" {
		return 0, true
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "limit must be a non-negative integer")
		return 0, false
	}
	return n, true
}

// Coll is the collection surface the backend serves: everything the
// handlers touch, satisfied by both the plain sharded Collection (via
// the PlainColl adapter) and the WAL-backed DurableCollection — the
// durable variant's DeleteBatch can fail, so the interface carries the
// error and the adapter supplies a nil one.
type Coll interface {
	InsertBatch(docs []dyncoll.Document) error
	DeleteBatch(ids []uint64) (int, error)
	FindFunc(pattern []byte, fn func(dyncoll.Occurrence) bool)
	FindLimit(pattern []byte, k int) []dyncoll.Occurrence
	Search(plan dyncoll.SearchPlan, fn func(dyncoll.Match) bool) error
	Count(pattern []byte) int
	Extract(id uint64, off, length int) ([]byte, bool)
	Has(id uint64) bool
	DocCount() int
	Len() int
	SizeBits() int64
	Stats() dyncoll.IndexStats
	ShardSizes() []int
	WaitIdle()
}

// PlainColl adapts *dyncoll.Collection to Coll (its DeleteBatch cannot
// fail, so the adapter adds the nil error).
type PlainColl struct{ *dyncoll.Collection }

// DeleteBatch removes the listed documents; the error is always nil.
func (p PlainColl) DeleteBatch(ids []uint64) (int, error) {
	return p.Collection.DeleteBatch(ids), nil
}

// Backend serves collections over HTTP. Every collection must be
// sharded (WithShards ≥ 1, the concurrency-safe floor): the HTTP server
// runs handlers concurrently and an unsharded collection is not safe
// for concurrent use.
//
// A backend hosts one default collection plus, when range hosting is
// enabled, one lazily-created collection per assignment row it
// replicates (the ?range=N parameter names the row). A row is one of
// the paper's sub-collections; replication places the same row on R
// backends, and keeping rows in separate collections is what lets a
// replica answer for exactly the rows a frontend asks about — a
// backend-level count cannot tell which row a document belongs to, so
// under replication the row must be the addressable unit. Requests
// without ?range= hit the default collection (writes) or the union of
// everything hosted (reads), so direct backend access keeps working.
type Backend struct {
	coll    Coll
	factory func(rng int) (Coll, error)
	mu      sync.RWMutex
	ranges  map[int]Coll
	met     *Metrics
}

// NewBackend wraps a (sharded) collection in the serving layer.
func NewBackend(c Coll) *Backend {
	return &Backend{
		coll:   c,
		ranges: make(map[int]Coll),
		met:    NewMetrics("insert", "delete", "find", "search", "count", "extract"),
	}
}

// EnableRanges turns on range hosting: a write addressed to an unseen
// ?range=N creates its collection via factory. Returns b for chaining.
func (b *Backend) EnableRanges(factory func(rng int) (Coll, error)) *Backend {
	b.factory = factory
	return b
}

// SetRange installs a pre-built collection for one assignment row
// (restore-at-boot path).
func (b *Backend) SetRange(rng int, c Coll) {
	b.mu.Lock()
	b.ranges[rng] = c
	b.mu.Unlock()
}

// Ranges snapshots the hosted row collections (drain path saves them).
func (b *Backend) Ranges() map[int]Coll {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make(map[int]Coll, len(b.ranges))
	for k, v := range b.ranges {
		out[k] = v
	}
	return out
}

// Collection returns the default collection (the drain path saves it).
func (b *Backend) Collection() Coll { return b.coll }

// HasDoc reports whether any hosted collection holds id.
func (b *Backend) HasDoc(id uint64) bool {
	for _, c := range b.readColls(0, false) {
		if c.Has(id) {
			return true
		}
	}
	return false
}

// DocCountAll sums live documents across every hosted collection.
func (b *Backend) DocCountAll() int {
	n := 0
	for _, c := range b.readColls(0, false) {
		n += c.DocCount()
	}
	return n
}

// Metrics returns the backend's request metrics.
func (b *Backend) Metrics() *Metrics { return b.met }

// Handler returns the backend's full route table.
func (b *Backend) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/insert", b.met.Wrap("insert", b.handleInsert))
	mux.HandleFunc("POST /v1/delete", b.met.Wrap("delete", b.handleDelete))
	mux.HandleFunc("GET /v1/find", b.met.Wrap("find", b.handleFind))
	mux.HandleFunc("GET /v1/search", b.met.Wrap("search", b.handleSearch))
	mux.HandleFunc("POST /v1/search", b.met.Wrap("search", b.handleSearch))
	mux.HandleFunc("GET /v1/count", b.met.Wrap("count", b.handleCount))
	mux.HandleFunc("GET /v1/extract", b.met.Wrap("extract", b.handleExtract))
	mux.HandleFunc("GET /varz", b.handleVarz)
	mux.HandleFunc("GET /healthz", handleHealth)
	mux.HandleFunc("GET /readyz", b.handleReadyz)
	return mux
}

func handleHealth(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain")
	io.WriteString(w, "ok\n")
}

// handleReadyz: a backend that can serve requests is ready; readiness
// subtleties live on the frontend, which knows the assignment.
func (b *Backend) handleReadyz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, ReadyzResponse{Ready: true})
}

// queryRange parses the optional range parameter naming one assignment
// row.
func queryRange(w http.ResponseWriter, r *http.Request) (rng int, present, ok bool) {
	s := r.URL.Query().Get("range")
	if s == "" {
		return 0, false, true
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "range must be a non-negative integer")
		return 0, false, false
	}
	return n, true, true
}

// writeColl resolves the collection a write lands in: the named row
// (created on first use) or the default collection.
func (b *Backend) writeColl(rng int, present bool) (Coll, error) {
	if !present {
		return b.coll, nil
	}
	b.mu.RLock()
	c := b.ranges[rng]
	b.mu.RUnlock()
	if c != nil {
		return c, nil
	}
	if b.factory == nil {
		return nil, fmt.Errorf("range routing not enabled on this backend (range %d)", rng)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if c := b.ranges[rng]; c != nil {
		return c, nil
	}
	c, err := b.factory(rng)
	if err != nil {
		return nil, fmt.Errorf("create range %d: %w", rng, err)
	}
	b.ranges[rng] = c
	return c, nil
}

// readColls resolves the collections a read covers: exactly the named
// row (empty if this backend never hosted it — an honest zero, not an
// error), or the default collection plus every hosted row.
func (b *Backend) readColls(rng int, present bool) []Coll {
	b.mu.RLock()
	defer b.mu.RUnlock()
	if present {
		if c := b.ranges[rng]; c != nil {
			return []Coll{c}
		}
		return nil
	}
	out := make([]Coll, 0, 1+len(b.ranges))
	out = append(out, b.coll)
	for _, c := range b.ranges {
		out = append(out, c)
	}
	return out
}

func (b *Backend) handleInsert(w http.ResponseWriter, r *http.Request) {
	rng, present, ok := queryRange(w, r)
	if !ok {
		return
	}
	var req InsertRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if len(req.Docs) == 0 {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "empty docs batch")
		return
	}
	coll, err := b.writeColl(rng, present)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, err.Error())
		return
	}
	docs := make([]dyncoll.Document, len(req.Docs))
	for i, d := range req.Docs {
		docs[i] = dyncoll.Document{ID: d.ID, Data: d.Payload()}
	}
	// InsertBatch is atomic: validation runs under every involved
	// shard's write lock, so on error nothing was inserted.
	if err := coll.InsertBatch(docs); err != nil {
		writeCollErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, InsertResponse{Inserted: len(docs)})
}

func (b *Backend) handleDelete(w http.ResponseWriter, r *http.Request) {
	rng, present, ok := queryRange(w, r)
	if !ok {
		return
	}
	var req DeleteRequest
	if !decodeBody(w, r, &req) {
		return
	}
	// A delete addressed to a row this backend never materialized is an
	// honest zero, not an error — DeleteBatch already skips absent IDs.
	n := 0
	for _, coll := range b.readColls(rng, present) {
		d, err := coll.DeleteBatch(req.IDs)
		if err != nil {
			// Durable backends refuse the op when the WAL cannot make it
			// safe; the in-memory deletion may have happened, but it will
			// be re-lost on restart, so the client must not treat it as
			// done.
			writeCollErr(w, err)
			return
		}
		n += d
	}
	writeJSON(w, http.StatusOK, DeleteResponse{Deleted: n})
}

// handleFind streams matches as NDJSON backed by the collection's lazy
// enumeration: results are written (and periodically flushed) as the
// backward search produces them, and a client disconnect cancels the
// request context, which stops the enumeration at the next match — the
// early-break contract of FindIter carried over the wire.
func (b *Backend) handleFind(w http.ResponseWriter, r *http.Request) {
	rng, present, okR := queryRange(w, r)
	if !okR {
		return
	}
	pattern, ok := queryPattern(w, r)
	if !ok {
		return
	}
	limit, ok := queryLimit(w, r)
	if !ok {
		return
	}
	colls := b.readColls(rng, present)
	w.Header().Set("Content-Type", "application/x-ndjson")
	if limit > 0 {
		// Bounded results go through the FindLimit fast path: the
		// enumeration stops at the limit-th match, and the result is small
		// enough that streaming flushes buy nothing.
		enc := json.NewEncoder(w)
		n := 0
		for _, coll := range colls {
			occs := coll.FindLimit(pattern, limit-n)
			for _, o := range occs {
				if enc.Encode(FindResult{Doc: o.DocID, Off: o.Off}) != nil {
					b.met.AddStreamed("find", n)
					return
				}
				n++
			}
			if n >= limit {
				break
			}
		}
		b.met.AddStreamed("find", n)
		return
	}
	rc := http.NewResponseController(w)
	ctx := r.Context()
	enc := json.NewEncoder(w)
	n := 0
	// One hosted collection is the common case (range-scoped reads) and
	// streams inline; the unscoped union fans out with the same merge
	// contract the in-process shards use.
	fanout.FanOut(len(colls), func(i int, emit func(dyncoll.Occurrence) bool) {
		colls[i].FindFunc(pattern, emit)
	}, func(o dyncoll.Occurrence) bool {
		if ctx.Err() != nil {
			return false
		}
		if enc.Encode(FindResult{Doc: o.DocID, Off: o.Off}) != nil {
			return false
		}
		n++
		if n%fanout.Chunk == 0 {
			if rc.Flush() != nil {
				return false
			}
		}
		return true
	})
	b.met.AddStreamed("find", n)
}

// parseSearchSpec reads a search plan from the request: the JSON body
// on POST (the exact wire form of dyncoll.SearchPlan), query parameters
// q / regex / ranked / k on GET. The spec is validated by compiling it,
// so malformed regexes and negative k reject with 400 here rather than
// surfacing mid-stream.
func parseSearchSpec(w http.ResponseWriter, r *http.Request) (dyncoll.SearchPlan, bool) {
	var spec dyncoll.SearchPlan
	if r.Method == http.MethodPost {
		if !decodeBody(w, r, &spec) {
			return spec, false
		}
	} else {
		q := r.URL.Query()
		spec.Pattern = q.Get("q")
		spec.Regex = boolParam(q.Get("regex"))
		spec.Ranked = boolParam(q.Get("ranked"))
		if s := q.Get("k"); s != "" {
			k, err := strconv.Atoi(s)
			if err != nil || k < 0 {
				writeError(w, http.StatusBadRequest, CodeBadRequest, "k must be a non-negative integer")
				return spec, false
			}
			spec.K = k
		}
	}
	if _, err := query.Compile(spec); err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, err.Error())
		return spec, false
	}
	return spec, true
}

// boolParam interprets a query-string boolean.
func boolParam(s string) bool { return s == "1" || s == "true" }

// handleSearch executes a search plan and streams its matches as
// NDJSON. Streaming plans deliver matches as they are found with the
// find endpoint's flush-and-cancel contract; ranked plans deliver at
// most k documents, best first. The same plan object a library caller
// would compile runs here — the endpoint is the wire level of the
// plan/execute hierarchy.
func (b *Backend) handleSearch(w http.ResponseWriter, r *http.Request) {
	rng, present, okR := queryRange(w, r)
	if !okR {
		return
	}
	spec, ok := parseSearchSpec(w, r)
	if !ok {
		return
	}
	colls := b.readColls(rng, present)
	w.Header().Set("Content-Type", "application/x-ndjson")
	rc := http.NewResponseController(w)
	ctx := r.Context()
	enc := json.NewEncoder(w)
	n := 0
	emitLine := func(m dyncoll.Match) bool {
		if ctx.Err() != nil {
			return false
		}
		if enc.Encode(SearchResult{Doc: m.Doc, Off: m.Off, Len: m.Len, Score: m.Score}) != nil {
			return false
		}
		n++
		if n%fanout.Chunk == 0 {
			if rc.Flush() != nil {
				return false
			}
		}
		return true
	}
	if len(colls) == 1 {
		colls[0].Search(spec, emitLine)
		b.met.AddStreamed("search", n)
		return
	}
	if spec.Ranked {
		// Ranked over the union: gather each collection's top-k (already
		// best-first) and merge, the same plan the frontend runs over
		// backends.
		lists := make([][]query.Match, len(colls))
		fanout.ForEach(len(colls), func(i int) {
			lists[i] = collectMatches(colls[i], spec)
		})
		query.MergeRanked(lists, spec.K, emitLine)
		b.met.AddStreamed("search", n)
		return
	}
	fanout.FanOut(len(colls), func(i int, emit func(dyncoll.Match) bool) {
		colls[i].Search(spec, emit)
	}, emitLine)
	b.met.AddStreamed("search", n)
}

// collectMatches gathers one collection's search results into a slice
// (ranked merge input).
func collectMatches(c Coll, spec dyncoll.SearchPlan) []query.Match {
	var out []query.Match
	c.Search(spec, func(m dyncoll.Match) bool {
		out = append(out, query.Match(m))
		return true
	})
	return out
}

func (b *Backend) handleCount(w http.ResponseWriter, r *http.Request) {
	rng, present, okR := queryRange(w, r)
	if !okR {
		return
	}
	pattern, ok := queryPattern(w, r)
	if !ok {
		return
	}
	colls := b.readColls(rng, present)
	counts := make([]int, len(colls))
	fanout.ForEach(len(colls), func(i int) { counts[i] = colls[i].Count(pattern) })
	total := 0
	for _, c := range counts {
		total += c
	}
	writeJSON(w, http.StatusOK, CountResponse{Count: total})
}

func (b *Backend) handleExtract(w http.ResponseWriter, r *http.Request) {
	rng, present, okR := queryRange(w, r)
	if !okR {
		return
	}
	q := r.URL.Query()
	id, err := strconv.ParseUint(q.Get("id"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "id must be a uint64")
		return
	}
	off, err1 := strconv.Atoi(q.Get("off"))
	length, err2 := strconv.Atoi(q.Get("len"))
	if err1 != nil || err2 != nil || off < 0 || length < 0 {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "off and len must be non-negative integers")
		return
	}
	for _, coll := range b.readColls(rng, present) {
		if data, ok := coll.Extract(id, off, length); ok {
			writeJSON(w, http.StatusOK, ExtractResponse{ID: id, Off: off, Data: data})
			return
		}
	}
	writeError(w, http.StatusNotFound, CodeNotFound,
		fmt.Sprintf("no document %d or range [%d,%d) out of bounds", id, off, off+length))
}

func (b *Backend) handleVarz(w http.ResponseWriter, r *http.Request) {
	lv := NewLadderVarz(b.coll.Stats(), "symbol", b.coll.Len(), b.coll.SizeBits())
	lv.ShardSizes = b.coll.ShardSizes()
	v := Varz{
		Role:          "backend",
		UptimeSeconds: b.met.Uptime().Seconds(),
		Endpoints:     b.met.Snapshot(),
		Docs:          b.DocCountAll(),
		Ladder:        &lv,
		Counters:      b.met.Counters(),
	}
	if rngs := b.Ranges(); len(rngs) > 0 {
		v.RangeDocs = make(map[string]int, len(rngs))
		for rng, c := range rngs {
			v.RangeDocs[strconv.Itoa(rng)] = c.DocCount()
		}
	}
	writeJSON(w, http.StatusOK, v)
}
