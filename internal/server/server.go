// Package server is the networked serving layer over the dynamic
// document collection: a backend exposes one (sharded) Collection over
// HTTP/JSON with streaming NDJSON query results, and a frontend routes
// keyed operations to the backend owning each document while fanning
// un-routable queries out across the whole fleet — the same union-over-
// sub-collections contract the in-process sharding layer implements,
// lifted to processes (a backend is one more shard level; see
// DESIGN.md). Only the standard library is used.
//
// Endpoints (both roles serve the same API):
//
//	POST /v1/insert   {"docs":[{"id":1,"text":"…"} | {"id":2,"data":"<base64>"}]}
//	POST /v1/delete   {"ids":[1,2,3]}
//	GET  /v1/find?q=pat[&limit=n]   NDJSON stream of {"doc":id,"off":o}
//	POST /v1/search   {"q":"pat","regex":true,"ranked":true,"k":10}
//	                  NDJSON stream of {"doc":id,"off":o,"len":l,"score":s}
//	                  (also GET /v1/search?q=pat&regex=1&ranked=1&k=10)
//	GET  /v1/count?q=pat            {"count":n}
//	GET  /v1/extract?id=1&off=0&len=8
//	GET  /varz                      JSON metrics (see Varz)
//	GET  /healthz                   "ok"
//
// Errors are JSON objects {"error":"<code>","message":"…"} with the
// code drawn from the fixed set bad_request, duplicate_id,
// reserved_byte, not_found, backend_unreachable, internal.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"dyncoll"
	"dyncoll/internal/fanout"
	"dyncoll/internal/query"
)

// maxBodyBytes bounds request bodies (batch inserts included) so one
// request cannot balloon resident memory; 64 MiB comfortably holds the
// batch sizes the engine is tuned for.
const maxBodyBytes = 64 << 20

// DocJSON is a document on the wire. Exactly one of Text (convenience
// for UTF-8 payloads) or Data (base64 in JSON, arbitrary bytes) should
// be set; Text wins when both are present.
type DocJSON struct {
	ID   uint64 `json:"id"`
	Text string `json:"text,omitempty"`
	Data []byte `json:"data,omitempty"`
}

// Payload returns the document body the wire form denotes.
func (d DocJSON) Payload() []byte {
	if d.Text != "" {
		return []byte(d.Text)
	}
	return d.Data
}

// InsertRequest is the POST /v1/insert body. The batch is atomic: on
// any error no document is inserted.
type InsertRequest struct {
	Docs []DocJSON `json:"docs"`
}

// InsertResponse reports a successful batch insert.
type InsertResponse struct {
	Inserted int `json:"inserted"`
}

// DeleteRequest is the POST /v1/delete body. Absent IDs are skipped,
// matching Collection.DeleteBatch.
type DeleteRequest struct {
	IDs []uint64 `json:"ids"`
}

// DeleteResponse reports how many documents were actually removed.
type DeleteResponse struct {
	Deleted int `json:"deleted"`
}

// CountResponse is the GET /v1/count reply.
type CountResponse struct {
	Count int `json:"count"`
}

// ExtractResponse is the GET /v1/extract reply; Data carries the raw
// bytes (base64 in JSON).
type ExtractResponse struct {
	ID   uint64 `json:"id"`
	Off  int    `json:"off"`
	Data []byte `json:"data"`
}

// FindResult is one NDJSON line of a GET /v1/find stream. A line with
// Err set reports a mid-stream failure (frontend fan-out only): by the
// time a backend dies the stream status is already 200, so the error
// travels in-band as the final line.
type FindResult struct {
	Doc uint64 `json:"doc"`
	Off int    `json:"off"`
	Err string `json:"error,omitempty"`
}

// SearchResult is one NDJSON line of a /v1/search stream: a
// dyncoll.Match on the wire, plus the same in-band error trailer
// convention as FindResult. Streaming plans emit one line per
// occurrence; ranked plans one line per document, best score first.
type SearchResult struct {
	Doc   uint64  `json:"doc"`
	Off   int     `json:"off"`
	Len   int     `json:"len,omitempty"`
	Score float64 `json:"score,omitempty"`
	Err   string  `json:"error,omitempty"`
}

// ErrorResponse is the JSON error envelope.
type ErrorResponse struct {
	Error   string `json:"error"`
	Message string `json:"message"`
}

// Error codes: stable strings clients can switch on.
const (
	CodeBadRequest   = "bad_request"
	CodeDuplicateID  = "duplicate_id"
	CodeReservedByte = "reserved_byte"
	CodeNotFound     = "not_found"
	CodeUnreachable  = "backend_unreachable"
	CodeInternal     = "internal"
)

// writeJSON writes v as a JSON response with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// writeError writes the JSON error envelope.
func writeError(w http.ResponseWriter, status int, code, message string) {
	writeJSON(w, status, ErrorResponse{Error: code, Message: message})
}

// writeCollErr maps a collection error onto the wire: the sentinel
// picks the stable code and status, the wrapped detail rides in the
// message.
func writeCollErr(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, dyncoll.ErrDuplicateID):
		writeError(w, http.StatusConflict, CodeDuplicateID, err.Error())
	case errors.Is(err, dyncoll.ErrReservedByte):
		writeError(w, http.StatusBadRequest, CodeReservedByte, err.Error())
	case errors.Is(err, dyncoll.ErrNotFound):
		writeError(w, http.StatusNotFound, CodeNotFound, err.Error())
	default:
		writeError(w, http.StatusInternalServerError, CodeInternal, err.Error())
	}
}

// decodeBody decodes a JSON request body into v, enforcing the size cap
// and rejecting trailing garbage.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "malformed JSON body: "+err.Error())
		return false
	}
	if dec.More() {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "trailing data after JSON body")
		return false
	}
	return true
}

// queryPattern extracts the required q parameter.
func queryPattern(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	q := r.URL.Query().Get("q")
	if q == "" {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "missing query parameter q")
		return nil, false
	}
	return []byte(q), true
}

// queryLimit extracts the optional limit parameter (0 = unlimited).
func queryLimit(w http.ResponseWriter, r *http.Request) (int, bool) {
	s := r.URL.Query().Get("limit")
	if s == "" {
		return 0, true
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 0 {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "limit must be a non-negative integer")
		return 0, false
	}
	return n, true
}

// Coll is the collection surface the backend serves: everything the
// handlers touch, satisfied by both the plain sharded Collection (via
// the PlainColl adapter) and the WAL-backed DurableCollection — the
// durable variant's DeleteBatch can fail, so the interface carries the
// error and the adapter supplies a nil one.
type Coll interface {
	InsertBatch(docs []dyncoll.Document) error
	DeleteBatch(ids []uint64) (int, error)
	FindFunc(pattern []byte, fn func(dyncoll.Occurrence) bool)
	FindLimit(pattern []byte, k int) []dyncoll.Occurrence
	Search(plan dyncoll.SearchPlan, fn func(dyncoll.Match) bool) error
	Count(pattern []byte) int
	Extract(id uint64, off, length int) ([]byte, bool)
	Has(id uint64) bool
	DocCount() int
	Len() int
	SizeBits() int64
	Stats() dyncoll.IndexStats
	ShardSizes() []int
	WaitIdle()
}

// PlainColl adapts *dyncoll.Collection to Coll (its DeleteBatch cannot
// fail, so the adapter adds the nil error).
type PlainColl struct{ *dyncoll.Collection }

// DeleteBatch removes the listed documents; the error is always nil.
func (p PlainColl) DeleteBatch(ids []uint64) (int, error) {
	return p.Collection.DeleteBatch(ids), nil
}

// Backend serves one collection over HTTP. The collection must be
// sharded (WithShards ≥ 1, the concurrency-safe floor): the HTTP server
// runs handlers concurrently and an unsharded collection is not safe
// for concurrent use.
type Backend struct {
	coll Coll
	met  *Metrics
}

// NewBackend wraps a (sharded) collection in the serving layer.
func NewBackend(c Coll) *Backend {
	return &Backend{
		coll: c,
		met:  NewMetrics("insert", "delete", "find", "search", "count", "extract"),
	}
}

// Collection returns the served collection (the drain path saves it).
func (b *Backend) Collection() Coll { return b.coll }

// Metrics returns the backend's request metrics.
func (b *Backend) Metrics() *Metrics { return b.met }

// Handler returns the backend's full route table.
func (b *Backend) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/insert", b.met.Wrap("insert", b.handleInsert))
	mux.HandleFunc("POST /v1/delete", b.met.Wrap("delete", b.handleDelete))
	mux.HandleFunc("GET /v1/find", b.met.Wrap("find", b.handleFind))
	mux.HandleFunc("GET /v1/search", b.met.Wrap("search", b.handleSearch))
	mux.HandleFunc("POST /v1/search", b.met.Wrap("search", b.handleSearch))
	mux.HandleFunc("GET /v1/count", b.met.Wrap("count", b.handleCount))
	mux.HandleFunc("GET /v1/extract", b.met.Wrap("extract", b.handleExtract))
	mux.HandleFunc("GET /varz", b.handleVarz)
	mux.HandleFunc("GET /healthz", handleHealth)
	return mux
}

func handleHealth(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain")
	io.WriteString(w, "ok\n")
}

func (b *Backend) handleInsert(w http.ResponseWriter, r *http.Request) {
	var req InsertRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if len(req.Docs) == 0 {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "empty docs batch")
		return
	}
	docs := make([]dyncoll.Document, len(req.Docs))
	for i, d := range req.Docs {
		docs[i] = dyncoll.Document{ID: d.ID, Data: d.Payload()}
	}
	// InsertBatch is atomic: validation runs under every involved
	// shard's write lock, so on error nothing was inserted.
	if err := b.coll.InsertBatch(docs); err != nil {
		writeCollErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, InsertResponse{Inserted: len(docs)})
}

func (b *Backend) handleDelete(w http.ResponseWriter, r *http.Request) {
	var req DeleteRequest
	if !decodeBody(w, r, &req) {
		return
	}
	n, err := b.coll.DeleteBatch(req.IDs)
	if err != nil {
		// Durable backends refuse the op when the WAL cannot make it
		// safe; the in-memory deletion may have happened, but it will be
		// re-lost on restart, so the client must not treat it as done.
		writeCollErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, DeleteResponse{Deleted: n})
}

// handleFind streams matches as NDJSON backed by the collection's lazy
// enumeration: results are written (and periodically flushed) as the
// backward search produces them, and a client disconnect cancels the
// request context, which stops the enumeration at the next match — the
// early-break contract of FindIter carried over the wire.
func (b *Backend) handleFind(w http.ResponseWriter, r *http.Request) {
	pattern, ok := queryPattern(w, r)
	if !ok {
		return
	}
	limit, ok := queryLimit(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	if limit > 0 {
		// Bounded results go through the FindLimit fast path: the
		// enumeration stops at the limit-th match, and the result is small
		// enough that streaming flushes buy nothing.
		occs := b.coll.FindLimit(pattern, limit)
		enc := json.NewEncoder(w)
		for _, o := range occs {
			if enc.Encode(FindResult{Doc: o.DocID, Off: o.Off}) != nil {
				break
			}
		}
		b.met.AddStreamed("find", len(occs))
		return
	}
	rc := http.NewResponseController(w)
	ctx := r.Context()
	enc := json.NewEncoder(w)
	n := 0
	b.coll.FindFunc(pattern, func(o dyncoll.Occurrence) bool {
		if ctx.Err() != nil {
			return false
		}
		if enc.Encode(FindResult{Doc: o.DocID, Off: o.Off}) != nil {
			return false
		}
		n++
		if n%fanout.Chunk == 0 {
			if rc.Flush() != nil {
				return false
			}
		}
		return true
	})
	b.met.AddStreamed("find", n)
}

// parseSearchSpec reads a search plan from the request: the JSON body
// on POST (the exact wire form of dyncoll.SearchPlan), query parameters
// q / regex / ranked / k on GET. The spec is validated by compiling it,
// so malformed regexes and negative k reject with 400 here rather than
// surfacing mid-stream.
func parseSearchSpec(w http.ResponseWriter, r *http.Request) (dyncoll.SearchPlan, bool) {
	var spec dyncoll.SearchPlan
	if r.Method == http.MethodPost {
		if !decodeBody(w, r, &spec) {
			return spec, false
		}
	} else {
		q := r.URL.Query()
		spec.Pattern = q.Get("q")
		spec.Regex = boolParam(q.Get("regex"))
		spec.Ranked = boolParam(q.Get("ranked"))
		if s := q.Get("k"); s != "" {
			k, err := strconv.Atoi(s)
			if err != nil || k < 0 {
				writeError(w, http.StatusBadRequest, CodeBadRequest, "k must be a non-negative integer")
				return spec, false
			}
			spec.K = k
		}
	}
	if _, err := query.Compile(spec); err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, err.Error())
		return spec, false
	}
	return spec, true
}

// boolParam interprets a query-string boolean.
func boolParam(s string) bool { return s == "1" || s == "true" }

// handleSearch executes a search plan and streams its matches as
// NDJSON. Streaming plans deliver matches as they are found with the
// find endpoint's flush-and-cancel contract; ranked plans deliver at
// most k documents, best first. The same plan object a library caller
// would compile runs here — the endpoint is the wire level of the
// plan/execute hierarchy.
func (b *Backend) handleSearch(w http.ResponseWriter, r *http.Request) {
	spec, ok := parseSearchSpec(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	rc := http.NewResponseController(w)
	ctx := r.Context()
	enc := json.NewEncoder(w)
	n := 0
	b.coll.Search(spec, func(m dyncoll.Match) bool {
		if ctx.Err() != nil {
			return false
		}
		if enc.Encode(SearchResult{Doc: m.Doc, Off: m.Off, Len: m.Len, Score: m.Score}) != nil {
			return false
		}
		n++
		if n%fanout.Chunk == 0 {
			if rc.Flush() != nil {
				return false
			}
		}
		return true
	})
	b.met.AddStreamed("search", n)
}

func (b *Backend) handleCount(w http.ResponseWriter, r *http.Request) {
	pattern, ok := queryPattern(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, CountResponse{Count: b.coll.Count(pattern)})
}

func (b *Backend) handleExtract(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	id, err := strconv.ParseUint(q.Get("id"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "id must be a uint64")
		return
	}
	off, err1 := strconv.Atoi(q.Get("off"))
	length, err2 := strconv.Atoi(q.Get("len"))
	if err1 != nil || err2 != nil || off < 0 || length < 0 {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "off and len must be non-negative integers")
		return
	}
	data, ok := b.coll.Extract(id, off, length)
	if !ok {
		writeError(w, http.StatusNotFound, CodeNotFound,
			fmt.Sprintf("no document %d or range [%d,%d) out of bounds", id, off, off+length))
		return
	}
	writeJSON(w, http.StatusOK, ExtractResponse{ID: id, Off: off, Data: data})
}

func (b *Backend) handleVarz(w http.ResponseWriter, r *http.Request) {
	lv := NewLadderVarz(b.coll.Stats(), "symbol", b.coll.Len(), b.coll.SizeBits())
	lv.ShardSizes = b.coll.ShardSizes()
	writeJSON(w, http.StatusOK, Varz{
		Role:          "backend",
		UptimeSeconds: b.met.Uptime().Seconds(),
		Endpoints:     b.met.Snapshot(),
		Docs:          b.coll.DocCount(),
		Ladder:        &lv,
	})
}
