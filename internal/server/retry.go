package server

import (
	"context"
	"errors"
	"net"
	"time"
)

// RetryPolicy tunes idempotent-read retries: up to Attempts rounds with
// capped exponential backoff plus jitter between rounds.
type RetryPolicy struct {
	// Attempts is the total number of attempt rounds (first try
	// included). ≤ 0 selects the default (3).
	Attempts int
	// Base is the backoff before the second round; each further round
	// doubles it. ≤ 0 selects the default (50ms).
	Base time.Duration
	// Max caps the backoff. ≤ 0 selects the default (2s).
	Max time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.Attempts <= 0 {
		p.Attempts = 3
	}
	if p.Base <= 0 {
		p.Base = 50 * time.Millisecond
	}
	if p.Max <= 0 {
		p.Max = 2 * time.Second
	}
	return p
}

// Backoff returns the sleep before attempt round `attempt` (the first
// retry is attempt 1): Base·2^(attempt−1) capped at Max, scaled by a
// jitter factor drawn from rnd (uniform in [0,1)) into [½,1)× so a
// burst of retries against a recovering backend decorrelates instead of
// stampeding. rnd may be nil for the deterministic upper envelope.
func (p RetryPolicy) Backoff(attempt int, rnd func() float64) time.Duration {
	if attempt < 1 {
		attempt = 1
	}
	d := p.Base
	for i := 1; i < attempt && d < p.Max; i++ {
		d *= 2
	}
	if d > p.Max {
		d = p.Max
	}
	if rnd != nil {
		d = d/2 + time.Duration(rnd()*float64(d/2))
	}
	return d
}

// sleepCtx sleeps for d or until the context is done, whichever comes
// first; it reports whether the full sleep completed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// retrySafe classifies a transport error by whether the request could
// have reached the backend. A dial-phase failure (connection refused,
// no route) happened before any byte of the request was sent, so even a
// non-idempotent write may be retried. Anything else — a cut after the
// request went out, a response read error, a deadline — is AMBIGUOUS:
// the backend may have applied the operation, and retrying a
// non-idempotent insert could double-apply or spuriously conflict, so
// the caller must surface the error instead. This classification is the
// ack-safety seam the retry unit tests pin.
func retrySafe(err error) bool {
	var op *net.OpError
	if errors.As(err, &op) {
		return op.Op == "dial"
	}
	return false
}

// shouldRetry decides whether a failed backend call may be re-attempted:
// idempotent operations (reads, deletes) retry on any transport error;
// non-idempotent ones (inserts) only when the failure provably preceded
// the send. Context cancellation from the caller is never retried.
func shouldRetry(ctx context.Context, idempotent bool, err error) bool {
	if ctx.Err() != nil {
		return false
	}
	if idempotent {
		return true
	}
	return retrySafe(err)
}
