package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"dyncoll"
	"dyncoll/internal/fanout"
	"dyncoll/internal/query"
	"dyncoll/internal/shardmap"
)

// Frontend is the stateless query router: every document ID maps to the
// backend owning it through shardmap.BackendFor (a pure function, so
// any number of frontend replicas agree with no coordination), keyed
// operations proxy to that one backend, and un-routable queries fan out
// across the whole fleet merging the per-backend NDJSON streams through
// the same fanout contract the in-process sharding layer uses — with
// early break propagated to backends by cancelling their requests.
type Frontend struct {
	backends []string // normalized base URLs, index = backend number
	client   *http.Client
	met      *Metrics
}

// NewFrontend builds a frontend over the given backend addresses
// (host:port or full http:// URLs). The order is the shard map: the
// same list in the same order must be handed to every frontend replica.
func NewFrontend(backends []string) (*Frontend, error) {
	if len(backends) == 0 {
		return nil, fmt.Errorf("server: frontend needs at least one backend")
	}
	norm := make([]string, len(backends))
	for i, b := range backends {
		b = strings.TrimRight(strings.TrimSpace(b), "/")
		if b == "" {
			return nil, fmt.Errorf("server: empty backend address at position %d", i)
		}
		if !strings.Contains(b, "://") {
			b = "http://" + b
		}
		norm[i] = b
	}
	return &Frontend{
		backends: norm,
		// Connection pooling matters here: every query opens one request
		// per backend, so idle conns per host must cover the fan-out.
		client: &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: 64,
			IdleConnTimeout:     90 * time.Second,
		}},
		met: NewMetrics("insert", "delete", "find", "search", "count", "extract"),
	}, nil
}

// Backends returns the normalized backend base URLs.
func (f *Frontend) Backends() []string { return f.backends }

// Metrics returns the frontend's request metrics.
func (f *Frontend) Metrics() *Metrics { return f.met }

// Handler returns the frontend's route table — the same API surface as
// a backend, so clients need not care which role they talk to.
func (f *Frontend) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/insert", f.met.Wrap("insert", f.handleInsert))
	mux.HandleFunc("POST /v1/delete", f.met.Wrap("delete", f.handleDelete))
	mux.HandleFunc("GET /v1/find", f.met.Wrap("find", f.handleFind))
	mux.HandleFunc("GET /v1/search", f.met.Wrap("search", f.handleSearch))
	mux.HandleFunc("POST /v1/search", f.met.Wrap("search", f.handleSearch))
	mux.HandleFunc("GET /v1/count", f.met.Wrap("count", f.handleCount))
	mux.HandleFunc("GET /v1/extract", f.met.Wrap("extract", f.handleExtract))
	mux.HandleFunc("GET /varz", f.handleVarz)
	mux.HandleFunc("GET /healthz", handleHealth)
	return mux
}

// owner returns the base URL of the backend owning a document ID.
func (f *Frontend) owner(id uint64) string {
	return f.backends[shardmap.BackendFor(id, len(f.backends))]
}

// postJSON sends one JSON request and decodes the reply; a non-2xx
// reply is returned as (status, ErrorResponse).
func (f *Frontend) postJSON(ctx context.Context, url string, body, out any) (int, *ErrorResponse, error) {
	raw, err := json.Marshal(body)
	if err != nil {
		return 0, nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(raw))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := f.client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e ErrorResponse
		if json.NewDecoder(resp.Body).Decode(&e) != nil || e.Error == "" {
			e = ErrorResponse{Error: CodeInternal, Message: fmt.Sprintf("backend returned status %d", resp.StatusCode)}
		}
		return resp.StatusCode, &e, nil
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return 0, nil, err
		}
	}
	return http.StatusOK, nil, nil
}

// backendFault is one backend's failure during a fan-out or split.
type backendFault struct {
	url    string
	status int
	werr   *ErrorResponse
	err    error
}

func (bf *backendFault) message() string {
	if bf.err != nil {
		return fmt.Sprintf("backend %s: %v", bf.url, bf.err)
	}
	return fmt.Sprintf("backend %s: %s", bf.url, bf.werr.Message)
}

// writeFault maps a backend fault onto the frontend's reply: transport
// errors become 502 backend_unreachable; application errors keep their
// backend status and code.
func writeFault(w http.ResponseWriter, bf *backendFault) {
	if bf.err != nil {
		writeError(w, http.StatusBadGateway, CodeUnreachable, bf.message())
		return
	}
	writeError(w, bf.status, bf.werr.Error, bf.message())
}

// handleInsert splits the batch by owning backend and posts the parts
// concurrently. The frontend validates the whole batch first (in-batch
// duplicate IDs, reserved bytes), so the common failure modes reject
// before any backend is touched; a backend-side rejection (e.g. an ID
// already live) is atomic within that backend, but parts already
// applied on other backends stay applied — the reply's message says so.
func (f *Frontend) handleInsert(w http.ResponseWriter, r *http.Request) {
	var req InsertRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if len(req.Docs) == 0 {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "empty docs batch")
		return
	}
	n := len(f.backends)
	parts := make([][]DocJSON, n)
	seen := make(map[uint64]bool, len(req.Docs))
	for _, d := range req.Docs {
		if seen[d.ID] {
			writeError(w, http.StatusConflict, CodeDuplicateID,
				fmt.Sprintf("id %d repeated within the batch", d.ID))
			return
		}
		seen[d.ID] = true
		if bytes.IndexByte(d.Payload(), 0) >= 0 {
			writeError(w, http.StatusBadRequest, CodeReservedByte,
				fmt.Sprintf("document %d contains the reserved byte 0x00", d.ID))
			return
		}
		t := shardmap.BackendFor(d.ID, n)
		parts[t] = append(parts[t], d)
	}
	var involved []int
	for i, part := range parts {
		if part != nil {
			involved = append(involved, i)
		}
	}
	faults := make([]*backendFault, len(involved))
	var inserted atomic.Int64
	fanout.ForEach(len(involved), func(k int) {
		i := involved[k]
		url := f.backends[i] + "/v1/insert"
		var out InsertResponse
		status, werr, err := f.postJSON(r.Context(), url, InsertRequest{Docs: parts[i]}, &out)
		if err != nil || werr != nil {
			faults[k] = &backendFault{url: f.backends[i], status: status, werr: werr, err: err}
			return
		}
		inserted.Add(int64(out.Inserted))
	})
	for _, bf := range faults {
		if bf != nil {
			msg := bf.message()
			if got := inserted.Load(); got > 0 {
				msg = fmt.Sprintf("%s (%d document(s) on other backends were inserted)", msg, got)
			}
			if bf.err != nil {
				writeError(w, http.StatusBadGateway, CodeUnreachable, msg)
			} else {
				writeError(w, bf.status, bf.werr.Error, msg)
			}
			return
		}
	}
	writeJSON(w, http.StatusOK, InsertResponse{Inserted: int(inserted.Load())})
}

// handleDelete splits the IDs by owning backend; deletion is idempotent
// (absent IDs are skipped) so partial application is benign.
func (f *Frontend) handleDelete(w http.ResponseWriter, r *http.Request) {
	var req DeleteRequest
	if !decodeBody(w, r, &req) {
		return
	}
	n := len(f.backends)
	parts := make([][]uint64, n)
	for _, id := range req.IDs {
		t := shardmap.BackendFor(id, n)
		parts[t] = append(parts[t], id)
	}
	var involved []int
	for i, part := range parts {
		if part != nil {
			involved = append(involved, i)
		}
	}
	faults := make([]*backendFault, len(involved))
	var deleted atomic.Int64
	fanout.ForEach(len(involved), func(k int) {
		i := involved[k]
		var out DeleteResponse
		status, werr, err := f.postJSON(r.Context(), f.backends[i]+"/v1/delete", DeleteRequest{IDs: parts[i]}, &out)
		if err != nil || werr != nil {
			faults[k] = &backendFault{url: f.backends[i], status: status, werr: werr, err: err}
			return
		}
		deleted.Add(int64(out.Deleted))
	})
	for _, bf := range faults {
		if bf != nil {
			writeFault(w, bf)
			return
		}
	}
	writeJSON(w, http.StatusOK, DeleteResponse{Deleted: int(deleted.Load())})
}

// handleFind fans the query out to every backend and merges the NDJSON
// streams. Early break propagates in both directions: when this
// frontend's client disconnects (or the merged limit is reached), every
// backend request is cancelled, which each backend observes as a client
// disconnect and stops its enumeration — the in-process early-break
// contract, lifted to processes.
//
// A backend that fails mid-merge cannot change the already-streaming
// 200 status; the failure is reported in-band as a final NDJSON line
// with a non-empty "error" field.
func (f *Frontend) handleFind(w http.ResponseWriter, r *http.Request) {
	pattern, ok := queryPattern(w, r)
	if !ok {
		return
	}
	limit, ok := queryLimit(w, r)
	if !ok {
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	rc := http.NewResponseController(w)
	ctx := r.Context()
	n := 0
	var failures atomic.Int32
	var firstFault atomic.Pointer[backendFault]
	fanout.FanOut(len(f.backends), func(i int, emit func([]byte) bool) {
		// Each backend's limit mirrors the merged limit: no single
		// backend can satisfy more than the whole query needs.
		cctx, cancel := context.WithCancel(ctx)
		defer cancel() // early break → cancel → backend stops enumerating
		url := f.backends[i] + "/v1/find?" + findQuery(pattern, limit)
		req, err := http.NewRequestWithContext(cctx, http.MethodGet, url, nil)
		if err != nil {
			failures.Add(1)
			firstFault.CompareAndSwap(nil, &backendFault{url: f.backends[i], err: err})
			return
		}
		resp, err := f.client.Do(req)
		if err != nil {
			failures.Add(1)
			firstFault.CompareAndSwap(nil, &backendFault{url: f.backends[i], err: err})
			return
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			failures.Add(1)
			firstFault.CompareAndSwap(nil, &backendFault{url: f.backends[i],
				err: fmt.Errorf("status %d", resp.StatusCode)})
			return
		}
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 64<<10), 1<<20)
		for sc.Scan() {
			if len(bytes.TrimSpace(sc.Bytes())) == 0 {
				continue
			}
			// Copy: the scanner reuses its buffer and the fan-out banks
			// lines in chunks before the consumer sees them.
			line := append([]byte(nil), sc.Bytes()...)
			if !emit(line) {
				return
			}
		}
		if err := sc.Err(); err != nil && cctx.Err() == nil {
			failures.Add(1)
			firstFault.CompareAndSwap(nil, &backendFault{url: f.backends[i], err: err})
		}
	}, func(line []byte) bool {
		if ctx.Err() != nil {
			return false
		}
		if _, err := w.Write(line); err != nil {
			return false
		}
		if _, err := w.Write([]byte{'\n'}); err != nil {
			return false
		}
		n++
		if n%fanout.Chunk == 0 {
			if rc.Flush() != nil {
				return false
			}
		}
		return limit == 0 || n < limit
	})
	if bf := firstFault.Load(); bf != nil && ctx.Err() == nil {
		// In-band trailer; with no results streamed yet the status can
		// still change, so prefer a real 502 then.
		if n == 0 {
			writeError(w, http.StatusBadGateway, CodeUnreachable, bf.message())
			return
		}
		json.NewEncoder(w).Encode(FindResult{Err: fmt.Sprintf("%s (%d backend(s) failed)", bf.message(), failures.Load())})
	}
	f.met.AddStreamed("find", n)
}

// handleSearch runs a search plan over the fleet. The spec travels to
// every backend verbatim (wire-level plan serialization: each backend
// compiles and executes the same plan the frontend's client sent), and
// only the merge differs by variant — the union-over-sub-collections
// contract with a fleet as the outermost union.
func (f *Frontend) handleSearch(w http.ResponseWriter, r *http.Request) {
	spec, ok := parseSearchSpec(w, r)
	if !ok {
		return
	}
	if spec.Ranked {
		f.searchRanked(w, r, spec)
		return
	}
	f.searchStream(w, r, spec)
}

// searchBackend posts the plan to one backend and hands every NDJSON
// line to perLine (which returns false to stop). The returned error
// reports transport or status failures; a cancelled context is not an
// error (it is the early break propagating).
func (f *Frontend) searchBackend(ctx context.Context, i int, spec dyncoll.SearchPlan, perLine func([]byte) bool) error {
	raw, err := json.Marshal(spec)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, f.backends[i]+"/v1/search", bytes.NewReader(raw))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := f.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		line := append([]byte(nil), sc.Bytes()...)
		if !perLine(line) {
			return nil
		}
	}
	if err := sc.Err(); err != nil && ctx.Err() == nil {
		return err
	}
	return nil
}

// searchStream merges unranked per-backend streams exactly like
// handleFind: lines relay as they arrive, the plan's k bounds the
// merged stream, and the early break cancels every backend request
// mid-enumeration. Each backend receives the full k — no single
// backend can need more than the whole query.
func (f *Frontend) searchStream(w http.ResponseWriter, r *http.Request, spec dyncoll.SearchPlan) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	rc := http.NewResponseController(w)
	ctx := r.Context()
	n := 0
	var failures atomic.Int32
	var firstFault atomic.Pointer[backendFault]
	fanout.FanOut(len(f.backends), func(i int, emit func([]byte) bool) {
		cctx, cancel := context.WithCancel(ctx)
		defer cancel() // early break → cancel → backend stops enumerating
		if err := f.searchBackend(cctx, i, spec, emit); err != nil {
			failures.Add(1)
			firstFault.CompareAndSwap(nil, &backendFault{url: f.backends[i], err: err})
		}
	}, func(line []byte) bool {
		if ctx.Err() != nil {
			return false
		}
		if _, err := w.Write(line); err != nil {
			return false
		}
		if _, err := w.Write([]byte{'\n'}); err != nil {
			return false
		}
		n++
		if n%fanout.Chunk == 0 {
			if rc.Flush() != nil {
				return false
			}
		}
		return spec.K == 0 || n < spec.K
	})
	if bf := firstFault.Load(); bf != nil && ctx.Err() == nil {
		if n == 0 {
			writeError(w, http.StatusBadGateway, CodeUnreachable, bf.message())
			return
		}
		json.NewEncoder(w).Encode(SearchResult{Err: fmt.Sprintf("%s (%d backend(s) failed)", bf.message(), failures.Load())})
	}
	f.met.AddStreamed("search", n)
}

// searchRanked gathers each backend's exact local top-k list (at most k
// documents each — the fleet transfers O(backends·k) results, never the
// full match set) and merges them into the exact global top-k: scores
// are document-local and documents are backend-exclusive, so the merge
// commutes with the union. Any backend fault fails the query with 502 —
// a top-k list missing one backend's documents is silently wrong, which
// is worse than unavailable.
func (f *Frontend) searchRanked(w http.ResponseWriter, r *http.Request, spec dyncoll.SearchPlan) {
	n := len(f.backends)
	lists := make([][]query.Match, n)
	faults := make([]*backendFault, n)
	fanout.ForEach(n, func(i int) {
		err := f.searchBackend(r.Context(), i, spec, func(line []byte) bool {
			var m query.Match
			if err := json.Unmarshal(line, &m); err != nil {
				faults[i] = &backendFault{url: f.backends[i], err: err}
				return false
			}
			lists[i] = append(lists[i], m)
			return true
		})
		if err != nil && faults[i] == nil {
			faults[i] = &backendFault{url: f.backends[i], err: err}
		}
	})
	for _, bf := range faults {
		if bf != nil {
			writeError(w, http.StatusBadGateway, CodeUnreachable, bf.message())
			return
		}
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	streamed := 0
	query.MergeRanked(lists, spec.K, func(m query.Match) bool {
		if enc.Encode(SearchResult{Doc: m.Doc, Off: m.Off, Len: m.Len, Score: m.Score}) != nil {
			return false
		}
		streamed++
		return true
	})
	f.met.AddStreamed("search", streamed)
}

// findQuery renders the find query string for a backend request.
func findQuery(pattern []byte, limit int) string {
	v := make([]string, 0, 2)
	v = append(v, "q="+urlEscape(pattern))
	if limit > 0 {
		v = append(v, fmt.Sprintf("limit=%d", limit))
	}
	return strings.Join(v, "&")
}

// urlEscape query-escapes a byte pattern.
func urlEscape(b []byte) string {
	return url.QueryEscape(string(b))
}

// handleCount fans out and sums; a single unreachable backend fails the
// whole count (a partial count is indistinguishable from a correct
// one, so it must not be served).
func (f *Frontend) handleCount(w http.ResponseWriter, r *http.Request) {
	pattern, ok := queryPattern(w, r)
	if !ok {
		return
	}
	n := len(f.backends)
	faults := make([]*backendFault, n)
	var total atomic.Int64
	fanout.ForEach(n, func(i int) {
		url := f.backends[i] + "/v1/count?q=" + urlEscape(pattern)
		req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, url, nil)
		if err != nil {
			faults[i] = &backendFault{url: f.backends[i], err: err}
			return
		}
		resp, err := f.client.Do(req)
		if err != nil {
			faults[i] = &backendFault{url: f.backends[i], err: err}
			return
		}
		defer resp.Body.Close()
		var out CountResponse
		if resp.StatusCode != http.StatusOK {
			faults[i] = &backendFault{url: f.backends[i], err: fmt.Errorf("status %d", resp.StatusCode)}
			return
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			faults[i] = &backendFault{url: f.backends[i], err: err}
			return
		}
		total.Add(int64(out.Count))
	})
	for _, bf := range faults {
		if bf != nil {
			writeError(w, http.StatusBadGateway, CodeUnreachable, bf.message())
			return
		}
	}
	writeJSON(w, http.StatusOK, CountResponse{Count: int(total.Load())})
}

// handleExtract routes to the owning backend and relays its reply
// verbatim — status, error envelope and all.
func (f *Frontend) handleExtract(w http.ResponseWriter, r *http.Request) {
	idStr := r.URL.Query().Get("id")
	id, err := strconv.ParseUint(idStr, 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "id must be a uint64")
		return
	}
	url := f.owner(id) + "/v1/extract?" + r.URL.RawQuery
	req, err := http.NewRequestWithContext(r.Context(), http.MethodGet, url, nil)
	if err != nil {
		writeError(w, http.StatusInternalServerError, CodeInternal, err.Error())
		return
	}
	resp, err := f.client.Do(req)
	if err != nil {
		writeError(w, http.StatusBadGateway, CodeUnreachable,
			(&backendFault{url: f.owner(id), err: err}).message())
		return
	}
	defer resp.Body.Close()
	w.Header().Set("Content-Type", resp.Header.Get("Content-Type"))
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

// handleVarz reports the frontend's own endpoint metrics plus a health
// and occupancy summary for each backend (polled live with a short
// timeout; /varz is an operator endpoint, not a hot path).
func (f *Frontend) handleVarz(w http.ResponseWriter, r *http.Request) {
	n := len(f.backends)
	views := make([]BackendVarz, n)
	fanout.ForEach(n, func(i int) {
		views[i] = BackendVarz{URL: f.backends[i]}
		ctx, cancel := context.WithTimeout(r.Context(), 2*time.Second)
		defer cancel()
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, f.backends[i]+"/varz", nil)
		if err != nil {
			views[i].Error = err.Error()
			return
		}
		resp, err := f.client.Do(req)
		if err != nil {
			views[i].Error = err.Error()
			return
		}
		defer resp.Body.Close()
		var v Varz
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			views[i].Error = err.Error()
			return
		}
		views[i].OK = true
		views[i].Docs = v.Docs
		if v.Ladder != nil {
			views[i].Symbols = v.Ladder.Live
		}
	})
	writeJSON(w, http.StatusOK, Varz{
		Role:          "frontend",
		UptimeSeconds: f.met.Uptime().Seconds(),
		Endpoints:     f.met.Snapshot(),
		Backends:      views,
	})
}
