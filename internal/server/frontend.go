package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"dyncoll"
	"dyncoll/internal/fanout"
	"dyncoll/internal/query"
	"dyncoll/internal/shardmap"
)

// Frontend is the stateless query router over a replicated fleet. The
// versioned assignment table maps every document ID to an assignment
// row — one of the paper's sub-collections — and every row to its
// ordered replica set of R backends. Writes go to ALL replicas of the
// owning row (quorum = all), reads to any single live replica per row,
// and un-routable queries fan out one request per ROW (not per
// backend), merging the per-row NDJSON streams through the same fanout
// contract the in-process sharding layer uses. The table is a pure
// function of (key, table), so any number of frontend replicas handed
// the same table agree with no coordination.
//
// Every backend call runs through the call engine (call.go): per-op
// deadline, circuit-breaker gating, idempotent retries with backoff,
// and hedged reads for ranked/count calls.
type Frontend struct {
	backends  []string // normalized base URLs, index = backend number
	asg       shardmap.Assignment
	ranged    bool // false for the trivial 1:1 table: omit ?range=, bytes land in the default collections
	cfg       FrontendConfig
	opTimeout time.Duration
	retry     RetryPolicy
	client    *http.Client
	met       *Metrics
	states    []*backendState
	beLat     Histogram // per backend-call latency; feeds the adaptive hedge delay
}

// FrontendConfig tunes a frontend. The zero value (plus Backends) is a
// production-shaped default: replication 1, 5s per-op deadline, 3
// attempts with 50ms–2s backoff, breakers tripping after 3 consecutive
// failures with a 2s cooldown, adaptive hedging.
type FrontendConfig struct {
	// Backends are the backend addresses (host:port or http:// URLs).
	// The order is the placement domain: every frontend replica must be
	// handed the same list in the same order.
	Backends []string
	// Assignment, when non-nil, is the explicit placement table; its
	// Backends must equal len(Backends). Nil derives the default table
	// NewAssignment(len(Backends), Replication).
	Assignment *shardmap.Assignment
	// Replication is the replica count per assignment row when
	// Assignment is nil; ≤ 1 means unreplicated.
	Replication int
	// OpTimeout is the per-backend-call deadline, and doubles as the
	// stream stall watchdog (progress deadline per NDJSON line). ≤ 0
	// selects 5s.
	OpTimeout time.Duration
	// Retry tunes the retry loop (see RetryPolicy).
	Retry RetryPolicy
	// Breaker tunes the per-backend circuit breakers (see BreakerConfig).
	Breaker BreakerConfig
	// HedgeDelay controls hedged reads on ranked/count calls: 0 (the
	// default) hedges adaptively at the observed p99 backend latency,
	// a positive value hedges after that fixed delay, negative disables
	// hedging.
	HedgeDelay time.Duration
}

// NewFrontend builds an unreplicated frontend with default tuning —
// the placement-compatible convenience constructor.
func NewFrontend(backends []string) (*Frontend, error) {
	return NewFrontendConfig(FrontendConfig{Backends: backends})
}

// NewFrontendConfig builds a frontend from an explicit configuration.
func NewFrontendConfig(cfg FrontendConfig) (*Frontend, error) {
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("server: frontend needs at least one backend")
	}
	norm := make([]string, len(cfg.Backends))
	for i, b := range cfg.Backends {
		b = strings.TrimRight(strings.TrimSpace(b), "/")
		if b == "" {
			return nil, fmt.Errorf("server: empty backend address at position %d", i)
		}
		if !strings.Contains(b, "://") {
			b = "http://" + b
		}
		norm[i] = b
	}
	var asg shardmap.Assignment
	if cfg.Assignment != nil {
		asg = *cfg.Assignment
		if err := asg.Validate(); err != nil {
			return nil, fmt.Errorf("server: %w", err)
		}
		if asg.Backends != len(norm) {
			return nil, fmt.Errorf("server: assignment covers %d backends, fleet has %d", asg.Backends, len(norm))
		}
	} else {
		r := cfg.Replication
		if r < 1 {
			r = 1
		}
		asg = shardmap.NewAssignment(len(norm), r)
	}
	f := &Frontend{
		backends:  norm,
		asg:       asg,
		ranged:    !trivialAssignment(asg),
		cfg:       cfg,
		opTimeout: cfg.OpTimeout,
		retry:     cfg.Retry.withDefaults(),
		// Connection pooling matters here: every query opens one request
		// per row, so idle conns per host must cover the fan-out.
		client: &http.Client{Transport: &http.Transport{
			MaxIdleConnsPerHost: 64,
			IdleConnTimeout:     90 * time.Second,
		}},
		met:    NewMetrics("insert", "delete", "find", "search", "count", "extract"),
		states: make([]*backendState, len(norm)),
	}
	if f.opTimeout <= 0 {
		f.opTimeout = 5 * time.Second
	}
	for i := range f.states {
		f.states[i] = &backendState{breaker: NewBreaker(cfg.Breaker)}
	}
	return f, nil
}

// trivialAssignment reports whether asg is the identity table (one row
// per backend, row i served only by backend i). Requests under it omit
// the ?range= parameter, preserving the unreplicated wire protocol —
// and with it the on-disk layout of existing unreplicated deployments.
func trivialAssignment(asg shardmap.Assignment) bool {
	if asg.Replication != 1 || asg.Rows() != asg.Backends {
		return false
	}
	for i := 0; i < asg.Rows(); i++ {
		rs := asg.Replicas(i)
		if len(rs) != 1 || rs[0] != i {
			return false
		}
	}
	return true
}

// Backends returns the normalized backend base URLs.
func (f *Frontend) Backends() []string { return f.backends }

// Assignment returns the placement table the frontend routes by.
func (f *Frontend) Assignment() shardmap.Assignment { return f.asg }

// Metrics returns the frontend's request metrics.
func (f *Frontend) Metrics() *Metrics { return f.met }

// Handler returns the frontend's route table — the same API surface as
// a backend, so clients need not care which role they talk to.
func (f *Frontend) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/insert", f.met.Wrap("insert", f.handleInsert))
	mux.HandleFunc("POST /v1/delete", f.met.Wrap("delete", f.handleDelete))
	mux.HandleFunc("GET /v1/find", f.met.Wrap("find", f.handleFind))
	mux.HandleFunc("GET /v1/search", f.met.Wrap("search", f.handleSearch))
	mux.HandleFunc("POST /v1/search", f.met.Wrap("search", f.handleSearch))
	mux.HandleFunc("GET /v1/count", f.met.Wrap("count", f.handleCount))
	mux.HandleFunc("GET /v1/extract", f.met.Wrap("extract", f.handleExtract))
	mux.HandleFunc("GET /v1/assignment", f.handleAssignment)
	mux.HandleFunc("GET /varz", f.handleVarz)
	mux.HandleFunc("GET /healthz", handleHealth)
	mux.HandleFunc("GET /readyz", f.handleReadyz)
	return mux
}

// rangeSuffix renders the ?range= fragment for a row-scoped backend
// request; sep is "?" or "&" depending on whether a query string
// already exists. Trivial tables omit it (see trivialAssignment).
func (f *Frontend) rangeSuffix(sep string, row int) string {
	if !f.ranged {
		return ""
	}
	return sep + "range=" + strconv.Itoa(row)
}

// postJSON sends one JSON request and decodes the reply; a non-2xx
// reply is returned as (status, ErrorResponse).
func (f *Frontend) postJSON(ctx context.Context, url string, body, out any) (int, *ErrorResponse, error) {
	raw, err := json.Marshal(body)
	if err != nil {
		return 0, nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(raw))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := f.client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e ErrorResponse
		if json.NewDecoder(resp.Body).Decode(&e) != nil || e.Error == "" {
			e = ErrorResponse{Error: CodeInternal, Message: fmt.Sprintf("backend returned status %d", resp.StatusCode)}
		}
		return resp.StatusCode, &e, nil
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return 0, nil, err
		}
	}
	return http.StatusOK, nil, nil
}

// postJSONErr is postJSON with the application error folded into the
// error return as a *wireError — the shape the call engine classifies.
func (f *Frontend) postJSONErr(ctx context.Context, url string, body, out any) error {
	status, werr, err := f.postJSON(ctx, url, body, out)
	if err != nil {
		return err
	}
	if werr != nil {
		return &wireError{status: status, resp: werr}
	}
	return nil
}

// getJSONErr fetches one JSON reply with the same error folding.
func (f *Frontend) getJSONErr(ctx context.Context, url string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := f.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e ErrorResponse
		if json.NewDecoder(resp.Body).Decode(&e) != nil || e.Error == "" {
			e = ErrorResponse{Error: CodeInternal, Message: fmt.Sprintf("backend returned status %d", resp.StatusCode)}
		}
		return &wireError{status: resp.StatusCode, resp: &e}
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// backendFault is one backend's failure during a fan-out or split.
type backendFault struct {
	url    string
	status int
	werr   *ErrorResponse
	err    error
}

func (bf *backendFault) message() string {
	if bf.err != nil {
		return fmt.Sprintf("backend %s: %v", bf.url, bf.err)
	}
	return fmt.Sprintf("backend %s: %s", bf.url, bf.werr.Message)
}

// writeFault maps a backend fault onto the frontend's reply: transport
// errors become 502 backend_unreachable; application errors keep their
// backend status and code.
func writeFault(w http.ResponseWriter, bf *backendFault) {
	if bf.err != nil {
		writeError(w, http.StatusBadGateway, CodeUnreachable, bf.message())
		return
	}
	writeError(w, bf.status, bf.werr.Error, bf.message())
}

// preferFault picks the fault to report: an application error (it names
// the real cause — a duplicate ID beats "connection refused") over a
// transport error, else the first seen.
func preferFault(cur, next *backendFault) *backendFault {
	if next == nil {
		return cur
	}
	if cur == nil || (cur.werr == nil && next.werr != nil) {
		return next
	}
	return cur
}

// handleInsert splits the batch by owning assignment row, validates the
// whole batch up front (in-batch duplicate IDs, reserved bytes — the
// common failure modes reject before any backend is touched), and
// writes each row's part to ALL of its replicas. A row is acked only
// when every replica applied it; on any failure the reply says exactly
// how many documents were fully acked and how many sit in failed rows —
// partial application is reported, never silent.
func (f *Frontend) handleInsert(w http.ResponseWriter, r *http.Request) {
	var req InsertRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if len(req.Docs) == 0 {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "empty docs batch")
		return
	}
	rows := f.asg.Rows()
	parts := make([][]DocJSON, rows)
	seen := make(map[uint64]bool, len(req.Docs))
	for _, d := range req.Docs {
		if seen[d.ID] {
			writeError(w, http.StatusConflict, CodeDuplicateID,
				fmt.Sprintf("id %d repeated within the batch", d.ID))
			return
		}
		seen[d.ID] = true
		if bytes.IndexByte(d.Payload(), 0) >= 0 {
			writeError(w, http.StatusBadRequest, CodeReservedByte,
				fmt.Sprintf("document %d contains the reserved byte 0x00", d.ID))
			return
		}
		t := f.asg.RowOf(d.ID)
		parts[t] = append(parts[t], d)
	}
	var involved []int
	for i, part := range parts {
		if part != nil {
			involved = append(involved, i)
		}
	}
	type rowResult struct {
		fault  *backendFault
		someOK bool // at least one replica applied: the row is partially written
		docs   int
	}
	results := make([]rowResult, len(involved))
	fanout.ForEach(len(involved), func(k int) {
		row := involved[k]
		outs := f.writeRow(r.Context(), row, false, func(ctx context.Context, b int) (int, error) {
			var out InsertResponse
			url := f.backends[b] + "/v1/insert" + f.rangeSuffix("?", row)
			if err := f.postJSONErr(ctx, url, InsertRequest{Docs: parts[row]}, &out); err != nil {
				return 0, err
			}
			return out.Inserted, nil
		})
		rr := rowResult{docs: len(parts[row])}
		for _, o := range outs {
			if o.fault != nil {
				rr.fault = preferFault(rr.fault, o.fault)
			} else {
				rr.someOK = true
			}
		}
		results[k] = rr
	})
	acked, failed := 0, 0
	partial := false
	var fault *backendFault
	for _, rr := range results {
		if rr.fault == nil {
			acked += rr.docs
			continue
		}
		failed += rr.docs
		if rr.someOK {
			partial = true
		}
		fault = preferFault(fault, rr.fault)
	}
	if fault != nil {
		msg := fault.message()
		if acked > 0 || partial {
			msg = fmt.Sprintf("%s; %d document(s) acked on all replicas, %d in failed row(s)", msg, acked, failed)
			if partial {
				msg += " (some applied to only part of their replica set)"
			}
		}
		if fault.err != nil {
			writeError(w, http.StatusBadGateway, CodeUnreachable, msg)
		} else {
			writeError(w, fault.status, fault.werr.Error, msg)
		}
		return
	}
	writeJSON(w, http.StatusOK, InsertResponse{Inserted: acked})
}

// handleDelete splits the IDs by owning row and deletes from every
// replica. Deletion is idempotent (absent IDs are skipped), so the
// engine may retry any transport failure; the reported count per row is
// the maximum over its replicas (a replica that missed the original
// insert deletes fewer — the max is what left the logical collection).
func (f *Frontend) handleDelete(w http.ResponseWriter, r *http.Request) {
	var req DeleteRequest
	if !decodeBody(w, r, &req) {
		return
	}
	rows := f.asg.Rows()
	parts := make([][]uint64, rows)
	for _, id := range req.IDs {
		t := f.asg.RowOf(id)
		parts[t] = append(parts[t], id)
	}
	var involved []int
	for i, part := range parts {
		if part != nil {
			involved = append(involved, i)
		}
	}
	faults := make([]*backendFault, len(involved))
	var deleted atomic.Int64
	fanout.ForEach(len(involved), func(k int) {
		row := involved[k]
		outs := f.writeRow(r.Context(), row, true, func(ctx context.Context, b int) (int, error) {
			var out DeleteResponse
			url := f.backends[b] + "/v1/delete" + f.rangeSuffix("?", row)
			if err := f.postJSONErr(ctx, url, DeleteRequest{IDs: parts[row]}, &out); err != nil {
				return 0, err
			}
			return out.Deleted, nil
		})
		rowMax := 0
		for _, o := range outs {
			faults[k] = preferFault(faults[k], o.fault)
			if o.fault == nil && o.count > rowMax {
				rowMax = o.count
			}
		}
		if faults[k] == nil {
			deleted.Add(int64(rowMax))
		}
	})
	for _, bf := range faults {
		if bf != nil {
			writeFault(w, bf)
			return
		}
	}
	writeJSON(w, http.StatusOK, DeleteResponse{Deleted: int(deleted.Load())})
}

// handleFind fans the query out one request per assignment row — each
// row's stream served by one live replica, retried on a sibling while
// nothing was emitted — and merges the NDJSON streams. Early break
// propagates in both directions: when this frontend's client
// disconnects (or the merged limit is reached), every row request is
// cancelled, which each backend observes as a client disconnect and
// stops its enumeration — the in-process early-break contract, lifted
// to processes.
//
// A row that fails after its stream started cannot change the
// already-streaming 200 status; the failure is reported in-band as a
// final NDJSON line with "error" set and "partial":true. With nothing
// streamed yet the reply is a real 502 — unless the client opted into
// degraded reads with ?partial=true, in which case whatever the live
// rows produced is served, with the same explicit trailer.
func (f *Frontend) handleFind(w http.ResponseWriter, r *http.Request) {
	pattern, ok := queryPattern(w, r)
	if !ok {
		return
	}
	limit, ok := queryLimit(w, r)
	if !ok {
		return
	}
	partialOK := boolParam(r.URL.Query().Get("partial"))
	w.Header().Set("Content-Type", "application/x-ndjson")
	rc := http.NewResponseController(w)
	ctx := r.Context()
	n := 0
	var failures atomic.Int32
	var firstFault atomic.Pointer[backendFault]
	fanout.FanOut(f.asg.Rows(), func(row int, emit func([]byte) bool) {
		cctx, cancel := context.WithCancel(ctx)
		defer cancel() // early break → cancel → backend stops enumerating
		// Each row's limit mirrors the merged limit: no single row can
		// satisfy more than the whole query needs.
		tail := "/v1/find?" + findQuery(pattern, limit) + f.rangeSuffix("&", row)
		bf := f.streamRow(cctx, row, func(rctx context.Context, base string) (*http.Request, error) {
			return http.NewRequestWithContext(rctx, http.MethodGet, base+tail, nil)
		}, emit)
		if bf != nil {
			failures.Add(1)
			firstFault.CompareAndSwap(nil, bf)
		}
	}, func(line []byte) bool {
		if ctx.Err() != nil {
			return false
		}
		if _, err := w.Write(line); err != nil {
			return false
		}
		if _, err := w.Write([]byte{'\n'}); err != nil {
			return false
		}
		n++
		if n%fanout.Chunk == 0 {
			if rc.Flush() != nil {
				return false
			}
		}
		return limit == 0 || n < limit
	})
	if bf := firstFault.Load(); bf != nil && ctx.Err() == nil {
		// In-band trailer; with no results streamed yet the status can
		// still change, so prefer a real 502 then (unless the client asked
		// for degraded reads).
		if n == 0 && !partialOK {
			writeError(w, http.StatusBadGateway, CodeUnreachable, bf.message())
			return
		}
		json.NewEncoder(w).Encode(FindResult{
			Err:     fmt.Sprintf("%s (%d row(s) failed)", bf.message(), failures.Load()),
			Partial: true,
		})
	}
	f.met.AddStreamed("find", n)
}

// handleSearch runs a search plan over the fleet. The spec travels to
// every row's replica verbatim (wire-level plan serialization: each
// backend compiles and executes the same plan the frontend's client
// sent), and only the merge differs by variant — the union-over-
// sub-collections contract with the fleet as the outermost union.
func (f *Frontend) handleSearch(w http.ResponseWriter, r *http.Request) {
	spec, ok := parseSearchSpec(w, r)
	if !ok {
		return
	}
	if spec.Ranked {
		f.searchRanked(w, r, spec)
		return
	}
	f.searchStream(w, r, spec)
}

// searchStream merges unranked per-row streams exactly like handleFind:
// lines relay as they arrive, the plan's k bounds the merged stream,
// and the early break cancels every row request mid-enumeration.
func (f *Frontend) searchStream(w http.ResponseWriter, r *http.Request, spec dyncoll.SearchPlan) {
	raw, err := json.Marshal(spec)
	if err != nil {
		writeError(w, http.StatusInternalServerError, CodeInternal, err.Error())
		return
	}
	partialOK := boolParam(r.URL.Query().Get("partial"))
	w.Header().Set("Content-Type", "application/x-ndjson")
	rc := http.NewResponseController(w)
	ctx := r.Context()
	n := 0
	var failures atomic.Int32
	var firstFault atomic.Pointer[backendFault]
	fanout.FanOut(f.asg.Rows(), func(row int, emit func([]byte) bool) {
		cctx, cancel := context.WithCancel(ctx)
		defer cancel()
		tail := "/v1/search" + f.rangeSuffix("?", row)
		bf := f.streamRow(cctx, row, func(rctx context.Context, base string) (*http.Request, error) {
			req, err := http.NewRequestWithContext(rctx, http.MethodPost, base+tail, bytes.NewReader(raw))
			if err != nil {
				return nil, err
			}
			req.Header.Set("Content-Type", "application/json")
			return req, nil
		}, emit)
		if bf != nil {
			failures.Add(1)
			firstFault.CompareAndSwap(nil, bf)
		}
	}, func(line []byte) bool {
		if ctx.Err() != nil {
			return false
		}
		if _, err := w.Write(line); err != nil {
			return false
		}
		if _, err := w.Write([]byte{'\n'}); err != nil {
			return false
		}
		n++
		if n%fanout.Chunk == 0 {
			if rc.Flush() != nil {
				return false
			}
		}
		return spec.K == 0 || n < spec.K
	})
	if bf := firstFault.Load(); bf != nil && ctx.Err() == nil {
		if n == 0 && !partialOK {
			writeError(w, http.StatusBadGateway, CodeUnreachable, bf.message())
			return
		}
		json.NewEncoder(w).Encode(SearchResult{
			Err:     fmt.Sprintf("%s (%d row(s) failed)", bf.message(), failures.Load()),
			Partial: true,
		})
	}
	f.met.AddStreamed("search", n)
}

// collectSearch gathers one row's exact local top-k list from backend b
// (bounded: at most k lines travel).
func (f *Frontend) collectSearch(ctx context.Context, b, row int, raw []byte) ([]query.Match, error) {
	url := f.backends[b] + "/v1/search" + f.rangeSuffix("?", row)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(raw))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := f.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d", resp.StatusCode)
	}
	var out []query.Match
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var m query.Match
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// searchRanked gathers each row's exact local top-k list (at most k
// documents each — the fleet transfers O(rows·k) results, never the
// full match set) through the hedged read path and merges them into the
// exact global top-k: scores are document-local and rows are disjoint,
// so the merge commutes with the union. Any row fault fails the query
// with 502 — a top-k list missing one row's documents is silently
// wrong, which is worse than unavailable — unless the client opted into
// ?partial=true, which serves the merge of the live rows with an
// explicit partial trailer.
func (f *Frontend) searchRanked(w http.ResponseWriter, r *http.Request, spec dyncoll.SearchPlan) {
	raw, err := json.Marshal(spec)
	if err != nil {
		writeError(w, http.StatusInternalServerError, CodeInternal, err.Error())
		return
	}
	partialOK := boolParam(r.URL.Query().Get("partial"))
	rows := f.asg.Rows()
	lists := make([][]query.Match, rows)
	faults := make([]*backendFault, rows)
	fanout.ForEach(rows, func(row int) {
		v, bf := rowGet(f, r.Context(), row, true, func(ctx context.Context, b int) ([]query.Match, error) {
			return f.collectSearch(ctx, b, row, raw)
		})
		if bf != nil {
			faults[row] = bf
			return
		}
		lists[row] = v
	})
	nFailed := 0
	var fault *backendFault
	for _, bf := range faults {
		if bf != nil {
			nFailed++
			fault = preferFault(fault, bf)
		}
	}
	if fault != nil && !partialOK {
		writeFault(w, fault)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	streamed := 0
	query.MergeRanked(lists, spec.K, func(m query.Match) bool {
		if enc.Encode(SearchResult{Doc: m.Doc, Off: m.Off, Len: m.Len, Score: m.Score}) != nil {
			return false
		}
		streamed++
		return true
	})
	if fault != nil {
		enc.Encode(SearchResult{
			Err:     fmt.Sprintf("%s (%d row(s) failed)", fault.message(), nFailed),
			Partial: true,
		})
	}
	f.met.AddStreamed("search", streamed)
}

// findQuery renders the find query string for a backend request.
func findQuery(pattern []byte, limit int) string {
	v := make([]string, 0, 2)
	v = append(v, "q="+urlEscape(pattern))
	if limit > 0 {
		v = append(v, fmt.Sprintf("limit=%d", limit))
	}
	return strings.Join(v, "&")
}

// urlEscape query-escapes a byte pattern.
func urlEscape(b []byte) string {
	return url.QueryEscape(string(b))
}

// handleCount asks each row's live replica for its count (hedged) and
// sums. By default a single unreachable row fails the whole count — a
// partial count is indistinguishable from a correct one, so it must not
// be served silently. With ?partial=true the sum over reachable rows is
// served instead, explicitly labeled with what failed.
func (f *Frontend) handleCount(w http.ResponseWriter, r *http.Request) {
	pattern, ok := queryPattern(w, r)
	if !ok {
		return
	}
	partialOK := boolParam(r.URL.Query().Get("partial"))
	rows := f.asg.Rows()
	counts := make([]int, rows)
	faults := make([]*backendFault, rows)
	fanout.ForEach(rows, func(row int) {
		v, bf := rowGet(f, r.Context(), row, true, func(ctx context.Context, b int) (CountResponse, error) {
			var out CountResponse
			url := f.backends[b] + "/v1/count?q=" + urlEscape(pattern) + f.rangeSuffix("&", row)
			err := f.getJSONErr(ctx, url, &out)
			return out, err
		})
		if bf != nil {
			faults[row] = bf
			return
		}
		counts[row] = v.Count
	})
	total := 0
	var failed []string
	var fault *backendFault
	for row, bf := range faults {
		if bf != nil {
			failed = append(failed, fmt.Sprintf("row %d: %s", row, bf.message()))
			fault = preferFault(fault, bf)
			continue
		}
		total += counts[row]
	}
	if fault != nil && !partialOK {
		writeFault(w, fault)
		return
	}
	writeJSON(w, http.StatusOK, CountResponse{Count: total, Partial: fault != nil, Failed: failed})
}

// handleExtract routes to the owning row, reads the reply from any live
// replica through the retry path, and relays it verbatim — status,
// error envelope and all.
func (f *Frontend) handleExtract(w http.ResponseWriter, r *http.Request) {
	idStr := r.URL.Query().Get("id")
	id, err := strconv.ParseUint(idStr, 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeBadRequest, "id must be a uint64")
		return
	}
	row := f.asg.RowOf(id)
	type exReply struct {
		status int
		ctype  string
		body   []byte
	}
	v, bf := rowGet(f, r.Context(), row, false, func(ctx context.Context, b int) (exReply, error) {
		url := f.backends[b] + "/v1/extract?" + r.URL.RawQuery + f.rangeSuffix("&", row)
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
		if err != nil {
			return exReply{}, err
		}
		resp, err := f.client.Do(req)
		if err != nil {
			return exReply{}, err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
		if err != nil {
			return exReply{}, err
		}
		return exReply{status: resp.StatusCode, ctype: resp.Header.Get("Content-Type"), body: body}, nil
	})
	if bf != nil {
		if r.Context().Err() != nil {
			return
		}
		writeFault(w, bf)
		return
	}
	w.Header().Set("Content-Type", v.ctype)
	w.WriteHeader(v.status)
	w.Write(v.body)
}

// handleAssignment serves the placement table verbatim: operators and
// sibling frontends can fetch it to verify every router agrees on
// placement (same version ⇒ same table ⇒ same routing).
func (f *Frontend) handleAssignment(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, f.asg)
}

// handleReadyz reports routing health: ready only when every breaker is
// closed and every assignment row has at least one replica that could
// serve. Degraded answers 503 with the unhealthy backends and uncovered
// rows named — a load balancer drains this frontend while its siblings
// (same table, own breakers) keep serving.
func (f *Frontend) handleReadyz(w http.ResponseWriter, r *http.Request) {
	var unhealthy []string
	for i, st := range f.states {
		if s := st.breaker.State(); s != BreakerClosed {
			unhealthy = append(unhealthy, fmt.Sprintf("%s (breaker %s)", f.backends[i], s))
		}
	}
	var uncovered []int
	for row := 0; row < f.asg.Rows(); row++ {
		live := false
		for _, b := range f.asg.Replicas(row) {
			if f.states[b].breaker.State() != BreakerOpen {
				live = true
				break
			}
		}
		if !live {
			uncovered = append(uncovered, row)
		}
	}
	ready := len(unhealthy) == 0 && len(uncovered) == 0
	status := http.StatusOK
	if !ready {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, ReadyzResponse{Ready: ready, Unhealthy: unhealthy, Uncovered: uncovered})
}

// handleVarz reports the frontend's own endpoint metrics, the fleet
// fault-tolerance counters, and a per-backend view combining the live
// poll (occupancy; short timeout, /varz is an operator endpoint) with
// the routing-side health the frontend maintains itself — breaker
// state, trips, probes, transport failures.
func (f *Frontend) handleVarz(w http.ResponseWriter, r *http.Request) {
	n := len(f.backends)
	views := make([]BackendVarz, n)
	fanout.ForEach(n, func(i int) {
		views[i] = BackendVarz{URL: f.backends[i]}
		ctx, cancel := context.WithTimeout(r.Context(), 2*time.Second)
		defer cancel()
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, f.backends[i]+"/varz", nil)
		if err != nil {
			views[i].Error = err.Error()
			return
		}
		resp, err := f.client.Do(req)
		if err != nil {
			views[i].Error = err.Error()
			return
		}
		defer resp.Body.Close()
		var v Varz
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			views[i].Error = err.Error()
			return
		}
		views[i].OK = true
		views[i].Docs = v.Docs
		if v.Ladder != nil {
			views[i].Symbols = v.Ladder.Live
		}
	})
	for i, st := range f.states {
		views[i].Breaker = st.breaker.State()
		views[i].Trips = st.breaker.Trips()
		views[i].Probes = st.breaker.Probes()
		views[i].Fails = st.fails.Load()
	}
	lat := QuantilesOf(&f.beLat)
	writeJSON(w, http.StatusOK, Varz{
		Role:              "frontend",
		UptimeSeconds:     f.met.Uptime().Seconds(),
		Endpoints:         f.met.Snapshot(),
		Counters:          f.met.Counters(),
		Backends:          views,
		AssignmentVersion: f.asg.Version,
		Replication:       f.asg.Replication,
		BackendLatencyMs:  &lat,
	})
}
