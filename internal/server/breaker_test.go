package server

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/url"
	"testing"
	"time"
)

// fakeClock is an injectable clock for breaker tests: no sleeping, no
// flakiness — the state machine is exercised as pure logic.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newTestBreaker(cfg BreakerConfig) (*Breaker, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	return NewBreaker(cfg).WithNow(clk.now), clk
}

// TestBreakerTripAndRecover walks the canonical lifecycle: closed →
// (N consecutive failures) → open → (cooldown) → half-open probe →
// closed.
func TestBreakerTripAndRecover(t *testing.T) {
	b, clk := newTestBreaker(BreakerConfig{Failures: 3, Cooldown: time.Second})
	if b.State() != BreakerClosed {
		t.Fatalf("initial state %q", b.State())
	}
	for i := 0; i < 3; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker rejected call %d", i)
		}
		b.Failure()
	}
	if b.State() != BreakerOpen {
		t.Fatalf("after 3 failures state %q, want open", b.State())
	}
	if b.Trips() != 1 {
		t.Fatalf("trips = %d, want 1", b.Trips())
	}
	// Open: everything rejected until the cooldown elapses.
	if b.Allow() {
		t.Fatal("open breaker admitted a call before cooldown")
	}
	clk.advance(999 * time.Millisecond)
	if b.Allow() {
		t.Fatal("open breaker admitted a call 1ms early")
	}
	clk.advance(time.Millisecond)
	// Cooldown elapsed: exactly one probe goes through.
	if !b.Allow() {
		t.Fatal("cooled-down breaker rejected the probe")
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("probing state %q, want half-open", b.State())
	}
	if b.Allow() {
		t.Fatal("second caller admitted while probe in flight")
	}
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatalf("after probe success state %q, want closed", b.State())
	}
	if !b.Allow() {
		t.Fatal("recovered breaker rejected a call")
	}
	b.Success()
	if b.Probes() != 1 {
		t.Fatalf("probes = %d, want 1", b.Probes())
	}
}

// TestBreakerHalfOpenFailureRearms: a failed probe re-opens the breaker
// and restarts the full cooldown.
func TestBreakerHalfOpenFailureRearms(t *testing.T) {
	b, clk := newTestBreaker(BreakerConfig{Failures: 2, Cooldown: time.Second})
	b.Allow()
	b.Failure()
	b.Allow()
	b.Failure()
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("probe rejected")
	}
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatalf("after failed probe state %q, want open", b.State())
	}
	if b.Trips() != 2 {
		t.Fatalf("trips = %d, want 2", b.Trips())
	}
	if b.Allow() {
		t.Fatal("re-armed breaker admitted a call without a fresh cooldown")
	}
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("second probe rejected after fresh cooldown")
	}
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatalf("state %q, want closed", b.State())
	}
}

// TestBreakerSuccessResetsStreak: the trip threshold counts CONSECUTIVE
// failures; any success restarts the count.
func TestBreakerSuccessResetsStreak(t *testing.T) {
	b, _ := newTestBreaker(BreakerConfig{Failures: 3, Cooldown: time.Second})
	for round := 0; round < 5; round++ {
		b.Allow()
		b.Failure()
		b.Allow()
		b.Failure()
		b.Allow()
		b.Success()
	}
	if b.State() != BreakerClosed {
		t.Fatalf("state %q after interleaved successes, want closed", b.State())
	}
	if b.Trips() != 0 {
		t.Fatalf("trips = %d, want 0", b.Trips())
	}
}

// TestBreakerCancelReleasesProbe: a cancelled probe neither closes nor
// re-opens the breaker, and frees the probe slot for the next caller —
// otherwise one client disconnect during recovery would wedge the
// breaker half-open forever.
func TestBreakerCancelReleasesProbe(t *testing.T) {
	b, clk := newTestBreaker(BreakerConfig{Failures: 1, Cooldown: time.Second})
	b.Allow()
	b.Failure()
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("probe rejected")
	}
	b.Cancel()
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state %q after cancelled probe, want half-open", b.State())
	}
	if !b.Allow() {
		t.Fatal("probe slot not released by Cancel")
	}
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatalf("state %q, want closed", b.State())
	}
}

// TestBackoffEnvelope pins the deterministic upper envelope (nil rnd):
// Base·2^(n−1) capped at Max.
func TestBackoffEnvelope(t *testing.T) {
	p := RetryPolicy{Attempts: 10, Base: 50 * time.Millisecond, Max: 300 * time.Millisecond}.withDefaults()
	want := []time.Duration{
		50 * time.Millisecond,  // attempt 1
		100 * time.Millisecond, // attempt 2
		200 * time.Millisecond, // attempt 3
		300 * time.Millisecond, // attempt 4, capped
		300 * time.Millisecond, // attempt 5, capped
	}
	for i, w := range want {
		if got := p.Backoff(i+1, nil); got != w {
			t.Fatalf("Backoff(%d) = %v, want %v", i+1, got, w)
		}
	}
	if got := p.Backoff(0, nil); got != 50*time.Millisecond {
		t.Fatalf("Backoff clamps attempt < 1: got %v", got)
	}
}

// TestBackoffJitter: the jittered sleep lands in [½,1)× the envelope.
func TestBackoffJitter(t *testing.T) {
	p := RetryPolicy{Base: 100 * time.Millisecond, Max: time.Second}.withDefaults()
	low := p.Backoff(2, func() float64 { return 0 })
	if low != 100*time.Millisecond {
		t.Fatalf("jitter floor = %v, want 100ms (half of 200ms)", low)
	}
	high := p.Backoff(2, func() float64 { return 0.999 })
	if high < 100*time.Millisecond || high >= 200*time.Millisecond {
		t.Fatalf("jitter ceiling = %v, want in [100ms, 200ms)", high)
	}
}

// TestRetrySafeClassification pins the ack-safety seam: only a
// dial-phase failure proves the request was never sent.
func TestRetrySafeClassification(t *testing.T) {
	dial := &net.OpError{Op: "dial", Err: errors.New("connection refused")}
	read := &net.OpError{Op: "read", Err: errors.New("connection reset by peer")}
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"dial refused", dial, true},
		{"dial wrapped in url.Error", &url.Error{Op: "Post", URL: "http://x", Err: dial}, true},
		{"read reset (ambiguous: request may have been applied)", read, false},
		{"read reset wrapped", &url.Error{Op: "Post", URL: "http://x", Err: read}, false},
		{"deadline (ambiguous)", context.DeadlineExceeded, false},
		{"plain error", errors.New("boom"), false},
		{"deep wrap", fmt.Errorf("outer: %w", &url.Error{Op: "Post", URL: "u", Err: dial}), true},
	}
	for _, c := range cases {
		if got := retrySafe(c.err); got != c.want {
			t.Errorf("%s: retrySafe = %v, want %v", c.name, got, c.want)
		}
	}
}

// TestShouldRetryAckSafety: the non-idempotent insert path must never
// auto-retry an ambiguous failure (connection cut after the request was
// sent) — the backend may have applied it, and a resend would
// double-apply or spuriously conflict.
func TestShouldRetryAckSafety(t *testing.T) {
	dial := &url.Error{Op: "Post", URL: "u", Err: &net.OpError{Op: "dial", Err: errors.New("refused")}}
	cutAfterSend := &url.Error{Op: "Post", URL: "u", Err: &net.OpError{Op: "read", Err: errors.New("reset")}}
	ctx := context.Background()
	if !shouldRetry(ctx, false, dial) {
		t.Error("insert after dial failure must retry: the request provably never left")
	}
	if shouldRetry(ctx, false, cutAfterSend) {
		t.Error("insert after ambiguous cut must NOT retry (ack-safety)")
	}
	if !shouldRetry(ctx, true, cutAfterSend) {
		t.Error("idempotent op may retry any transport failure")
	}
	if !shouldRetry(ctx, true, context.DeadlineExceeded) {
		t.Error("idempotent op may retry a per-op deadline")
	}
	done, cancel := context.WithCancel(ctx)
	cancel()
	if shouldRetry(done, true, dial) {
		t.Error("cancelled caller context must never retry")
	}
}
