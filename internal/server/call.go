package server

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"net/http"
	"sync/atomic"
	"time"

	"dyncoll/internal/fanout"
)

// This file is the frontend's call engine: every frontend→backend
// request goes through here and picks up the fault-tolerance machinery
// — per-op deadlines derived from the request context, breaker-gated
// replica selection, idempotent retries with capped backoff and jitter,
// hedged reads, and the stream stall watchdog. The handlers above it
// only decide WHAT to ask each assignment row; this layer decides WHOM
// to ask and how hard to try.

var (
	errNoLiveReplica = errors.New("no live replica (all breakers open)")
	errBreakerOpen   = errors.New("circuit breaker open")
)

// wireError is an application-level backend reply (non-2xx with a JSON
// envelope): the transport worked and the backend answered, so it never
// trips a breaker and is never retried — retrying a 409 yields a 409.
type wireError struct {
	status int
	resp   *ErrorResponse
}

func (e *wireError) Error() string {
	return fmt.Sprintf("%s (status %d)", e.resp.Message, e.status)
}

// backendState is the frontend's routing-side health record for one
// backend: the breaker that gates traffic to it plus failure totals.
type backendState struct {
	breaker *Breaker
	fails   atomic.Int64 // transport failures, lifetime
}

// pickReplica returns the first replica of row that is not yet tried
// and whose breaker admits a request, or -1. The breaker slot is
// consumed: the caller MUST settle the chosen backend with exactly one
// Success/Failure/Cancel (attemptOne and the stream/write loops do).
func (f *Frontend) pickReplica(row int, tried []bool) int {
	for _, b := range f.asg.Replicas(row) {
		if tried[b] {
			continue
		}
		if f.states[b].breaker.Allow() {
			return b
		}
	}
	return -1
}

// attemptOne performs one already-admitted call against backend b under
// the per-op deadline and settles b's breaker with the outcome.
func attemptOne[T any](f *Frontend, ctx context.Context, b int, do func(ctx context.Context, b int) (T, error)) (T, error) {
	actx, cancel := context.WithTimeout(ctx, f.opTimeout)
	defer cancel()
	start := time.Now()
	v, err := do(actx, b)
	st := f.states[b]
	if err == nil {
		st.breaker.Success()
		f.beLat.Observe(time.Since(start))
		return v, nil
	}
	var we *wireError
	if errors.As(err, &we) {
		// The backend answered; an application error is not a health event.
		st.breaker.Success()
		f.beLat.Observe(time.Since(start))
		return v, err
	}
	if ctx.Err() != nil {
		// The caller gave up (client disconnect, or a hedge already won):
		// the outcome is unknowable and the backend is not at fault.
		st.breaker.Cancel()
		return v, err
	}
	st.breaker.Failure()
	st.fails.Add(1)
	return v, err
}

// rowGet runs one idempotent JSON read against an assignment row: pick
// a live replica, enforce the per-op deadline, retry with backoff
// across replicas (the tried set resets once every replica has been
// visited, so long outages still probe), and optionally hedge a slow
// attempt to a second replica. Returns the value or the last fault.
func rowGet[T any](f *Frontend, ctx context.Context, row int, hedge bool, do func(ctx context.Context, b int) (T, error)) (T, *backendFault) {
	var zero T
	replicas := f.asg.Replicas(row)
	tried := make([]bool, len(f.backends))
	triedCount := 0
	var last *backendFault
	for attempt := 0; attempt < f.retry.Attempts; attempt++ {
		if attempt > 0 {
			f.count("retries")
			if !sleepCtx(ctx, f.retry.Backoff(attempt, rand.Float64)) {
				break
			}
		}
		if triedCount >= len(replicas) {
			for i := range tried {
				tried[i] = false
			}
			triedCount = 0
		}
		b := f.pickReplica(row, tried)
		if b < 0 {
			// Every admissible replica is breaker-open; a later round's
			// backoff may outlast a cooldown, so keep going.
			last = &backendFault{url: fmt.Sprintf("row %d", row), err: errNoLiveReplica}
			continue
		}
		tried[b] = true
		triedCount++
		v, err := hedgedAttempt(f, ctx, row, b, hedge, tried, &triedCount, do)
		if err == nil {
			return v, nil
		}
		var we *wireError
		if errors.As(err, &we) {
			return zero, &backendFault{url: f.backends[b], status: we.status, werr: we.resp}
		}
		last = &backendFault{url: f.backends[b], err: err}
		if ctx.Err() != nil {
			break
		}
	}
	return zero, last
}

// hedgedAttempt runs do against b1 and, if the reply is slower than the
// hedge delay, races a second copy on another live replica — the
// classic tail-latency cut: the duplicate read is idempotent, whichever
// answer arrives first wins, and the loser is cancelled without being
// charged to its backend's breaker.
func hedgedAttempt[T any](f *Frontend, ctx context.Context, row, b1 int, hedge bool, tried []bool, triedCount *int, do func(ctx context.Context, b int) (T, error)) (T, error) {
	var zero T
	delay := time.Duration(-1)
	if hedge {
		delay = f.hedgeDelay()
	}
	if delay < 0 {
		return attemptOne(f, ctx, b1, do)
	}
	type res struct {
		v      T
		err    error
		hedged bool
	}
	actx, cancel := context.WithCancel(ctx)
	defer cancel() // the winner cancels the loser
	ch := make(chan res, 2)
	inflight := 1
	go func() { v, err := attemptOne(f, actx, b1, do); ch <- res{v, err, false} }()
	timer := time.NewTimer(delay)
	defer timer.Stop()
	hedgeC := timer.C
	var firstErr error
	for {
		select {
		case r := <-ch:
			if r.err == nil {
				if r.hedged {
					f.count("hedge_wins")
				}
				return r.v, nil
			}
			if firstErr == nil {
				firstErr = r.err
			}
			inflight--
			if inflight == 0 {
				return zero, firstErr
			}
		case <-hedgeC:
			hedgeC = nil
			if b2 := f.pickReplica(row, tried); b2 >= 0 {
				tried[b2] = true
				*triedCount++
				f.count("hedges")
				inflight++
				go func() { v, err := attemptOne(f, actx, b2, do); ch <- res{v, err, true} }()
			}
		case <-ctx.Done():
			return zero, ctx.Err()
		}
	}
}

// hedgeDelay resolves the hedge trigger: the configured fixed delay, or
// (when configured as 0, the default) the adaptive p99 of observed
// backend-call latency, clamped to [2ms, OpTimeout/2] so cold starts
// and outlier-free histograms still hedge sensibly. Negative disables
// hedging.
func (f *Frontend) hedgeDelay() time.Duration {
	d := f.cfg.HedgeDelay
	if d < 0 {
		return -1
	}
	if d == 0 {
		d = f.beLat.Quantile(0.99)
	}
	if lo := 2 * time.Millisecond; d < lo {
		d = lo
	}
	if hi := f.opTimeout / 2; d > hi {
		d = hi
	}
	return d
}

// streamRow relays one assignment row's NDJSON stream into emit,
// retrying on a fresh replica only while nothing has been emitted — a
// retry after relayed lines would duplicate them, so a mid-stream
// failure surfaces to the caller instead (the in-band trailer's job).
// A nil return with no emitted fault means the row streamed completely.
func (f *Frontend) streamRow(ctx context.Context, row int, newReq func(ctx context.Context, base string) (*http.Request, error), emit func([]byte) bool) *backendFault {
	replicas := f.asg.Replicas(row)
	tried := make([]bool, len(f.backends))
	triedCount := 0
	var last *backendFault
	for attempt := 0; attempt < f.retry.Attempts; attempt++ {
		if ctx.Err() != nil {
			return nil // consumer gone: not a row fault
		}
		if attempt > 0 {
			f.count("retries")
			if !sleepCtx(ctx, f.retry.Backoff(attempt, rand.Float64)) {
				return nil
			}
		}
		if triedCount >= len(replicas) {
			for i := range tried {
				tried[i] = false
			}
			triedCount = 0
		}
		b := f.pickReplica(row, tried)
		if b < 0 {
			last = &backendFault{url: fmt.Sprintf("row %d", row), err: errNoLiveReplica}
			continue
		}
		tried[b] = true
		triedCount++
		emitted := false
		err := f.streamOnce(ctx, b, newReq, func(line []byte) bool {
			emitted = true
			return emit(line)
		})
		st := f.states[b]
		if err == nil {
			st.breaker.Success()
			return nil
		}
		if ctx.Err() != nil {
			st.breaker.Cancel()
			return nil
		}
		st.breaker.Failure()
		st.fails.Add(1)
		last = &backendFault{url: f.backends[b], err: err}
		if emitted {
			return last
		}
	}
	return last
}

// streamOnce streams one backend response line by line under a stall
// watchdog: the per-op timeout applies to PROGRESS, not the whole
// stream, so an arbitrarily long healthy stream flows freely while a
// black-holed connection is detected one deadline after its last line.
func (f *Frontend) streamOnce(ctx context.Context, b int, newReq func(ctx context.Context, base string) (*http.Request, error), perLine func([]byte) bool) error {
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var stalled atomic.Bool
	wd := time.AfterFunc(f.opTimeout, func() { stalled.Store(true); cancel() })
	defer wd.Stop()
	req, err := newReq(cctx, f.backends[b])
	if err != nil {
		return err
	}
	resp, err := f.client.Do(req)
	if err != nil {
		if stalled.Load() {
			return fmt.Errorf("no response in %v: %w", f.opTimeout, err)
		}
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	for sc.Scan() {
		wd.Reset(f.opTimeout)
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		// Copy: the scanner reuses its buffer and the fan-out banks
		// lines in chunks before the consumer sees them.
		line := append([]byte(nil), sc.Bytes()...)
		if !perLine(line) {
			return nil // consumer early break: the stream was healthy
		}
	}
	if err := sc.Err(); err != nil {
		if stalled.Load() {
			return fmt.Errorf("stream stalled > %v", f.opTimeout)
		}
		return err
	}
	return nil
}

// writeOutcome is one replica's result for a row write.
type writeOutcome struct {
	backend int
	count   int
	fault   *backendFault
}

// writeRow applies one write to every replica of an assignment row in
// parallel (quorum = all: a write is acked only when every replica
// applied it, which is what entitles a read to trust any single live
// replica). An open breaker fails that replica in O(1); transport
// failures retry only when shouldRetry says the attempt is safe for
// this operation — a non-idempotent insert whose connection died after
// the request may have been applied, so it is surfaced, never resent.
func (f *Frontend) writeRow(ctx context.Context, row int, idempotent bool, post func(ctx context.Context, b int) (int, error)) []writeOutcome {
	replicas := f.asg.Replicas(row)
	out := make([]writeOutcome, len(replicas))
	fanout.ForEach(len(replicas), func(i int) {
		b := replicas[i]
		out[i] = writeOutcome{backend: b}
		st := f.states[b]
		for attempt := 1; ; attempt++ {
			if !st.breaker.Allow() {
				out[i].fault = &backendFault{url: f.backends[b], err: errBreakerOpen}
				return
			}
			actx, cancel := context.WithTimeout(ctx, f.opTimeout)
			n, err := post(actx, b)
			cancel()
			if err == nil {
				st.breaker.Success()
				out[i].count = n
				return
			}
			var we *wireError
			if errors.As(err, &we) {
				st.breaker.Success()
				out[i].fault = &backendFault{url: f.backends[b], status: we.status, werr: we.resp}
				return
			}
			if ctx.Err() != nil {
				st.breaker.Cancel()
				out[i].fault = &backendFault{url: f.backends[b], err: err}
				return
			}
			st.breaker.Failure()
			st.fails.Add(1)
			out[i].fault = &backendFault{url: f.backends[b], err: err}
			if attempt >= f.retry.Attempts || !shouldRetry(ctx, idempotent, err) {
				return
			}
			f.count("retries")
			if !sleepCtx(ctx, f.retry.Backoff(attempt, rand.Float64)) {
				return
			}
			out[i].fault = nil
		}
	})
	return out
}

// count bumps a fleet-level fault-tolerance counter.
func (f *Frontend) count(name string) { f.met.CounterAdd(name, 1) }
