package server

import (
	"math/bits"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// histBuckets is the number of latency histogram buckets: bucket i
// covers (2^(i-1), 2^i] microseconds, bucket 0 covers ≤ 1µs, and the
// last bucket is open-ended, so the range spans 1µs to ~67s.
const histBuckets = 27

// Histogram is a lock-free exponential latency histogram. Observe is
// safe for concurrent use from request handlers; Quantile estimates
// percentiles by log-linear interpolation within the owning bucket
// (bucket bounds grow ×2, so the estimate is within ~2× and in practice
// much closer).
type Histogram struct {
	counts [histBuckets]atomic.Int64
	total  atomic.Int64
	sum    atomic.Int64 // nanoseconds
	max    atomic.Int64 // nanoseconds
}

func bucketOf(d time.Duration) int {
	us := uint64(d.Microseconds())
	if us <= 1 {
		return 0
	}
	b := bits.Len64(us - 1) // ceil(log2(us))
	if b >= histBuckets {
		return histBuckets - 1
	}
	return b
}

// Observe records one measurement.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.counts[bucketOf(d)].Add(1)
	h.total.Add(1)
	h.sum.Add(d.Nanoseconds())
	for {
		old := h.max.Load()
		if d.Nanoseconds() <= old || h.max.CompareAndSwap(old, d.Nanoseconds()) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.total.Load() }

// Quantile returns the estimated q-quantile (0 < q ≤ 1). With no
// observations it returns 0.
func (h *Histogram) Quantile(q float64) time.Duration {
	total := h.total.Load()
	if total == 0 {
		return 0
	}
	target := int64(q * float64(total))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i := 0; i < histBuckets; i++ {
		c := h.counts[i].Load()
		if c == 0 {
			continue
		}
		if cum+c >= target {
			lo, hi := bucketBounds(i)
			if hi > time.Duration(h.max.Load()) {
				hi = time.Duration(h.max.Load()) // never report past the observed max
			}
			if hi < lo {
				return hi
			}
			frac := float64(target-cum) / float64(c)
			return lo + time.Duration(frac*float64(hi-lo))
		}
		cum += c
	}
	return time.Duration(h.max.Load())
}

// bucketBounds returns bucket i's (lower, upper] bounds.
func bucketBounds(i int) (lo, hi time.Duration) {
	if i == 0 {
		return 0, time.Microsecond
	}
	return time.Duration(1<<uint(i)) * time.Microsecond / 2, time.Duration(1<<uint(i)) * time.Microsecond
}

// ringSize slots of one second each back the short-window QPS estimate.
// 16 slots comfortably cover the 10-second window.
const ringSize = 16

// secRing counts events per wall-clock second in a fixed ring. A slot
// is lazily reset when a hit or read observes it holding a stale
// second. The reset race can drop a handful of counts at second
// boundaries; the window rate is an operator signal, not an invariant.
type secRing struct {
	secs   [ringSize]atomic.Int64
	counts [ringSize]atomic.Int64
}

func (r *secRing) hit(now int64) {
	i := now % ringSize
	old := r.secs[i].Load()
	if old != now && r.secs[i].CompareAndSwap(old, now) {
		r.counts[i].Store(0)
	}
	r.counts[i].Add(1)
}

// rate returns events/second over the trailing window (full seconds
// only, so an in-progress second never deflates the rate).
func (r *secRing) rate(now int64, window int64) float64 {
	var total int64
	for i := 0; i < ringSize; i++ {
		sec := r.secs[i].Load()
		if sec >= now-window && sec < now {
			total += r.counts[i].Load()
		}
	}
	return float64(total) / float64(window)
}

// qpsWindow is the short-window QPS horizon reported by /varz.
const qpsWindow = 10

// endpointMetrics is one endpoint's counters. All fields are atomics;
// request handlers never take a lock to record.
type endpointMetrics struct {
	requests atomic.Int64
	errors   atomic.Int64
	streamed atomic.Int64 // NDJSON lines written (streaming endpoints)
	ring     secRing
	lat      Histogram
}

// Metrics tracks per-endpoint request counters for one server role. The
// endpoint set is fixed at construction so the map is read-only
// afterwards and handlers touch only atomics. Named counters (retries,
// hedges, breaker trips, …) register lazily in a sync.Map; after the
// first increment a counter bump is one atomic add.
type Metrics struct {
	start time.Time
	eps   map[string]*endpointMetrics
	ctr   sync.Map // name → *atomic.Int64
}

// CounterAdd bumps a named monotonic counter, registering it on first
// use.
func (m *Metrics) CounterAdd(name string, delta int64) {
	c, ok := m.ctr.Load(name)
	if !ok {
		c, _ = m.ctr.LoadOrStore(name, new(atomic.Int64))
	}
	c.(*atomic.Int64).Add(delta)
}

// Counter returns a named counter's current value (0 if never bumped).
func (m *Metrics) Counter(name string) int64 {
	if c, ok := m.ctr.Load(name); ok {
		return c.(*atomic.Int64).Load()
	}
	return 0
}

// Counters snapshots every registered counter.
func (m *Metrics) Counters() map[string]int64 {
	out := make(map[string]int64)
	m.ctr.Range(func(k, v any) bool {
		out[k.(string)] = v.(*atomic.Int64).Load()
		return true
	})
	if len(out) == 0 {
		return nil
	}
	return out
}

// NewMetrics creates a metrics registry for the named endpoints.
func NewMetrics(endpoints ...string) *Metrics {
	m := &Metrics{start: time.Now(), eps: make(map[string]*endpointMetrics, len(endpoints))}
	for _, name := range endpoints {
		m.eps[name] = &endpointMetrics{}
	}
	return m
}

// Uptime returns the time since the registry was created.
func (m *Metrics) Uptime() time.Duration { return time.Since(m.start) }

// AddStreamed records n streamed NDJSON lines for an endpoint.
func (m *Metrics) AddStreamed(endpoint string, n int) {
	if ep := m.eps[endpoint]; ep != nil {
		ep.streamed.Add(int64(n))
	}
}

// Streamed returns the NDJSON lines streamed by an endpoint so far.
func (m *Metrics) Streamed(endpoint string) int64 {
	if ep := m.eps[endpoint]; ep != nil {
		return ep.streamed.Load()
	}
	return 0
}

// Requests returns the requests completed by an endpoint so far.
func (m *Metrics) Requests(endpoint string) int64 {
	if ep := m.eps[endpoint]; ep != nil {
		return ep.requests.Load()
	}
	return 0
}

// statusWriter captures the response status for error accounting.
// Unwrap exposes the underlying writer so http.NewResponseController
// (flushing the NDJSON stream) keeps working through the wrapper.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// Wrap instruments a handler: request count, error count (status ≥
// 400), short-window rate, and latency histogram.
func (m *Metrics) Wrap(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	ep := m.eps[endpoint]
	if ep == nil {
		return h
	}
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r)
		ep.requests.Add(1)
		ep.ring.hit(time.Now().Unix())
		if sw.status >= 400 {
			ep.errors.Add(1)
		}
		ep.lat.Observe(time.Since(start))
	}
}

// EndpointVarz is one endpoint's exported metrics snapshot.
type EndpointVarz struct {
	Requests int64 `json:"requests"`
	Errors   int64 `json:"errors"`
	Streamed int64 `json:"streamed,omitempty"`
	// QPS is the lifetime average; QPSWindow the trailing-10s rate.
	QPS       float64   `json:"qps"`
	QPSWindow float64   `json:"qps_10s"`
	LatencyMs Quantiles `json:"latency_ms"`
}

// Quantiles reports latency percentiles in milliseconds.
type Quantiles struct {
	P50 float64 `json:"p50"`
	P95 float64 `json:"p95"`
	P99 float64 `json:"p99"`
	Max float64 `json:"max"`
}

// QuantilesOf snapshots a histogram's percentiles in milliseconds.
func QuantilesOf(h *Histogram) Quantiles {
	ms := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e6 }
	return Quantiles{
		P50: ms(h.Quantile(0.50)),
		P95: ms(h.Quantile(0.95)),
		P99: ms(h.Quantile(0.99)),
		Max: float64(h.max.Load()) / 1e6,
	}
}

// Snapshot exports every endpoint's counters.
func (m *Metrics) Snapshot() map[string]EndpointVarz {
	now := time.Now().Unix()
	up := m.Uptime().Seconds()
	out := make(map[string]EndpointVarz, len(m.eps))
	for name, ep := range m.eps {
		v := EndpointVarz{
			Requests:  ep.requests.Load(),
			Errors:    ep.errors.Load(),
			Streamed:  ep.streamed.Load(),
			QPSWindow: ep.ring.rate(now, qpsWindow),
			LatencyMs: QuantilesOf(&ep.lat),
		}
		if up > 0 {
			v.QPS = float64(v.Requests) / up
		}
		out[name] = v
	}
	return out
}
