package server

import (
	"fmt"
	"io"

	"dyncoll"
)

// Varz is the /varz document: per-endpoint request metrics plus the
// role-specific state — the engine ladder for a backend, the backend
// fleet for a frontend. cmd/dyndoc renders the same LadderVarz as text,
// so the CLI's stats report and the service's metrics cannot drift.
type Varz struct {
	Role          string                  `json:"role"` // "backend" or "frontend"
	UptimeSeconds float64                 `json:"uptime_seconds"`
	Endpoints     map[string]EndpointVarz `json:"endpoints"`
	// Counters are the role's named fault-tolerance counters (retries,
	// hedges, hedge_wins, breaker_trips, …), absent when none ticked.
	Counters map[string]int64 `json:"counters,omitempty"`

	// Backend role. RangeDocs breaks Docs down by hosted assignment row
	// (JSON object keys must be strings, hence the stringified row ids).
	Docs      int            `json:"docs,omitempty"`
	RangeDocs map[string]int `json:"range_docs,omitempty"`
	Ladder    *LadderVarz    `json:"ladder,omitempty"`

	// Frontend role.
	Backends []BackendVarz `json:"backends,omitempty"`
	// AssignmentVersion/Replication describe the placement table the
	// frontend routes by (see /v1/assignment for the full table).
	AssignmentVersion uint64 `json:"assignment_version,omitempty"`
	Replication       int    `json:"replication,omitempty"`
	// BackendLatencyMs is the per-backend-call latency distribution the
	// adaptive hedge delay derives from.
	BackendLatencyMs *Quantiles `json:"backend_latency_ms,omitempty"`
}

// LadderVarz is the engine-level structure report shared by every
// surface that exposes ladder stats: the /varz endpoint serves it as
// JSON and cmd/dyndoc's stats command renders it with WriteText.
type LadderVarz struct {
	// Unit names the structure's weight unit: "symbol" (collections),
	// "pair" (relations), or "edge" (graphs).
	Unit        string  `json:"unit"`
	Live        int     `json:"live"`
	SizeBits    int64   `json:"size_bits"`
	BitsPerUnit float64 `json:"bits_per_unit"`
	// Shards is the shard count (0 when unsharded); ShardSizes is the
	// per-shard live-weight occupancy, when the caller provides it.
	Shards     int   `json:"shards,omitempty"`
	ShardSizes []int `json:"shard_sizes,omitempty"`
	// MappedBytes/HeapBytes split the footprint into snapshot pages
	// served in place (LoadMappedFile) and ordinary heap, so operators
	// can see residency; MappedBytes is zero for never-mapped
	// structures.
	MappedBytes int64 `json:"mapped_bytes,omitempty"`
	HeapBytes   int64 `json:"heap_bytes,omitempty"`
	// Engine counters, straight from dyncoll.IndexStats.
	Tau            int `json:"tau"`
	Rebuilds       int `json:"rebuilds"`
	GlobalRebuilds int `json:"global_rebuilds"`
	PendingBuilds  int `json:"pending_builds"`
	// Levels is the sub-collection ladder, level 0 the uncompressed C0.
	Levels []LevelVarz `json:"levels"`
	// TopSizes lists live weights of the worst-case top collections.
	TopSizes []int `json:"top_sizes,omitempty"`
}

// LevelVarz is one ladder slot's occupancy.
type LevelVarz struct {
	Size int `json:"size"`
	Cap  int `json:"cap"`
}

// BackendVarz is a frontend's view of one backend: the liveness poll
// plus the routing-side health the frontend maintains itself (breaker
// state and failure accounting — what actually gates traffic).
type BackendVarz struct {
	URL     string `json:"url"`
	OK      bool   `json:"ok"`
	Error   string `json:"error,omitempty"`
	Docs    int    `json:"docs,omitempty"`
	Symbols int    `json:"symbols,omitempty"`
	Breaker string `json:"breaker,omitempty"` // closed | open | half-open
	Trips   int64  `json:"breaker_trips,omitempty"`
	Probes  int64  `json:"breaker_probes,omitempty"`
	Fails   int64  `json:"transport_failures,omitempty"`
}

// NewLadderVarz maps the facade's IndexStats onto the shared report.
func NewLadderVarz(st dyncoll.IndexStats, unit string, live int, sizeBits int64) LadderVarz {
	v := LadderVarz{
		Unit:           unit,
		Live:           live,
		SizeBits:       sizeBits,
		BitsPerUnit:    float64(sizeBits) / float64(max(1, live)),
		Shards:         st.Shards,
		MappedBytes:    st.MappedBytes,
		HeapBytes:      st.HeapBytes,
		Tau:            st.Tau,
		Rebuilds:       st.Rebuilds,
		GlobalRebuilds: st.GlobalRebuilds,
		PendingBuilds:  st.PendingBuilds,
		TopSizes:       st.TopSizes,
	}
	for j, sz := range st.LevelSizes {
		v.Levels = append(v.Levels, LevelVarz{Size: sz, Cap: st.LevelCaps[j]})
	}
	return v
}

// WriteText renders the report in cmd/dyndoc's stats format.
func (v *LadderVarz) WriteText(w io.Writer) {
	fmt.Fprintf(w, "%-10s %d\n", v.Unit+"s:", v.Live)
	fmt.Fprintf(w, "%-10s %d bits (%.2f bits/%s)\n", "size:", v.SizeBits, v.BitsPerUnit, v.Unit)
	if v.Shards > 0 {
		fmt.Fprintf(w, "%-10s %d", "shards:", v.Shards)
		if len(v.ShardSizes) > 0 {
			fmt.Fprintf(w, ", occupancy %v", v.ShardSizes)
		}
		fmt.Fprintln(w)
	}
	if v.MappedBytes > 0 {
		fmt.Fprintf(w, "%-10s %d B mapped, %d B heap\n", "residency:", v.MappedBytes, v.HeapBytes)
	}
	fmt.Fprintf(w, "%-10s τ=%d, rebuilds=%d, global=%d, pending builds=%d\n",
		"engine:", v.Tau, v.Rebuilds, v.GlobalRebuilds, v.PendingBuilds)
	fmt.Fprintf(w, "%-10s %d slots (occupancy/capacity, level 0 = uncompressed C0)\n", "ladder:", len(v.Levels))
	for j, lv := range v.Levels {
		fmt.Fprintf(w, "  level %-3d %12d / %d\n", j, lv.Size, lv.Cap)
	}
	if len(v.TopSizes) > 0 {
		fmt.Fprintf(w, "%-10s %d collections, sizes %v\n", "tops:", len(v.TopSizes), v.TopSizes)
	}
}
