package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"dyncoll"
	"dyncoll/internal/faultnet"
)

// The chaos suite drives a replicated fleet through faultnet proxies
// and asserts the three promises the fault-tolerance layer makes:
// zero wrong answers (every successful reply is within provable
// bounds), zero silent partials (degradation is always labeled), and
// bounded recovery (a revived backend rejoins through the half-open
// probe without operator action).

// chaosConfig is the test tuning: short deadlines and cooldowns so a
// full kill→recover cycle fits in a few hundred milliseconds.
func chaosConfig(replication int) FrontendConfig {
	return FrontendConfig{
		Replication: replication,
		OpTimeout:   500 * time.Millisecond,
		Retry:       RetryPolicy{Attempts: 4, Base: 10 * time.Millisecond, Max: 100 * time.Millisecond},
		Breaker:     BreakerConfig{Failures: 3, Cooldown: 300 * time.Millisecond},
		HedgeDelay:  -1, // hedging exercised by its own test
	}
}

// newChaosCluster builds n range-hosting backends, one faultnet proxy
// in front of each, and a frontend (per cfg) routing through the
// proxies — so tests can kill, black-hole, slow, and revive any backend
// at any moment without touching the processes.
func newChaosCluster(t *testing.T, n int, cfg FrontendConfig) (*httptest.Server, *Frontend, []*Backend, []*faultnet.Proxy) {
	t.Helper()
	factory := func(rng int) (Coll, error) {
		c, err := dyncoll.NewCollection(
			dyncoll.WithShards(2),
			dyncoll.WithSyncRebuilds(),
			dyncoll.WithMinCapacity(16),
		)
		if err != nil {
			return nil, err
		}
		return PlainColl{c}, nil
	}
	var backends []*Backend
	var proxies []*faultnet.Proxy
	var addrs []string
	for i := 0; i < n; i++ {
		def, err := factory(-1)
		if err != nil {
			t.Fatal(err)
		}
		b := NewBackend(def).EnableRanges(factory)
		ts := httptest.NewServer(b.Handler())
		t.Cleanup(ts.Close)
		p, err := faultnet.New(strings.TrimPrefix(ts.URL, "http://"))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(p.Close)
		backends = append(backends, b)
		proxies = append(proxies, p)
		addrs = append(addrs, p.Addr())
	}
	cfg.Backends = addrs
	fe, err := NewFrontendConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	fts := httptest.NewServer(fe.Handler())
	t.Cleanup(fts.Close)
	return fts, fe, backends, proxies
}

// kill emulates a SIGKILLed backend at the network level: new
// connections are refused and every established one is reset.
func kill(p *faultnet.Proxy) {
	p.SetMode(faultnet.Refuse)
	p.CutConns()
}

// revive heals the network path (the backend process kept its state).
func revive(p *faultnet.Proxy) { p.SetMode(faultnet.Pass) }

// insertDoc inserts one document through the frontend and reports
// whether it was acked on all replicas.
func insertDoc(t *testing.T, base string, id uint64, text string) bool {
	t.Helper()
	body := fmt.Sprintf(`{"docs":[{"id":%d,"text":%q}]}`, id, text)
	resp, err := http.Post(base+"/v1/insert", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("insert transport: %v", err)
	}
	defer resp.Body.Close()
	var out map[string]any
	json.NewDecoder(resp.Body).Decode(&out)
	return resp.StatusCode == http.StatusOK
}

// findLines reads a full find stream, returning data lines and trailer
// (nil if none).
func findLines(t *testing.T, url string) (lines []FindResult, trailer *FindResult, status int) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("find transport: %v", err)
	}
	defer resp.Body.Close()
	status = resp.StatusCode
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	for sc.Scan() {
		if len(strings.TrimSpace(sc.Text())) == 0 {
			continue
		}
		var fr FindResult
		if err := json.Unmarshal(sc.Bytes(), &fr); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if fr.Err != "" {
			trailer = &fr
			continue
		}
		lines = append(lines, fr)
	}
	return lines, trailer, status
}

// TestChaosKillReviveUnderLoad is the acceptance test: with R=2, one
// backend is killed mid-stream under live mixed load. Reads must answer
// throughout, every successful count must stay within provable bounds
// (zero wrong answers), the frontend must report itself degraded while
// the replica is down, and the revived backend must rejoin through the
// half-open probe — all asserted.
func TestChaosKillReviveUnderLoad(t *testing.T) {
	fts, fe, _, proxies := newChaosCluster(t, 2, chaosConfig(2))

	const seed = 40
	docs := make([]string, 0, seed)
	for i := 1; i <= seed; i++ {
		docs = append(docs, fmt.Sprintf(`{"id":%d,"text":"needle %d"}`, i, i))
	}
	status, _ := postJSON(t, fts.URL+"/v1/insert", `{"docs":[`+strings.Join(docs, ",")+`]}`)
	if status != http.StatusOK {
		t.Fatalf("seed insert: status %d", status)
	}

	// Mixed load: one writer (fresh IDs, never reused — a failed insert's
	// ID is abandoned, so an ambiguous partial write can never collide),
	// one reader asserting the correctness bound on every count.
	var acked, attempted, writeFails atomic.Int64
	var readErr atomic.Pointer[string]
	stop := make(chan struct{})
	writerDone := make(chan struct{})
	readerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		id := uint64(10_000)
		for {
			select {
			case <-stop:
				return
			default:
			}
			id++
			attempted.Add(1)
			if insertDoc(t, fts.URL, id, fmt.Sprintf("needle w%d", id)) {
				acked.Add(1)
			} else {
				writeFails.Add(1)
			}
		}
	}()
	go func() {
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			ackedBefore := acked.Load()
			var out CountResponse
			resp, err := http.Get(fts.URL + "/v1/count?q=needle")
			if err != nil {
				msg := fmt.Sprintf("count transport error during chaos: %v", err)
				readErr.CompareAndSwap(nil, &msg)
				return
			}
			code := resp.StatusCode
			json.NewDecoder(resp.Body).Decode(&out)
			resp.Body.Close()
			attemptedAfter := attempted.Load()
			if code != http.StatusOK {
				msg := fmt.Sprintf("count returned status %d during chaos (reads must answer throughout)", code)
				readErr.CompareAndSwap(nil, &msg)
				return
			}
			if out.Partial {
				msg := "count reported partial without ?partial=true (silent degradation)"
				readErr.CompareAndSwap(nil, &msg)
				return
			}
			// Zero wrong answers: acked writes are on every replica, so any
			// replica's answer includes them; nothing beyond the attempted
			// set can exist.
			if int64(out.Count) < seed+ackedBefore || int64(out.Count) > seed+attemptedAfter {
				msg := fmt.Sprintf("count %d outside provable bounds [%d, %d]",
					out.Count, seed+ackedBefore, seed+attemptedAfter)
				readErr.CompareAndSwap(nil, &msg)
				return
			}
		}
	}()

	time.Sleep(150 * time.Millisecond) // healthy load
	kill(proxies[0])

	// Degraded: /readyz must flip to 503 naming the dead backend once its
	// breaker trips.
	deadline := time.Now().Add(3 * time.Second)
	degraded := false
	for time.Now().Before(deadline) {
		var rz ReadyzResponse
		code := getJSON(t, fts.URL+"/readyz", &rz)
		if code == http.StatusServiceUnavailable && !rz.Ready && len(rz.Unhealthy) > 0 {
			degraded = true
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !degraded {
		t.Error("frontend never reported 503 readyz while a replica was dead")
	}

	time.Sleep(300 * time.Millisecond) // sustained outage under load
	revive(proxies[0])

	// Recovery: the breaker must walk open → half-open probe → closed on
	// live traffic alone, and /readyz must return to 200.
	recovered := false
	deadline = time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		var rz ReadyzResponse
		if code := getJSON(t, fts.URL+"/readyz", &rz); code == http.StatusOK && rz.Ready {
			recovered = true
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if !recovered {
		t.Error("frontend never recovered to ready after revive")
	}
	time.Sleep(100 * time.Millisecond) // post-recovery load
	close(stop)
	<-writerDone
	<-readerDone
	if msg := readErr.Load(); msg != nil {
		t.Fatal(*msg)
	}
	if writeFails.Load() == 0 {
		t.Error("no write ever failed: the kill did not bite (test is vacuous)")
	}
	if acked.Load() == 0 {
		t.Error("no write ever succeeded")
	}

	// Final exactness: count and find must agree with each other and sit
	// within the write bounds; the stream must be complete (no trailer).
	var out CountResponse
	if code := getJSON(t, fts.URL+"/v1/count?q=needle", &out); code != http.StatusOK {
		t.Fatalf("final count: status %d", code)
	}
	if int64(out.Count) < seed+acked.Load() || int64(out.Count) > seed+attempted.Load() {
		t.Errorf("final count %d outside [%d, %d]", out.Count, seed+acked.Load(), seed+attempted.Load())
	}
	lines, trailer, _ := findLines(t, fts.URL+"/v1/find?q=needle")
	if trailer != nil {
		t.Errorf("find after recovery still partial: %s", trailer.Err)
	}
	if len(lines) != out.Count {
		t.Errorf("find streamed %d lines, count says %d", len(lines), out.Count)
	}
	seen := make(map[uint64]bool, len(lines))
	for _, l := range lines {
		if seen[l.Doc] {
			t.Fatalf("document %d appeared twice in the stream (retry duplicated results)", l.Doc)
		}
		seen[l.Doc] = true
	}

	// The breaker's journey is visible in /varz: at least one trip, at
	// least one admitted probe, and a closed final state.
	var vz Varz
	getJSON(t, fts.URL+"/varz", &vz)
	b0 := vz.Backends[0]
	if b0.Trips == 0 {
		t.Error("breaker for the killed backend never tripped")
	}
	if b0.Probes == 0 {
		t.Error("breaker never admitted a half-open probe")
	}
	if b0.Breaker != BreakerClosed {
		t.Errorf("breaker state %q after recovery, want closed", b0.Breaker)
	}
	if fe.Metrics().Counter("retries") == 0 {
		t.Error("no retry was ever recorded under chaos")
	}
}

// TestChaosMidStreamCut: cutting a backend's connections while a find
// stream is in flight must yield either a complete result or an
// explicitly partial one (error trailer with partial:true) — never a
// silently truncated stream, never duplicates. The black-hole leg then
// proves the stall watchdog: with one replica wedged BEFORE the stream
// starts, the row retries onto its sibling and delivers complete
// results.
func TestChaosMidStreamCut(t *testing.T) {
	fts, _, _, proxies := newChaosCluster(t, 2, chaosConfig(2))

	const n = 300
	var docs []string
	for i := 1; i <= n; i++ {
		docs = append(docs, fmt.Sprintf(`{"id":%d,"text":"pin %d"}`, i, i))
	}
	if status, _ := postJSON(t, fts.URL+"/v1/insert", `{"docs":[`+strings.Join(docs, ",")+`]}`); status != http.StatusOK {
		t.Fatalf("seed insert: status %d", status)
	}

	// Leg 1: cut one backend as soon as the stream starts flowing.
	resp, err := http.Get(fts.URL + "/v1/find?q=pin")
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	var lines []FindResult
	var trailer *FindResult
	cutDone := false
	for sc.Scan() {
		if len(strings.TrimSpace(sc.Text())) == 0 {
			continue
		}
		var fr FindResult
		if err := json.Unmarshal(sc.Bytes(), &fr); err != nil {
			t.Fatalf("bad line %q: %v", sc.Text(), err)
		}
		if fr.Err != "" {
			trailer = &fr
			continue
		}
		lines = append(lines, fr)
		if !cutDone {
			proxies[0].CutConns()
			cutDone = true
		}
	}
	resp.Body.Close()
	seen := make(map[uint64]bool, len(lines))
	for _, l := range lines {
		if seen[l.Doc] {
			t.Fatalf("document %d duplicated after mid-stream cut", l.Doc)
		}
		seen[l.Doc] = true
	}
	if trailer == nil && len(lines) != n {
		t.Fatalf("silent partial: %d/%d lines and no error trailer", len(lines), n)
	}
	if trailer != nil && !trailer.Partial {
		t.Fatalf("error trailer not marked partial: %+v", trailer)
	}

	// Leg 2: black-hole one replica before the stream starts. Nothing has
	// been emitted for its rows, so the stall watchdog fires and the rows
	// retry onto the sibling replica: complete results, no trailer.
	proxies[0].SetMode(faultnet.Blackhole)
	proxies[0].CutConns()
	start := time.Now()
	lines2, trailer2, _ := findLines(t, fts.URL+"/v1/find?q=pin")
	if trailer2 != nil {
		t.Fatalf("black-holed replica leaked a partial stream: %s", trailer2.Err)
	}
	if len(lines2) != n {
		t.Fatalf("got %d/%d lines with a black-holed replica", len(lines2), n)
	}
	if elapsed := time.Since(start); elapsed < 400*time.Millisecond {
		t.Logf("note: stream completed in %v (primary pick may have avoided the black hole)", elapsed)
	}
}

// TestChaosLatencyHedge: with one replica answering slowly, the hedged
// read path must race a duplicate to the sibling and win — the
// tail-latency cut, observable in the hedge counters.
func TestChaosLatencyHedge(t *testing.T) {
	cfg := chaosConfig(2)
	cfg.HedgeDelay = 50 * time.Millisecond
	fts, fe, _, proxies := newChaosCluster(t, 2, cfg)

	var docs []string
	for i := 1; i <= 50; i++ {
		docs = append(docs, fmt.Sprintf(`{"id":%d,"text":"slowpoke %d"}`, i, i))
	}
	if status, _ := postJSON(t, fts.URL+"/v1/insert", `{"docs":[`+strings.Join(docs, ",")+`]}`); status != http.StatusOK {
		t.Fatalf("seed insert: status %d", status)
	}

	// Every NEW connection to backend 0 stalls 300ms per direction —
	// far past the 50ms hedge delay. Cut the warm pool so the next count
	// must dial fresh.
	proxies[0].SetLatency(300 * time.Millisecond)
	proxies[0].CutConns()

	for i := 0; i < 3 && fe.Metrics().Counter("hedge_wins") == 0; i++ {
		var out CountResponse
		if code := getJSON(t, fts.URL+"/v1/count?q=slowpoke", &out); code != http.StatusOK {
			t.Fatalf("count under latency: status %d", code)
		}
		if out.Count != 50 {
			t.Fatalf("count under latency = %d, want 50 (hedging must not change answers)", out.Count)
		}
		proxies[0].CutConns() // force fresh (slow) connections again
	}
	if fe.Metrics().Counter("hedges") == 0 {
		t.Error("no hedge was ever launched against a slow replica")
	}
	if fe.Metrics().Counter("hedge_wins") == 0 {
		t.Error("no hedge ever won against a 300ms latency spike")
	}
}

// TestChaosPartialMode: with R=1 (no replica to hide behind) and one
// backend dead, the default read path must refuse (502) rather than
// serve a silently wrong answer, and ?partial=true must serve the
// explicit degraded answer.
func TestChaosPartialMode(t *testing.T) {
	fts, _, backends, proxies := newChaosCluster(t, 2, chaosConfig(1))

	var docs []string
	for i := 1; i <= 60; i++ {
		docs = append(docs, fmt.Sprintf(`{"id":%d,"text":"part %d"}`, i, i))
	}
	if status, _ := postJSON(t, fts.URL+"/v1/insert", `{"docs":[`+strings.Join(docs, ",")+`]}`); status != http.StatusOK {
		t.Fatalf("seed insert: status %d", status)
	}
	survivors := backends[1].DocCountAll()
	if survivors == 0 || survivors == 60 {
		t.Fatalf("placement degenerate: backend 1 holds %d/60 docs", survivors)
	}

	kill(proxies[0])

	// Default: refuse. A partial count is indistinguishable from a
	// correct one, so it must not be served silently.
	var out CountResponse
	if code := getJSON(t, fts.URL+"/v1/count?q=part", &out); code != http.StatusBadGateway {
		t.Fatalf("count with a dead row: status %d, want 502", code)
	}

	// Opt-in: the degraded answer, explicitly labeled.
	if code := getJSON(t, fts.URL+"/v1/count?q=part&partial=true", &out); code != http.StatusOK {
		t.Fatalf("partial count: status %d", code)
	}
	if !out.Partial || len(out.Failed) == 0 {
		t.Fatalf("partial count not labeled: %+v", out)
	}
	if out.Count != survivors {
		t.Errorf("partial count = %d, want the %d surviving docs", out.Count, survivors)
	}

	// Streams: default find with results still flowing ends in an
	// explicit partial trailer; with ?partial=true the same holds with a
	// guaranteed 200.
	lines, trailer, _ := findLines(t, fts.URL+"/v1/find?q=part&partial=true")
	if len(lines) != survivors {
		t.Errorf("partial find streamed %d lines, want %d", len(lines), survivors)
	}
	if trailer == nil || !trailer.Partial {
		t.Fatalf("partial find missing its explicit trailer (lines=%d)", len(lines))
	}

	// Ranked search: default fails whole (a top-k missing a row is
	// silently wrong); partial serves the live rows plus trailer.
	resp, err := http.Get(fts.URL + "/v1/search?q=part&ranked=1&k=10")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("ranked search with dead row: status %d, want 502", resp.StatusCode)
	}
	resp, err = http.Get(fts.URL + "/v1/search?q=part&ranked=1&k=10&partial=true")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("partial ranked search: status %d", resp.StatusCode)
	}
	scp := bufio.NewScanner(resp.Body)
	got, partialTrailer := 0, false
	for scp.Scan() {
		if len(strings.TrimSpace(scp.Text())) == 0 {
			continue
		}
		var sr SearchResult
		if err := json.Unmarshal(scp.Bytes(), &sr); err != nil {
			t.Fatalf("bad search line: %v", err)
		}
		if sr.Err != "" {
			partialTrailer = sr.Partial
			continue
		}
		got++
	}
	if got == 0 || !partialTrailer {
		t.Fatalf("partial ranked search: %d results, explicit trailer=%v", got, partialTrailer)
	}
}

// TestChaosInsertAckSafety is the socket-level ack-safety proof: under
// an identical ambiguous fault (request sent, no reply — a black hole),
// the non-idempotent insert is attempted exactly once while the
// idempotent count retries. The classification is not theoretical; it
// is visible in the proxy's accept counter.
func TestChaosInsertAckSafety(t *testing.T) {
	cfg := chaosConfig(1)
	cfg.OpTimeout = 200 * time.Millisecond
	fts, _, _, proxies := newChaosCluster(t, 1, cfg)

	proxies[0].SetMode(faultnet.Blackhole)

	status, _ := postJSON(t, fts.URL+"/v1/insert", `{"docs":[{"id":1,"text":"ambiguous"}]}`)
	if status != http.StatusBadGateway {
		t.Fatalf("insert into black hole: status %d, want 502", status)
	}
	afterInsert := proxies[0].Accepted()
	if afterInsert != 1 {
		t.Fatalf("insert attempted %d connections, want exactly 1: an ambiguous failure must never be resent", afterInsert)
	}

	var out CountResponse
	if code := getJSON(t, fts.URL+"/v1/count?q=x", &out); code != http.StatusBadGateway {
		t.Fatalf("count into black hole: status %d, want 502", code)
	}
	if countConns := proxies[0].Accepted() - afterInsert; countConns < 2 {
		t.Fatalf("idempotent count attempted %d connections, want ≥ 2 (it is safe to retry)", countConns)
	}
}
