package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dyncoll/internal/shardmap"
)

// newCluster starts nBackends backend servers and a frontend routing
// over them, returning the frontend's test server plus the backends for
// direct inspection.
func newCluster(t *testing.T, nBackends int) (*httptest.Server, []*Backend, []*httptest.Server) {
	t.Helper()
	var backends []*Backend
	var servers []*httptest.Server
	var addrs []string
	for i := 0; i < nBackends; i++ {
		b, ts := newTestBackend(t)
		backends = append(backends, b)
		servers = append(servers, ts)
		addrs = append(addrs, ts.URL)
	}
	fe, err := NewFrontend(addrs)
	if err != nil {
		t.Fatal(err)
	}
	fts := httptest.NewServer(fe.Handler())
	t.Cleanup(fts.Close)
	return fts, backends, servers
}

// TestFrontendRouting: documents inserted through the frontend must land
// on exactly the backend shardmap.BackendFor assigns, and extract must
// route back to that owner.
func TestFrontendRouting(t *testing.T) {
	fts, backends, _ := newCluster(t, 2)

	const nDocs = 60
	var docs []string
	for id := uint64(1); id <= nDocs; id++ {
		docs = append(docs, fmt.Sprintf(`{"id":%d,"text":"doc %d payload"}`, id, id))
	}
	status, out := postJSON(t, fts.URL+"/v1/insert", `{"docs":[`+strings.Join(docs, ",")+`]}`)
	if status != http.StatusOK || out["inserted"] != float64(nDocs) {
		t.Fatalf("insert via frontend: status %d, reply %v", status, out)
	}

	for id := uint64(1); id <= nDocs; id++ {
		owner := shardmap.BackendFor(id, 2)
		if !backends[owner].Collection().Has(id) {
			t.Errorf("doc %d missing from its owner, backend %d", id, owner)
		}
		if backends[1-owner].Collection().Has(id) {
			t.Errorf("doc %d duplicated on non-owner backend %d", id, 1-owner)
		}
	}
	if c0, c1 := backends[0].Collection().DocCount(), backends[1].Collection().DocCount(); c0 == 0 || c1 == 0 || c0+c1 != nDocs {
		t.Fatalf("placement %d + %d, want both non-zero summing to %d", c0, c1, nDocs)
	}

	// Extract through the frontend proxies to the owner.
	for _, id := range []uint64{1, 2, 7, 42} {
		var ex ExtractResponse
		if s := getJSON(t, fmt.Sprintf("%s/v1/extract?id=%d&off=0&len=3", fts.URL, id), &ex); s != http.StatusOK || string(ex.Data) != "doc" {
			t.Fatalf("extract doc %d via frontend: status %d data %q", id, s, ex.Data)
		}
	}
	var er map[string]any
	if s := getJSON(t, fts.URL+"/v1/extract?id=9999&off=0&len=1", &er); s != http.StatusNotFound || er["error"] != CodeNotFound {
		t.Fatalf("extract of absent doc: status %d reply %v", s, er)
	}

	// Delete through the frontend routes each ID to its owner.
	status, out = postJSON(t, fts.URL+"/v1/delete", `{"ids":[1,2,3,9999]}`)
	if status != http.StatusOK || out["deleted"] != float64(3) {
		t.Fatalf("delete via frontend: status %d reply %v", status, out)
	}
	for _, b := range backends {
		for _, id := range []uint64{1, 2, 3} {
			if b.Collection().Has(id) {
				t.Errorf("doc %d survived a frontend delete", id)
			}
		}
	}
}

// TestFrontendMergedQueries: count must sum across backends and find
// must merge both NDJSON streams.
func TestFrontendMergedQueries(t *testing.T) {
	fts, backends, _ := newCluster(t, 2)
	var docs []string
	for id := uint64(1); id <= 40; id++ {
		docs = append(docs, fmt.Sprintf(`{"id":%d,"text":"needle and thread %d"}`, id, id))
	}
	postJSON(t, fts.URL+"/v1/insert", `{"docs":[`+strings.Join(docs, ",")+`]}`)

	var count CountResponse
	if s := getJSON(t, fts.URL+"/v1/count?q=needle", &count); s != http.StatusOK || count.Count != 40 {
		t.Fatalf("merged count: status %d count %d, want 40", s, count.Count)
	}
	perBackend := backends[0].Collection().Count([]byte("needle")) + backends[1].Collection().Count([]byte("needle"))
	if count.Count != perBackend {
		t.Fatalf("frontend count %d != per-backend sum %d", count.Count, perBackend)
	}

	resp, err := http.Get(fts.URL + "/v1/find?q=needle")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	seen := make(map[uint64]bool)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var r FindResult
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("bad merged NDJSON line %q: %v", sc.Text(), err)
		}
		if r.Err != "" {
			t.Fatalf("unexpected error trailer: %s", r.Err)
		}
		seen[r.Doc] = true
	}
	if len(seen) != 40 {
		t.Fatalf("merged find saw %d distinct docs, want 40", len(seen))
	}
}

// TestFrontendFindLimit: a limit through the frontend bounds the merged
// stream exactly, and the early break propagates so backends stop
// streaming shortly after.
func TestFrontendFindLimit(t *testing.T) {
	fts, backends, _ := newCluster(t, 2)
	var docs []string
	for id := uint64(1); id <= 20; id++ {
		docs = append(docs, fmt.Sprintf(`{"id":%d,"text":"%s"}`, id, strings.Repeat("qq ", 2000)))
	}
	postJSON(t, fts.URL+"/v1/insert", `{"docs":[`+strings.Join(docs, ",")+`]}`)
	const total = 40000 // 20 docs × 2000 occurrences

	resp, err := http.Get(fts.URL + "/v1/find?q=qq&limit=5")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	lines := 0
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		lines++
	}
	if lines != 5 {
		t.Fatalf("limit=5 through frontend streamed %d lines", lines)
	}

	// The frontend forwards the limit to each backend, so neither should
	// stream more than the limit (wait for both handlers to finish).
	deadline := time.Now().Add(5 * time.Second)
	for backends[0].Metrics().Requests("find")+backends[1].Metrics().Requests("find") < 2 {
		if time.Now().After(deadline) {
			t.Fatal("backend find handlers did not finish")
		}
		time.Sleep(10 * time.Millisecond)
	}
	for i, b := range backends {
		if n := b.Metrics().Streamed("find"); n > 5 {
			t.Errorf("backend %d streamed %d occurrences despite limit=5 (early break did not propagate)", i, n)
		}
	}
	_ = total
}

// TestFrontendBatchAtomicityLocalChecks: batches the frontend can reject
// locally (in-batch duplicates, reserved bytes) must reach no backend.
func TestFrontendBatchAtomicityLocalChecks(t *testing.T) {
	fts, backends, _ := newCluster(t, 2)
	status, out := postJSON(t, fts.URL+"/v1/insert", `{"docs":[{"id":10,"text":"x"},{"id":10,"text":"y"}]}`)
	if status != http.StatusConflict || out["error"] != CodeDuplicateID {
		t.Fatalf("in-batch dup via frontend: status %d reply %v", status, out)
	}
	status, out = postJSON(t, fts.URL+"/v1/insert", `{"docs":[{"id":11,"text":"ok"},{"id":12,"data":"AGE="}]}`)
	if status != http.StatusBadRequest || out["error"] != CodeReservedByte {
		t.Fatalf("reserved byte via frontend: status %d reply %v", status, out)
	}
	for i, b := range backends {
		if n := b.Collection().DocCount(); n != 0 {
			t.Errorf("backend %d holds %d doc(s) after rejected batches, want 0", i, n)
		}
	}
}

// TestFrontendBackendDown: with a backend gone, routable ops to the dead
// backend and whole-fleet queries must fail loudly — never a silently
// partial count.
func TestFrontendBackendDown(t *testing.T) {
	fts, _, servers := newCluster(t, 2)
	postJSON(t, fts.URL+"/v1/insert", `{"docs":[{"id":1,"text":"before the fall"}]}`)
	servers[1].Close() // backend 1 goes away

	var out map[string]any
	if s := getJSON(t, fts.URL+"/v1/count?q=before", &out); s != http.StatusBadGateway || out["error"] != CodeUnreachable {
		t.Fatalf("count with dead backend: status %d reply %v, want 502 %s", s, out, CodeUnreachable)
	}

	// A find that streams nothing before the fault is a clean 502.
	if s := getJSON(t, fts.URL+"/v1/find?q=nosuchword", &out); s != http.StatusBadGateway || out["error"] != CodeUnreachable {
		t.Fatalf("find with dead backend: status %d reply %v", s, out)
	}

	// Ops routable to the dead owner fail; ops owned by the live backend
	// still work. Golden assignments under n=2: key 1 → backend 1 (now
	// dead), key 2 → backend 0 (alive).
	deadOwned, liveOwned := uint64(1), uint64(2)
	if shardmap.BackendFor(deadOwned, 2) != 1 || shardmap.BackendFor(liveOwned, 2) != 0 {
		t.Fatal("test assumption broken: key ownership changed")
	}
	status, out := postJSON(t, fts.URL+"/v1/insert", fmt.Sprintf(`{"docs":[{"id":%d,"text":"still alive"}]}`, liveOwned))
	if status != http.StatusOK {
		t.Fatalf("insert owned by live backend failed: status %d reply %v", status, out)
	}
	status, out = postJSON(t, fts.URL+"/v1/delete", fmt.Sprintf(`{"ids":[%d]}`, deadOwned))
	if status != http.StatusBadGateway || out["error"] != CodeUnreachable {
		t.Fatalf("delete routed to dead backend: status %d reply %v", status, out)
	}
}

// TestFrontendVarz: the frontend's varz must report per-backend health.
func TestFrontendVarz(t *testing.T) {
	fts, _, servers := newCluster(t, 2)
	postJSON(t, fts.URL+"/v1/insert", `{"docs":[{"id":1,"text":"hello"},{"id":2,"text":"world"},{"id":3,"text":"again"}]}`)

	var v Varz
	if s := getJSON(t, fts.URL+"/varz", &v); s != http.StatusOK {
		t.Fatalf("frontend varz status %d", s)
	}
	if v.Role != "frontend" || len(v.Backends) != 2 {
		t.Fatalf("frontend varz: role %q, %d backend(s)", v.Role, len(v.Backends))
	}
	var docs int
	for _, b := range v.Backends {
		if !b.OK {
			t.Fatalf("backend %s reported unhealthy: %s", b.URL, b.Error)
		}
		docs += b.Docs
	}
	if docs != 3 {
		t.Fatalf("backends report %d docs total, want 3", docs)
	}

	servers[0].Close()
	if getJSON(t, fts.URL+"/varz", &v); len(v.Backends) != 2 {
		t.Fatal("varz must still list dead backends")
	}
	okCount := 0
	for _, b := range v.Backends {
		if b.OK {
			okCount++
		} else if b.Error == "" {
			t.Errorf("dead backend %s has no error string", b.URL)
		}
	}
	if okCount != 1 {
		t.Fatalf("%d backends healthy after killing one of two", okCount)
	}
}
