package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"
)

// searchLines GETs or POSTs a /v1/search request and decodes the NDJSON
// stream.
func searchLines(t *testing.T, url string) []SearchResult {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("search Content-Type = %q, want application/x-ndjson", ct)
	}
	var out []SearchResult
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var r SearchResult
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		if r.Err != "" {
			t.Fatalf("in-band error trailer: %s", r.Err)
		}
		out = append(out, r)
	}
	return out
}

// TestBackendSearch: the /v1/search endpoint runs exact, regex and
// ranked plans on one backend, GET and POST forms agreeing.
func TestBackendSearch(t *testing.T) {
	_, ts := newTestBackend(t)
	postJSON(t, ts.URL+"/v1/insert", `{"docs":[
		{"id":1,"text":"the quick brown fox"},
		{"id":2,"text":"quick quick quick"},
		{"id":3,"text":"nothing to see"},
		{"id":4,"text":"quack quock quick"}]}`)

	// Exact stream.
	got := searchLines(t, ts.URL+"/v1/search?q=quick")
	if len(got) != 5 {
		t.Fatalf("exact search: %d results, want 5", len(got))
	}
	for _, r := range got {
		if r.Len != 5 || r.Score != 0 {
			t.Fatalf("exact stream result %+v: want Len=5, no score", r)
		}
	}

	// Regex: qu.ck matches quick (×5), quack, quock.
	if got = searchLines(t, ts.URL+"/v1/search?q=qu.ck&regex=1"); len(got) != 7 {
		t.Fatalf("regex search: %d results, want 7: %+v", len(got), got)
	}

	// Ranked: one result per matching document, best first. Doc 2 has
	// the most occurrences of "quick" at offset 0 — it must win.
	got = searchLines(t, ts.URL+"/v1/search?q=quick&ranked=1&k=2")
	if len(got) != 2 {
		t.Fatalf("ranked search: %d results, want 2", len(got))
	}
	if got[0].Doc != 2 || got[0].Score <= got[1].Score {
		t.Fatalf("ranked order wrong: %+v", got)
	}

	// POST carries the same spec as a JSON body.
	resp, err := http.Post(ts.URL+"/v1/search", "application/json",
		strings.NewReader(`{"q":"qu.ck","regex":true,"ranked":true,"k":10}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	lines := 0
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		lines++
	}
	if resp.StatusCode != http.StatusOK || lines != 3 {
		t.Fatalf("POST ranked regex: status %d, %d docs, want 3 (docs 1, 2, 4)", resp.StatusCode, lines)
	}
}

// TestSearchBadPlan: malformed plans reject with a typed 400 before any
// streaming starts, on backend and frontend alike.
func TestSearchBadPlan(t *testing.T) {
	_, bts := newTestBackend(t)
	fts, _, _ := newCluster(t, 2)
	for _, base := range []string{bts.URL, fts.URL} {
		for _, q := range []string{"q=a(&regex=1", "q=x&k=-1", "q=" + "%5B" + "&regex=true"} {
			var out map[string]any
			if s := getJSON(t, base+"/v1/search?"+q, &out); s != http.StatusBadRequest || out["error"] != CodeBadRequest {
				t.Errorf("search?%s at %s: status %d reply %v, want 400 %s", q, base, s, out, CodeBadRequest)
			}
		}
	}
}

// TestFrontendSearchRankedMerge: a ranked query over the fleet merges
// the per-backend exact top-k lists into the exact global top-k — docs
// from both backends, unique, best-first.
func TestFrontendSearchRankedMerge(t *testing.T) {
	fts, backends, _ := newCluster(t, 2)
	// Doc i contains "needle" i times; higher IDs score higher on match
	// count but all docs share the same length band.
	var docs []string
	for id := uint64(1); id <= 16; id++ {
		text := strings.Repeat("needle ", int(id)) + strings.Repeat("pad ", 20-int(id))
		docs = append(docs, fmt.Sprintf(`{"id":%d,"text":"%s"}`, id, strings.TrimSpace(text)))
	}
	postJSON(t, fts.URL+"/v1/insert", `{"docs":[`+strings.Join(docs, ",")+`]}`)

	got := searchLines(t, fts.URL+"/v1/search?q=needle&ranked=1&k=5")
	if len(got) != 5 {
		t.Fatalf("ranked merge: %d results, want 5", len(got))
	}
	seen := map[uint64]bool{}
	for i, r := range got {
		if seen[r.Doc] {
			t.Fatalf("doc %d ranked twice in merged output", r.Doc)
		}
		seen[r.Doc] = true
		if i > 0 && got[i-1].Score < r.Score {
			t.Fatalf("merged ranking out of order: %+v after %+v", r, got[i-1])
		}
	}
	// More occurrences at equal first-offset and similar length wins:
	// the global best five are docs 16..12 regardless of placement.
	for _, want := range []uint64{16, 15, 14, 13, 12} {
		if !seen[want] {
			t.Fatalf("global top-5 missing doc %d: %+v", want, got)
		}
	}
	// Exactness requires contributions from both backends: with 16 docs
	// spread by hash, both must hold at least one top-5 doc or the test
	// corpus needs reshaping — assert the placement assumption holds.
	bothServed := 0
	for _, b := range backends {
		for id := range seen {
			if b.Collection().Has(id) {
				bothServed++
				break
			}
		}
	}
	if bothServed != 2 {
		t.Fatalf("top-5 docs all landed on one backend; merge not exercised")
	}
}

// TestFrontendSearchEarlyBreak is the end-to-end early-break property:
// a top-k query through the frontend must cancel backend shard
// enumeration mid-stream — each backend streams at most k of its
// ~20000 matching occurrences, because the k-bound travels inside the
// plan and the executor stops enumerating once it is met.
func TestFrontendSearchEarlyBreak(t *testing.T) {
	fts, backends, _ := newCluster(t, 2)
	var docs []string
	for id := uint64(1); id <= 20; id++ {
		docs = append(docs, fmt.Sprintf(`{"id":%d,"text":"%s"}`, id, strings.Repeat("qq ", 2000)))
	}
	postJSON(t, fts.URL+"/v1/insert", `{"docs":[`+strings.Join(docs, ",")+`]}`)
	const total = 40000 // 20 docs × 2000 occurrences

	got := searchLines(t, fts.URL+"/v1/search?q=qq&k=5")
	if len(got) != 5 {
		t.Fatalf("k=5 through frontend streamed %d results", len(got))
	}

	// Wait for both backend handlers to record completion, then check
	// how much each actually enumerated.
	deadline := time.Now().Add(5 * time.Second)
	for backends[0].Metrics().Requests("search")+backends[1].Metrics().Requests("search") < 2 {
		if time.Now().After(deadline) {
			t.Fatal("backend search handlers did not finish")
		}
		time.Sleep(10 * time.Millisecond)
	}
	for i, b := range backends {
		if n := b.Metrics().Streamed("search"); n > 5 {
			t.Errorf("backend %d streamed %d of %d occurrences despite k=5 (early break did not propagate)", i, n, total)
		}
	}
}

// TestBackendSearchDisconnect: a client that walks away from an
// unbounded /v1/search must stop the enumeration mid-stream via context
// cancellation — the flush-and-cancel contract of /v1/find, on the new
// endpoint.
func TestBackendSearchDisconnect(t *testing.T) {
	b, ts := newTestBackend(t)
	var docs []string
	for i := 0; i < 200; i++ {
		docs = append(docs, fmt.Sprintf(`{"id":%d,"text":"%s"}`, i+1, strings.Repeat("ab ", 2000)))
	}
	if status, _ := postJSON(t, ts.URL+"/v1/insert", `{"docs":[`+strings.Join(docs, ",")+`]}`); status != http.StatusOK {
		t.Fatal("seed insert failed")
	}
	const total = 400000

	resp, err := http.Get(ts.URL + "/v1/search?q=ab")
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(resp.Body)
	for i := 0; i < 2 && sc.Scan(); i++ {
	}
	resp.Body.Close() // mid-stream disconnect

	deadline := time.Now().Add(5 * time.Second)
	for b.Metrics().Requests("search") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("search handler did not finish after client disconnect")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if streamed := b.Metrics().Streamed("search"); streamed >= total {
		t.Fatalf("server streamed all %d occurrences to a disconnected client", streamed)
	} else {
		t.Logf("streamed %d of %d occurrences before noticing the disconnect", streamed, total)
	}
}
