package server

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dyncoll"
)

// newTestBackend builds a small sharded collection behind a Backend and
// an httptest server. Sync rebuilds keep the ladder deterministic.
func newTestBackend(t *testing.T) (*Backend, *httptest.Server) {
	t.Helper()
	c, err := dyncoll.NewCollection(
		dyncoll.WithShards(2),
		dyncoll.WithSyncRebuilds(),
		dyncoll.WithMinCapacity(16),
	)
	if err != nil {
		t.Fatal(err)
	}
	b := NewBackend(PlainColl{c})
	ts := httptest.NewServer(b.Handler())
	t.Cleanup(ts.Close)
	return b, ts
}

// postJSON posts body (as JSON text) and returns the status and decoded
// reply document.
func postJSON(t *testing.T, url, body string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding reply: %v", err)
	}
	return resp.StatusCode, out
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("decoding %s: %v", url, err)
	}
	return resp.StatusCode
}

func TestBackendRoundTrip(t *testing.T) {
	b, ts := newTestBackend(t)
	status, out := postJSON(t, ts.URL+"/v1/insert",
		`{"docs":[{"id":1,"text":"abracadabra"},{"id":2,"text":"a banana cabana"},{"id":3,"data":"YWJyYQ=="}]}`)
	if status != http.StatusOK || out["inserted"] != float64(3) {
		t.Fatalf("insert: status %d, reply %v", status, out)
	}

	var count CountResponse
	if s := getJSON(t, ts.URL+"/v1/count?q=abra", &count); s != http.StatusOK || count.Count != 3 {
		t.Fatalf("count: status %d, %+v (want 3: two in doc 1, one in doc 3)", s, count)
	}

	resp, err := http.Get(ts.URL + "/v1/find?q=ana")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("find Content-Type = %q, want application/x-ndjson", ct)
	}
	var results []FindResult
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var r FindResult
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		results = append(results, r)
	}
	if len(results) != 3 { // "banana" twice, "cabana" once
		t.Fatalf("find ana: %d results, want 3: %+v", len(results), results)
	}
	for _, r := range results {
		if r.Doc != 2 {
			t.Errorf("find ana: match in doc %d, want doc 2", r.Doc)
		}
	}

	var ex ExtractResponse
	if s := getJSON(t, ts.URL+"/v1/extract?id=1&off=0&len=11", &ex); s != http.StatusOK || string(ex.Data) != "abracadabra" {
		t.Fatalf("extract: status %d, data %q", s, ex.Data)
	}

	status, out = postJSON(t, ts.URL+"/v1/delete", `{"ids":[2,999]}`)
	if status != http.StatusOK || out["deleted"] != float64(1) {
		t.Fatalf("delete: status %d, reply %v (999 should be skipped)", status, out)
	}
	if getJSON(t, ts.URL+"/v1/count?q=ana", &count); count.Count != 0 {
		t.Fatalf("count after delete = %d, want 0", count.Count)
	}
	if b.Collection().DocCount() != 2 {
		t.Fatalf("DocCount = %d, want 2", b.Collection().DocCount())
	}
}

// TestBatchAtomicityOverTheWire: a batch with one rejectable document
// must land zero documents, and the error envelope must carry the typed
// code.
func TestBatchAtomicityOverTheWire(t *testing.T) {
	b, ts := newTestBackend(t)
	if status, _ := postJSON(t, ts.URL+"/v1/insert", `{"docs":[{"id":1,"text":"existing"}]}`); status != http.StatusOK {
		t.Fatal("seed insert failed")
	}

	// Live-ID collision: doc 2 is valid but must not survive the batch.
	status, out := postJSON(t, ts.URL+"/v1/insert", `{"docs":[{"id":2,"text":"fresh"},{"id":1,"text":"dup"}]}`)
	if status != http.StatusConflict || out["error"] != CodeDuplicateID {
		t.Fatalf("dup batch: status %d, reply %v, want 409/%s", status, out, CodeDuplicateID)
	}
	if b.Collection().Has(2) {
		t.Fatal("batch was not atomic: doc 2 inserted despite the batch failing")
	}

	// In-batch duplicate.
	status, out = postJSON(t, ts.URL+"/v1/insert", `{"docs":[{"id":3,"text":"x"},{"id":3,"text":"y"}]}`)
	if status != http.StatusConflict || out["error"] != CodeDuplicateID {
		t.Fatalf("in-batch dup: status %d, reply %v", status, out)
	}
	if b.Collection().Has(3) {
		t.Fatal("batch was not atomic: doc 3 inserted")
	}

	// Reserved byte (0x00 via base64 "AGE=" = {0x00,'a'}).
	status, out = postJSON(t, ts.URL+"/v1/insert", `{"docs":[{"id":4,"text":"ok"},{"id":5,"data":"AGE="}]}`)
	if status != http.StatusBadRequest || out["error"] != CodeReservedByte {
		t.Fatalf("reserved byte: status %d, reply %v", status, out)
	}
	if b.Collection().Has(4) {
		t.Fatal("batch was not atomic: doc 4 inserted")
	}
	if b.Collection().DocCount() != 1 {
		t.Fatalf("DocCount = %d, want 1 (only the seed)", b.Collection().DocCount())
	}
}

// TestMalformedRequests: every malformed input must come back as a 400
// with the typed bad_request code — never a 500, never a hang.
func TestMalformedRequests(t *testing.T) {
	_, ts := newTestBackend(t)
	cases := []struct {
		name   string
		do     func() (int, map[string]any)
		code   string
		status int
	}{
		{"truncated JSON", func() (int, map[string]any) {
			return postJSON(t, ts.URL+"/v1/insert", `{"docs":[{"id":1,`)
		}, CodeBadRequest, http.StatusBadRequest},
		{"wrong type", func() (int, map[string]any) {
			return postJSON(t, ts.URL+"/v1/insert", `{"docs":"not-an-array"}`)
		}, CodeBadRequest, http.StatusBadRequest},
		{"trailing garbage", func() (int, map[string]any) {
			return postJSON(t, ts.URL+"/v1/insert", `{"docs":[{"id":1,"text":"a"}]} trailing`)
		}, CodeBadRequest, http.StatusBadRequest},
		{"empty batch", func() (int, map[string]any) {
			return postJSON(t, ts.URL+"/v1/insert", `{"docs":[]}`)
		}, CodeBadRequest, http.StatusBadRequest},
		{"missing q", func() (int, map[string]any) {
			var out map[string]any
			s := getJSON(t, ts.URL+"/v1/find", &out)
			return s, out
		}, CodeBadRequest, http.StatusBadRequest},
		{"bad limit", func() (int, map[string]any) {
			var out map[string]any
			s := getJSON(t, ts.URL+"/v1/find?q=a&limit=-3", &out)
			return s, out
		}, CodeBadRequest, http.StatusBadRequest},
		{"bad extract id", func() (int, map[string]any) {
			var out map[string]any
			s := getJSON(t, ts.URL+"/v1/extract?id=zebra&off=0&len=1", &out)
			return s, out
		}, CodeBadRequest, http.StatusBadRequest},
		{"extract absent doc", func() (int, map[string]any) {
			var out map[string]any
			s := getJSON(t, ts.URL+"/v1/extract?id=42&off=0&len=1", &out)
			return s, out
		}, CodeNotFound, http.StatusNotFound},
	}
	for _, tc := range cases {
		status, out := tc.do()
		if status != tc.status || out["error"] != tc.code {
			t.Errorf("%s: status %d error %v, want %d %s", tc.name, status, out["error"], tc.status, tc.code)
		}
		if msg, _ := out["message"].(string); msg == "" {
			t.Errorf("%s: error envelope has no message", tc.name)
		}
	}
}

// TestFindStreamDisconnect: a client that walks away mid-stream must
// stop the enumeration — the server must not burn through the full
// result set for a reader that is gone.
func TestFindStreamDisconnect(t *testing.T) {
	b, ts := newTestBackend(t)
	// ~400k occurrences of "ab" across 200 documents — a ~10MB NDJSON
	// stream, far more than the kernel socket buffers can absorb, so a
	// stream to a dead client must eventually block and fail.
	var docs []string
	for i := 0; i < 200; i++ {
		docs = append(docs, fmt.Sprintf(`{"id":%d,"text":"%s"}`, i+1, strings.Repeat("ab ", 2000)))
	}
	if status, _ := postJSON(t, ts.URL+"/v1/insert", `{"docs":[`+strings.Join(docs, ",")+`]}`); status != http.StatusOK {
		t.Fatal("seed insert failed")
	}
	const total = 400000

	resp, err := http.Get(ts.URL + "/v1/find?q=ab")
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(resp.Body)
	for i := 0; i < 2 && sc.Scan(); i++ {
	}
	resp.Body.Close() // mid-stream disconnect

	// The handler observes the disconnect via context cancellation (or a
	// failed flush) and returns; wait for it to record completion.
	deadline := time.Now().Add(5 * time.Second)
	for b.Metrics().Requests("find") == 0 {
		if time.Now().After(deadline) {
			t.Fatal("find handler did not finish after client disconnect")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if streamed := b.Metrics().Streamed("find"); streamed >= total {
		t.Fatalf("server streamed all %d occurrences to a disconnected client", streamed)
	} else {
		t.Logf("streamed %d of %d occurrences before noticing the disconnect", streamed, total)
	}
}

// TestFindLimit: the limit parameter bounds the stream exactly.
func TestFindLimit(t *testing.T) {
	_, ts := newTestBackend(t)
	postJSON(t, ts.URL+"/v1/insert", fmt.Sprintf(`{"docs":[{"id":1,"text":"%s"}]}`, strings.Repeat("xy ", 500)))
	resp, err := http.Get(ts.URL + "/v1/find?q=xy&limit=7")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	lines := 0
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		lines++
	}
	if lines != 7 {
		t.Fatalf("limit=7 streamed %d lines", lines)
	}
}

// TestVarz: the metrics document must carry endpoint counters, ladder
// stats, pending rebuilds and shard occupancy.
func TestVarz(t *testing.T) {
	_, ts := newTestBackend(t)
	postJSON(t, ts.URL+"/v1/insert", `{"docs":[{"id":1,"text":"hello hello"}]}`)
	var count CountResponse
	getJSON(t, ts.URL+"/v1/count?q=hello", &count)

	var v Varz
	if s := getJSON(t, ts.URL+"/varz", &v); s != http.StatusOK {
		t.Fatalf("varz status %d", s)
	}
	if v.Role != "backend" || v.Docs != 1 || v.Ladder == nil {
		t.Fatalf("varz = role %q docs %d ladder %v", v.Role, v.Docs, v.Ladder != nil)
	}
	if v.Ladder.Unit != "symbol" || v.Ladder.Live != 11 {
		t.Fatalf("ladder unit %q live %d, want symbol/11", v.Ladder.Unit, v.Ladder.Live)
	}
	if v.Ladder.Shards != 2 || len(v.Ladder.ShardSizes) != 2 {
		t.Fatalf("shard occupancy missing: shards %d sizes %v", v.Ladder.Shards, v.Ladder.ShardSizes)
	}
	if v.Ladder.ShardSizes[0]+v.Ladder.ShardSizes[1] != v.Ladder.Live {
		t.Fatalf("shard sizes %v do not sum to live %d", v.Ladder.ShardSizes, v.Ladder.Live)
	}
	ins, ok := v.Endpoints["insert"]
	if !ok || ins.Requests != 1 || ins.Errors != 0 {
		t.Fatalf("insert endpoint metrics: %+v", ins)
	}
	if cnt := v.Endpoints["count"]; cnt.Requests != 1 {
		t.Fatalf("count endpoint metrics: %+v", cnt)
	}
	if v.Endpoints["find"].Requests != 0 {
		t.Fatalf("find endpoint should have 0 requests, got %+v", v.Endpoints["find"])
	}
}

// TestHistogram pins the bucket mapping and sanity-checks quantiles.
func TestHistogram(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0}, {time.Microsecond, 0}, {2 * time.Microsecond, 1},
		{3 * time.Microsecond, 2}, {4 * time.Microsecond, 2},
		{5 * time.Microsecond, 3}, {time.Millisecond, 10},
		{time.Second, 20}, {time.Hour, histBuckets - 1},
	}
	for _, tc := range cases {
		if got := bucketOf(tc.d); got != tc.want {
			t.Errorf("bucketOf(%v) = %d, want %d", tc.d, got, tc.want)
		}
	}

	var h Histogram
	for i := 0; i < 90; i++ {
		h.Observe(100 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h.Observe(50 * time.Millisecond)
	}
	if p50 := h.Quantile(0.50); p50 < 64*time.Microsecond || p50 > 128*time.Microsecond {
		t.Errorf("p50 = %v, want within the 100µs bucket (64µs, 128µs]", p50)
	}
	if p99 := h.Quantile(0.99); p99 < 32*time.Millisecond || p99 > 50*time.Millisecond {
		t.Errorf("p99 = %v, want within the 50ms bucket capped at max", p99)
	}
	if h.Quantile(1.0) != 50*time.Millisecond {
		t.Errorf("p100 = %v, want the observed max", h.Quantile(1.0))
	}
	var empty Histogram
	if empty.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile should be 0")
	}
}
