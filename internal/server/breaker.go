package server

import (
	"sync"
	"time"
)

// BreakerConfig tunes the per-backend circuit breaker.
type BreakerConfig struct {
	// Failures is the consecutive-failure count that trips the breaker
	// open. ≤ 0 selects the default (3).
	Failures int
	// Cooldown is how long an open breaker rejects before allowing one
	// half-open probe. ≤ 0 selects the default (2s).
	Cooldown time.Duration
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Failures <= 0 {
		c.Failures = 3
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 2 * time.Second
	}
	return c
}

// Breaker states.
const (
	BreakerClosed   = "closed"
	BreakerOpen     = "open"
	BreakerHalfOpen = "half-open"
)

// Breaker is a per-backend circuit breaker: Failures consecutive
// transport failures trip it open, an open breaker rejects every caller
// in O(1) (no connection attempt spent discovering a dead replica), and
// after Cooldown it admits exactly one half-open probe — probe success
// closes it, probe failure re-arms the cooldown. The clock is
// injectable so the state machine unit-tests with no sleeping.
type Breaker struct {
	cfg BreakerConfig
	now func() time.Time

	mu       sync.Mutex
	state    string
	consec   int       // consecutive failures while closed
	openedAt time.Time // when the breaker last tripped
	probing  bool      // a half-open probe is in flight
	trips    int64
	probes   int64
}

// NewBreaker builds a closed breaker on the real clock.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults(), now: time.Now, state: BreakerClosed}
}

// WithNow substitutes the clock (tests only) and returns the breaker.
func (b *Breaker) WithNow(now func() time.Time) *Breaker {
	b.now = now
	return b
}

// Allow reports whether a request may be sent to this backend now.
// Closed always allows. Open allows nothing until Cooldown has elapsed,
// at which point the first caller becomes the half-open probe; while a
// probe is in flight everyone else is rejected. Every allowed call MUST
// be matched by exactly one Success or Failure.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.now().Sub(b.openedAt) < b.cfg.Cooldown {
			return false
		}
		b.state = BreakerHalfOpen
		b.probing = true
		b.probes++
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		b.probes++
		return true
	}
}

// Success records a completed request: any success closes the breaker
// and resets the failure streak.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = BreakerClosed
	b.consec = 0
	b.probing = false
}

// Cancel releases an allowed call whose outcome is unknowable because
// the caller itself gave up (context canceled before the backend could
// answer). It frees a half-open probe slot without judging the backend;
// state and streak are untouched.
func (b *Breaker) Cancel() {
	b.mu.Lock()
	b.probing = false
	b.mu.Unlock()
}

// Failure records a transport failure. A failed half-open probe re-arms
// the cooldown; Failures consecutive failures while closed trip the
// breaker.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerHalfOpen:
		b.state = BreakerOpen
		b.openedAt = b.now()
		b.probing = false
		b.trips++
	case BreakerClosed:
		b.consec++
		if b.consec >= b.cfg.Failures {
			b.state = BreakerOpen
			b.openedAt = b.now()
			b.trips++
		}
		// Open: a straggler from before the trip; the cooldown already runs.
	}
}

// State returns closed, open, or half-open. An open breaker whose
// cooldown has elapsed still reports open until a probe claims it.
func (b *Breaker) State() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Trips returns how many times the breaker has tripped open.
func (b *Breaker) Trips() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}

// Probes returns how many half-open probes have been admitted.
func (b *Breaker) Probes() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.probes
}
