// Package waltest is the crash-kill harness for the durable facades:
// a child process ingests a deterministic, seeded mutation stream into
// a durable structure — acknowledging each committed operation on
// stdout — and the parent SIGKILLs it at a random instant, reopens the
// directory, and verifies that the recovered state is exactly the
// stream's prefix up to some point at or past the last acknowledged
// operation. Both sides regenerate the stream from the seed, so
// nothing about the workload needs to survive the kill except the
// durable directory itself.
package waltest

import (
	"fmt"
	"math/rand"
	"slices"
	"time"

	"dyncoll"
)

// Kinds and transformations covered by the harness matrix.
const (
	KindCollection = "collection"
	KindRelation   = "relation"
	KindGraph      = "graph"
)

// ChildConfig tells the child process what to ingest; it travels as
// JSON in the WALTEST_CHILD environment variable.
type ChildConfig struct {
	Dir       string
	Kind      string
	Tr        int // int(dyncoll.Transformation)
	Shards    int
	Seed      int64
	Ops       int
	CkptEvery int // explicit Checkpoint every this many ops; 0 = never
}

// Op is one atomic durable mutation (= one WAL record).
type Op struct {
	// Collection ops: exactly one of Docs/Del is non-empty.
	Docs []dyncoll.Document
	Del  []uint64
	// Relation/graph ops.
	A, B  uint64
	IsDel bool
}

// Options returns the structure options for a config.
func (c ChildConfig) Options() []dyncoll.Option {
	opts := []dyncoll.Option{
		dyncoll.WithTransformation(dyncoll.Transformation(c.Tr)),
		dyncoll.WithMinCapacity(16),
	}
	if c.Shards > 0 {
		opts = append(opts, dyncoll.WithShards(c.Shards))
	}
	return opts
}

// Model is the in-memory ground truth both sides derive from the op
// stream: live documents for collections, the pair set for relations
// and graphs.
type Model struct {
	Docs  map[uint64][]byte
	Pairs map[[2]uint64]bool
}

// NewModel returns an empty model.
func NewModel() *Model {
	return &Model{Docs: map[uint64][]byte{}, Pairs: map[[2]uint64]bool{}}
}

// Apply advances the model by one op.
func (m *Model) Apply(kind string, op Op) {
	if kind == KindCollection {
		for _, d := range op.Docs {
			m.Docs[d.ID] = d.Data
		}
		for _, id := range op.Del {
			delete(m.Docs, id)
		}
		return
	}
	if op.IsDel {
		delete(m.Pairs, [2]uint64{op.A, op.B})
	} else {
		m.Pairs[[2]uint64{op.A, op.B}] = true
	}
}

// SortedIDs returns the live document IDs, sorted.
func (m *Model) SortedIDs() []uint64 {
	ids := make([]uint64, 0, len(m.Docs))
	for id := range m.Docs {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	return ids
}

// SortedPairs returns the live pairs, sorted.
func (m *Model) SortedPairs() [][2]uint64 {
	ps := make([][2]uint64, 0, len(m.Pairs))
	for p := range m.Pairs {
		ps = append(ps, p)
	}
	slices.SortFunc(ps, func(a, b [2]uint64) int {
		if a[0] != b[0] {
			if a[0] < b[0] {
				return -1
			}
			return 1
		}
		if a[1] < b[1] {
			return -1
		}
		if a[1] > b[1] {
			return 1
		}
		return 0
	})
	return ps
}

// GenOps deterministically generates the op stream for a config: the
// same (kind, seed, n) always yields the same ops, on both sides of
// the process boundary. Collection streams mix multi-document insert
// batches with deletes of live documents; relation and graph streams
// mix adds of new pairs with deletes of existing ones.
func GenOps(kind string, seed int64, n int) []Op {
	rng := rand.New(rand.NewSource(seed))
	ops := make([]Op, 0, n)
	if kind == KindCollection {
		words := []string{"abracadabra", "hocus pocus", "alakazam", "open sesame", "sim sala bim"}
		live := []uint64{}
		next := uint64(1)
		for len(ops) < n {
			if len(live) > 3 && rng.Intn(4) == 0 {
				k := 1 + rng.Intn(3)
				del := make([]uint64, 0, k)
				for range k {
					i := rng.Intn(len(live))
					del = append(del, live[i])
					live = slices.Delete(live, i, i+1)
				}
				ops = append(ops, Op{Del: del})
				continue
			}
			k := 1 + rng.Intn(6)
			docs := make([]dyncoll.Document, 0, k)
			for range k {
				data := []byte(fmt.Sprintf("%s doc %d", words[rng.Intn(len(words))], next))
				docs = append(docs, dyncoll.Document{ID: next, Data: data})
				live = append(live, next)
				next++
			}
			ops = append(ops, Op{Docs: docs})
		}
		return ops
	}
	pairs := map[[2]uint64]bool{}
	var order [][2]uint64
	for len(ops) < n {
		if len(order) > 3 && rng.Intn(3) == 0 {
			i := rng.Intn(len(order))
			p := order[i]
			order = slices.Delete(order, i, i+1)
			delete(pairs, p)
			ops = append(ops, Op{A: p[0], B: p[1], IsDel: true})
			continue
		}
		for {
			p := [2]uint64{uint64(1 + rng.Intn(48)), uint64(1 + rng.Intn(48))}
			if pairs[p] {
				continue
			}
			pairs[p] = true
			order = append(order, p)
			ops = append(ops, Op{A: p[0], B: p[1]})
			break
		}
	}
	return ops
}

// durableTarget is what the child mutates and checkpoints, whatever
// the kind.
type durableTarget interface {
	Checkpoint() error
	Close() error
}

// applyDurable applies one op to the durable structure; the ack
// contract is the library's — when this returns nil the op is fsynced.
func applyDurable(target durableTarget, kind string, op Op) error {
	switch kind {
	case KindCollection:
		dc := target.(*dyncoll.DurableCollection)
		if len(op.Docs) > 0 {
			return dc.InsertBatch(op.Docs)
		}
		_, err := dc.DeleteBatch(op.Del)
		return err
	case KindRelation:
		dr := target.(*dyncoll.DurableRelation)
		if op.IsDel {
			return dr.Delete(op.A, op.B)
		}
		return dr.Add(op.A, op.B)
	default:
		dg := target.(*dyncoll.DurableGraph)
		if op.IsDel {
			return dg.DeleteEdge(op.A, op.B)
		}
		return dg.AddEdge(op.A, op.B)
	}
}

// openDurable opens the config's structure kind in its directory.
func openDurable(cfg ChildConfig, wopts dyncoll.WALOptions) (durableTarget, error) {
	switch cfg.Kind {
	case KindCollection:
		return dyncoll.OpenDurableCollection(cfg.Dir, wopts, cfg.Options()...)
	case KindRelation:
		return dyncoll.OpenDurableRelation(cfg.Dir, wopts, cfg.Options()...)
	case KindGraph:
		return dyncoll.OpenDurableGraph(cfg.Dir, wopts, cfg.Options()...)
	default:
		return nil, fmt.Errorf("waltest: unknown kind %q", cfg.Kind)
	}
}

// RunChild is the child side: ingest the whole op stream, writing
// "ack <k>" after operation k (1-based) is durable and "ckpt <k>"
// after an explicit checkpoint at k commits. The parent usually kills
// the process long before this returns.
func RunChild(cfg ChildConfig, printf func(format string, args ...any)) error {
	wopts := dyncoll.WALOptions{SyncWindow: 500 * time.Microsecond, CheckpointEvery: -1}
	target, err := openDurable(cfg, wopts)
	if err != nil {
		return err
	}
	ops := GenOps(cfg.Kind, cfg.Seed, cfg.Ops)
	for i, op := range ops {
		if err := applyDurable(target, cfg.Kind, op); err != nil {
			return fmt.Errorf("op %d: %w", i+1, err)
		}
		printf("ack %d\n", i+1)
		if cfg.CkptEvery > 0 && (i+1)%cfg.CkptEvery == 0 {
			if err := target.Checkpoint(); err != nil {
				return fmt.Errorf("checkpoint at %d: %w", i+1, err)
			}
			printf("ckpt %d\n", i+1)
		}
	}
	return target.Close()
}
