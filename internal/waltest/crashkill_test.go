package waltest

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"slices"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"dyncoll"
)

// TestCrashKillChild is the re-exec target, not a test: the parent
// spawns the test binary with -test.run pinned here and the config in
// WALTEST_CHILD. Without the variable it skips immediately.
func TestCrashKillChild(t *testing.T) {
	raw := os.Getenv("WALTEST_CHILD")
	if raw == "" {
		t.Skip("crash-kill harness child; run via TestCrashKillRecovery")
	}
	var cfg ChildConfig
	if err := json.Unmarshal([]byte(raw), &cfg); err != nil {
		t.Fatalf("bad WALTEST_CHILD: %v", err)
	}
	if err := RunChild(cfg, func(format string, args ...any) {
		fmt.Fprintf(os.Stdout, format, args...)
	}); err != nil {
		t.Fatalf("child: %v", err)
	}
}

// ackLog collects the child's acknowledgment stream.
type ackLog struct {
	mu       sync.Mutex
	acked    int // highest "ack k" seen
	ckpt     int // highest "ckpt k" seen
	reached  chan struct{}
	target   int
	signaled bool
}

func (a *ackLog) note(kind string, k int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	switch kind {
	case "ack":
		if k > a.acked {
			a.acked = k
		}
	case "ckpt":
		if k > a.ckpt {
			a.ckpt = k
		}
	}
	if !a.signaled && a.acked >= a.target {
		a.signaled = true
		close(a.reached)
	}
}

func (a *ackLog) snapshot() (acked, ckpt int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.acked, a.ckpt
}

// killOnce spawns one child, kills it once `target` ops are
// acknowledged (or lets it finish), and returns the final ack state.
func killOnce(t *testing.T, cfg ChildConfig, target int) (acked, ckpt int) {
	t.Helper()
	js, err := json.Marshal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(os.Args[0], "-test.run=^TestCrashKillChild$", "-test.count=1")
	cmd.Env = append(os.Environ(), "WALTEST_CHILD="+string(js))
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	log := &ackLog{reached: make(chan struct{}), target: target}
	done := make(chan struct{})
	go func() {
		defer close(done)
		sc := bufio.NewScanner(out)
		for sc.Scan() {
			fields := strings.Fields(sc.Text())
			if len(fields) != 2 {
				continue
			}
			if k, err := strconv.Atoi(fields[1]); err == nil {
				log.note(fields[0], k)
			}
		}
	}()
	killed := false
	select {
	case <-log.reached:
		killed = true
		cmd.Process.Kill()
	case <-done: // child finished (or died) before the target
	case <-time.After(30 * time.Second):
		killed = true
		cmd.Process.Kill()
		t.Errorf("child hung; killed after timeout")
	}
	werr := cmd.Wait()
	<-done
	if !killed && werr != nil {
		t.Fatalf("child failed on its own: %v\nstderr: %s", werr, stderr.String())
	}
	return log.snapshot()
}

// verifyRecovered reopens the killed child's directory and checks that
// the recovered state equals the op stream's prefix at some point m ≥
// the last acknowledged op, that queries over the recovered structure
// match the model at m, and that recovery after an acknowledged
// checkpoint loaded it and replayed only the tail.
func verifyRecovered(t *testing.T, cfg ChildConfig, acked, ckpt int) {
	t.Helper()
	ops := GenOps(cfg.Kind, cfg.Seed, cfg.Ops)
	target, err := openDurable(cfg, dyncoll.WALOptions{CheckpointEvery: -1})
	if err != nil {
		t.Fatalf("reopen after kill (acked %d): %v", acked, err)
	}
	defer target.Close()

	var rec dyncoll.RecoveryStats
	model := NewModel()
	m := -1
	switch cfg.Kind {
	case KindCollection:
		dc := target.(*dyncoll.DurableCollection)
		rec = dc.RecoveryStats()
		dc.WaitIdle()
		got := dc.DocIDs()
		slices.Sort(got)
		for k := 0; k <= len(ops); k++ {
			if k > 0 {
				model.Apply(cfg.Kind, ops[k-1])
			}
			if k < acked {
				continue
			}
			if slices.Equal(got, model.SortedIDs()) {
				m = k
				break
			}
		}
		if m < 0 {
			t.Fatalf("recovered doc set (%d docs) matches no prefix ≥ acked %d", len(got), acked)
		}
		verifyCollectionQueries(t, dc, model)
	default:
		var pairs [][2]uint64
		if cfg.Kind == KindRelation {
			dr := target.(*dyncoll.DurableRelation)
			rec = dr.RecoveryStats()
			dr.WaitIdle()
			for _, p := range dr.Pairs() {
				pairs = append(pairs, [2]uint64{p.Object, p.Label})
			}
		} else {
			dg := target.(*dyncoll.DurableGraph)
			rec = dg.RecoveryStats()
			dg.WaitIdle()
			for _, p := range dg.Edges() {
				pairs = append(pairs, [2]uint64{p.Object, p.Label})
			}
		}
		slices.SortFunc(pairs, func(a, b [2]uint64) int {
			if a[0] != b[0] {
				if a[0] < b[0] {
					return -1
				}
				return 1
			}
			if a[1] < b[1] {
				return -1
			}
			if a[1] > b[1] {
				return 1
			}
			return 0
		})
		for k := 0; k <= len(ops); k++ {
			if k > 0 {
				model.Apply(cfg.Kind, ops[k-1])
			}
			if k < acked {
				continue
			}
			if slices.Equal(pairs, model.SortedPairs()) {
				m = k
				break
			}
		}
		if m < 0 {
			t.Fatalf("recovered pair set (%d pairs) matches no prefix ≥ acked %d", len(pairs), acked)
		}
		verifyPairQueries(t, cfg.Kind, target, model)
	}

	// An acknowledged checkpoint is durable: recovery must have loaded
	// one and replayed only the operations after it — never the full
	// history.
	if ckpt > 0 {
		if !rec.CheckpointLoaded {
			t.Errorf("checkpoint acked at op %d but recovery loaded none (stats %+v)", ckpt, rec)
		}
		if rec.WALRecords > m-ckpt {
			t.Errorf("recovery replayed %d WAL records; tail after the op-%d checkpoint is at most %d",
				rec.WALRecords, ckpt, m-ckpt)
		}
	}
}

// verifyCollectionQueries compares search answers between the
// recovered collection and a fresh in-memory collection holding the
// model's documents.
func verifyCollectionQueries(t *testing.T, dc *dyncoll.DurableCollection, model *Model) {
	t.Helper()
	ref, err := dyncoll.NewCollection(dyncoll.WithSyncRebuilds(), dyncoll.WithMinCapacity(16))
	if err != nil {
		t.Fatal(err)
	}
	var docs []dyncoll.Document
	for _, id := range model.SortedIDs() {
		docs = append(docs, dyncoll.Document{ID: id, Data: model.Docs[id]})
	}
	if len(docs) > 0 {
		if err := ref.InsertBatch(docs); err != nil {
			t.Fatal(err)
		}
	}
	ref.WaitIdle()
	for _, pat := range []string{"abra", "doc", "sesame", "zzz"} {
		p := []byte(pat)
		if got, want := dc.Count(p), ref.Count(p); got != want {
			t.Fatalf("Count(%q) = %d, want %d", pat, got, want)
		}
		got, want := dc.Find(p), ref.Find(p)
		sortOcc := func(o []dyncoll.Occurrence) {
			slices.SortFunc(o, func(x, y dyncoll.Occurrence) int {
				if x.DocID != y.DocID {
					if x.DocID < y.DocID {
						return -1
					}
					return 1
				}
				return x.Off - y.Off
			})
		}
		sortOcc(got)
		sortOcc(want)
		if !slices.Equal(got, want) {
			t.Fatalf("Find(%q) diverges: %d vs %d occurrences", pat, len(got), len(want))
		}
	}
	for _, id := range model.SortedIDs()[:min(5, len(model.Docs))] {
		data, ok := dc.Extract(id, 0, len(model.Docs[id]))
		if !ok || !bytes.Equal(data, model.Docs[id]) {
			t.Fatalf("Extract(%d) diverges", id)
		}
	}
}

// verifyPairQueries compares adjacency answers between the recovered
// relation/graph and the model's pair set.
func verifyPairQueries(t *testing.T, kind string, target durableTarget, model *Model) {
	t.Helper()
	byObj := map[uint64][]uint64{}
	byLabel := map[uint64][]uint64{}
	for p := range model.Pairs {
		byObj[p[0]] = append(byObj[p[0]], p[1])
		byLabel[p[1]] = append(byLabel[p[1]], p[0])
	}
	for _, s := range byObj {
		slices.Sort(s)
	}
	for _, s := range byLabel {
		slices.Sort(s)
	}
	for probe := uint64(1); probe <= 48; probe += 7 {
		if kind == KindRelation {
			dr := target.(*dyncoll.DurableRelation)
			if got := dr.Labels(probe); !slices.Equal(got, byObj[probe]) {
				t.Fatalf("Labels(%d) = %v, want %v", probe, got, byObj[probe])
			}
			var got []uint64
			dr.ObjectsOf(probe, func(o uint64) bool {
				got = append(got, o)
				return true
			})
			slices.Sort(got)
			if !slices.Equal(got, byLabel[probe]) {
				t.Fatalf("ObjectsOf(%d) = %v, want %v", probe, got, byLabel[probe])
			}
		} else {
			dg := target.(*dyncoll.DurableGraph)
			var got []uint64
			for v := range dg.Successors(probe) {
				got = append(got, v)
			}
			slices.Sort(got)
			if !slices.Equal(got, byObj[probe]) {
				t.Fatalf("Successors(%d) = %v, want %v", probe, got, byObj[probe])
			}
			if got := dg.ReverseNeighbors(probe); !slices.Equal(got, byLabel[probe]) {
				t.Fatalf("ReverseNeighbors(%d) = %v, want %v", probe, got, byLabel[probe])
			}
		}
	}
}

// TestCrashKillRecovery is the acceptance matrix: three structures ×
// two transformations × {unsharded, 4 shards}, each killed at
// WALTEST_KILLS random points (default 3; CI raises it).
func TestCrashKillRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and kills child processes")
	}
	kills := 3
	if v := os.Getenv("WALTEST_KILLS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			t.Fatalf("WALTEST_KILLS=%q: %v", v, err)
		}
		kills = n
	}
	const ops = 80
	for _, kind := range []string{KindCollection, KindRelation, KindGraph} {
		for _, tr := range []dyncoll.Transformation{dyncoll.Amortized, dyncoll.WorstCase} {
			for _, shards := range []int{0, 4} {
				kind, tr, shards := kind, tr, shards
				t.Run(fmt.Sprintf("%s/tr%d/shards%d", kind, tr, shards), func(t *testing.T) {
					t.Parallel()
					rng := rand.New(rand.NewSource(int64(len(kind))*1000 + int64(tr)*100 + int64(shards)))
					for i := 0; i < kills; i++ {
						cfg := ChildConfig{
							Dir:       t.TempDir(),
							Kind:      kind,
							Tr:        int(tr),
							Shards:    shards,
							Seed:      rng.Int63(),
							Ops:       ops,
							CkptEvery: 25,
						}
						// Half the kills aim early (before the first
						// checkpoint), half anywhere in the stream.
						target := 1 + rng.Intn(ops)
						if i%2 == 0 {
							target = 1 + rng.Intn(24)
						}
						acked, ckpt := killOnce(t, cfg, target)
						verifyRecovered(t, cfg, acked, ckpt)
					}
				})
			}
		}
	}
}
