package doc

import "testing"

func TestValid(t *testing.T) {
	cases := []struct {
		data []byte
		want bool
	}{
		{nil, true},
		{[]byte{}, true},
		{[]byte{1}, true},
		{[]byte{255}, true},
		{[]byte("hello"), true},
		{[]byte{0}, false},
		{[]byte{1, 0, 2}, false},
		{[]byte{1, 2, 0}, false},
	}
	for _, c := range cases {
		d := Doc{ID: 1, Data: c.data}
		if d.Valid() != c.want {
			t.Errorf("Valid(%v) = %v, want %v", c.data, d.Valid(), c.want)
		}
	}
}

func TestLen(t *testing.T) {
	if (Doc{}).Len() != 0 {
		t.Fatal("empty doc Len != 0")
	}
	if (Doc{Data: []byte("abc")}).Len() != 3 {
		t.Fatal("Len wrong")
	}
}
