// Package doc defines the document type shared by every index and
// collection implementation in this module.
package doc

import "bytes"

// Doc is one document in a collection: an application-assigned identifier
// and an immutable byte payload. Payload bytes must be non-zero — the
// byte 0x00 is reserved as the document separator by the compressed
// indexes (see package fmindex).
type Doc struct {
	ID   uint64
	Data []byte
}

// Valid reports whether the payload avoids the reserved separator byte.
// bytes.IndexByte is vectorized, so validation runs at memory speed
// rather than byte-at-a-time.
func (d Doc) Valid() bool {
	return bytes.IndexByte(d.Data, 0) < 0
}

// Len returns the payload length in bytes.
func (d Doc) Len() int { return len(d.Data) }
