package dynbits

import (
	"math/rand"
	"testing"
	"testing/quick"
)

type model []bool

func (m model) rank1(i int) int {
	c := 0
	for _, b := range m[:i] {
		if b {
			c++
		}
	}
	return c
}

func (m model) select1(k int) int {
	for i, b := range m {
		if b {
			k--
			if k == 0 {
				return i
			}
		}
	}
	return -1
}

func TestNewInitialStates(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 1000} {
		v0 := New(n, false)
		if v0.Ones() != 0 || v0.Len() != n {
			t.Fatalf("n=%d: zero-init wrong (Ones=%d)", n, v0.Ones())
		}
		v1 := New(n, true)
		if v1.Ones() != n {
			t.Fatalf("n=%d: one-init Ones=%d", n, v1.Ones())
		}
		if n > 0 {
			if !v1.Get(n-1) || v0.Get(n-1) {
				t.Fatalf("n=%d: initial bits wrong", n)
			}
			if v1.Rank1(n) != n || v0.Rank1(n) != 0 {
				t.Fatalf("n=%d: full rank wrong", n)
			}
		}
	}
}

func TestAgainstModel(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, n := range []int{1, 64, 65, 500, 3000} {
		v := New(n, true)
		m := make(model, n)
		for i := range m {
			m[i] = true
		}
		for op := 0; op < 3000; op++ {
			switch rng.Intn(4) {
			case 0:
				i := rng.Intn(n)
				b := rng.Intn(2) == 0
				v.Set(i, b)
				m[i] = b
			case 1:
				i := rng.Intn(n + 1)
				if got, want := v.Rank1(i), m.rank1(i); got != want {
					t.Fatalf("n=%d: Rank1(%d)=%d, want %d", n, i, got, want)
				}
			case 2:
				if v.Ones() == 0 {
					continue
				}
				k := 1 + rng.Intn(v.Ones())
				if got, want := v.Select1(k), m.select1(k); got != want {
					t.Fatalf("n=%d: Select1(%d)=%d, want %d", n, k, got, want)
				}
			case 3:
				s, e := rng.Intn(n), rng.Intn(n)
				if s > e {
					s, e = e, s
				}
				want := m.rank1(e+1) - m.rank1(s)
				if got := v.Count1(s, e); got != want {
					t.Fatalf("n=%d: Count1(%d,%d)=%d, want %d", n, s, e, got, want)
				}
			}
		}
	}
}

func TestSelectOutOfRange(t *testing.T) {
	v := New(100, false)
	v.Set(10, true)
	if v.Select1(0) != -1 || v.Select1(2) != -1 {
		t.Fatal("out-of-range select should return -1")
	}
	if v.Select1(1) != 10 {
		t.Fatalf("Select1(1)=%d, want 10", v.Select1(1))
	}
}

func TestSetIdempotent(t *testing.T) {
	v := New(64, true)
	v.Set(3, false)
	v.Set(3, false)
	if v.Ones() != 63 {
		t.Fatalf("Ones=%d after double clear, want 63", v.Ones())
	}
	v.Set(3, true)
	v.Set(3, true)
	if v.Ones() != 64 {
		t.Fatalf("Ones=%d after double set, want 64", v.Ones())
	}
}

func TestCountClamping(t *testing.T) {
	v := New(10, true)
	if v.Count1(-5, 100) != 10 {
		t.Fatal("clamped count wrong")
	}
	if v.Count1(7, 3) != 0 {
		t.Fatal("inverted range should count 0")
	}
}

func TestQuickRankSelectInverse(t *testing.T) {
	f := func(seed int64, nRaw uint16) bool {
		n := int(nRaw)%5000 + 1
		rng := rand.New(rand.NewSource(seed))
		v := New(n, false)
		for i := 0; i < n/2; i++ {
			v.Set(rng.Intn(n), rng.Intn(2) == 0)
		}
		for k := 1; k <= v.Ones(); k += 1 + v.Ones()/31 {
			pos := v.Select1(k)
			if pos < 0 || !v.Get(pos) || v.Rank1(pos) != k-1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRank1(b *testing.B) {
	v := New(1<<20, true)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1<<16; i++ {
		v.Set(rng.Intn(1<<20), false)
	}
	idx := make([]int, 4096)
	for i := range idx {
		idx[i] = rng.Intn(1 << 20)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Rank1(idx[i&4095])
	}
}

func BenchmarkSet(b *testing.B) {
	v := New(1<<20, true)
	rng := rand.New(rand.NewSource(2))
	idx := make([]int, 4096)
	for i := range idx {
		idx[i] = rng.Intn(1 << 20)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Set(idx[i&4095], i&1 == 0)
	}
}
