// Package dynbits implements a fixed-length bit vector that supports bit
// flips together with O(log n) Rank1 and Select1 queries.
//
// It substitutes for the dynamic bit vector of Navarro and Sadakane (ACM
// TALG 2014) used in Theorem 1 of the paper to count undeleted suffixes in
// a suffix-array range: there the vector length is fixed at index-build
// time and bits only change value (lazy deletion clears them), which is
// exactly the operation set provided here. Rank and update both cost
// O(log n) via a Fenwick (binary indexed) tree over 64-bit word popcounts,
// matching the O(log n / log log n)-class bound shape of the paper's
// citation within a log log n factor that the experiments treat as part of
// the counting constant.
package dynbits

import (
	"fmt"
	"math/bits"
)

// Vector is a fixed-length bit vector with flips and logarithmic rank.
type Vector struct {
	n     int
	words []uint64
	fen   []int32 // Fenwick tree over word popcounts, 1-based
	ones  int
}

// New creates a vector of n bits, all set if initial is true.
func New(n int, initial bool) *Vector {
	if n < 0 {
		panic("dynbits: negative length")
	}
	nw := (n + 63) / 64
	v := &Vector{n: n, words: make([]uint64, nw), fen: make([]int32, nw+1)}
	if initial {
		for i := range v.words {
			v.words[i] = ^uint64(0)
		}
		if rem := n % 64; rem != 0 {
			v.words[nw-1] = 1<<uint(rem) - 1
		}
		for i := 0; i < nw; i++ {
			v.fenAdd(i, int32(bits.OnesCount64(v.words[i])))
		}
		v.ones = n
	}
	return v
}

// Len reports the number of bits.
func (v *Vector) Len() int { return v.n }

// Ones reports the number of set bits.
func (v *Vector) Ones() int { return v.ones }

// Get reports bit i.
func (v *Vector) Get(i int) bool {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("dynbits: Get(%d) out of range [0,%d)", i, v.n))
	}
	return v.words[i>>6]&(1<<uint(i&63)) != 0
}

// Set sets bit i to b. Cost O(log n) when the bit changes.
func (v *Vector) Set(i int, b bool) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("dynbits: Set(%d) out of range [0,%d)", i, v.n))
	}
	w, off := i>>6, uint(i&63)
	cur := v.words[w]&(1<<off) != 0
	if cur == b {
		return
	}
	if b {
		v.words[w] |= 1 << off
		v.fenAdd(w, 1)
		v.ones++
	} else {
		v.words[w] &^= 1 << off
		v.fenAdd(w, -1)
		v.ones--
	}
}

// Rank1 returns the number of set bits in [0, i). i may equal Len().
func (v *Vector) Rank1(i int) int {
	if i < 0 || i > v.n {
		panic(fmt.Sprintf("dynbits: Rank1(%d) out of range [0,%d]", i, v.n))
	}
	w := i >> 6
	r := v.fenSum(w)
	if rem := uint(i & 63); rem != 0 {
		r += bits.OnesCount64(v.words[w] & (1<<rem - 1))
	}
	return r
}

// Rank0 returns the number of clear bits in [0, i).
func (v *Vector) Rank0(i int) int { return i - v.Rank1(i) }

// Count1 returns the number of set bits in [s, e] (inclusive, clamped).
func (v *Vector) Count1(s, e int) int {
	if s < 0 {
		s = 0
	}
	if e >= v.n {
		e = v.n - 1
	}
	if s > e {
		return 0
	}
	return v.Rank1(e+1) - v.Rank1(s)
}

// Select1 returns the position of the k-th set bit (1-based), or -1 if
// there are fewer than k set bits. Cost O(log n).
func (v *Vector) Select1(k int) int {
	if k < 1 || k > v.ones {
		return -1
	}
	// Descend the Fenwick tree.
	pos := 0
	rem := int32(k)
	logn := bits.Len(uint(len(v.fen)))
	for step := 1 << uint(logn); step > 0; step >>= 1 {
		next := pos + step
		if next < len(v.fen) && v.fen[next] < rem {
			rem -= v.fen[next]
			pos = next
		}
	}
	// pos is the index of the word containing the target (0-based).
	w := v.words[pos]
	for {
		c := int32(bits.OnesCount64(w))
		if rem <= c {
			break
		}
		// Should not happen if fen is consistent.
		panic("dynbits: select descent inconsistent")
	}
	return pos<<6 + selectInWord(w, int(rem))
}

func (v *Vector) fenAdd(word int, delta int32) {
	for i := word + 1; i < len(v.fen); i += i & (-i) {
		v.fen[i] += delta
	}
}

func (v *Vector) fenSum(words int) int {
	s := 0
	for i := words; i > 0; i -= i & (-i) {
		s += int(v.fen[i])
	}
	return s
}

// SizeBits estimates the memory footprint in bits.
func (v *Vector) SizeBits() int64 {
	return int64(len(v.words))*64 + int64(len(v.fen))*32
}

func selectInWord(w uint64, k int) int {
	for j := 0; j < 64; j++ {
		if w&(1<<uint(j)) != 0 {
			k--
			if k == 0 {
				return j
			}
		}
	}
	panic("dynbits: selectInWord: not enough set bits")
}
