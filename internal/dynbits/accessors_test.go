package dynbits

import "testing"

func TestAccessorsAndRank0(t *testing.T) {
	v := New(100, true)
	if v.Len() != 100 || v.Ones() != 100 {
		t.Fatalf("Len=%d Ones=%d", v.Len(), v.Ones())
	}
	v.Set(10, false)
	v.Set(20, false)
	if !v.Get(0) || v.Get(10) {
		t.Fatal("Get wrong")
	}
	if got := v.Rank0(21); got != 2 {
		t.Fatalf("Rank0(21) = %d", got)
	}
	if got := v.Rank0(10); got != 0 {
		t.Fatalf("Rank0(10) = %d", got)
	}
	if v.SizeBits() <= 0 {
		t.Fatal("SizeBits not positive")
	}
	zeroInit := New(64, false)
	if zeroInit.Ones() != 0 {
		t.Fatal("zero-initialized vector has ones")
	}
	zeroInit.Set(63, true)
	if zeroInit.Rank1(64) != 1 || zeroInit.Select1(1) != 63 {
		t.Fatal("boundary bit mishandled")
	}
}
