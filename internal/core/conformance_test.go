package core

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"dyncoll/internal/doc"
	"dyncoll/internal/textgen"
)

// variant describes one dynamized-collection configuration under test.
type variant struct {
	name string
	mk   func() dynamic
}

func variants() []variant {
	return []variant{
		{"T1/fm", func() dynamic {
			return NewAmortized(Options{Builder: fmBuilder})
		}},
		{"T1/fm/counting", func() dynamic {
			return NewAmortized(Options{Builder: fmBuilder, Counting: true})
		}},
		{"T1/sa", func() dynamic {
			return NewAmortized(Options{Builder: saBuilder})
		}},
		{"T3/fm", func() dynamic {
			return NewAmortized(Options{Builder: fmBuilder, Ratio2: true})
		}},
		{"T2/fm/inline", func() dynamic {
			return NewWorstCase(Options{Builder: fmBuilder, Inline: true})
		}},
		{"T2/fm/background", func() dynamic {
			return NewWorstCase(Options{Builder: fmBuilder})
		}},
		{"T2/fm/counting", func() dynamic {
			return NewWorstCase(Options{Builder: fmBuilder, Inline: true, Counting: true})
		}},
		{"T2/sa", func() dynamic {
			return NewWorstCase(Options{Builder: saBuilder, Inline: true})
		}},
		{"T1/csa", func() dynamic {
			return NewAmortized(Options{Builder: csaBuilder})
		}},
		{"T2/csa", func() dynamic {
			return NewWorstCase(Options{Builder: csaBuilder, Inline: true})
		}},
	}
}

// quiesce brings background machinery to rest so layout-sensitive checks
// are deterministic.
func quiesce(d dynamic) {
	if w, ok := d.(*WorstCase); ok {
		w.WaitIdle()
	}
}

func TestConformanceRandomOps(t *testing.T) {
	for _, v := range variants() {
		t.Run(v.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(1234))
			gen := textgen.NewCollection(textgen.CollectionOptions{
				Sigma: 8, MinLen: 4, MaxLen: 200, Seed: 77,
			})
			d := v.mk()
			m := newModel()
			var live []uint64

			checkQueries := func() {
				ps := [][]byte{
					nil,
					{1},
					{byte(rng.Intn(8) + 1), byte(rng.Intn(8) + 1)},
					{byte(rng.Intn(8) + 1), byte(rng.Intn(8) + 1), byte(rng.Intn(8) + 1)},
				}
				// Also plant a pattern from a live document, if any.
				if len(live) > 0 {
					data := m.docs[live[rng.Intn(len(live))]]
					if len(data) >= 3 {
						off := rng.Intn(len(data) - 2)
						ps = append(ps, data[off:off+3])
					}
				}
				for _, p := range ps {
					got := d.Find(p)
					want := m.find(p)
					if !sameOccs(got, want) {
						t.Fatalf("Find(%v): got %d occurrences, want %d", p, len(got), len(want))
					}
					if c := d.Count(p); c != len(want) {
						t.Fatalf("Count(%v) = %d, want %d", p, c, len(want))
					}
				}
			}

			for step := 0; step < 400; step++ {
				switch {
				case len(live) == 0 || rng.Float64() < 0.65:
					nd := gen.NextDoc()
					d.Insert(nd)
					m.insert(nd)
					live = append(live, nd.ID)
				default:
					i := rng.Intn(len(live))
					id := live[i]
					live = append(live[:i], live[i+1:]...)
					if !d.Delete(id) {
						t.Fatalf("Delete(%d) returned false for live doc", id)
					}
					m.delete(id)
				}
				if d.Len() != m.symbols() {
					t.Fatalf("step %d: Len %d, want %d", step, d.Len(), m.symbols())
				}
				if d.DocCount() != len(m.docs) {
					t.Fatalf("step %d: DocCount %d, want %d", step, d.DocCount(), len(m.docs))
				}
				if step%25 == 0 {
					checkQueries()
				}
			}
			quiesce(d)
			checkQueries()

			// Extract and DocLen on every live document.
			for id, data := range m.docs {
				got, ok := d.Extract(id, 0, len(data))
				if !ok || string(got) != string(data) {
					t.Fatalf("Extract(%d) mismatch", id)
				}
				if n, ok := d.DocLen(id); !ok || n != len(data) {
					t.Fatalf("DocLen(%d) = %d,%v want %d", id, n, ok, len(data))
				}
				if !d.Has(id) {
					t.Fatalf("Has(%d) = false for live doc", id)
				}
			}
		})
	}
}

func TestDeleteUnknown(t *testing.T) {
	for _, v := range variants() {
		t.Run(v.name, func(t *testing.T) {
			d := v.mk()
			if d.Delete(42) {
				t.Fatal("Delete on empty collection returned true")
			}
			d.Insert(doc.Doc{ID: 1, Data: []byte{1, 2, 3}})
			if d.Delete(42) {
				t.Fatal("Delete of unknown ID returned true")
			}
			if !d.Delete(1) {
				t.Fatal("Delete of live ID returned false")
			}
			if d.Delete(1) {
				t.Fatal("double Delete returned true")
			}
			if d.Len() != 0 || d.DocCount() != 0 {
				t.Fatalf("collection not empty after full deletion: len=%d docs=%d", d.Len(), d.DocCount())
			}
		})
	}
}

func TestEmptyCollectionQueries(t *testing.T) {
	for _, v := range variants() {
		t.Run(v.name, func(t *testing.T) {
			d := v.mk()
			if occs := d.Find([]byte{1, 2}); len(occs) != 0 {
				t.Fatalf("Find on empty collection returned %d occurrences", len(occs))
			}
			if c := d.Count(nil); c != 0 {
				t.Fatalf("Count(nil) on empty collection = %d", c)
			}
			if _, ok := d.Extract(1, 0, 1); ok {
				t.Fatal("Extract on empty collection returned ok")
			}
			if _, ok := d.DocLen(1); ok {
				t.Fatal("DocLen on empty collection returned ok")
			}
			if d.Has(1) {
				t.Fatal("Has on empty collection returned true")
			}
		})
	}
}

func TestSingleSymbolAlphabet(t *testing.T) {
	// σ=1 documents (all bytes identical) stress suffix-array corner cases:
	// maximal overlap of occurrences.
	for _, v := range variants() {
		t.Run(v.name, func(t *testing.T) {
			d := v.mk()
			for i := 1; i <= 6; i++ {
				data := make([]byte, 10*i)
				for j := range data {
					data[j] = 7
				}
				d.Insert(doc.Doc{ID: uint64(i), Data: data})
			}
			quiesce(d)
			p := []byte{7, 7, 7}
			want := 0
			for i := 1; i <= 6; i++ {
				want += 10*i - 2
			}
			if got := d.Count(p); got != want {
				t.Fatalf("Count = %d, want %d", got, want)
			}
			d.Delete(3)
			want -= 28
			quiesce(d)
			if got := d.Count(p); got != want {
				t.Fatalf("Count after delete = %d, want %d", got, want)
			}
		})
	}
}

func TestFindFuncEarlyStop(t *testing.T) {
	for _, v := range variants() {
		t.Run(v.name, func(t *testing.T) {
			d := v.mk()
			for i := 1; i <= 20; i++ {
				d.Insert(doc.Doc{ID: uint64(i), Data: []byte{1, 2, 1, 2, 1}})
			}
			quiesce(d)
			seen := 0
			d.FindFunc([]byte{1, 2}, func(Occurrence) bool {
				seen++
				return seen < 5
			})
			if seen != 5 {
				t.Fatalf("early stop delivered %d occurrences, want 5", seen)
			}
		})
	}
}

func TestManySmallThenOneHuge(t *testing.T) {
	// A document ≥ nf/τ exercises the big-document path of the worst-case
	// transformation (its own top collection, synchronous build).
	for _, v := range variants() {
		t.Run(v.name, func(t *testing.T) {
			gen := textgen.NewCollection(textgen.CollectionOptions{
				Sigma: 4, MinLen: 20, MaxLen: 60, Seed: 5,
			})
			d := v.mk()
			m := newModel()
			for i := 0; i < 60; i++ {
				nd := gen.NextDoc()
				d.Insert(nd)
				m.insert(nd)
			}
			huge := gen.NextDocLen(20_000)
			d.Insert(huge)
			m.insert(huge)
			quiesce(d)

			p := huge.Data[100:106]
			if got, want := d.Count(p), m.count(p); got != want {
				t.Fatalf("Count after huge insert = %d, want %d", got, want)
			}
			if !d.Delete(huge.ID) {
				t.Fatal("deleting huge doc failed")
			}
			m.delete(huge.ID)
			quiesce(d)
			if got, want := d.Count(p), m.count(p); got != want {
				t.Fatalf("Count after huge delete = %d, want %d", got, want)
			}
		})
	}
}

func TestChurnSameDocuments(t *testing.T) {
	// Insert/delete the same payloads repeatedly: stresses purge paths and
	// ownership handover across rebuilds.
	for _, v := range variants() {
		t.Run(v.name, func(t *testing.T) {
			d := v.mk()
			payload := []byte{1, 2, 3, 1, 2, 3, 1, 2}
			id := uint64(0)
			for round := 0; round < 30; round++ {
				var ids []uint64
				for i := 0; i < 10; i++ {
					id++
					d.Insert(doc.Doc{ID: id, Data: payload})
					ids = append(ids, id)
				}
				for _, x := range ids[:5] {
					d.Delete(x)
				}
				want := (d.DocCount()) * 2 // each live doc has 2 non-overlapping "1 2 3"
				if got := d.Count([]byte{1, 2, 3}); got != want {
					t.Fatalf("round %d: Count = %d, want %d", round, got, want)
				}
			}
		})
	}
}

func TestDuplicateInsertErrors(t *testing.T) {
	for _, v := range variants() {
		t.Run(v.name, func(t *testing.T) {
			d := v.mk()
			if err := d.Insert(doc.Doc{ID: 9, Data: []byte{1}}); err != nil {
				t.Fatalf("first insert: %v", err)
			}
			if err := d.Insert(doc.Doc{ID: 9, Data: []byte{2}}); !errors.Is(err, ErrDuplicateID) {
				t.Fatalf("duplicate insert: got %v, want ErrDuplicateID", err)
			}
			// The failed insert must not have clobbered the original.
			if got := d.Count([]byte{1}); got != 1 {
				t.Fatalf("Count after failed insert = %d, want 1", got)
			}
		})
	}
}

func TestZeroByteInsertErrors(t *testing.T) {
	for _, v := range variants() {
		t.Run(v.name, func(t *testing.T) {
			d := v.mk()
			err := d.Insert(doc.Doc{ID: 1, Data: []byte{1, 0, 2}})
			if !errors.Is(err, ErrReservedByte) {
				t.Fatalf("zero-byte payload: got %v, want ErrReservedByte", err)
			}
			if d.DocCount() != 0 {
				t.Fatal("rejected document was inserted")
			}
		})
	}
}

func TestGrowShrinkGrow(t *testing.T) {
	// Size drifting both ways forces global rebuilds / rebalances in both
	// directions (Section A.3).
	for _, v := range variants() {
		t.Run(v.name, func(t *testing.T) {
			gen := textgen.NewCollection(textgen.CollectionOptions{
				Sigma: 8, MinLen: 50, MaxLen: 150, Seed: 13,
			})
			d := v.mk()
			m := newModel()
			var ids []uint64
			grow := func(k int) {
				for i := 0; i < k; i++ {
					nd := gen.NextDoc()
					d.Insert(nd)
					m.insert(nd)
					ids = append(ids, nd.ID)
				}
			}
			shrink := func(k int) {
				for i := 0; i < k && len(ids) > 0; i++ {
					id := ids[len(ids)-1]
					ids = ids[:len(ids)-1]
					d.Delete(id)
					m.delete(id)
				}
			}
			grow(120)
			shrink(110)
			grow(60)
			shrink(55)
			grow(200)
			quiesce(d)
			if d.Len() != m.symbols() {
				t.Fatalf("Len = %d, want %d", d.Len(), m.symbols())
			}
			p := []byte{3, 5}
			if got, want := d.Count(p), m.count(p); got != want {
				t.Fatalf("Count = %d, want %d", got, want)
			}
		})
	}
}

func TestExtractSlices(t *testing.T) {
	for _, v := range variants() {
		t.Run(v.name, func(t *testing.T) {
			d := v.mk()
			const testID = 1 << 40 // outside the generator's ID space
			data := []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
			d.Insert(doc.Doc{ID: testID, Data: data})
			// Push it into a compressed level for the amortized variants.
			gen := textgen.NewCollection(textgen.CollectionOptions{Seed: 3, MinLen: 100, MaxLen: 100})
			for i := 0; i < 50; i++ {
				d.Insert(gen.NextDoc())
			}
			quiesce(d)
			cases := []struct{ off, n int }{
				{0, 10}, {0, 1}, {9, 1}, {3, 4}, {5, 0},
			}
			for _, c := range cases {
				got, ok := d.Extract(testID, c.off, c.n)
				if !ok {
					t.Fatalf("Extract(%d,%d) not ok", c.off, c.n)
				}
				want := data[c.off : c.off+c.n]
				if string(got) != string(want) {
					t.Fatalf("Extract(1,%d,%d) = %v, want %v", c.off, c.n, got, want)
				}
			}
		})
	}
}

// TestPatternLongerThanAnyDoc ensures range-finding degrades gracefully.
func TestPatternLongerThanAnyDoc(t *testing.T) {
	for _, v := range variants() {
		t.Run(v.name, func(t *testing.T) {
			d := v.mk()
			d.Insert(doc.Doc{ID: 1, Data: []byte{1, 2, 3}})
			p := make([]byte, 100)
			for i := range p {
				p[i] = 1
			}
			if occs := d.Find(p); len(occs) != 0 {
				t.Fatalf("Find(long pattern) returned %d occurrences", len(occs))
			}
		})
	}
}

func TestStatsShape(t *testing.T) {
	a := NewAmortized(Options{Builder: fmBuilder})
	gen := textgen.NewCollection(textgen.CollectionOptions{Seed: 1, MinLen: 30, MaxLen: 90})
	for i := 0; i < 200; i++ {
		a.Insert(gen.NextDoc())
	}
	st := a.Stats()
	if st.Levels < 2 {
		t.Fatalf("expected ≥ 2 levels, got %d", st.Levels)
	}
	if len(st.LevelSizes) != len(st.LevelCaps) {
		t.Fatalf("sizes/caps length mismatch: %d vs %d", len(st.LevelSizes), len(st.LevelCaps))
	}
	if st.LevelRebuilds == 0 && st.GlobalRebuilds == 0 {
		t.Fatal("200 insertions should have triggered rebuilds")
	}
	for i, sz := range st.LevelSizes {
		if sz > st.LevelCaps[i] {
			t.Fatalf("level %d size %d exceeds cap %d", i, sz, st.LevelCaps[i])
		}
	}
}

func TestOccurrenceOffsetsRelative(t *testing.T) {
	// The paper requires relative positions: deleting one document must
	// not shift reported offsets in others.
	for _, v := range variants() {
		t.Run(v.name, func(t *testing.T) {
			d := v.mk()
			d.Insert(doc.Doc{ID: 1, Data: []byte{5, 5, 1, 2}})
			d.Insert(doc.Doc{ID: 2, Data: []byte{3, 3, 3, 1, 2}})
			quiesce(d)
			before := d.Find([]byte{1, 2})
			sortOccs(before)
			if len(before) != 2 || before[0] != (Occurrence{1, 2}) || before[1] != (Occurrence{2, 3}) {
				t.Fatalf("unexpected occurrences before delete: %v", before)
			}
			d.Delete(1)
			quiesce(d)
			after := d.Find([]byte{1, 2})
			if len(after) != 1 || after[0] != (Occurrence{2, 3}) {
				t.Fatalf("offset shifted after deletion: %v", after)
			}
		})
	}
}

func TestTauOverride(t *testing.T) {
	a := NewAmortized(Options{Builder: fmBuilder, Tau: 7})
	if a.Tau() != 7 {
		t.Fatalf("Tau() = %d, want 7", a.Tau())
	}
	w := NewWorstCase(Options{Builder: fmBuilder, Tau: 9, Inline: true})
	if w.Tau() != 9 {
		t.Fatalf("Tau() = %d, want 9", w.Tau())
	}
}

func TestSizeBitsPositive(t *testing.T) {
	for _, v := range variants() {
		t.Run(v.name, func(t *testing.T) {
			d := v.mk()
			gen := textgen.NewCollection(textgen.CollectionOptions{Seed: 8})
			for i := 0; i < 30; i++ {
				d.Insert(gen.NextDoc())
			}
			quiesce(d)
			if d.SizeBits() <= 0 {
				t.Fatal("SizeBits must be positive for a non-empty collection")
			}
		})
	}
}

func TestManyPatternLengths(t *testing.T) {
	gen := textgen.NewCollection(textgen.CollectionOptions{
		Sigma: 6, Order: 1, Skew: 0.6, MinLen: 100, MaxLen: 400, Seed: 55,
	})
	docs := gen.GenerateTotal(30_000)
	for _, v := range variants() {
		t.Run(v.name, func(t *testing.T) {
			if testing.Short() {
				t.Skip("short mode")
			}
			d := v.mk()
			m := newModel()
			for _, nd := range docs {
				d.Insert(nd)
				m.insert(nd)
			}
			quiesce(d)
			ps := textgen.NewPatternSampler(docs, 17)
			for _, l := range []int{1, 2, 3, 5, 8, 13, 21, 34} {
				p := ps.Planted(l)
				if got, want := d.Count(p), m.count(p); got != want {
					t.Fatalf("len %d: Count = %d, want %d", l, got, want)
				}
			}
		})
	}
}

func TestWorstCaseConcurrentReads(t *testing.T) {
	// Queries must be correct while background builds are in flight.
	d := NewWorstCase(Options{Builder: fmBuilder})
	m := newModel()
	gen := textgen.NewCollection(textgen.CollectionOptions{
		Sigma: 8, MinLen: 50, MaxLen: 200, Seed: 66,
	})
	for i := 0; i < 300; i++ {
		nd := gen.NextDoc()
		d.Insert(nd)
		m.insert(nd)
		if i%10 == 0 {
			p := nd.Data[:3]
			if got, want := d.Count(p), m.count(p); got != want {
				t.Fatalf("i=%d Count = %d, want %d", i, got, want)
			}
		}
	}
	d.WaitIdle()
	if d.Len() != m.symbols() {
		t.Fatalf("Len = %d, want %d", d.Len(), m.symbols())
	}
}

func TestVariantNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, v := range variants() {
		if seen[v.name] {
			t.Fatalf("duplicate variant name %q", v.name)
		}
		seen[v.name] = true
	}
}

func ExampleAmortized() {
	a := NewAmortized(Options{Builder: fmBuilder})
	a.Insert(doc.Doc{ID: 1, Data: []byte("abracadabra")})
	a.Insert(doc.Doc{ID: 2, Data: []byte("cadabra")})
	fmt.Println(a.Count([]byte("abra")))
	a.Delete(2)
	fmt.Println(a.Count([]byte("abra")))
	// Output:
	// 3
	// 2
}
