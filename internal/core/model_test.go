package core

import (
	"bytes"
	"sort"

	"dyncoll/internal/doc"
	"dyncoll/internal/fmindex"
)

// model is the brute-force reference implementation every dynamized
// collection is checked against: a map of live documents queried by
// scanning.
type model struct {
	docs map[uint64][]byte
}

func newModel() *model { return &model{docs: make(map[uint64][]byte)} }

func (m *model) insert(d doc.Doc) {
	buf := make([]byte, len(d.Data))
	copy(buf, d.Data)
	m.docs[d.ID] = buf
}

func (m *model) delete(id uint64) bool {
	if _, ok := m.docs[id]; !ok {
		return false
	}
	delete(m.docs, id)
	return true
}

func (m *model) find(pattern []byte) []Occurrence {
	var out []Occurrence
	for id, data := range m.docs {
		if len(pattern) == 0 {
			for off := range data {
				out = append(out, Occurrence{DocID: id, Off: off})
			}
			continue
		}
		for off := 0; off+len(pattern) <= len(data); off++ {
			if bytes.Equal(data[off:off+len(pattern)], pattern) {
				out = append(out, Occurrence{DocID: id, Off: off})
			}
		}
	}
	return out
}

func (m *model) count(pattern []byte) int { return len(m.find(pattern)) }

func (m *model) symbols() int {
	n := 0
	for _, d := range m.docs {
		n += len(d)
	}
	return n
}

// sortOccs orders occurrences canonically for comparison.
func sortOccs(occs []Occurrence) {
	sort.Slice(occs, func(i, j int) bool {
		if occs[i].DocID != occs[j].DocID {
			return occs[i].DocID < occs[j].DocID
		}
		return occs[i].Off < occs[j].Off
	})
}

func sameOccs(a, b []Occurrence) bool {
	if len(a) != len(b) {
		return false
	}
	sortOccs(a)
	sortOccs(b)
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// dynamic is the interface shared by Amortized and WorstCase, letting the
// conformance suite run over every transformation.
type dynamic interface {
	Insert(doc.Doc) error
	InsertBatch([]doc.Doc) error
	DeleteBatch([]uint64) int
	Delete(id uint64) bool
	Has(id uint64) bool
	Find(pattern []byte) []Occurrence
	FindFunc(pattern []byte, fn func(Occurrence) bool)
	Count(pattern []byte) int
	Extract(id uint64, off, length int) ([]byte, bool)
	DocLen(id uint64) (int, bool)
	Len() int
	DocCount() int
	SizeBits() int64
}

var (
	_ dynamic = (*Amortized)(nil)
	_ dynamic = (*WorstCase)(nil)
)

// fmBuilder is the default static-index builder for tests: an FM-index
// with a small sample rate so locate paths are exercised aggressively.
func fmBuilder(docs []doc.Doc) StaticIndex {
	return fmindex.Build(docs, fmindex.Options{SampleRate: 4})
}

// saBuilder uses the plain suffix-array index (the O(n log σ)-bit
// Grossi–Vitter stand-in), checking builder-independence of the
// framework.
func saBuilder(docs []doc.Doc) StaticIndex {
	return fmindex.BuildSA(docs)
}

// csaBuilder uses the Ψ-based compressed suffix array (Sadakane
// flavour), a third index family with no LF support — exercising the
// SemiDynamic deletion fallback path.
func csaBuilder(docs []doc.Doc) StaticIndex {
	return fmindex.BuildCSA(docs, fmindex.Options{SampleRate: 4})
}
