package core

import (
	"errors"
	"testing"

	"dyncoll/internal/doc"
	"dyncoll/internal/textgen"
)

// TestInsertBatchParity checks that a batch ingest yields exactly the
// same query results as looped single inserts, across transformations.
func TestInsertBatchParity(t *testing.T) {
	for _, v := range variants() {
		t.Run(v.name, func(t *testing.T) {
			gen := textgen.NewCollection(textgen.CollectionOptions{
				Sigma: 6, MinLen: 8, MaxLen: 120, Seed: 21,
			})
			var docs []doc.Doc
			for i := 0; i < 150; i++ {
				docs = append(docs, gen.NextDoc())
			}

			batch := v.mk()
			if err := batch.InsertBatch(docs); err != nil {
				t.Fatalf("InsertBatch: %v", err)
			}
			looped := v.mk()
			for _, d := range docs {
				if err := looped.Insert(d); err != nil {
					t.Fatalf("Insert: %v", err)
				}
			}
			quiesce(batch)
			quiesce(looped)

			if batch.Len() != looped.Len() || batch.DocCount() != looped.DocCount() {
				t.Fatalf("Len/DocCount diverge: %d/%d vs %d/%d",
					batch.Len(), batch.DocCount(), looped.Len(), looped.DocCount())
			}
			for _, p := range [][]byte{{1}, {2, 3}, {1, 2, 3}, {4, 4}, nil} {
				if b, l := batch.Count(p), looped.Count(p); b != l {
					t.Fatalf("Count(%v): batch %d, looped %d", p, b, l)
				}
			}
			got := batch.Find([]byte{1, 2})
			want := looped.Find([]byte{1, 2})
			if !sameOccs(got, want) {
				t.Fatalf("Find diverges: %d vs %d occurrences", len(got), len(want))
			}
		})
	}
}

// TestInsertBatchAtomicValidation checks that an invalid batch inserts
// nothing at all.
func TestInsertBatchAtomicValidation(t *testing.T) {
	for _, v := range variants() {
		t.Run(v.name, func(t *testing.T) {
			d := v.mk()
			if err := d.Insert(doc.Doc{ID: 7, Data: []byte{1, 2}}); err != nil {
				t.Fatal(err)
			}
			batches := []struct {
				docs []doc.Doc
				want error
			}{
				{[]doc.Doc{{ID: 8, Data: []byte{3}}, {ID: 7, Data: []byte{4}}}, ErrDuplicateID},
				{[]doc.Doc{{ID: 9, Data: []byte{5}}, {ID: 9, Data: []byte{6}}}, ErrDuplicateID},
				{[]doc.Doc{{ID: 10, Data: []byte{7}}, {ID: 11, Data: []byte{0}}}, ErrReservedByte},
			}
			for _, b := range batches {
				if err := d.InsertBatch(b.docs); !errors.Is(err, b.want) {
					t.Fatalf("InsertBatch(%v): got %v, want %v", b.docs, err, b.want)
				}
			}
			quiesce(d)
			if d.DocCount() != 1 || d.Len() != 2 {
				t.Fatalf("failed batches leaked documents: DocCount=%d Len=%d",
					d.DocCount(), d.Len())
			}
		})
	}
}

// TestInsertBatchSingleCascade checks the batch contract: one ingest
// triggers at most one ladder rebuild cascade on the amortized
// transformation, where looped inserts of the same data trigger many.
func TestInsertBatchSingleCascade(t *testing.T) {
	gen := textgen.NewCollection(textgen.CollectionOptions{
		Sigma: 6, MinLen: 64, MaxLen: 256, Seed: 22,
	})
	var docs []doc.Doc
	for i := 0; i < 200; i++ {
		docs = append(docs, gen.NextDoc())
	}

	batch := NewAmortized(Options{Builder: fmBuilder})
	if err := batch.InsertBatch(docs); err != nil {
		t.Fatal(err)
	}
	bst := batch.Stats()
	// One placement build (level merge or global rebuild), possibly
	// followed by the post-ingest global-rebuild check firing once.
	if builds := bst.LevelRebuilds + bst.GlobalRebuilds; builds > 2 {
		t.Fatalf("batch ingest ran %d rebuilds (level %d + global %d), want ≤ 2",
			builds, bst.LevelRebuilds, bst.GlobalRebuilds)
	}

	looped := NewAmortized(Options{Builder: fmBuilder})
	for _, d := range docs {
		if err := looped.Insert(d); err != nil {
			t.Fatal(err)
		}
	}
	lst := looped.Stats()
	if lb := lst.LevelRebuilds + lst.GlobalRebuilds; lb <= bst.LevelRebuilds+bst.GlobalRebuilds {
		t.Fatalf("looped inserts ran %d rebuilds, expected more than batch's %d",
			lb, bst.LevelRebuilds+bst.GlobalRebuilds)
	}
}

// TestDeleteBatch checks counts, query results, and that missing IDs are
// skipped rather than failing the batch.
func TestDeleteBatch(t *testing.T) {
	for _, v := range variants() {
		t.Run(v.name, func(t *testing.T) {
			d := v.mk()
			var docs []doc.Doc
			for i := uint64(1); i <= 60; i++ {
				docs = append(docs, doc.Doc{ID: i, Data: []byte{1, 2, 3, byte(i%5 + 1)}})
			}
			if err := d.InsertBatch(docs); err != nil {
				t.Fatal(err)
			}
			quiesce(d)

			ids := []uint64{2, 4, 6, 999, 4} // 999 missing, 4 repeated
			if n := d.DeleteBatch(ids); n != 3 {
				t.Fatalf("DeleteBatch removed %d, want 3", n)
			}
			quiesce(d)
			if d.DocCount() != 57 {
				t.Fatalf("DocCount = %d, want 57", d.DocCount())
			}
			if got := d.Count([]byte{1, 2, 3}); got != 57 {
				t.Fatalf("Count = %d, want 57", got)
			}
			if n := d.DeleteBatch(nil); n != 0 {
				t.Fatalf("empty DeleteBatch removed %d", n)
			}
		})
	}
}
