package core

import (
	"dyncoll/internal/doc"
	"dyncoll/internal/suffixtree"
)

// c0store adapts the uncompressed generalized suffix tree (the paper's C0
// sub-collection, Section A.2) to the engine's Mutable store contract,
// with document weights measured in payload symbols.
type c0store struct {
	t *suffixtree.Tree
}

func newC0() *c0store { return &c0store{t: suffixtree.New()} }

// Insert adds a document (engine.Mutable).
func (c *c0store) Insert(d doc.Doc) { c.t.Insert(d) }

// Delete removes a document, reporting its symbol weight (engine.Store).
func (c *c0store) Delete(id uint64) (int, bool) {
	n, ok := c.t.DocLen(id)
	if !ok {
		return 0, false
	}
	c.t.Delete(id)
	return n, true
}

// LiveKeys lists the live document IDs (engine.Store).
func (c *c0store) LiveKeys() []uint64 { return c.t.LiveIDs() }

// LiveItems materializes the live documents (engine.Store).
func (c *c0store) LiveItems() []doc.Doc { return c.t.LiveDocs() }

// LiveWeight and DeadWeight report live/deleted payload symbols
// (engine.Store).
func (c *c0store) LiveWeight() int { return c.t.Len() }
func (c *c0store) DeadWeight() int { return c.t.DeletedSymbols() }

// SizeBits estimates the footprint (engine.Store).
func (c *c0store) SizeBits() int64 { return c.t.SizeBits() }

func (c *c0store) findFunc(pattern []byte, fn func(Occurrence) bool) {
	c.t.FindFunc(pattern, func(o suffixtree.Occurrence) bool {
		return fn(Occurrence{DocID: o.DocID, Off: o.Off})
	})
}

func (c *c0store) count(pattern []byte) int { return c.t.Count(pattern) }

func (c *c0store) extract(id uint64, off, length int) ([]byte, bool) {
	return c.t.Extract(id, off, length)
}

func (c *c0store) docLen(id uint64) (int, bool) { return c.t.DocLen(id) }
