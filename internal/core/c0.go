package core

import (
	"dyncoll/internal/doc"
	"dyncoll/internal/suffixtree"
)

// c0store adapts the uncompressed generalized suffix tree (the paper's C0
// sub-collection, Section A.2) to the internal store interface.
type c0store struct {
	t *suffixtree.Tree
}

func newC0() *c0store { return &c0store{t: suffixtree.New()} }

func (c *c0store) insert(d doc.Doc) { c.t.Insert(d) }

func (c *c0store) findFunc(pattern []byte, fn func(Occurrence) bool) {
	c.t.FindFunc(pattern, func(o suffixtree.Occurrence) bool {
		return fn(Occurrence{DocID: o.DocID, Off: o.Off})
	})
}

func (c *c0store) count(pattern []byte) int { return c.t.Count(pattern) }

func (c *c0store) extract(id uint64, off, length int) ([]byte, bool) {
	return c.t.Extract(id, off, length)
}

func (c *c0store) docLen(id uint64) (int, bool) { return c.t.DocLen(id) }

func (c *c0store) delete(id uint64) bool { return c.t.Delete(id) }

func (c *c0store) has(id uint64) bool { return c.t.Has(id) }

func (c *c0store) liveDocs() []doc.Doc { return c.t.LiveDocs() }

func (c *c0store) liveSymbols() int    { return c.t.Len() }
func (c *c0store) deletedSymbols() int { return c.t.DeletedSymbols() }

func (c *c0store) sizeBits() int64 { return c.t.SizeBits() }
