package core

import (
	"sync"
	"testing"

	"dyncoll/internal/textgen"
)

// TestWorstCaseParallelClients hammers one WorstCase collection from
// several goroutines — writers churning documents, readers issuing
// queries — while background rebuilds run. Run under -race in CI; the
// assertions here check self-consistency (exact counts are checked by
// the single-threaded conformance suite).
func TestWorstCaseParallelClients(t *testing.T) {
	w := NewWorstCase(Options{Builder: fmBuilder})

	const writers = 3
	const docsPerWriter = 120

	var writerWG sync.WaitGroup
	for wr := 0; wr < writers; wr++ {
		writerWG.Add(1)
		go func(wr int) {
			defer writerWG.Done()
			gen := textgen.NewCollection(textgen.CollectionOptions{
				Sigma: 8, MinLen: 50, MaxLen: 300, Seed: int64(1000 + wr),
			})
			var mine []uint64
			for i := 0; i < docsPerWriter; i++ {
				d := gen.NextDoc()
				d.ID = uint64(wr)<<32 | d.ID // disjoint ID spaces
				w.Insert(d)
				mine = append(mine, d.ID)
				if i%3 == 2 {
					if !w.Delete(mine[0]) {
						t.Error("delete of own live doc failed")
						return
					}
					mine = mine[1:]
				}
			}
		}(wr)
	}

	stop := make(chan struct{})
	var readerWG sync.WaitGroup
	for r := 0; r < 2; r++ {
		readerWG.Add(1)
		go func(r int) {
			defer readerWG.Done()
			p := []byte{byte(r + 1), byte(r + 2)}
			for {
				select {
				case <-stop:
					return
				default:
				}
				if w.Count(p) < 0 {
					t.Error("negative count")
					return
				}
				found := 0
				w.FindFunc(p, func(Occurrence) bool {
					found++
					return found < 100
				})
			}
		}(r)
	}

	writerWG.Wait()
	close(stop)
	readerWG.Wait()
	w.WaitIdle()

	deletesPerWriter := docsPerWriter / 3
	want := writers * (docsPerWriter - deletesPerWriter)
	if got := w.DocCount(); got != want {
		t.Fatalf("DocCount = %d, want %d", got, want)
	}
	if w.Len() <= 0 {
		t.Fatal("empty collection after parallel churn")
	}
}
