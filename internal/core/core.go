// Package core implements the paper's primary contribution: a general
// framework that converts static compressed indexes into dynamic indexes
// for a changing document collection.
//
// The framework is index-agnostic. Any type satisfying StaticIndex — a
// "(u(n), w(n))-constructible" index in the paper's terms, answering
// range-finding, locating, extraction and suffix-rank queries — can be
// dynamized:
//
//   - Amortized (Transformation 1): sub-collections C0 ⊂ C1 ⊂ … ⊂ Cr of
//     geometrically growing capacity; C0 is an uncompressed generalized
//     suffix tree, C1…Cr are semi-dynamic (deletion-only) static indexes
//     rebuilt on cascade. Updates cost O(u(n)·logᵋ n) amortized per
//     symbol.
//   - WorstCase (Transformation 2): additionally keeps locked copies of
//     sub-collections while replacements are built in the background, plus
//     top collections purged largest-first (Dietz–Sleator), bounding the
//     per-operation work.
//   - Amortized with Ratio 2 (Transformation 3): O(log log n) levels for
//     cheaper insertions at an O(log log n) query-fan-out factor.
//
// Deletions everywhere are lazy (Section 2): a deletion bitmap B over the
// suffix array plus the Lemma 3 reporting structure V filter matches in
// O(1) per reported occurrence, and a structure is purged once a 1/τ
// fraction of it is dead.
//
// Since the engine refactor, this package holds only the document
// payload — the C0 suffix-tree adapter, the semi-dynamic wrapper, and
// the query fan-out — while the transformation machinery itself (the
// capacity ladder, cascades, background builds, top sweeps, rebalance)
// lives once, generically, in internal/engine and is shared with the
// binary-relation payload (internal/binrel).
package core

import (
	"errors"
	"fmt"

	"dyncoll/internal/doc"
)

// Typed errors returned by the update operations. The facade re-exports
// them; callers match with errors.Is.
var (
	// ErrDuplicateID reports an insert whose document ID is already live.
	ErrDuplicateID = errors.New("duplicate document ID")
	// ErrReservedByte reports a payload containing the reserved separator
	// byte 0x00.
	ErrReservedByte = errors.New("payload contains the reserved byte 0x00")
	// ErrNotFound reports an operation on an ID that is not live.
	ErrNotFound = errors.New("not found")
)

// StaticIndex is the contract a static compressed index must satisfy to
// be dynamized ("(u(n), w(n))-constructible" indexes queried by
// range-finding + locating, with computable suffix ranks; Section 2).
// Both fmindex.Index and fmindex.SAIndex satisfy it.
type StaticIndex interface {
	// SALen is the number of suffix-array rows (the universe of the
	// deletion bitmap).
	SALen() int
	// SymbolCount is the total number of document payload symbols.
	SymbolCount() int
	// DocCount is the number of documents the index was built over.
	DocCount() int
	// DocID returns the application ID of the i-th document.
	DocID(i int) uint64
	// DocLen returns the payload length of the i-th document.
	DocLen(i int) int
	// Range returns the half-open suffix-array interval of rows whose
	// suffixes start with pattern (trange).
	Range(pattern []byte) (lo, hi int)
	// Locate maps a suffix-array row to (document index, offset)
	// (tlocate).
	Locate(row int) (docIdx, off int)
	// SuffixRank returns the suffix-array row of the suffix starting at
	// (docIdx, off); off may equal DocLen(docIdx), addressing the
	// document's separator (tSA).
	SuffixRank(docIdx, off int) int
	// Extract returns length payload symbols of docIdx starting at off
	// (textract).
	Extract(docIdx, off, length int) []byte
	// SizeBits estimates the index footprint for space accounting.
	SizeBits() int64
}

// Builder constructs a StaticIndex over a document set. It corresponds to
// the paper's construction algorithm with cost O(n·u(n)) time and
// O(n·w(n)) workspace.
type Builder func(docs []doc.Doc) StaticIndex

// Occurrence is one pattern match.
type Occurrence struct {
	DocID uint64 // application ID of the matching document
	Off   int    // offset of the match within the document payload
}

// docStore is the query surface shared by the C0 suffix tree and the
// semi-dynamic wrapper. The generic engine hands sub-collections back as
// opaque stores; the adapter narrows them here to run document queries.
type docStore interface {
	findFunc(pattern []byte, fn func(Occurrence) bool)
	count(pattern []byte) int
	extract(id uint64, off, length int) ([]byte, bool)
	docLen(id uint64) (int, bool)
}

// Options configure a dynamized collection.
type Options struct {
	// Builder constructs the static index for compressed sub-collections.
	// Required.
	Builder Builder

	// Tau is the space/overhead trade-off parameter τ: each semi-dynamic
	// structure is purged once a 1/τ fraction of its symbols is deleted,
	// and the Lemma 3 bitmap spends O(log τ/τ) bits per suffix. 0 means
	// automatic: τ = max(2, log n / log log n) recomputed at global
	// rebuilds.
	Tau int

	// Epsilon is the geometric growth exponent ε of sub-collection
	// capacities (max_i = 2·(n/log²n)·log^{εi} n). It trades insertion
	// cost O(u·logᵋ n) against the number of levels ⌈2/ε⌉.
	// Default 0.5.
	Epsilon float64

	// Ratio2 selects Transformation 3's level layout: capacities grow by
	// a factor of 2 per level (O(log log n) levels), making insertions
	// cheaper and queries fan out over more sub-collections.
	Ratio2 bool

	// Counting attaches the Theorem 1 structures so Count runs in
	// O(tcount) instead of enumerating occurrences. It increases update
	// cost by O(log n / log log n) per symbol.
	Counting bool

	// MinCapacity bounds max_0 from below so small collections behave
	// sensibly (the asymptotic formulas degenerate for tiny n).
	// Default 64.
	MinCapacity int

	// Inline forces background builds of the worst-case transformation
	// to complete synchronously; used by deterministic tests.
	Inline bool
}

func (o Options) withDefaults() Options {
	if o.Builder == nil {
		panic("core: Options.Builder is required")
	}
	if o.Epsilon <= 0 || o.Epsilon > 1 {
		o.Epsilon = 0.5
	}
	if o.MinCapacity <= 0 {
		o.MinCapacity = 64
	}
	if o.Tau < 0 {
		panic(fmt.Sprintf("core: negative Tau %d", o.Tau))
	}
	return o
}
