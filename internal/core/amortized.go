package core

import (
	"fmt"
	"math"

	"dyncoll/internal/doc"
)

// Amortized is Transformation 1 (and, with Options.Ratio2, Transformation
// 3): a fully-dynamic compressed document index with amortized update
// bounds.
//
// The collection is split into sub-collections C0, C1, …, Cr whose
// capacities max_i grow geometrically. C0 is an uncompressed generalized
// suffix tree; every Ci (i ≥ 1) is a semi-dynamic static index. A new
// document goes to the first Cj that can absorb it together with all
// smaller sub-collections, which are then merged into Cj and rebuilt.
// When no level fits, a global rebuild moves everything into the last
// level and re-derives the capacity schedule from the new size.
type Amortized struct {
	opts Options

	c0     *c0store
	levels []*SemiDynamic // levels[0] unused; levels[j] is Cj for j ≥ 1
	maxes  []int          // maxes[j] = max_j under the current nf

	owner map[uint64]store // live doc ID → holding sub-collection

	nf  int // collection size at the last global rebuild
	tau int // τ in effect since the last global rebuild

	// stats
	rebuilds       int // level rebuilds
	globalRebuilds int
	purges         int // deletion-triggered level purges
}

// Stats reports internal rebuild counters (used by invariant tests and
// the figure traces).
type Stats struct {
	LevelRebuilds  int
	GlobalRebuilds int
	Purges         int
	Levels         int
	LevelSizes     []int // live symbols per level, index 0 = C0
	LevelCaps      []int // max_i per level, index 0 = max_0
}

// NewAmortized creates an empty collection with amortized update bounds.
func NewAmortized(opts Options) *Amortized {
	opts = opts.withDefaults()
	a := &Amortized{
		opts:  opts,
		c0:    newC0(),
		owner: make(map[uint64]store),
	}
	a.reschedule(0)
	return a
}

// reschedule re-derives nf, τ and the capacity ladder from the current
// size n (paper: max_0 = 2n/log²n, max_i = max_0·ratioⁱ where ratio is
// log^ε n for Transformation 1 and 2 for Transformation 3).
func (a *Amortized) reschedule(n int) {
	a.nf = n
	a.tau = a.opts.Tau
	if a.tau == 0 {
		a.tau = autoTau(n)
	}
	lg := float64(log2(n))
	if lg < 2 {
		lg = 2
	}
	max0 := float64(2*n) / (lg * lg)
	if max0 < float64(a.opts.MinCapacity) {
		max0 = float64(a.opts.MinCapacity)
	}
	var ratio float64
	if a.opts.Ratio2 {
		ratio = 2
	} else {
		ratio = math.Pow(lg, a.opts.Epsilon)
		if ratio < 1.5 {
			ratio = 1.5
		}
	}
	a.maxes = a.maxes[:0]
	a.maxes = append(a.maxes, int(max0))
	cap := max0
	// Grow the ladder until the top level can hold the entire collection
	// twice over (so a global rebuild always fits).
	for cap < float64(2*n)+1 && len(a.maxes) < 64 {
		cap *= ratio
		a.maxes = append(a.maxes, int(cap))
	}
	if len(a.maxes) < 2 {
		a.maxes = append(a.maxes, int(cap*ratio))
	}
	// Levels slice tracks the ladder.
	for len(a.levels) < len(a.maxes) {
		a.levels = append(a.levels, nil)
	}
}

// Len reports the number of live payload symbols.
func (a *Amortized) Len() int {
	n := a.c0.liveSymbols()
	for _, l := range a.levels {
		if l != nil {
			n += l.liveSymbols()
		}
	}
	return n
}

// DocCount reports the number of live documents.
func (a *Amortized) DocCount() int { return len(a.owner) }

// DocIDs returns the IDs of all live documents in unspecified order.
func (a *Amortized) DocIDs() []uint64 {
	out := make([]uint64, 0, len(a.owner))
	for id := range a.owner {
		out = append(out, id)
	}
	return out
}

// Has reports whether a live document with the given ID exists.
func (a *Amortized) Has(id uint64) bool {
	_, ok := a.owner[id]
	return ok
}

// validateNew checks that a document may enter the collection: its ID is
// not live (nor claimed earlier in the same batch, when seen is non-nil)
// and its payload avoids the reserved separator byte.
func (a *Amortized) validateNew(d doc.Doc, seen map[uint64]bool) error {
	if _, dup := a.owner[d.ID]; dup || (seen != nil && seen[d.ID]) {
		return fmt.Errorf("core: insert id %d: %w", d.ID, ErrDuplicateID)
	}
	if !d.Valid() {
		return fmt.Errorf("core: insert id %d: %w", d.ID, ErrReservedByte)
	}
	return nil
}

// Insert adds a document. It returns ErrDuplicateID or ErrReservedByte on
// invalid input.
func (a *Amortized) Insert(d doc.Doc) error {
	if err := a.validateNew(d, nil); err != nil {
		return err
	}
	a.insertBulk([]doc.Doc{d}, len(d.Data))
	return nil
}

// InsertBatch adds many documents in one ingest. The whole batch is
// validated first — on any ErrDuplicateID / ErrReservedByte nothing is
// inserted — and then placed with at most one ladder rebuild cascade,
// instead of the cascade-per-document cost of looped Insert calls.
func (a *Amortized) InsertBatch(docs []doc.Doc) error {
	if len(docs) == 0 {
		return nil
	}
	seen := make(map[uint64]bool, len(docs))
	total := 0
	for _, d := range docs {
		if err := a.validateNew(d, seen); err != nil {
			return err
		}
		seen[d.ID] = true
		total += len(d.Data)
	}
	a.insertBulk(docs, total)
	return nil
}

// insertBulk places validated documents: into C0 if they all fit,
// otherwise into the first level whose capacity absorbs them together
// with all smaller sub-collections (one rebuild), otherwise via a global
// rebuild.
func (a *Amortized) insertBulk(docs []doc.Doc, total int) {
	prefix := a.c0.liveSymbols() + total
	if prefix <= a.maxes[0] {
		for _, d := range docs {
			a.c0.insert(d)
			a.owner[d.ID] = a.c0
		}
		a.maybeGlobalRebuild()
		return
	}
	for j := 1; j < len(a.maxes); j++ {
		if a.levels[j] != nil {
			prefix += a.levels[j].liveSymbols()
		}
		if prefix <= a.maxes[j] {
			a.mergeInto(j, docs)
			a.maybeGlobalRebuild()
			return
		}
	}
	// Nothing fits: global rebuild with the new documents included.
	a.globalRebuild(docs)
}

// mergeInto rebuilds level j from C0 ∪ C1 ∪ … ∪ Cj ∪ extra.
func (a *Amortized) mergeInto(j int, extra []doc.Doc) {
	docs := a.c0.liveDocs()
	a.c0 = newC0()
	for i := 1; i <= j; i++ {
		if a.levels[i] != nil {
			docs = append(docs, a.levels[i].liveDocs()...)
			a.levels[i] = nil
		}
	}
	docs = append(docs, extra...)
	lvl := buildSemi(a.opts.Builder, docs, a.tau, a.opts.Counting)
	a.levels[j] = lvl
	for _, dd := range docs {
		a.owner[dd.ID] = lvl
	}
	a.rebuilds++
}

// maybeGlobalRebuild triggers the paper's global rebuild once the live
// size has at least doubled (or collapsed to half) since the last one.
func (a *Amortized) maybeGlobalRebuild() {
	n := a.Len()
	if n >= 2*a.nf && n > a.opts.MinCapacity {
		a.globalRebuild(nil)
	} else if a.nf > 2*a.opts.MinCapacity && n <= a.nf/2 {
		a.globalRebuild(nil)
	}
}

// globalRebuild moves every live document (plus extra documents, if any)
// into the top level and re-derives the capacity schedule.
func (a *Amortized) globalRebuild(extra []doc.Doc) {
	docs := a.c0.liveDocs()
	for i, l := range a.levels {
		if l != nil {
			docs = append(docs, l.liveDocs()...)
			a.levels[i] = nil
		}
	}
	docs = append(docs, extra...)
	n := 0
	for _, d := range docs {
		n += len(d.Data)
	}
	a.c0 = newC0()
	a.reschedule(n)
	if len(docs) == 0 {
		a.globalRebuilds++
		return
	}
	top := len(a.maxes) - 1
	lvl := buildSemi(a.opts.Builder, docs, a.tau, a.opts.Counting)
	a.levels[top] = lvl
	owner := make(map[uint64]store, len(docs))
	for _, d := range docs {
		owner[d.ID] = lvl
	}
	a.owner = owner
	a.globalRebuilds++
}

// Delete removes the document with the given ID, reporting whether it was
// present. Deletions are lazy; a level holding too many dead symbols
// (> live/τ of that level) is purged.
func (a *Amortized) Delete(id uint64) bool {
	st, ok := a.owner[id]
	if !ok {
		return false
	}
	st.delete(id)
	delete(a.owner, id)
	if lvl, isLevel := st.(*SemiDynamic); isLevel {
		total := lvl.liveSymbols() + lvl.deletedSymbols()
		if total > 0 && lvl.deletedSymbols()*a.tau > total {
			a.purgeLevel(lvl)
		}
	}
	a.maybeGlobalRebuild()
	return true
}

// DeleteBatch removes every listed document that is live, returning the
// number actually removed. Dead-fraction purges and the global-rebuild
// check run once after the whole batch instead of per deletion.
func (a *Amortized) DeleteBatch(ids []uint64) int {
	n := 0
	touched := make(map[*SemiDynamic]bool)
	for _, id := range ids {
		st, ok := a.owner[id]
		if !ok {
			continue
		}
		st.delete(id)
		delete(a.owner, id)
		n++
		if lvl, isLevel := st.(*SemiDynamic); isLevel {
			touched[lvl] = true
		}
	}
	if n == 0 {
		return 0
	}
	for lvl := range touched {
		total := lvl.liveSymbols() + lvl.deletedSymbols()
		if total > 0 && lvl.deletedSymbols()*a.tau > total {
			a.purgeLevel(lvl)
		}
	}
	a.maybeGlobalRebuild()
	return n
}

// purgeLevel rebuilds the given level without its deleted documents.
func (a *Amortized) purgeLevel(lvl *SemiDynamic) {
	for j := 1; j < len(a.levels); j++ {
		if a.levels[j] != lvl {
			continue
		}
		docs := lvl.liveDocs()
		if len(docs) == 0 {
			a.levels[j] = nil
			a.purges++
			return
		}
		fresh := buildSemi(a.opts.Builder, docs, a.tau, a.opts.Counting)
		a.levels[j] = fresh
		for _, d := range docs {
			a.owner[d.ID] = fresh
		}
		a.purges++
		return
	}
}

// FindFunc calls fn for every occurrence of pattern across all live
// documents; enumeration stops early if fn returns false. An empty
// pattern matches at every live position.
func (a *Amortized) FindFunc(pattern []byte, fn func(Occurrence) bool) {
	stop := false
	wrapped := func(o Occurrence) bool {
		if !fn(o) {
			stop = true
			return false
		}
		return true
	}
	a.c0.findFunc(pattern, wrapped)
	if stop {
		return
	}
	for _, l := range a.levels {
		if l == nil {
			continue
		}
		l.findFunc(pattern, wrapped)
		if stop {
			return
		}
	}
}

// Find returns every occurrence of pattern.
func (a *Amortized) Find(pattern []byte) []Occurrence {
	var out []Occurrence
	a.FindFunc(pattern, func(o Occurrence) bool {
		out = append(out, o)
		return true
	})
	return out
}

// Count returns the number of occurrences of pattern (Theorem 1 when
// Options.Counting is set; otherwise it enumerates).
func (a *Amortized) Count(pattern []byte) int {
	n := a.c0.count(pattern)
	for _, l := range a.levels {
		if l != nil {
			n += l.count(pattern)
		}
	}
	return n
}

// Extract returns length payload bytes of document id starting at off.
func (a *Amortized) Extract(id uint64, off, length int) ([]byte, bool) {
	st, ok := a.owner[id]
	if !ok {
		return nil, false
	}
	return st.extract(id, off, length)
}

// DocLen returns the payload length of document id.
func (a *Amortized) DocLen(id uint64) (int, bool) {
	st, ok := a.owner[id]
	if !ok {
		return 0, false
	}
	return st.docLen(id)
}

// WaitIdle is a no-op: the amortized transformations do all their work
// in the foreground. It exists so every transformation satisfies the
// same facade contract.
func (a *Amortized) WaitIdle() {}

// SizeBits estimates the total footprint for space accounting.
func (a *Amortized) SizeBits() int64 {
	total := a.c0.sizeBits()
	for _, l := range a.levels {
		if l != nil {
			total += l.sizeBits()
		}
	}
	return total
}

// Stats returns rebuild counters and the current level occupancy.
func (a *Amortized) Stats() Stats {
	st := Stats{
		LevelRebuilds:  a.rebuilds,
		GlobalRebuilds: a.globalRebuilds,
		Purges:         a.purges,
		Levels:         len(a.maxes),
	}
	st.LevelSizes = append(st.LevelSizes, a.c0.liveSymbols())
	st.LevelCaps = append(st.LevelCaps, a.maxes[0])
	for j := 1; j < len(a.maxes); j++ {
		sz := 0
		if a.levels[j] != nil {
			sz = a.levels[j].liveSymbols()
		}
		st.LevelSizes = append(st.LevelSizes, sz)
		st.LevelCaps = append(st.LevelCaps, a.maxes[j])
	}
	return st
}

// Tau reports the τ currently in effect.
func (a *Amortized) Tau() int { return a.tau }
