package core

import (
	"slices"

	"dyncoll/internal/doc"
	"dyncoll/internal/dynbits"
	"dyncoll/internal/engine"
	"dyncoll/internal/sparsebits"
)

// SemiDynamic wraps a StaticIndex with the paper's lazy-deletion
// machinery (Section 2, "Supporting Document Deletions"):
//
//   - a bitmap B over suffix-array rows, B[j] = 0 iff row j belongs to a
//     deleted document, stored in the Lemma 3 structure V so the live
//     rows of any range are reported in O(1) each;
//   - optionally (Theorem 1) a rank-capable copy of B so live rows in a
//     range can be counted in O(log n).
//
// Deleting a document costs tSA + O(logᵋ n) per symbol: each of its
// suffix rows is located with SuffixRank and cleared in V. The wrapper
// never rebuilds itself — it is the document instance of the engine's
// static payload contract, and the engine purges and rebuilds whole
// sub-collections through the configured Build function.
type SemiDynamic struct {
	idx   StaticIndex
	alive *sparsebits.Compressed // nil = no deletions yet (deferred wrapper)
	cnt   *dynbits.Vector        // nil unless counting is enabled and alive exists

	tau      int  // Lemma 3 word width, kept for deferred materialization
	counting bool // Theorem 1 rank structure requested

	byID    map[uint64]int // live doc ID → doc index within idx
	live    int            // live payload symbols
	deleted int            // deleted payload symbols
}

// lfStepper is the optional fast-deletion interface: LF maps a suffix
// row to the row of the suffix one position earlier.
type lfStepper interface {
	LF(row int) int
}

// NewSemiDynamic wraps idx. tau sets the Lemma 3 word width; counting
// attaches the Theorem 1 rank structure.
func NewSemiDynamic(idx StaticIndex, tau int, counting bool) *SemiDynamic {
	s := NewSemiDynamicDeferred(idx, tau, counting)
	s.materialize()
	return s
}

// NewSemiDynamicDeferred wraps idx like NewSemiDynamic but without
// allocating the deletion bitmaps: a nil bitmap means "every row is
// live", so a mapped store with no deletions costs O(docs) heap to
// open instead of O(n) bits. The bitmaps materialize on the first
// Delete, under the same external write serialization every mutation
// already requires.
func NewSemiDynamicDeferred(idx StaticIndex, tau int, counting bool) *SemiDynamic {
	if tau < 2 {
		tau = 2
	}
	if tau > 4096 {
		tau = 4096
	}
	s := &SemiDynamic{
		idx:      idx,
		tau:      tau,
		counting: counting,
		byID:     make(map[uint64]int, idx.DocCount()),
	}
	for i := 0; i < idx.DocCount(); i++ {
		s.byID[idx.DocID(i)] = i
		s.live += idx.DocLen(i)
	}
	return s
}

// materialize allocates the all-ones deletion bitmaps of a deferred
// wrapper; no-op once they exist.
func (s *SemiDynamic) materialize() {
	if s.alive != nil {
		return
	}
	s.alive = sparsebits.NewCompressed(s.idx.SALen(), s.tau)
	if s.counting {
		s.cnt = dynbits.New(s.idx.SALen(), true)
	}
}

// Index exposes the wrapped static index.
func (s *SemiDynamic) Index() StaticIndex { return s.idx }

// LiveWeight and DeadWeight report live/deleted payload symbols
// (engine.Store).
func (s *SemiDynamic) LiveWeight() int { return s.live }
func (s *SemiDynamic) DeadWeight() int { return s.deleted }

// DocCount reports the number of live documents.
func (s *SemiDynamic) DocCount() int { return len(s.byID) }

// Delete lazily removes document id, reporting its symbol weight
// (engine.Store).
func (s *SemiDynamic) Delete(id uint64) (int, bool) {
	d, ok := s.byID[id]
	if !ok {
		return 0, false
	}
	delete(s.byID, id)
	s.materialize()
	dl := s.idx.DocLen(d)
	// Clear every suffix row of the document, separator included, so
	// neither reporting nor counting ever sees it again. When the index
	// exposes the LF mapping, one O(dl) walk from the separator row visits
	// them all; otherwise fall back to dl separate SuffixRank calls.
	if lf, ok := s.idx.(lfStepper); ok {
		row := s.idx.SuffixRank(d, dl)
		for off := dl; ; off-- {
			s.alive.Zero(row)
			if s.cnt != nil {
				s.cnt.Set(row, false)
			}
			if off == 0 {
				break
			}
			row = lf.LF(row)
		}
	} else {
		for off := 0; off <= dl; off++ {
			row := s.idx.SuffixRank(d, off)
			s.alive.Zero(row)
			if s.cnt != nil {
				s.cnt.Set(row, false)
			}
		}
	}
	s.live -= dl
	s.deleted += dl
	return dl, true
}

func (s *SemiDynamic) findFunc(pattern []byte, fn func(Occurrence) bool) {
	if len(pattern) == 0 {
		s.findEverything(fn)
		return
	}
	lo, hi := s.idx.Range(pattern)
	if lo >= hi {
		return
	}
	if s.alive == nil { // no deletions: every row of the range is live
		for row := lo; row < hi; row++ {
			d, off := s.idx.Locate(row)
			if !fn(Occurrence{DocID: s.idx.DocID(d), Off: off}) {
				return
			}
		}
		return
	}
	s.alive.Report(lo, hi-1, func(row int) bool {
		d, off := s.idx.Locate(row)
		return fn(Occurrence{DocID: s.idx.DocID(d), Off: off})
	})
}

// positionLister is the optional position-ordered enumeration fast
// path: an index that can pack a row range's (docIndex, offset) pairs
// into sortable uint64 words without per-row interface dispatch.
type positionLister interface {
	AppendPositions(lo, hi int, dst []uint64) []uint64
}

// findGroupedFunc reports the occurrences of pattern grouped by
// document, offsets ascending within each document. It materializes the
// match positions as packed docIndex<<32|offset words and sorts them —
// the suffix-array range arrives in lexicographic row order, so the
// grouping has to be imposed; one flat uint64 sort is the cheapest way.
func (s *SemiDynamic) findGroupedFunc(pattern []byte, fn func(Occurrence) bool) {
	if len(pattern) == 0 {
		// Every live position, already contiguous per document.
		s.findEverything(fn)
		return
	}
	lo, hi := s.idx.Range(pattern)
	if lo >= hi {
		return
	}
	var packed []uint64
	if pl, ok := s.idx.(positionLister); ok && s.alive == nil {
		packed = pl.AppendPositions(lo, hi, make([]uint64, 0, hi-lo))
	} else {
		packed = make([]uint64, 0, hi-lo)
		collect := func(row int) bool {
			d, off := s.idx.Locate(row)
			packed = append(packed, uint64(d)<<32|uint64(uint32(off)))
			return true
		}
		if s.alive == nil {
			for row := lo; row < hi; row++ {
				collect(row)
			}
		} else {
			s.alive.Report(lo, hi-1, collect)
		}
	}
	slices.Sort(packed)
	for _, p := range packed {
		if !fn(Occurrence{DocID: s.idx.DocID(int(p >> 32)), Off: int(uint32(p))}) {
			return
		}
	}
}

// findEverything reports every live position (empty-pattern semantics).
func (s *SemiDynamic) findEverything(fn func(Occurrence) bool) {
	for id, d := range s.byID {
		dl := s.idx.DocLen(d)
		for off := 0; off < dl; off++ {
			if !fn(Occurrence{DocID: id, Off: off}) {
				return
			}
		}
	}
}

func (s *SemiDynamic) count(pattern []byte) int {
	if len(pattern) == 0 {
		return s.live
	}
	lo, hi := s.idx.Range(pattern)
	if lo >= hi {
		return 0
	}
	if s.alive == nil { // no deletions: the whole range is live
		return hi - lo
	}
	if s.cnt != nil {
		return s.cnt.Count1(lo, hi-1)
	}
	// Counting through the deletion bitmap directly (per-word popcounts,
	// no per-position callback) keeps the enumeration fallback cheap and
	// allocation-free.
	return s.alive.Count1(lo, hi-1)
}

func (s *SemiDynamic) extract(id uint64, off, length int) ([]byte, bool) {
	d, ok := s.byID[id]
	if !ok {
		return nil, false
	}
	return s.idx.Extract(d, off, length), true
}

func (s *SemiDynamic) docLen(id uint64) (int, bool) {
	d, ok := s.byID[id]
	if !ok {
		return 0, false
	}
	return s.idx.DocLen(d), true
}

// LiveKeys returns the IDs of the live documents — a cheap snapshot, no
// payload extraction (engine.Store).
func (s *SemiDynamic) LiveKeys() []uint64 {
	out := make([]uint64, 0, len(s.byID))
	for id := range s.byID {
		out = append(out, id)
	}
	return out
}

// Snapshot captures the live document indices so their payloads can be
// extracted later — possibly on another goroutine — from the immutable
// static index (engine.Snapshotter). Lazy deletions touch only the
// wrapper's bitmaps, never the index, so the deferred extraction is
// race-free; documents deleted after the snapshot are weeded out when
// the build result is installed.
func (s *SemiDynamic) Snapshot() engine.Snapshot[doc.Doc] {
	idxs := make([]int, 0, len(s.byID))
	for _, d := range s.byID {
		idxs = append(idxs, d)
	}
	idx := s.idx
	return engine.Snapshot[doc.Doc]{
		Count: len(idxs),
		Materialize: func(dst []doc.Doc) []doc.Doc {
			for _, di := range idxs {
				dst = append(dst, doc.Doc{
					ID:   idx.DocID(di),
					Data: idx.Extract(di, 0, idx.DocLen(di)),
				})
			}
			return dst
		},
	}
}

// LiveItems materializes the live documents (engine.Store).
func (s *SemiDynamic) LiveItems() []doc.Doc {
	out := make([]doc.Doc, 0, len(s.byID))
	for i := 0; i < s.idx.DocCount(); i++ {
		id := s.idx.DocID(i)
		if _, ok := s.byID[id]; !ok {
			continue
		}
		out = append(out, doc.Doc{ID: id, Data: s.idx.Extract(i, 0, s.idx.DocLen(i))})
	}
	return out
}

// SizeBits estimates the footprint (engine.Store).
func (s *SemiDynamic) SizeBits() int64 {
	total := s.idx.SizeBits()
	if s.alive != nil {
		total += s.alive.SizeBits()
	}
	if s.cnt != nil {
		total += s.cnt.SizeBits()
	}
	return total
}
