package core

import (
	"dyncoll/internal/doc"
	"dyncoll/internal/engine"
	"dyncoll/internal/snap"
)

// Snapshot adapter for the document payload: serializes an engine dump
// level by level. C0 travels as raw documents and is re-ingested at
// load. Compressed levels take the fast path — the wrapped static
// index's own binary form plus the IDs of its lazily-deleted documents
// — when the index implements binaryIndex AND the loader will have a
// registered decoder; otherwise they fall back to raw live documents
// and are rebuilt through the configured Builder at load. Custom
// registry indexes therefore round-trip by name with zero extra work,
// and built-ins skip the O(n·u(n)) reconstruction.

// binaryIndex is the optional fast-path contract a StaticIndex may
// implement (the built-in fm, sa and csa indexes all do).
type binaryIndex interface {
	AppendBinary(buf []byte) ([]byte, error)
}

// IndexDecoder reconstructs a StaticIndex from the bytes its
// AppendBinary produced. The facade resolves one from the index
// registry by name; nil means no fast-path decoding is available.
type IndexDecoder func(data []byte) (StaticIndex, error)

// encodeDocs appends a length-prefixed document list.
func encodeDocs(e *snap.Encoder, docs []doc.Doc) {
	e.Uvarint(uint64(len(docs)))
	for _, d := range docs {
		e.Uvarint(d.ID)
		e.Blob(d.Data)
	}
}

// decodeDocs reads a document list, copying payloads out of the input
// buffer and rejecting payloads with the reserved separator byte (the
// builders would panic on them).
func decodeDocs(dec *snap.Decoder) []doc.Doc {
	n := dec.Count(2)
	if dec.Err() != nil {
		return nil
	}
	docs := make([]doc.Doc, 0, n)
	for i := 0; i < n; i++ {
		id := dec.Uvarint()
		data := append([]byte(nil), dec.Blob()...)
		if dec.Err() != nil {
			return nil
		}
		d := doc.Doc{ID: id, Data: data}
		if !d.Valid() {
			dec.Fail("document %d contains the reserved byte 0x00", id)
			return nil
		}
		docs = append(docs, d)
	}
	return docs
}

// EncodeSnapshot writes the collection's quiesced ladder into e.
// fastPath enables the binary index encoding; pass false when the
// loader will not have a decoder for the collection's index name.
func (c *collection) EncodeSnapshot(e *snap.Encoder, fastPath bool) {
	d := c.eng.Dump()
	e.Uvarint(uint64(d.NF))
	e.Uvarint(uint64(d.Tau))
	encodeDocs(e, d.C0)
	e.Uvarint(uint64(len(d.Stores)))
	for _, ds := range d.Stores {
		e.Varint(int64(ds.Level))
		sd, isSemi := ds.Store.(*SemiDynamic)
		if fastPath && isSemi {
			if bi, ok := sd.idx.(binaryIndex); ok {
				blob, err := bi.AppendBinary(nil)
				if err == nil {
					e.Byte(snap.ModeBinary)
					e.Blob(blob)
					e.Uint64s(sd.deadIDs())
					continue
				}
			}
		}
		e.Byte(snap.ModeItems)
		encodeDocs(e, ds.Store.LiveItems())
	}
}

// deadIDs lists the documents the wrapped index contains but that have
// been lazily deleted — the complement of byID. Replaying their
// deletions at load rebuilds the alive bitmaps exactly.
func (s *SemiDynamic) deadIDs() []uint64 {
	var out []uint64
	for i := 0; i < s.idx.DocCount(); i++ {
		id := s.idx.DocID(i)
		if _, live := s.byID[id]; !live {
			out = append(out, id)
		}
	}
	return out
}

// DecodeSnapshot reads a ladder section from dec and installs it into
// the collection's (empty) engine. decode, when non-nil, reconstructs
// binary-encoded static indexes; binary levels in the input with a nil
// decode fail with ErrBadSnapshot. Any corruption — framing, invalid
// documents, duplicate ownership — fails with an error wrapping
// snap.ErrBadSnapshot and never panics; the collection must be
// discarded on error.
func (c *collection) DecodeSnapshot(dec *snap.Decoder, decode IndexDecoder) error {
	var d engine.Dump[uint64, doc.Doc]
	d.NF = dec.Int()
	d.Tau = dec.Int()
	d.C0 = decodeDocs(dec)
	nStores := dec.Count(2)
	if err := dec.Err(); err != nil {
		return err
	}
	tau := d.Tau // NewSemiDynamic clamps out-of-range values itself
	for i := 0; i < nStores; i++ {
		level := int(dec.Varint())
		mode := dec.Byte()
		if err := dec.Err(); err != nil {
			return err
		}
		var st engine.Store[uint64, doc.Doc]
		switch mode {
		case snap.ModeItems:
			docs := decodeDocs(dec)
			if err := dec.Err(); err != nil {
				return err
			}
			sd := NewSemiDynamic(c.opts.Builder(docs), tau, c.opts.Counting)
			// A repeated doc ID collapses in the wrapper's byID map, so
			// the engine's ownership check would never see the second
			// copy — queries would double-report it instead.
			if len(sd.byID) != len(docs) {
				return snap.Corruptf("level %d repeats document IDs", level)
			}
			st = sd
		case snap.ModeBinary:
			blob := dec.Blob()
			dead := dec.Uint64s()
			if err := dec.Err(); err != nil {
				return err
			}
			if decode == nil {
				return snap.Corruptf("binary level %d but index has no registered decoder", level)
			}
			idx, err := decode(blob)
			if err != nil {
				return snap.Corruptf("level %d index: %v", level, err)
			}
			sd := NewSemiDynamic(idx, tau, c.opts.Counting)
			if len(sd.byID) != idx.DocCount() {
				return snap.Corruptf("level %d index repeats document IDs", level)
			}
			for _, id := range dead {
				if _, ok := sd.Delete(id); !ok {
					return snap.Corruptf("level %d deletes unknown document %d", level, id)
				}
			}
			st = sd
		default:
			return snap.Corruptf("unknown store mode %d", mode)
		}
		d.Stores = append(d.Stores, engine.StoreDump[uint64, doc.Doc]{Level: level, Store: st})
	}
	return c.eng.Restore(d)
}
