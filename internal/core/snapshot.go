package core

import (
	"dyncoll/internal/doc"
	"dyncoll/internal/engine"
	"dyncoll/internal/snap"
)

// Snapshot adapter for the document payload: serializes an engine dump
// level by level. C0 travels as raw documents and is re-ingested at
// load. Compressed levels take the fast path — the wrapped static
// index's own binary form plus the IDs of its lazily-deleted documents
// — when the index implements binaryIndex AND the loader will have a
// registered decoder; otherwise they fall back to raw live documents
// and are rebuilt through the configured Builder at load. Custom
// registry indexes therefore round-trip by name with zero extra work,
// and built-ins skip the O(n·u(n)) reconstruction.

// binaryIndex is the optional fast-path contract a StaticIndex may
// implement (the built-in fm, sa and csa indexes all do).
type binaryIndex interface {
	AppendBinary(buf []byte) ([]byte, error)
}

// IndexDecoder reconstructs a StaticIndex from the bytes its
// AppendBinary produced. The facade resolves one from the index
// registry by name; nil means no fast-path decoding is available.
type IndexDecoder func(data []byte) (StaticIndex, error)

// encodeDocs appends a length-prefixed document list.
func encodeDocs(e *snap.Encoder, docs []doc.Doc) {
	e.Uvarint(uint64(len(docs)))
	for _, d := range docs {
		e.Uvarint(d.ID)
		e.Blob(d.Data)
	}
}

// decodeDocs reads a document list, copying payloads out of the input
// buffer and rejecting payloads with the reserved separator byte (the
// builders would panic on them).
func decodeDocs(dec *snap.Decoder) []doc.Doc {
	n := dec.Count(2)
	if dec.Err() != nil {
		return nil
	}
	docs := make([]doc.Doc, 0, n)
	for i := 0; i < n; i++ {
		id := dec.Uvarint()
		data := append([]byte(nil), dec.Blob()...)
		if dec.Err() != nil {
			return nil
		}
		d := doc.Doc{ID: id, Data: data}
		if !d.Valid() {
			dec.Fail("document %d contains the reserved byte 0x00", id)
			return nil
		}
		docs = append(docs, d)
	}
	return docs
}

// encodeSpine writes the ladder's schedule anchors and raw C0 items —
// everything except the static stores.
func encodeSpine(e *snap.Encoder, d *engine.Dump[uint64, doc.Doc]) {
	e.Uvarint(uint64(d.NF))
	e.Uvarint(uint64(d.Tau))
	encodeDocs(e, d.C0)
}

// encodeStore writes one static store's section: slot, mode byte, and
// the mode's payload.
func encodeStore(e *snap.Encoder, ds engine.StoreDump[uint64, doc.Doc], fastPath bool) {
	e.Varint(int64(ds.Level))
	sd, isSemi := ds.Store.(*SemiDynamic)
	if fastPath && isSemi {
		if bi, ok := sd.idx.(binaryIndex); ok {
			blob, err := bi.AppendBinary(nil)
			if err == nil {
				e.Byte(snap.ModeBinary)
				e.Blob(blob)
				e.Uint64s(sd.deadIDs())
				return
			}
		}
	}
	e.Byte(snap.ModeItems)
	encodeDocs(e, ds.Store.LiveItems())
}

// EncodeSnapshot writes the collection's quiesced ladder into e.
// fastPath enables the binary index encoding; pass false when the
// loader will not have a decoder for the collection's index name.
func (c *collection) EncodeSnapshot(e *snap.Encoder, fastPath bool) {
	d := c.eng.Dump()
	encodeSpine(e, &d)
	e.Uvarint(uint64(len(d.Stores)))
	for _, ds := range d.Stores {
		encodeStore(e, ds, fastPath)
	}
}

// DumpSections captures the quiesced ladder as a spine (schedule
// anchors + C0) plus one Section per static store, encoded exactly as
// EncodeSnapshot would. reuse, when non-nil, is asked per store
// whether the checkpoint writer already holds an identical persisted
// section (same build generation, same dead weight); a reused store's
// Section carries nil Bytes and is never serialized — the incremental
// part of incremental checkpoints.
func (c *collection) DumpSections(fastPath bool, reuse func(level int, gen uint64, dead int) bool) ([]byte, []snap.Section) {
	d := c.eng.Dump()
	var se snap.Encoder
	encodeSpine(&se, &d)
	secs := make([]snap.Section, 0, len(d.Stores))
	for _, ds := range d.Stores {
		dead := ds.Store.DeadWeight()
		sec := snap.Section{Level: ds.Level, Gen: ds.Gen, Dead: dead}
		if reuse == nil || !reuse(ds.Level, ds.Gen, dead) {
			var e snap.Encoder
			encodeStore(&e, ds, fastPath)
			sec.Bytes = e.Bytes()
		}
		secs = append(secs, sec)
	}
	return se.Bytes(), secs
}

// deadIDs lists the documents the wrapped index contains but that have
// been lazily deleted — the complement of byID. Replaying their
// deletions at load rebuilds the alive bitmaps exactly.
func (s *SemiDynamic) deadIDs() []uint64 {
	var out []uint64
	for i := 0; i < s.idx.DocCount(); i++ {
		id := s.idx.DocID(i)
		if _, live := s.byID[id]; !live {
			out = append(out, id)
		}
	}
	return out
}

// DecodeSnapshot reads a ladder section from dec and installs it into
// the collection's (empty) engine. decode, when non-nil, reconstructs
// binary-encoded static indexes; binary levels in the input with a nil
// decode fail with ErrBadSnapshot. Any corruption — framing, invalid
// documents, duplicate ownership — fails with an error wrapping
// snap.ErrBadSnapshot and never panics; the collection must be
// discarded on error.
func (c *collection) DecodeSnapshot(dec *snap.Decoder, decode IndexDecoder) error {
	var d engine.Dump[uint64, doc.Doc]
	if err := decodeSpine(dec, &d); err != nil {
		return err
	}
	nStores := dec.Count(2)
	if err := dec.Err(); err != nil {
		return err
	}
	for i := 0; i < nStores; i++ {
		ds, err := c.decodeStore(dec, d.Tau, decode)
		if err != nil {
			return err
		}
		d.Stores = append(d.Stores, ds)
	}
	return c.eng.Restore(d)
}

// decodeSpine reads the schedule anchors and C0 items.
func decodeSpine(dec *snap.Decoder, d *engine.Dump[uint64, doc.Doc]) error {
	d.NF = dec.Int()
	d.Tau = dec.Int()
	d.C0 = decodeDocs(dec)
	return dec.Err()
}

// decodeStore reads one static store's section (slot, mode, payload)
// and reconstructs the store. tau is the ladder's lazy-deletion
// parameter (NewSemiDynamic clamps out-of-range values itself).
func (c *collection) decodeStore(dec *snap.Decoder, tau int, decode IndexDecoder) (engine.StoreDump[uint64, doc.Doc], error) {
	var zero engine.StoreDump[uint64, doc.Doc]
	level := int(dec.Varint())
	mode := dec.Byte()
	if err := dec.Err(); err != nil {
		return zero, err
	}
	var st engine.Store[uint64, doc.Doc]
	switch mode {
	case snap.ModeItems:
		docs := decodeDocs(dec)
		if err := dec.Err(); err != nil {
			return zero, err
		}
		sd := NewSemiDynamic(c.opts.Builder(docs), tau, c.opts.Counting)
		// A repeated doc ID collapses in the wrapper's byID map, so
		// the engine's ownership check would never see the second
		// copy — queries would double-report it instead.
		if len(sd.byID) != len(docs) {
			return zero, snap.Corruptf("level %d repeats document IDs", level)
		}
		st = sd
	case snap.ModeBinary:
		blob := dec.Blob()
		dead := dec.Uint64s()
		if err := dec.Err(); err != nil {
			return zero, err
		}
		if decode == nil {
			return zero, snap.Corruptf("binary level %d but index has no registered decoder", level)
		}
		idx, err := decode(blob)
		if err != nil {
			return zero, snap.Corruptf("level %d index: %v", level, err)
		}
		sd := NewSemiDynamic(idx, tau, c.opts.Counting)
		if len(sd.byID) != idx.DocCount() {
			return zero, snap.Corruptf("level %d index repeats document IDs", level)
		}
		for _, id := range dead {
			if _, ok := sd.Delete(id); !ok {
				return zero, snap.Corruptf("level %d deletes unknown document %d", level, id)
			}
		}
		st = sd
	default:
		return zero, snap.Corruptf("unknown store mode %d", mode)
	}
	return engine.StoreDump[uint64, doc.Doc]{Level: level, Store: st}, nil
}

// RestoreSections is DecodeSnapshot for the sectioned form: spine bytes
// plus one Section per store, as produced by DumpSections (possibly
// reassembled from checkpoint segment files). Each section's Gen is
// installed into the engine so the next incremental checkpoint can
// reuse the very segments this collection was loaded from. The error
// contract matches DecodeSnapshot.
func (c *collection) RestoreSections(spine []byte, secs []snap.Section, decode IndexDecoder) error {
	dec := snap.NewDecoder(spine)
	var d engine.Dump[uint64, doc.Doc]
	if err := decodeSpine(dec, &d); err != nil {
		return err
	}
	if n := dec.Remaining(); n != 0 {
		return snap.Corruptf("%d trailing spine bytes", n)
	}
	for _, s := range secs {
		sdec := snap.NewDecoder(s.Bytes)
		ds, err := c.decodeStore(sdec, d.Tau, decode)
		if err != nil {
			return err
		}
		if n := sdec.Remaining(); n != 0 {
			return snap.Corruptf("%d trailing section bytes at level %d", n, ds.Level)
		}
		ds.Gen = s.Gen
		d.Stores = append(d.Stores, ds)
	}
	return c.eng.Restore(d)
}
