package core

import "testing"

func TestOptionsBuilderRequired(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("missing Builder did not panic")
		}
	}()
	NewAmortized(Options{})
}

func TestOptionsNegativeTauPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative Tau did not panic")
		}
	}()
	NewAmortized(Options{Builder: fmBuilder, Tau: -1})
}

func TestOptionsEpsilonClamped(t *testing.T) {
	for _, eps := range []float64{-1, 0, 1.5, 99} {
		a := NewAmortized(Options{Builder: fmBuilder, Epsilon: eps})
		if a.opts.Epsilon <= 0 || a.opts.Epsilon > 1 {
			t.Fatalf("Epsilon %f not clamped: %f", eps, a.opts.Epsilon)
		}
	}
}

func TestOptionsMinCapacityDefault(t *testing.T) {
	a := NewAmortized(Options{Builder: fmBuilder, MinCapacity: -5})
	if a.opts.MinCapacity <= 0 {
		t.Fatalf("MinCapacity not defaulted: %d", a.opts.MinCapacity)
	}
}

func TestWorstCaseOptionsShareValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("missing Builder did not panic for WorstCase")
		}
	}()
	NewWorstCase(Options{})
}

func TestSemiDynamicTauClamps(t *testing.T) {
	idx := fmBuilder(nil)
	s := NewSemiDynamic(idx, 0, false)
	if s == nil {
		t.Fatal("nil SemiDynamic")
	}
	s2 := NewSemiDynamic(idx, 1<<20, false)
	if s2 == nil {
		t.Fatal("nil SemiDynamic for huge tau")
	}
}
