package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dyncoll/internal/doc"
	"dyncoll/internal/textgen"
)

// TestT1LevelCapsRespected verifies the Transformation 1 size invariant
// |Ci| ≤ max_i after every operation.
func TestT1LevelCapsRespected(t *testing.T) {
	a := NewAmortized(Options{Builder: fmBuilder})
	gen := textgen.NewCollection(textgen.CollectionOptions{
		Sigma: 8, MinLen: 10, MaxLen: 300, Seed: 41,
	})
	rng := rand.New(rand.NewSource(4))
	var live []uint64
	for step := 0; step < 500; step++ {
		if len(live) == 0 || rng.Float64() < 0.7 {
			d := gen.NextDoc()
			a.Insert(d)
			live = append(live, d.ID)
		} else {
			i := rng.Intn(len(live))
			a.Delete(live[i])
			live = append(live[:i], live[i+1:]...)
		}
		st := a.Stats()
		for j, sz := range st.LevelSizes {
			if sz > st.LevelCaps[j] {
				t.Fatalf("step %d: level %d holds %d > cap %d", step, j, sz, st.LevelCaps[j])
			}
		}
	}
}

// TestT1C0Bound verifies that the uncompressed sub-collection stays small:
// |C0| ≤ max_0 = max(2n/log²n, MinCapacity).
func TestT1C0Bound(t *testing.T) {
	a := NewAmortized(Options{Builder: fmBuilder})
	gen := textgen.NewCollection(textgen.CollectionOptions{
		Sigma: 8, MinLen: 30, MaxLen: 120, Seed: 43,
	})
	for i := 0; i < 400; i++ {
		a.Insert(gen.NextDoc())
		st := a.Stats()
		n := a.Len()
		lg := math.Log2(float64(n) + 2)
		bound := 2*float64(n)/(lg*lg) + 64 // max_0 formula + MinCapacity slack
		// The cap itself is the binding invariant; the formula check guards
		// against the schedule drifting away from the paper's shape. nf lags
		// n by up to 2× between global rebuilds, so allow that factor.
		if float64(st.LevelSizes[0]) > 2*bound+float64(st.LevelCaps[0]) {
			t.Fatalf("i=%d: C0 holds %d symbols, bound ≈ %.0f (cap %d)",
				i, st.LevelSizes[0], bound, st.LevelCaps[0])
		}
		if st.LevelSizes[0] > st.LevelCaps[0] {
			t.Fatalf("i=%d: C0 %d exceeds cap %d", i, st.LevelSizes[0], st.LevelCaps[0])
		}
	}
}

// TestT1DeadFractionBounded verifies the lazy-deletion purge rule: no
// compressed level retains more than a ~1/τ fraction of dead symbols
// after a deletion round.
func TestT1DeadFractionBounded(t *testing.T) {
	const tau = 4
	a := NewAmortized(Options{Builder: fmBuilder, Tau: tau})
	gen := textgen.NewCollection(textgen.CollectionOptions{
		Sigma: 8, MinLen: 40, MaxLen: 100, Seed: 47,
	})
	var ids []uint64
	for i := 0; i < 300; i++ {
		d := gen.NextDoc()
		a.Insert(d)
		ids = append(ids, d.ID)
	}
	rng := rand.New(rand.NewSource(9))
	for _, i := range rng.Perm(len(ids))[:200] {
		a.Delete(ids[i])
		st := a.Stats()
		for j := 1; j < len(st.LevelSizes); j++ {
			total := st.LevelSizes[j] + st.LevelDead[j]
			if total > 0 && st.LevelDead[j]*tau > total {
				t.Fatalf("level %d retains dead fraction %d/%d > 1/%d",
					j, st.LevelDead[j], total, tau)
			}
		}
	}
	if a.Stats().Purges == 0 {
		t.Fatal("expected deletion-triggered purges")
	}
}

// TestT2TopDeadFraction verifies the Dietz–Sleator sweep outcome: top
// collections never accumulate more than an O(1/τ)·(1+h_g) dead fraction.
func TestT2TopDeadFraction(t *testing.T) {
	const tau = 4
	w := NewWorstCase(Options{Builder: fmBuilder, Tau: tau, Inline: true})
	gen := textgen.NewCollection(textgen.CollectionOptions{
		Sigma: 8, MinLen: 40, MaxLen: 100, Seed: 53,
	})
	var ids []uint64
	for i := 0; i < 400; i++ {
		d := gen.NextDoc()
		w.Insert(d)
		ids = append(ids, d.ID)
	}
	rng := rand.New(rand.NewSource(10))
	// Delete 60% of documents in random order; check the per-top dead
	// bound after every operation.
	hg := 0.0
	for i := 1; i <= 2*tau; i++ {
		hg += 1.0 / float64(i)
	}
	for _, i := range rng.Perm(len(ids))[:240] {
		w.Delete(ids[i])
		st := w.Stats()
		for k, dead := range st.TopDead {
			total := st.TopSizes[k] + dead
			if total == 0 {
				continue
			}
			frac := float64(dead) / float64(total)
			// Lemma 1 bound with slack: the sweep interval is nf/(2τ log τ),
			// each xi ≤ 1 + h_{2τ}, so dead ≤ (1+h_{2τ})·nf/(2τ log τ).
			limit := (1 + hg) / float64(tau) * 4
			if frac > limit && total > 256 {
				t.Fatalf("top %d dead fraction %.3f exceeds %.3f (dead=%d total=%d)",
					k, frac, limit, dead, total)
			}
		}
	}
}

// TestT2ForegroundWorkBounded verifies the headline worst-case claim: no
// single insert performs a full collection rebuild in the foreground. We
// proxy foreground work by the count of synchronous builds, which must
// stay far below the number of operations, while background builds carry
// the bulk.
func TestT2ForegroundWorkBounded(t *testing.T) {
	w := NewWorstCase(Options{Builder: fmBuilder})
	gen := textgen.NewCollection(textgen.CollectionOptions{
		Sigma: 8, MinLen: 30, MaxLen: 80, Seed: 59,
	})
	const ops = 500
	for i := 0; i < ops; i++ {
		w.Insert(gen.NextDoc())
	}
	w.WaitIdle()
	st := w.Stats()
	if st.BackgroundBuilds == 0 {
		t.Fatal("expected background builds")
	}
	// Synchronous builds happen only for big documents and big-relative-to-
	// level documents; with uniform small docs they must be rare.
	if st.SyncBuilds > ops/5 {
		t.Fatalf("too many synchronous builds: %d of %d ops", st.SyncBuilds, ops)
	}
}

// TestT3MoreLevels verifies Transformation 3 uses a denser ladder
// (ratio 2) than Transformation 1 for the same content.
func TestT3MoreLevels(t *testing.T) {
	mk := func(ratio2 bool) int {
		a := NewAmortized(Options{Builder: fmBuilder, Ratio2: ratio2})
		gen := textgen.NewCollection(textgen.CollectionOptions{
			Sigma: 8, MinLen: 50, MaxLen: 100, Seed: 61,
		})
		for i := 0; i < 300; i++ {
			a.Insert(gen.NextDoc())
		}
		return a.Stats().Levels
	}
	t1 := mk(false)
	t3 := mk(true)
	if t3 <= t1 {
		t.Fatalf("Transformation 3 should have more levels: T1=%d T3=%d", t1, t3)
	}
}

// TestGlobalRebuildResetsSchedule checks that nf tracks n within a factor
// of 2 (Section A.3's invariant), which the reschedule machinery must
// maintain through growth and shrinkage.
func TestGlobalRebuildResetsSchedule(t *testing.T) {
	a := NewAmortized(Options{Builder: fmBuilder})
	gen := textgen.NewCollection(textgen.CollectionOptions{
		Sigma: 8, MinLen: 100, MaxLen: 100, Seed: 67,
	})
	const minCap = 64 // the default MinCapacity the schedule floors at
	var ids []uint64
	for i := 0; i < 300; i++ {
		d := gen.NextDoc()
		a.Insert(d)
		ids = append(ids, d.ID)
		if n, nf := a.Len(), a.Stats().NF; n > 2*minCap && (nf > 2*n || n > 2*nf) {
			t.Fatalf("insert %d: nf=%d drifted beyond factor 2 of n=%d", i, nf, n)
		}
	}
	for _, id := range ids {
		a.Delete(id)
		if n, nf := a.Len(), a.Stats().NF; n > 2*minCap && nf > 2*minCap && (nf > 2*n+minCap || n > 2*nf) {
			t.Fatalf("delete: nf=%d drifted beyond factor 2 of n=%d", nf, n)
		}
	}
	if a.Len() != 0 {
		t.Fatalf("collection should be empty, Len=%d", a.Len())
	}
}

// TestSemiDynamicDirect exercises the deletion-only wrapper in isolation
// (Section 2's first construction).
func TestSemiDynamicDirect(t *testing.T) {
	docs := []doc.Doc{
		{ID: 10, Data: []byte("mississippi")},
		{ID: 20, Data: []byte("swiss")},
		{ID: 30, Data: []byte("miss")},
	}
	for _, counting := range []bool{false, true} {
		s := NewSemiDynamic(fmBuilder(docs), 4, counting)
		if s.DocCount() != 3 {
			t.Fatalf("DocCount = %d", s.DocCount())
		}
		if got := s.count([]byte("ss")); got != 4 {
			t.Fatalf("count(ss) = %d, want 4", got)
		}
		if wt, ok := s.Delete(20); !ok || wt != len("swiss") {
			t.Fatalf("Delete(20) = %d,%v", wt, ok)
		}
		if _, ok := s.Delete(20); ok {
			t.Fatal("double delete succeeded")
		}
		if got := s.count([]byte("ss")); got != 3 {
			t.Fatalf("count(ss) after delete = %d, want 3", got)
		}
		var occs []Occurrence
		s.findFunc([]byte("miss"), func(o Occurrence) bool {
			occs = append(occs, o)
			return true
		})
		if len(occs) != 2 {
			t.Fatalf("findFunc(miss) = %v", occs)
		}
		live := s.LiveItems()
		if len(live) != 2 {
			t.Fatalf("LiveItems = %d docs", len(live))
		}
		for _, d := range live {
			if d.ID == 20 {
				t.Fatal("deleted doc still listed live")
			}
		}
		if s.LiveWeight() != len("mississippi")+len("miss") {
			t.Fatalf("LiveWeight = %d", s.LiveWeight())
		}
		if s.DeadWeight() != len("swiss") {
			t.Fatalf("DeadWeight = %d", s.DeadWeight())
		}
	}
}

// TestSemiDynamicEmptyPattern checks the all-positions semantics.
func TestSemiDynamicEmptyPattern(t *testing.T) {
	s := NewSemiDynamic(fmBuilder([]doc.Doc{{ID: 1, Data: []byte("abc")}}), 4, false)
	if got := s.count(nil); got != 3 {
		t.Fatalf("count(nil) = %d, want 3", got)
	}
	n := 0
	s.findFunc(nil, func(Occurrence) bool { n++; return true })
	if n != 3 {
		t.Fatalf("findFunc(nil) visited %d", n)
	}
}

// TestQuickInsertDeleteFind is a property test: for random payloads over
// a tiny alphabet, Find agrees with the model after a canned op pattern.
func TestQuickInsertDeleteFind(t *testing.T) {
	f := func(payloads [][]byte, pattern []byte, delMask uint16) bool {
		// Sanitize: non-zero bytes, bounded sizes.
		if len(payloads) > 12 {
			payloads = payloads[:12]
		}
		clean := func(b []byte) []byte {
			if len(b) > 64 {
				b = b[:64]
			}
			out := make([]byte, len(b))
			for i, x := range b {
				out[i] = x%4 + 1
			}
			return out
		}
		a := NewAmortized(Options{Builder: fmBuilder, MinCapacity: 16})
		m := newModel()
		for i, p := range payloads {
			d := doc.Doc{ID: uint64(i + 1), Data: clean(p)}
			a.Insert(d)
			m.insert(d)
		}
		for i := range payloads {
			if delMask&(1<<i) != 0 {
				a.Delete(uint64(i + 1))
				m.delete(uint64(i + 1))
			}
		}
		p := clean(pattern)
		if len(p) == 0 {
			p = []byte{1}
		}
		return sameOccs(a.Find(p), m.find(p))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickWorstCase mirrors the property test for Transformation 2.
func TestQuickWorstCase(t *testing.T) {
	f := func(payloads [][]byte, pattern []byte, delMask uint16) bool {
		if len(payloads) > 10 {
			payloads = payloads[:10]
		}
		clean := func(b []byte) []byte {
			if len(b) > 48 {
				b = b[:48]
			}
			out := make([]byte, len(b))
			for i, x := range b {
				out[i] = x%3 + 1
			}
			return out
		}
		w := NewWorstCase(Options{Builder: fmBuilder, MinCapacity: 16, Inline: true})
		m := newModel()
		for i, p := range payloads {
			d := doc.Doc{ID: uint64(i + 1), Data: clean(p)}
			w.Insert(d)
			m.insert(d)
		}
		for i := range payloads {
			if delMask&(1<<i) != 0 {
				w.Delete(uint64(i + 1))
				m.delete(uint64(i + 1))
			}
		}
		p := clean(pattern)
		if len(p) == 0 {
			p = []byte{1}
		}
		return sameOccs(w.Find(p), m.find(p)) && w.Count(p) == m.count(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestCountingMatchesEnumeration cross-checks the Theorem 1 counting path
// against plain enumeration on the same collection.
func TestCountingMatchesEnumeration(t *testing.T) {
	gen := textgen.NewCollection(textgen.CollectionOptions{
		Sigma: 6, MinLen: 50, MaxLen: 200, Seed: 71,
	})
	docs := gen.GenerateTotal(20_000)
	withCnt := NewAmortized(Options{Builder: fmBuilder, Counting: true})
	without := NewAmortized(Options{Builder: fmBuilder})
	for _, d := range docs {
		withCnt.Insert(d)
		without.Insert(d)
	}
	// Delete a third so dead-row filtering matters.
	for i, d := range docs {
		if i%3 == 0 {
			withCnt.Delete(d.ID)
			without.Delete(d.ID)
		}
	}
	ps := textgen.NewPatternSampler(docs, 23)
	for _, l := range []int{1, 2, 4, 8} {
		for i := 0; i < 5; i++ {
			p := ps.Planted(l)
			if a, b := withCnt.Count(p), without.Count(p); a != b {
				t.Fatalf("len %d: counting %d != enumeration %d", l, a, b)
			}
		}
	}
}
