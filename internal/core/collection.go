package core

import (
	"errors"
	"fmt"
	"slices"

	"dyncoll/internal/doc"
	"dyncoll/internal/engine"
)

// Stats reports the engine's ladder state and rebuild counters; it is
// the generic engine's unified stats type, shared by both scheduling
// regimes (WorstStats is a legacy alias).
type Stats = engine.Stats

// WorstStats is an alias of Stats kept for callers of the pre-engine
// API, where the worst-case transformation had its own counter struct.
type WorstStats = engine.Stats

// ladderConfig assembles the engine's payload contract for documents:
// keys are document IDs, weights are payload symbol counts, C0 is the
// uncompressed generalized suffix tree, and static sub-collections are
// SemiDynamic wrappers over the configured index builder.
func ladderConfig(opts Options) engine.Config[uint64, doc.Doc] {
	return engine.Config[uint64, doc.Doc]{
		Key:    func(d doc.Doc) uint64 { return d.ID },
		Weight: func(d doc.Doc) int { return len(d.Data) },
		NewC0:  func() engine.Mutable[uint64, doc.Doc] { return newC0() },
		Build: func(docs []doc.Doc, tau int) engine.Store[uint64, doc.Doc] {
			return NewSemiDynamic(opts.Builder(docs), tau, opts.Counting)
		},
		Tau:         opts.Tau,
		Epsilon:     opts.Epsilon,
		Ratio2:      opts.Ratio2,
		MinCapacity: opts.MinCapacity,
		Inline:      opts.Inline,
	}
}

// NewLadder builds a bare generic engine over the document payload —
// amortized cascades or worst-case scheduling. The Amortized and
// WorstCase wrappers below add the document query API; the engine-level
// conformance suite drives the ladder directly.
func NewLadder(opts Options, worstCase bool) engine.Ladder[uint64, doc.Doc] {
	opts = opts.withDefaults()
	if worstCase {
		return engine.NewWorstCase(ladderConfig(opts))
	}
	return engine.NewAmortized(ladderConfig(opts))
}

// collection adapts a generic engine ladder to the document collection
// API: validation and typed errors on updates, pattern queries fanned
// out over the ladder's live stores.
type collection struct {
	eng  engine.Ladder[uint64, doc.Doc]
	opts Options
}

// Amortized is Transformation 1 (and, with Options.Ratio2,
// Transformation 3): a fully-dynamic compressed document index with
// amortized update bounds. It is not safe for concurrent use.
type Amortized struct{ collection }

// NewAmortized creates an empty collection with amortized update bounds.
func NewAmortized(opts Options) *Amortized {
	opts = opts.withDefaults()
	return &Amortized{collection{eng: engine.NewAmortized(ladderConfig(opts)), opts: opts}}
}

// WorstCase is Transformation 2: a fully-dynamic compressed document
// index whose update operations perform a bounded amount of foreground
// work per call — rebuilds run on background goroutines while locked
// copies keep answering queries (see internal/engine for the machinery).
// Every operation serializes on the engine's internal mutex, so a
// WorstCase collection is safe for concurrent use.
type WorstCase struct{ collection }

// NewWorstCase creates an empty collection with worst-case update
// bounds.
func NewWorstCase(opts Options) *WorstCase {
	opts = opts.withDefaults()
	return &WorstCase{collection{eng: engine.NewWorstCase(ladderConfig(opts)), opts: opts}}
}

// wrapInsertErr translates the engine's duplicate-key error into the
// package's typed document error.
func wrapInsertErr(err error, id uint64) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, engine.ErrDuplicateKey) {
		return fmt.Errorf("core: insert id %d: %w", id, ErrDuplicateID)
	}
	return err
}

// Insert adds a document. It returns ErrDuplicateID or ErrReservedByte
// on invalid input.
func (c *collection) Insert(d doc.Doc) error {
	if !d.Valid() {
		return fmt.Errorf("core: insert id %d: %w", d.ID, ErrReservedByte)
	}
	return wrapInsertErr(c.eng.Insert(d), d.ID)
}

// InsertBatch adds many documents in one ingest. The whole batch is
// validated first — on any ErrDuplicateID / ErrReservedByte nothing is
// inserted — and then placed with at most one ladder rebuild cascade,
// instead of the cascade-per-document cost of looped Insert calls.
func (c *collection) InsertBatch(docs []doc.Doc) error {
	if len(docs) == 0 {
		return nil
	}
	for _, d := range docs {
		if !d.Valid() {
			return fmt.Errorf("core: insert id %d: %w", d.ID, ErrReservedByte)
		}
	}
	// Duplicate validation (live IDs and in-batch repeats) happens in the
	// engine, atomically under its own lock; its error names the
	// offending key.
	if err := c.eng.InsertBatch(docs); err != nil {
		if errors.Is(err, engine.ErrDuplicateKey) {
			return fmt.Errorf("core: insert batch: %w: %v", ErrDuplicateID, err)
		}
		return err
	}
	return nil
}

// Delete removes the document with the given ID, reporting whether it
// was present. Deletions are lazy; the engine purges or merges
// structures that cross their dead-fraction thresholds.
func (c *collection) Delete(id uint64) bool { return c.eng.Delete(id) }

// DeleteBatch removes every listed document that is live, returning the
// number actually removed. Purge checks and rebuild triggers run once
// after the whole batch instead of per deletion.
func (c *collection) DeleteBatch(ids []uint64) int { return c.eng.DeleteBatch(ids) }

// Has reports whether a live document with the given ID exists.
func (c *collection) Has(id uint64) bool { return c.eng.Has(id) }

// DocIDs returns the IDs of all live documents in unspecified order.
func (c *collection) DocIDs() []uint64 { return c.eng.Keys() }

// Len reports the number of live payload symbols.
func (c *collection) Len() int { return c.eng.Len() }

// DocCount reports the number of live documents.
func (c *collection) DocCount() int { return c.eng.Count() }

// FindFunc calls fn for every occurrence of pattern across all live
// documents; enumeration stops early if fn returns false. An empty
// pattern matches at every live position.
func (c *collection) FindFunc(pattern []byte, fn func(Occurrence) bool) {
	c.eng.View(func(stores []engine.Store[uint64, doc.Doc]) {
		stop := false
		wrapped := func(o Occurrence) bool {
			if !fn(o) {
				stop = true
				return false
			}
			return true
		}
		for _, s := range stores {
			s.(docStore).findFunc(pattern, wrapped)
			if stop {
				return
			}
		}
	})
}

// groupedStore is the optional store-level grouped enumeration; stores
// without it (the C0 suffix tree) fall back to collect-and-sort.
type groupedStore interface {
	findGroupedFunc(pattern []byte, fn func(Occurrence) bool)
}

// FindGroupedFunc calls fn for every occurrence of pattern, grouped by
// document: each document's occurrences arrive contiguously with
// offsets ascending (the order ranked search aggregates over; group
// order across documents is unspecified). Grouping per store suffices
// globally because every live document is owned by exactly one store in
// the view. Enumeration stops early if fn returns false.
func (c *collection) FindGroupedFunc(pattern []byte, fn func(Occurrence) bool) {
	c.eng.View(func(stores []engine.Store[uint64, doc.Doc]) {
		stop := false
		wrapped := func(o Occurrence) bool {
			if !fn(o) {
				stop = true
				return false
			}
			return true
		}
		for _, s := range stores {
			if gs, ok := s.(groupedStore); ok {
				gs.findGroupedFunc(pattern, wrapped)
			} else {
				groupedFallback(s.(docStore), pattern, wrapped)
			}
			if stop {
				return
			}
		}
	})
}

// groupedFallback imposes the grouped order on a store that can only
// stream: collect everything, sort by (document, offset), replay.
func groupedFallback(ds docStore, pattern []byte, fn func(Occurrence) bool) {
	var occs []Occurrence
	ds.findFunc(pattern, func(o Occurrence) bool {
		occs = append(occs, o)
		return true
	})
	slices.SortFunc(occs, func(a, b Occurrence) int {
		if a.DocID != b.DocID {
			if a.DocID < b.DocID {
				return -1
			}
			return 1
		}
		return a.Off - b.Off
	})
	for _, o := range occs {
		if !fn(o) {
			return
		}
	}
}

// Find returns every occurrence of pattern.
func (c *collection) Find(pattern []byte) []Occurrence {
	var out []Occurrence
	c.FindFunc(pattern, func(o Occurrence) bool {
		out = append(out, o)
		return true
	})
	return out
}

// countStore is the package-level Query callback for Count: taking the
// pattern as an argument (rather than capturing it) keeps the steady-
// state Count path free of closure allocations.
func countStore(s engine.Store[uint64, doc.Doc], pattern []byte) int {
	return s.(docStore).count(pattern)
}

// Count returns the number of occurrences of pattern (Theorem 1 when
// Options.Counting is set; otherwise it enumerates).
func (c *collection) Count(pattern []byte) int {
	return c.eng.Query(pattern, countStore)
}

// Extract returns length payload bytes of document id starting at off.
// Both the owner map and the owning store must agree the document is
// live; a disagreement (an engine invariant violation) reports false
// rather than a phantom empty payload.
func (c *collection) Extract(id uint64, off, length int) ([]byte, bool) {
	var data []byte
	ok := false
	found := c.eng.ViewOwner(id, func(st engine.Store[uint64, doc.Doc]) {
		data, ok = st.(docStore).extract(id, off, length)
	})
	return data, found && ok
}

// DocLen returns the payload length of document id, with the same
// owner/store agreement rule as Extract.
func (c *collection) DocLen(id uint64) (int, bool) {
	var n int
	ok := false
	found := c.eng.ViewOwner(id, func(st engine.Store[uint64, doc.Doc]) {
		n, ok = st.(docStore).docLen(id)
	})
	return n, found && ok
}

// WaitIdle blocks until background builds (worst-case scheduling only)
// have completed and been installed; the amortized engine returns
// immediately.
func (c *collection) WaitIdle() { c.eng.WaitIdle() }

// SizeBits estimates the total footprint for space accounting.
func (c *collection) SizeBits() int64 { return c.eng.SizeBits() }

// Stats returns the engine's rebuild counters and current layout.
func (c *collection) Stats() Stats { return c.eng.Stats() }

// Tau reports the τ currently in effect.
func (c *collection) Tau() int { return c.eng.Tau() }
