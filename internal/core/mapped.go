package core

import (
	"dyncoll/internal/doc"
	"dyncoll/internal/engine"
	"dyncoll/internal/snap"
)

// The v2 (mapped) snapshot adapter. Where EncodeSnapshot serializes a
// store as one varint blob, DumpMapped splits it in two: a small heap
// meta record (slot, build generation, mode, dead-document list) and a
// pure MapEncoder payload that the loader can serve in place from a
// page-aligned mapped section. Stores whose index cannot produce a
// mapped layout fall back to raw items inside the meta record and are
// rebuilt through the Builder at open — custom registry indexes keep
// working in v2, they just do not get the O(1) open.

// mappedIndex is the optional mapped fast-path contract (the built-in
// fm, sa and csa indexes all implement it).
type mappedIndex interface {
	EncodeMapped(e *snap.MapEncoder)
}

// IndexOpener reconstructs a StaticIndex view over the payload bytes
// its EncodeMapped produced. nil means the index has no mapped open
// support.
type IndexOpener func(mv *snap.MapView) (StaticIndex, error)

// RetainFunc is told about every store opened in place: payload is the
// exact mapped byte range backing it and store the object whose
// lifetime controls when those pages can be released. The facade uses
// it for residency accounting and to madvise superseded sections away.
type RetainFunc func(payload []byte, store any)

// MappedStore is one static store of a v2 snapshot.
type MappedStore struct {
	Meta    []byte // heap-decoded: slot, gen, mode, dead list / raw items
	Payload []byte // mapped in place; empty for item-mode stores
}

// DumpMapped captures the quiesced ladder in v2 form: spine bytes plus
// one MappedStore per static store.
func (c *collection) DumpMapped() ([]byte, []MappedStore) {
	d := c.eng.Dump()
	var se snap.Encoder
	encodeSpine(&se, &d)
	stores := make([]MappedStore, 0, len(d.Stores))
	for _, ds := range d.Stores {
		var meta snap.Encoder
		meta.Varint(int64(ds.Level))
		meta.Uvarint(ds.Gen)
		var payload []byte
		if sd, ok := ds.Store.(*SemiDynamic); ok {
			if mi, ok := sd.idx.(mappedIndex); ok {
				meta.Byte(snap.ModeMapped)
				meta.Uint64s(sd.deadIDs())
				var me snap.MapEncoder
				mi.EncodeMapped(&me)
				payload = me.Bytes()
			}
		}
		if payload == nil {
			meta.Byte(snap.ModeItems)
			encodeDocs(&meta, ds.Store.LiveItems())
		}
		stores = append(stores, MappedStore{Meta: meta.Bytes(), Payload: payload})
	}
	return se.Bytes(), stores
}

// RestoreMapped installs a v2 dump into the collection's (empty)
// engine. open reconstructs mapped payloads (nil fails any ModeMapped
// store); retain, when non-nil, is invoked for every store served in
// place. Deletion bitmaps stay deferred: a mapped store with an empty
// dead list costs O(docs) heap, one with deletions replays them and
// materializes only its own bitmaps. The error contract matches
// DecodeSnapshot: corruption fails with snap.ErrBadSnapshot, never a
// panic, and the collection must be discarded on error.
func (c *collection) RestoreMapped(spine []byte, stores []MappedStore, open IndexOpener, retain RetainFunc) error {
	dec := snap.NewDecoder(spine)
	var d engine.Dump[uint64, doc.Doc]
	if err := decodeSpine(dec, &d); err != nil {
		return err
	}
	if n := dec.Remaining(); n != 0 {
		return snap.Corruptf("%d trailing spine bytes", n)
	}
	for _, ms := range stores {
		mdec := snap.NewDecoder(ms.Meta)
		level := int(mdec.Varint())
		gen := mdec.Uvarint()
		mode := mdec.Byte()
		if err := mdec.Err(); err != nil {
			return err
		}
		var st engine.Store[uint64, doc.Doc]
		switch mode {
		case snap.ModeMapped:
			dead := mdec.Uint64s()
			if err := mdec.Err(); err != nil {
				return err
			}
			if n := mdec.Remaining(); n != 0 {
				return snap.Corruptf("%d trailing meta bytes at level %d", n, level)
			}
			if open == nil {
				return snap.Corruptf("mapped level %d but index has no mapped opener", level)
			}
			idx, err := open(snap.NewMapView(ms.Payload))
			if err != nil {
				return snap.Corruptf("level %d mapped index: %v", level, err)
			}
			sd := NewSemiDynamicDeferred(idx, d.Tau, c.opts.Counting)
			if len(sd.byID) != idx.DocCount() {
				return snap.Corruptf("level %d index repeats document IDs", level)
			}
			for _, id := range dead {
				if _, ok := sd.Delete(id); !ok {
					return snap.Corruptf("level %d deletes unknown document %d", level, id)
				}
			}
			if retain != nil {
				retain(ms.Payload, sd)
			}
			st = sd
		case snap.ModeItems:
			docs := decodeDocs(mdec)
			if err := mdec.Err(); err != nil {
				return err
			}
			if n := mdec.Remaining(); n != 0 {
				return snap.Corruptf("%d trailing meta bytes at level %d", n, level)
			}
			sd := NewSemiDynamic(c.opts.Builder(docs), d.Tau, c.opts.Counting)
			if len(sd.byID) != len(docs) {
				return snap.Corruptf("level %d repeats document IDs", level)
			}
			st = sd
		default:
			return snap.Corruptf("unknown mapped store mode %d", mode)
		}
		d.Stores = append(d.Stores, engine.StoreDump[uint64, doc.Doc]{Level: level, Gen: gen, Store: st})
	}
	return c.eng.Restore(d)
}
