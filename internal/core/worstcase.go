package core

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"dyncoll/internal/doc"
)

// WorstCase is Transformation 2: a fully-dynamic compressed document
// index whose update operations perform a bounded amount of foreground
// work per call.
//
// The machinery follows Section 3 of the paper:
//
//   - sub-collections C0 … Cr hold at most an O(1/τ) fraction of the
//     data; the bulk lives in top collections T1 … Tg (g = O(τ));
//   - merging Cj into Cj+1 locks Cj (it keeps answering queries as Lj)
//     and constructs the replacement Nj+1 in the background; small
//     per-document Temp indexes keep new arrivals queryable meanwhile;
//   - documents too large for the ladder (≥ nf/τ) become their own top
//     collection immediately;
//   - deletions are lazy everywhere; a sweep process purges the top
//     collection holding the most dead symbols after every
//     nf/(2τ·log τ) deleted symbols, which by Dietz–Sleator (Lemma 1)
//     bounds every top's dead fraction by O(1/τ);
//   - when n drifts a factor 2 from nf, a background rebalance rebuilds
//     the whole collection into fresh top collections (Section A.3).
//
// The paper charges background construction to subsequent updates via
// work credits, and its scheduling lemma proves a slot is never needed
// again before its in-flight rebuild completes. This implementation runs
// construction on separate goroutines instead; because real build speed
// is machine-dependent, the scheduling lemma is replaced by a
// non-blocking fallback — when a slot is still busy, the update parks the
// new document in a per-level temp index (cost proportional to the
// document) or defers the merge until the build lands. Foreground work
// per update therefore stays proportional to the update itself, which is
// the guarantee Transformation 2 exists to provide. Options.Inline forces
// synchronous completion for deterministic tests.
type WorstCase struct {
	mu   sync.Mutex
	opts Options

	c0     *c0store
	levels []*SemiDynamic   // Cj, j ≥ 1; index 0 unused
	locked []*SemiDynamic   // Lj, parallel to levels
	temps  [][]*SemiDynamic // parked single-document indexes per level
	tops   []*SemiDynamic   // T1…Tg
	maxes  []int

	pendingMerge []bool // deletion-triggered merges waiting for a free slot

	retiring []store // sources of in-flight builds, still queryable

	owner map[uint64]store

	builds      []*buildTask
	rebalancing bool
	needsReb    bool

	nf, tau int

	deletedSinceSweep int

	stats WorstStats
}

// WorstStats reports internal counters for invariant tests and traces.
type WorstStats struct {
	BackgroundBuilds int
	SyncBuilds       int
	TempParks        int
	TopPurges        int
	Rebalances       int
	Tops             int
	MaxTops          int
	LevelSizes       []int
	LevelCaps        []int
	TopSizes         []int
	TopDead          []int
}

type buildKind int

const (
	buildLevel     buildKind = iota // result becomes levels[target]
	buildTop                        // result becomes new top collection(s)
	buildRebalance                  // result replaces the whole collection's tops
)

type buildTask struct {
	kind   buildKind
	target int // level index for buildLevel
	// eager holds documents already materialized (C0 contents, the newly
	// inserted document); lazy holds snapshots whose payloads the
	// background goroutine extracts from immutable static indexes, so the
	// foreground never pays for decompression.
	eager   []doc.Doc
	lazy    []lazySrc
	sources []store
	split   int // buildTop/buildRebalance: max symbols per resulting top (0 = no split)
	done    chan []*SemiDynamic

	// tombstones records documents deleted from the sources while the
	// build is in flight. The background goroutine applies the ones it
	// sees before publishing, so the foreground install step only has to
	// process stragglers — keeping finish() cheap even after long builds.
	tmu        sync.Mutex
	tombstones []uint64
	applied    int // prefix of tombstones already applied by the builder
}

// addTombstone records a raced deletion.
func (t *buildTask) addTombstone(id uint64) {
	t.tmu.Lock()
	t.tombstones = append(t.tombstones, id)
	t.tmu.Unlock()
}

// addStore appends a store's live documents to the task: C0 content is
// materialized immediately (it is uncompressed), compressed structures
// are snapshot by document index and extracted during the build.
func (t *buildTask) addStore(s store) {
	switch v := s.(type) {
	case *SemiDynamic:
		t.lazy = append(t.lazy, v.lazySnapshot())
	default:
		t.eager = append(t.eager, s.liveDocs()...)
	}
	t.sources = append(t.sources, s)
}

// docCount reports how many documents the task will build over.
func (t *buildTask) docCount() int {
	n := len(t.eager)
	for _, l := range t.lazy {
		n += len(l.docIdxs)
	}
	return n
}

// NewWorstCase creates an empty collection with worst-case update bounds.
func NewWorstCase(opts Options) *WorstCase {
	opts = opts.withDefaults()
	w := &WorstCase{
		c0:    newC0(),
		opts:  opts,
		owner: make(map[uint64]store),
	}
	w.reschedule(0)
	return w
}

// reschedule re-derives nf, τ and the ladder; the ladder stops at
// ~nf/τ so that sub-collections hold only an O(1/τ) fraction of the data
// (Section 3, "Data Structures").
func (w *WorstCase) reschedule(n int) {
	w.nf = n
	w.tau = w.opts.Tau
	if w.tau == 0 {
		w.tau = autoTau(n)
	}
	lg := float64(log2(n))
	if lg < 2 {
		lg = 2
	}
	max0 := float64(2*n) / (lg * lg)
	if max0 < float64(w.opts.MinCapacity) {
		max0 = float64(w.opts.MinCapacity)
	}
	ratio := math.Pow(lg, w.opts.Epsilon)
	if ratio < 1.5 {
		ratio = 1.5
	}
	topCap := float64(n) / float64(w.tau)
	if topCap < max0*2 {
		topCap = max0 * 2
	}
	w.maxes = w.maxes[:0]
	w.maxes = append(w.maxes, int(max0))
	cap := max0
	for cap < topCap && len(w.maxes) < 64 {
		cap *= ratio
		w.maxes = append(w.maxes, int(cap))
	}
	for len(w.levels) < len(w.maxes)+1 {
		w.levels = append(w.levels, nil)
		w.locked = append(w.locked, nil)
		w.temps = append(w.temps, nil)
		w.pendingMerge = append(w.pendingMerge, false)
	}
}

// topCap is the maximum size of a multi-document top collection (4nf/τ).
func (w *WorstCase) topCap() int {
	c := 4 * w.nf / w.tau
	if c < 2*w.opts.MinCapacity {
		c = 2 * w.opts.MinCapacity
	}
	return c
}

// bigDoc reports whether a document is large enough to become its own
// top collection (≥ nf/τ).
func (w *WorstCase) bigDoc(n int) bool {
	threshold := w.nf / w.tau
	if threshold < w.opts.MinCapacity {
		threshold = w.opts.MinCapacity
	}
	return n >= threshold
}

// targetBusy reports whether a build installing into level t is in
// flight (two builds must never race for one slot).
func (w *WorstCase) targetBusy(t int) bool {
	for _, b := range w.builds {
		if b.kind == buildLevel && b.target == t {
			return true
		}
	}
	return false
}

// slotBusy reports whether merging level j into j+1 must wait: the level
// is already locked (its docs belong to an in-flight build) or another
// build is installing into j+1.
func (w *WorstCase) slotBusy(j int) bool {
	if j < len(w.locked) && w.locked[j] != nil {
		return true
	}
	return w.targetBusy(j + 1)
}

// launch starts a build task, synchronously in Inline mode.
func (w *WorstCase) launch(t *buildTask) {
	t.done = make(chan []*SemiDynamic, 1)
	w.builds = append(w.builds, t)
	w.retiring = append(w.retiring, t.sources...)
	w.stats.BackgroundBuilds++
	tau, counting, builder := w.tau, w.opts.Counting, w.opts.Builder
	run := func() {
		docs := make([]doc.Doc, 0, t.docCount())
		docs = append(docs, t.eager...)
		for _, l := range t.lazy {
			docs = l.materialize(docs)
		}
		var out []*SemiDynamic
		if t.split > 0 {
			for _, chunk := range splitDocs(docs, t.split) {
				out = append(out, buildSemi(builder, chunk, tau, counting))
			}
		} else {
			out = append(out, buildSemi(builder, docs, tau, counting))
		}
		// Pre-apply the deletions that raced with the build; stragglers
		// arriving after this point are handled by finish().
		t.tmu.Lock()
		for _, id := range t.tombstones {
			for _, res := range out {
				if res.delete(id) {
					break
				}
			}
		}
		t.applied = len(t.tombstones)
		t.tmu.Unlock()
		t.done <- out
	}
	if w.opts.Inline {
		run()
		w.drainLocked(true)
		return
	}
	go run()
}

// splitDocs partitions docs into chunks of at most maxSymbols payload
// symbols (single oversized documents get their own chunk).
func splitDocs(docs []doc.Doc, maxSymbols int) [][]doc.Doc {
	var out [][]doc.Doc
	var cur []doc.Doc
	sz := 0
	for _, d := range docs {
		if len(cur) > 0 && sz+len(d.Data) > maxSymbols {
			out = append(out, cur)
			cur, sz = nil, 0
		}
		cur = append(cur, d)
		sz += len(d.Data)
	}
	if len(cur) > 0 {
		out = append(out, cur)
	}
	return out
}

// drainLocked absorbs finished builds; if wait is true it blocks until
// all in-flight builds complete. Callers hold w.mu.
func (w *WorstCase) drainLocked(wait bool) {
	for i := 0; i < len(w.builds); {
		t := w.builds[i]
		var out []*SemiDynamic
		if wait {
			out = <-t.done
		} else {
			select {
			case out = <-t.done:
			default:
				i++
				continue
			}
		}
		w.finish(t, out)
		w.builds = append(w.builds[:i], w.builds[i+1:]...)
	}
	w.reconcile()
	if w.needsReb && !w.rebalancing {
		w.needsReb = false
		w.startRebalance()
	}
}

// reconcile launches deferred work once slots free up: parked temp
// indexes are folded into their level, and deletion-triggered merges that
// found the slot busy are retried.
func (w *WorstCase) reconcile() {
	for j := 1; j < len(w.maxes); j++ {
		if w.pendingMerge[j] {
			if w.levels[j] == nil || w.levels[j].deletedSymbols() < w.maxes[j]/2 {
				w.pendingMerge[j] = false
			} else if !w.mergeBlocked(j) {
				w.pendingMerge[j] = false
				w.mergeLevelUp(j)
			}
		}
	}
	for t := 1; t < len(w.temps); t++ {
		if len(w.temps[t]) == 0 || w.targetBusy(t) {
			continue
		}
		w.foldTemps(t)
	}
}

// foldTemps merges the parked temp indexes of slot t (plus the level
// occupying it, if any) into the smallest level that fits, or into a new
// top collection.
func (w *WorstCase) foldTemps(t int) {
	task := &buildTask{}
	size := 0
	for _, tmp := range w.temps[t] {
		task.addStore(tmp)
		size += tmp.liveSymbols()
	}
	w.temps[t] = nil
	if t < len(w.maxes) && w.levels[t] != nil {
		task.addStore(w.levels[t])
		size += w.levels[t].liveSymbols()
	}
	if task.docCount() == 0 {
		// Everything parked here was deleted in the meantime.
		w.clearSlots(task.sources)
		return
	}
	// Find the smallest level ≥ t with capacity for the union.
	for k := t; k < len(w.maxes); k++ {
		if size <= w.maxes[k] && !w.targetBusy(k) && (k == t || w.levels[k] == nil) {
			w.detachForBuild(task.sources)
			task.kind, task.target = buildLevel, k
			w.launch(task)
			return
		}
	}
	w.detachForBuild(task.sources)
	task.kind, task.split = buildTop, w.topCap()
	w.launch(task)
}

// detachForBuild removes sources from temp lists but leaves them
// queryable via the retiring list (finish clears level/locked slots).
func (w *WorstCase) detachForBuild(sources []store) {
	isSrc := make(map[store]bool, len(sources))
	for _, s := range sources {
		isSrc[s] = true
	}
	for j := range w.temps {
		kept := w.temps[j][:0]
		for _, tmp := range w.temps[j] {
			if !isSrc[tmp] {
				kept = append(kept, tmp)
			}
		}
		w.temps[j] = kept
	}
}

// clearSlots drops empty retired structures from every slot.
func (w *WorstCase) clearSlots(sources []store) {
	isSrc := make(map[store]bool, len(sources))
	for _, s := range sources {
		isSrc[s] = true
	}
	for j := range w.temps {
		kept := w.temps[j][:0]
		for _, tmp := range w.temps[j] {
			if !isSrc[tmp] {
				kept = append(kept, tmp)
			}
		}
		w.temps[j] = kept
		if w.levels[j] != nil && isSrc[w.levels[j]] {
			w.levels[j] = nil
		}
	}
}

// finish installs the result of a completed build: snapshot documents
// move to the new structures unless they were deleted mid-build, and the
// source structures are retired.
func (w *WorstCase) finish(t *buildTask, out []*SemiDynamic) {
	isSource := make(map[store]bool, len(t.sources))
	for _, s := range t.sources {
		isSource[s] = true
	}
	// Apply straggler tombstones the builder missed after its seal point.
	t.tmu.Lock()
	for _, id := range t.tombstones[t.applied:] {
		for _, res := range out {
			if res.delete(id) {
				break
			}
		}
	}
	t.applied = len(t.tombstones)
	t.tmu.Unlock()
	// Reassign ownership; weed out any remaining raced deletions.
	for _, res := range out {
		for _, id := range res.liveIDs() {
			cur, alive := w.owner[id]
			if alive && isSource[cur] {
				w.owner[id] = res
			} else {
				res.delete(id)
			}
		}
	}
	// Retire sources from their slots.
	for j := range w.locked {
		if w.locked[j] != nil && isSource[w.locked[j]] {
			w.locked[j] = nil
		}
		if w.levels[j] != nil && isSource[w.levels[j]] {
			w.levels[j] = nil
		}
		kept := w.temps[j][:0]
		for _, tmp := range w.temps[j] {
			if !isSource[tmp] {
				kept = append(kept, tmp)
			}
		}
		w.temps[j] = kept
	}
	kept := w.tops[:0]
	for _, tp := range w.tops {
		if !isSource[tp] {
			kept = append(kept, tp)
		}
	}
	w.tops = kept
	if isSource[w.c0] {
		// Only rebalance retires C0; a fresh one was installed at launch.
		panic("core: C0 retired outside rebalance")
	}
	ret := w.retiring[:0]
	for _, s := range w.retiring {
		if !isSource[s] {
			ret = append(ret, s)
		}
	}
	w.retiring = ret

	switch t.kind {
	case buildLevel:
		if w.levels[t.target] != nil {
			panic("core: level build target occupied")
		}
		w.levels[t.target] = out[0]
	case buildTop:
		w.tops = append(w.tops, out...)
	case buildRebalance:
		w.tops = append(w.tops, out...)
		w.rebalancing = false
		w.stats.Rebalances++
	}
	w.dropEmptyTops()
	if len(w.tops) > w.stats.MaxTops {
		w.stats.MaxTops = len(w.tops)
	}
}

func (w *WorstCase) dropEmptyTops() {
	kept := w.tops[:0]
	for _, tp := range w.tops {
		if tp.liveSymbols() > 0 {
			kept = append(kept, tp)
		}
	}
	w.tops = kept
}

// Len reports live payload symbols.
func (w *WorstCase) Len() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.lenLocked()
}

func (w *WorstCase) lenLocked() int {
	n := 0
	for _, s := range w.allStores() {
		n += s.liveSymbols()
	}
	return n
}

// allStores lists every queryable store exactly once.
func (w *WorstCase) allStores() []store {
	out := []store{store(w.c0)}
	for j := range w.levels {
		if w.levels[j] != nil {
			out = append(out, w.levels[j])
		}
		if w.locked[j] != nil {
			out = append(out, w.locked[j])
		}
		for _, tmp := range w.temps[j] {
			out = append(out, tmp)
		}
	}
	for _, tp := range w.tops {
		out = append(out, tp)
	}
	// Retiring stores not already listed (rebalance sources: old c0,
	// old levels, old tops were removed from their slots at launch).
	listed := make(map[store]bool, len(out))
	for _, s := range out {
		listed[s] = true
	}
	for _, s := range w.retiring {
		if !listed[s] {
			out = append(out, s)
			listed[s] = true
		}
	}
	return out
}

// DocCount reports the number of live documents.
func (w *WorstCase) DocCount() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.owner)
}

// DocIDs returns the IDs of all live documents in unspecified order.
func (w *WorstCase) DocIDs() []uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]uint64, 0, len(w.owner))
	for id := range w.owner {
		out = append(out, id)
	}
	return out
}

// Has reports whether document id is live.
func (w *WorstCase) Has(id uint64) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	_, ok := w.owner[id]
	return ok
}

// validateNew checks that a document may enter the collection. Callers
// hold w.mu.
func (w *WorstCase) validateNew(d doc.Doc, seen map[uint64]bool) error {
	if _, dup := w.owner[d.ID]; dup || (seen != nil && seen[d.ID]) {
		return fmt.Errorf("core: insert id %d: %w", d.ID, ErrDuplicateID)
	}
	if !d.Valid() {
		return fmt.Errorf("core: insert id %d: %w", d.ID, ErrReservedByte)
	}
	return nil
}

// Insert adds a document (Section 3, "Insertions"). It returns
// ErrDuplicateID or ErrReservedByte on invalid input.
func (w *WorstCase) Insert(d doc.Doc) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.validateNew(d, nil); err != nil {
		return err
	}
	w.drainLocked(false)
	w.placeOne(d)
	w.checkRebalance()
	return nil
}

// placeOne routes a validated document: into C0 if it fits, into its
// own top collection if huge, through the ladder otherwise. Callers
// hold w.mu and run checkRebalance afterwards.
func (w *WorstCase) placeOne(d doc.Doc) {
	switch {
	case w.c0.liveSymbols()+len(d.Data) <= w.maxes[0]:
		w.c0.insert(d)
		w.owner[d.ID] = w.c0

	case w.bigDoc(len(d.Data)):
		// A huge document becomes its own top collection immediately;
		// the build cost is proportional to the inserted data.
		tp := buildSemi(w.opts.Builder, []doc.Doc{d}, w.tau, w.opts.Counting)
		w.tops = append(w.tops, tp)
		w.owner[d.ID] = tp
		w.stats.SyncBuilds++

	default:
		w.insertViaLadder(d)
	}
}

// InsertBatch adds many documents in one ingest. The whole batch is
// validated first — on any ErrDuplicateID / ErrReservedByte nothing is
// inserted. A batch larger than C0's capacity is bulk-built directly
// into top collections (split at the top-capacity bound), so the
// per-document ladder cascades of looped Insert calls collapse into one
// build pass followed by at most one rebalance. Smaller batches route
// through the normal placement machinery: the first overflow empties C0
// into the ladder and the rest of the batch fits in the fresh C0, so
// C0 keeps draining and tops never accumulate per call.
func (w *WorstCase) InsertBatch(docs []doc.Doc) error {
	if len(docs) == 0 {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.drainLocked(false)
	seen := make(map[uint64]bool, len(docs))
	total := 0
	for _, d := range docs {
		if err := w.validateNew(d, seen); err != nil {
			return err
		}
		seen[d.ID] = true
		total += len(d.Data)
	}
	switch {
	case w.c0.liveSymbols()+total <= w.maxes[0]:
		for _, d := range docs {
			w.c0.insert(d)
			w.owner[d.ID] = w.c0
		}
	case total <= w.maxes[0]:
		for _, d := range docs {
			w.placeOne(d)
		}
	default:
		// Re-derive the capacity schedule from the post-batch size first:
		// chunks are then sized by the correct (larger) top capacity, and
		// the post-ingest rebalance check is a no-op instead of
		// immediately rebuilding the freshly built tops a second time.
		w.reschedule(w.lenLocked() + total)
		for _, chunk := range splitDocs(docs, w.topCap()) {
			tp := buildSemi(w.opts.Builder, chunk, w.tau, w.opts.Counting)
			w.tops = append(w.tops, tp)
			for _, d := range chunk {
				w.owner[d.ID] = tp
			}
			w.stats.SyncBuilds++
		}
		if len(w.tops) > w.stats.MaxTops {
			w.stats.MaxTops = len(w.tops)
		}
	}
	w.checkRebalance()
	return nil
}

// insertViaLadder finds the first Cj+1 that can absorb Cj and the new
// document, locking Cj and building the replacement in the background.
// If every candidate slot is busy with an in-flight build, the document
// is parked in a temp index (work proportional to the document) and
// folded in once the build lands — the non-blocking realization of the
// paper's scheduling lemma.
func (w *WorstCase) insertViaLadder(d doc.Doc) {
	r := len(w.maxes) - 1
	for j := 0; j <= r; j++ {
		szJ := w.levelSize(j)
		var capNext int
		if j == r {
			capNext = int(^uint(0) >> 1) // anything fits in a new top
		} else {
			capNext = w.maxes[j+1]
		}
		if szJ+w.levelSize(j+1)+len(d.Data) > capNext {
			continue
		}
		if w.slotBusy(j) {
			// Don't wait for the in-flight build. Small documents overflow
			// into C0 (soft cap 2·max_0, still O(n/log²n) space); larger
			// ones are parked in a temp index built in O(|T|·u) time.
			if j == 0 && w.c0.liveSymbols()+len(d.Data) <= 2*w.maxes[0] {
				w.c0.insert(d)
				w.owner[d.ID] = w.c0
				return
			}
			tmp := buildSemi(w.opts.Builder, []doc.Doc{d}, w.tau, w.opts.Counting)
			w.temps[j+1] = append(w.temps[j+1], tmp)
			w.owner[d.ID] = tmp
			w.stats.TempParks++
			return
		}
		small := w.maxes[j] / 2
		if len(d.Data) >= small && j < r {
			// Large document relative to the level: rebuild synchronously,
			// cost proportional to the document size.
			docs := w.takeLevelDocs(j)
			if w.levels[j+1] != nil {
				docs = append(docs, w.levels[j+1].liveDocs()...)
				w.levels[j+1] = nil
			}
			docs = append(docs, d)
			lvl := buildSemi(w.opts.Builder, docs, w.tau, w.opts.Counting)
			w.levels[j+1] = lvl
			for _, dd := range docs {
				w.owner[dd.ID] = lvl
			}
			w.stats.SyncBuilds++
			return
		}
		// Background merge: lock Cj, index the new document alone in a
		// temp, and build Nj+1 = Lj ∪ Cj+1 ∪ {d} behind the scenes.
		task := &buildTask{kind: buildLevel, target: j + 1}
		if j == 0 {
			old := w.c0
			w.c0 = newC0()
			task.addStore(old)
		} else if w.levels[j] != nil {
			w.locked[j] = w.levels[j]
			w.levels[j] = nil
			task.addStore(w.locked[j])
		}
		if j == r {
			task.kind, task.split = buildTop, w.topCap()
		} else if w.levels[j+1] != nil {
			task.addStore(w.levels[j+1])
		}
		// Include any temps already parked at the target slot.
		target := j + 1
		for _, tmp := range w.temps[target] {
			task.addStore(tmp)
		}
		w.temps[target] = nil
		tmp := buildSemi(w.opts.Builder, []doc.Doc{d}, w.tau, w.opts.Counting)
		w.owner[d.ID] = tmp
		task.addStore(tmp)
		// The fresh temp rides along as a source so it is retired when the
		// merged structure lands; meanwhile it answers queries. Park it in
		// the slot list so allStores sees it exactly once.
		w.temps[target] = append(w.temps[target], tmp)
		w.launch(task)
		return
	}
	panic("core: ladder insertion found no level") // unreachable: top case always fits
}

// levelSize is the live size of Cj (j = 0 → C0), temp indexes parked at
// the slot included.
func (w *WorstCase) levelSize(j int) int {
	n := 0
	if j == 0 {
		n = w.c0.liveSymbols()
	} else if j < len(w.levels) && w.levels[j] != nil {
		n = w.levels[j].liveSymbols()
	}
	if j > 0 && j < len(w.temps) {
		for _, tmp := range w.temps[j] {
			n += tmp.liveSymbols()
		}
	}
	return n
}

// takeLevelDocs removes and returns the live documents of Cj, including
// parked temps.
func (w *WorstCase) takeLevelDocs(j int) []doc.Doc {
	var docs []doc.Doc
	if j == 0 {
		docs = w.c0.liveDocs()
		w.c0 = newC0()
	} else if w.levels[j] != nil {
		docs = w.levels[j].liveDocs()
		w.levels[j] = nil
	}
	if j > 0 {
		for _, tmp := range w.temps[j] {
			docs = append(docs, tmp.liveDocs()...)
		}
		w.temps[j] = nil
	}
	return docs
}

// Delete removes document id (Section 3, "Deletions").
func (w *WorstCase) Delete(id uint64) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.drainLocked(false)
	st, ok := w.owner[id]
	if !ok {
		return false
	}
	dl, _ := st.docLen(id)
	st.delete(id)
	delete(w.owner, id)
	w.tombstoneInBuilds(st, id)

	switch s := st.(type) {
	case *SemiDynamic:
		w.afterSemiDelete(s)
	}
	// The sweep counter tracks every symbol deletion (the paper purges the
	// worst top after each series of nf/(2τ·log τ) deleted symbols).
	w.deletedSinceSweep += dl
	w.maybeSweepTops()
	w.checkRebalance()
	return true
}

// DeleteBatch removes every listed document that is live, returning the
// number actually removed. Dead-fraction checks, the top sweep, and the
// rebalance check run once after the whole batch.
func (w *WorstCase) DeleteBatch(ids []uint64) int {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.drainLocked(false)
	n := 0
	deletedSyms := 0
	touched := make(map[*SemiDynamic]bool)
	for _, id := range ids {
		st, ok := w.owner[id]
		if !ok {
			continue
		}
		dl, _ := st.docLen(id)
		st.delete(id)
		delete(w.owner, id)
		n++
		deletedSyms += dl
		w.tombstoneInBuilds(st, id)
		if s, isSemi := st.(*SemiDynamic); isSemi {
			touched[s] = true
		}
	}
	if n == 0 {
		return 0
	}
	for s := range touched {
		w.afterSemiDelete(s)
	}
	w.deletedSinceSweep += deletedSyms
	w.maybeSweepTops()
	w.checkRebalance()
	return n
}

// tombstoneInBuilds records a raced deletion with every in-flight build
// sourcing st, so the build result never resurrects the document.
func (w *WorstCase) tombstoneInBuilds(st store, id uint64) {
	for _, b := range w.builds {
		for _, src := range b.sources {
			if src == st {
				b.addTombstone(id)
			}
		}
	}
}

// afterSemiDelete enforces the dead-fraction bounds after a lazy delete.
func (w *WorstCase) afterSemiDelete(s *SemiDynamic) {
	// Level with ≥ maxj/2 dead symbols → merge into the next level. If
	// the merge would collide with in-flight work it is deferred to
	// reconcile.
	for j := 1; j < len(w.maxes); j++ {
		if w.levels[j] != s {
			continue
		}
		if s.deletedSymbols() < w.maxes[j]/2 {
			return
		}
		if w.mergeBlocked(j) {
			w.pendingMerge[j] = true
			return
		}
		w.mergeLevelUp(j)
		return
	}
}

// mergeBlocked reports whether merging level j into j+1 must wait: the
// slot machinery is busy, or either participating store already feeds an
// in-flight build (building a store twice would duplicate its
// documents).
func (w *WorstCase) mergeBlocked(j int) bool {
	if w.slotBusy(j) {
		return true
	}
	if w.levels[j] != nil && w.isBuildSource(w.levels[j]) {
		return true
	}
	if j+1 < len(w.levels) && w.levels[j+1] != nil && w.isBuildSource(w.levels[j+1]) {
		return true
	}
	return false
}

// mergeLevelUp locks level j and builds Nj+1 from it (plus the current
// occupant of j+1 and any parked temps) in the background.
func (w *WorstCase) mergeLevelUp(j int) {
	s := w.levels[j]
	w.locked[j] = s
	w.levels[j] = nil
	task := &buildTask{kind: buildLevel, target: j + 1}
	task.addStore(s)
	if j == len(w.maxes)-1 {
		task.kind, task.split = buildTop, w.topCap()
	} else if w.levels[j+1] != nil {
		task.addStore(w.levels[j+1])
	}
	target := j + 1
	if target < len(w.temps) {
		for _, tmp := range w.temps[target] {
			task.addStore(tmp)
		}
	}
	if task.docCount() == 0 {
		w.locked[j] = nil
		if target < len(w.temps) {
			w.temps[target] = nil
		}
		return
	}
	w.launch(task)
}

// maybeSweepTops purges the top collection holding the most dead symbols
// once per nf/(2τ·log τ) symbols deleted since the last sweep (Lemma 1
// then bounds every top's dead fraction by O(1/τ)). A batch deletion can
// bank several intervals at once, so each accrued interval purges one
// more (distinct) top — matching the sweep count looped deletes would
// have produced. Tops already feeding an in-flight build are skipped so
// no document is built twice.
func (w *WorstCase) maybeSweepTops() {
	interval := w.nf / (2 * w.tau * max(1, log2(w.tau)))
	if interval < w.opts.MinCapacity {
		interval = w.opts.MinCapacity
	}
	if w.deletedSinceSweep < interval {
		return
	}
	rounds := w.deletedSinceSweep / interval
	w.deletedSinceSweep %= interval
	busy := make(map[store]bool)
	for _, b := range w.builds {
		for _, s := range b.sources {
			busy[s] = true
		}
	}
	cands := make([]*SemiDynamic, 0, len(w.tops))
	for _, tp := range w.tops {
		if !busy[tp] && tp.deletedSymbols() > 0 {
			cands = append(cands, tp)
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		return cands[i].deletedSymbols() > cands[j].deletedSymbols()
	})
	if rounds > len(cands) {
		rounds = len(cands)
	}
	for _, worst := range cands[:rounds] {
		if worst.liveSymbols() == 0 {
			continue // dropEmptyTops below discards it wholesale
		}
		// An earlier (inline) launch may have enlisted this candidate into
		// a reconcile-triggered build meanwhile; never build a store twice.
		if w.isBuildSource(worst) {
			continue
		}
		task := &buildTask{kind: buildTop, split: w.topCap()}
		task.addStore(worst)
		w.launch(task)
		w.stats.TopPurges++
	}
	w.dropEmptyTops()
}

// isBuildSource reports whether s feeds an in-flight build.
func (w *WorstCase) isBuildSource(s store) bool {
	for _, b := range w.builds {
		for _, src := range b.sources {
			if src == s {
				return true
			}
		}
	}
	return false
}

// checkRebalance triggers the Section A.3 size-maintenance rebuild when n
// drifts a factor 2 away from nf.
func (w *WorstCase) checkRebalance() {
	n := w.lenLocked()
	if n < w.opts.MinCapacity {
		return
	}
	if n >= 2*w.nf || (w.nf > 2*w.opts.MinCapacity && n <= w.nf/2) {
		if w.rebalancing {
			w.needsReb = true
			return
		}
		w.startRebalance()
	}
}

func (w *WorstCase) startRebalance() {
	w.rebalancing = true
	task := &buildTask{kind: buildRebalance}
	n := 0
	take := func(s store) {
		if s.liveSymbols() == 0 && s.liveDocs() == nil && s != store(w.c0) {
			return
		}
		task.addStore(s)
		n += s.liveSymbols()
	}
	take(w.c0)
	w.c0 = newC0()
	for j := range w.levels {
		if w.levels[j] != nil {
			take(w.levels[j])
			w.levels[j] = nil
		}
		for _, tmp := range w.temps[j] {
			take(tmp)
		}
		w.temps[j] = nil
		w.pendingMerge[j] = false
	}
	for _, tp := range w.tops {
		take(tp)
	}
	w.tops = nil
	// Locked stores stay with their in-flight builds.
	w.reschedule(n)
	if task.docCount() == 0 {
		w.rebalancing = false
		w.stats.Rebalances++
		return
	}
	task.split = w.topCap()
	w.launch(task)
}

// FindFunc calls fn for every occurrence of pattern; enumeration stops
// early if fn returns false. An empty pattern matches at every live
// position.
func (w *WorstCase) FindFunc(pattern []byte, fn func(Occurrence) bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	stop := false
	wrapped := func(o Occurrence) bool {
		if !fn(o) {
			stop = true
			return false
		}
		return true
	}
	for _, s := range w.allStores() {
		s.findFunc(pattern, wrapped)
		if stop {
			return
		}
	}
}

// Find returns every occurrence of pattern.
func (w *WorstCase) Find(pattern []byte) []Occurrence {
	var out []Occurrence
	w.FindFunc(pattern, func(o Occurrence) bool {
		out = append(out, o)
		return true
	})
	return out
}

// Count returns the number of occurrences of pattern.
func (w *WorstCase) Count(pattern []byte) int {
	w.mu.Lock()
	defer w.mu.Unlock()
	n := 0
	for _, s := range w.allStores() {
		n += s.count(pattern)
	}
	return n
}

// Extract returns length payload bytes of document id starting at off.
func (w *WorstCase) Extract(id uint64, off, length int) ([]byte, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	st, ok := w.owner[id]
	if !ok {
		return nil, false
	}
	return st.extract(id, off, length)
}

// DocLen returns the payload length of document id.
func (w *WorstCase) DocLen(id uint64) (int, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	st, ok := w.owner[id]
	if !ok {
		return 0, false
	}
	return st.docLen(id)
}

// SizeBits estimates the total footprint in bits.
func (w *WorstCase) SizeBits() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	var total int64
	for _, s := range w.allStores() {
		total += s.sizeBits()
	}
	return total
}

// WaitIdle blocks until all background builds have completed and been
// installed. Tests and fair benchmarks call it to reach a quiescent
// state.
func (w *WorstCase) WaitIdle() {
	w.mu.Lock()
	defer w.mu.Unlock()
	for len(w.builds) > 0 || w.needsReb {
		w.drainLocked(true)
	}
}

// Stats returns internal counters and the current layout.
func (w *WorstCase) Stats() WorstStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	st := w.stats
	st.Tops = len(w.tops)
	st.LevelSizes = append(st.LevelSizes, w.c0.liveSymbols())
	st.LevelCaps = append(st.LevelCaps, w.maxes[0])
	for j := 1; j < len(w.maxes); j++ {
		st.LevelSizes = append(st.LevelSizes, w.levelSize(j))
		st.LevelCaps = append(st.LevelCaps, w.maxes[j])
	}
	for _, tp := range w.tops {
		st.TopSizes = append(st.TopSizes, tp.liveSymbols())
		st.TopDead = append(st.TopDead, tp.deletedSymbols())
	}
	return st
}

// Tau reports the τ currently in effect.
func (w *WorstCase) Tau() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.tau
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
