package engine

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// WorstCase is Transformation 2: a fully-dynamic structure whose update
// operations perform a bounded amount of foreground work per call.
//
// The machinery follows Section 3 of the paper:
//
//   - sub-collections C0 … Cr hold at most an O(1/τ) fraction of the
//     data; the bulk lives in top collections T1 … Tg (g = O(τ));
//   - merging Cj into Cj+1 locks Cj (it keeps answering queries as Lj)
//     and constructs the replacement Nj+1 in the background; small
//     per-item Temp payloads keep new arrivals queryable meanwhile;
//   - items too heavy for the ladder (≥ nf/τ) become their own top
//     collection immediately;
//   - deletions are lazy everywhere; a sweep process purges the top
//     collection holding the most dead weight after every
//     nf/(2τ·log τ) deleted units, which by Dietz–Sleator (Lemma 1)
//     bounds every top's dead fraction by O(1/τ);
//   - when n drifts a factor 2 from nf, a background rebalance rebuilds
//     the whole collection into fresh top collections (Section A.3).
//
// The paper charges background construction to subsequent updates via
// work credits, and its scheduling lemma proves a slot is never needed
// again before its in-flight rebuild completes. This implementation runs
// construction on separate goroutines instead; because real build speed
// is machine-dependent, the scheduling lemma is replaced by a
// non-blocking fallback — when a slot is still busy, the update parks the
// new item in a per-level temp payload (cost proportional to the item)
// or defers the merge until the build lands. Foreground work per update
// therefore stays proportional to the update itself, which is the
// guarantee Transformation 2 exists to provide. Config.Inline forces
// synchronous completion for deterministic tests.
//
// Unlike Amortized, WorstCase serializes every operation on an internal
// mutex and is safe for concurrent use.
type WorstCase[K comparable, I any] struct {
	mu  sync.Mutex
	cfg Config[K, I]

	c0     Mutable[K, I]
	levels []Store[K, I]   // Cj, j ≥ 1; index 0 unused
	locked []Store[K, I]   // Lj, parallel to levels
	temps  [][]Store[K, I] // parked single-item payloads per level
	tops   []Store[K, I]   // T1…Tg
	maxes  []int

	pendingMerge []bool // deletion-triggered merges waiting for a free slot

	retiring []Store[K, I] // sources of in-flight builds, still queryable

	owner map[K]Store[K, I]

	// storeCache memoizes allStores; every mutation of the store set
	// (launch, finish, placement, sweeps, restore) invalidates it, so
	// steady-state queries reuse one slice instead of re-collecting and
	// deduplicating the ladder per call.
	storeCache  []Store[K, I]
	storesDirty bool

	builds      []*buildTask[K, I]
	rebalancing bool
	needsReb    bool

	nf, tau int

	// gens/genc track per-store build generations for incremental
	// checkpoints; maintained only by Dump/Restore (see snapshot.go).
	gens map[Store[K, I]]uint64
	genc uint64

	deletedSinceSweep int

	stats Stats
}

type buildKind int

const (
	buildLevel     buildKind = iota // result becomes levels[target]
	buildTop                        // result becomes new top collection(s)
	buildRebalance                  // result replaces the whole collection's tops
)

type buildTask[K comparable, I any] struct {
	kind   buildKind
	target int // level index for buildLevel
	// eager holds items already materialized (C0 contents, the newly
	// inserted item); lazy holds snapshots whose payloads the background
	// goroutine extracts from immutable static structures, so the
	// foreground never pays for decompression.
	eager   []I
	lazy    []Snapshot[I]
	sources []Store[K, I]
	split   int // buildTop/buildRebalance: max weight per resulting top (0 = no split)
	done    chan []Store[K, I]

	// tombstones records items deleted from the sources while the build
	// is in flight. The background goroutine applies the ones it sees
	// before publishing, so the foreground install step only has to
	// process stragglers — keeping finish() cheap even after long builds.
	tmu        sync.Mutex
	tombstones []K
	applied    int // prefix of tombstones already applied by the builder
}

// addTombstone records a raced deletion.
func (t *buildTask[K, I]) addTombstone(key K) {
	t.tmu.Lock()
	t.tombstones = append(t.tombstones, key)
	t.tmu.Unlock()
}

// addStore appends a store's live items to the task: stores exposing a
// race-free deferred snapshot are extracted during the build, anything
// else (the uncompressed C0, payloads without Snapshotter) is
// materialized immediately.
func (t *buildTask[K, I]) addStore(s Store[K, I]) {
	if sn, ok := s.(Snapshotter[I]); ok {
		t.lazy = append(t.lazy, sn.Snapshot())
	} else {
		t.eager = append(t.eager, s.LiveItems()...)
	}
	t.sources = append(t.sources, s)
}

// itemCount reports how many items the task will build over.
func (t *buildTask[K, I]) itemCount() int {
	n := len(t.eager)
	for _, l := range t.lazy {
		n += l.Count
	}
	return n
}

// NewWorstCase creates an empty ladder with worst-case update bounds.
func NewWorstCase[K comparable, I any](cfg Config[K, I]) *WorstCase[K, I] {
	cfg = cfg.withDefaults()
	w := &WorstCase[K, I]{
		cfg:   cfg,
		c0:    cfg.NewC0(),
		owner: make(map[K]Store[K, I]),
	}
	w.reschedule(0)
	return w
}

// reschedule re-derives nf, τ and the ladder; the ladder stops at
// ~nf/τ so that sub-collections hold only an O(1/τ) fraction of the data
// (Section 3, "Data Structures").
func (w *WorstCase[K, I]) reschedule(n int) {
	w.nf = n
	w.tau = w.cfg.Tau
	if w.tau == 0 {
		w.tau = autoTau(n)
	}
	lg := float64(log2(n))
	if lg < 2 {
		lg = 2
	}
	max0 := float64(2*n) / (lg * lg)
	if max0 < float64(w.cfg.MinCapacity) {
		max0 = float64(w.cfg.MinCapacity)
	}
	ratio := math.Pow(lg, w.cfg.Epsilon)
	if ratio < 1.5 {
		ratio = 1.5
	}
	topCap := float64(n) / float64(w.tau)
	if topCap < max0*2 {
		topCap = max0 * 2
	}
	w.maxes = w.maxes[:0]
	w.maxes = append(w.maxes, int(max0))
	cap := max0
	for cap < topCap && len(w.maxes) < 64 {
		cap *= ratio
		w.maxes = append(w.maxes, int(cap))
	}
	for len(w.levels) < len(w.maxes)+1 {
		w.levels = append(w.levels, nil)
		w.locked = append(w.locked, nil)
		w.temps = append(w.temps, nil)
		w.pendingMerge = append(w.pendingMerge, false)
	}
}

// topCap is the maximum weight of a multi-item top collection (4nf/τ).
func (w *WorstCase[K, I]) topCap() int {
	c := 4 * w.nf / w.tau
	if c < 2*w.cfg.MinCapacity {
		c = 2 * w.cfg.MinCapacity
	}
	return c
}

// bigItem reports whether an item is heavy enough to become its own top
// collection (≥ nf/τ).
func (w *WorstCase[K, I]) bigItem(weight int) bool {
	threshold := w.nf / w.tau
	if threshold < w.cfg.MinCapacity {
		threshold = w.cfg.MinCapacity
	}
	return weight >= threshold
}

// targetBusy reports whether a build installing into level t is in
// flight (two builds must never race for one slot).
func (w *WorstCase[K, I]) targetBusy(t int) bool {
	for _, b := range w.builds {
		if b.kind == buildLevel && b.target == t {
			return true
		}
	}
	return false
}

// slotBusy reports whether merging level j into j+1 must wait: the level
// is already locked (its items belong to an in-flight build) or another
// build is installing into j+1.
func (w *WorstCase[K, I]) slotBusy(j int) bool {
	if j < len(w.locked) && w.locked[j] != nil {
		return true
	}
	return w.targetBusy(j + 1)
}

// ladderBusy reports whether any structure the ladder-insertion paths
// would consume at rungs j and j+1 — the level occupants and parked
// temps — feeds an in-flight build. A build targeting level j keeps
// levels[j] (and ride-along temps at slot j) queryable in place while
// sourcing them, which slotBusy(j) does not see; taking such a store
// (takeLevelItems, a synchronous rebuild) would install its items a
// second time while the old store still answers queries through the
// retiring list, double-counting every item until the build lands.
func (w *WorstCase[K, I]) ladderBusy(j int) bool {
	if w.targetBusy(j) {
		return true
	}
	for _, idx := range [2]int{j, j + 1} {
		if idx < len(w.levels) && w.levels[idx] != nil && w.isBuildSource(w.levels[idx]) {
			return true
		}
		if idx < len(w.temps) {
			for _, tmp := range w.temps[idx] {
				if w.isBuildSource(tmp) {
					return true
				}
			}
		}
	}
	return false
}

// launch starts a build task, synchronously in Inline mode.
func (w *WorstCase[K, I]) launch(t *buildTask[K, I]) {
	w.invalidateStores()
	t.done = make(chan []Store[K, I], 1)
	w.builds = append(w.builds, t)
	w.retiring = append(w.retiring, t.sources...)
	w.stats.BackgroundBuilds++
	tau, build := w.tau, w.cfg.Build
	run := func() {
		items := make([]I, 0, t.itemCount())
		items = append(items, t.eager...)
		for _, l := range t.lazy {
			items = l.Materialize(items)
		}
		var out []Store[K, I]
		if t.split > 0 {
			for _, chunk := range splitItems(items, w.cfg.Weight, t.split) {
				out = append(out, build(chunk, tau))
			}
		} else {
			out = append(out, build(items, tau))
		}
		// Pre-apply the deletions that raced with the build; stragglers
		// arriving after this point are handled by finish().
		t.tmu.Lock()
		for _, key := range t.tombstones {
			for _, res := range out {
				if _, ok := res.Delete(key); ok {
					break
				}
			}
		}
		t.applied = len(t.tombstones)
		t.tmu.Unlock()
		t.done <- out
	}
	if w.cfg.Inline {
		run()
		w.drainLocked(true)
		return
	}
	go run()
}

// drainLocked absorbs finished builds; if wait is true it blocks until
// all in-flight builds complete. Callers hold w.mu.
func (w *WorstCase[K, I]) drainLocked(wait bool) {
	for i := 0; i < len(w.builds); {
		t := w.builds[i]
		var out []Store[K, I]
		if wait {
			out = <-t.done
		} else {
			select {
			case out = <-t.done:
			default:
				i++
				continue
			}
		}
		w.finish(t, out)
		w.builds = append(w.builds[:i], w.builds[i+1:]...)
	}
	w.reconcile()
	if w.needsReb && !w.rebalancing {
		w.needsReb = false
		w.startRebalance()
	}
}

// reconcile launches deferred work once slots free up: parked temp
// payloads are folded into their level, and deletion-triggered merges
// that found the slot busy are retried.
func (w *WorstCase[K, I]) reconcile() {
	for j := 1; j < len(w.maxes); j++ {
		if w.pendingMerge[j] {
			if w.levels[j] == nil || w.levels[j].DeadWeight() < w.maxes[j]/2 {
				w.pendingMerge[j] = false
			} else if !w.mergeBlocked(j) {
				w.pendingMerge[j] = false
				w.mergeLevelUp(j)
			}
		}
	}
	for t := 1; t < len(w.temps); t++ {
		if len(w.temps[t]) == 0 || w.targetBusy(t) {
			continue
		}
		w.foldTemps(t)
	}
}

// foldTemps merges the parked temp payloads of slot t (plus the level
// occupying it, if any) into the smallest level that fits, or into a new
// top collection. Stores already feeding an in-flight build are left in
// place — enlisting them again would build their items twice — and are
// retried once that build lands.
func (w *WorstCase[K, I]) foldTemps(t int) {
	task := &buildTask[K, I]{}
	size := 0
	kept := w.temps[t][:0]
	for _, tmp := range w.temps[t] {
		if w.isBuildSource(tmp) {
			kept = append(kept, tmp)
			continue
		}
		task.addStore(tmp)
		size += tmp.LiveWeight()
	}
	w.temps[t] = kept
	tookLevel := false
	if t < len(w.maxes) && w.levels[t] != nil && !w.isBuildSource(w.levels[t]) {
		task.addStore(w.levels[t])
		size += w.levels[t].LiveWeight()
		tookLevel = true
	}
	if task.itemCount() == 0 {
		// Everything folded here was deleted in the meantime.
		w.clearSlots(task.sources)
		return
	}
	// Find the smallest level ≥ t with capacity for the union.
	for k := t; k < len(w.maxes); k++ {
		if size <= w.maxes[k] && !w.targetBusy(k) && ((k == t && tookLevel) || w.levels[k] == nil) {
			w.detachForBuild(task.sources)
			task.kind, task.target = buildLevel, k
			w.launch(task)
			return
		}
	}
	w.detachForBuild(task.sources)
	task.kind, task.split = buildTop, w.topCap()
	w.launch(task)
}

// detachForBuild removes sources from temp lists but leaves them
// queryable via the retiring list (finish clears level/locked slots).
func (w *WorstCase[K, I]) detachForBuild(sources []Store[K, I]) {
	isSrc := make(map[Store[K, I]]bool, len(sources))
	for _, s := range sources {
		isSrc[s] = true
	}
	for j := range w.temps {
		kept := w.temps[j][:0]
		for _, tmp := range w.temps[j] {
			if !isSrc[tmp] {
				kept = append(kept, tmp)
			}
		}
		w.temps[j] = kept
	}
}

// clearSlots drops empty retired structures from every slot.
func (w *WorstCase[K, I]) clearSlots(sources []Store[K, I]) {
	w.invalidateStores()
	isSrc := make(map[Store[K, I]]bool, len(sources))
	for _, s := range sources {
		isSrc[s] = true
	}
	for j := range w.temps {
		kept := w.temps[j][:0]
		for _, tmp := range w.temps[j] {
			if !isSrc[tmp] {
				kept = append(kept, tmp)
			}
		}
		w.temps[j] = kept
		if w.levels[j] != nil && isSrc[w.levels[j]] {
			w.levels[j] = nil
		}
	}
}

// finish installs the result of a completed build: snapshot items move
// to the new structures unless they were deleted mid-build, and the
// source structures are retired.
func (w *WorstCase[K, I]) finish(t *buildTask[K, I], out []Store[K, I]) {
	w.invalidateStores()
	isSource := make(map[Store[K, I]]bool, len(t.sources))
	for _, s := range t.sources {
		isSource[s] = true
	}
	// Apply straggler tombstones the builder missed after its seal point.
	t.tmu.Lock()
	for _, key := range t.tombstones[t.applied:] {
		for _, res := range out {
			if _, ok := res.Delete(key); ok {
				break
			}
		}
	}
	t.applied = len(t.tombstones)
	t.tmu.Unlock()
	// Reassign ownership; weed out any remaining raced deletions.
	for _, res := range out {
		for _, key := range res.LiveKeys() {
			cur, alive := w.owner[key]
			if alive && isSource[cur] {
				w.owner[key] = res
			} else {
				res.Delete(key)
			}
		}
	}
	// Retire sources from their slots.
	for j := range w.locked {
		if w.locked[j] != nil && isSource[w.locked[j]] {
			w.locked[j] = nil
		}
		if w.levels[j] != nil && isSource[w.levels[j]] {
			w.levels[j] = nil
		}
		kept := w.temps[j][:0]
		for _, tmp := range w.temps[j] {
			if !isSource[tmp] {
				kept = append(kept, tmp)
			}
		}
		w.temps[j] = kept
	}
	kept := w.tops[:0]
	for _, tp := range w.tops {
		if !isSource[tp] {
			kept = append(kept, tp)
		}
	}
	w.tops = kept
	if isSource[w.c0] {
		// Only rebalance retires C0; a fresh one was installed at launch.
		panic("engine: C0 retired outside rebalance")
	}
	ret := w.retiring[:0]
	for _, s := range w.retiring {
		if !isSource[s] {
			ret = append(ret, s)
		}
	}
	w.retiring = ret

	switch t.kind {
	case buildLevel:
		if w.levels[t.target] != nil {
			panic("engine: level build target occupied")
		}
		w.levels[t.target] = out[0]
	case buildTop:
		w.tops = append(w.tops, out...)
	case buildRebalance:
		w.tops = append(w.tops, out...)
		w.rebalancing = false
		w.stats.Rebalances++
	}
	w.dropEmptyTops()
	if len(w.tops) > w.stats.MaxTops {
		w.stats.MaxTops = len(w.tops)
	}
}

func (w *WorstCase[K, I]) dropEmptyTops() {
	kept := w.tops[:0]
	for _, tp := range w.tops {
		if tp.LiveWeight() > 0 {
			kept = append(kept, tp)
		}
	}
	if len(kept) != len(w.tops) {
		w.invalidateStores()
	}
	w.tops = kept
}

// Len reports the total live weight.
func (w *WorstCase[K, I]) Len() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.lenLocked()
}

func (w *WorstCase[K, I]) lenLocked() int {
	n := 0
	for _, s := range w.allStores() {
		n += s.LiveWeight()
	}
	return n
}

// invalidateStores marks the cached store list stale.
func (w *WorstCase[K, I]) invalidateStores() { w.storesDirty = true }

// allStores lists every queryable store exactly once, memoized until
// the next store-set mutation.
func (w *WorstCase[K, I]) allStores() []Store[K, I] {
	if !w.storesDirty && w.storeCache != nil {
		return w.storeCache
	}
	out := w.storeCache[:0]
	out = append(out, Store[K, I](w.c0))
	for j := range w.levels {
		if w.levels[j] != nil {
			out = append(out, w.levels[j])
		}
		if w.locked[j] != nil {
			out = append(out, w.locked[j])
		}
		out = append(out, w.temps[j]...)
	}
	out = append(out, w.tops...)
	// Retiring stores not already listed (rebalance sources: old c0,
	// old levels, old tops were removed from their slots at launch).
	listed := make(map[Store[K, I]]bool, len(out))
	for _, s := range out {
		listed[s] = true
	}
	for _, s := range w.retiring {
		if !listed[s] {
			out = append(out, s)
			listed[s] = true
		}
	}
	w.storeCache = out
	w.storesDirty = false
	return out
}

// Count reports the number of live items.
func (w *WorstCase[K, I]) Count() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.owner)
}

// Keys returns all live keys in unspecified order.
func (w *WorstCase[K, I]) Keys() []K {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]K, 0, len(w.owner))
	for k := range w.owner {
		out = append(out, k)
	}
	return out
}

// Has reports whether an item with the given key is live.
func (w *WorstCase[K, I]) Has(key K) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	_, ok := w.owner[key]
	return ok
}

// Insert adds an item (Section 3, "Insertions"). It fails with
// ErrDuplicateKey if the key is already live.
func (w *WorstCase[K, I]) Insert(item I) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	k := w.cfg.Key(item)
	if _, dup := w.owner[k]; dup {
		return fmt.Errorf("engine: insert %v: %w", k, ErrDuplicateKey)
	}
	w.drainLocked(false)
	w.placeOne(item)
	w.checkRebalance()
	return nil
}

// placeOne routes a validated item: into C0 if it fits, into its own
// top collection if huge, through the ladder otherwise. Callers hold
// w.mu and run checkRebalance afterwards.
func (w *WorstCase[K, I]) placeOne(item I) {
	weight := w.cfg.Weight(item)
	switch {
	case w.c0.LiveWeight()+weight <= w.maxes[0]:
		w.c0.Insert(item)
		w.owner[w.cfg.Key(item)] = w.c0

	case w.bigItem(weight):
		// A huge item becomes its own top collection immediately; the
		// build cost is proportional to the inserted data.
		w.invalidateStores()
		tp := w.cfg.Build([]I{item}, w.tau)
		w.tops = append(w.tops, tp)
		w.owner[w.cfg.Key(item)] = tp
		w.stats.SyncBuilds++

	default:
		w.insertViaLadder(item)
	}
}

// InsertBatch adds many items in one ingest. The whole batch is
// validated first — on any ErrDuplicateKey nothing is inserted. A batch
// larger than C0's capacity is bulk-built directly into top collections
// (split at the top-capacity bound), so the per-item ladder cascades of
// looped Insert calls collapse into one build pass followed by at most
// one rebalance. Smaller batches route through the normal placement
// machinery: the first overflow empties C0 into the ladder and the rest
// of the batch fits in the fresh C0, so C0 keeps draining and tops
// never accumulate per call.
func (w *WorstCase[K, I]) InsertBatch(items []I) error {
	if len(items) == 0 {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.drainLocked(false)
	seen := make(map[K]bool, len(items))
	total := 0
	for _, it := range items {
		k := w.cfg.Key(it)
		if _, dup := w.owner[k]; dup || seen[k] {
			return fmt.Errorf("engine: insert %v: %w", k, ErrDuplicateKey)
		}
		seen[k] = true
		total += w.cfg.Weight(it)
	}
	switch {
	case w.c0.LiveWeight()+total <= w.maxes[0]:
		for _, it := range items {
			w.c0.Insert(it)
			w.owner[w.cfg.Key(it)] = w.c0
		}
	case total <= w.maxes[0]:
		for _, it := range items {
			w.placeOne(it)
		}
	default:
		// Re-derive the capacity schedule from the post-batch size first:
		// chunks are then sized by the correct (larger) top capacity, and
		// the post-ingest rebalance check is a no-op instead of
		// immediately rebuilding the freshly built tops a second time.
		w.reschedule(w.lenLocked() + total)
		for _, chunk := range splitItems(items, w.cfg.Weight, w.topCap()) {
			tp := w.cfg.Build(chunk, w.tau)
			w.tops = append(w.tops, tp)
			for _, it := range chunk {
				w.owner[w.cfg.Key(it)] = tp
			}
			w.stats.SyncBuilds++
		}
		// Invalidate after the appends: lenLocked above consumes the
		// cache, so a pre-mutation invalidation would be re-satisfied
		// with the not-yet-extended store set.
		w.invalidateStores()
		if len(w.tops) > w.stats.MaxTops {
			w.stats.MaxTops = len(w.tops)
		}
	}
	w.checkRebalance()
	return nil
}

// insertViaLadder finds the first Cj+1 that can absorb Cj and the new
// item, locking Cj and building the replacement in the background. If
// every candidate slot is busy with an in-flight build, the item is
// parked in a temp payload (work proportional to the item) and folded
// in once the build lands — the non-blocking realization of the paper's
// scheduling lemma.
func (w *WorstCase[K, I]) insertViaLadder(item I) {
	weight := w.cfg.Weight(item)
	r := len(w.maxes) - 1
	for j := 0; j <= r; j++ {
		szJ := w.levelSize(j)
		var capNext int
		if j == r {
			capNext = int(^uint(0) >> 1) // anything fits in a new top
		} else {
			capNext = w.maxes[j+1]
		}
		if szJ+w.levelSize(j+1)+weight > capNext {
			continue
		}
		if w.slotBusy(j) || w.ladderBusy(j) {
			// Don't wait for the in-flight build. Small items overflow
			// into C0 (soft cap 2·max_0, still O(n/log²n) space); larger
			// ones are parked in a temp payload built in O(|T|·u) time.
			if j == 0 && w.c0.LiveWeight()+weight <= 2*w.maxes[0] {
				w.c0.Insert(item)
				w.owner[w.cfg.Key(item)] = w.c0
				return
			}
			w.invalidateStores()
			tmp := w.cfg.Build([]I{item}, w.tau)
			w.temps[j+1] = append(w.temps[j+1], tmp)
			w.owner[w.cfg.Key(item)] = tmp
			w.stats.TempParks++
			return
		}
		small := w.maxes[j] / 2
		if weight >= small && j < r {
			// Heavy item relative to the level: rebuild synchronously,
			// cost proportional to the item's weight.
			items := w.takeLevelItems(j)
			if w.levels[j+1] != nil {
				items = append(items, w.levels[j+1].LiveItems()...)
				w.levels[j+1] = nil
			}
			items = append(items, item)
			lvl := w.cfg.Build(items, w.tau)
			w.levels[j+1] = lvl
			for _, it := range items {
				w.owner[w.cfg.Key(it)] = lvl
			}
			w.stats.SyncBuilds++
			return
		}
		// Background merge: lock Cj, index the new item alone in a temp,
		// and build Nj+1 = Lj ∪ Cj+1 ∪ {item} behind the scenes.
		task := &buildTask[K, I]{kind: buildLevel, target: j + 1}
		if j == 0 {
			old := w.c0
			w.c0 = w.cfg.NewC0()
			task.addStore(old)
		} else if w.levels[j] != nil {
			w.locked[j] = w.levels[j]
			w.levels[j] = nil
			task.addStore(w.locked[j])
		}
		if j == r {
			task.kind, task.split = buildTop, w.topCap()
		} else if w.levels[j+1] != nil {
			task.addStore(w.levels[j+1])
		}
		// Include any temps already parked at the target slot.
		target := j + 1
		for _, tmp := range w.temps[target] {
			task.addStore(tmp)
		}
		w.temps[target] = nil
		tmp := w.cfg.Build([]I{item}, w.tau)
		w.owner[w.cfg.Key(item)] = tmp
		task.addStore(tmp)
		// The fresh temp rides along as a source so it is retired when the
		// merged structure lands; meanwhile it answers queries. Park it in
		// the slot list so allStores sees it exactly once.
		w.temps[target] = append(w.temps[target], tmp)
		w.launch(task)
		return
	}
	panic("engine: ladder insertion found no level") // unreachable: top case always fits
}

// levelSize is the live weight of Cj (j = 0 → C0), temp payloads parked
// at the slot included.
func (w *WorstCase[K, I]) levelSize(j int) int {
	n := 0
	if j == 0 {
		n = w.c0.LiveWeight()
	} else if j < len(w.levels) && w.levels[j] != nil {
		n = w.levels[j].LiveWeight()
	}
	if j > 0 && j < len(w.temps) {
		for _, tmp := range w.temps[j] {
			n += tmp.LiveWeight()
		}
	}
	return n
}

// takeLevelItems removes and returns the live items of Cj, including
// parked temps.
func (w *WorstCase[K, I]) takeLevelItems(j int) []I {
	w.invalidateStores()
	var items []I
	if j == 0 {
		items = w.c0.LiveItems()
		w.c0 = w.cfg.NewC0()
	} else if w.levels[j] != nil {
		items = w.levels[j].LiveItems()
		w.levels[j] = nil
	}
	if j > 0 {
		for _, tmp := range w.temps[j] {
			items = append(items, tmp.LiveItems()...)
		}
		w.temps[j] = nil
	}
	return items
}

// Delete removes the item with the given key (Section 3, "Deletions").
func (w *WorstCase[K, I]) Delete(key K) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.drainLocked(false)
	st, ok := w.owner[key]
	if !ok {
		return false
	}
	weight, _ := st.Delete(key)
	delete(w.owner, key)
	w.tombstoneInBuilds(st, key)

	if st != Store[K, I](w.c0) {
		w.afterStaticDelete(st)
	}
	// The sweep counter tracks every deleted unit (the paper purges the
	// worst top after each series of nf/(2τ·log τ) deleted symbols).
	w.deletedSinceSweep += weight
	w.maybeSweepTops()
	w.checkRebalance()
	return true
}

// DeleteBatch removes every listed item that is live, returning the
// number actually removed. Dead-fraction checks, the top sweep, and the
// rebalance check run once after the whole batch.
func (w *WorstCase[K, I]) DeleteBatch(keys []K) int {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.drainLocked(false)
	n := 0
	deletedWeight := 0
	touched := make(map[Store[K, I]]bool)
	for _, key := range keys {
		st, ok := w.owner[key]
		if !ok {
			continue
		}
		weight, _ := st.Delete(key)
		delete(w.owner, key)
		n++
		deletedWeight += weight
		w.tombstoneInBuilds(st, key)
		if st != Store[K, I](w.c0) {
			touched[st] = true
		}
	}
	if n == 0 {
		return 0
	}
	for st := range touched {
		w.afterStaticDelete(st)
	}
	w.deletedSinceSweep += deletedWeight
	w.maybeSweepTops()
	w.checkRebalance()
	return n
}

// tombstoneInBuilds records a raced deletion with every in-flight build
// sourcing st, so the build result never resurrects the item.
func (w *WorstCase[K, I]) tombstoneInBuilds(st Store[K, I], key K) {
	for _, b := range w.builds {
		for _, src := range b.sources {
			if src == st {
				b.addTombstone(key)
			}
		}
	}
}

// afterStaticDelete enforces the dead-fraction bounds after a lazy
// delete from a static payload.
func (w *WorstCase[K, I]) afterStaticDelete(s Store[K, I]) {
	// Level with ≥ maxj/2 dead weight → merge into the next level. If
	// the merge would collide with in-flight work it is deferred to
	// reconcile.
	for j := 1; j < len(w.maxes); j++ {
		if w.levels[j] != s {
			continue
		}
		if s.DeadWeight() < w.maxes[j]/2 {
			return
		}
		if w.mergeBlocked(j) {
			w.pendingMerge[j] = true
			return
		}
		w.mergeLevelUp(j)
		return
	}
}

// mergeBlocked reports whether merging level j into j+1 must wait: the
// slot machinery is busy, or either participating store already feeds an
// in-flight build (building a store twice would duplicate its items).
func (w *WorstCase[K, I]) mergeBlocked(j int) bool {
	if w.slotBusy(j) {
		return true
	}
	if w.levels[j] != nil && w.isBuildSource(w.levels[j]) {
		return true
	}
	if j+1 < len(w.levels) && w.levels[j+1] != nil && w.isBuildSource(w.levels[j+1]) {
		return true
	}
	return false
}

// mergeLevelUp locks level j and builds Nj+1 from it (plus the current
// occupant of j+1 and any parked temps) in the background.
func (w *WorstCase[K, I]) mergeLevelUp(j int) {
	w.invalidateStores()
	s := w.levels[j]
	w.locked[j] = s
	w.levels[j] = nil
	task := &buildTask[K, I]{kind: buildLevel, target: j + 1}
	task.addStore(s)
	if j == len(w.maxes)-1 {
		task.kind, task.split = buildTop, w.topCap()
	} else if w.levels[j+1] != nil {
		task.addStore(w.levels[j+1])
	}
	target := j + 1
	if target < len(w.temps) {
		for _, tmp := range w.temps[target] {
			task.addStore(tmp)
		}
	}
	if task.itemCount() == 0 {
		w.locked[j] = nil
		if target < len(w.temps) {
			w.temps[target] = nil
		}
		return
	}
	w.launch(task)
}

// maybeSweepTops purges the top collection holding the most dead weight
// once per nf/(2τ·log τ) units deleted since the last sweep (Lemma 1
// then bounds every top's dead fraction by O(1/τ)). A batch deletion can
// bank several intervals at once, so each accrued interval purges one
// more (distinct) top — matching the sweep count looped deletes would
// have produced. Tops already feeding an in-flight build are skipped so
// no item is built twice.
func (w *WorstCase[K, I]) maybeSweepTops() {
	interval := w.nf / (2 * w.tau * max(1, log2(w.tau)))
	if interval < w.cfg.MinCapacity {
		interval = w.cfg.MinCapacity
	}
	if w.deletedSinceSweep < interval {
		return
	}
	rounds := w.deletedSinceSweep / interval
	w.deletedSinceSweep %= interval
	busy := make(map[Store[K, I]]bool)
	for _, b := range w.builds {
		for _, s := range b.sources {
			busy[s] = true
		}
	}
	cands := make([]Store[K, I], 0, len(w.tops))
	for _, tp := range w.tops {
		if !busy[tp] && tp.DeadWeight() > 0 {
			cands = append(cands, tp)
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		return cands[i].DeadWeight() > cands[j].DeadWeight()
	})
	if rounds > len(cands) {
		rounds = len(cands)
	}
	for _, worst := range cands[:rounds] {
		if worst.LiveWeight() == 0 {
			continue // dropEmptyTops below discards it wholesale
		}
		// An earlier (inline) launch may have enlisted this candidate into
		// a reconcile-triggered build meanwhile; never build a store twice.
		if w.isBuildSource(worst) {
			continue
		}
		task := &buildTask[K, I]{kind: buildTop, split: w.topCap()}
		task.addStore(worst)
		w.launch(task)
		w.stats.TopPurges++
	}
	w.dropEmptyTops()
}

// isBuildSource reports whether s feeds an in-flight build.
func (w *WorstCase[K, I]) isBuildSource(s Store[K, I]) bool {
	for _, b := range w.builds {
		for _, src := range b.sources {
			if src == s {
				return true
			}
		}
	}
	return false
}

// checkRebalance triggers the Section A.3 size-maintenance rebuild when
// n drifts a factor 2 away from nf.
func (w *WorstCase[K, I]) checkRebalance() {
	n := w.lenLocked()
	if n < w.cfg.MinCapacity {
		return
	}
	if n >= 2*w.nf || (w.nf > 2*w.cfg.MinCapacity && n <= w.nf/2) {
		if w.rebalancing {
			w.needsReb = true
			return
		}
		w.startRebalance()
	}
}

func (w *WorstCase[K, I]) startRebalance() {
	w.invalidateStores()
	w.rebalancing = true
	task := &buildTask[K, I]{kind: buildRebalance}
	n := 0
	oldC0 := w.c0
	take := func(s Store[K, I]) {
		if s.LiveWeight() == 0 && len(s.LiveKeys()) == 0 && s != oldC0 {
			return
		}
		task.addStore(s)
		n += s.LiveWeight()
	}
	take(oldC0)
	w.c0 = w.cfg.NewC0()
	for j := range w.levels {
		if w.levels[j] != nil {
			take(w.levels[j])
			w.levels[j] = nil
		}
		for _, tmp := range w.temps[j] {
			take(tmp)
		}
		w.temps[j] = nil
		w.pendingMerge[j] = false
	}
	for _, tp := range w.tops {
		take(tp)
	}
	w.tops = nil
	// Locked stores stay with their in-flight builds.
	w.reschedule(n)
	if task.itemCount() == 0 {
		w.rebalancing = false
		w.stats.Rebalances++
		return
	}
	task.split = w.topCap()
	w.launch(task)
}

// View runs fn over every queryable store under the engine mutex; fn
// must not re-enter the ladder.
func (w *WorstCase[K, I]) View(fn func(stores []Store[K, I])) {
	w.mu.Lock()
	defer w.mu.Unlock()
	fn(w.allStores())
}

// Query sums fn over every queryable store under the engine mutex (see
// Ladder.Query); fn must not re-enter the ladder.
func (w *WorstCase[K, I]) Query(arg []byte, fn func(st Store[K, I], arg []byte) int) int {
	w.mu.Lock()
	defer w.mu.Unlock()
	n := 0
	for _, s := range w.allStores() {
		n += fn(s, arg)
	}
	return n
}

// ViewOwner runs fn (under the engine mutex) on the store holding key,
// if live; fn must not re-enter the ladder.
func (w *WorstCase[K, I]) ViewOwner(key K, fn func(st Store[K, I])) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	st, ok := w.owner[key]
	if !ok {
		return false
	}
	fn(st)
	return true
}

// SizeBits estimates the total footprint in bits.
func (w *WorstCase[K, I]) SizeBits() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	var total int64
	for _, s := range w.allStores() {
		total += s.SizeBits()
	}
	return total
}

// WaitIdle blocks until all background builds have completed and been
// installed. Tests and fair benchmarks call it to reach a quiescent
// state.
func (w *WorstCase[K, I]) WaitIdle() {
	w.mu.Lock()
	defer w.mu.Unlock()
	for len(w.builds) > 0 || w.needsReb {
		w.drainLocked(true)
	}
}

// Stats returns internal counters and the current layout.
func (w *WorstCase[K, I]) Stats() Stats {
	w.mu.Lock()
	defer w.mu.Unlock()
	st := w.stats
	st.Tops = len(w.tops)
	st.PendingBuilds = len(w.builds)
	st.Levels = len(w.maxes)
	st.NF = w.nf
	st.Tau = w.tau
	st.LevelSizes = append(st.LevelSizes, w.c0.LiveWeight())
	st.LevelCaps = append(st.LevelCaps, w.maxes[0])
	st.LevelDead = append(st.LevelDead, w.c0.DeadWeight())
	for j := 1; j < len(w.maxes); j++ {
		dead := 0
		if w.levels[j] != nil {
			dead = w.levels[j].DeadWeight()
		}
		for _, tmp := range w.temps[j] {
			dead += tmp.DeadWeight()
		}
		st.LevelSizes = append(st.LevelSizes, w.levelSize(j))
		st.LevelCaps = append(st.LevelCaps, w.maxes[j])
		st.LevelDead = append(st.LevelDead, dead)
	}
	for _, tp := range w.tops {
		st.TopSizes = append(st.TopSizes, tp.LiveWeight())
		st.TopDead = append(st.TopDead, tp.DeadWeight())
	}
	return st
}

// Tau reports the τ currently in effect.
func (w *WorstCase[K, I]) Tau() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.tau
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
