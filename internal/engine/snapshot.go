package engine

import "dyncoll/internal/snap"

// Ladder snapshot hooks. A Dump captures a quiesced ladder's structure
// — the raw C0 items plus every static store tagged with its slot — in
// a form a payload adapter can serialize: the engine knows the shape of
// the ladder, the adapter knows how to encode items and stores.
// Restore is the inverse: the adapter decodes items and stores and the
// engine reinstalls them, rebuilding the owner map. Together they make
// persistence a payload-level concern with one engine-level contract,
// the same split as queries (View/ViewOwner).

// StoreDump tags one static store with its ladder position.
type StoreDump[K comparable, I any] struct {
	// Level is the ladder slot (j ≥ 1) the store occupies, or TopLevel
	// for a top collection of the worst-case engine.
	Level int
	// Gen is the store's build generation: a per-ladder monotonic
	// counter assigned when the store is first observed by Dump and kept
	// for as long as the store object lives. A store's static content is
	// immutable after its build (only the lazy-deletion state mutates),
	// so an unchanged Gen across two dumps means the underlying
	// structure was not rebuilt in between — the property incremental
	// checkpoints key on. Gen 0 means "unassigned" (dumps produced
	// before generation tracking).
	Gen   uint64
	Store Store[K, I]
}

// TopLevel is the StoreDump.Level value of worst-case top collections.
const TopLevel = -1

// assignGens stamps every dumped store with its build generation,
// allocating fresh generations for stores seen for the first time, and
// returns the pruned identity→generation map (retired stores drop out,
// so the map never outgrows the live ladder). Store identity is pointer
// identity: a rebuild produces a new store object and therefore a new
// generation, while lazy deletions mutate a store in place and keep it.
func assignGens[K comparable, I any](gens map[Store[K, I]]uint64, genc *uint64, d *Dump[K, I]) map[Store[K, I]]uint64 {
	next := make(map[Store[K, I]]uint64, len(d.Stores))
	for i := range d.Stores {
		st := d.Stores[i].Store
		g, ok := gens[st]
		if !ok {
			*genc++
			g = *genc
		}
		next[st] = g
		d.Stores[i].Gen = g
	}
	return next
}

// seedGens installs a restored dump's generations so a ladder loaded
// from a checkpoint keeps reporting the same generations — which is
// what lets the next incremental checkpoint reuse the segments it was
// itself loaded from. Stores restored without a generation are stamped
// fresh at the next Dump.
func seedGens[K comparable, I any](gens map[Store[K, I]]uint64, genc *uint64, d Dump[K, I]) map[Store[K, I]]uint64 {
	if gens == nil {
		gens = make(map[Store[K, I]]uint64, len(d.Stores))
	}
	for _, ds := range d.Stores {
		if ds.Gen == 0 {
			continue
		}
		gens[ds.Store] = ds.Gen
		if ds.Gen > *genc {
			*genc = ds.Gen
		}
	}
	return gens
}

// Dump is the structural snapshot of a quiesced ladder.
type Dump[K comparable, I any] struct {
	// NF and Tau are the schedule anchors in effect (weight at the last
	// global rebuild and the lazy-deletion parameter τ), so a restored
	// ladder re-derives the same capacity schedule.
	NF, Tau int
	// C0 holds the uncompressed store's live items.
	C0 []I
	// Stores lists every static store exactly once.
	Stores []StoreDump[K, I]
}

// Dump captures the ladder's current structure. The amortized engine
// is always quiescent; the caller must not mutate the ladder until the
// returned stores have been serialized.
func (a *Amortized[K, I]) Dump() Dump[K, I] {
	d := Dump[K, I]{NF: a.nf, Tau: a.tau, C0: a.c0.LiveItems()}
	for j := 1; j < len(a.levels); j++ {
		if a.levels[j] != nil {
			d.Stores = append(d.Stores, StoreDump[K, I]{Level: j, Store: a.levels[j]})
		}
	}
	a.genMu.Lock()
	a.gens = assignGens(a.gens, &a.genc, &d)
	a.genMu.Unlock()
	return d
}

// adopt registers every live key of st in the owner map, rejecting
// duplicates (two stores claiming one key means the snapshot is
// corrupt: queries would double-report and Len would drift).
func adopt[K comparable, I any](owner map[K]Store[K, I], st Store[K, I]) error {
	for _, k := range st.LiveKeys() {
		if _, dup := owner[k]; dup {
			return snap.Corruptf("key %v owned by two stores", k)
		}
		owner[k] = st
	}
	return nil
}

// Restore installs a dump into an empty ladder: the capacity schedule
// is re-derived from the dump's anchors, C0 items are re-ingested, and
// each store is placed back at its slot. A store whose slot is out of
// range or already taken is absorbed through the normal insertion path
// (item extraction plus one bulk placement) — correct for any input,
// fast for inputs that match the engine's own dumps.
func (a *Amortized[K, I]) Restore(d Dump[K, I]) error {
	if len(a.owner) != 0 {
		return snap.Corruptf("restore into a non-empty ladder")
	}
	defer a.rebuildStores()
	a.reschedule(d.NF)
	if d.Tau > 0 {
		a.tau = d.Tau
	}
	for _, it := range d.C0 {
		k := a.cfg.Key(it)
		if _, dup := a.owner[k]; dup {
			return snap.Corruptf("key %v appears twice in C0", k)
		}
		a.c0.Insert(it)
		a.owner[k] = a.c0
	}
	var leftover []I
	for _, ds := range d.Stores {
		if ds.Level >= 1 && ds.Level < len(a.levels) && ds.Level < len(a.maxes) && a.levels[ds.Level] == nil {
			a.levels[ds.Level] = ds.Store
			if err := adopt(a.owner, ds.Store); err != nil {
				return err
			}
			continue
		}
		leftover = append(leftover, ds.Store.LiveItems()...)
	}
	if len(leftover) > 0 {
		if err := a.InsertBatch(leftover); err != nil {
			return snap.Corruptf("replaying %d displaced items: %v", len(leftover), err)
		}
	}
	a.genMu.Lock()
	a.gens = seedGens(a.gens, &a.genc, d)
	a.genMu.Unlock()
	return nil
}

// Dump captures the ladder's structure after quiescing every in-flight
// background build (so no store is mid-rebuild and the retiring list is
// empty). The caller must not mutate the ladder until the returned
// stores have been serialized.
func (w *WorstCase[K, I]) Dump() Dump[K, I] {
	w.mu.Lock()
	defer w.mu.Unlock()
	for len(w.builds) > 0 || w.needsReb {
		w.drainLocked(true)
	}
	d := Dump[K, I]{NF: w.nf, Tau: w.tau, C0: w.c0.LiveItems()}
	for j := 1; j < len(w.levels); j++ {
		if w.levels[j] != nil {
			d.Stores = append(d.Stores, StoreDump[K, I]{Level: j, Store: w.levels[j]})
		}
		for _, tmp := range w.temps[j] {
			d.Stores = append(d.Stores, StoreDump[K, I]{Level: j, Store: tmp})
		}
	}
	for _, tp := range w.tops {
		d.Stores = append(d.Stores, StoreDump[K, I]{Level: TopLevel, Store: tp})
	}
	w.gens = assignGens(w.gens, &w.genc, &d)
	return d
}

// Restore installs a dump into an empty ladder. Stores whose slot is
// occupied park as temp payloads (the engine's native representation
// for extra stores at a slot); out-of-range slots and TopLevel stores
// become top collections.
func (w *WorstCase[K, I]) Restore(d Dump[K, I]) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.owner) != 0 || len(w.builds) != 0 {
		return snap.Corruptf("restore into a non-empty ladder")
	}
	w.invalidateStores()
	w.reschedule(d.NF)
	if d.Tau > 0 {
		w.tau = d.Tau
	}
	for _, it := range d.C0 {
		k := w.cfg.Key(it)
		if _, dup := w.owner[k]; dup {
			return snap.Corruptf("key %v appears twice in C0", k)
		}
		w.c0.Insert(it)
		w.owner[k] = w.c0
	}
	for _, ds := range d.Stores {
		switch {
		case ds.Level >= 1 && ds.Level < len(w.maxes) && w.levels[ds.Level] == nil:
			w.levels[ds.Level] = ds.Store
		case ds.Level >= 1 && ds.Level < len(w.maxes):
			w.temps[ds.Level] = append(w.temps[ds.Level], ds.Store)
		default:
			w.tops = append(w.tops, ds.Store)
		}
		if err := adopt(w.owner, ds.Store); err != nil {
			return err
		}
	}
	if len(w.tops) > w.stats.MaxTops {
		w.stats.MaxTops = len(w.tops)
	}
	w.gens = seedGens(w.gens, &w.genc, d)
	return nil
}
