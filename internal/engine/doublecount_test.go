package engine_test

import (
	"math/rand"
	"testing"

	"dyncoll/internal/core"
	"dyncoll/internal/doc"
	"dyncoll/internal/engine"
	"dyncoll/internal/fmindex"
	"dyncoll/internal/textgen"
)

// TestNoTransientDoubleCount is a regression test for a scheduling hole
// the pre-engine worst-case implementation shipped with: a background
// merge targeting level j keeps levels[j] (and ride-along temps at slot
// j) queryable in place while sourcing them, but slotBusy(j) only
// checked locked[j] and targetBusy(j+1) — so a later insert probing
// rung j could hit the synchronous-rebuild path and takeLevelItems a
// store the in-flight build was still reading. Its items were then
// installed a second time while the old store kept answering queries
// through the retiring list: Len and every query over-counted a whole
// level until the build landed. The window only opens when builds are
// slow relative to foreground updates, so the churn here runs real
// background builds and checks Len and store-level key uniqueness
// after every operation (run under -race in CI, which widens the
// window enough to reproduce the original bug reliably).
func TestNoTransientDoubleCount(t *testing.T) {
	builder := func(docs []doc.Doc) core.StaticIndex {
		return fmindex.Build(docs, fmindex.Options{SampleRate: 4})
	}
	for trial := 0; trial < 8; trial++ {
		eng := core.NewLadder(core.Options{Builder: builder}, true)
		rng := rand.New(rand.NewSource(1234 + int64(trial)))
		gen := textgen.NewCollection(textgen.CollectionOptions{
			Sigma: 8, MinLen: 4, MaxLen: 200, Seed: 77 + int64(trial),
		})
		model := map[uint64]int{}
		weight := 0
		var live []uint64
		for step := 0; step < 400; step++ {
			if len(live) == 0 || rng.Float64() < 0.65 {
				d := gen.NextDoc()
				if err := eng.Insert(d); err != nil {
					t.Fatal(err)
				}
				model[d.ID] = len(d.Data)
				weight += len(d.Data)
				live = append(live, d.ID)
			} else {
				i := rng.Intn(len(live))
				id := live[i]
				live = append(live[:i], live[i+1:]...)
				eng.Delete(id)
				weight -= model[id]
				delete(model, id)
			}
			if got := eng.Len(); got != weight {
				t.Fatalf("trial %d step %d: Len = %d, want %d (transient double count)",
					trial, step, got, weight)
			}
			if step%50 == 0 {
				eng.View(func(stores []engine.Store[uint64, doc.Doc]) {
					seen := map[uint64]bool{}
					for _, s := range stores {
						for _, k := range s.LiveKeys() {
							if seen[k] {
								t.Errorf("trial %d step %d: key %d live in two stores", trial, step, k)
							}
							seen[k] = true
						}
					}
				})
				if t.Failed() {
					t.FailNow()
				}
			}
		}
		eng.WaitIdle()
	}
}
