// Package engine implements the paper's static-to-dynamic
// transformations (Transformations 1–3) once, generically, for any
// payload.
//
// The paper's central observation is that the sub-collection ladder —
// an uncompressed C0 plus geometrically growing deletion-only static
// structures, rebuilt on cascade — never looks inside the static
// structure it dynamizes. Theorem 1 instantiates the ladder with
// compressed document indexes, and Theorems 2 and 3 are corollaries:
// the same ladder applied to a static binary-relation encoding (and a
// digraph is a relation between nodes). This package makes that
// argument literal. The ladder is parameterized over an abstract
// static payload contract — build from items, lazily delete by key,
// extract the live items, report size — and the document collection
// (internal/core) and binary relation (internal/binrel) are two
// payload instances of one tested machine.
//
// Two scheduling regimes are provided:
//
//   - Amortized (Transformation 1; Transformation 3 with Config.Ratio2):
//     cascading foreground rebuilds, amortized update bounds.
//   - WorstCase (Transformation 2): bounded foreground work per update;
//     replacements are built on background goroutines while locked
//     copies keep answering queries, the bulk of the data lives in top
//     collections purged largest-first (Dietz–Sleator), and a
//     background rebalance (Section A.3) follows factor-2 size drift.
//
// Queries are payload-specific and therefore not part of the engine:
// adapters enumerate the live stores through View/ViewOwner and run
// their own query logic against the concrete payload types.
package engine

import (
	"errors"
	"fmt"
)

// ErrDuplicateKey reports an insert whose key is already live. Adapters
// translate it into their own typed errors (duplicate document ID,
// duplicate pair, duplicate edge).
var ErrDuplicateKey = errors.New("duplicate key")

// Store is the contract every sub-collection holder satisfies: the
// uncompressed C0 and each deletion-only static payload. Weights are
// the unit the capacity ladder is measured in — payload symbols for
// documents, 1 per pair for relations.
type Store[K comparable, I any] interface {
	// Delete lazily removes the item with the given key, reporting its
	// weight and whether it was live here.
	Delete(key K) (weight int, ok bool)
	// LiveKeys lists the keys of the live items (a cheap snapshot; no
	// payload extraction).
	LiveKeys() []K
	// LiveItems materializes the live items, e.g. for a rebuild.
	LiveItems() []I
	// LiveWeight and DeadWeight report the live/deleted weight held.
	LiveWeight() int
	DeadWeight() int
	// SizeBits estimates the footprint for space accounting.
	SizeBits() int64
}

// Mutable is the C0 contract: a fully-dynamic uncompressed store
// (the paper's generalized suffix tree for documents, adjacency maps
// for relations).
type Mutable[K comparable, I any] interface {
	Store[K, I]
	Insert(item I)
}

// Snapshot defers live-item extraction to a background build goroutine:
// Count items will be appended by Materialize. Materialize must only
// read state that lazy deletions never mutate (e.g. an immutable static
// index), so it is race-free off-thread.
type Snapshot[I any] struct {
	Count       int
	Materialize func(dst []I) []I
}

// Snapshotter is an optional Store capability. If a static payload
// implements it, the worst-case engine extracts its items on the build
// goroutine instead of in the foreground; otherwise LiveItems is
// materialized eagerly at launch.
type Snapshotter[I any] interface {
	Snapshot() Snapshot[I]
}

// Config parameterizes the engine over a payload.
type Config[K comparable, I any] struct {
	// Key extracts an item's identity (document ID, relation pair).
	Key func(item I) K
	// Weight is an item's contribution to the capacity ladder.
	Weight func(item I) int
	// NewC0 creates an empty uncompressed fully-dynamic store.
	NewC0 func() Mutable[K, I]
	// Build constructs a deletion-only static payload over items; tau
	// is the lazy-deletion parameter in effect (Lemma 3 word width).
	Build func(items []I, tau int) Store[K, I]

	// Tau is the space/overhead trade-off parameter τ: a structure is
	// purged once a 1/τ fraction of its weight is dead. 0 means
	// automatic: τ = max(2, log n / log log n) recomputed at global
	// rebuilds.
	Tau int
	// Epsilon is the geometric growth exponent ε of sub-collection
	// capacities. Default 0.5.
	Epsilon float64
	// Ratio2 selects Transformation 3's level layout (ratio-2 ladder,
	// O(log log n) levels). Amortized engine only.
	Ratio2 bool
	// MinCapacity bounds max_0 from below. Default 64.
	MinCapacity int
	// Inline forces worst-case background builds to complete
	// synchronously; used by deterministic tests.
	Inline bool
}

func (c Config[K, I]) withDefaults() Config[K, I] {
	if c.Key == nil || c.Weight == nil || c.NewC0 == nil || c.Build == nil {
		panic("engine: Config requires Key, Weight, NewC0 and Build")
	}
	if c.Epsilon <= 0 || c.Epsilon > 1 {
		c.Epsilon = 0.5
	}
	if c.MinCapacity <= 0 {
		c.MinCapacity = 64
	}
	if c.Tau < 0 {
		panic(fmt.Sprintf("engine: negative Tau %d", c.Tau))
	}
	return c
}

// Stats reports the engine's ladder state and rebuild counters. One
// struct serves both scheduling regimes; fields that do not apply to
// the active regime are zero.
type Stats struct {
	// Levels is the number of sub-collection slots (C0 plus compressed
	// levels).
	Levels int
	// LevelSizes, LevelCaps and LevelDead list live weight, capacity and
	// dead weight per level; index 0 is the uncompressed C0.
	LevelSizes []int
	LevelCaps  []int
	LevelDead  []int

	// Amortized counters.
	LevelRebuilds  int
	GlobalRebuilds int
	Purges         int

	// Worst-case counters.
	BackgroundBuilds int
	SyncBuilds       int
	TempParks        int
	TopPurges        int
	Rebalances       int
	// PendingBuilds is the number of background builds in flight.
	PendingBuilds int
	Tops          int
	MaxTops       int
	TopSizes      []int
	TopDead       []int

	// NF is the weight at the last global rebuild/rebalance; Tau the τ
	// in effect since then.
	NF  int
	Tau int
}

// Ladder is the interface shared by the Amortized and WorstCase
// engines; payload adapters program against it so every scheduling
// regime is available to every payload.
type Ladder[K comparable, I any] interface {
	// Insert adds an item; it fails with ErrDuplicateKey if the key is
	// live. InsertBatch validates the whole batch first — on error
	// nothing is inserted — and places it with at most one cascade.
	Insert(item I) error
	InsertBatch(items []I) error
	// Delete removes the item with the given key, reporting whether it
	// was live. DeleteBatch skips missing keys and returns the number
	// removed, running purge/rebalance checks once for the batch.
	Delete(key K) bool
	DeleteBatch(keys []K) int
	// Has reports whether key is live; Keys lists all live keys.
	Has(key K) bool
	Keys() []K
	// Len is the total live weight; Count the number of live items.
	Len() int
	Count() int
	// View runs fn over every queryable store under the engine's
	// synchronization domain (the worst-case engine holds its mutex, so
	// fn must not re-enter the ladder). ViewOwner runs fn on the store
	// holding key, if any.
	View(fn func(stores []Store[K, I]))
	ViewOwner(key K, fn func(st Store[K, I])) bool
	// Query sums fn over every queryable store under the engine's
	// synchronization domain, threading the caller's argument through
	// explicitly. Passing a package-level fn keeps the steady-state
	// query path free of closure allocations (View requires a capturing
	// closure to carry the pattern and accumulator); combined with the
	// engines' cached store lists this makes counting queries
	// zero-allocation. fn must not re-enter the ladder.
	Query(arg []byte, fn func(st Store[K, I], arg []byte) int) int
	// WaitIdle blocks until background builds have landed (worst-case
	// engine; a no-op for the amortized engine).
	WaitIdle()
	// Dump captures the quiesced ladder's structure for serialization;
	// Restore installs a dump into an empty ladder (see snapshot.go).
	Dump() Dump[K, I]
	Restore(d Dump[K, I]) error
	Tau() int
	SizeBits() int64
	Stats() Stats
}

// autoTau computes τ = max(2, log₂ n / log₂ log₂ n) as the paper's
// default trade-off, capped so the Lemma 3 word width stays sane.
func autoTau(n int) int {
	if n < 16 {
		return 2
	}
	lg := log2(n)
	lglg := log2(lg)
	if lglg < 1 {
		lglg = 1
	}
	t := lg / lglg
	if t < 2 {
		t = 2
	}
	if t > 4096 {
		t = 4096
	}
	return t
}

// log2 returns ⌊log₂ x⌋ for x ≥ 1.
func log2(x int) int {
	l := 0
	for x > 1 {
		x >>= 1
		l++
	}
	return l
}

// splitItems partitions items into chunks of at most maxWeight total
// weight (single oversized items get their own chunk).
func splitItems[I any](items []I, weight func(I) int, maxWeight int) [][]I {
	var out [][]I
	var cur []I
	sz := 0
	for _, it := range items {
		w := weight(it)
		if len(cur) > 0 && sz+w > maxWeight {
			out = append(out, cur)
			cur, sz = nil, 0
		}
		cur = append(cur, it)
		sz += w
	}
	if len(cur) > 0 {
		out = append(out, cur)
	}
	return out
}
