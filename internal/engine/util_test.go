package engine

import "testing"

// TestAutoTauMonotone sanity-checks the automatic τ schedule shared by
// every payload.
func TestAutoTauMonotone(t *testing.T) {
	prev := 0
	for _, n := range []int{0, 10, 15, 16, 100, 1 << 10, 1 << 16, 1 << 24, 1 << 30} {
		tau := autoTau(n)
		if tau < 2 || tau > 4096 {
			t.Fatalf("autoTau(%d) = %d outside [2, 4096]", n, tau)
		}
		if tau < prev {
			t.Fatalf("autoTau not monotone at n=%d: %d < %d", n, tau, prev)
		}
		prev = tau
	}
}

// TestSplitItems checks chunking respects the weight bound and keeps
// every item exactly once.
func TestSplitItems(t *testing.T) {
	items := []int{3, 1, 4, 1, 5, 9, 2, 6}
	chunks := splitItems(items, func(x int) int { return x }, 7)
	total := 0
	for _, c := range chunks {
		w := 0
		for _, x := range c {
			w += x
			total++
		}
		if w > 7 && len(c) > 1 {
			t.Fatalf("chunk %v exceeds weight bound", c)
		}
	}
	if total != len(items) {
		t.Fatalf("split lost items: %d of %d", total, len(items))
	}
	if got := splitItems([]int{42}, func(x int) int { return x }, 7); len(got) != 1 {
		t.Fatalf("oversized single item should get its own chunk, got %v", got)
	}
}
