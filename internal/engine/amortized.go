package engine

import (
	"fmt"
	"math"
	"sync"
)

// Amortized is Transformation 1 (and, with Config.Ratio2, Transformation
// 3): a fully-dynamic structure with amortized update bounds.
//
// The data is split into sub-collections C0, C1, …, Cr whose capacities
// max_i grow geometrically. C0 is the payload's uncompressed mutable
// store; every Ci (i ≥ 1) is a deletion-only static payload. A new item
// goes to the first Cj that can absorb it together with all smaller
// sub-collections, which are then merged into Cj and rebuilt. When no
// level fits, a global rebuild moves everything into the last level and
// re-derives the capacity schedule from the new size.
//
// Amortized is not safe for concurrent use; callers serialize access.
type Amortized[K comparable, I any] struct {
	cfg Config[K, I]

	c0     Mutable[K, I]
	levels []Store[K, I] // levels[0] unused; levels[j] is Cj for j ≥ 1
	maxes  []int         // maxes[j] = max_j under the current nf

	owner map[K]Store[K, I] // live key → holding sub-collection

	// storeCache is the memoized View order (C0, then levels). It is
	// rebuilt eagerly by every mutation that swaps C0 or a level slot —
	// never lazily on the read path — so concurrent readers behind a
	// caller-managed RWMutex (the sharding layer) share it without
	// writes, and steady-state queries allocate nothing.
	storeCache []Store[K, I]

	nf  int // live weight at the last global rebuild
	tau int // τ in effect since the last global rebuild

	// gens/genc track per-store build generations for incremental
	// checkpoints; maintained only by Dump/Restore (see snapshot.go).
	// genMu guards them: Dump is otherwise read-only here, and sharded
	// facades allow concurrent Dumps under shard read locks.
	genMu sync.Mutex
	gens  map[Store[K, I]]uint64
	genc  uint64

	rebuilds       int // level rebuilds
	globalRebuilds int
	purges         int // deletion-triggered level purges
}

// NewAmortized creates an empty ladder with amortized update bounds.
func NewAmortized[K comparable, I any](cfg Config[K, I]) *Amortized[K, I] {
	cfg = cfg.withDefaults()
	a := &Amortized[K, I]{
		cfg:   cfg,
		c0:    cfg.NewC0(),
		owner: make(map[K]Store[K, I]),
	}
	a.reschedule(0)
	a.rebuildStores()
	return a
}

// reschedule re-derives nf, τ and the capacity ladder from the current
// weight n (paper: max_0 = 2n/log²n, max_i = max_0·ratioⁱ where ratio
// is log^ε n for Transformation 1 and 2 for Transformation 3).
func (a *Amortized[K, I]) reschedule(n int) {
	a.nf = n
	a.tau = a.cfg.Tau
	if a.tau == 0 {
		a.tau = autoTau(n)
	}
	lg := float64(log2(n))
	if lg < 2 {
		lg = 2
	}
	max0 := float64(2*n) / (lg * lg)
	if max0 < float64(a.cfg.MinCapacity) {
		max0 = float64(a.cfg.MinCapacity)
	}
	var ratio float64
	if a.cfg.Ratio2 {
		ratio = 2
	} else {
		ratio = math.Pow(lg, a.cfg.Epsilon)
		if ratio < 1.5 {
			ratio = 1.5
		}
	}
	a.maxes = a.maxes[:0]
	a.maxes = append(a.maxes, int(max0))
	cap := max0
	// Grow the ladder until the top level can hold the entire collection
	// twice over (so a global rebuild always fits).
	for cap < float64(2*n)+1 && len(a.maxes) < 64 {
		cap *= ratio
		a.maxes = append(a.maxes, int(cap))
	}
	if len(a.maxes) < 2 {
		a.maxes = append(a.maxes, int(cap*ratio))
	}
	for len(a.levels) < len(a.maxes) {
		a.levels = append(a.levels, nil)
	}
}

// Len reports the total live weight.
func (a *Amortized[K, I]) Len() int {
	n := a.c0.LiveWeight()
	for _, l := range a.levels {
		if l != nil {
			n += l.LiveWeight()
		}
	}
	return n
}

// Count reports the number of live items.
func (a *Amortized[K, I]) Count() int { return len(a.owner) }

// Keys returns all live keys in unspecified order.
func (a *Amortized[K, I]) Keys() []K {
	out := make([]K, 0, len(a.owner))
	for k := range a.owner {
		out = append(out, k)
	}
	return out
}

// Has reports whether an item with the given key is live.
func (a *Amortized[K, I]) Has(key K) bool {
	_, ok := a.owner[key]
	return ok
}

// Insert adds an item. It fails with ErrDuplicateKey if the key is
// already live.
func (a *Amortized[K, I]) Insert(item I) error {
	k := a.cfg.Key(item)
	if _, dup := a.owner[k]; dup {
		return fmt.Errorf("engine: insert %v: %w", k, ErrDuplicateKey)
	}
	a.insertBulk([]I{item}, a.cfg.Weight(item))
	return nil
}

// InsertBatch adds many items in one ingest. The whole batch is
// validated first — on any ErrDuplicateKey nothing is inserted — and
// then placed with at most one ladder rebuild cascade, instead of the
// cascade-per-item cost of looped Insert calls.
func (a *Amortized[K, I]) InsertBatch(items []I) error {
	if len(items) == 0 {
		return nil
	}
	seen := make(map[K]bool, len(items))
	total := 0
	for _, it := range items {
		k := a.cfg.Key(it)
		if _, dup := a.owner[k]; dup || seen[k] {
			return fmt.Errorf("engine: insert %v: %w", k, ErrDuplicateKey)
		}
		seen[k] = true
		total += a.cfg.Weight(it)
	}
	a.insertBulk(items, total)
	return nil
}

// insertBulk places validated items: into C0 if they all fit, otherwise
// into the first level whose capacity absorbs them together with all
// smaller sub-collections (one rebuild), otherwise via a global rebuild.
func (a *Amortized[K, I]) insertBulk(items []I, total int) {
	prefix := a.c0.LiveWeight() + total
	if prefix <= a.maxes[0] {
		for _, it := range items {
			a.c0.Insert(it)
			a.owner[a.cfg.Key(it)] = a.c0
		}
		a.maybeGlobalRebuild()
		return
	}
	for j := 1; j < len(a.maxes); j++ {
		if a.levels[j] != nil {
			prefix += a.levels[j].LiveWeight()
		}
		if prefix <= a.maxes[j] {
			a.mergeInto(j, items)
			a.maybeGlobalRebuild()
			return
		}
	}
	// Nothing fits: global rebuild with the new items included.
	a.globalRebuild(items)
}

// mergeInto rebuilds level j from C0 ∪ C1 ∪ … ∪ Cj ∪ extra.
func (a *Amortized[K, I]) mergeInto(j int, extra []I) {
	defer a.rebuildStores()
	items := a.c0.LiveItems()
	a.c0 = a.cfg.NewC0()
	for i := 1; i <= j; i++ {
		if a.levels[i] != nil {
			items = append(items, a.levels[i].LiveItems()...)
			a.levels[i] = nil
		}
	}
	items = append(items, extra...)
	lvl := a.cfg.Build(items, a.tau)
	a.levels[j] = lvl
	for _, it := range items {
		a.owner[a.cfg.Key(it)] = lvl
	}
	a.rebuilds++
}

// maybeGlobalRebuild triggers the paper's global rebuild once the live
// weight has at least doubled (or collapsed to half) since the last one.
func (a *Amortized[K, I]) maybeGlobalRebuild() {
	n := a.Len()
	if n >= 2*a.nf && n > a.cfg.MinCapacity {
		a.globalRebuild(nil)
	} else if a.nf > 2*a.cfg.MinCapacity && n <= a.nf/2 {
		a.globalRebuild(nil)
	}
}

// globalRebuild moves every live item (plus extra items, if any) into
// the top level and re-derives the capacity schedule.
func (a *Amortized[K, I]) globalRebuild(extra []I) {
	defer a.rebuildStores()
	items := a.c0.LiveItems()
	for i, l := range a.levels {
		if l != nil {
			items = append(items, l.LiveItems()...)
			a.levels[i] = nil
		}
	}
	items = append(items, extra...)
	n := 0
	for _, it := range items {
		n += a.cfg.Weight(it)
	}
	a.c0 = a.cfg.NewC0()
	a.reschedule(n)
	if len(items) == 0 {
		a.globalRebuilds++
		return
	}
	top := len(a.maxes) - 1
	lvl := a.cfg.Build(items, a.tau)
	a.levels[top] = lvl
	owner := make(map[K]Store[K, I], len(items))
	for _, it := range items {
		owner[a.cfg.Key(it)] = lvl
	}
	a.owner = owner
	a.globalRebuilds++
}

// Delete removes the item with the given key, reporting whether it was
// live. Deletions are lazy; a level holding too many dead symbols
// (> total/τ of that level) is purged.
func (a *Amortized[K, I]) Delete(key K) bool {
	st, ok := a.owner[key]
	if !ok {
		return false
	}
	st.Delete(key)
	delete(a.owner, key)
	if st != Store[K, I](a.c0) {
		total := st.LiveWeight() + st.DeadWeight()
		if total > 0 && st.DeadWeight()*a.tau > total {
			a.purgeLevel(st)
		}
	}
	a.maybeGlobalRebuild()
	return true
}

// DeleteBatch removes every listed item that is live, returning the
// number actually removed. Dead-fraction purges and the global-rebuild
// check run once after the whole batch instead of per deletion.
func (a *Amortized[K, I]) DeleteBatch(keys []K) int {
	n := 0
	touched := make(map[Store[K, I]]bool)
	for _, key := range keys {
		st, ok := a.owner[key]
		if !ok {
			continue
		}
		st.Delete(key)
		delete(a.owner, key)
		n++
		if st != Store[K, I](a.c0) {
			touched[st] = true
		}
	}
	if n == 0 {
		return 0
	}
	for st := range touched {
		total := st.LiveWeight() + st.DeadWeight()
		if total > 0 && st.DeadWeight()*a.tau > total {
			a.purgeLevel(st)
		}
	}
	a.maybeGlobalRebuild()
	return n
}

// purgeLevel rebuilds the given level without its deleted items.
func (a *Amortized[K, I]) purgeLevel(lvl Store[K, I]) {
	defer a.rebuildStores()
	for j := 1; j < len(a.levels); j++ {
		if a.levels[j] != lvl {
			continue
		}
		items := lvl.LiveItems()
		if len(items) == 0 {
			a.levels[j] = nil
			a.purges++
			return
		}
		fresh := a.cfg.Build(items, a.tau)
		a.levels[j] = fresh
		for _, it := range items {
			a.owner[a.cfg.Key(it)] = fresh
		}
		a.purges++
		return
	}
}

// stores returns the queryable stores (C0 first, then the levels).
// Read-only: the cache is maintained by rebuildStores at mutation time.
func (a *Amortized[K, I]) stores() []Store[K, I] { return a.storeCache }

// rebuildStores re-derives the cached store list. Mutators call it
// after swapping C0 or level slots; allocating a fresh slice (instead
// of truncating in place) leaves any list a concurrent reader already
// holds intact.
func (a *Amortized[K, I]) rebuildStores() {
	out := make([]Store[K, I], 0, 1+len(a.levels))
	out = append(out, Store[K, I](a.c0))
	for _, l := range a.levels {
		if l != nil {
			out = append(out, l)
		}
	}
	a.storeCache = out
}

// View runs fn over every queryable store (C0 first, then the levels).
func (a *Amortized[K, I]) View(fn func(stores []Store[K, I])) {
	fn(a.stores())
}

// Query sums fn over every queryable store (see Ladder.Query).
func (a *Amortized[K, I]) Query(arg []byte, fn func(st Store[K, I], arg []byte) int) int {
	n := 0
	for _, s := range a.stores() {
		n += fn(s, arg)
	}
	return n
}

// ViewOwner runs fn on the store holding key, if live.
func (a *Amortized[K, I]) ViewOwner(key K, fn func(st Store[K, I])) bool {
	st, ok := a.owner[key]
	if !ok {
		return false
	}
	fn(st)
	return true
}

// WaitIdle is a no-op: the amortized transformations do all their work
// in the foreground. It exists so every engine satisfies the same
// Ladder contract.
func (a *Amortized[K, I]) WaitIdle() {}

// SizeBits estimates the total footprint for space accounting.
func (a *Amortized[K, I]) SizeBits() int64 {
	total := a.c0.SizeBits()
	for _, l := range a.levels {
		if l != nil {
			total += l.SizeBits()
		}
	}
	return total
}

// Stats returns rebuild counters and the current level occupancy.
func (a *Amortized[K, I]) Stats() Stats {
	st := Stats{
		LevelRebuilds:  a.rebuilds,
		GlobalRebuilds: a.globalRebuilds,
		Purges:         a.purges,
		Levels:         len(a.maxes),
		NF:             a.nf,
		Tau:            a.tau,
	}
	st.LevelSizes = append(st.LevelSizes, a.c0.LiveWeight())
	st.LevelCaps = append(st.LevelCaps, a.maxes[0])
	st.LevelDead = append(st.LevelDead, a.c0.DeadWeight())
	for j := 1; j < len(a.maxes); j++ {
		sz, dead := 0, 0
		if a.levels[j] != nil {
			sz = a.levels[j].LiveWeight()
			dead = a.levels[j].DeadWeight()
		}
		st.LevelSizes = append(st.LevelSizes, sz)
		st.LevelCaps = append(st.LevelCaps, a.maxes[j])
		st.LevelDead = append(st.LevelDead, dead)
	}
	return st
}

// Tau reports the τ currently in effect.
func (a *Amortized[K, I]) Tau() int { return a.tau }
