// Generic engine conformance + invariant suite.
//
// The tests in this file drive the engine purely through the Ladder
// interface and run the SAME checks against two payloads — the document
// collection (internal/core) and the binary relation (internal/binrel).
// That is the PODS'15 claim, executable: Transformations 1–3 are
// index-agnostic, so one machine (and one test suite) serves Theorem 1
// and Theorems 2–3 alike. Payload-specific query behaviour stays in the
// payloads' own packages.
package engine_test

import (
	"errors"
	"math/rand"
	"testing"

	"dyncoll/internal/binrel"
	"dyncoll/internal/core"
	"dyncoll/internal/doc"
	"dyncoll/internal/engine"
	"dyncoll/internal/fmindex"
)

// payload describes one instantiation of the engine under test.
type payload[K comparable, I any] struct {
	// mk builds a ladder; tau 0 means automatic.
	mk func(worstCase, inline bool, tau int) engine.Ladder[K, I]
	// item returns a deterministic, pairwise-distinct item for index i.
	item func(i int) I
	// key must agree with the config's Key on item(i).
	key func(i int) K
	// weight must agree with the config's Weight on item(i).
	weight func(it I) int
}

func docPayload() payload[uint64, doc.Doc] {
	builder := func(docs []doc.Doc) core.StaticIndex {
		return fmindex.Build(docs, fmindex.Options{SampleRate: 4})
	}
	return payload[uint64, doc.Doc]{
		mk: func(worstCase, inline bool, tau int) engine.Ladder[uint64, doc.Doc] {
			return core.NewLadder(core.Options{Builder: builder, Inline: inline, Tau: tau}, worstCase)
		},
		item: func(i int) doc.Doc {
			rng := rand.New(rand.NewSource(int64(i) + 7))
			data := make([]byte, 20+i%60)
			for j := range data {
				data[j] = byte(rng.Intn(4) + 1)
			}
			return doc.Doc{ID: uint64(i), Data: data}
		},
		key:    func(i int) uint64 { return uint64(i) },
		weight: func(d doc.Doc) int { return len(d.Data) },
	}
}

func relPayload() payload[binrel.Pair, binrel.Pair] {
	return payload[binrel.Pair, binrel.Pair]{
		mk: func(worstCase, inline bool, tau int) engine.Ladder[binrel.Pair, binrel.Pair] {
			return binrel.NewLadder(binrel.Options{WorstCase: worstCase, Inline: inline, Tau: tau})
		},
		item: func(i int) binrel.Pair {
			return binrel.Pair{Object: uint64(i) >> 4, Label: uint64(i) & 15}
		},
		key:    func(i int) binrel.Pair { return binrel.Pair{Object: uint64(i) >> 4, Label: uint64(i) & 15} },
		weight: func(binrel.Pair) int { return 1 },
	}
}

// regimes lists the scheduling variants every payload is checked under.
var regimes = []struct {
	name      string
	worstCase bool
	inline    bool
}{
	{"amortized", false, false},
	{"worstcase/inline", true, true},
	{"worstcase/background", true, false},
}

// runRandomOps churns the ladder against a model set and checks
// Len/Count/Has/Keys plus the structural invariants after every step.
func runRandomOps[K comparable, I any](t *testing.T, p payload[K, I], worstCase, inline bool) {
	t.Helper()
	eng := p.mk(worstCase, inline, 0)
	rng := rand.New(rand.NewSource(99))
	model := make(map[K]int) // key → weight
	modelWeight := 0
	var liveIdx []int
	next := 0
	for step := 0; step < 600; step++ {
		if len(liveIdx) == 0 || rng.Float64() < 0.65 {
			it := p.item(next)
			if err := eng.Insert(it); err != nil {
				t.Fatalf("step %d: Insert: %v", step, err)
			}
			model[p.key(next)] = p.weight(it)
			modelWeight += p.weight(it)
			liveIdx = append(liveIdx, next)
			next++
		} else {
			j := rng.Intn(len(liveIdx))
			i := liveIdx[j]
			liveIdx = append(liveIdx[:j], liveIdx[j+1:]...)
			if !eng.Delete(p.key(i)) {
				t.Fatalf("step %d: Delete of live key returned false", step)
			}
			modelWeight -= model[p.key(i)]
			delete(model, p.key(i))
		}
		if eng.Len() != modelWeight {
			t.Fatalf("step %d: Len = %d, want %d", step, eng.Len(), modelWeight)
		}
		if eng.Count() != len(model) {
			t.Fatalf("step %d: Count = %d, want %d", step, eng.Count(), len(model))
		}
		checkInvariants(t, step, eng.Stats(), worstCase)
	}
	eng.WaitIdle()
	if st := eng.Stats(); st.PendingBuilds != 0 {
		t.Fatalf("PendingBuilds = %d after WaitIdle", st.PendingBuilds)
	}
	// Keys and the stores' own key sets must both match the model.
	keys := eng.Keys()
	if len(keys) != len(model) {
		t.Fatalf("Keys() = %d keys, want %d", len(keys), len(model))
	}
	for _, k := range keys {
		if _, ok := model[k]; !ok {
			t.Fatalf("Keys() reported dead key %v", k)
		}
	}
	eng.View(func(stores []engine.Store[K, I]) {
		seen := make(map[K]bool)
		total := 0
		for _, s := range stores {
			for _, k := range s.LiveKeys() {
				if seen[k] {
					t.Fatalf("key %v live in two stores", k)
				}
				seen[k] = true
			}
			total += s.LiveWeight()
		}
		if len(seen) != len(model) || total != modelWeight {
			t.Fatalf("stores hold %d keys / %d weight, want %d / %d",
				len(seen), total, len(model), modelWeight)
		}
	})
	// Every live key routes to a store that still knows it.
	for k := range model {
		found := false
		eng.ViewOwner(k, func(st engine.Store[K, I]) {
			for _, lk := range st.LiveKeys() {
				if lk == k {
					found = true
					return
				}
			}
		})
		if !found {
			t.Fatalf("ViewOwner lost key %v", k)
		}
	}
}

// checkInvariants verifies the ladder-shape invariants the paper's
// transformations maintain, via the engine's uniform Stats.
func checkInvariants(t *testing.T, step int, st engine.Stats, worstCase bool) {
	t.Helper()
	if len(st.LevelSizes) != len(st.LevelCaps) || len(st.LevelSizes) != len(st.LevelDead) {
		t.Fatalf("step %d: ragged stats: %d sizes, %d caps, %d dead",
			step, len(st.LevelSizes), len(st.LevelCaps), len(st.LevelDead))
	}
	for j, sz := range st.LevelSizes {
		cap := st.LevelCaps[j]
		if j == 0 && worstCase {
			// The worst-case C0 may soft-overflow to 2·max_0 while a
			// build is in flight.
			cap = 2 * cap
		}
		if !worstCase && sz > cap {
			t.Fatalf("step %d: level %d holds %d > cap %d", step, j, sz, cap)
		}
		if j == 0 && worstCase && sz > cap {
			t.Fatalf("step %d: C0 holds %d > soft cap %d", step, sz, cap)
		}
	}
	// Amortized purge rule: no level retains more than a 1/τ dead
	// fraction after the update completes.
	if !worstCase {
		for j := 1; j < len(st.LevelSizes); j++ {
			total := st.LevelSizes[j] + st.LevelDead[j]
			if total > 0 && st.LevelDead[j]*st.Tau > total {
				t.Fatalf("step %d: level %d dead fraction %d/%d exceeds 1/τ=1/%d",
					step, j, st.LevelDead[j], total, st.Tau)
			}
		}
	}
}

func TestGenericRandomOpsDocPayload(t *testing.T) {
	p := docPayload()
	for _, r := range regimes {
		t.Run(r.name, func(t *testing.T) { runRandomOps(t, p, r.worstCase, r.inline) })
	}
}

func TestGenericRandomOpsRelationPayload(t *testing.T) {
	p := relPayload()
	for _, r := range regimes {
		t.Run(r.name, func(t *testing.T) { runRandomOps(t, p, r.worstCase, r.inline) })
	}
}

// runDuplicateAndBatch checks the engine-level update contracts: typed
// duplicate errors, atomic batch validation, batch deletes skipping
// missing keys.
func runDuplicateAndBatch[K comparable, I any](t *testing.T, p payload[K, I], worstCase, inline bool) {
	t.Helper()
	eng := p.mk(worstCase, inline, 0)
	if err := eng.Insert(p.item(1)); err != nil {
		t.Fatalf("first insert: %v", err)
	}
	if err := eng.Insert(p.item(1)); !errors.Is(err, engine.ErrDuplicateKey) {
		t.Fatalf("duplicate insert: got %v, want ErrDuplicateKey", err)
	}
	// Batch with a live duplicate: nothing inserted.
	if err := eng.InsertBatch([]I{p.item(2), p.item(1)}); !errors.Is(err, engine.ErrDuplicateKey) {
		t.Fatalf("batch with live dup: got %v", err)
	}
	// Batch with an in-batch duplicate: nothing inserted.
	if err := eng.InsertBatch([]I{p.item(3), p.item(3)}); !errors.Is(err, engine.ErrDuplicateKey) {
		t.Fatalf("batch with in-batch dup: got %v", err)
	}
	if eng.Count() != 1 {
		t.Fatalf("failed batches leaked items: Count = %d", eng.Count())
	}
	// A valid batch lands atomically.
	batch := make([]I, 0, 40)
	for i := 10; i < 50; i++ {
		batch = append(batch, p.item(i))
	}
	if err := eng.InsertBatch(batch); err != nil {
		t.Fatalf("valid batch: %v", err)
	}
	eng.WaitIdle()
	if eng.Count() != 41 {
		t.Fatalf("Count = %d, want 41", eng.Count())
	}
	// DeleteBatch skips missing and repeated keys.
	got := eng.DeleteBatch([]K{p.key(10), p.key(11), p.key(999), p.key(10)})
	if got != 2 {
		t.Fatalf("DeleteBatch removed %d, want 2", got)
	}
	if eng.Has(p.key(10)) || !eng.Has(p.key(12)) {
		t.Fatal("DeleteBatch removed the wrong keys")
	}
}

func TestGenericBatchContracts(t *testing.T) {
	dp, rp := docPayload(), relPayload()
	for _, r := range regimes {
		t.Run("doc/"+r.name, func(t *testing.T) { runDuplicateAndBatch(t, dp, r.worstCase, r.inline) })
		t.Run("rel/"+r.name, func(t *testing.T) { runDuplicateAndBatch(t, rp, r.worstCase, r.inline) })
	}
}

// runNFDrift checks the Section A.3 invariant: nf tracks the live
// weight within a factor of 2 through growth and full drain.
func runNFDrift[K comparable, I any](t *testing.T, p payload[K, I], worstCase, inline bool) {
	t.Helper()
	const minCap = 64 // the default MinCapacity the schedule floors at
	eng := p.mk(worstCase, inline, 0)
	for i := 0; i < 400; i++ {
		if err := eng.Insert(p.item(i)); err != nil {
			t.Fatal(err)
		}
		eng.WaitIdle() // rebalances may be in flight; quiesce before judging nf
		if n, nf := eng.Len(), eng.Stats().NF; n > 2*minCap && (nf > 2*n || n > 2*nf) {
			t.Fatalf("insert %d: nf=%d drifted beyond factor 2 of n=%d", i, nf, n)
		}
	}
	for i := 0; i < 400; i++ {
		eng.Delete(p.key(i))
		eng.WaitIdle()
		if n, nf := eng.Len(), eng.Stats().NF; n > 2*minCap && nf > 2*minCap &&
			(nf > 2*n+minCap || n > 2*nf) {
			t.Fatalf("delete %d: nf=%d drifted beyond factor 2 of n=%d", i, nf, n)
		}
	}
	if eng.Len() != 0 || eng.Count() != 0 {
		t.Fatalf("not empty after full drain: Len=%d Count=%d", eng.Len(), eng.Count())
	}
}

func TestGenericNFDrift(t *testing.T) {
	dp, rp := docPayload(), relPayload()
	for _, r := range regimes {
		if !r.inline && r.worstCase {
			continue // timing-dependent layout; the inline variant is exact
		}
		t.Run("doc/"+r.name, func(t *testing.T) { runNFDrift(t, dp, r.worstCase, r.inline) })
		t.Run("rel/"+r.name, func(t *testing.T) { runNFDrift(t, rp, r.worstCase, r.inline) })
	}
}

// TestGenericWorstCaseMachineryEngages confirms the relation payload
// actually exercises the Transformation 2 machinery it inherited:
// background builds and top collections appear under churn.
func TestGenericWorstCaseMachineryEngages(t *testing.T) {
	run := func(t *testing.T, check func(st engine.Stats)) {
		t.Helper()
		eng := relPayload().mk(true, true, 4)
		for i := 0; i < 4000; i++ {
			if err := eng.Insert(relPayload().item(i)); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < 3000; i++ {
			eng.Delete(relPayload().key(i))
		}
		eng.WaitIdle()
		check(eng.Stats())
	}
	run(t, func(st engine.Stats) {
		if st.BackgroundBuilds == 0 {
			t.Fatal("relation payload never used background builds")
		}
		if st.MaxTops == 0 {
			t.Fatal("relation payload never formed top collections")
		}
		if st.TopPurges == 0 {
			t.Fatal("relation payload never swept tops (Dietz–Sleator)")
		}
		if st.Rebalances == 0 {
			t.Fatal("relation payload never rebalanced (Section A.3)")
		}
	})
}
