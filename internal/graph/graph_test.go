package graph

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

type edge struct{ u, v uint64 }

// gModel is the brute-force digraph reference.
type gModel struct{ edges map[edge]bool }

func newGModel() *gModel { return &gModel{edges: map[edge]bool{}} }

func (m *gModel) add(u, v uint64) bool {
	e := edge{u, v}
	if m.edges[e] {
		return false
	}
	m.edges[e] = true
	return true
}

func (m *gModel) del(u, v uint64) bool {
	e := edge{u, v}
	if !m.edges[e] {
		return false
	}
	delete(m.edges, e)
	return true
}

func (m *gModel) out(u uint64) []uint64 {
	var out []uint64
	for e := range m.edges {
		if e.u == u {
			out = append(out, e.v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func (m *gModel) in(v uint64) []uint64 {
	var out []uint64
	for e := range m.edges {
		if e.v == v {
			out = append(out, e.u)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func eq(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func graphVariants() []struct {
	name string
	opts Options
} {
	return []struct {
		name string
		opts Options
	}{
		{"amortized", Options{}},
		{"worstcase-inline", Options{WorstCase: true, Inline: true}},
		{"worstcase-bg", Options{WorstCase: true}},
	}
}

func TestGraphRandomOpsAllEngines(t *testing.T) {
	for _, v := range graphVariants() {
		t.Run(v.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(77))
			g := New(v.opts)
			m := newGModel()
			const nodes = 40
			for step := 0; step < 2500; step++ {
				u := uint64(rng.Intn(nodes))
				vv := uint64(rng.Intn(nodes))
				if rng.Float64() < 0.6 {
					if g.AddEdge(u, vv) != m.add(u, vv) {
						t.Fatalf("step %d: AddEdge disagreement", step)
					}
				} else {
					if g.DeleteEdge(u, vv) != m.del(u, vv) {
						t.Fatalf("step %d: DeleteEdge disagreement", step)
					}
				}
				if step%151 == 0 {
					u := uint64(rng.Intn(nodes))
					if !eq(g.Neighbors(u), m.out(u)) {
						t.Fatalf("step %d: Neighbors(%d) mismatch", step, u)
					}
				}
			}
			g.WaitIdle()
			if g.EdgeCount() != len(m.edges) {
				t.Fatalf("EdgeCount = %d, want %d", g.EdgeCount(), len(m.edges))
			}
			for u := uint64(0); u < nodes; u++ {
				if !eq(g.Neighbors(u), m.out(u)) || !eq(g.ReverseNeighbors(u), m.in(u)) {
					t.Fatalf("final adjacency mismatch at %d", u)
				}
			}
		})
	}
}

func TestGraphRandomOps(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	g := New(Options{})
	m := newGModel()
	const nodes = 60
	for step := 0; step < 5000; step++ {
		u := uint64(rng.Intn(nodes))
		v := uint64(rng.Intn(nodes))
		if rng.Float64() < 0.6 {
			if g.AddEdge(u, v) != m.add(u, v) {
				t.Fatalf("step %d: AddEdge(%d,%d) disagreement", step, u, v)
			}
		} else {
			if g.DeleteEdge(u, v) != m.del(u, v) {
				t.Fatalf("step %d: DeleteEdge(%d,%d) disagreement", step, u, v)
			}
		}
		if g.EdgeCount() != len(m.edges) {
			t.Fatalf("step %d: EdgeCount = %d, want %d", step, g.EdgeCount(), len(m.edges))
		}
		if step%101 == 0 {
			u := uint64(rng.Intn(nodes))
			if !eq(g.Neighbors(u), m.out(u)) {
				t.Fatalf("step %d: Neighbors(%d) = %v, want %v", step, u, g.Neighbors(u), m.out(u))
			}
			if !eq(g.ReverseNeighbors(u), m.in(u)) {
				t.Fatalf("step %d: ReverseNeighbors(%d) mismatch", step, u)
			}
			if g.OutDegree(u) != len(m.out(u)) || g.InDegree(u) != len(m.in(u)) {
				t.Fatalf("step %d: degree mismatch at %d", step, u)
			}
		}
	}
	for u := uint64(0); u < nodes; u++ {
		if !eq(g.Neighbors(u), m.out(u)) || !eq(g.ReverseNeighbors(u), m.in(u)) {
			t.Fatalf("final adjacency mismatch at %d", u)
		}
	}
}

func TestGraphSelfLoops(t *testing.T) {
	g := New(Options{})
	if !g.AddEdge(3, 3) {
		t.Fatal("self loop add failed")
	}
	if !g.HasEdge(3, 3) {
		t.Fatal("self loop missing")
	}
	if g.OutDegree(3) != 1 || g.InDegree(3) != 1 {
		t.Fatal("self loop degrees wrong")
	}
	if !g.DeleteEdge(3, 3) || g.HasEdge(3, 3) {
		t.Fatal("self loop delete failed")
	}
}

func TestGraphPowerLaw(t *testing.T) {
	// Preferential-attachment-ish digraph: hubs with high in-degree, the
	// shape of web/RDF graphs the paper motivates.
	rng := rand.New(rand.NewSource(13))
	g := New(Options{})
	m := newGModel()
	var targets []uint64
	targets = append(targets, 0)
	for u := uint64(1); u < 800; u++ {
		for d := 0; d < 3; d++ {
			v := targets[rng.Intn(len(targets))]
			if g.AddEdge(u, v) != m.add(u, v) {
				t.Fatalf("AddEdge(%d,%d) disagreement", u, v)
			}
			targets = append(targets, v) // preferential attachment
		}
		targets = append(targets, u)
	}
	// Node 0 should be a hub; verify its in-neighborhood exactly.
	if g.InDegree(0) != len(m.in(0)) {
		t.Fatalf("hub InDegree = %d, want %d", g.InDegree(0), len(m.in(0)))
	}
	if !eq(g.ReverseNeighbors(0), m.in(0)) {
		t.Fatal("hub in-neighbors mismatch")
	}
	// Churn: delete a third of the edges, re-verify.
	all := g.Edges()
	for i, e := range all {
		if i%3 == 0 {
			g.DeleteEdge(e.Object, e.Label)
			m.del(e.Object, e.Label)
		}
	}
	for u := uint64(0); u < 50; u++ {
		if !eq(g.Neighbors(u), m.out(u)) {
			t.Fatalf("post-churn Neighbors(%d) mismatch", u)
		}
	}
}

func TestGraphEarlyStop(t *testing.T) {
	g := New(Options{})
	for v := uint64(0); v < 50; v++ {
		g.AddEdge(1, v)
	}
	n := 0
	g.NeighborsFunc(1, func(uint64) bool { n++; return n < 7 })
	if n != 7 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestGraphQuick(t *testing.T) {
	f := func(ops []uint16) bool {
		g := New(Options{MinCapacity: 8})
		m := newGModel()
		for _, op := range ops {
			u := uint64(op>>8) % 12
			v := uint64(op) % 12
			if op%3 == 0 {
				if g.DeleteEdge(u, v) != m.del(u, v) {
					return false
				}
			} else {
				if g.AddEdge(u, v) != m.add(u, v) {
					return false
				}
			}
		}
		if g.EdgeCount() != len(m.edges) {
			return false
		}
		for u := uint64(0); u < 12; u++ {
			if !eq(g.Neighbors(u), m.out(u)) || !eq(g.ReverseNeighbors(u), m.in(u)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestGraphSizeBits(t *testing.T) {
	g := New(Options{})
	for i := 0; i < 500; i++ {
		g.AddEdge(uint64(i%40), uint64(i%37))
	}
	if g.SizeBits() <= 0 {
		t.Fatal("SizeBits not positive")
	}
}
