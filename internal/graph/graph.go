// Package graph implements Theorem 3 of the paper: a compressed dynamic
// directed graph. A digraph is the binary relation between nodes in which
// an edge u→v relates object u to label v, so the whole representation —
// the generic engine's sub-collection ladder, lazy deletions, O(log^ε n)
// updates, and (with Options.WorstCase) background builds, top-collection
// sweeps and WaitIdle — is inherited from package binrel, exactly as the
// paper derives Theorem 3 as a corollary of Theorem 2.
package graph

import (
	"dyncoll/internal/binrel"
	"dyncoll/internal/snap"
)

// Graph is a compressed dynamic directed graph. Nodes are arbitrary
// uint64 identifiers; a node exists while it has at least one incident
// edge (the paper removes empty labels/objects from the alphabets the
// same way).
type Graph struct {
	rel *binrel.Relation
}

// Options configure a graph.
type Options struct {
	// Tau, Epsilon, MinCapacity as in binrel.Options.
	Tau         int
	Epsilon     float64
	MinCapacity int
	// WorstCase selects Transformation 2-style update scheduling
	// (bounded foreground work, background rebuilds) instead of the
	// amortized cascades.
	WorstCase bool
	// Inline forces worst-case background builds to run synchronously.
	Inline bool
}

// New creates an empty dynamic graph.
func New(opts Options) *Graph {
	return &Graph{rel: binrel.New(binrel.Options{
		Tau:         opts.Tau,
		Epsilon:     opts.Epsilon,
		MinCapacity: opts.MinCapacity,
		WorstCase:   opts.WorstCase,
		Inline:      opts.Inline,
	})}
}

// AddEdge inserts the edge u→v; false if already present.
func (g *Graph) AddEdge(u, v uint64) bool { return g.rel.Add(u, v) }

// DeleteEdge removes the edge u→v; false if absent.
func (g *Graph) DeleteEdge(u, v uint64) bool { return g.rel.Delete(u, v) }

// HasEdge reports whether the edge u→v exists.
func (g *Graph) HasEdge(u, v uint64) bool { return g.rel.Related(u, v) }

// EdgeCount reports the number of edges.
func (g *Graph) EdgeCount() int { return g.rel.Len() }

// NeighborsFunc streams the out-neighbors of u; stops when fn returns
// false.
func (g *Graph) NeighborsFunc(u uint64, fn func(v uint64) bool) {
	g.rel.LabelsOf(u, fn)
}

// ReverseNeighborsFunc streams the in-neighbors of v.
func (g *Graph) ReverseNeighborsFunc(v uint64, fn func(u uint64) bool) {
	g.rel.ObjectsOf(v, fn)
}

// Neighbors returns the sorted out-neighbors of u.
func (g *Graph) Neighbors(u uint64) []uint64 { return g.rel.Labels(u) }

// ReverseNeighbors returns the sorted in-neighbors of v.
func (g *Graph) ReverseNeighbors(v uint64) []uint64 { return g.rel.Objects(v) }

// OutDegree counts the out-neighbors of u.
func (g *Graph) OutDegree(u uint64) int { return g.rel.CountLabels(u) }

// InDegree counts the in-neighbors of v.
func (g *Graph) InDegree(v uint64) int { return g.rel.CountObjects(v) }

// Edges returns every edge as (object=u, label=v) pairs.
func (g *Graph) Edges() []binrel.Pair { return g.rel.Pairs() }

// EdgesFunc streams every edge; enumeration stops when fn returns false.
func (g *Graph) EdgesFunc(fn func(binrel.Pair) bool) { g.rel.PairsFunc(fn) }

// WaitIdle blocks until background rebuilds (WorstCase scheduling only)
// have completed; otherwise it returns immediately.
func (g *Graph) WaitIdle() { g.rel.WaitIdle() }

// EncodeSnapshot writes the graph's quiesced ladder into e (edges are
// pairs, so the encoding is the relation's).
func (g *Graph) EncodeSnapshot(e *snap.Encoder) { g.rel.EncodeSnapshot(e) }

// DecodeSnapshot reads a ladder section and installs it into the empty
// graph; corrupt input fails with snap.ErrBadSnapshot, never a panic.
func (g *Graph) DecodeSnapshot(dec *snap.Decoder) error { return g.rel.DecodeSnapshot(dec) }

// DumpSections captures the quiesced ladder in the sectioned form used
// by incremental checkpoints; see binrel.Relation.DumpSections.
func (g *Graph) DumpSections(reuse func(level int, gen uint64, dead int) bool) ([]byte, []snap.Section) {
	return g.rel.DumpSections(reuse)
}

// RestoreSections installs a sectioned dump into the empty graph; see
// binrel.Relation.RestoreSections.
func (g *Graph) RestoreSections(spine []byte, secs []snap.Section) error {
	return g.rel.RestoreSections(spine, secs)
}

// DumpMapped captures the quiesced ladder in the v2 mapped form; see
// binrel.Relation.DumpMapped.
func (g *Graph) DumpMapped() ([]byte, []binrel.MappedStore) { return g.rel.DumpMapped() }

// RestoreMapped installs a v2 mapped dump into the empty graph; see
// binrel.Relation.RestoreMapped.
func (g *Graph) RestoreMapped(spine []byte, stores []binrel.MappedStore, retain binrel.RetainFunc) error {
	return g.rel.RestoreMapped(spine, stores, retain)
}

// Stats returns the underlying engine's rebuild counters and ladder
// layout.
func (g *Graph) Stats() binrel.Stats { return g.rel.Stats() }

// Tau reports the τ currently in effect.
func (g *Graph) Tau() int { return g.rel.Tau() }

// SizeBits estimates the total footprint.
func (g *Graph) SizeBits() int64 { return g.rel.SizeBits() }
