// Package suffixtree implements a generalized suffix tree over a dynamic
// document collection — the uncompressed data structure the paper keeps
// for the sub-collection C0 (Section A.2).
//
// Documents are inserted with Ukkonen's online algorithm in O(|T|)
// amortized time; each document is terminated with a per-document unique
// symbol so every suffix corresponds to exactly one leaf. Pattern queries
// descend from the root in O(|P|) and report occurrences in O(1) per
// occurrence by walking the locus subtree.
//
// Deletion follows the paper's lazy strategy for C0's small size budget:
// a deleted document is unlinked from the live set immediately (queries
// skip its leaves) and the tree is rebuilt from live documents once
// deleted symbols outnumber live ones, giving O(1) amortized work per
// deleted symbol. DESIGN.md §2 records this substitution for the
// McCreight leaf-surgery deletion sketched in the paper.
//
// Child dictionaries are Go maps — the hashing variant the paper itself
// prescribes for large alphabets (randomized update costs, Section A.2).
package suffixtree

import (
	"fmt"

	"dyncoll/internal/doc"
)

// termBase is the first terminator symbol; document bytes occupy [1,255].
const termBase int32 = 256

// Tree is a generalized suffix tree over a dynamic document collection.
type Tree struct {
	root *node
	docs []*docEntry // indexed by sequence number
	byID map[uint64]int

	liveSymbols    int // payload symbols of live documents
	deletedSymbols int // payload symbols of deleted documents
}

type docEntry struct {
	id      uint64
	data    []int32 // payload symbols plus trailing terminator
	rawLen  int     // payload length (len(data)-1)
	deleted bool
}

type node struct {
	// Edge label: docs[doc].data[start:end]; end == -1 denotes
	// "to the growing end" during the owning document's construction.
	doc   int32
	start int32
	end   int32

	children    map[int32]*node
	link        *node
	suffixStart int32 // for leaves: start of the suffix; -1 for internal nodes
}

func (n *node) isLeaf() bool { return n.suffixStart >= 0 }

// New returns an empty tree.
func New() *Tree {
	return &Tree{
		root: &node{suffixStart: -1, children: make(map[int32]*node)},
		byID: make(map[uint64]int),
	}
}

// Len reports the number of live payload symbols.
func (t *Tree) Len() int { return t.liveSymbols }

// DeletedSymbols reports the number of payload symbols belonging to
// deleted documents still referenced by the tree.
func (t *Tree) DeletedSymbols() int { return t.deletedSymbols }

// DocCount reports the number of live documents.
func (t *Tree) DocCount() int { return len(t.byID) }

// Has reports whether a live document with the given ID is present.
func (t *Tree) Has(id uint64) bool {
	_, ok := t.byID[id]
	return ok
}

// Insert adds a document. It panics if the ID is already present or the
// payload contains the reserved byte 0x00.
func (t *Tree) Insert(d doc.Doc) {
	if _, dup := t.byID[d.ID]; dup {
		panic(fmt.Sprintf("suffixtree: duplicate document ID %d", d.ID))
	}
	if !d.Valid() {
		panic("suffixtree: document contains the reserved byte 0x00")
	}
	seq := len(t.docs)
	data := make([]int32, len(d.Data)+1)
	for i, b := range d.Data {
		data[i] = int32(b)
	}
	data[len(d.Data)] = termBase + int32(seq)
	e := &docEntry{id: d.ID, data: data, rawLen: len(d.Data)}
	t.docs = append(t.docs, e)
	t.byID[d.ID] = seq
	t.liveSymbols += e.rawLen
	t.ukkonen(seq)
}

// Delete removes the document with the given ID, reporting whether it was
// present. The tree is rebuilt once deleted symbols outnumber live ones.
func (t *Tree) Delete(id uint64) bool {
	seq, ok := t.byID[id]
	if !ok {
		return false
	}
	e := t.docs[seq]
	e.deleted = true
	delete(t.byID, id)
	t.liveSymbols -= e.rawLen
	t.deletedSymbols += e.rawLen
	if t.deletedSymbols > t.liveSymbols && t.deletedSymbols > 64 {
		t.rebuild()
	}
	return true
}

// rebuild reconstructs the tree from live documents only.
func (t *Tree) rebuild() {
	live := t.LiveDocs()
	fresh := New()
	for _, d := range live {
		fresh.Insert(d)
	}
	*t = *fresh
}

// LiveDocs returns the live documents in insertion order. Payload slices
// are fresh copies.
func (t *Tree) LiveDocs() []doc.Doc {
	out := make([]doc.Doc, 0, len(t.byID))
	for _, e := range t.docs {
		if e.deleted {
			continue
		}
		data := make([]byte, e.rawLen)
		for i := 0; i < e.rawLen; i++ {
			data[i] = byte(e.data[i])
		}
		out = append(out, doc.Doc{ID: e.id, Data: data})
	}
	return out
}

// LiveIDs returns the IDs of the live documents in unspecified order.
func (t *Tree) LiveIDs() []uint64 {
	out := make([]uint64, 0, len(t.byID))
	for id := range t.byID {
		out = append(out, id)
	}
	return out
}

// Extract returns length payload bytes of the live document id starting
// at offset off, clamped to the payload; ok is false if the document is
// not present.
func (t *Tree) Extract(id uint64, off, length int) (data []byte, ok bool) {
	seq, ok := t.byID[id]
	if !ok {
		return nil, false
	}
	e := t.docs[seq]
	if off < 0 {
		off = 0
	}
	if off > e.rawLen {
		off = e.rawLen
	}
	if off+length > e.rawLen {
		length = e.rawLen - off
	}
	if length <= 0 {
		return nil, true
	}
	out := make([]byte, length)
	for i := 0; i < length; i++ {
		out[i] = byte(e.data[off+i])
	}
	return out, true
}

// DocLen returns the payload length of the live document id; ok is false
// if the document is not present.
func (t *Tree) DocLen(id uint64) (n int, ok bool) {
	seq, ok := t.byID[id]
	if !ok {
		return 0, false
	}
	return t.docs[seq].rawLen, true
}

// Occurrence is one pattern match: the document ID and the offset of the
// match within the document payload.
type Occurrence struct {
	DocID uint64
	Off   int
}

// Find reports every occurrence of pattern in every live document.
// An empty pattern matches at every position of every live document.
func (t *Tree) Find(pattern []byte) []Occurrence {
	var out []Occurrence
	t.FindFunc(pattern, func(o Occurrence) bool {
		out = append(out, o)
		return true
	})
	return out
}

// FindFunc calls fn for every occurrence of pattern; if fn returns false
// enumeration stops early.
func (t *Tree) FindFunc(pattern []byte, fn func(Occurrence) bool) {
	locus := t.locus(pattern)
	if locus == nil {
		return
	}
	t.collect(locus, len(pattern), fn)
}

// Count returns the number of occurrences of pattern in live documents.
func (t *Tree) Count(pattern []byte) int {
	n := 0
	t.FindFunc(pattern, func(Occurrence) bool {
		n++
		return true
	})
	return n
}

// locus returns the highest node whose path covers pattern, or nil if the
// pattern does not occur. A locus in the middle of an edge is represented
// by the edge's lower node.
func (t *Tree) locus(pattern []byte) *node {
	nd := t.root
	i := 0
	for i < len(pattern) {
		child := nd.children[int32(pattern[i])]
		if child == nil {
			return nil
		}
		label := t.label(child)
		for j := 0; j < len(label); j++ {
			if i == len(pattern) {
				return child
			}
			if label[j] != int32(pattern[i]) {
				return nil
			}
			i++
		}
		nd = child
	}
	return nd
}

// label returns the (frozen) edge label of nd.
func (t *Tree) label(nd *node) []int32 {
	e := t.docs[nd.doc]
	end := nd.end
	if end < 0 {
		end = int32(len(e.data))
	}
	return e.data[nd.start:end]
}

// collect walks the subtree of nd reporting live leaves whose suffix has
// at least patLen payload symbols before the terminator.
func (t *Tree) collect(nd *node, patLen int, fn func(Occurrence) bool) bool {
	if nd.isLeaf() {
		e := t.docs[nd.doc]
		if e.deleted {
			return true
		}
		off := int(nd.suffixStart)
		// A match must start inside the payload and fit before the
		// terminator; the off < rawLen guard excludes the terminator-only
		// suffix when the pattern is empty.
		if off < e.rawLen && off+patLen <= e.rawLen {
			return fn(Occurrence{DocID: e.id, Off: off})
		}
		return true
	}
	for _, child := range nd.children {
		if !t.collect(child, patLen, fn) {
			return false
		}
	}
	return true
}

// ukkonen inserts all suffixes of docs[seq] with Ukkonen's algorithm.
func (t *Tree) ukkonen(seq int) {
	data := t.docs[seq].data
	var leaves []*node
	active := t.root
	activeEdge := 0 // index into data
	activeLength := 0
	remaining := 0

	for pos := 0; pos < len(data); pos++ {
		remaining++
		var lastNew *node
		for remaining > 0 {
			if activeLength == 0 {
				activeEdge = pos
			}
			first := data[activeEdge]
			next := active.children[first]
			if next == nil {
				leaf := &node{
					doc:         int32(seq),
					start:       int32(activeEdge),
					end:         -1,
					suffixStart: int32(pos - remaining + 1),
				}
				active.children[first] = leaf
				leaves = append(leaves, leaf)
				if lastNew != nil {
					lastNew.link = active
					lastNew = nil
				}
			} else {
				el := t.edgeLen(next, pos)
				if activeLength >= el {
					activeEdge += el
					activeLength -= el
					active = next
					continue
				}
				if t.symAt(next, activeLength) == data[pos] {
					activeLength++
					if lastNew != nil {
						lastNew.link = active
						lastNew = nil
					}
					break
				}
				// Split the edge.
				split := &node{
					doc:         next.doc,
					start:       next.start,
					end:         next.start + int32(activeLength),
					children:    make(map[int32]*node, 2),
					suffixStart: -1,
				}
				active.children[first] = split
				leaf := &node{
					doc:         int32(seq),
					start:       int32(pos),
					end:         -1,
					suffixStart: int32(pos - remaining + 1),
				}
				split.children[data[pos]] = leaf
				leaves = append(leaves, leaf)
				next.start += int32(activeLength)
				split.children[t.symAt(next, 0)] = next
				if lastNew != nil {
					lastNew.link = split
				}
				lastNew = split
			}
			remaining--
			if active == t.root && activeLength > 0 {
				activeLength--
				activeEdge = pos - remaining + 1
			} else if active != t.root {
				if active.link != nil {
					active = active.link
				} else {
					active = t.root
				}
			}
		}
	}
	// Freeze the leaves created for this document.
	for _, leaf := range leaves {
		leaf.end = int32(len(data))
	}
}

// edgeLen returns the current length of nd's edge during phase pos of the
// owning document's construction.
func (t *Tree) edgeLen(nd *node, pos int) int {
	if nd.end >= 0 {
		return int(nd.end - nd.start)
	}
	return pos + 1 - int(nd.start)
}

// symAt returns the k-th symbol of nd's edge label.
func (t *Tree) symAt(nd *node, k int) int32 {
	return t.docs[nd.doc].data[int(nd.start)+k]
}

// SizeBits roughly estimates the memory footprint in bits: documents plus
// a constant number of words per node.
func (t *Tree) SizeBits() int64 {
	var nodes int64
	var walk func(nd *node)
	walk = func(nd *node) {
		nodes++
		for _, c := range nd.children {
			walk(c)
		}
	}
	walk(t.root)
	var symbols int64
	for _, e := range t.docs {
		symbols += int64(len(e.data))
	}
	// ~6 words per node (label, link, map header) + 32 bits per symbol.
	return nodes*6*64 + symbols*32
}
